// pftool_cli: the thread-based PFTool commands on REAL directories.
//
//   pftool_cli pfls <dir>
//   pftool_cli pfcp <src> <dst> [--workers N] [--journal FILE]
//   pftool_cli pfcm <src> <dst> [--workers N]
//
// This is the paper's frontend running against the local file system: a
// parallel tree walk feeding a worker pool, chunked copies for large
// files, and an optional restart journal so interrupted transfers resume
// without re-sending good chunks (Sec 4.5).
//
// With no arguments it runs a self-demo in a temp directory.
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <random>
#include <string>

#include "pftool/rt/engine.hpp"

namespace {

namespace fs = std::filesystem;
using cpa::pftool::rt::RtConfig;
using cpa::pftool::rt::RtEngine;
using cpa::pftool::rt::RtReport;

void print_report(const char* cmd, const RtReport& r) {
  std::printf("%s: %llu dirs, %llu files", cmd,
              static_cast<unsigned long long>(r.dirs_walked),
              static_cast<unsigned long long>(r.files_stated));
  if (r.files_copied != 0) {
    std::printf("; copied %llu files / %.1f MB in %llu chunks",
                static_cast<unsigned long long>(r.files_copied),
                static_cast<double>(r.bytes_copied) / 1e6,
                static_cast<unsigned long long>(r.chunks_copied));
  }
  if (r.chunks_skipped_restart != 0) {
    std::printf(" (skipped %llu known-good chunks)",
                static_cast<unsigned long long>(r.chunks_skipped_restart));
  }
  if (r.files_compared != 0) {
    std::printf("; compared %llu: %llu match, %llu differ",
                static_cast<unsigned long long>(r.files_compared),
                static_cast<unsigned long long>(r.files_matched),
                static_cast<unsigned long long>(r.files_mismatched));
  }
  if (r.files_failed != 0) {
    std::printf("; FAILED %llu", static_cast<unsigned long long>(r.files_failed));
  }
  std::printf("  [%.3f s]\n", r.elapsed_seconds);
}

int self_demo() {
  std::printf("no arguments: running the self-demo in a temp dir\n");
  const fs::path base = fs::temp_directory_path() / "pftool_cli_demo";
  fs::remove_all(base);
  std::mt19937 rng(12345);
  for (int d = 0; d < 4; ++d) {
    for (int f = 0; f < 8; ++f) {
      const fs::path p =
          base / "src" / ("d" + std::to_string(d)) / ("f" + std::to_string(f));
      fs::create_directories(p.parent_path());
      std::ofstream out(p, std::ios::binary);
      const int size = 1000 + static_cast<int>(rng() % 200000);
      for (int i = 0; i < size; ++i) out.put(static_cast<char>(rng() & 0xFF));
    }
  }
  RtConfig cfg;
  cfg.workers = 4;
  RtEngine engine(cfg);
  print_report("pfls", engine.pfls((base / "src").string()));
  print_report("pfcp",
               engine.pfcp((base / "src").string(), (base / "dst").string()));
  const RtReport cm =
      engine.pfcm((base / "src").string(), (base / "dst").string());
  print_report("pfcm", cm);
  fs::remove_all(base);
  return cm.files_mismatched == 0 && cm.files_failed == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return self_demo();

  const std::string cmd = argv[1];
  RtConfig cfg;
  std::string src, dst;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--workers") == 0 && i + 1 < argc) {
      cfg.workers = static_cast<unsigned>(std::stoul(argv[++i]));
    } else if (std::strcmp(argv[i], "--journal") == 0 && i + 1 < argc) {
      cfg.journal_path = argv[++i];
    } else if (src.empty()) {
      src = argv[i];
    } else {
      dst = argv[i];
    }
  }
  if (src.empty() || (cmd != "pfls" && dst.empty())) {
    std::fprintf(stderr,
                 "usage: %s pfls <dir> | pfcp <src> <dst> [--workers N] "
                 "[--journal FILE] | pfcm <src> <dst>\n",
                 argv[0]);
    return 2;
  }

  RtEngine engine(cfg);
  RtReport r;
  if (cmd == "pfls") {
    r = engine.pfls(src);
  } else if (cmd == "pfcp") {
    r = engine.pfcp(src, dst);
  } else if (cmd == "pfcm") {
    r = engine.pfcm(src, dst);
  } else {
    std::fprintf(stderr, "unknown command '%s'\n", cmd.c_str());
    return 2;
  }
  print_report(cmd.c_str(), r);
  return r.files_failed == 0 && r.files_mismatched == 0 ? 0 : 1;
}
