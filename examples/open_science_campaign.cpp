// A miniature Open Science campaign (Sec 5): several archive jobs with
// wildly different file-size profiles submitted over a few operation
// days, contending for the trunks while ILM migration drains the fast
// pool to tape in the background.
//
//   ./open_science_campaign
#include <cstdio>

#include "archive/system.hpp"
#include "workload/campaign.hpp"
#include "workload/tree.hpp"

int main() {
  using namespace cpa;
  archive::CotsParallelArchive sys(archive::SystemConfig::roadrunner());

  // A 10-job, 3-day campaign drawn from the paper-calibrated generator.
  workload::CampaignConfig wl;
  wl.jobs = 10;
  wl.operation_days = 3.0;
  wl.file_count_scale = 0.002;
  wl.max_materialized_files = 500;
  wl.preserve_total_bytes = true;
  wl.seed = 7;
  const auto specs = workload::CampaignGenerator(wl).generate();

  // Background ILM migration cycle every 6 hours.
  pfs::Rule rule;
  rule.name = "drain";
  rule.action = pfs::Rule::Action::List;
  rule.where = {pfs::Condition::path_glob("/proj/*"),
                pfs::Condition::dmapi_is(pfs::DmapiState::Resident),
                pfs::Condition::age_ge(3600)};
  sys.policy().add_rule(rule);
  auto cycle = std::make_shared<std::function<void()>>();
  std::uint64_t migrated_total = 0;
  *cycle = [&, cycle] {
    if (sys.sim().now() > sim::days(5)) return;
    sys.run_migration_cycle("drain", "opensci",
                            [&, cycle](const hsm::MigrateReport& r) {
                              migrated_total += r.files_migrated;
                              sys.sim().after(sim::hours(6), [cycle] { (*cycle)(); });
                            });
  };
  sys.sim().at(sim::hours(3), [cycle] { (*cycle)(); });

  std::printf("job | submit   | files(real) |   data   | avg file  | rate\n");
  std::printf("----+----------+-------------+----------+-----------+---------\n");

  struct Row {
    workload::JobSpec spec;
    pftool::JobReport report;
  };
  std::vector<Row> rows(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    rows[i].spec = specs[i];
    workload::TreeSpec tree;
    tree.root = "/scratch/job" + std::to_string(specs[i].job_id);
    tree.file_sizes = specs[i].file_sizes;
    workload::build_tree(sys.scratch(), tree);
    // Realistic job profile: a few movers, single-stream client ceiling.
    pftool::PftoolConfig job_cfg = sys.config().pftool;
    job_cfg.num_workers = 2 + static_cast<unsigned>(i % 5);
    job_cfg.per_stream_max_bps = 200.0 * static_cast<double>(kMB);
    sys.sim().at(specs[i].submit_time, [&sys, &rows, i, job_cfg] {
      const auto& spec = rows[i].spec;
      sys.submit(archive::JobSpec::pfcp(
                         "/scratch/job" + std::to_string(spec.job_id),
                         "/proj/job" + std::to_string(spec.job_id))
                     .with_config(job_cfg))
          .on_done([&rows, i](const pftool::JobReport& r) {
            rows[i].report = r;
          });
    });
  }
  sys.sim().run();

  double sum_rate = 0;
  for (const Row& row : rows) {
    const double mbs = row.report.rate_bps() / static_cast<double>(kMB);
    sum_rate += mbs;
    std::printf("%3u | %8s | %11llu | %8s | %9s | %6.0f MB/s\n",
                row.spec.job_id,
                sim::format_duration(row.spec.submit_time).c_str(),
                static_cast<unsigned long long>(row.spec.file_count),
                format_bytes(row.spec.total_bytes).c_str(),
                format_bytes(row.spec.avg_file_size).c_str(), mbs);
  }
  std::printf("\nmean job rate: %.0f MB/s (paper campaign mean: ~575 MB/s)\n",
              sum_rate / static_cast<double>(rows.size()));
  std::printf("background ILM migrated %llu files to tape during the campaign\n",
              static_cast<unsigned long long>(migrated_total));
  const auto tape_stats = sys.library().aggregate_stats();
  std::printf("tape plant: %llu mounts, %s written on %zu cartridges\n",
              static_cast<unsigned long long>(tape_stats.mounts),
              format_bytes(tape_stats.bytes_written).c_str(),
              sys.library().cartridge_count());
  return 0;
}
