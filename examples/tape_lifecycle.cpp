// Operating the archive over time: trashcan deletes, synchronous deletion
// vs reconciliation, and smart (tape-ordered, node-affine) recall.
//
//   ./tape_lifecycle
#include <cstdio>

#include "archive/system.hpp"
#include "workload/tree.hpp"

int main() {
  using namespace cpa;
  archive::CotsParallelArchive sys(archive::SystemConfig::roadrunner());

  // Populate and migrate a project.
  workload::TreeSpec tree;
  tree.root = "/proj/alpha";
  for (int i = 0; i < 100; ++i) tree.file_sizes.push_back(200 * kMB);
  tree.tag_seed = 99;
  workload::build_tree(sys.archive_fs(), tree);
  std::vector<std::string> paths;
  for (std::uint64_t i = 0; i < 100; ++i) {
    paths.push_back(workload::tree_file_path(tree, i));
  }
  sys.hsm().parallel_migrate(paths, {0, 1, 2, 3},
                             hsm::DistributionStrategy::SizeBalanced, "alpha",
                             nullptr);
  sys.sim().run();
  std::printf("== migrated 100 files to tape (stubs on disk)\n");

  // 1. A user deletes files through the chroot jail: they land in the
  //    trashcan, nothing is destroyed, no orphans appear.
  for (int i = 0; i < 10; ++i) sys.trashcan().trash(paths[static_cast<std::size_t>(i)]);
  std::printf("== trashed 10 files; trashcan holds %zu entries\n",
              sys.trashcan().size());

  // 2. Oops — one of them was needed after all.
  sys.trashcan().undelete(paths[3]);
  std::printf("== undeleted %s\n", paths[3].c_str());

  // 3. The aging policy purges the rest via the synchronous deleter:
  //    file-system entry and tape object die together.
  sys.trashcan().purge_older_than(sys.sim().now(), [](std::size_t n) {
    std::printf("== purge: synchronously deleted %zu aged trashcan entries\n", n);
  });
  sys.sim().run();

  // 4. Reconcile confirms there is nothing to clean up.
  sys.hsm().reconcile(false, [](const hsm::ReconcileReport& r) {
    std::printf("== reconcile: walked %llu inodes, checked %llu objects, "
                "found %llu orphans (took %s of archive downtime)\n",
                static_cast<unsigned long long>(r.inodes_walked),
                static_cast<unsigned long long>(r.objects_checked),
                static_cast<unsigned long long>(r.orphans_found),
                sim::format_duration(r.duration).c_str());
  });
  sys.sim().run();

  // 5. Contrast: a rogue 'rm' bypassing the trashcan orphans tape data
  //    that only a reconcile can find.
  sys.archive_fs().unlink(paths[20]);
  sys.hsm().reconcile(true, [](const hsm::ReconcileReport& r) {
    std::printf("== after a raw unlink: reconcile found and deleted %llu orphan(s)\n",
                static_cast<unsigned long long>(r.orphans_deleted));
  });
  sys.sim().run();

  // 6. Smart recall of 50 scattered files: tape-ordered, one node per
  //    cartridge — front-to-back reads, no drive handoffs.
  std::vector<std::string> want;
  for (std::uint64_t i = 30; i < 80; ++i) {
    want.push_back(workload::tree_file_path(tree, i));
  }
  const auto before = sys.library().aggregate_stats();
  hsm::RecallOptions opts;
  opts.tape_ordered = true;
  opts.assignment = hsm::RecallOptions::Assignment::TapeAffinity;
  opts.nodes = {0, 1, 2, 3};
  sys.hsm().recall(want, opts, [&](const hsm::RecallReport& r) {
    const auto after = sys.library().aggregate_stats();
    std::printf("== smart recall: %u files (%s) at %s — %llu seeks, %llu handoffs\n",
                r.files_recalled, format_bytes(r.bytes).c_str(),
                format_rate_mbs(r.mean_rate_bps()).c_str(),
                static_cast<unsigned long long>(after.seeks - before.seeks),
                static_cast<unsigned long long>(after.handoffs - before.handoffs));
  });
  sys.sim().run();

  // 7. HSM space management: the recalls refilled the fast pool with
  //    premigrated copies; the threshold migration punches the least
  //    recently used ones back to stubs.
  sys.hsm().space_management(
      "fast", 0.0, 0.0, [](const hsm::SpaceManagementReport& r) {
        std::printf("== space management: punched %llu files, freed %s "
                    "(pool %.2f%% -> %.2f%%)\n",
                    static_cast<unsigned long long>(r.files_punched),
                    format_bytes(r.bytes_freed).c_str(),
                    100.0 * r.used_fraction_before,
                    100.0 * r.used_fraction_after);
      });
  sys.sim().run();
  return 0;
}
