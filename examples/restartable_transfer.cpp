// Restart-able transfer of a very large file (Sec 4.5): the transfer is
// interrupted partway; the chunk journal lets the restart send only what
// is missing ("What about restarting a 40 Terabyte file, we don't want to
// start it from the beginning").
//
//   ./restartable_transfer
#include <cstdio>

#include "archive/system.hpp"

int main() {
  using namespace cpa;
  archive::CotsParallelArchive sys(archive::SystemConfig::roadrunner());

  constexpr std::uint64_t kFileSize = 1 * kTB;
  sys.make_file(sys.scratch(), "/scratch/huge.dat", kFileSize, 0xDA7A);
  std::printf("== source: /scratch/huge.dat (%s)\n",
              format_bytes(kFileSize).c_str());

  pftool::PftoolConfig cfg = sys.config().pftool;
  cfg.num_workers = 16;
  cfg.restartable = true;

  // Attempt 1 "dies" after 70% of the FUSE chunks landed: we model the
  // aftermath the journal would have recorded.
  const pftool::ChunkPlanner planner(cfg.planner);
  const auto plan = planner.plan(kFileSize);
  const auto done_chunks =
      static_cast<std::uint64_t>(static_cast<double>(plan.chunks.size()) * 0.7);
  std::printf("== attempt 1: interrupted after %llu of %zu chunks\n",
              static_cast<unsigned long long>(done_chunks), plan.chunks.size());
  sys.journal().begin("/proj/huge.dat", kFileSize, plan.chunks.size());
  sys.fuse().create("/proj/huge.dat", kFileSize);
  for (std::uint64_t i = 0; i < done_chunks; ++i) {
    sys.journal().mark_good("/proj/huge.dat", i);
    sys.fuse().write_chunk("/proj/huge.dat", i, pftool::chunk_tag(0xDA7A, i));
  }

  // Attempt 2 resumes from the journal.
  archive::JobHandle job = sys.submit(
      archive::JobSpec::pfcp("/scratch/huge.dat", "/proj/huge.dat")
          .with_config(cfg));
  const pftool::JobReport r = job.await();
  std::printf("== attempt 2 (restart, state=%s):\n%s",
              archive::to_string(job.state()), r.render().c_str());
  std::printf("   re-sent %s instead of %s (saved %.0f%%)\n",
              format_bytes(r.bytes_copied).c_str(),
              format_bytes(kFileSize).c_str(),
              100.0 * (1.0 - static_cast<double>(r.bytes_copied) /
                                 static_cast<double>(kFileSize)));

  const auto st = sys.fuse().stat("/proj/huge.dat");
  const auto tag = sys.fuse().origin_tag("/proj/huge.dat");
  std::printf("== destination complete: %s, origin tag %s\n",
              st.ok() && st.value().complete ? "yes" : "NO",
              tag.ok() && tag.value() == 0xDA7A ? "verified" : "MISMATCH");
  return st.ok() && st.value().complete && tag.ok() && tag.value() == 0xDA7A
             ? 0
             : 1;
}
