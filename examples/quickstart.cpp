// Quickstart: the whole COTS parallel archive in ~80 lines.
//
// Assembles the Roadrunner-scale plant (scratch PFS, FTA cluster, archive
// GPFS, HSM, 24-drive tape library), then walks one file through its full
// life: pfcp to the archive, verify with pfcm, migrate to tape via an ILM
// policy, and restore it back with a tape-aware pfcp.
//
//   ./quickstart
#include <cstdio>

#include "archive/system.hpp"
#include "workload/tree.hpp"

int main() {
  using namespace cpa;
  archive::CotsParallelArchive sys(archive::SystemConfig::roadrunner());

  // 1. A science run leaves checkpoints on the scratch file system.
  std::printf("== 1. producing 32 x 1 GB checkpoints on scratch\n");
  workload::TreeSpec tree;
  tree.root = "/scratch/run42";
  for (int i = 0; i < 32; ++i) tree.file_sizes.push_back(kGB);
  tree.tag_seed = 42;
  workload::build_tree(sys.scratch(), tree);

  // 2. Archive them with pfcp (parallel tree walk + parallel copy).
  std::printf("== 2. pfcp /scratch/run42 -> /proj/run42\n");
  const auto cp = sys.pfcp_archive("/scratch/run42", "/proj/run42");
  std::printf("%s", cp.render().c_str());

  // 3. Verify the copy byte-for-byte with pfcm.
  std::printf("== 3. pfcm verification\n");
  const auto cm = sys.pfcm("/scratch/run42", "/proj/run42");
  std::printf("%s", cm.render().c_str());

  // 4. ILM: a list policy selects the archived files; the parallel data
  //    migrator distributes them size-balanced over the FTA nodes and
  //    streams them to tape (LAN-free).  Files become stubs on disk.
  std::printf("== 4. migrating to tape via ILM policy\n");
  pfs::Rule rule;
  rule.name = "to-tape";
  rule.action = pfs::Rule::Action::List;
  rule.where = {pfs::Condition::path_glob("/proj/*"),
                pfs::Condition::dmapi_is(pfs::DmapiState::Resident)};
  sys.policy().add_rule(rule);
  sys.run_migration_cycle("to-tape", "run42", [&](const hsm::MigrateReport& r) {
    std::printf("   migrated %u files (%s) at %s; %u tape objects\n",
                r.files_migrated, format_bytes(r.bytes).c_str(),
                format_rate_mbs(r.mean_rate_bps()).c_str(),
                r.tape_objects_written);
  });
  sys.sim().run();
  const auto st = sys.archive_fs().stat("/proj/run42/d0000/f000000");
  std::printf("   file state on disk now: %s (stub)\n",
              pfs::to_string(st.value().dmapi));
  std::printf("   fast pool in use: %s\n",
              format_bytes(sys.archive_fs().pool("fast").value().used_bytes).c_str());

  // 5. Restore: pfcp in the other direction.  The Manager queries the
  //    indexed TSM export for tape locations, lines recalls up in tape
  //    order per cartridge, and TapeProcs bring the data back before
  //    Workers copy it to scratch.
  std::printf("== 5. pfcp /proj/run42 -> /scratch/restored (tape-aware)\n");
  const auto rs = sys.pfcp_restore("/proj/run42", "/scratch/restored");
  std::printf("%s", rs.render().c_str());

  // 6. Check the restored content.
  std::uint64_t verified = 0;
  for (std::uint64_t i = 0; i < 32; ++i) {
    workload::TreeSpec restored = tree;
    restored.root = "/scratch/restored";
    const auto tag = sys.scratch().read_tag(workload::tree_file_path(restored, i));
    if (tag.ok() && tag.value() == workload::tree_file_tag(42, i)) ++verified;
  }
  std::printf("== 6. content verified for %llu/32 restored files\n",
              static_cast<unsigned long long>(verified));

  const auto tape_stats = sys.library().aggregate_stats();
  std::printf("\n   tape plant totals: %llu mounts, %s written, %s read\n",
              static_cast<unsigned long long>(tape_stats.mounts),
              format_bytes(tape_stats.bytes_written).c_str(),
              format_bytes(tape_stats.bytes_read).c_str());
  return verified == 32 ? 0 : 1;
}
