// Sec 4.1.2 item 4, "Very large file parallel copies":
//   "When archiving very large files in parallel on many tapes, we
//    encounter problems of (a) N-to-1 parallel I/O overhead and
//    (b) performance impact from tape sequential write operation.  To
//    overcome these problems, we built an ArchiveFUSE file system ...
//    We have successfully converted an N-to-1 parallel I/O operation into
//    an N-to-N parallel I/O operation."
//
// Phase 1: copy a very large file to the archive file system as plain
// N-to-1 vs FUSE N-to-N (escapes the shared-file write ceiling).
// Phase 2: migrate to tape — one huge object streams to ONE drive, while
// the FUSE chunk files fan out over many drives in parallel.
#include <cstdio>

#include "archive/system.hpp"
#include "bench/common.hpp"
#include "fusefs/archive_fuse.hpp"

namespace {

using namespace cpa;

struct Outcome {
  double copy_mbs = 0;
  double migrate_mbs = 0;
};

Outcome run(bool use_fuse, std::uint64_t size, unsigned workers) {
  archive::CotsParallelArchive sys(archive::SystemConfig::roadrunner());
  sys.make_file(sys.scratch(), "/scratch/huge", size, 0xF00D);

  pftool::PftoolConfig cfg = sys.config().pftool;
  cfg.num_workers = workers;
  if (!use_fuse) {
    // Push the very-large threshold out of reach: plain chunked N-to-1.
    cfg.planner.very_large_threshold = size * 2;
  }
  pftool::sim::JobEnv env = sys.job_env(false);
  const auto copy =
      pftool::sim::run_pfcp(env, cfg, "/scratch/huge", "/proj/huge");

  Outcome out;
  out.copy_mbs = copy.rate_bps() / static_cast<double>(kMB);

  // Phase 2: migration.  FUSE chunks are independent files spread over
  // the movers; the monolith is a single tape object on a single drive.
  std::vector<std::string> paths;
  if (use_fuse) {
    for (const auto& ci : sys.fuse().chunks("/proj/huge").value()) {
      paths.push_back(ci.chunk_path);
    }
  } else {
    paths.push_back("/proj/huge");
  }
  std::vector<tape::NodeId> nodes;
  for (unsigned n = 0; n < 10; ++n) nodes.push_back(n);
  double rate = 0;
  sys.hsm().parallel_migrate(paths, nodes,
                             hsm::DistributionStrategy::SizeBalanced, "huge",
                             [&](const hsm::MigrateReport& r) {
                               rate = r.mean_rate_bps();
                             });
  sys.sim().run();
  out.migrate_mbs = rate / static_cast<double>(kMB);
  return out;
}

}  // namespace

int main() {
  bench::header("Sec 4.1.2(4)",
                "Very large files: N-to-1 vs ArchiveFUSE N-to-N");

  std::printf("\n  file size | mode          | fs copy (MB/s) | tape migrate (MB/s)\n");
  std::printf("  ----------+---------------+----------------+--------------------\n");
  Outcome n1{}, nn{};
  for (const std::uint64_t size : {200 * kGB, 400 * kGB, 1000 * kGB}) {
    n1 = run(false, size, 16);
    nn = run(true, size, 16);
    const double gb = static_cast<double>(size) / static_cast<double>(kGB);
    if (n1.migrate_mbs > 0) {
      std::printf("  %7.0f GB | N-to-1        | %14.1f | %19.1f\n", gb,
                  n1.copy_mbs, n1.migrate_mbs);
    } else {
      std::printf("  %7.0f GB | N-to-1        | %14.1f |  IMPOSSIBLE (> one volume)\n",
                  gb, n1.copy_mbs);
    }
    std::printf("  %7.0f GB | FUSE N-to-N   | %14.1f | %19.1f\n", gb, nn.copy_mbs,
                nn.migrate_mbs);
  }

  bench::section("paper vs measured (1 TB file, 16 workers)");
  bench::compare("fs copy: N-to-N vs N-to-1", "overcomes N-to-1 overhead",
                 bench::fmt("%.1fx", nn.copy_mbs / n1.copy_mbs));
  if (n1.migrate_mbs > 0) {
    bench::compare("tape: chunks on many drives vs 1", "parallel to many tapes",
                   bench::fmt("%.1fx", nn.migrate_mbs / n1.migrate_mbs));
  } else {
    bench::compare("tape: 1 TB as a single object",
                   "impossible (single stream of tapes)",
                   "impossible — FUSE chunks at " +
                       bench::fmt("%.0f MB/s", nn.migrate_mbs));
  }
  return 0;
}
