// google-benchmark microbenchmarks of the simulation substrates: they
// document the simulator's own capacity (events/s, flow recompute cost,
// indexed lookups), not any paper result.
#include <benchmark/benchmark.h>

#include "metadb/tsm_export.hpp"
#include "pftool/core/queues.hpp"
#include "simcore/flow_network.hpp"
#include "simcore/rng.hpp"
#include "simcore/simulation.hpp"

namespace {

using namespace cpa;

void BM_EventQueueScheduleFire(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulation s;
    for (int i = 0; i < 1000; ++i) {
      s.after(sim::usecs(static_cast<double>(i % 97)), [] {});
    }
    benchmark::DoNotOptimize(s.run());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueueScheduleFire);

void BM_EventCancel(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulation s;
    std::vector<sim::Simulation::EventId> ids;
    ids.reserve(1000);
    for (int i = 0; i < 1000; ++i) {
      ids.push_back(s.after(sim::secs(1), [] {}));
    }
    for (const auto id : ids) s.cancel(id);
    s.run();
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventCancel);

void BM_FlowNetworkRecompute(benchmark::State& state) {
  const auto flows = static_cast<int>(state.range(0));
  sim::Simulation s;
  sim::FlowNetwork net(s);
  std::vector<sim::PoolId> pools;
  for (int p = 0; p < 16; ++p) {
    pools.push_back(net.add_pool("p" + std::to_string(p), 1e9));
  }
  sim::Rng rng(1);
  for (int f = 0; f < flows; ++f) {
    std::vector<sim::PathLeg> path;
    for (const auto p : pools) {
      if (rng.chance(0.3)) path.emplace_back(p);
    }
    if (path.empty()) path.emplace_back(pools[0]);
    net.start_flow(std::move(path), 1e18, nullptr);
  }
  sim::PoolId probe = pools[0];
  for (auto _ : state) {
    // Each capacity change triggers a full max-min recompute.
    net.set_pool_capacity(probe, 1e9 + static_cast<double>(state.iterations()));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FlowNetworkRecompute)->Arg(16)->Arg(64)->Arg(256);

void BM_TsmExportIndexedLookup(benchmark::State& state) {
  metadb::TsmExportDb db;
  const auto rows = static_cast<std::uint64_t>(state.range(0));
  for (std::uint64_t i = 0; i < rows; ++i) {
    db.upsert(metadb::TapeObjectRow{i + 1, i + 1, "/a/f" + std::to_string(i),
                                    1024, i % 24, i / 24});
  }
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(db.by_path("/a/f" + std::to_string(i++ % rows)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TsmExportIndexedLookup)->Arg(1000)->Arg(100000);

void BM_TsmExportFullScanLookup(benchmark::State& state) {
  metadb::TsmExportDb db;
  const auto rows = static_cast<std::uint64_t>(state.range(0));
  for (std::uint64_t i = 0; i < rows; ++i) {
    db.upsert(metadb::TapeObjectRow{i + 1, i + 1, "/a/f" + std::to_string(i),
                                    1024, i % 24, i / 24});
  }
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        db.by_path_unindexed("/a/f" + std::to_string(i++ % rows)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TsmExportFullScanLookup)->Arg(1000);

// The allocation-free visitor vs the vector-materializing lookup on the
// tape index (24 rows per tape here) — the tape-ordered recall planner's
// hot path after the for_each_u64 migration.
void BM_TsmExportVisitOnTape(benchmark::State& state) {
  metadb::TsmExportDb db;
  const std::uint64_t rows = 100000;
  for (std::uint64_t i = 0; i < rows; ++i) {
    db.upsert(metadb::TapeObjectRow{i + 1, i + 1, "/a/f" + std::to_string(i),
                                    1024, i % 24, i / 24});
  }
  std::uint64_t i = 0;
  std::uint64_t sum = 0;
  for (auto _ : state) {
    if (state.range(0) == 0) {
      db.for_each_on_tape(i++ % 24,
                          [&](const metadb::TapeObjectRow& r) { sum += r.tape_seq; });
    } else {
      for (const auto* r : db.on_tape(i++ % 24)) sum += r->tape_seq;
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(state.range(0) == 0 ? "visitor" : "materialize");
}
BENCHMARK(BM_TsmExportVisitOnTape)->Arg(0)->Arg(1);

// Bulk-batch mutation path: one insert_bulk of N rows vs N singleton
// inserts — the metadb half of the group-commit amortization story.
void BM_TsmTableBulkInsert(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  const bool bulk = state.range(1) != 0;
  for (auto _ : state) {
    metadb::Table<metadb::TapeObjectRow> t(
        [](const metadb::TapeObjectRow& r) { return r.object_id; });
    if (bulk) {
      std::vector<metadb::TapeObjectRow> rows;
      rows.reserve(n);
      for (std::uint64_t i = 0; i < n; ++i) {
        rows.push_back({i + 1, i + 1, {}, 1024, i % 24, i / 24});
      }
      benchmark::DoNotOptimize(t.insert_bulk(std::move(rows)));
    } else {
      for (std::uint64_t i = 0; i < n; ++i) {
        t.insert({i + 1, i + 1, {}, 1024, i % 24, i / 24});
      }
    }
    benchmark::DoNotOptimize(t.size());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
  state.SetLabel(bulk ? "bulk" : "singleton");
}
BENCHMARK(BM_TsmTableBulkInsert)
    ->Args({1024, 0})
    ->Args({1024, 1});

void BM_TapeQueueOrdering(benchmark::State& state) {
  sim::Rng rng(5);
  for (auto _ : state) {
    pftool::TapeCopyQueues<int> q;
    for (int i = 0; i < 1000; ++i) {
      q.add(rng.uniform_u64(1, 8), rng.uniform_u64(1, 100000), i);
    }
    std::uint64_t cart = 0;
    std::vector<int> items;
    while (q.pop_cartridge(&cart, &items)) {
      benchmark::DoNotOptimize(items.size());
    }
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_TapeQueueOrdering);

}  // namespace

BENCHMARK_MAIN();
