// Crash-recovery benchmark and loss gate: WAL replay time vs log length
// and checkpoint interval.
//
// The paper's archive survives host power loss because TSM's database and
// PFTool's restart journals are logged to stable storage; what it pays
// for that is the recovery scan after the crash.  This bench measures the
// simulated equivalent: a metadata plant (object catalog + fixity table +
// restart journal) redo-logged through the WAL, driven through M
// mutations with periodic group-commit barriers, then power-failed and
// recovered.
//
// Two series over the same mutation counts:
//   no checkpoint    the log holds every record since boot; replay time
//                    grows linearly with M,
//   64 KB checkpoint auto-checkpoints bound the log, so recovery time
//                    stays flat no matter how long the plant ran.
// The crossover is the whole argument for checkpointing: the flat series
// costs snapshot installs during normal operation and wins them back at
// recovery time.
//
// Correctness gate (exit non-zero): every durably-acked object must be
// present after recovery, with its fixity row, in every scenario.
//
// Output: a human table plus BENCH_recovery.json, one record per
// (mutations, checkpoint) cell.  Flags: --smoke, --seed=N, --json=PATH.
#include <cinttypes>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "hsm/server.hpp"
#include "integrity/fixity.hpp"
#include "obs/observer.hpp"
#include "pftool/core/restart_journal.hpp"
#include "simcore/units.hpp"
#include "wal/durable.hpp"

namespace {

using namespace cpa;

struct CellResult {
  std::string name;
  std::uint64_t mutations = 0;
  std::uint64_t checkpoint_bytes_cfg = 0;
  std::uint64_t replayed = 0;
  std::uint64_t log_bytes = 0;
  std::uint64_t checkpoint_bytes = 0;
  double recovery_ms = 0;
};

/// Drives `mutations` catalog+fixity+journal updates through a Durable
/// (sync barrier every 8 mutations, like acknowledgement points), then
/// power-fails and recovers.  Returns the recovery stats; appends to
/// `failures` if any durably-acked object or fixity row is missing.
CellResult run_cell(std::uint64_t mutations, std::uint64_t checkpoint_bytes,
                    std::uint64_t seed, std::vector<std::string>* failures) {
  sim::Simulation sim;
  sim::FlowNetwork net(sim);
  obs::Observer obs;
  hsm::ArchiveServer server(sim, net, "tsm0", hsm::ServerConfig{});
  integrity::FixityDb fixity;
  pftool::RestartJournal journal;
  wal::WalConfig cfg;
  cfg.checkpoint_bytes = checkpoint_bytes;
  wal::Durable durable(sim, cfg, obs);
  durable.attach_server(0, server);
  durable.attach_fixity(fixity);
  durable.attach_journal(journal);

  std::vector<std::uint64_t> acked;
  for (std::uint64_t i = 0; i < mutations; ++i) {
    hsm::ArchiveObject o;
    o.object_id = server.allocate_object_id();
    o.gpfs_file_id = o.object_id;
    o.size_bytes = 16 * kMB;
    o.content_tag = seed + i;
    o.cartridge_id = 1 + i % 4;
    o.tape_seq = i;
    o.path = "/arch/d" + std::to_string(i % 16) + "/f" + std::to_string(i);
    const std::uint64_t id = o.object_id;
    server.record_object(std::move(o));
    fixity.add(id, 1 + i % 4, i, 16 * kMB, seed * 1000003 + i, 0);
    if (i % 4 == 0) {
      journal.begin(std::string("/arch/j") + std::to_string(i), 16 * kMB, 4);
      journal.mark_good("/arch/j" + std::to_string(i), i % 4);
    }
    if (i % 8 == 7) {
      durable.sync([&acked, id] { acked.push_back(id); });
      sim.run();
    }
  }
  durable.sync([&acked, &server] { acked.push_back(server.next_object_id()); });
  sim.run();
  acked.pop_back();  // the final barrier's marker, not an object id

  // Whole-host power failure, then recovery from checkpoint + log.
  server.power_fail();
  fixity.clear();
  journal.clear();
  durable.crash(seed);
  const wal::Durable::RecoveryStats st = durable.recover();

  CellResult r;
  r.mutations = mutations;
  r.checkpoint_bytes_cfg = checkpoint_bytes;
  r.replayed = st.replayed_records;
  r.log_bytes = st.log_bytes;
  r.checkpoint_bytes = st.checkpoint_bytes;
  r.recovery_ms = sim::to_seconds(st.duration) * 1e3;
  r.name = "m" + std::to_string(mutations) +
           (checkpoint_bytes == 0 ? "_nockpt" : "_ckpt64k");

  std::uint64_t lost = 0;
  for (const std::uint64_t id : acked) {
    if (server.object(id) == nullptr || fixity.by_object(id).empty()) {
      std::fprintf(stderr, "bench_recovery: %s lost id=%" PRIu64
                           " object=%d fixity=%zu\n",
                   r.name.c_str(), id,
                   server.object(id) != nullptr,
                   fixity.by_object(id).size());
      ++lost;
    }
  }
  if (lost > 0) {
    failures->push_back(r.name + ": " + std::to_string(lost) +
                        " durably-acked object(s) missing after recovery");
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path = "BENCH_recovery.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") smoke = true;
    if (arg.rfind("--json=", 0) == 0) json_path = arg.substr(7);
  }
  const bench::ObsCli cli = bench::parse_obs_cli(argc, argv);
  const std::uint64_t seed = cli.seed_set ? cli.seed : 7;

  bench::header("bench_recovery",
                "WAL crash recovery: replay time vs log length & checkpoints");

  const std::vector<std::uint64_t> sizes =
      smoke ? std::vector<std::uint64_t>{200, 800}
            : std::vector<std::uint64_t>{500, 2000, 8000};
  constexpr std::uint64_t kCkpt = 64 * 1024;

  std::vector<std::string> failures;
  std::vector<CellResult> cells;
  for (const std::uint64_t m : sizes) {
    cells.push_back(run_cell(m, 0, seed, &failures));
    cells.push_back(run_cell(m, kCkpt, seed, &failures));
  }

  std::printf("  scenario      | mutations | replayed | log bytes | ckpt bytes | recovery ms\n");
  std::printf("  --------------+-----------+----------+-----------+------------+------------\n");
  for (const CellResult& c : cells) {
    std::printf("  %-13s | %9" PRIu64 " | %8" PRIu64 " | %9" PRIu64
                " | %10" PRIu64 " | %11.2f\n",
                c.name.c_str(), c.mutations, c.replayed, c.log_bytes,
                c.checkpoint_bytes, c.recovery_ms);
  }

  // The headline: without checkpoints recovery grows with history; with
  // them it stays bounded.  Gate on the largest cell pair.
  const CellResult& big_plain = cells[cells.size() - 2];
  const CellResult& big_ckpt = cells[cells.size() - 1];
  if (big_ckpt.recovery_ms >= big_plain.recovery_ms) {
    failures.push_back("checkpointed recovery not faster than full replay (" +
                       bench::fmt("%.2f", big_ckpt.recovery_ms) + " ms vs " +
                       bench::fmt("%.2f", big_plain.recovery_ms) + " ms)");
  }

  std::string json = "[\n";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const CellResult& c = cells[i];
    char row[320];
    std::snprintf(row, sizeof(row),
                  "  {\"scenario\": \"%s\", \"mutations\": %" PRIu64
                  ", \"replayed\": %" PRIu64 ", \"log_bytes\": %" PRIu64
                  ", \"checkpoint_bytes\": %" PRIu64
                  ", \"recovery_ms\": %.3f}%s\n",
                  c.name.c_str(), c.mutations, c.replayed, c.log_bytes,
                  c.checkpoint_bytes, c.recovery_ms,
                  i + 1 < cells.size() ? "," : "");
    json += row;
  }
  json += "]\n";
  if (std::FILE* f = std::fopen(json_path.c_str(), "w")) {
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::printf("\n  wrote %s\n", json_path.c_str());
  } else {
    std::fprintf(stderr, "bench_recovery: cannot write %s\n",
                 json_path.c_str());
    return 1;
  }

  bench::section("paper vs measured");
  bench::compare("checkpointed recovery bound", "flat in history length",
                 bench::fmt("%.2f ms", big_ckpt.recovery_ms));
  bench::compare(
      "full-replay recovery at max history", "linear in history",
      bench::fmt("%.2f ms", big_plain.recovery_ms));
  bench::compare("durably-acked survival", "100%",
                 failures.empty() ? "100%" : "INCOMPLETE");

  if (!failures.empty()) {
    for (const std::string& f : failures) {
      std::fprintf(stderr, "bench_recovery: FAIL — %s\n", f.c_str());
    }
    return 1;
  }
  std::printf("  every durably-acked mutation survived the crash in every "
              "cell\n");
  return 0;
}
