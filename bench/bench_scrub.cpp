// Scrubber benchmark and correctness gate: tape-ordered vs naive scan
// order, plus the full repair lattice under injected silent corruption.
//
// Three integrity scenarios exercise every rung of the repair lattice
// (Sec 4.1's copy pools are the safety net; the scrubber is the process
// that cashes them in):
//   copy_pool    duplicate volumes clean -> every bad segment rewritten
//                from the copy pool,
//   premigrated  no duplicates but disk data still premigrated -> every
//                bad segment re-migrated from the filesystem,
//   no_source    stubs only, no duplicates -> unrepairable, reported
//                exactly once (a re-scrub stays silent).
// Each scenario injects a known number of corruptions and the binary
// exits non-zero if any injected corruption goes undetected or the
// repair counts disagree -- CI smoke runs double as a correctness gate.
//
// The scan-order scenario measures why the scrubber walks fixity rows in
// (cartridge, tape_seq) order: files archived round-robin over several
// colocation groups interleave volumes in the fixity table, so the
// archive-order (row id) baseline pays a robot exchange on nearly every
// row while the tape-ordered walk pays one mount per volume (the
// Sec 4.2.5 tape-order lesson applied to scrubbing).
//
// Output: a human table plus BENCH_scrub.json, one record per scenario.
// Flags: --smoke (smaller population), --seed=N, --json=PATH.
#include <cinttypes>
#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "hsm/hsm.hpp"
#include "simcore/units.hpp"

namespace {

using namespace cpa;

constexpr std::uint64_t kFileBytes = 64 * kMB;

pfs::FsConfig fs_config() {
  pfs::FsConfig cfg;
  cfg.pools = {pfs::PoolConfig{"fast", 0, 4, false}};
  return cfg;
}

tape::LibraryConfig lib_config() {
  tape::LibraryConfig cfg;
  cfg.drive_count = 4;
  return cfg;
}

hsm::HsmConfig hsm_config(unsigned copies, bool punch) {
  hsm::HsmConfig cfg;
  cfg.tape_copies = copies;
  cfg.punch_after_migrate = punch;
  return cfg;
}

/// One self-contained archive plant with `files` regular files migrated
/// to colocation group "g" (plus copy pools when copies > 1).
struct Plant {
  sim::Simulation sim;
  sim::FlowNetwork net{sim};
  pfs::FileSystem fs;
  tape::TapeLibrary lib;
  hsm::HsmSystem hsm;
  std::vector<std::string> paths;

  /// `groups` > 1 archives file i to colocation group "g<i % groups>" one
  /// file at a time, so consecutive fixity rows land on different volumes
  /// (the ingest pattern that makes archive-order scrubbing pathological).
  Plant(unsigned copies, bool punch, unsigned files, unsigned groups = 1)
      : fs(sim, fs_config()),
        lib(sim, net, lib_config()),
        hsm(sim, net, fs, lib, hsm::Fabric::unconstrained(),
            hsm_config(copies, punch)) {
    for (unsigned i = 0; i < files; ++i) {
      const std::string p = "/arch/f" + std::to_string(i);
      fs.mkdirs(pfs::parent_path(p));
      fs.create(p);
      fs.write_all(p, kFileBytes, 0x9000 + i);
      paths.push_back(p);
    }
    if (groups <= 1) {
      hsm.migrate_batch(0, paths, "g", nullptr);
      sim.run();
    } else {
      for (unsigned i = 0; i < files; ++i) {
        hsm.migrate_batch(0, {paths[i]}, "g" + std::to_string(i % groups),
                          nullptr);
        sim.run();
      }
    }
  }

  /// Flips exactly `count` live segments into silent corruption, spread
  /// over the cartridges selected by `primaries_only` (true skips the
  /// "~copyN" duplicate volumes so the copy pool stays clean).
  std::uint64_t inject(std::uint64_t count, std::uint64_t seed,
                       bool primaries_only) {
    std::uint64_t injected = 0;
    lib.for_each_cartridge([&](tape::Cartridge& c) {
      if (injected >= count) return;
      if (primaries_only &&
          c.colocation_group().find("~copy") != std::string::npos) {
        return;
      }
      injected += c.corrupt_random_segments(count - injected, seed + c.id());
    });
    return injected;
  }

  integrity::ScrubReport scrub(bool tape_ordered) {
    integrity::ScrubConfig cfg;
    cfg.tape_ordered = tape_ordered;
    std::optional<integrity::ScrubReport> out;
    hsm.scrub(cfg, [&](const integrity::ScrubReport& r) { out = r; });
    sim.run();
    return *out;
  }
};

struct ScenarioResult {
  std::string name;
  std::uint64_t injected = 0;
  std::uint64_t detected = 0;
  std::uint64_t repaired_from_copy = 0;
  std::uint64_t remigrated = 0;
  std::uint64_t unrepairable = 0;
  std::uint64_t rescrub_mismatches = 0;  // must be 0: repaired or reported once
};

/// Injects `n` corruptions, scrubs, then scrubs again: the second pass
/// proves repairs stuck and unrepairables are not re-reported.
ScenarioResult run_scenario(const std::string& name, unsigned copies,
                            bool punch, unsigned files, std::uint64_t n,
                            std::uint64_t seed, bool primaries_only,
                            std::vector<std::string>* failures) {
  Plant plant(copies, punch, files);
  ScenarioResult r;
  r.name = name;
  r.injected = plant.inject(n, seed, primaries_only);
  const integrity::ScrubReport first = plant.scrub(/*tape_ordered=*/true);
  const integrity::ScrubReport second = plant.scrub(/*tape_ordered=*/true);
  r.detected = first.mismatches;
  r.repaired_from_copy = first.repaired_from_copy;
  r.remigrated = first.remigrated;
  r.unrepairable = first.unrepairable;
  r.rescrub_mismatches = second.mismatches;
  if (r.injected != n) {
    failures->push_back(name + ": injected " + std::to_string(r.injected) +
                        " of " + std::to_string(n) + " requested corruptions");
  }
  if (r.detected != r.injected) {
    failures->push_back(name + ": " + std::to_string(r.injected - r.detected) +
                        " injected corruption(s) went undetected");
  }
  if (r.rescrub_mismatches != 0) {
    failures->push_back(name + ": re-scrub still sees " +
                        std::to_string(r.rescrub_mismatches) + " mismatches");
  }
  return r;
}

struct OrderResult {
  std::uint64_t segments = 0;
  double tape_ordered_seconds = 0;
  double naive_seconds = 0;
  std::uint64_t tape_ordered_mounts = 0;
  std::uint64_t naive_mounts = 0;

  [[nodiscard]] double speedup() const {
    return tape_ordered_seconds > 0 ? naive_seconds / tape_ordered_seconds : 0;
  }
};

/// Clean (no corruption) scan-cost comparison on identical plants.  Files
/// archived round-robin over four colocation groups interleave volumes in
/// the fixity table, so archive order pays a robot exchange on almost
/// every row while tape order pays one mount per volume.
OrderResult run_order_comparison(unsigned files) {
  OrderResult out;
  for (const bool tape_ordered : {true, false}) {
    Plant plant(/*copies=*/1, /*punch=*/true, files, /*groups=*/4);
    const std::uint64_t mounts0 = plant.lib.aggregate_stats().mounts;
    const integrity::ScrubReport rep = plant.scrub(tape_ordered);
    const double secs = sim::to_seconds(rep.finished - rep.started);
    const std::uint64_t mounts = plant.lib.aggregate_stats().mounts - mounts0;
    out.segments = rep.segments_scanned;
    if (tape_ordered) {
      out.tape_ordered_seconds = secs;
      out.tape_ordered_mounts = mounts;
    } else {
      out.naive_seconds = secs;
      out.naive_mounts = mounts;
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path = "BENCH_scrub.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") smoke = true;
    if (arg.rfind("--json=", 0) == 0) json_path = arg.substr(7);
  }
  const bench::ObsCli cli = bench::parse_obs_cli(argc, argv);
  const std::uint64_t seed = cli.seed_set ? cli.seed : 42;

  const unsigned files = smoke ? 10 : 40;
  const std::uint64_t inject = smoke ? 4 : 10;

  bench::header("bench_scrub",
                "fixity scrubbing: repair lattice + tape-ordered scan");

  std::vector<std::string> failures;
  std::vector<ScenarioResult> scenarios;
  scenarios.push_back(run_scenario("copy_pool", /*copies=*/2, /*punch=*/true,
                                   files, inject, seed,
                                   /*primaries_only=*/true, &failures));
  scenarios.push_back(run_scenario("premigrated", /*copies=*/1, /*punch=*/false,
                                   files, inject, seed,
                                   /*primaries_only=*/false, &failures));
  scenarios.push_back(run_scenario("no_source", /*copies=*/1, /*punch=*/true,
                                   files, inject, seed,
                                   /*primaries_only=*/false, &failures));
  if (scenarios[0].repaired_from_copy != scenarios[0].injected) {
    failures.push_back("copy_pool: expected every corruption repaired from "
                       "the copy pool");
  }
  if (scenarios[1].remigrated != scenarios[1].injected) {
    failures.push_back("premigrated: expected every corruption re-migrated "
                       "from disk data");
  }
  if (scenarios[2].unrepairable != scenarios[2].injected) {
    failures.push_back("no_source: expected every corruption reported "
                       "unrepairable");
  }

  std::printf("  scenario     | injected | detected | copy-fix | remigr | unrep | re-scrub\n");
  std::printf("  -------------+----------+----------+----------+--------+-------+---------\n");
  for (const ScenarioResult& s : scenarios) {
    std::printf("  %-12s | %8" PRIu64 " | %8" PRIu64 " | %8" PRIu64
                " | %6" PRIu64 " | %5" PRIu64 " | %8" PRIu64 "\n",
                s.name.c_str(), s.injected, s.detected, s.repaired_from_copy,
                s.remigrated, s.unrepairable, s.rescrub_mismatches);
  }

  const OrderResult order = run_order_comparison(files);
  bench::section("scan order (clean pass, 4 interleaved groups)");
  std::printf("  order        | segments | mounts | virtual seconds\n");
  std::printf("  -------------+----------+--------+----------------\n");
  std::printf("  tape-ordered | %8" PRIu64 " | %6" PRIu64 " | %15.0f\n",
              order.segments, order.tape_ordered_mounts,
              order.tape_ordered_seconds);
  std::printf("  archive-order| %8" PRIu64 " | %6" PRIu64 " | %15.0f\n",
              order.segments, order.naive_mounts, order.naive_seconds);

  std::string json = "[\n";
  for (const ScenarioResult& s : scenarios) {
    char row[320];
    std::snprintf(row, sizeof(row),
                  "  {\"scenario\": \"%s\", \"injected\": %" PRIu64
                  ", \"detected\": %" PRIu64 ", \"repaired_from_copy\": %" PRIu64
                  ", \"remigrated\": %" PRIu64 ", \"unrepairable\": %" PRIu64
                  ", \"rescrub_mismatches\": %" PRIu64 "},\n",
                  s.name.c_str(), s.injected, s.detected, s.repaired_from_copy,
                  s.remigrated, s.unrepairable, s.rescrub_mismatches);
    json += row;
  }
  char row[320];
  std::snprintf(row, sizeof(row),
                "  {\"scenario\": \"scan_order\", \"segments\": %" PRIu64
                ", \"tape_ordered_seconds\": %.0f, \"naive_seconds\": %.0f"
                ", \"tape_ordered_mounts\": %" PRIu64
                ", \"naive_mounts\": %" PRIu64 ", \"speedup\": %.2f}\n",
                order.segments, order.tape_ordered_seconds, order.naive_seconds,
                order.tape_ordered_mounts, order.naive_mounts, order.speedup());
  json += row;
  json += "]\n";
  if (std::FILE* f = std::fopen(json_path.c_str(), "w")) {
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::printf("\n  wrote %s\n", json_path.c_str());
  } else {
    std::fprintf(stderr, "bench_scrub: cannot write %s\n", json_path.c_str());
    return 1;
  }

  bench::section("paper vs measured");
  bench::compare("tape-ordered scrub speedup", "one mount per volume",
                 bench::fmt("%.1fx", order.speedup()));
  bench::compare("silent corruption detection", "100%",
                 failures.empty() ? "100%" : "INCOMPLETE");

  if (!failures.empty()) {
    for (const std::string& f : failures) {
      std::fprintf(stderr, "bench_scrub: FAIL — %s\n", f.c_str());
    }
    return 1;
  }
  std::printf("  every injected corruption detected and resolved per the "
              "repair lattice\n");
  return 0;
}
