// Shared output helpers for the paper-reproduction benchmarks.
//
// Every bench binary prints (a) the series/rows the corresponding paper
// figure or table reports, and (b) a paper-vs-measured summary block that
// EXPERIMENTS.md records.  Absolute equality with the paper's testbed is
// not expected; the *shape* (who wins, by what factor, where crossovers
// fall) is the reproduction target.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace cpa::bench {

inline void header(const std::string& id, const std::string& title) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", id.c_str(), title.c_str());
  std::printf("==============================================================\n");
}

inline void section(const std::string& name) {
  std::printf("\n-- %s --\n", name.c_str());
}

/// One paper-vs-measured comparison row.
inline void compare(const std::string& metric, const std::string& paper,
                    const std::string& measured) {
  std::printf("  %-38s paper: %-18s measured: %s\n", metric.c_str(),
              paper.c_str(), measured.c_str());
}

inline std::string fmt(const char* format, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), format, value);
  return buf;
}

/// Observability flags shared by the bench mains.  `--trace=out.json`
/// turns span recording on and writes Chrome trace JSON (open it in
/// chrome://tracing or https://ui.perfetto.dev); `--metrics=out.txt`
/// writes the full metrics-registry summary.  Both default off, so plain
/// runs pay only the disabled-recorder branch.
struct ObsCli {
  std::string trace_path;
  std::string metrics_path;
  /// `--profile=out.txt`: run the causal critical-path profiler after the
  /// bench and write the attribution report ("-" = stdout).  Implies
  /// tracing for the run.
  std::string profile_path;
  /// Fault-spec string (fault/plan.hpp grammar, or a bench-defined alias
  /// like "auto") from `--fault=...`.  Empty means fault-free.
  std::string fault_spec;
  /// Simulation seed from `--seed=N`; benches that take it pass it to
  /// their workload generator so runs are reproducible bit-for-bit.
  std::uint64_t seed = 0;
  bool seed_set = false;
  [[nodiscard]] bool tracing() const {
    return !trace_path.empty() || !profile_path.empty();
  }
};

inline ObsCli parse_obs_cli(int argc, char** argv) {
  ObsCli cli;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--trace=", 0) == 0) {
      cli.trace_path = arg.substr(8);
    } else if (arg.rfind("--metrics=", 0) == 0) {
      cli.metrics_path = arg.substr(10);
    } else if (arg.rfind("--profile=", 0) == 0) {
      cli.profile_path = arg.substr(10);
    } else if (arg.rfind("--fault=", 0) == 0) {
      cli.fault_spec = arg.substr(8);
    } else if (arg.rfind("--seed=", 0) == 0) {
      cli.seed = std::strtoull(arg.c_str() + 7, nullptr, 10);
      cli.seed_set = true;
    }
  }
  return cli;
}

}  // namespace cpa::bench
