// Shared output helpers for the paper-reproduction benchmarks.
//
// Every bench binary prints (a) the series/rows the corresponding paper
// figure or table reports, and (b) a paper-vs-measured summary block that
// EXPERIMENTS.md records.  Absolute equality with the paper's testbed is
// not expected; the *shape* (who wins, by what factor, where crossovers
// fall) is the reproduction target.
#pragma once

#include <cstdio>
#include <string>

namespace cpa::bench {

inline void header(const std::string& id, const std::string& title) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", id.c_str(), title.c_str());
  std::printf("==============================================================\n");
}

inline void section(const std::string& name) {
  std::printf("\n-- %s --\n", name.c_str());
}

/// One paper-vs-measured comparison row.
inline void compare(const std::string& metric, const std::string& paper,
                    const std::string& measured) {
  std::printf("  %-38s paper: %-18s measured: %s\n", metric.c_str(),
              paper.c_str(), measured.c_str());
}

inline std::string fmt(const char* format, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), format, value);
  return buf;
}

}  // namespace cpa::bench
