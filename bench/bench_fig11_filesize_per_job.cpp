// Figure 11: "Average File Size MB/file per job" over the same 62 jobs.
// Paper: range 4 KB .. 4,220 MB per file, mean 596 MB — the diversity of
// the Open Science projects' data characteristics.
#include <cstdio>

#include "bench/campaign_runner.hpp"
#include "bench/common.hpp"
#include "simcore/stats.hpp"
#include "simcore/units.hpp"

int main() {
  using namespace cpa;
  bench::header("Figure 11", "Average file size per job (62 jobs, 18 days)");

  const bench::CampaignResult result = bench::run_campaign();

  bench::section("series (job id, MB/file)");
  sim::Samples avg;
  for (const auto& job : result.jobs) {
    const double mb = static_cast<double>(job.spec.avg_file_size) /
                      static_cast<double>(kMB);
    avg.add(mb);
    std::printf("  job %2u  %10.3f MB/file\n", job.spec.job_id, mb);
  }

  bench::section("paper vs measured");
  bench::compare("min avg file size", "4 KB (0.004 MB)",
                 bench::fmt("%.3f MB", avg.min()));
  bench::compare("max avg file size", "4,220 MB", bench::fmt("%.0f MB", avg.max()));
  bench::compare("mean avg file size", "596 MB", bench::fmt("%.0f MB", avg.mean()));
  return 0;
}
