// Sec 3.1 issue 1 ("Due to NFS access you have 'the grep from &*&(*&'")
// and Sec 4.2.3: "A simple example of this would be 'grep' looking for a
// pattern across a set of files ... This recall has no order and can
// result in a tape rewinding and seeking repeatedly to find files ...
// especially problematic when we consider 'grep' commands across
// machines."
//
// Model: a user greps a migrated project over NFS.  Each file read blocks
// on its own demand recall, issued in directory order from whatever
// machine the NFS request landed on.  Compare with the jail's answer —
// recall the set through PFTool (one batched, tape-ordered, node-affine
// request) and run the scan on disk.
#include <cstdio>

#include "archive/system.hpp"
#include "bench/common.hpp"
#include "workload/tree.hpp"

namespace {

using namespace cpa;

struct Outcome {
  double seconds = 0;
  std::uint64_t seeks = 0;
  std::uint64_t mounts = 0;
};

archive::SystemConfig plant() { return archive::SystemConfig::roadrunner(); }

void populate(archive::CotsParallelArchive& sys, unsigned files,
              std::vector<std::string>* paths) {
  workload::TreeSpec tree;
  tree.root = "/proj/grepme";
  for (unsigned i = 0; i < files; ++i) tree.file_sizes.push_back(64 * kMB);
  workload::build_tree(sys.archive_fs(), tree);
  for (unsigned i = 0; i < files; ++i) {
    paths->push_back(workload::tree_file_path(tree, i));
  }
  sys.hsm().parallel_migrate(*paths, {0, 1, 2, 3},
                             hsm::DistributionStrategy::SizeBalanced, "g",
                             nullptr);
  sys.sim().run();
}

/// The grep: one demand recall per file, request order, arbitrary node.
Outcome nfs_grep(unsigned files) {
  archive::CotsParallelArchive sys(plant());
  std::vector<std::string> paths;
  populate(sys, files, &paths);
  const auto before = sys.library().aggregate_stats();
  const sim::Tick t0 = sys.sim().now();

  // Sequential: grep blocks on each file before opening the next.
  auto step = std::make_shared<std::function<void(std::size_t)>>();
  *step = [&sys, paths, step](std::size_t i) {
    if (i >= paths.size()) return;
    hsm::RecallOptions opts;
    opts.tape_ordered = false;  // demand recall knows no order
    // Each NFS read lands on whichever cluster node served the mount —
    // consecutive recalls of the same tape hop between machines.
    opts.nodes = {static_cast<tape::NodeId>(i % 10)};
    sys.hsm().recall({paths[i]}, opts,
                     [step, i](const hsm::RecallReport&) { (*step)(i + 1); });
  };
  (*step)(0);
  sys.sim().run();

  Outcome out;
  out.seconds = sim::to_seconds(sys.sim().now() - t0);
  const auto after = sys.library().aggregate_stats();
  out.seeks = after.seeks - before.seeks;
  out.mounts = after.mounts - before.mounts;
  return out;
}

/// The jail's answer: one batched PFTool recall, tape-ordered, affine.
Outcome pftool_recall(unsigned files) {
  archive::CotsParallelArchive sys(plant());
  std::vector<std::string> paths;
  populate(sys, files, &paths);
  const auto before = sys.library().aggregate_stats();
  const sim::Tick t0 = sys.sim().now();
  hsm::RecallOptions opts;
  opts.tape_ordered = true;
  opts.assignment = hsm::RecallOptions::Assignment::TapeAffinity;
  opts.nodes = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  sys.hsm().recall(paths, opts, nullptr);
  sys.sim().run();
  Outcome out;
  out.seconds = sim::to_seconds(sys.sim().now() - t0);
  const auto after = sys.library().aggregate_stats();
  out.seeks = after.seeks - before.seeks;
  out.mounts = after.mounts - before.mounts;
  return out;
}

}  // namespace

int main() {
  bench::header("Sec 3.1(1)/4.2.3", "'The grep from hell' vs jailed PFTool recall");

  std::printf("\n  files | access pattern   | seconds | seeks | volume mounts\n");
  std::printf("  ------+------------------+---------+-------+--------------\n");
  Outcome grep{}, tool{};
  for (const unsigned files : {32u, 128u}) {
    grep = nfs_grep(files);
    tool = pftool_recall(files);
    std::printf("  %5u | NFS grep         | %7.0f | %5llu | %13llu\n", files,
                grep.seconds, static_cast<unsigned long long>(grep.seeks),
                static_cast<unsigned long long>(grep.mounts));
    std::printf("  %5u | jailed PFTool    | %7.0f | %5llu | %13llu\n", files,
                tool.seconds, static_cast<unsigned long long>(tool.seeks),
                static_cast<unsigned long long>(tool.mounts));
  }

  bench::section("paper vs measured (128 files)");
  bench::compare("NFS grep behaviour",
                 "\"mounted and dismounted repeatedly\"",
                 std::to_string(grep.seeks) + " seeks, " +
                     std::to_string(grep.mounts) + " mounts");
  bench::compare("jailed PFTool", "sequential tape read",
                 std::to_string(tool.seeks) + " seeks");
  bench::compare("why the jail exists", "avoid dangerous grep",
                 bench::fmt("%.0fx faster via PFTool", grep.seconds / tool.seconds));
  return 0;
}
