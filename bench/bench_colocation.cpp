// Ablation: ILM storage-pool co-location in the tape back end
// (Sec 4.1: "Add support for ILM stgpool and co-location features in the
//  archive back-end"; Sec 3.1 items 6-7: "multiple copies, smart
//  placement").
//
// Interleave migrations from four projects, then recall ONE project.
// With co-location each project clusters on its own few volumes; without
// it the interleaved objects land on shared volumes and the recall must
// read around other projects' data (more volumes mounted, more seeking).
#include <cstdio>

#include "archive/system.hpp"
#include "bench/common.hpp"

namespace {

using namespace cpa;

struct Outcome {
  double seconds = 0;
  std::uint64_t mounts = 0;
  std::size_t cartridges_in_library = 0;
  double seek_seconds = 0;
};

Outcome run(bool colocate, unsigned projects, unsigned files_per_project) {
  archive::SystemConfig cfg = archive::SystemConfig::roadrunner();
  // Small volumes so project interleaving visibly spreads across media.
  cfg.tape.cartridge_capacity = 40 * kGB;
  archive::CotsParallelArchive sys(cfg);

  // Interleaved arrival: one file from each project in rotation, batched
  // to tape in arrival order (what a colocation-blind back end does).
  std::vector<std::vector<std::string>> project_paths(projects);
  std::vector<std::string> arrival;
  for (unsigned f = 0; f < files_per_project; ++f) {
    for (unsigned p = 0; p < projects; ++p) {
      const std::string path =
          "/proj/p" + std::to_string(p) + "/f" + std::to_string(f);
      sys.make_file(sys.archive_fs(), path, 2 * kGB, p * 1000 + f);
      project_paths[p].push_back(path);
      arrival.push_back(path);
    }
  }
  // Migrate in arrival order; the co-location group is either per-project
  // or one shared scratch pool.
  auto migrate_seq = std::make_shared<std::function<void(std::size_t)>>();
  *migrate_seq = [&sys, arrival, colocate, migrate_seq](std::size_t i) {
    if (i >= arrival.size()) return;
    const std::string& path = arrival[i];
    const std::string group =
        colocate ? path.substr(0, path.find('/', 6)) : "shared";
    sys.hsm().migrate_batch(0, {path}, group,
                            [migrate_seq, i](const hsm::MigrateReport&) {
                              (*migrate_seq)(i + 1);
                            });
  };
  (*migrate_seq)(0);
  sys.sim().run();

  // Recall project 0 only.
  const auto before = sys.library().aggregate_stats();
  const sim::Tick t0 = sys.sim().now();
  hsm::RecallOptions opts;
  opts.nodes = {0, 1, 2, 3};
  sys.hsm().recall(project_paths[0], opts, nullptr);
  sys.sim().run();
  const auto after = sys.library().aggregate_stats();

  Outcome out;
  out.seconds = sim::to_seconds(sys.sim().now() - t0);
  out.mounts = after.mounts - before.mounts;
  out.cartridges_in_library = sys.library().cartridge_count();
  out.seek_seconds = sim::to_seconds(after.seek_time - before.seek_time);
  return out;
}

}  // namespace

int main() {
  bench::header("Ablation", "Tape co-location groups vs shared scratch pool");

  constexpr unsigned kProjects = 4;
  constexpr unsigned kFiles = 40;
  const Outcome with = run(true, kProjects, kFiles);
  const Outcome without = run(false, kProjects, kFiles);

  std::printf("\n  policy        | recall (s) | volumes mounted | seek time (s) | library volumes\n");
  std::printf("  --------------+------------+-----------------+---------------+----------------\n");
  std::printf("  co-located    | %10.0f | %15llu | %13.0f | %15zu\n", with.seconds,
              static_cast<unsigned long long>(with.mounts), with.seek_seconds,
              with.cartridges_in_library);
  std::printf("  shared pool   | %10.0f | %15llu | %13.0f | %15zu\n",
              without.seconds, static_cast<unsigned long long>(without.mounts),
              without.seek_seconds, without.cartridges_in_library);

  bench::section("paper vs measured (recall one of four interleaved projects)");
  bench::compare("volumes touched", "fewer with co-location",
                 bench::fmt("%.0f", static_cast<double>(with.mounts)) + " vs " +
                     bench::fmt("%.0f", static_cast<double>(without.mounts)));
  bench::compare("recall time", "faster with co-location",
                 bench::fmt("%.1fx", without.seconds / with.seconds));
  return 0;
}
