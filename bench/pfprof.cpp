// pfprof: causal critical-path profiler CLI.
//
// Answers the paper's "why is this job slower than the hardware" question
// for any recorded run: loads a trace (TraceRecorder::save format) or runs
// the Figure-10 campaign in-process with tracing on, then prints per-class
// attribution tables, exact p50/p95/p99/max latency percentiles, and the
// top-k critical-path spans.  Exits nonzero if any job's bucket
// decomposition fails the `sum(buckets) == wall-clock` invariant, so CI
// can use it as a conservation gate.
//
// Usage:
//   pfprof --trace=run.cpatrace [--topk=N] [--out=report.txt]
//   pfprof --campaign [--scale=0.01] [--seed=2009] [--fault=auto]
//          [--topk=N] [--out=report.txt] [--save-trace=run.cpatrace]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "bench/campaign_runner.hpp"
#include "obs/profile.hpp"
#include "obs/trace.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --trace=FILE | --campaign [--scale=S] [--seed=N] "
               "[--fault=SPEC] [--topk=K] [--out=FILE] [--save-trace=FILE]\n",
               argv0);
  return 2;
}

bool write_text(const std::string& path, const std::string& text) {
  if (path == "-") {
    std::fputs(text.c_str(), stdout);
    return true;
  }
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fputs(text.c_str(), f);
  std::fclose(f);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cpa;

  std::string trace_path;
  std::string out_path = "-";
  std::string save_trace;
  std::string fault_spec;
  bool campaign = false;
  double scale = 0.01;
  std::uint64_t seed = 2009;
  std::size_t topk = 10;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--trace=", 0) == 0) {
      trace_path = arg.substr(8);
    } else if (arg == "--campaign") {
      campaign = true;
    } else if (arg.rfind("--scale=", 0) == 0) {
      scale = std::strtod(arg.c_str() + 8, nullptr);
    } else if (arg.rfind("--seed=", 0) == 0) {
      seed = std::strtoull(arg.c_str() + 7, nullptr, 10);
    } else if (arg.rfind("--fault=", 0) == 0) {
      fault_spec = arg.substr(8);
    } else if (arg.rfind("--topk=", 0) == 0) {
      topk = std::strtoull(arg.c_str() + 7, nullptr, 10);
    } else if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(6);
    } else if (arg.rfind("--save-trace=", 0) == 0) {
      save_trace = arg.substr(13);
    } else {
      return usage(argv[0]);
    }
  }
  if (campaign == !trace_path.empty()) return usage(argv[0]);

  obs::TraceRecorder trace;
  if (campaign) {
    bench::CampaignOptions opts;
    opts.file_count_scale = scale;
    opts.seed = seed;
    opts.fault_spec = fault_spec;
    opts.profile = true;
    opts.profile_topk = topk;
    opts.raw_trace_path = save_trace;
    std::fprintf(stderr, "pfprof: running campaign (scale %g, seed %llu)...\n",
                 scale, static_cast<unsigned long long>(seed));
    const bench::CampaignResult result = bench::run_campaign(opts);
    if (!write_text(out_path, result.profile_report)) {
      std::fprintf(stderr, "pfprof: cannot write %s\n", out_path.c_str());
      return 2;
    }
    if (!save_trace.empty() && !result.trace_written) {
      std::fprintf(stderr, "pfprof: cannot save trace %s\n",
                   save_trace.c_str());
      return 2;
    }
    if (!result.profile_conservation_ok) {
      std::fprintf(stderr,
                   "pfprof: CONSERVATION VIOLATION: bucket sums diverged "
                   "from job wall-clock\n");
      return 1;
    }
    std::fprintf(stderr, "pfprof: %zu jobs profiled, conservation ok\n",
                 result.profiled_jobs);
    return 0;
  }

  if (!trace.load(trace_path)) {
    std::fprintf(stderr, "pfprof: cannot load trace %s\n", trace_path.c_str());
    return 2;
  }
  if (!save_trace.empty() && !trace.save(save_trace)) {
    std::fprintf(stderr, "pfprof: cannot save trace %s\n", save_trace.c_str());
    return 2;
  }
  const obs::Profiler prof(trace);
  if (!write_text(out_path, prof.report(topk))) {
    std::fprintf(stderr, "pfprof: cannot write %s\n", out_path.c_str());
    return 2;
  }
  if (!prof.conservation_ok()) {
    std::fprintf(stderr,
                 "pfprof: CONSERVATION VIOLATION in %zu of %zu jobs\n",
                 prof.violations(), prof.jobs().size());
    return 1;
  }
  std::fprintf(stderr, "pfprof: %zu jobs profiled, conservation ok\n",
               prof.jobs().size());
  return 0;
}
