// Sec 4.2.1: "Based on performance testing in our environment, GPFS can
// scan one million inodes in ten minutes.  This indicates that GPFS
// scales well under a heavy load ... and is a good fit in a parallel
// archive."
//
// Build a namespace, run a policy scan, and report the virtual scan time
// for 1M inodes at 1 and N parallel scan streams.  (The namespace here is
// smaller; the model's scan rate is what calibrates the claim.)
#include <cstdio>

#include "archive/system.hpp"
#include "bench/common.hpp"
#include "workload/tree.hpp"

int main() {
  using namespace cpa;
  bench::header("Sec 4.2.1", "GPFS policy-engine inode scan rate");

  archive::CotsParallelArchive sys(archive::SystemConfig::roadrunner());

  // A real namespace to scan: 50k files.
  workload::TreeSpec tree;
  tree.root = "/proj/data";
  for (int i = 0; i < 50'000; ++i) tree.file_sizes.push_back(kMB);
  workload::build_tree(sys.archive_fs(), tree);

  pfs::Rule rule;
  rule.name = "all-files";
  rule.action = pfs::Rule::Action::List;
  sys.policy().add_rule(rule);

  std::printf("\n  inodes  | streams | scan time\n");
  std::printf("  --------+---------+----------\n");
  const pfs::ScanReport real = sys.policy().run_scan(sys.archive_fs(), 1);
  std::printf("  %7llu | %7u | %s (measured scan of the built namespace)\n",
              static_cast<unsigned long long>(real.inodes_scanned), 1u,
              sim::format_duration(real.scan_duration).c_str());

  double one_stream_minutes = 0;
  for (const unsigned streams : {1u, 5u, 10u}) {
    const sim::Tick t = sys.archive_fs().scan_duration(1'000'000, streams);
    if (streams == 1) one_stream_minutes = sim::to_seconds(t) / 60.0;
    std::printf("  1000000 | %7u | %s (model extrapolation)\n", streams,
                sim::format_duration(t).c_str());
  }

  bench::section("paper vs measured");
  bench::compare("1M inodes, one scan stream", "10 minutes",
                 bench::fmt("%.1f minutes", one_stream_minutes));
  bench::compare("matched files", "all regular files",
                 std::to_string(real.matches.at("all-files").size()));
  return 0;
}
