// Figure 6, "Parallel data movement": with LAN-free, "If you have
// multiple machines running LAN-free, they can read and write to
// different tapes independently of each other.  This allows for parallel
// data movement to and from tape."
//
// Sweep the mover count (each mover drives its own volume on its own
// drive) and report aggregate tape bandwidth, against the single-server
// LAN topology of Figure 5 where everything funnels through one machine.
#include <cstdio>

#include "archive/system.hpp"
#include "bench/common.hpp"

namespace {

using namespace cpa;

double migrate_rate_mbs(bool lan_free, unsigned movers) {
  archive::SystemConfig cfg = archive::SystemConfig::roadrunner();
  cfg.hsm.lan_free = lan_free;
  archive::CotsParallelArchive sys(cfg);
  std::vector<std::string> paths;
  for (unsigned i = 0; i < movers * 20; ++i) {
    const std::string p = "/arch/f" + std::to_string(i);
    sys.make_file(sys.archive_fs(), p, 5 * kGB, i);
    paths.push_back(p);
  }
  std::vector<tape::NodeId> nodes;
  for (unsigned n = 0; n < movers; ++n) nodes.push_back(n % 10);
  double rate = 0;
  sys.hsm().parallel_migrate(paths, nodes,
                             hsm::DistributionStrategy::SizeBalanced, "g",
                             [&](const hsm::MigrateReport& r) {
                               rate = r.mean_rate_bps();
                             });
  sys.sim().run();
  return rate / static_cast<double>(kMB);
}

}  // namespace

int main() {
  bench::header("Figures 5-6", "Tape bandwidth vs movers: LAN-free vs server-routed");

  std::printf("\n  movers | LAN-free (MB/s) | via TSM server (MB/s)\n");
  std::printf("  -------+-----------------+----------------------\n");
  double free1 = 0, free16 = 0, lan16 = 0;
  for (const unsigned movers : {1u, 2u, 4u, 8u, 16u}) {
    const double lanfree = migrate_rate_mbs(true, movers);
    const double routed = migrate_rate_mbs(false, movers);
    std::printf("  %6u | %15.0f | %21.0f\n", movers, lanfree, routed);
    if (movers == 1) free1 = lanfree;
    if (movers == 16) {
      free16 = lanfree;
      lan16 = routed;
    }
  }

  bench::section("paper vs measured");
  bench::compare("LAN-free scaling 1->16 movers",
                 "independent tapes in parallel",
                 bench::fmt("%.1fx", free16 / free1));
  bench::compare("LAN-free vs server-routed at 16",
                 "server NIC is the bottleneck",
                 bench::fmt("%.0fx", free16 / lan16));
  return 0;
}
