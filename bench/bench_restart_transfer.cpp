// Sec 4.5 "Restart-able File Transfer":
//   "What about restarting a 40 Terabyte file, we don't want to start it
//    from the beginning ... we mark regular file chunks or FUSE file
//    chunks as good or bad so that we don't have to re-send known good
//    chunks.  This is a unique incremental parallel archive feature that
//    can reduce unnecessary data copy and increase performance."
//
// Interrupt a very large transfer at various completion fractions, then
// restart with and without the chunk journal, and compare bytes re-sent.
#include <cstdio>

#include "archive/system.hpp"
#include "bench/common.hpp"

namespace {

using namespace cpa;

struct Outcome {
  double resent_gb = 0;
  double restart_seconds = 0;
};

Outcome restart_after(double fail_fraction, bool journaled,
                      std::uint64_t file_size) {
  archive::CotsParallelArchive sys(archive::SystemConfig::roadrunner());
  sys.make_file(sys.scratch(), "/scratch/huge", file_size, 0x40AB);

  pftool::PftoolConfig cfg = sys.config().pftool;
  cfg.num_workers = 16;
  cfg.restartable = journaled;

  // Simulate the interrupted first attempt: the journal recorded the
  // first `fail_fraction` of chunks as good before the network died.
  const pftool::ChunkPlanner planner(cfg.planner);
  const pftool::CopyPlan plan = planner.plan(file_size);
  const auto good = static_cast<std::uint64_t>(
      static_cast<double>(plan.chunks.size()) * fail_fraction);
  if (journaled) {
    sys.journal().begin("/proj/huge", file_size, plan.chunks.size());
    for (std::uint64_t i = 0; i < good; ++i) {
      sys.journal().mark_good("/proj/huge", i);
    }
  }
  // The interrupted run also left the partially-written destination.
  if (plan.mode == pftool::CopyMode::FuseNtoN) {
    sys.fuse().create("/proj/huge", file_size);
    for (std::uint64_t i = 0; i < good; ++i) {
      sys.fuse().write_chunk("/proj/huge", i, pftool::chunk_tag(0x40AB, i));
    }
  }

  const sim::Tick t0 = sys.sim().now();
  const auto r = pftool::sim::run_pfcp(sys.job_env(false), cfg, "/scratch/huge",
                                       "/proj/huge");
  Outcome out;
  out.resent_gb = static_cast<double>(r.bytes_copied) / static_cast<double>(kGB);
  out.restart_seconds = sim::to_seconds(r.finished - t0);
  return out;
}

}  // namespace

int main() {
  bench::header("Sec 4.5", "Restart-able transfer: chunk journal vs full re-send");

  constexpr std::uint64_t kFile = 2 * kTB;  // scaled stand-in for the 40 TB case

  std::printf("\n  interrupted at | journaled re-send (GB) | naive re-send (GB) | saved\n");
  std::printf("  ---------------+------------------------+--------------------+------\n");
  double saved90 = 0;
  for (const double frac : {0.25, 0.50, 0.90}) {
    const Outcome j = restart_after(frac, true, kFile);
    const Outcome n = restart_after(frac, false, kFile);
    std::printf("  %13.0f%% | %22.0f | %18.0f | %4.0f%%\n", frac * 100.0,
                j.resent_gb, n.resent_gb,
                100.0 * (1.0 - j.resent_gb / n.resent_gb));
    if (frac == 0.90) saved90 = 1.0 - j.resent_gb / n.resent_gb;
  }

  bench::section("paper vs measured");
  bench::compare("re-send after 90% interrupt", "only the bad chunks",
                 bench::fmt("%.0f%% of bytes saved", saved90 * 100.0));
  std::printf("\n  (For the paper's 40 TB file a 90%%-complete interrupt saves\n"
              "   ~36 TB of re-copy; scaled proportionally here.)\n");
  return 0;
}
