// Sec 4.5 "Restart-able File Transfer":
//   "What about restarting a 40 Terabyte file, we don't want to start it
//    from the beginning ... we mark regular file chunks or FUSE file
//    chunks as good or bad so that we don't have to re-send known good
//    chunks.  This is a unique incremental parallel archive feature that
//    can reduce unnecessary data copy and increase performance."
//
// Interrupt a very large transfer at various completion fractions, then
// restart with and without the chunk journal, and compare bytes re-sent.
//
// With `--fault=<plan>` the bench instead runs the fault-matrix smoke
// used by ci.sh: a multi-file pfcp plus a parallel migration ride out the
// injected faults (retry + journal resume), then pfcm verifies the tree
// byte-exactly.  Exit 1 on any unrecovered file, 2 on a bad plan spec.
#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "archive/system.hpp"
#include "bench/common.hpp"

namespace {

using namespace cpa;

struct Outcome {
  double resent_gb = 0;
  double restart_seconds = 0;
};

Outcome restart_after(double fail_fraction, bool journaled,
                      std::uint64_t file_size) {
  archive::CotsParallelArchive sys(archive::SystemConfig::roadrunner());
  sys.make_file(sys.scratch(), "/scratch/huge", file_size, 0x40AB);

  pftool::PftoolConfig cfg = sys.config().pftool;
  cfg.num_workers = 16;
  cfg.restartable = journaled;

  // Simulate the interrupted first attempt: the journal recorded the
  // first `fail_fraction` of chunks as good before the network died.
  const pftool::ChunkPlanner planner(cfg.planner);
  const pftool::CopyPlan plan = planner.plan(file_size);
  const auto good = static_cast<std::uint64_t>(
      static_cast<double>(plan.chunks.size()) * fail_fraction);
  if (journaled) {
    sys.journal().begin("/proj/huge", file_size, plan.chunks.size());
    for (std::uint64_t i = 0; i < good; ++i) {
      sys.journal().mark_good("/proj/huge", i);
    }
  }
  // The interrupted run also left the partially-written destination.
  if (plan.mode == pftool::CopyMode::FuseNtoN) {
    sys.fuse().create("/proj/huge", file_size);
    for (std::uint64_t i = 0; i < good; ++i) {
      sys.fuse().write_chunk("/proj/huge", i, pftool::chunk_tag(0x40AB, i));
    }
  }

  const sim::Tick t0 = sys.sim().now();
  const auto r = pftool::sim::run_pfcp(sys.job_env(false), cfg, "/scratch/huge",
                                       "/proj/huge");
  Outcome out;
  out.resent_gb = static_cast<double>(r.bytes_copied) / static_cast<double>(kGB);
  out.restart_seconds = sim::to_seconds(r.finished - t0);
  return out;
}

/// Fault-matrix smoke: one plan string in, exit status out.
int run_fault_matrix(const std::string& spec) {
  bench::header("Sec 4.5 (fault matrix)",
                "Recovery smoke under injected faults: " + spec);

  std::string err;
  const std::optional<fault::FaultPlan> parsed = fault::FaultPlan::parse(spec, &err);
  if (!parsed || parsed->empty()) {
    std::fprintf(stderr, "  error: bad fault spec \"%s\": %s\n", spec.c_str(),
                 err.empty() ? "empty plan" : err.c_str());
    return 2;
  }
  const fault::FaultPlan& plan = *parsed;

  // Aggressive-but-bounded recovery: strikes land tens of virtual seconds
  // into the run, repairs take minutes, so retries must outlast an outage.
  fault::RetryPolicy rp;
  rp.max_attempts = 8;
  rp.backoff = sim::secs(15);
  rp.max_backoff = sim::minutes(5);

  archive::SystemConfig cfg = archive::SystemConfig::small()
                                  .with_workers(8)
                                  .with_retry(rp)
                                  .with_fault_plan(plan);
  archive::CotsParallelArchive sys(cfg);

  // A 24-file / 192 GB pfcp spans 80+ virtual seconds on the small plant,
  // so canned strikes at t=20..60s always hit in-flight copies.
  constexpr unsigned kCopyFiles = 24;
  for (unsigned i = 0; i < kCopyFiles; ++i) {
    sys.make_file(sys.scratch(), "/scratch/data/f" + std::to_string(i),
                  8 * kGB, 0x5EED00 + i);
  }
  // Pre-made archive files feed a migration launched immediately, so
  // drive/server faults during the first minute hit in-flight tape writes.
  std::vector<std::string> to_tape;
  for (unsigned i = 0; i < 16; ++i) {
    const std::string p = "/proj/premade/m" + std::to_string(i);
    sys.make_file(sys.archive_fs(), p, 2 * kGB, 0x7A9E00 + i);
    to_tape.push_back(p);
  }
  hsm::MigrateReport mig;
  sys.hsm().parallel_migrate(to_tape, {0, 1}, hsm::DistributionStrategy::SizeBalanced,
                             "smoke", [&mig](const hsm::MigrateReport& r) { mig = r; });

  // --verify fixity mode: every copied chunk is read back and compared,
  // so recovery must hand back bit-correct data, not just "a" file.
  archive::JobHandle job = sys.submit(
      archive::JobSpec::pfcp("/scratch/data", "/proj/data")
          .with_restartable()
          .with_verified()
          .with_retry(rp));
  sys.sim().run();

  const pftool::JobReport cp = job.report();
  const pftool::JobReport cm = sys.pfcm("/scratch/data", "/proj/data");

  obs::Observer& ob = sys.observer();
  const std::uint64_t injected = ob.metrics().counter_value("fault.injected_total");
  const std::uint64_t repaired = ob.metrics().counter_value("fault.repaired_total");
  const std::uint64_t retries = ob.metrics().counter_value("pftool.retries_total");

  bench::section("recovery outcome");
  std::printf("  faults injected: %llu   repaired: %llu\n",
              static_cast<unsigned long long>(injected),
              static_cast<unsigned long long>(repaired));
  std::printf("  pfcp: %u attempts, %llu files copied, %llu failed, "
              "%llu chunks retried, %llu journal-resumed\n",
              job.attempts(), static_cast<unsigned long long>(cp.files_copied),
              static_cast<unsigned long long>(cp.files_failed),
              static_cast<unsigned long long>(cp.chunk_retries),
              static_cast<unsigned long long>(cp.chunks_skipped_restart));
  std::printf("  pftool retries (chunk + relaunch): %llu\n",
              static_cast<unsigned long long>(retries));
  std::printf("  migration: %u migrated, %u failed, %u retries, "
              "%u units requeued\n",
              mig.files_migrated, mig.files_failed, mig.retries,
              mig.units_requeued);
  std::printf("  pfcm: %llu compared, %llu mismatched\n",
              static_cast<unsigned long long>(cm.files_compared),
              static_cast<unsigned long long>(cm.files_mismatched));
  std::printf("  fixity: %llu chunks verified, %llu mismatches, "
              "%llu unrepairable\n",
              static_cast<unsigned long long>(cp.chunks_verified),
              static_cast<unsigned long long>(cp.fixity_mismatches),
              static_cast<unsigned long long>(cp.files_unrepairable));

  // A fixity mismatch healed from another replica is recovered; only files
  // with no clean replica (already in files_failed too) stay unrecovered.
  const std::uint64_t unrecovered =
      cp.files_failed + mig.files_failed + cm.files_mismatched;
  std::printf("  unrecovered files: %llu\n",
              static_cast<unsigned long long>(unrecovered));
  if (unrecovered != 0) {
    std::fprintf(stderr, "  error: faults were not fully recovered\n");
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::ObsCli cli = bench::parse_obs_cli(argc, argv);
  if (!cli.fault_spec.empty()) return run_fault_matrix(cli.fault_spec);
  bench::header("Sec 4.5", "Restart-able transfer: chunk journal vs full re-send");

  constexpr std::uint64_t kFile = 2 * kTB;  // scaled stand-in for the 40 TB case

  std::printf("\n  interrupted at | journaled re-send (GB) | naive re-send (GB) | saved\n");
  std::printf("  ---------------+------------------------+--------------------+------\n");
  double saved90 = 0;
  for (const double frac : {0.25, 0.50, 0.90}) {
    const Outcome j = restart_after(frac, true, kFile);
    const Outcome n = restart_after(frac, false, kFile);
    std::printf("  %13.0f%% | %22.0f | %18.0f | %4.0f%%\n", frac * 100.0,
                j.resent_gb, n.resent_gb,
                100.0 * (1.0 - j.resent_gb / n.resent_gb));
    if (frac == 0.90) saved90 = 1.0 - j.resent_gb / n.resent_gb;
  }

  bench::section("paper vs measured");
  bench::compare("re-send after 90% interrupt", "only the bad chunks",
                 bench::fmt("%.0f%% of bytes saved", saved90 * 100.0));
  std::printf("\n  (For the paper's 40 TB file a 90%%-complete interrupt saves\n"
              "   ~36 TB of re-copy; scaled proportionally here.)\n");
  return 0;
}
