#include "bench/campaign_runner.hpp"

#include <cstdio>

#include "archive/system.hpp"
#include "obs/profile.hpp"
#include "simcore/rng.hpp"
#include "workload/tree.hpp"

namespace cpa::bench {
namespace {

// Ethernet/TCP/NFS goodput: the paper's own ceiling is "~75% bandwidth
// utilization from two 10Gigabit Ethernet trunk", so the usable fraction
// of nominal line rate is modeled explicitly.
constexpr double kGoodput = 0.75;

/// "Machine sharing among multiple users": other site traffic occupies a
/// varying fraction of each trunk in alternating busy/quiet intervals over
/// the 18 operation days.
void schedule_background_load(archive::CotsParallelArchive& sys,
                              sim::Rng& rng, double days) {
  for (unsigned t = 0; t < sys.config().cluster.trunk_count; ++t) {
    const sim::PoolId trunk = sys.fta().trunk_for(t);
    double at_hours = rng.uniform(0.0, 2.0);
    while (at_hours < days * 24.0) {
      const double busy_hours = rng.uniform(0.5, 4.0);
      const double fraction = rng.uniform(0.15, 0.6);
      const double rate =
          sys.net().pool_capacity(trunk) * fraction;
      const double bytes = rate * busy_hours * 3600.0;
      sys.sim().at(sim::hours(at_hours), [&sys, trunk, bytes, rate] {
        sys.net().start_flow({sim::PathLeg(trunk)}, bytes, nullptr, rate);
      });
      at_hours += busy_hours + rng.uniform(0.5, 4.0);
    }
  }
}

/// The production archive migrates to tape continuously — without it the
/// 100 TB fast pool cannot absorb a ~150 TB campaign.  Cycles chain (a new
/// scan starts only after the previous migration finished) to avoid
/// double-migrating files still in flight.
/// Returns the shared state keeping the cycle chain alive: queued lambdas
/// hold only weak references (a self-referencing strong capture would leak
/// the closure — LeakSanitizer vetoes it), so the caller must keep the
/// returned pointer alive until the simulation finishes running.
[[nodiscard]] std::shared_ptr<std::function<void()>> schedule_migration_cycles(
    archive::CotsParallelArchive& sys, double horizon_days) {
  pfs::Rule rule;
  rule.name = "campaign-mig";
  rule.action = pfs::Rule::Action::List;
  rule.where = {pfs::Condition::path_glob("/proj/*"),
                pfs::Condition::dmapi_is(pfs::DmapiState::Resident),
                pfs::Condition::age_ge(1800)};
  sys.policy().add_rule(rule);

  auto cycle = std::make_shared<std::function<void()>>();
  const std::weak_ptr<std::function<void()>> weak = cycle;
  *cycle = [&sys, weak, horizon_days] {
    if (sim::to_seconds(sys.sim().now()) > horizon_days * 86400.0) return;
    sys.run_migration_cycle("campaign-mig", "opensci",
                            [&sys, weak](const hsm::MigrateReport&) {
                              sys.sim().after(sim::hours(4), [weak] {
                                if (const auto c = weak.lock()) (*c)();
                              });
                            });
  };
  sys.sim().at(sim::hours(2), [weak] {
    if (const auto c = weak.lock()) (*c)();
  });
  return cycle;
}

}  // namespace

CampaignResult run_campaign(const CampaignOptions& opts) {
  using archive::CotsParallelArchive;
  using archive::SystemConfig;

  workload::CampaignConfig wl;
  wl.file_count_scale = opts.file_count_scale;
  wl.max_materialized_files = 4000;
  wl.preserve_total_bytes = true;  // realistic durations -> realistic overlap
  wl.seed = opts.seed;
  const auto specs = workload::CampaignGenerator(wl).generate();

  SystemConfig cfg = SystemConfig::roadrunner();
  cfg.cluster.trunk_bps *= kGoodput;
  cfg.cluster.node_nic_bps *= kGoodput;
  const bool profiling = opts.profile || !opts.profile_path.empty();
  cfg.obs.tracing = opts.tracing || !opts.trace_path.empty() ||
                    !opts.raw_trace_path.empty() || profiling;
  const bool faulty = !opts.fault_spec.empty();
  std::size_t widened_job = specs.size();  // index of the 16-worker job
  if (faulty) {
    if (opts.fault_spec == "auto") {
      // Campaign-aligned plan: crash a node mid-way through the largest
      // of the first ten jobs, and fail two drives while the early
      // migration cycles hold them.
      std::size_t big = 0;
      for (std::size_t i = 1; i < std::min<std::size_t>(10, specs.size());
           ++i) {
        if (specs[i].total_bytes > specs[big].total_bytes) big = i;
      }
      widened_job = big;
      fault::FaultPlan plan;
      plan.node_crash(1, specs[big].submit_time + sim::minutes(5),
                      sim::minutes(10));
      plan.drive_failure(0, sim::hours(2) + sim::minutes(30),
                         sim::minutes(15));
      plan.drive_failure(1, sim::hours(6) + sim::minutes(30),
                         sim::minutes(15));
      cfg.with_fault_plan(std::move(plan));
    } else {
      cfg.with_fault_plan(opts.fault_spec);
    }
  }
  CotsParallelArchive sys(cfg);

  sim::Rng rng(opts.seed ^ 0xBADCAFE);
  schedule_background_load(sys, rng, wl.operation_days);
  const auto migration_keeper =
      schedule_migration_cycles(sys, wl.operation_days + 2.0);

  CampaignResult result;
  result.jobs.resize(specs.size());
  std::vector<archive::JobHandle> handles(specs.size());

  // Materialize all trees up front (namespace ops are free in virtual
  // time), then schedule each pfcp at its submit time.
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const auto& spec = specs[i];
    workload::TreeSpec tree;
    tree.root = "/scratch/job" + std::to_string(spec.job_id);
    tree.file_sizes = spec.file_sizes;
    tree.tag_seed = 0xC0FFEE + spec.job_id;
    workload::build_tree(sys.scratch(), tree);
    result.jobs[i].spec = spec;
  }

  for (std::size_t i = 0; i < specs.size(); ++i) {
    const auto& spec = result.jobs[i].spec;

    // Users launched jobs with varying process counts (NumProcs is a
    // runtime tunable).  Most ran with a handful of movers (each mover is
    // HBA-bound near 400 MB/s); a few cranked NumProcs wide enough to
    // saturate the trunks — those produce the paper's ~1868 MB/s peak.
    static constexpr unsigned kWorkerChoices[] = {1, 2, 2, 3, 3, 4, 4, 6, 8, 12, 16};
    pftool::PftoolConfig job_cfg = sys.config().pftool;
    job_cfg.num_workers =
        kWorkerChoices[rng.uniform_u64(0, std::size(kWorkerChoices) - 1)];
    if (i == widened_job) job_cfg.num_workers = 16;  // one worker per node
    job_cfg.num_readdir = 2;
    job_cfg.num_tapeprocs = 0;
    job_cfg.per_file_cost = sim::msecs(4);
    // Single-stream ceiling of one mover process (TCP window + GPFS client
    // on 2008-era FTA nodes).
    job_cfg.per_stream_max_bps = 200.0 * static_cast<double>(kMB);
    // Per-file overhead must reflect the UNSCALED file count: each
    // materialized file stands for (count/materialized) real files' worth
    // of create/open/close work.
    const double expansion = static_cast<double>(spec.file_count) /
                             static_cast<double>(spec.file_sizes.size());
    job_cfg.per_file_cost = static_cast<sim::Tick>(
        static_cast<double>(job_cfg.per_file_cost) * std::max(1.0, expansion));

    sys.sim().at(spec.submit_time, [&sys, &result, &handles, i, job_cfg,
                                    faulty] {
      const auto& spec = result.jobs[i].spec;
      const std::string src = "/scratch/job" + std::to_string(spec.job_id);
      const std::string dst = "/proj/job" + std::to_string(spec.job_id);
      archive::JobSpec js =
          archive::JobSpec::pfcp(src, dst).with_config(job_cfg);
      if (faulty) {
        // Ride faults out: journal the transfer and relaunch failed jobs.
        js.with_restartable().with_retry(fault::RetryPolicy::standard());
      }
      handles[i] = sys.submit(std::move(js));
      handles[i].on_done([&result, i](const pftool::JobReport& r) {
        result.jobs[i].measured_rate_bps = r.rate_bps();
        result.jobs[i].elapsed_seconds = r.elapsed_seconds();
        result.jobs[i].files_copied = r.files_copied;
        result.jobs[i].files_failed = r.files_failed;
        result.jobs[i].chunks_resumed = r.chunks_skipped_restart;
      });
    });
  }
  sys.sim().run();
  sys.reap_finished();
  result.jobs_live_after_reap = sys.jobs_live();
  for (std::size_t i = 0; i < handles.size(); ++i) {
    result.jobs[i].attempts = handles[i].attempts();
    result.files_failed_total += result.jobs[i].files_failed;
  }

  sys.snapshot_net_metrics();
  obs::Observer& ob = sys.observer();
  result.metrics_summary = ob.metrics().summary();
  if (const sim::Samples* s = ob.metrics().find_series("pftool.job_rate_bps")) {
    result.metric_rates_bps = s->values();
  }
  if (const obs::Gauge* g = ob.metrics().find_gauge("net.trunk_busy_seconds")) {
    result.trunk_busy_seconds = g->value();
  }
  result.trace_events = ob.trace().event_count();
  if (!opts.trace_path.empty()) {
    result.trace_written = ob.trace().write_chrome_json(opts.trace_path);
  }
  if (!opts.raw_trace_path.empty()) {
    result.trace_written =
        ob.trace().save(opts.raw_trace_path) && result.trace_written;
  }
  if (!opts.metrics_path.empty()) {
    result.metrics_written = ob.metrics().write_summary(opts.metrics_path);
  }
  if (profiling) {
    const obs::Profiler prof(ob.trace());
    result.profile_report = prof.report(opts.profile_topk);
    result.profile_conservation_ok = prof.conservation_ok();
    result.profiled_jobs = prof.jobs().size();
    if (!opts.profile_path.empty()) {
      if (opts.profile_path == "-") {
        std::fputs(result.profile_report.c_str(), stdout);
      } else if (std::FILE* f = std::fopen(opts.profile_path.c_str(), "w")) {
        std::fputs(result.profile_report.c_str(), f);
        std::fclose(f);
      }
    }
  }
  result.faults_injected = ob.metrics().counter_value("fault.injected_total");
  result.faults_repaired = ob.metrics().counter_value("fault.repaired_total");
  result.pftool_retries = ob.metrics().counter_value("pftool.retries_total");
  result.worker_crashes = ob.metrics().counter_value("pftool.worker_crashes");
  result.job_relaunches = ob.metrics().counter_value("pftool.job_relaunches");
  return result;
}

CampaignResult run_campaign(double file_count_scale, std::uint64_t seed) {
  CampaignOptions opts;
  opts.file_count_scale = file_count_scale;
  opts.seed = seed;
  return run_campaign(opts);
}

}  // namespace cpa::bench
