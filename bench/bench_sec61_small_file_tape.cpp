// Sec 6.1 "Small File Tape Performance":
//   "a user copied millions of 8 MB files to GPFS disk.  Migrating these
//    files to tape was an order of magnitude slower than migrating large
//    files at a rate of 4 MB/s instead of 100 MB/s, the rated performance
//    of LTO-4 tapes ... One solution to this problem is aggregation."
//
// Sweep file size, migrating a fixed byte volume per point on one drive,
// with and without small-file aggregation.
#include <cstdio>

#include "archive/system.hpp"
#include "bench/common.hpp"

namespace {

double migrate_rate_mbs(bool aggregation, std::uint64_t file_size,
                        std::uint64_t total_bytes) {
  using namespace cpa;
  archive::SystemConfig cfg = archive::SystemConfig::roadrunner();
  cfg.hsm.aggregation_enabled = aggregation;
  cfg.hsm.aggregate_threshold = 256 * kMB;
  cfg.hsm.aggregate_target = 4 * kGB;
  archive::CotsParallelArchive sys(cfg);

  const auto n = static_cast<unsigned>(total_bytes / file_size);
  std::vector<std::string> paths;
  for (unsigned i = 0; i < n; ++i) {
    const std::string p = "/arch/f" + std::to_string(i);
    sys.make_file(sys.archive_fs(), p, file_size, i);
    paths.push_back(p);
  }
  double rate = 0;
  sys.hsm().migrate_batch(0, paths, "g", [&](const hsm::MigrateReport& r) {
    // Exclude the one-off mount from the steady-state rate, as a weekend
    // long migration would.
    const double mount_s = 65.0;
    const double secs = sim::to_seconds(r.finished - r.started) - mount_s;
    rate = static_cast<double>(r.bytes) / secs;
  });
  sys.sim().run();
  return rate / static_cast<double>(cpa::kMB);
}

}  // namespace

int main() {
  using namespace cpa;
  bench::header("Sec 6.1", "Small-file tape migration rate, with/without aggregation");

  std::printf("\n  file size | no aggregation (MB/s) | aggregation (MB/s)\n");
  std::printf("  ----------+-----------------------+-------------------\n");
  double rate_8mb_plain = 0, rate_8mb_agg = 0, rate_1gb_plain = 0;
  for (const std::uint64_t size :
       {1 * kMB, 8 * kMB, 64 * kMB, 256 * kMB, 1 * kGB}) {
    const std::uint64_t volume = std::max<std::uint64_t>(4 * kGB, 64 * size);
    const double plain = migrate_rate_mbs(false, size, volume);
    const double agg = migrate_rate_mbs(true, size, volume);
    std::printf("  %6.0f MB | %21.1f | %18.1f\n",
                static_cast<double>(size) / static_cast<double>(kMB), plain, agg);
    if (size == 8 * kMB) {
      rate_8mb_plain = plain;
      rate_8mb_agg = agg;
    }
    if (size == 1 * kGB) rate_1gb_plain = plain;
  }

  bench::section("paper vs measured");
  bench::compare("8 MB files, HSM migration", "~4 MB/s",
                 bench::fmt("%.1f MB/s", rate_8mb_plain));
  bench::compare("large files", "~100 MB/s (rated)",
                 bench::fmt("%.1f MB/s", rate_1gb_plain));
  bench::compare("slowdown for 8 MB files", "order of magnitude",
                 bench::fmt("%.0fx", rate_1gb_plain / rate_8mb_plain));
  bench::compare("8 MB files with aggregation", "near rated speed",
                 bench::fmt("%.1f MB/s", rate_8mb_agg));
  return 0;
}
