// Sec 5.2: "The average data rate is about 575 MB/sec which is a very
// good performance number compared to non-parallel archive storage
// systems with about 70 MB/sec archival bandwidth."
//
// Push the same representative job through (a) the full COTS parallel
// archive and (b) a classic non-parallel archive (one mover process, all
// data through the single archive server's network connection).
#include <cstdio>

#include "archive/system.hpp"
#include "bench/common.hpp"
#include "workload/tree.hpp"

namespace {

using namespace cpa;

double parallel_rate_mbs() {
  archive::SystemConfig cfg = archive::SystemConfig::roadrunner();
  cfg.cluster.trunk_bps *= 0.75;  // goodput, as in the Fig 10 bench
  cfg.cluster.node_nic_bps *= 0.75;
  archive::CotsParallelArchive sys(cfg);
  workload::TreeSpec tree;
  tree.root = "/scratch/job";
  for (int i = 0; i < 256; ++i) tree.file_sizes.push_back(600 * kMB);
  workload::build_tree(sys.scratch(), tree);
  // A typical job (the campaign mean), not the widest one: a handful of
  // mover processes at single-stream client speed.
  pftool::PftoolConfig pc = sys.config().pftool;
  pc.num_workers = 3;
  pc.per_stream_max_bps = 200.0 * static_cast<double>(kMB);
  const auto r =
      pftool::sim::run_pfcp(sys.job_env(false), pc, "/scratch/job", "/proj/job");
  return r.rate_bps() / static_cast<double>(kMB);
}

double serial_rate_mbs() {
  // Classic archive: one data mover, server-routed movement, data lands on
  // tape through the server's ~GbE-class connection (ServerConfig default
  // 80 MB/s).
  archive::SystemConfig cfg = archive::SystemConfig::roadrunner();
  cfg.hsm.lan_free = false;
  archive::CotsParallelArchive sys(cfg);
  std::vector<std::string> paths;
  for (int i = 0; i < 64; ++i) {
    const std::string p = "/arch/f" + std::to_string(i);
    sys.make_file(sys.archive_fs(), p, 600 * kMB, static_cast<std::uint64_t>(i));
    paths.push_back(p);
  }
  double rate = 0;
  sys.hsm().migrate_batch(0, paths, "g", [&](const hsm::MigrateReport& r) {
    rate = r.mean_rate_bps();
  });
  sys.sim().run();
  return rate / static_cast<double>(kMB);
}

}  // namespace

int main() {
  bench::header("Sec 5.2", "COTS parallel archive vs non-parallel archive");

  const double par = parallel_rate_mbs();
  const double ser = serial_rate_mbs();
  std::printf("\n  COTS parallel archive job : %8.1f MB/s\n", par);
  std::printf("  non-parallel archive      : %8.1f MB/s\n", ser);

  bench::section("paper vs measured");
  bench::compare("parallel archive job rate", "~575 MB/s (mean)",
                 bench::fmt("%.0f MB/s", par));
  bench::compare("non-parallel archive rate", "~70 MB/s",
                 bench::fmt("%.0f MB/s", ser));
  bench::compare("advantage", "~8x", bench::fmt("%.1fx", par / ser));
  return 0;
}
