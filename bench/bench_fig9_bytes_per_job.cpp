// Figure 9: "Number of MB bytes copy/job" over the same 62 jobs (log10).
// Paper: range 4 GB .. 32,593 GB per job, mean 2,442 GB.
#include <cmath>
#include <cstdio>

#include "bench/campaign_runner.hpp"
#include "bench/common.hpp"
#include "simcore/stats.hpp"
#include "simcore/units.hpp"

int main() {
  using namespace cpa;
  bench::header("Figure 9", "Data archived per job (62 jobs, 18 days)");

  const bench::CampaignResult result = bench::run_campaign();

  bench::section("series (job id, GB archived, log10 of MB)");
  sim::Samples gb;
  sim::Log10Histogram hist;
  for (const auto& job : result.jobs) {
    const double g = static_cast<double>(job.spec.total_bytes) /
                     static_cast<double>(kGB);
    gb.add(g);
    hist.add(g * 1000.0);  // MB, as the paper plots
    std::printf("  job %2u  %10.1f GB  (log10 MB = %5.2f)\n", job.spec.job_id,
                g, std::log10(g * 1000.0));
  }

  bench::section("distribution");
  std::printf("%s", hist.render("MB/job by decade").c_str());

  bench::section("paper vs measured");
  bench::compare("min data/job", "4 GB", bench::fmt("%.1f GB", gb.min()));
  bench::compare("max data/job", "32,593 GB", bench::fmt("%.0f GB", gb.max()));
  bench::compare("mean data/job", "2,442 GB", bench::fmt("%.0f GB", gb.mean()));
  return 0;
}
