// Sec 4.1.2 item 3, "A single large file parallel copy":
//   "The size of a single large file is in the range of 10GBs to 100 GBs.
//    We divide a single large file into N equal-size sub-chunks and assign
//    them to available Workers ... N workers copy data in parallel."
//
// Copy one large file through 1..16 workers and report the speedup of the
// chunked N-to-1 copy.
#include <cstdio>

#include "archive/system.hpp"
#include "bench/common.hpp"

namespace {

double copy_rate_mbs(std::uint64_t file_size, unsigned workers) {
  using namespace cpa;
  archive::CotsParallelArchive sys(archive::SystemConfig::roadrunner());
  sys.make_file(sys.scratch(), "/scratch/big", file_size, 0xB16);
  pftool::PftoolConfig cfg = sys.config().pftool;
  cfg.num_workers = workers;
  const auto r = pftool::sim::run_pfcp(sys.job_env(false), cfg, "/scratch/big",
                                       "/proj/big");
  return r.rate_bps() / static_cast<double>(cpa::kMB);
}

}  // namespace

int main() {
  using namespace cpa;
  bench::header("Sec 4.1.2(3)", "Single large file N-to-1 chunked parallel copy");

  std::printf("\n  file size | workers | rate (MB/s)\n");
  std::printf("  ----------+---------+------------\n");
  double r1 = 0, r8 = 0;
  for (const std::uint64_t size : {10 * kGB, 40 * kGB, 100 * kGB}) {
    for (const unsigned workers : {1u, 2u, 4u, 8u, 16u}) {
      const double rate = copy_rate_mbs(size, workers);
      std::printf("  %6.0f GB | %7u | %10.1f\n",
                  static_cast<double>(size) / static_cast<double>(kGB), workers,
                  rate);
      if (size == 40 * kGB && workers == 1) r1 = rate;
      if (size == 40 * kGB && workers == 8) r8 = rate;
    }
  }

  bench::section("paper vs measured (40 GB file)");
  bench::compare("chunked copy speedup 1->8 workers", "~N-fold until fabric",
                 bench::fmt("%.1fx", r8 / r1));
  return 0;
}
