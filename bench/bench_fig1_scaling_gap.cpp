// Figure 1: the ASCI Kiviat observation — "parallel file systems scaling
// performance at an order of magnitude faster than parallel archives."
//
// Sweep the mover count 1..16 and measure (a) the parallel-file-system
// copy path (PFTool scratch -> archive GPFS, LAN-free, striped NSDs) and
// (b) the classic single-server archive path (all data through one
// archive server's network connection, Fig 5's topology).  The file
// system path scales with movers; the archive path flatlines at the
// server NIC — the gap the paper's whole design attacks.
#include <cstdio>

#include "archive/system.hpp"
#include "bench/common.hpp"
#include "workload/tree.hpp"

int main() {
  using namespace cpa;
  using archive::CotsParallelArchive;
  using archive::SystemConfig;

  bench::header("Figure 1",
                "Scaling gap: parallel file system vs single-server archive");

  std::printf("\n  movers |  PFS copy path (MB/s) | 1-server archive (MB/s)\n");
  std::printf("  -------+-----------------------+------------------------\n");

  double pfs_1 = 0, pfs_16 = 0, srv_1 = 0, srv_16 = 0;
  for (const unsigned movers : {1u, 2u, 4u, 8u, 16u}) {
    // (a) PFS-to-PFS parallel copy through `movers` workers.
    double pfs_mbs = 0;
    {
      CotsParallelArchive sys(SystemConfig::roadrunner());
      workload::TreeSpec tree;
      tree.root = "/scratch/data";
      for (int i = 0; i < 64; ++i) tree.file_sizes.push_back(2 * kGB);
      workload::build_tree(sys.scratch(), tree);
      pftool::PftoolConfig cfg = sys.config().pftool;
      cfg.num_workers = movers;
      const auto r = pftool::sim::run_pfcp(sys.job_env(false), cfg,
                                           "/scratch/data", "/proj/data");
      pfs_mbs = r.rate_bps() / static_cast<double>(kMB);
    }
    // (b) archive writes forced through a single server (no LAN-free).
    double srv_mbs = 0;
    {
      SystemConfig cfg = SystemConfig::roadrunner();
      cfg.hsm.lan_free = false;
      CotsParallelArchive sys(cfg);
      std::vector<std::string> paths;
      for (int i = 0; i < 64; ++i) {
        const std::string p = "/arch/f" + std::to_string(i);
        sys.make_file(sys.archive_fs(), p, 2 * kGB, static_cast<std::uint64_t>(i));
        paths.push_back(p);
      }
      std::vector<tape::NodeId> nodes;
      for (unsigned n = 0; n < movers; ++n) nodes.push_back(n % 10);
      double rate = 0;
      sys.hsm().parallel_migrate(paths, nodes,
                                 hsm::DistributionStrategy::SizeBalanced, "g",
                                 [&](const hsm::MigrateReport& r) {
                                   rate = r.mean_rate_bps();
                                 });
      sys.sim().run();
      srv_mbs = rate / static_cast<double>(kMB);
    }
    std::printf("  %6u | %21.0f | %22.0f\n", movers, pfs_mbs, srv_mbs);
    if (movers == 1) {
      pfs_1 = pfs_mbs;
      srv_1 = srv_mbs;
    }
    if (movers == 16) {
      pfs_16 = pfs_mbs;
      srv_16 = srv_mbs;
    }
  }

  bench::section("paper vs measured");
  bench::compare("PFS speedup 1->16 movers", "scales ~linearly",
                 bench::fmt("%.1fx", pfs_16 / pfs_1));
  bench::compare("1-server archive speedup 1->16", "~flat (bottleneck)",
                 bench::fmt("%.1fx", srv_16 / srv_1));
  bench::compare("PFS vs archive at 16 movers", ">= order of magnitude",
                 bench::fmt("%.0fx", pfs_16 / srv_16));
  return 0;
}
