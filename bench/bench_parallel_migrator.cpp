// Sec 4.2.4 "Parallel Data Migrator":
//   "One process may be responsible for all of the large files in the
//    list while another has nothing but small files ... We combine, sort,
//    and distribute the candidate files by file size evenly across
//    machines.  This allows the migrations to tape to complete at the
//    same time across machines and can greatly speed up the process."
//
// Migrate a skewed candidate list with the naive GPFS policy distribution
// vs the paper's size-balanced distribution and compare makespans.
#include <cstdio>

#include "archive/system.hpp"
#include "bench/common.hpp"
#include "hsm/balance.hpp"
#include "simcore/rng.hpp"

namespace {

using namespace cpa;

double migrate_seconds(hsm::DistributionStrategy strategy, unsigned movers) {
  archive::CotsParallelArchive sys(archive::SystemConfig::roadrunner());
  // Skewed candidate list: a few huge checkpoint files among many small
  // ones, in the interleaved order a policy scan would emit.
  // The pathological alignment the paper describes: the policy scan emits
  // the big checkpoint files at a stride that round-robin maps onto ONE
  // mover ("One process may be responsible for all of the large files").
  sim::Rng rng(11);
  std::vector<std::string> paths;
  for (int i = 0; i < 200; ++i) {
    const std::uint64_t size = (i % 8 == 0) ? 40 * kGB : 100 * kMB;
    const std::string p = "/arch/f" + std::to_string(i);
    sys.make_file(sys.archive_fs(), p, size, static_cast<std::uint64_t>(i));
    paths.push_back(p);
  }
  std::vector<tape::NodeId> nodes;
  for (unsigned n = 0; n < movers; ++n) nodes.push_back(n);
  double seconds = 0;
  sys.hsm().parallel_migrate(paths, nodes, strategy, "g",
                             [&](const hsm::MigrateReport& r) {
                               seconds = sim::to_seconds(r.finished - r.started);
                             });
  sys.sim().run();
  return seconds;
}

}  // namespace

int main() {
  bench::header("Sec 4.2.4", "Parallel Data Migrator: naive vs size-balanced");

  std::printf("\n  movers | naive round-robin (s) | size-balanced (s) | speedup\n");
  std::printf("  -------+-----------------------+-------------------+--------\n");
  double speedup8 = 0;
  for (const unsigned movers : {2u, 4u, 8u}) {
    const double naive =
        migrate_seconds(hsm::DistributionStrategy::NaiveRoundRobin, movers);
    const double balanced =
        migrate_seconds(hsm::DistributionStrategy::SizeBalanced, movers);
    std::printf("  %6u | %21.0f | %17.0f | %6.2fx\n", movers, naive, balanced,
                naive / balanced);
    if (movers == 8) speedup8 = naive / balanced;
  }

  // The distribution quality itself (no tape noise): LPT vs round-robin.
  sim::Rng rng(3);
  std::vector<std::uint64_t> weights;
  for (int i = 0; i < 200; ++i) {
    weights.push_back((i % 8 == 0) ? 40 * kGB : 100 * kMB);
  }
  const auto naive_load = hsm::max_bin_load(hsm::naive_distribute(weights, 8));
  const auto lpt_load =
      hsm::max_bin_load(hsm::size_balanced_distribute(weights, 8));

  bench::section("paper vs measured");
  bench::compare("makespan speedup at 8 movers", "\"greatly speed up\"",
                 bench::fmt("%.2fx", speedup8));
  bench::compare("max bin load, naive vs balanced", "imbalanced vs even",
                 bench::fmt("%.2fx heavier", static_cast<double>(naive_load) /
                                                 static_cast<double>(lpt_load)));
  return 0;
}
