// bench_fairshare: multi-tenant QoS isolation under a bulk recall storm.
//
// The paper's archive is a shared facility: one user's bulk restore
// campaign and another's interactive "give me that one checkpoint" hit
// the same FTA nodes, trunks, and tape drives.  This bench measures what
// the admission scheduler buys the interactive user.  Two identical
// plants run the identical workload — a batch tenant fires a storm of
// multi-file tape restores at t=0 while an analysis tenant submits small
// staggered single-directory restores — first with admission disabled
// (FIFO: every job launches immediately and drive queues serve in
// arrival order), then with the fair-share scheduler on (batch capped to
// drives-1 drives, a running-job quota that keeps one admission slot
// free, a PFS bandwidth shaper, and Interactive outranking Bulk at every
// drive grant).
//
// Headline: the ratio of interactive p99 latency FIFO/sched, gated at
// >= 5x (the ISSUE's isolation target).  The binary also enforces, and
// exits non-zero on violation:
//   - every job in both runs ends Succeeded (no rejects, no starvation),
//   - the scheduler run's max queue wait respects the aging starvation
//     bound (aging_bound + one service time per queued job),
//   - with tracing on, the profiler's conservation invariant holds and
//     the admission wait shows up in the AdmissionWait bucket.
//
// Output: a human table plus BENCH_fairshare.json (one record per mode
// plus a summary record), consumed by bench_regress in ci.sh.
// Flags: --smoke (smaller storm), --json=PATH.
#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "archive/system.hpp"
#include "bench/common.hpp"
#include "obs/profile.hpp"
#include "simcore/units.hpp"

namespace {

using namespace cpa;

// Bulk restores are deliberately transfer-dominated (one long cart run
// per job, ~640 s of streaming per 64 GB file): isolation then hinges on
// who *holds* the drives, which the scheduler controls, rather than on
// the single FIFO robot arm, which it cannot reorder.
struct Workload {
  unsigned bulk_jobs = 10;
  unsigned bulk_files_per_job = 1;
  std::uint64_t bulk_file_bytes = 128ULL * kGB;
  unsigned interactive_jobs = 12;
  std::uint64_t interactive_file_bytes = 64 * kMB;
  /// Past the storm's initial mount burst (the single robot arm serves
  /// FIFO; no scheduler can reorder it) but deep inside the ~1300 s cart
  /// runs, where drive possession is what decides interactive latency.
  sim::Tick first_interactive = sim::secs(450);
  sim::Tick stagger = sim::secs(120);

  static Workload smoke() {
    Workload w;
    w.bulk_jobs = 6;
    w.interactive_jobs = 6;
    return w;
  }
};

struct RunResult {
  std::vector<double> interactive_lat;  // submit -> done, virtual seconds
  std::vector<double> bulk_lat;
  double makespan_s = 0;
  double max_service_s = 0;     // longest launch -> finish of any job
  double max_queue_wait_s = 0;  // scheduler-observed (sched mode only)
  double aging_bound_s = 0;
  std::uint64_t rejected = 0;
  std::uint64_t drive_queue_jumps = 0;
  std::uint64_t not_succeeded = 0;
  bool conservation_ok = true;
  std::uint64_t admission_wait_ticks = 0;  // profiler AdmissionWait total
};

double percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  const auto idx = static_cast<std::size_t>(
      std::ceil(p * static_cast<double>(v.size()))) - 1;
  return v[std::min(idx, v.size() - 1)];
}

/// The scheduler policy under test: batch is capped to drives-1 drives,
/// one global admission slot is kept free of batch jobs, and batch's PFS
/// share is shaped to half the trunks.
sched::SchedConfig sched_policy(unsigned drive_count) {
  return sched::SchedConfig{}
      .with_max_running_jobs(6)
      .with_max_queue(256)
      .with_aging_step(sim::minutes(2))
      .with_aging_max_boost(3)
      .with_tenant("batch", sched::TenantQuota{}
                                .with_weight(1.0)
                                .with_max_drives(drive_count - 1)
                                .with_max_running_jobs(3)
                                .with_pfs_bw_fraction(0.5))
      .with_tenant("ana", sched::TenantQuota{}.with_weight(4.0));
}

/// Runs the storm on a fresh plant.  `use_sched` toggles admission
/// control; everything else — files, groups, submit times — is identical.
RunResult run_mode(const Workload& w, bool use_sched) {
  archive::SystemConfig cfg = archive::SystemConfig::small();
  cfg.hsm.punch_after_migrate = true;  // restores must recall from tape
  // A bulk job at the back of the FIFO storm legitimately sees no first
  // byte for ~45 virtual minutes; that is the congestion under test, not
  // a stall the watchdog should abort.
  cfg.pftool.stall_timeout = sim::hours(2);
  if (use_sched) {
    cfg.with_sched(sched_policy(cfg.tape.drive_count));
    cfg.obs.tracing = true;  // conservation + AdmissionWait checks
  }
  archive::CotsParallelArchive sys(cfg);

  // Stage: bulk trees and interactive directories, migrated to tape with
  // per-job colocation groups so recalls can parallelize across drives.
  unsigned migrations = 0;
  for (unsigned j = 0; j < w.bulk_jobs; ++j) {
    std::vector<std::string> paths;
    for (unsigned f = 0; f < w.bulk_files_per_job; ++f) {
      const std::string p =
          "/proj/bulk/j" + std::to_string(j) + "/f" + std::to_string(f);
      sys.make_file(sys.archive_fs(), p, w.bulk_file_bytes, 0xB000 + j);
      paths.push_back(p);
    }
    sys.hsm().migrate_batch(0, paths, "bulk" + std::to_string(j),
                            [&](const hsm::MigrateReport&) { ++migrations; });
  }
  for (unsigned k = 0; k < w.interactive_jobs; ++k) {
    const std::string p = "/proj/ana/d" + std::to_string(k) + "/f";
    sys.make_file(sys.archive_fs(), p, w.interactive_file_bytes, 0xA000 + k);
    // One colocation group per interactive directory: the staggered
    // restores must not serialize on a shared cartridge, or the bench
    // would measure volume conflicts instead of scheduling.
    sys.hsm().migrate_batch(0, {p}, "ana" + std::to_string(k),
                            [&](const hsm::MigrateReport&) { ++migrations; });
  }
  sys.sim().run();
  if (migrations != w.bulk_jobs + w.interactive_jobs) {
    std::fprintf(stderr, "bench_fairshare: staging migration failed\n");
    std::exit(2);
  }

  // Storm.  The virtual clock is already past the staging phase; measure
  // latencies from each job's own submit tick.
  RunResult r;
  std::vector<archive::JobHandle> jobs;
  jobs.reserve(w.bulk_jobs + w.interactive_jobs);
  const sim::Tick t0 = sys.sim().now();
  const auto track = [&](archive::JobHandle h, std::vector<double>* lat) {
    const sim::Tick submitted = sys.sim().now();
    h.on_done([&sys, submitted, lat](const pftool::JobReport&) {
      lat->push_back(sim::to_seconds(sys.sim().now() - submitted));
    });
    jobs.push_back(std::move(h));
  };
  for (unsigned j = 0; j < w.bulk_jobs; ++j) {
    const std::string root = "/proj/bulk/j" + std::to_string(j);
    track(sys.submit(archive::JobSpec::pfcp_restore(root, "/restage" + root)
                         .with_tenant("batch")
                         .with_qos(sched::QosClass::Bulk)),
          &r.bulk_lat);
  }
  for (unsigned k = 0; k < w.interactive_jobs; ++k) {
    sys.sim().at(t0 + w.first_interactive + k * w.stagger, [&, k] {
      const std::string root = "/proj/ana/d" + std::to_string(k);
      track(sys.submit(archive::JobSpec::pfcp_restore(root, "/restage" + root)
                           .with_tenant("ana")
                           .with_qos(sched::QosClass::Interactive)),
            &r.interactive_lat);
    });
  }
  sys.sim().run();

  r.makespan_s = sim::to_seconds(sys.sim().now() - t0);
  for (const archive::JobHandle& h : jobs) {
    if (h.state() != archive::JobState::Succeeded) {
      ++r.not_succeeded;
      if (std::getenv("CPA_FAIRSHARE_DEBUG") != nullptr) {
        std::printf("DBG not-succeeded: %s %s (%s) failed=%" PRIu64 "\n",
                    h.report().command.c_str(), h.report().src_root.c_str(),
                    archive::to_string(h.state()), h.report().files_failed);
      }
    }
    r.max_service_s = std::max(
        r.max_service_s,
        sim::to_seconds(h.report().finished - h.report().started));
  }
  r.rejected = sys.observer().metrics().counter_value("sched.rejected");
  r.drive_queue_jumps =
      sys.observer().metrics().counter_value("sched.drive_queue_jumps");
  if (sched::AdmissionScheduler* s = sys.scheduler()) {
    r.max_queue_wait_s = sim::to_seconds(s->max_queue_wait());
    r.aging_bound_s = sim::to_seconds(s->aging_bound());
  }
  if (cfg.obs.tracing) {
    const obs::Profiler prof(sys.observer().trace());
    r.conservation_ok = prof.conservation_ok();
    for (const obs::JobProfile& jp : prof.jobs()) {
      r.conservation_ok = r.conservation_ok && jp.conserved();
      r.admission_wait_ticks +=
          jp.buckets[static_cast<std::size_t>(obs::Bucket::AdmissionWait)];
      if (std::getenv("CPA_FAIRSHARE_DEBUG") != nullptr) {
        std::printf("DBG %s wall=%.0fs:", jp.job_class.c_str(),
                    sim::to_seconds(jp.wall()));
        for (unsigned b = 0; b < obs::kBucketCount; ++b) {
          if (jp.buckets[b] > 0) {
            std::printf(" %s=%.0fs",
                        obs::to_string(static_cast<obs::Bucket>(b)),
                        sim::to_seconds(jp.buckets[b]));
          }
        }
        std::printf("\n");
      }
    }
  }
  return r;
}

void print_mode(const char* name, const RunResult& r) {
  std::printf("  %-5s | %11.1f | %11.1f | %11.1f | %11.1f | %8.0f\n", name,
              percentile(r.interactive_lat, 0.50),
              percentile(r.interactive_lat, 0.99),
              percentile(r.bulk_lat, 0.50), percentile(r.bulk_lat, 0.99),
              r.makespan_s);
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path = "BENCH_fairshare.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") smoke = true;
    if (arg.rfind("--json=", 0) == 0) json_path = arg.substr(7);
  }
  const Workload w = smoke ? Workload::smoke() : Workload{};

  bench::header("bench_fairshare",
                "multi-tenant QoS isolation: interactive p99 under a bulk "
                "recall storm");
  std::printf("  %u bulk restore jobs (tenant batch, Bulk) vs %u staggered "
              "interactive restores (tenant ana)\n",
              w.bulk_jobs, w.interactive_jobs);

  const RunResult fifo = run_mode(w, /*use_sched=*/false);
  const RunResult fair = run_mode(w, /*use_sched=*/true);

  bench::section("latency, virtual seconds (submit -> done)");
  std::printf("  mode  | inter. p50  | inter. p99  | bulk p50    | bulk p99  "
              "  | makespan\n");
  std::printf("  ------+-------------+-------------+-------------+-----------"
              "--+---------\n");
  print_mode("fifo", fifo);
  print_mode("sched", fair);

  const double p99_fifo = percentile(fifo.interactive_lat, 0.99);
  const double p99_fair = percentile(fair.interactive_lat, 0.99);
  const double ratio = p99_fair > 0 ? p99_fifo / p99_fair : 0;
  std::printf("\n  interactive p99 isolation: %.1fx (target >= 5x)\n", ratio);
  std::printf("  scheduler max queue wait %.0f s (aging bound %.0f s, drive "
              "queue jumps %" PRIu64 ")\n",
              fair.max_queue_wait_s, fair.aging_bound_s,
              fair.drive_queue_jumps);

  std::vector<std::string> failures;
  if (fifo.not_succeeded + fair.not_succeeded > 0) {
    failures.push_back(std::to_string(fifo.not_succeeded + fair.not_succeeded) +
                       " job(s) did not end Succeeded");
  }
  if (fair.rejected > 0) {
    failures.push_back("admission rejected " + std::to_string(fair.rejected) +
                       " job(s); the queue should absorb this storm");
  }
  if (ratio < 5.0) {
    failures.push_back("isolation ratio " + bench::fmt("%.2f", ratio) +
                       "x below the 5x target");
  }
  // Starvation bound: once a job's aging boost saturates it outranks any
  // fresh arrival, so its residual wait is at most one service time per
  // job that can still be ahead of it.
  const double wait_bound =
      fair.aging_bound_s +
      (w.bulk_jobs + w.interactive_jobs) * fair.max_service_s;
  if (fair.max_queue_wait_s > wait_bound) {
    failures.push_back("max queue wait " +
                       bench::fmt("%.0f", fair.max_queue_wait_s) +
                       " s exceeds the aging starvation bound " +
                       bench::fmt("%.0f", wait_bound) + " s");
  }
  if (!fair.conservation_ok) {
    failures.push_back("profiler conservation violated with the "
                       "admission-wait bucket in play");
  }
  if (fair.admission_wait_ticks == 0) {
    failures.push_back("no admission wait attributed: the AdmissionWait "
                       "bucket stayed empty under a storm");
  }

  std::string json = "[\n";
  char row[256];
  std::snprintf(row, sizeof(row),
                "  {\"mode\": \"fifo\", \"bulk_jobs\": %u, "
                "\"interactive_jobs\": %u, \"p50_s\": %.1f, \"p99_s\": %.1f, "
                "\"makespan_s\": %.1f},\n",
                w.bulk_jobs, w.interactive_jobs,
                percentile(fifo.interactive_lat, 0.50), p99_fifo,
                fifo.makespan_s);
  json += row;
  std::snprintf(row, sizeof(row),
                "  {\"mode\": \"sched\", \"bulk_jobs\": %u, "
                "\"interactive_jobs\": %u, \"p50_s\": %.1f, \"p99_s\": %.1f, "
                "\"makespan_s\": %.1f, \"max_queue_wait_s\": %.1f},\n",
                w.bulk_jobs, w.interactive_jobs,
                percentile(fair.interactive_lat, 0.50), p99_fair,
                fair.makespan_s, fair.max_queue_wait_s);
  json += row;
  std::snprintf(row, sizeof(row),
                "  {\"mode\": \"summary\", \"p99_ratio\": %.2f, "
                "\"drive_queue_jumps\": %" PRIu64 "}\n",
                ratio, fair.drive_queue_jumps);
  json += row;
  json += "]\n";
  if (std::FILE* f = std::fopen(json_path.c_str(), "w")) {
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::printf("\n  wrote %s\n", json_path.c_str());
  } else {
    std::fprintf(stderr, "bench_fairshare: cannot write %s\n",
                 json_path.c_str());
    return 1;
  }

  bench::section("paper vs measured");
  bench::compare("shared-facility interference", "minutes-long stalls",
                 bench::fmt("p99 %.0f s FIFO", p99_fifo));
  bench::compare("interactive isolation (sched)", ">= 5x",
                 bench::fmt("%.1fx", ratio));

  if (!failures.empty()) {
    for (const std::string& f : failures) {
      std::fprintf(stderr, "bench_fairshare: FAIL — %s\n", f.c_str());
    }
    return 1;
  }
  std::printf("  interactive tenant isolated; aging kept every bulk job "
              "inside the starvation bound\n");
  return 0;
}
