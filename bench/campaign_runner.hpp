// Shared campaign executor for the Figure 8-11 benches.
//
// Generates the 62-job Open Science campaign (workload::CampaignGenerator,
// calibrated to the paper's marginals), materializes each job's tree on
// the scratch file system, and submits one pfcp per job at its submit time
// against the full Roadrunner-scale plant.  Jobs overlap exactly as their
// submit times dictate, so they contend for trunks, NICs, HBAs and disk
// servers — the "bandwidth sharing and machine sharing among multiple
// users" the paper cites as the source of rate variance.
//
// File counts are materialized at 1/100 scale (with per-job byte volume
// scaled identically) to keep host-side simulation cost sane; per-job
// rates are preserved to first order because per-file costs are small
// against transfer time at the sizes involved.  The unscaled per-job
// numbers (what Figs 8/9/11 plot) come straight from the generator.
#pragma once

#include <vector>

#include "workload/campaign.hpp"

namespace cpa::bench {

struct CampaignJobResult {
  workload::JobSpec spec;          // unscaled numbers for Figs 8/9/11
  double measured_rate_bps = 0.0;  // Fig 10 (from the scaled run)
  double elapsed_seconds = 0.0;
  std::uint64_t files_copied = 0;
};

struct CampaignResult {
  std::vector<CampaignJobResult> jobs;
};

/// Runs the campaign once.  `file_count_scale` trades fidelity for host
/// time; the default reproduces the shipped EXPERIMENTS.md numbers.
CampaignResult run_campaign(double file_count_scale = 0.01,
                            std::uint64_t seed = 2009);

}  // namespace cpa::bench
