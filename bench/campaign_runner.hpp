// Shared campaign executor for the Figure 8-11 benches.
//
// Generates the 62-job Open Science campaign (workload::CampaignGenerator,
// calibrated to the paper's marginals), materializes each job's tree on
// the scratch file system, and submits one pfcp per job at its submit time
// against the full Roadrunner-scale plant.  Jobs overlap exactly as their
// submit times dictate, so they contend for trunks, NICs, HBAs and disk
// servers — the "bandwidth sharing and machine sharing among multiple
// users" the paper cites as the source of rate variance.
//
// File counts are materialized at 1/100 scale (with per-job byte volume
// scaled identically) to keep host-side simulation cost sane; per-job
// rates are preserved to first order because per-file costs are small
// against transfer time at the sizes involved.  The unscaled per-job
// numbers (what Figs 8/9/11 plot) come straight from the generator.
#pragma once

#include <string>
#include <vector>

#include "workload/campaign.hpp"

namespace cpa::bench {

struct CampaignJobResult {
  workload::JobSpec spec;          // unscaled numbers for Figs 8/9/11
  double measured_rate_bps = 0.0;  // Fig 10 (from the scaled run)
  double elapsed_seconds = 0.0;
  std::uint64_t files_copied = 0;
  std::uint64_t files_failed = 0;
  std::uint64_t chunks_resumed = 0;  // journal-skipped chunks on relaunch
  unsigned attempts = 0;  // job launches (1 unless faults forced relaunch)
};

struct CampaignOptions {
  double file_count_scale = 0.01;
  std::uint64_t seed = 2009;
  /// Record spans (implied by a non-empty trace_path).
  bool tracing = false;
  /// When set, Chrome trace JSON is written here after the run.
  std::string trace_path;
  /// When set, the metrics summary is written here after the run.
  std::string metrics_path;
  /// Fault-spec string (fault/plan.hpp grammar) armed against the plant.
  /// Non-empty also turns on restartable transfers and job-level retry so
  /// the campaign rides the faults out.  The special value "auto" builds
  /// a plan aligned to the generated campaign: two drive failures during
  /// the early migration cycles plus an FTA node crash five minutes into
  /// the largest early job (which is widened to 16 workers so every node
  /// hosts one — the crash is guaranteed to kill in-flight copies).
  std::string fault_spec;
  /// Run the causal critical-path profiler over the recorded trace and
  /// fill CampaignResult::profile_report.  Implies tracing.
  bool profile = false;
  /// When set, the attribution report is also written here ("-" = stdout).
  /// Implies profile.
  std::string profile_path;
  /// When set, the raw span log (TraceRecorder::save format, reloadable by
  /// `pfprof --trace=`) is written here.  Implies tracing.
  std::string raw_trace_path;
  /// Top-k critical-path spans to include in the report.
  std::size_t profile_topk = 10;
};

struct CampaignResult {
  std::vector<CampaignJobResult> jobs;
  /// Full metrics-registry dump, taken after snapshot_net_metrics().
  std::string metrics_summary;
  /// Per-job rates as the metrics layer recorded them (the
  /// "pftool.job_rate_bps" series, one sample per finished job).
  std::vector<double> metric_rates_bps;
  double trunk_busy_seconds = 0.0;  // net.trunk_busy_seconds gauge
  std::uint64_t trace_events = 0;
  // False when the corresponding path was requested but not writable.
  bool trace_written = true;
  bool metrics_written = true;
  // Fault/recovery aggregates (all zero on fault-free runs).
  std::uint64_t faults_injected = 0;   // fault.injected_total
  std::uint64_t faults_repaired = 0;   // fault.repaired_total
  std::uint64_t pftool_retries = 0;    // pftool.retries_total
  std::uint64_t worker_crashes = 0;    // pftool.worker_crashes
  std::uint64_t job_relaunches = 0;    // pftool.job_relaunches
  std::uint64_t files_failed_total = 0;
  /// Job records still held by the system after the final reap; bounded
  /// regardless of campaign length (the jobs_ vector no longer grows
  /// forever).
  std::size_t jobs_live_after_reap = 0;
  /// Attribution report text (empty unless CampaignOptions::profile).
  std::string profile_report;
  /// True when every profiled job's buckets summed to its wall-clock.
  bool profile_conservation_ok = true;
  std::size_t profiled_jobs = 0;
};

/// Runs the campaign once with full control over scale and observability.
CampaignResult run_campaign(const CampaignOptions& opts);

/// Runs the campaign once.  `file_count_scale` trades fidelity for host
/// time; the default reproduces the shipped EXPERIMENTS.md numbers.
CampaignResult run_campaign(double file_count_scale = 0.01,
                            std::uint64_t seed = 2009);

}  // namespace cpa::bench
