// Figure 10: "Data rate MB/sec per job" over the same 62 jobs, measured
// through the full simulated plant (10 FTA nodes, two 10GigE trunks,
// FC4 HBAs, SAN, NSD servers) with jobs overlapping per their submit
// times — "bandwidth sharing and machine sharing among multiple users".
//
// Paper: range 73 .. 1,868 MB/s, mean ~575 MB/s; the peak is ~75% of the
// two-trunk aggregate (2 x 1250 MB/s), and the mean beats the ~70 MB/s of
// a non-parallel archive by ~8x.
#include <cstdio>

#include "bench/campaign_runner.hpp"
#include "bench/common.hpp"
#include "simcore/stats.hpp"
#include "simcore/units.hpp"

int main() {
  using namespace cpa;
  bench::header("Figure 10", "Archived data rate per job (62 jobs, 18 days)");

  const bench::CampaignResult result = bench::run_campaign();

  bench::section("series (job id, MB/s)");
  sim::Samples rate;
  for (const auto& job : result.jobs) {
    const double mbs = job.measured_rate_bps / static_cast<double>(kMB);
    rate.add(mbs);
    std::printf("  job %2u  %8.1f MB/s  (%llu files, %.1f GB, %.0f s)\n",
                job.spec.job_id, mbs,
                static_cast<unsigned long long>(job.files_copied),
                static_cast<double>(job.spec.total_bytes) /
                    static_cast<double>(kGB),
                job.elapsed_seconds);
  }

  const double trunk_peak_mbs = 2.0 * 1250.0;
  bench::section("paper vs measured");
  bench::compare("min rate", "73 MB/s", bench::fmt("%.0f MB/s", rate.min()));
  bench::compare("max rate", "1868 MB/s", bench::fmt("%.0f MB/s", rate.max()));
  bench::compare("mean rate", "~575 MB/s", bench::fmt("%.0f MB/s", rate.mean()));
  bench::compare("peak / two-trunk aggregate", "~75%",
                 bench::fmt("%.0f%%", 100.0 * rate.max() / trunk_peak_mbs));
  bench::compare("mean vs 70 MB/s serial archive", "~8x",
                 bench::fmt("%.1fx", rate.mean() / 70.0));
  return 0;
}
