// Figure 10: "Data rate MB/sec per job" over the same 62 jobs, measured
// through the full simulated plant (10 FTA nodes, two 10GigE trunks,
// FC4 HBAs, SAN, NSD servers) with jobs overlapping per their submit
// times — "bandwidth sharing and machine sharing among multiple users".
//
// Paper: range 73 .. 1,868 MB/s, mean ~575 MB/s; the peak is ~75% of the
// two-trunk aggregate (2 x 1250 MB/s), and the mean beats the ~70 MB/s of
// a non-parallel archive by ~8x.
#include <cstdio>

#include "bench/campaign_runner.hpp"
#include "bench/common.hpp"
#include "simcore/stats.hpp"
#include "simcore/units.hpp"

int main(int argc, char** argv) {
  using namespace cpa;
  bench::header("Figure 10", "Archived data rate per job (62 jobs, 18 days)");

  const bench::ObsCli obs_cli = bench::parse_obs_cli(argc, argv);
  bench::CampaignOptions opts;
  opts.tracing = obs_cli.tracing();
  opts.trace_path = obs_cli.trace_path;
  opts.metrics_path = obs_cli.metrics_path;
  opts.profile_path = obs_cli.profile_path;
  opts.fault_spec = obs_cli.fault_spec;  // --fault=auto or a plan spec
  if (obs_cli.seed_set) opts.seed = obs_cli.seed;
  const bench::CampaignResult result = bench::run_campaign(opts);

  bench::section("series (job id, MB/s)");
  sim::Samples rate;
  for (const auto& job : result.jobs) {
    const double mbs = job.measured_rate_bps / static_cast<double>(kMB);
    rate.add(mbs);
    std::printf("  job %2u  %8.1f MB/s  (%llu files, %.1f GB, %.0f s)\n",
                job.spec.job_id, mbs,
                static_cast<unsigned long long>(job.files_copied),
                static_cast<double>(job.spec.total_bytes) /
                    static_cast<double>(kGB),
                job.elapsed_seconds);
  }

  const double trunk_peak_mbs = 2.0 * 1250.0;
  bench::section("paper vs measured");
  bench::compare("min rate", "73 MB/s", bench::fmt("%.0f MB/s", rate.min()));
  bench::compare("max rate", "1868 MB/s", bench::fmt("%.0f MB/s", rate.max()));
  bench::compare("mean rate", "~575 MB/s", bench::fmt("%.0f MB/s", rate.mean()));
  bench::compare("peak / two-trunk aggregate", "~75%",
                 bench::fmt("%.0f%%", 100.0 * rate.max() / trunk_peak_mbs));
  bench::compare("mean vs 70 MB/s serial archive", "~8x",
                 bench::fmt("%.1fx", rate.mean() / 70.0));

  // The same table, rebuilt from the observability layer: every finished
  // job added its rate to the "pftool.job_rate_bps" metrics series, so the
  // distribution must match the directly-measured one exactly.
  bench::section("metrics cross-check (pftool.job_rate_bps series)");
  sim::Samples metric_rate;
  for (const double bps : result.metric_rates_bps) {
    metric_rate.add(bps / static_cast<double>(kMB));
  }
  bench::compare("jobs recorded", bench::fmt("%.0f", static_cast<double>(result.jobs.size())),
                 bench::fmt("%.0f", static_cast<double>(metric_rate.count())));
  bench::compare("min rate (metrics)", bench::fmt("%.1f MB/s", rate.min()),
                 bench::fmt("%.1f MB/s", metric_rate.min()));
  bench::compare("max rate (metrics)", bench::fmt("%.1f MB/s", rate.max()),
                 bench::fmt("%.1f MB/s", metric_rate.max()));
  bench::compare("mean rate (metrics)", bench::fmt("%.1f MB/s", rate.mean()),
                 bench::fmt("%.1f MB/s", metric_rate.mean()));
  std::printf("  trunk busy time: %.0f s over the campaign\n",
              result.trunk_busy_seconds);
  if (!obs_cli.trace_path.empty()) {
    if (result.trace_written) {
      std::printf("  trace: %llu events -> %s (chrome://tracing / Perfetto)\n",
                  static_cast<unsigned long long>(result.trace_events),
                  obs_cli.trace_path.c_str());
    } else {
      std::fprintf(stderr, "  error: could not write trace to %s\n",
                   obs_cli.trace_path.c_str());
      return 1;
    }
  }
  if (!obs_cli.metrics_path.empty()) {
    if (result.metrics_written) {
      std::printf("  metrics summary -> %s\n", obs_cli.metrics_path.c_str());
    } else {
      std::fprintf(stderr, "  error: could not write metrics to %s\n",
                   obs_cli.metrics_path.c_str());
      return 1;
    }
  }
  if (!obs_cli.profile_path.empty()) {
    std::printf("  attribution report (%zu jobs) -> %s  conservation: %s\n",
                result.profiled_jobs, obs_cli.profile_path.c_str(),
                result.profile_conservation_ok ? "ok" : "VIOLATED");
    if (!result.profile_conservation_ok) {
      std::fprintf(stderr,
                   "  error: bucket sums diverged from job wall-clock\n");
      return 1;
    }
  }

  // Fault/recovery report: deterministic per seed, so two runs with the
  // same --seed/--fault must print this section byte-for-byte identical.
  if (!obs_cli.fault_spec.empty()) {
    bench::section("fault injection & recovery");
    std::printf("  plan: %s (seed %llu)\n", obs_cli.fault_spec.c_str(),
                static_cast<unsigned long long>(opts.seed));
    std::printf("  faults injected: %llu   repaired: %llu\n",
                static_cast<unsigned long long>(result.faults_injected),
                static_cast<unsigned long long>(result.faults_repaired));
    std::printf("  pftool retries: %llu   worker crashes: %llu   "
                "job relaunches: %llu\n",
                static_cast<unsigned long long>(result.pftool_retries),
                static_cast<unsigned long long>(result.worker_crashes),
                static_cast<unsigned long long>(result.job_relaunches));
    for (const auto& job : result.jobs) {
      if (job.attempts <= 1 && job.chunks_resumed == 0 &&
          job.files_failed == 0) {
        continue;
      }
      std::printf("  job %2u: %u attempts, %llu chunks journal-resumed, "
                  "%llu files unrecovered\n",
                  job.spec.job_id, job.attempts,
                  static_cast<unsigned long long>(job.chunks_resumed),
                  static_cast<unsigned long long>(job.files_failed));
    }
    std::printf("  job records live after reap: %zu\n",
                result.jobs_live_after_reap);
    std::printf("  unrecovered files: %llu\n",
                static_cast<unsigned long long>(result.files_failed_total));
    if (result.files_failed_total != 0) {
      std::fprintf(stderr, "  error: campaign left unrecovered files\n");
      return 1;
    }
  }
  return 0;
}
