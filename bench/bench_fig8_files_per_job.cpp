// Figure 8: "Number of files archived/job" over 62 parallel archive jobs
// from 18 operation days (log10 scale).
// Paper: range 1 .. 2,920,088 files/job, mean 167,491.
#include <cmath>
#include <cstdio>

#include "bench/campaign_runner.hpp"
#include "bench/common.hpp"
#include "simcore/stats.hpp"

int main() {
  using namespace cpa;
  bench::header("Figure 8", "Number of files archived per job (62 jobs, 18 days)");

  const bench::CampaignResult result = bench::run_campaign();

  bench::section("series (job id, files archived, log10)");
  sim::Samples files;
  sim::Log10Histogram hist;
  for (const auto& job : result.jobs) {
    const auto n = static_cast<double>(job.spec.file_count);
    files.add(n);
    hist.add(n);
    std::printf("  job %2u  %9llu files  (log10 = %5.2f)\n", job.spec.job_id,
                static_cast<unsigned long long>(job.spec.file_count),
                std::log10(n));
  }

  bench::section("distribution");
  std::printf("%s", hist.render("files/job by decade").c_str());

  bench::section("paper vs measured");
  bench::compare("jobs", "62", std::to_string(result.jobs.size()));
  bench::compare("min files/job", "1", bench::fmt("%.0f", files.min()));
  bench::compare("max files/job", "2,920,088", bench::fmt("%.0f", files.max()));
  bench::compare("mean files/job", "167,491", bench::fmt("%.0f", files.mean()));
  return 0;
}
