// Sec 4.2.6 "Synchronous Delete":
//   "the reconcile agent does a directory tree-walk and compares each
//    file one by one ... For an archive with tens to hundreds of millions
//    of files, the overhead is unacceptable.  To avoid reconciliation, we
//    can synchronously delete the file from disk and tape."
//
// Delete d files out of an N-file archive both ways and compare the cost:
// reconciliation scales with the whole namespace; synchronous delete
// scales with the number of deletes.
#include <cstdio>

#include "archive/system.hpp"
#include "bench/common.hpp"
#include "workload/tree.hpp"

namespace {

using namespace cpa;

struct Outcome {
  double seconds = 0;
  std::uint64_t orphans = 0;
};

/// Builds an archive of `total` migrated files and deletes `deletes` of
/// them; returns the time to clean tape-side state either via reconcile
/// (after plain unlinks) or via the synchronous deleter.
Outcome clean_cost(bool synchronous, unsigned total, unsigned deletes) {
  archive::CotsParallelArchive sys(archive::SystemConfig::small());
  std::vector<std::string> paths;
  workload::TreeSpec tree;
  tree.root = "/proj/data";
  for (unsigned i = 0; i < total; ++i) tree.file_sizes.push_back(10 * kMB);
  workload::build_tree(sys.archive_fs(), tree);
  for (unsigned i = 0; i < total; ++i) {
    paths.push_back(workload::tree_file_path(tree, i));
  }
  // Migrate everything (metadata only matters here; do it in one batch).
  sys.hsm().parallel_migrate(paths, {0, 1, 2, 3},
                             hsm::DistributionStrategy::SizeBalanced, "g",
                             nullptr);
  sys.sim().run();

  Outcome out;
  const sim::Tick t0 = sys.sim().now();
  if (synchronous) {
    unsigned remaining = deletes;
    for (unsigned i = 0; i < deletes; ++i) {
      sys.hsm().synchronous_delete(paths[i], [&](pfs::Errc) { --remaining; });
    }
    sys.sim().run();
    out.seconds = sim::to_seconds(sys.sim().now() - t0);
  } else {
    for (unsigned i = 0; i < deletes; ++i) {
      sys.archive_fs().unlink(paths[i]);  // orphans the tape objects
    }
    sys.hsm().reconcile(true, [&](const hsm::ReconcileReport& r) {
      out.orphans = r.orphans_deleted;
      out.seconds = sim::to_seconds(r.duration);
    });
    sys.sim().run();
  }
  return out;
}

}  // namespace

int main() {
  bench::header("Sec 4.2.6", "Synchronous delete vs reconciliation");

  std::printf("\n  archive files | deletes | reconcile (s) | sync delete (s)\n");
  std::printf("  --------------+---------+---------------+----------------\n");
  double rec_large = 0, sync_large = 0;
  for (const unsigned total : {1'000u, 5'000u, 20'000u}) {
    const unsigned deletes = total / 100;
    const Outcome rec = clean_cost(false, total, deletes);
    const Outcome syn = clean_cost(true, total, deletes);
    std::printf("  %13u | %7u | %13.1f | %15.2f\n", total, deletes, rec.seconds,
                syn.seconds);
    if (total == 20'000u) {
      rec_large = rec.seconds;
      sync_large = syn.seconds;
    }
  }

  bench::section("paper vs measured (20k files, 1% deleted)");
  bench::compare("reconcile cost scaling", "whole-namespace walk",
                 bench::fmt("%.0f s", rec_large));
  bench::compare("sync delete cost scaling", "per-delete only",
                 bench::fmt("%.2f s", sync_large));
  bench::compare("advantage", "\"unacceptable\" vs cheap",
                 bench::fmt("%.0fx", rec_large / sync_large));
  std::printf("\n  (At the paper's 'tens to hundreds of millions of files' the\n"
              "   reconcile walk extrapolates to days, the sync delete stays\n"
              "   proportional to deletions only.)\n");
  return 0;
}
