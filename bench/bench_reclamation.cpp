// Ablation: volume space reclamation.
//
// The synchronous deleter (Sec 4.2.6) leaves dead regions on append-only
// tape; over time mostly-dead volumes waste slots and stretch recalls
// across media.  Reclamation copies the live remainder tape-to-tape and
// frees the volume — the standard TSM companion process to deletion.
//
// Build a fragmented library (many deletions), then compare recalling the
// survivors before and after reclamation.
#include <cstdio>

#include "archive/system.hpp"
#include "bench/common.hpp"

namespace {

using namespace cpa;

struct Outcome {
  double recall_seconds = 0;
  std::uint64_t mounts = 0;
  unsigned volumes_with_live_data = 0;
};

Outcome run(bool reclaim) {
  archive::SystemConfig cfg = archive::SystemConfig::roadrunner();
  cfg.tape.cartridge_capacity = 20 * kGB;  // small volumes fragment faster
  archive::CotsParallelArchive sys(cfg);

  // 200 x 500 MB files over ~5 volumes; delete 80% leaving stragglers
  // scattered across all of them.
  std::vector<std::string> paths;
  for (int i = 0; i < 200; ++i) {
    const std::string p = "/arch/f" + std::to_string(i);
    sys.make_file(sys.archive_fs(), p, 500 * kMB, static_cast<std::uint64_t>(i));
    paths.push_back(p);
  }
  sys.hsm().migrate_batch(0, paths, "g", nullptr);
  sys.sim().run();
  std::vector<std::string> survivors;
  for (int i = 0; i < 200; ++i) {
    if (i % 5 == 0) {
      survivors.push_back(paths[static_cast<std::size_t>(i)]);
    } else {
      sys.hsm().synchronous_delete(paths[static_cast<std::size_t>(i)], nullptr);
    }
  }
  sys.sim().run();

  if (reclaim) {
    sys.hsm().reclaim_volumes(0.5, 0, nullptr);
    sys.sim().run();
  }

  Outcome out;
  sys.library().for_each_cartridge([&](tape::Cartridge& c) {
    if (c.bytes_used() > c.dead_bytes()) ++out.volumes_with_live_data;
  });

  const auto before = sys.library().aggregate_stats();
  const sim::Tick t0 = sys.sim().now();
  hsm::RecallOptions opts;
  opts.nodes = {0, 1, 2, 3};
  opts.max_parallel_tapes = 2;
  sys.hsm().recall(survivors, opts, nullptr);
  sys.sim().run();
  out.recall_seconds = sim::to_seconds(sys.sim().now() - t0);
  out.mounts = sys.library().aggregate_stats().mounts - before.mounts;
  return out;
}

}  // namespace

int main() {
  bench::header("Ablation", "Volume reclamation after heavy deletion");

  const Outcome frag = run(false);
  const Outcome recl = run(true);

  std::printf("\n  state          | live-data volumes | recall mounts | recall (s)\n");
  std::printf("  ---------------+-------------------+---------------+-----------\n");
  std::printf("  fragmented     | %17u | %13llu | %10.0f\n",
              frag.volumes_with_live_data,
              static_cast<unsigned long long>(frag.mounts), frag.recall_seconds);
  std::printf("  reclaimed      | %17u | %13llu | %10.0f\n",
              recl.volumes_with_live_data,
              static_cast<unsigned long long>(recl.mounts), recl.recall_seconds);

  bench::section("paper vs measured");
  bench::compare("live volumes after reclamation", "consolidated",
                 std::to_string(recl.volumes_with_live_data) + " vs " +
                     std::to_string(frag.volumes_with_live_data));
  bench::compare("survivor recall speedup", "fewer mounts, less seeking",
                 bench::fmt("%.1fx", frag.recall_seconds / recl.recall_seconds));
  return 0;
}
