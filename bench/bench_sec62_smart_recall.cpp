// Sec 6.2 "Tape Optimization/Smart Recall":
//   "HSM will send the recalls to different machines in the cluster that
//    then causes the tape to rewind and verify its label every time the
//    tape is passed between machines.  This causes a massive performance
//    hit even though the tape is not physically dismounted.  A way to
//    ensure that all files in a recall request are handled by the same
//    machine ... would correct this issue."
//
// Recall a tape-ordered file list with (a) the stock per-file round-robin
// daemon assignment and (b) tape-affinity assignment, and count handoffs.
#include <cstdio>

#include "archive/system.hpp"
#include "bench/common.hpp"

namespace {

struct RecallOutcome {
  double rate_mbs = 0;
  std::uint64_t handoffs = 0;
  std::uint64_t label_verifies = 0;
  double seconds = 0;
};

RecallOutcome recall_with(cpa::hsm::RecallOptions::Assignment assignment,
                          unsigned files, std::uint64_t file_size) {
  using namespace cpa;
  archive::CotsParallelArchive sys(archive::SystemConfig::roadrunner());
  std::vector<std::string> paths;
  for (unsigned i = 0; i < files; ++i) {
    const std::string p = "/arch/f" + std::to_string(i);
    sys.make_file(sys.archive_fs(), p, file_size, i);
    paths.push_back(p);
  }
  sys.hsm().migrate_batch(0, paths, "g", nullptr);
  sys.sim().run();

  const auto before = sys.library().aggregate_stats();
  hsm::RecallOptions opts;
  opts.tape_ordered = true;  // the list itself is perfectly ordered
  opts.assignment = assignment;
  opts.nodes = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  RecallOutcome out;
  sys.hsm().recall(paths, opts, [&](const hsm::RecallReport& r) {
    out.rate_mbs = r.mean_rate_bps() / static_cast<double>(kMB);
    out.seconds = sim::to_seconds(r.finished - r.started);
  });
  sys.sim().run();
  const auto after = sys.library().aggregate_stats();
  out.handoffs = after.handoffs - before.handoffs;
  out.label_verifies = after.label_verifies - before.label_verifies;
  return out;
}

}  // namespace

int main() {
  using namespace cpa;
  bench::header("Sec 6.2", "LAN-free recall: per-file round-robin vs tape affinity");

  constexpr unsigned kFiles = 64;
  constexpr std::uint64_t kSize = 512 * kMB;

  const RecallOutcome rr =
      recall_with(hsm::RecallOptions::Assignment::RoundRobin, kFiles, kSize);
  const RecallOutcome aff =
      recall_with(hsm::RecallOptions::Assignment::TapeAffinity, kFiles, kSize);

  std::printf("\n  assignment    | recall MB/s | handoffs | label verifies | seconds\n");
  std::printf("  --------------+-------------+----------+----------------+--------\n");
  std::printf("  round-robin   | %11.1f | %8llu | %14llu | %7.0f\n", rr.rate_mbs,
              static_cast<unsigned long long>(rr.handoffs),
              static_cast<unsigned long long>(rr.label_verifies), rr.seconds);
  std::printf("  tape-affinity | %11.1f | %8llu | %14llu | %7.0f\n", aff.rate_mbs,
              static_cast<unsigned long long>(aff.handoffs),
              static_cast<unsigned long long>(aff.label_verifies), aff.seconds);

  bench::section("paper vs measured");
  bench::compare("round-robin handoffs", "one per machine switch",
                 std::to_string(rr.handoffs));
  bench::compare("affinity handoffs", "none", std::to_string(aff.handoffs));
  bench::compare("performance hit", "\"massive\"",
                 bench::fmt("%.1fx slower", aff.rate_mbs / rr.rate_mbs));
  return 0;
}
