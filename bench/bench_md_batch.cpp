// Metadata batching + pipelining vs the stop-and-wait object-DB path.
//
// Sec 6.4's wall is metadata, not data: every migrate/recall/delete pays
// one full server round-trip per mutation, serialized FIFO on one TSM
// server.  The TxnSession layer group-commits up to B mutations into one
// amortized round-trip (batch_base + per_op * n) and keeps a window W of
// batched round-trips in flight.  Two measurements, batched (B=16, W=4)
// vs singleton (B=1), against 1..8 hash-routed servers:
//   (a) a bookkeeping txn storm — the pure-metadata worst case;
//   (b) a synchronous-delete sweep — two dependent round-trips per file
//       through the real HSM delete path.
//
// Correctness gate (exit non-zero): the one-server storm must speed up by
// >=5x batched-over-singleton — the acceptance bar; the cost model alone
// provides ~6.4x at B=16.
//
// Output: a human table plus BENCH_md_batch.json, one record per server
// count.  Flags: --smoke, --json=PATH.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "archive/system.hpp"
#include "bench/common.hpp"
#include "hsm/txn_batch.hpp"
#include "workload/tree.hpp"

namespace {

using namespace cpa;

constexpr sim::Tick kTxnCost = sim::msecs(20);  // loaded TSM server
constexpr unsigned kBatch = 16;
constexpr unsigned kWindow = 4;

archive::SystemConfig plant(unsigned servers, bool batched) {
  archive::SystemConfig cfg = archive::SystemConfig::roadrunner();
  cfg.hsm.server_count = servers;
  cfg.hsm.server.metadata_txn_cost = kTxnCost;
  if (batched) {
    cfg.hsm.server.md_batch_size = kBatch;
    cfg.hsm.server.md_window = kWindow;
  }
  return cfg;
}

/// The bookkeeping storm: `txns` object-DB mutations spread over the
/// servers.  Singleton issues one stop-and-wait round-trip each; batched
/// routes the same mutations through per-server TxnSessions.
double txn_storm_seconds(unsigned servers, unsigned txns, bool batched) {
  archive::CotsParallelArchive sys(plant(servers, batched));
  for (unsigned i = 0; i < txns; ++i) {
    const std::string path = "/proj/f" + std::to_string(i);
    hsm::ArchiveServer& server = sys.hsm().server_for(path);
    if (batched) {
      sys.hsm().session_for(server).submit([] {});
    } else {
      server.metadata_txn(nullptr);
    }
  }
  if (batched) {
    for (unsigned i = 0; i < servers; ++i) {
      const std::string path = "/proj/f" + std::to_string(i);
      sys.hsm().session_for(sys.hsm().server_for(path)).flush();
    }
  }
  sys.sim().run();
  return sim::to_seconds(sys.sim().now());
}

/// Synchronous-delete sweep through the full HSM path (lookup join +
/// cascade delete per file); batching is the config knob, so the same
/// call sites take the pipelined or the legacy branch.
double sync_delete_seconds(unsigned servers, unsigned files, bool batched) {
  archive::CotsParallelArchive sys(plant(servers, batched));
  workload::TreeSpec tree;
  tree.root = "/proj/data";
  for (unsigned i = 0; i < files; ++i) tree.file_sizes.push_back(kMB);
  workload::build_tree(sys.archive_fs(), tree);
  std::vector<std::string> paths;
  for (unsigned i = 0; i < files; ++i) {
    paths.push_back(workload::tree_file_path(tree, i));
  }
  sys.hsm().parallel_migrate(paths, {0, 1, 2, 3, 4, 5, 6, 7, 8, 9},
                             hsm::DistributionStrategy::SizeBalanced, "g",
                             nullptr);
  sys.sim().run();

  const sim::Tick t0 = sys.sim().now();
  for (const auto& p : paths) {
    sys.hsm().synchronous_delete(p, nullptr);
  }
  sys.sim().run();
  return sim::to_seconds(sys.sim().now() - t0);
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path = "BENCH_md_batch.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") smoke = true;
    if (arg.rfind("--json=", 0) == 0) json_path = arg.substr(7);
  }
  const unsigned kTxns = smoke ? 4'000 : 20'000;
  const unsigned kFiles = smoke ? 500 : 2'000;

  bench::header("Sec 6.4 + batching",
                "Group-committed metadata vs stop-and-wait round-trips");
  std::printf(
      "\n  B=%u W=%u, txn cost %.0f ms; storm = %u txns, delete = %u files\n",
      kBatch, kWindow, sim::to_seconds(kTxnCost) * 1e3, kTxns, kFiles);
  std::printf(
      "\n  servers | storm 1-by-1 (s) | storm batched (s) | speedup |"
      " delete 1-by-1 (s) | delete batched (s) | speedup\n"
      "  --------+------------------+-------------------+---------+"
      "-------------------+--------------------+--------\n");

  std::string json = "[\n";
  double storm_speedup1 = 0;
  bool first = true;
  for (const unsigned servers : {1u, 2u, 4u, 8u}) {
    const double storm_plain = txn_storm_seconds(servers, kTxns, false);
    const double storm_batch = txn_storm_seconds(servers, kTxns, true);
    const double del_plain = sync_delete_seconds(servers, kFiles, false);
    const double del_batch = sync_delete_seconds(servers, kFiles, true);
    const double storm_speedup = storm_plain / storm_batch;
    const double del_speedup = del_plain / del_batch;
    if (servers == 1) storm_speedup1 = storm_speedup;
    std::printf(
        "  %7u | %16.1f | %17.1f | %6.1fx | %17.1f | %18.1f | %5.1fx\n",
        servers, storm_plain, storm_batch, storm_speedup, del_plain,
        del_batch, del_speedup);
    char row[512];
    std::snprintf(row, sizeof(row),
                  "%s  {\"case\": \"s%u\", \"servers\": %u, "
                  "\"storm_plain_s\": %.3f, \"storm_batched_s\": %.3f, "
                  "\"storm_speedup\": %.3f, \"delete_plain_s\": %.3f, "
                  "\"delete_batched_s\": %.3f, \"delete_speedup\": %.3f}",
                  first ? "" : ",\n", servers, servers, storm_plain,
                  storm_batch, storm_speedup, del_plain, del_batch,
                  del_speedup);
    json += row;
    first = false;
  }
  json += "\n]\n";
  if (std::FILE* f = std::fopen(json_path.c_str(), "w")) {
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::printf("\n  wrote %s\n", json_path.c_str());
  }

  bench::section("paper vs measured");
  bench::compare("single-server storm, batched",
                 "amortized group commit",
                 bench::fmt("%.1fx faster than stop-and-wait",
                            storm_speedup1));

  if (storm_speedup1 < 5.0) {
    std::fprintf(stderr,
                 "FAIL: one-server storm speedup %.2fx < 5x acceptance bar\n",
                 storm_speedup1);
    return 1;
  }
  return 0;
}
