// cpa_check: the deterministic chaos-simulation harness CLI.
//
//   cpa_check --seed=7 --ops=300            one campaign, full oracles
//   cpa_check --seed=1 --seeds=20           a sweep of 20 seeds
//   cpa_check --corpus=tests/check/seed_corpus.txt   replay known seeds
//   cpa_check --seed=7 --shrink             minimize a failing campaign
//   cpa_check --doctor=scrub                self-test: plant a bug, demand
//                                           the oracles catch + shrink it
//
// Each seed runs the full battery: the chaos campaign itself (zero
// invariant violations expected), a same-seed replay (bit-identical
// campaign digest expected), and a metamorphic pair (a faulted run that
// recovered fully must leave the same final archive state as its
// fault-free twin).  Any failure prints a copy-pasteable repro line.
// CPA_CHECK_OPS scales the per-seed op budget when --ops is absent.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/check/campaign.hpp"
#include "src/check/runner.hpp"
#include "src/check/shrink.hpp"

namespace {

using cpa::check::ChaosCampaign;
using cpa::check::ChaosConfig;
using cpa::check::ChaosResult;
using cpa::check::Doctor;
using cpa::check::RunOptions;

struct Cli {
  std::uint64_t seed = 1;
  unsigned seeds = 1;
  unsigned ops = 0;  // 0 = CPA_CHECK_OPS or 300
  bool do_shrink = false;
  bool no_faults = false;
  bool no_corruptions = false;
  bool no_cancels = false;
  bool no_meta = false;
  bool crashes = false;
  bool quiescent_crash = false;
  unsigned md_batch = 1;
  bool dump_log = false;
  Doctor doctor = Doctor::None;
  std::string save_trace;
  std::string corpus;
};

void usage() {
  std::printf(
      "usage: cpa_check [--seed=N] [--seeds=COUNT] [--ops=K] [--shrink]\n"
      "                 [--corpus=FILE] [--doctor=scrub|fixity]\n"
      "                 [--save-trace=PATH] [--no-faults] "
      "[--no-corruptions]\n"
      "                 [--no-cancels] [--no-meta] [--crashes] "
      "[--quiescent-crash]\n"
      "                 [--md-batch=N]\n"
      "--md-batch=N group-commits server metadata txns N at a time (1 =\n"
      "legacy stop-and-wait path; plant knob only, digests stay comparable)\n"
      "--crashes arms whole-archive power failures (WAL on) and adds the\n"
      "quiescent crash+recover metamorphic gate to each seed's battery\n"
      "env: CPA_CHECK_OPS sets the default op budget (default 300)\n");
}

bool parse(int argc, char** argv, Cli& cli) {
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto val = [&](const char* key) -> const char* {
      const std::size_t n = std::strlen(key);
      return a.compare(0, n, key) == 0 ? a.c_str() + n : nullptr;
    };
    if (const char* v = val("--seed=")) {
      cli.seed = std::strtoull(v, nullptr, 10);
    } else if (const char* v = val("--seeds=")) {
      cli.seeds = static_cast<unsigned>(std::strtoul(v, nullptr, 10));
    } else if (const char* v = val("--ops=")) {
      cli.ops = static_cast<unsigned>(std::strtoul(v, nullptr, 10));
    } else if (a == "--shrink") {
      cli.do_shrink = true;
    } else if (a == "--no-faults") {
      cli.no_faults = true;
    } else if (a == "--no-corruptions") {
      cli.no_corruptions = true;
    } else if (a == "--no-cancels") {
      cli.no_cancels = true;
    } else if (a == "--no-meta") {
      cli.no_meta = true;
    } else if (a == "--crashes") {
      cli.crashes = true;
    } else if (a == "--quiescent-crash") {
      cli.quiescent_crash = true;
    } else if (const char* v = val("--md-batch=")) {
      cli.md_batch = static_cast<unsigned>(std::strtoul(v, nullptr, 10));
      if (cli.md_batch == 0) cli.md_batch = 1;
    } else if (a == "--dump-log") {
      cli.dump_log = true;
    } else if (const char* v = val("--doctor=")) {
      if (std::strcmp(v, "scrub") == 0) {
        cli.doctor = Doctor::BreakScrubRepair;
      } else if (std::strcmp(v, "fixity") == 0) {
        cli.doctor = Doctor::DropFixityRow;
      } else {
        std::fprintf(stderr, "unknown --doctor=%s\n", v);
        return false;
      }
    } else if (const char* v = val("--save-trace=")) {
      cli.save_trace = v;
    } else if (const char* v = val("--corpus=")) {
      cli.corpus = v;
    } else if (a == "--help" || a == "-h") {
      usage();
      std::exit(0);
    } else {
      std::fprintf(stderr, "unknown argument %s\n", a.c_str());
      usage();
      return false;
    }
  }
  if (cli.ops == 0) {
    const char* env = std::getenv("CPA_CHECK_OPS");
    cli.ops = env != nullptr
                  ? static_cast<unsigned>(std::strtoul(env, nullptr, 10))
                  : 0;
    if (cli.ops == 0) cli.ops = 300;
  }
  return true;
}

ChaosConfig config_for(const Cli& cli, std::uint64_t seed, unsigned ops,
                       bool crashes) {
  ChaosConfig cfg;
  cfg.with_seed(seed).with_ops(ops).with_doctor(cli.doctor);
  if (cli.no_faults) cfg.with_faults(false);
  if (cli.no_corruptions) cfg.with_corruptions(false);
  if (cli.no_cancels) cfg.with_cancels(false);
  if (crashes) cfg.with_crashes(true);
  if (cli.quiescent_crash) cfg.with_quiescent_crash(true);
  cfg.with_md_batch(cli.md_batch);
  return cfg;
}

void print_failure(const ChaosConfig& cfg, const ChaosResult& r,
                   const char* what) {
  std::printf("FAIL seed=%llu: %s\n",
              static_cast<unsigned long long>(cfg.seed), what);
  std::fputs(r.render_violations().c_str(), stdout);
  std::printf("repro: %s\n", cpa::check::repro_line(cfg).c_str());
}

void shrink_and_report(const ChaosConfig& cfg, const RunOptions& opt) {
  const ChaosCampaign full = ChaosCampaign::generate(cfg);
  const auto res = cpa::check::shrink(full, opt);
  if (!res) {
    std::printf("shrink: campaign no longer fails (flaky?)\n");
    return;
  }
  std::printf("shrink: %zu -> %zu ops, %zu -> %zu fault events "
              "(%u probe runs)\n",
              full.ops.size(), res->minimal.ops.size(),
              full.fault_plan.events.size(),
              res->minimal.fault_plan.events.size(), res->runs);
  std::printf("--- minimal campaign ---\n%s--- first violation ---\n%s\n",
              res->minimal.render().c_str(),
              res->failure.violations.empty()
                  ? "(none)"
                  : res->failure.violations.front().render().c_str());
}

/// The full battery for one seed.  Returns true when every check passed.
bool run_seed(const Cli& cli, std::uint64_t seed, unsigned ops,
              bool crashes) {
  const ChaosConfig cfg = config_for(cli, seed, ops, crashes);
  RunOptions opt;
  opt.save_trace = cli.save_trace;

  const ChaosResult r1 = cpa::check::run_chaos(cfg, opt);
  if (cli.dump_log) std::fputs(r1.log.c_str(), stdout);
  if (!r1.ok()) {
    print_failure(cfg, r1, "invariant violation(s)");
    if (cli.do_shrink) shrink_and_report(cfg, opt);
    return false;
  }

  // Same seed, fresh plant: the campaign digest must be bit-identical.
  RunOptions replay_opt;  // no trace overwrite on the replay
  const ChaosResult r2 = cpa::check::run_chaos(cfg, replay_opt);
  if (r2.digest != r1.digest) {
    std::printf("FAIL seed=%llu: replay digest %016llx != %016llx "
                "(nondeterminism)\n",
                static_cast<unsigned long long>(seed),
                static_cast<unsigned long long>(r2.digest),
                static_cast<unsigned long long>(r1.digest));
    std::printf("repro: %s\n", cpa::check::repro_line(cfg).c_str());
    return false;
  }

  // Metamorphic pair: faults (minus corruption, minus timing-dependent
  // cancels) with full recovery must converge to the fault-free state.
  if (!cli.no_meta) {
    ChaosConfig faulted = cfg;
    faulted.with_cancels(false).with_corruptions(false);
    const ChaosResult m1 = cpa::check::run_chaos(faulted, replay_opt);
    const ChaosResult m2 =
        cpa::check::run_chaos(faulted.fault_free_twin(), replay_opt);
    if (!m1.ok()) {
      print_failure(faulted, m1, "violation(s) in metamorphic faulted run");
      if (cli.do_shrink) shrink_and_report(faulted, replay_opt);
      return false;
    }
    if (!m2.ok()) {
      const ChaosConfig twin = faulted.fault_free_twin();
      print_failure(twin, m2, "violation(s) in fault-free twin");
      if (cli.do_shrink) shrink_and_report(twin, replay_opt);
      return false;
    }
    // Crash campaigns are excluded from the faulted/twin state compare:
    // a power failure can cut a synchronous_delete either side of its
    // unlink, and which side it lands on is timing the twin's fault-free
    // schedule shifts.  The quiescent-crash gate below covers them.
    if (m1.fully_recovered && !cfg.crashes &&
        m1.state_digest != m2.state_digest) {
      std::printf("FAIL seed=%llu: recovered faulted state %016llx != "
                  "fault-free twin %016llx\n",
                  static_cast<unsigned long long>(seed),
                  static_cast<unsigned long long>(m1.state_digest),
                  static_cast<unsigned long long>(m2.state_digest));
      std::printf("repro: %s\n", cpa::check::repro_line(faulted).c_str());
      return false;
    }
    if (!m1.fully_recovered) {
      std::printf("seed %llu: metamorphic compare skipped "
                  "(faulted run did not fully recover)\n",
                  static_cast<unsigned long long>(seed));
    }
  }

  // Quiescent-crash metamorphic gate: power-failing the drained plant
  // and replaying the WAL must be invisible — the final state digest has
  // to equal the very same campaign's digest without the crash.
  if (cfg.crashes && !cfg.quiescent_crash && !cli.no_meta) {
    ChaosConfig qcfg = cfg;
    qcfg.with_quiescent_crash(true);
    RunOptions qopt;
    const ChaosResult rq = cpa::check::run_chaos(qcfg, qopt);
    if (!rq.ok()) {
      print_failure(qcfg, rq, "violation(s) in quiescent-crash run");
      if (cli.do_shrink) shrink_and_report(qcfg, qopt);
      return false;
    }
    if (rq.state_digest != r1.state_digest) {
      std::printf("FAIL seed=%llu: quiescent crash+recover state %016llx != "
                  "crash-free %016llx\n",
                  static_cast<unsigned long long>(seed),
                  static_cast<unsigned long long>(rq.state_digest),
                  static_cast<unsigned long long>(r1.state_digest));
      std::printf("repro: %s\n", cpa::check::repro_line(qcfg).c_str());
      return false;
    }
  }

  std::printf("seed %llu: ok digest=%016llx ops=%u/%u jobs=%u cancels=%u "
              "drained=%.0fs\n",
              static_cast<unsigned long long>(seed),
              static_cast<unsigned long long>(r1.digest), r1.ops_executed,
              r1.ops_executed + r1.ops_skipped, r1.jobs_submitted,
              r1.cancels_landed, cpa::sim::to_seconds(r1.drained_at));
  return true;
}

/// Doctor self-test: plant a bug, demand detection *and* a useful shrink.
bool run_doctor(const Cli& cli) {
  const ChaosConfig cfg = config_for(cli, cli.seed, cli.ops, cli.crashes);
  RunOptions opt;
  opt.save_trace = cli.save_trace;
  const ChaosResult r = cpa::check::run_chaos(cfg, opt);
  if (r.ok()) {
    std::printf("FAIL: doctored bug (%s) produced no violation\n",
                to_string(cfg.doctor));
    return false;
  }
  std::printf("doctored bug (%s) caught:\n%s", to_string(cfg.doctor),
              r.render_violations().c_str());
  const ChaosCampaign full = ChaosCampaign::generate(cfg);
  const auto res = cpa::check::shrink(full, opt);
  if (!res) {
    std::printf("FAIL: doctored failure did not survive shrinking\n");
    return false;
  }
  if (res->minimal.ops.size() >= full.ops.size()) {
    std::printf("FAIL: shrinker removed nothing (%zu ops)\n",
                full.ops.size());
    return false;
  }
  std::printf("shrunk to %zu op(s), %zu fault event(s) in %u runs:\n%s",
              res->minimal.ops.size(), res->minimal.fault_plan.events.size(),
              res->runs, res->minimal.render().c_str());
  std::printf("self-test ok\n");
  return true;
}

struct CorpusEntry {
  std::uint64_t seed = 0;
  unsigned ops = 0;
  bool crashes = false;
};

std::vector<CorpusEntry> load_corpus(const std::string& path,
                                     unsigned default_ops) {
  std::vector<CorpusEntry> out;
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line)) {
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream ls(line);
    CorpusEntry e;
    if (!(ls >> e.seed)) continue;
    if (!(ls >> e.ops)) e.ops = default_ops;
    std::string tag;
    if (ls >> tag && tag == "crash") e.crashes = true;
    out.push_back(e);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli;
  if (!parse(argc, argv, cli)) return 2;

  if (cli.doctor != Doctor::None) {
    return run_doctor(cli) ? 0 : 1;
  }

  std::vector<CorpusEntry> seeds;
  if (!cli.corpus.empty()) {
    seeds = load_corpus(cli.corpus, cli.ops);
    if (seeds.empty()) {
      std::fprintf(stderr, "corpus %s is empty or unreadable\n",
                   cli.corpus.c_str());
      return 2;
    }
  } else {
    for (unsigned i = 0; i < cli.seeds; ++i) {
      seeds.push_back({cli.seed + i, cli.ops, cli.crashes});
    }
  }

  unsigned failed = 0;
  for (const CorpusEntry& e : seeds) {
    if (!run_seed(cli, e.seed, e.ops, e.crashes || cli.crashes)) ++failed;
  }
  std::printf("%zu seed(s), %u failed\n", seeds.size(), failed);
  return failed == 0 ? 0 : 1;
}
