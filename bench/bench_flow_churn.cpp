// Flow-churn microbenchmark: incremental dirty-component scheduling vs
// full from-scratch water-filling.
//
// The campaign workloads churn flows constantly (every file copy is a
// flow start + completion), but each mutation touches only the small
// connected component of pools its flow traverses.  This bench builds F
// flows spread over pool clusters with sparse overlap, then measures
// steady-state churn throughput (abort one flow + start a replacement)
// with the incremental scheduler and again with `set_full_recompute(true)`
// (the pre-incremental behaviour).  Every run cross-checks the
// incrementally maintained rates against `recompute_rates_reference()`
// bit-for-bit and exits non-zero on any divergence, so CI smoke runs double
// as a correctness gate.
//
// Output: a human table plus BENCH_flow_churn.json with one record per F.
//
// Flags: --smoke (fewer ops, skip F=5000), --seed=N, --json=PATH.
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "simcore/flow_network.hpp"
#include "simcore/rng.hpp"

namespace {

using namespace cpa;
using sim::FlowId;
using sim::FlowNetwork;
using sim::PathLeg;
using sim::PoolId;

constexpr double kMBd = 1e6;
constexpr int kPoolsPerCluster = 4;

struct ChurnResult {
  std::size_t flows = 0;
  std::size_t pools = 0;
  std::size_t ops = 0;
  double ops_per_sec = 0.0;
};

struct Topology {
  sim::Simulation sim;
  FlowNetwork net;
  sim::Rng rng;
  std::size_t clusters;
  std::vector<PoolId> pools;
  std::vector<FlowId> live;     // index-aligned with `cluster_of`
  std::vector<std::size_t> cluster_of;

  Topology(std::size_t flows, std::uint64_t seed)
      : net(sim), rng(seed), clusters(std::max<std::size_t>(1, flows / 50)) {
    for (std::size_t c = 0; c < clusters; ++c) {
      for (int p = 0; p < kPoolsPerCluster; ++p) {
        pools.push_back(net.add_pool(
            "c" + std::to_string(c) + "p" + std::to_string(p),
            rng.uniform(50, 200) * kMBd));
      }
    }
    for (std::size_t i = 0; i < flows; ++i) {
      const std::size_t c = i % clusters;
      live.push_back(start_in_cluster(c));
      cluster_of.push_back(c);
    }
  }

  FlowId start_in_cluster(std::size_t c) {
    // Two legs inside the cluster: enough overlap that components are
    // real (cluster-sized), sparse enough that clusters stay disjoint.
    const auto leg = [&] {
      return pools[c * kPoolsPerCluster +
                   rng.uniform_u64(0, kPoolsPerCluster - 1)];
    };
    // Big enough that nothing completes during the measured loop.
    return net.start_flow({PathLeg(leg()), PathLeg(leg())},
                          1e12 * rng.uniform(1.0, 2.0), nullptr);
  }

  /// One churn op: abort a random flow, start a replacement in the same
  /// cluster (two rate recomputes).
  void churn() {
    const std::size_t i =
        static_cast<std::size_t>(rng.uniform_u64(0, live.size() - 1));
    net.abort_flow(live[i]);
    live[i] = start_in_cluster(cluster_of[i]);
  }

  /// Bit-exact incremental-vs-reference comparison.
  [[nodiscard]] bool rates_match_reference() const {
    const auto reference = net.recompute_rates_reference();
    const auto ids = net.live_flow_ids();
    if (reference.size() != ids.size()) return false;
    for (std::size_t i = 0; i < ids.size(); ++i) {
      if (reference[i].first != ids[i].id) return false;
      if (net.flow_rate(ids[i]) != reference[i].second) return false;
    }
    return true;
  }
};

/// Runs `ops` churn operations and returns throughput; `check_every > 0`
/// cross-checks rates against the reference during the loop (outside the
/// timed region cost is negligible vs the solve itself, so we keep it in —
/// both modes pay it equally).
ChurnResult run_mode(std::size_t flows, std::uint64_t seed, std::size_t ops,
                     bool full_recompute, bool* diverged) {
  Topology topo(flows, seed);
  topo.net.set_full_recompute(full_recompute);
  const std::size_t check_every = std::max<std::size_t>(1, ops / 8);
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t op = 0; op < ops; ++op) {
    topo.churn();
    if (op % check_every == 0 && !topo.rates_match_reference()) {
      *diverged = true;
    }
  }
  const auto t1 = std::chrono::steady_clock::now();
  if (!topo.rates_match_reference()) *diverged = true;
  const double dt = std::chrono::duration<double>(t1 - t0).count();
  ChurnResult r;
  r.flows = flows;
  r.pools = topo.pools.size();
  r.ops = ops;
  r.ops_per_sec = dt > 0.0 ? static_cast<double>(ops) / dt : 0.0;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path = "BENCH_flow_churn.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") smoke = true;
    if (arg.rfind("--json=", 0) == 0) json_path = arg.substr(7);
  }
  const bench::ObsCli cli = bench::parse_obs_cli(argc, argv);
  const std::uint64_t seed = cli.seed_set ? cli.seed : 42;

  bench::header("bench_flow_churn",
                "incremental dirty-component scheduling vs full recompute");
  std::printf("  %6s %6s | %12s %12s | %12s %12s | %8s\n", "flows", "pools",
              "inc ops", "inc ops/s", "full ops", "full ops/s", "speedup");

  std::vector<std::size_t> sizes = {10, 100, 1000};
  if (!smoke) sizes.push_back(5000);

  bool diverged = false;
  double speedup_at_1000 = 0.0;
  std::string json = "[\n";
  for (const std::size_t flows : sizes) {
    // The full mode is O(F^2) per op; scale its op count down so the
    // largest points stay sub-minute while the rate estimate stays sound.
    const std::size_t inc_ops = smoke ? 2000 : 20000;
    const std::size_t full_ops =
        std::max<std::size_t>(smoke ? 20 : 50, (smoke ? 20000 : 200000) / flows);
    const ChurnResult inc = run_mode(flows, seed, inc_ops, false, &diverged);
    const ChurnResult full = run_mode(flows, seed, full_ops, true, &diverged);
    const double speedup =
        full.ops_per_sec > 0.0 ? inc.ops_per_sec / full.ops_per_sec : 0.0;
    if (flows == 1000) speedup_at_1000 = speedup;
    std::printf("  %6zu %6zu | %12zu %12.0f | %12zu %12.0f | %7.1fx\n",
                inc.flows, inc.pools, inc.ops, inc.ops_per_sec, full.ops,
                full.ops_per_sec, speedup);
    char row[256];
    std::snprintf(row, sizeof(row),
                  "  {\"flows\": %zu, \"pools\": %zu, "
                  "\"incremental_ops_per_sec\": %.1f, "
                  "\"full_ops_per_sec\": %.1f, \"speedup\": %.2f}%s\n",
                  inc.flows, inc.pools, inc.ops_per_sec, full.ops_per_sec,
                  speedup, flows == sizes.back() ? "" : ",");
    json += row;
  }
  json += "]\n";

  if (std::FILE* f = std::fopen(json_path.c_str(), "w")) {
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::printf("\n  wrote %s\n", json_path.c_str());
  } else {
    std::fprintf(stderr, "bench_flow_churn: cannot write %s\n",
                 json_path.c_str());
    return 1;
  }

  bench::section("summary");
  bench::compare("churn speedup at F=1000, sparse overlap", ">= 5x",
                 bench::fmt("%.1fx", speedup_at_1000));
  if (diverged) {
    std::fprintf(stderr,
                 "bench_flow_churn: FAIL — incremental rates diverged from "
                 "recompute_rates_reference()\n");
    return 1;
  }
  std::printf("  incremental rates matched the reference exactly at every "
              "checkpoint\n");
  return 0;
}
