// bench_regress: the CI perf-regression gate.
//
// Diffs a freshly produced BENCH_*.json against a checked-in baseline and
// fails (exit 1) when a named headline metric regressed beyond its
// tolerance — the ROADMAP "as fast as the hardware allows" goal needs
// perf wins (e.g. PR 3's incremental scheduler) to stay won.  Both files
// are the flat JSON the benches emit: an array of objects whose values
// are numbers or strings.  Records are matched by a key field present in
// both files (e.g. "flows" for BENCH_flow_churn.json, "scenario" for
// BENCH_scrub.json); baseline records missing from the fresh run are a
// failure too (a silently dropped point is a regression in coverage).
//
// Usage:
//   bench_regress --baseline=FILE --fresh=FILE --key=FIELD \
//                 --metric=NAME:TOL_PCT[:higher|lower|exact] [--metric=...]
//
// Direction: `higher` (default) means bigger is better — fail when fresh
// drops more than TOL_PCT below baseline; `lower` means smaller is better;
// `exact` ignores TOL_PCT and requires equality (for deterministic counts).
// Exit codes: 0 ok, 1 regression, 2 usage or parse error.
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

namespace {

// One bench record: field -> value.  Numbers keep a parsed double next to
// the raw text so `exact` can compare what was written, not a reparse.
struct Record {
  std::map<std::string, std::string> raw;
  std::map<std::string, double> num;
};

// Minimal parser for the benches' own output: `[ {"k": v, ...}, ... ]`
// where v is a JSON number or a quoted string (no nesting, no escapes
// beyond \" — the emitters never produce them).
bool parse_records(const std::string& text, std::vector<Record>* out,
                   std::string* err) {
  std::size_t i = 0;
  const auto skip_ws = [&] {
    while (i < text.size() &&
           std::isspace(static_cast<unsigned char>(text[i])) != 0) {
      ++i;
    }
  };
  const auto fail = [&](const std::string& what) {
    *err = what + " at offset " + std::to_string(i);
    return false;
  };
  skip_ws();
  if (i >= text.size() || text[i] != '[') return fail("expected '['");
  ++i;
  skip_ws();
  if (i < text.size() && text[i] == ']') return true;  // empty array
  while (true) {
    skip_ws();
    if (i >= text.size() || text[i] != '{') return fail("expected '{'");
    ++i;
    Record rec;
    while (true) {
      skip_ws();
      if (i >= text.size() || text[i] != '"') return fail("expected key");
      const std::size_t kend = text.find('"', i + 1);
      if (kend == std::string::npos) return fail("unterminated key");
      const std::string key = text.substr(i + 1, kend - i - 1);
      i = kend + 1;
      skip_ws();
      if (i >= text.size() || text[i] != ':') return fail("expected ':'");
      ++i;
      skip_ws();
      if (i < text.size() && text[i] == '"') {
        std::size_t vend = i + 1;
        while (vend < text.size() && text[vend] != '"') {
          if (text[vend] == '\\') ++vend;
          ++vend;
        }
        if (vend >= text.size()) return fail("unterminated string");
        rec.raw[key] = text.substr(i + 1, vend - i - 1);
        i = vend + 1;
      } else {
        const std::size_t start = i;
        while (i < text.size() && (std::isdigit(static_cast<unsigned char>(
                                       text[i])) != 0 ||
                                   text[i] == '-' || text[i] == '+' ||
                                   text[i] == '.' || text[i] == 'e' ||
                                   text[i] == 'E')) {
          ++i;
        }
        if (i == start) return fail("expected value");
        const std::string lit = text.substr(start, i - start);
        rec.raw[key] = lit;
        rec.num[key] = std::strtod(lit.c_str(), nullptr);
      }
      skip_ws();
      if (i < text.size() && text[i] == ',') {
        ++i;
        continue;
      }
      if (i < text.size() && text[i] == '}') {
        ++i;
        break;
      }
      return fail("expected ',' or '}'");
    }
    out->push_back(std::move(rec));
    skip_ws();
    if (i < text.size() && text[i] == ',') {
      ++i;
      continue;
    }
    if (i < text.size() && text[i] == ']') return true;
    return fail("expected ',' or ']'");
  }
}

bool load_records(const std::string& path, std::vector<Record>* out) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "bench_regress: cannot read %s\n", path.c_str());
    return false;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  std::string err;
  if (!parse_records(ss.str(), out, &err)) {
    std::fprintf(stderr, "bench_regress: %s: parse error: %s\n", path.c_str(),
                 err.c_str());
    return false;
  }
  return true;
}

enum class Direction { Higher, Lower, Exact };

struct MetricSpec {
  std::string name;
  double tol_pct = 0.0;
  Direction dir = Direction::Higher;
};

bool parse_metric(const std::string& spec, MetricSpec* out) {
  const std::size_t c1 = spec.find(':');
  if (c1 == std::string::npos) {
    out->name = spec;
    out->dir = Direction::Exact;
    return !out->name.empty();
  }
  out->name = spec.substr(0, c1);
  const std::size_t c2 = spec.find(':', c1 + 1);
  const std::string tol = spec.substr(c1 + 1, c2 == std::string::npos
                                                  ? std::string::npos
                                                  : c2 - c1 - 1);
  out->tol_pct = std::strtod(tol.c_str(), nullptr);
  if (c2 != std::string::npos) {
    const std::string d = spec.substr(c2 + 1);
    if (d == "higher") {
      out->dir = Direction::Higher;
    } else if (d == "lower") {
      out->dir = Direction::Lower;
    } else if (d == "exact") {
      out->dir = Direction::Exact;
    } else {
      return false;
    }
  }
  return !out->name.empty();
}

int usage() {
  std::fprintf(stderr,
               "usage: bench_regress --baseline=FILE --fresh=FILE "
               "--key=FIELD --metric=NAME:TOL_PCT[:higher|lower|exact] "
               "[--metric=...]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string baseline_path;
  std::string fresh_path;
  std::string key;
  std::vector<MetricSpec> metrics;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--baseline=", 0) == 0) {
      baseline_path = arg.substr(11);
    } else if (arg.rfind("--fresh=", 0) == 0) {
      fresh_path = arg.substr(8);
    } else if (arg.rfind("--key=", 0) == 0) {
      key = arg.substr(6);
    } else if (arg.rfind("--metric=", 0) == 0) {
      MetricSpec spec;
      if (!parse_metric(arg.substr(9), &spec)) return usage();
      metrics.push_back(std::move(spec));
    } else {
      return usage();
    }
  }
  if (baseline_path.empty() || fresh_path.empty() || key.empty() ||
      metrics.empty()) {
    return usage();
  }

  std::vector<Record> baseline;
  std::vector<Record> fresh;
  if (!load_records(baseline_path, &baseline) ||
      !load_records(fresh_path, &fresh)) {
    return 2;
  }

  int regressions = 0;
  int checked = 0;
  for (const Record& base : baseline) {
    const auto bkey = base.raw.find(key);
    if (bkey == base.raw.end()) continue;  // record not keyed (e.g. summary)
    const Record* match = nullptr;
    for (const Record& f : fresh) {
      const auto fkey = f.raw.find(key);
      if (fkey != f.raw.end() && fkey->second == bkey->second) {
        match = &f;
        break;
      }
    }
    if (match == nullptr) {
      std::fprintf(stderr,
                   "REGRESS %s=%s: record missing from fresh run\n",
                   key.c_str(), bkey->second.c_str());
      ++regressions;
      continue;
    }
    for (const MetricSpec& m : metrics) {
      const auto bv = base.raw.find(m.name);
      if (bv == base.raw.end()) continue;  // metric not in this record
      const auto fv = match->raw.find(m.name);
      ++checked;
      if (fv == match->raw.end()) {
        std::fprintf(stderr, "REGRESS %s=%s: metric %s missing\n", key.c_str(),
                     bkey->second.c_str(), m.name.c_str());
        ++regressions;
        continue;
      }
      const auto bn = base.num.find(m.name);
      const auto fn = match->num.find(m.name);
      const bool numeric =
          bn != base.num.end() && fn != match->num.end();
      bool ok = true;
      if (m.dir == Direction::Exact || !numeric) {
        ok = numeric ? bn->second == fn->second : bv->second == fv->second;
      } else if (m.dir == Direction::Higher) {
        ok = fn->second >= bn->second * (1.0 - m.tol_pct / 100.0);
      } else {
        ok = fn->second <= bn->second * (1.0 + m.tol_pct / 100.0);
      }
      if (!ok) {
        std::fprintf(stderr,
                     "REGRESS %s=%s: %s baseline %s fresh %s (tol %.1f%% %s)\n",
                     key.c_str(), bkey->second.c_str(), m.name.c_str(),
                     bv->second.c_str(), fv->second.c_str(), m.tol_pct,
                     m.dir == Direction::Exact
                         ? "exact"
                         : (m.dir == Direction::Higher ? "higher" : "lower"));
        ++regressions;
      } else {
        std::printf("ok      %s=%s: %s %s -> %s\n", key.c_str(),
                    bkey->second.c_str(), m.name.c_str(), bv->second.c_str(),
                    fv->second.c_str());
      }
    }
  }
  if (checked == 0) {
    std::fprintf(stderr,
                 "bench_regress: no metrics matched (wrong --key/--metric?)\n");
    return 2;
  }
  if (regressions > 0) {
    std::fprintf(stderr, "bench_regress: %d regression(s) vs %s\n",
                 regressions, baseline_path.c_str());
    return 1;
  }
  std::printf("bench_regress: %d checks ok vs %s\n", checked,
              baseline_path.c_str());
  return 0;
}
