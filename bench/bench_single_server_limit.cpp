// Sec 6.4 "Single TSM Server":
//   "Having a single TSM server creates a single point of a failure ...
//    It also creates a limitation when we need to scale beyond what a
//    single TSM server can provide.  In our current archive, scalability
//    is not an issue, but could be in future archives that have more than
//    hundreds of millions of files.  By leveraging the remote file system
//    feature of GPFS, it might be possible to tether multiple archive
//    file systems together thus allowing for multiple TSM servers."
//
// Two measurements against 1..8 hash-routed servers:
//   (a) metadata transaction throughput under a bookkeeping storm (the
//       per-object work a hundreds-of-millions-file archive generates);
//   (b) a synchronous-delete sweep, which costs two server round-trips
//       per file and is pure metadata.
#include <cstdio>

#include "archive/system.hpp"
#include "bench/common.hpp"
#include "workload/tree.hpp"

namespace {

using namespace cpa;

double txn_storm_seconds(unsigned servers, unsigned txns) {
  archive::SystemConfig cfg = archive::SystemConfig::roadrunner();
  cfg.hsm.server_count = servers;
  cfg.hsm.server.metadata_txn_cost = sim::msecs(20);  // loaded TSM server
  archive::CotsParallelArchive sys(cfg);
  unsigned remaining = txns;
  for (unsigned i = 0; i < txns; ++i) {
    sys.hsm().server_for("/proj/f" + std::to_string(i)).metadata_txn([&] {
      --remaining;
    });
  }
  sys.sim().run();
  return sim::to_seconds(sys.sim().now());
}

double sync_delete_seconds(unsigned servers, unsigned files) {
  archive::SystemConfig cfg = archive::SystemConfig::roadrunner();
  cfg.hsm.server_count = servers;
  cfg.hsm.server.metadata_txn_cost = sim::msecs(20);
  archive::CotsParallelArchive sys(cfg);
  workload::TreeSpec tree;
  tree.root = "/proj/data";
  for (unsigned i = 0; i < files; ++i) tree.file_sizes.push_back(kMB);
  workload::build_tree(sys.archive_fs(), tree);
  std::vector<std::string> paths;
  for (unsigned i = 0; i < files; ++i) {
    paths.push_back(workload::tree_file_path(tree, i));
  }
  sys.hsm().parallel_migrate(paths, {0, 1, 2, 3, 4, 5, 6, 7, 8, 9},
                             hsm::DistributionStrategy::SizeBalanced, "g",
                             nullptr);
  sys.sim().run();

  const sim::Tick t0 = sys.sim().now();
  for (const auto& p : paths) {
    sys.hsm().synchronous_delete(p, nullptr);
  }
  sys.sim().run();
  return sim::to_seconds(sys.sim().now() - t0);
}

}  // namespace

int main() {
  bench::header("Sec 6.4", "Single archive server as the metadata bottleneck");

  constexpr unsigned kTxns = 20'000;
  constexpr unsigned kFiles = 2'000;
  std::printf("\n  servers | %u-txn storm (s) | txn/s  | sync-delete %u files (s)\n",
              kTxns, kFiles);
  std::printf("  --------+-------------------+--------+-------------------------\n");
  double storm1 = 0, storm8 = 0, del1 = 0, del8 = 0;
  for (const unsigned servers : {1u, 2u, 4u, 8u}) {
    const double storm = txn_storm_seconds(servers, kTxns);
    const double del = sync_delete_seconds(servers, kFiles);
    std::printf("  %7u | %17.0f | %6.0f | %23.0f\n", servers, storm,
                static_cast<double>(kTxns) / storm, del);
    if (servers == 1) {
      storm1 = storm;
      del1 = del;
    }
    if (servers == 8) {
      storm8 = storm;
      del8 = del;
    }
  }

  bench::section("paper vs measured");
  bench::compare("single-server txn throughput", "the scale limitation",
                 bench::fmt("%.0f txn/s", static_cast<double>(kTxns) / storm1));
  bench::compare("8 tethered servers (txn storm)", "scales with servers",
                 bench::fmt("%.1fx faster", storm1 / storm8));
  bench::compare("8 tethered servers (delete sweep)", "scales with servers",
                 bench::fmt("%.1fx faster", del1 / del8));
  return 0;
}
