// Sec 4.1.2 item 2, "Tape optimization":
//   "we try to arrange tape files based on their tape sequential numbers
//    and unique Tape-IDs ... so we can drastically reduce tape drive
//    thrashing overhead and enforce sequential tape read when we are
//    restoring many midsize files."
//
// Recall N midsize files requested in scrambled order, with and without
// PFTool's tape-order sort, and count seeks/seek time.
#include <cstdio>

#include "archive/system.hpp"
#include "bench/common.hpp"
#include "simcore/rng.hpp"

namespace {

struct Outcome {
  double rate_mbs = 0;
  std::uint64_t seeks = 0;
  double seek_seconds = 0;
  double seconds = 0;
};

Outcome recall(bool ordered, unsigned files, std::uint64_t file_size) {
  using namespace cpa;
  archive::CotsParallelArchive sys(archive::SystemConfig::roadrunner());
  std::vector<std::string> paths;
  for (unsigned i = 0; i < files; ++i) {
    const std::string p = "/arch/f" + std::to_string(i);
    sys.make_file(sys.archive_fs(), p, file_size, i);
    paths.push_back(p);
  }
  sys.hsm().migrate_batch(0, paths, "g", nullptr);
  sys.sim().run();

  // The user's recall request arrives in arbitrary order.
  sim::Rng rng(7);
  rng.shuffle(paths);

  const auto before = sys.library().aggregate_stats();
  hsm::RecallOptions opts;
  opts.tape_ordered = ordered;
  opts.assignment = hsm::RecallOptions::Assignment::TapeAffinity;
  Outcome out;
  sys.hsm().recall(paths, opts, [&](const hsm::RecallReport& r) {
    out.rate_mbs = r.mean_rate_bps() / static_cast<double>(kMB);
    out.seconds = sim::to_seconds(r.finished - r.started);
  });
  sys.sim().run();
  const auto after = sys.library().aggregate_stats();
  out.seeks = after.seeks - before.seeks;
  out.seek_seconds = sim::to_seconds(after.seek_time - before.seek_time);
  return out;
}

}  // namespace

int main() {
  using namespace cpa;
  bench::header("Sec 4.1.2(2)", "Tape-ordered recall vs request-order recall");

  std::printf("\n  files | ordering      | MB/s   | seeks | seek time (s) | total (s)\n");
  std::printf("  ------+---------------+--------+-------+---------------+----------\n");
  Outcome last_ord{}, last_unord{};
  for (const unsigned files : {32u, 128u, 512u}) {
    const Outcome ord = recall(true, files, 100 * kMB);
    const Outcome unord = recall(false, files, 100 * kMB);
    std::printf("  %5u | tape-ordered  | %6.1f | %5llu | %13.0f | %9.0f\n", files,
                ord.rate_mbs, static_cast<unsigned long long>(ord.seeks),
                ord.seek_seconds, ord.seconds);
    std::printf("  %5u | request-order | %6.1f | %5llu | %13.0f | %9.0f\n", files,
                unord.rate_mbs, static_cast<unsigned long long>(unord.seeks),
                unord.seek_seconds, unord.seconds);
    last_ord = ord;
    last_unord = unord;
  }

  bench::section("paper vs measured (512 midsize files)");
  bench::compare("ordered recall seeks", "~0 (front-to-back read)",
                 std::to_string(last_ord.seeks));
  bench::compare("unordered recall seeks", "~1 per file",
                 std::to_string(last_unord.seeks));
  bench::compare("thrashing penalty", "\"dominant factor\"",
                 bench::fmt("%.1fx slower", last_ord.rate_mbs / last_unord.rate_mbs));
  return 0;
}
