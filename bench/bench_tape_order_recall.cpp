// Sec 4.1.2 item 2, "Tape optimization":
//   "we try to arrange tape files based on their tape sequential numbers
//    and unique Tape-IDs ... so we can drastically reduce tape drive
//    thrashing overhead and enforce sequential tape read when we are
//    restoring many midsize files."
//
// Recall N midsize files requested in scrambled order, with and without
// PFTool's tape-order sort, and count seeks/seek time.
#include <cstdio>

#include "archive/system.hpp"
#include "bench/common.hpp"
#include "simcore/rng.hpp"

namespace {

struct Outcome {
  double rate_mbs = 0;
  std::uint64_t seeks = 0;
  double seek_seconds = 0;
  double seconds = 0;
  // Whole-run totals from the two independent accounting paths: the tape
  // library's DriveStats and the observability layer's tape.* counters.
  std::uint64_t stats_total_seeks = 0;
  std::uint64_t metric_seeks = 0;
  std::uint64_t metric_mounts = 0;
  std::uint64_t metric_read_txns = 0;
  std::uint64_t trace_events = 0;
  // False when the corresponding output path was requested but unwritable.
  bool trace_written = true;
  bool metrics_written = true;
};

Outcome recall(bool ordered, unsigned files, std::uint64_t file_size,
               const cpa::bench::ObsCli& obs_cli, bool write_outputs) {
  using namespace cpa;
  archive::SystemConfig cfg = archive::SystemConfig::roadrunner();
  cfg.obs.tracing = obs_cli.tracing();
  archive::CotsParallelArchive sys(cfg);
  std::vector<std::string> paths;
  for (unsigned i = 0; i < files; ++i) {
    const std::string p = "/arch/f" + std::to_string(i);
    sys.make_file(sys.archive_fs(), p, file_size, i);
    paths.push_back(p);
  }
  sys.hsm().migrate_batch(0, paths, "g", nullptr);
  sys.sim().run();

  // The user's recall request arrives in arbitrary order.
  sim::Rng rng(7);
  rng.shuffle(paths);

  const auto before = sys.library().aggregate_stats();
  hsm::RecallOptions opts;
  opts.tape_ordered = ordered;
  opts.assignment = hsm::RecallOptions::Assignment::TapeAffinity;
  Outcome out;
  sys.hsm().recall(paths, opts, [&](const hsm::RecallReport& r) {
    out.rate_mbs = r.mean_rate_bps() / static_cast<double>(kMB);
    out.seconds = sim::to_seconds(r.finished - r.started);
  });
  sys.sim().run();
  const auto after = sys.library().aggregate_stats();
  out.seeks = after.seeks - before.seeks;
  out.seek_seconds = sim::to_seconds(after.seek_time - before.seek_time);

  sys.snapshot_net_metrics();
  const obs::MetricsRegistry& m = sys.observer().metrics();
  out.stats_total_seeks = after.seeks;
  out.metric_seeks = m.counter_value("tape.seeks");
  out.metric_mounts = m.counter_value("tape.mounts");
  out.metric_read_txns = m.counter_value("tape.read_txns");
  out.trace_events = sys.observer().trace().event_count();
  if (write_outputs) {
    if (!obs_cli.trace_path.empty()) {
      out.trace_written = sys.observer().trace().write_chrome_json(obs_cli.trace_path);
    }
    if (!obs_cli.metrics_path.empty()) {
      out.metrics_written = sys.observer().metrics().write_summary(obs_cli.metrics_path);
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cpa;
  bench::header("Sec 4.1.2(2)", "Tape-ordered recall vs request-order recall");
  const bench::ObsCli obs_cli = bench::parse_obs_cli(argc, argv);

  std::printf("\n  files | ordering      | MB/s   | seeks | seek time (s) | total (s)\n");
  std::printf("  ------+---------------+--------+-------+---------------+----------\n");
  Outcome last_ord{}, last_unord{};
  for (const unsigned files : {32u, 128u, 512u}) {
    // The final (512-file, request-order) run carries the trace/metrics
    // outputs: it is the thrashing-heavy case worth looking at in Perfetto.
    const Outcome ord = recall(true, files, 100 * kMB, obs_cli, false);
    const Outcome unord = recall(false, files, 100 * kMB, obs_cli, files == 512u);
    std::printf("  %5u | tape-ordered  | %6.1f | %5llu | %13.0f | %9.0f\n", files,
                ord.rate_mbs, static_cast<unsigned long long>(ord.seeks),
                ord.seek_seconds, ord.seconds);
    std::printf("  %5u | request-order | %6.1f | %5llu | %13.0f | %9.0f\n", files,
                unord.rate_mbs, static_cast<unsigned long long>(unord.seeks),
                unord.seek_seconds, unord.seconds);
    last_ord = ord;
    last_unord = unord;
  }

  bench::section("paper vs measured (512 midsize files)");
  bench::compare("ordered recall seeks", "~0 (front-to-back read)",
                 std::to_string(last_ord.seeks));
  bench::compare("unordered recall seeks", "~1 per file",
                 std::to_string(last_unord.seeks));
  bench::compare("thrashing penalty", "\"dominant factor\"",
                 bench::fmt("%.1fx slower", last_ord.rate_mbs / last_unord.rate_mbs));

  // tape.* counters accrue in lockstep with the library's DriveStats, so
  // the two whole-run totals must agree exactly.
  bench::section("observability cross-check (512-file request-order run)");
  bench::compare("tape.seeks vs DriveStats.seeks",
                 std::to_string(last_unord.stats_total_seeks),
                 std::to_string(last_unord.metric_seeks));
  std::printf("  tape.mounts=%llu  tape.read_txns=%llu\n",
              static_cast<unsigned long long>(last_unord.metric_mounts),
              static_cast<unsigned long long>(last_unord.metric_read_txns));
  if (!obs_cli.trace_path.empty()) {
    if (last_unord.trace_written) {
      std::printf("  trace: %llu events -> %s (chrome://tracing / Perfetto)\n",
                  static_cast<unsigned long long>(last_unord.trace_events),
                  obs_cli.trace_path.c_str());
    } else {
      std::fprintf(stderr, "  error: could not write trace to %s\n",
                   obs_cli.trace_path.c_str());
      return 1;
    }
  }
  if (!obs_cli.metrics_path.empty()) {
    if (last_unord.metrics_written) {
      std::printf("  metrics summary -> %s\n", obs_cli.metrics_path.c_str());
    } else {
      std::fprintf(stderr, "  error: could not write metrics to %s\n",
                   obs_cli.metrics_path.c_str());
      return 1;
    }
  }
  return 0;
}
