file(REMOVE_RECURSE
  "CMakeFiles/tape_test.dir/tape/cartridge_test.cpp.o"
  "CMakeFiles/tape_test.dir/tape/cartridge_test.cpp.o.d"
  "CMakeFiles/tape_test.dir/tape/drive_test.cpp.o"
  "CMakeFiles/tape_test.dir/tape/drive_test.cpp.o.d"
  "CMakeFiles/tape_test.dir/tape/library_test.cpp.o"
  "CMakeFiles/tape_test.dir/tape/library_test.cpp.o.d"
  "CMakeFiles/tape_test.dir/tape/timings_test.cpp.o"
  "CMakeFiles/tape_test.dir/tape/timings_test.cpp.o.d"
  "tape_test"
  "tape_test.pdb"
  "tape_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tape_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
