
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/tape/cartridge_test.cpp" "tests/CMakeFiles/tape_test.dir/tape/cartridge_test.cpp.o" "gcc" "tests/CMakeFiles/tape_test.dir/tape/cartridge_test.cpp.o.d"
  "/root/repo/tests/tape/drive_test.cpp" "tests/CMakeFiles/tape_test.dir/tape/drive_test.cpp.o" "gcc" "tests/CMakeFiles/tape_test.dir/tape/drive_test.cpp.o.d"
  "/root/repo/tests/tape/library_test.cpp" "tests/CMakeFiles/tape_test.dir/tape/library_test.cpp.o" "gcc" "tests/CMakeFiles/tape_test.dir/tape/library_test.cpp.o.d"
  "/root/repo/tests/tape/timings_test.cpp" "tests/CMakeFiles/tape_test.dir/tape/timings_test.cpp.o" "gcc" "tests/CMakeFiles/tape_test.dir/tape/timings_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tape/CMakeFiles/cpa_tape.dir/DependInfo.cmake"
  "/root/repo/build/src/simcore/CMakeFiles/cpa_simcore.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
