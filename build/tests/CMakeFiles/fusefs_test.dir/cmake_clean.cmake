file(REMOVE_RECURSE
  "CMakeFiles/fusefs_test.dir/fusefs/archive_fuse_test.cpp.o"
  "CMakeFiles/fusefs_test.dir/fusefs/archive_fuse_test.cpp.o.d"
  "fusefs_test"
  "fusefs_test.pdb"
  "fusefs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fusefs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
