file(REMOVE_RECURSE
  "CMakeFiles/metadb_test.dir/metadb/table_test.cpp.o"
  "CMakeFiles/metadb_test.dir/metadb/table_test.cpp.o.d"
  "CMakeFiles/metadb_test.dir/metadb/tsm_export_test.cpp.o"
  "CMakeFiles/metadb_test.dir/metadb/tsm_export_test.cpp.o.d"
  "metadb_test"
  "metadb_test.pdb"
  "metadb_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metadb_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
