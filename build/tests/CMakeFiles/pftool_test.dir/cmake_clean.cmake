file(REMOVE_RECURSE
  "CMakeFiles/pftool_test.dir/pftool/core_test.cpp.o"
  "CMakeFiles/pftool_test.dir/pftool/core_test.cpp.o.d"
  "CMakeFiles/pftool_test.dir/pftool/rt_engine_test.cpp.o"
  "CMakeFiles/pftool_test.dir/pftool/rt_engine_test.cpp.o.d"
  "CMakeFiles/pftool_test.dir/pftool/sim_job_test.cpp.o"
  "CMakeFiles/pftool_test.dir/pftool/sim_job_test.cpp.o.d"
  "pftool_test"
  "pftool_test.pdb"
  "pftool_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pftool_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
