# Empty compiler generated dependencies file for pftool_test.
# This may be replaced when dependencies are built.
