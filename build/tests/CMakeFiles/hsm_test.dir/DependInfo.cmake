
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/hsm/balance_test.cpp" "tests/CMakeFiles/hsm_test.dir/hsm/balance_test.cpp.o" "gcc" "tests/CMakeFiles/hsm_test.dir/hsm/balance_test.cpp.o.d"
  "/root/repo/tests/hsm/copy_pool_test.cpp" "tests/CMakeFiles/hsm_test.dir/hsm/copy_pool_test.cpp.o" "gcc" "tests/CMakeFiles/hsm_test.dir/hsm/copy_pool_test.cpp.o.d"
  "/root/repo/tests/hsm/hsm_test.cpp" "tests/CMakeFiles/hsm_test.dir/hsm/hsm_test.cpp.o" "gcc" "tests/CMakeFiles/hsm_test.dir/hsm/hsm_test.cpp.o.d"
  "/root/repo/tests/hsm/reclaim_test.cpp" "tests/CMakeFiles/hsm_test.dir/hsm/reclaim_test.cpp.o" "gcc" "tests/CMakeFiles/hsm_test.dir/hsm/reclaim_test.cpp.o.d"
  "/root/repo/tests/hsm/server_test.cpp" "tests/CMakeFiles/hsm_test.dir/hsm/server_test.cpp.o" "gcc" "tests/CMakeFiles/hsm_test.dir/hsm/server_test.cpp.o.d"
  "/root/repo/tests/hsm/space_management_test.cpp" "tests/CMakeFiles/hsm_test.dir/hsm/space_management_test.cpp.o" "gcc" "tests/CMakeFiles/hsm_test.dir/hsm/space_management_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hsm/CMakeFiles/cpa_hsm.dir/DependInfo.cmake"
  "/root/repo/build/src/pfs/CMakeFiles/cpa_pfs.dir/DependInfo.cmake"
  "/root/repo/build/src/tape/CMakeFiles/cpa_tape.dir/DependInfo.cmake"
  "/root/repo/build/src/simcore/CMakeFiles/cpa_simcore.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
