# Empty dependencies file for hsm_test.
# This may be replaced when dependencies are built.
