# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/simcore_test[1]_include.cmake")
include("/root/repo/build/tests/metadb_test[1]_include.cmake")
include("/root/repo/build/tests/pfs_test[1]_include.cmake")
include("/root/repo/build/tests/tape_test[1]_include.cmake")
include("/root/repo/build/tests/hsm_test[1]_include.cmake")
include("/root/repo/build/tests/fusefs_test[1]_include.cmake")
include("/root/repo/build/tests/cluster_test[1]_include.cmake")
include("/root/repo/build/tests/pftool_test[1]_include.cmake")
include("/root/repo/build/tests/archive_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
