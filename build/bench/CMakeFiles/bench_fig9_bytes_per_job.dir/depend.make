# Empty dependencies file for bench_fig9_bytes_per_job.
# This may be replaced when dependencies are built.
