# Empty compiler generated dependencies file for bench_sync_delete.
# This may be replaced when dependencies are built.
