file(REMOVE_RECURSE
  "CMakeFiles/bench_sync_delete.dir/bench_sync_delete.cpp.o"
  "CMakeFiles/bench_sync_delete.dir/bench_sync_delete.cpp.o.d"
  "bench_sync_delete"
  "bench_sync_delete.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sync_delete.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
