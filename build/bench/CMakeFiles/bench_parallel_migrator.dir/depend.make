# Empty dependencies file for bench_parallel_migrator.
# This may be replaced when dependencies are built.
