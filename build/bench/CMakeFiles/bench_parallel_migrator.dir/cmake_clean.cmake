file(REMOVE_RECURSE
  "CMakeFiles/bench_parallel_migrator.dir/bench_parallel_migrator.cpp.o"
  "CMakeFiles/bench_parallel_migrator.dir/bench_parallel_migrator.cpp.o.d"
  "bench_parallel_migrator"
  "bench_parallel_migrator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_parallel_migrator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
