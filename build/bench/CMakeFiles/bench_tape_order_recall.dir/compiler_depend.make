# Empty compiler generated dependencies file for bench_tape_order_recall.
# This may be replaced when dependencies are built.
