file(REMOVE_RECURSE
  "CMakeFiles/bench_tape_order_recall.dir/bench_tape_order_recall.cpp.o"
  "CMakeFiles/bench_tape_order_recall.dir/bench_tape_order_recall.cpp.o.d"
  "bench_tape_order_recall"
  "bench_tape_order_recall.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tape_order_recall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
