# Empty dependencies file for bench_parallel_vs_serial_archive.
# This may be replaced when dependencies are built.
