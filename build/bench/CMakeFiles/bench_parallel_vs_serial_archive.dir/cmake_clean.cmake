file(REMOVE_RECURSE
  "CMakeFiles/bench_parallel_vs_serial_archive.dir/bench_parallel_vs_serial_archive.cpp.o"
  "CMakeFiles/bench_parallel_vs_serial_archive.dir/bench_parallel_vs_serial_archive.cpp.o.d"
  "bench_parallel_vs_serial_archive"
  "bench_parallel_vs_serial_archive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_parallel_vs_serial_archive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
