file(REMOVE_RECURSE
  "CMakeFiles/bench_inode_scan.dir/bench_inode_scan.cpp.o"
  "CMakeFiles/bench_inode_scan.dir/bench_inode_scan.cpp.o.d"
  "bench_inode_scan"
  "bench_inode_scan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_inode_scan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
