# Empty compiler generated dependencies file for bench_inode_scan.
# This may be replaced when dependencies are built.
