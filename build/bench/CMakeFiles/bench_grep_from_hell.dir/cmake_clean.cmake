file(REMOVE_RECURSE
  "CMakeFiles/bench_grep_from_hell.dir/bench_grep_from_hell.cpp.o"
  "CMakeFiles/bench_grep_from_hell.dir/bench_grep_from_hell.cpp.o.d"
  "bench_grep_from_hell"
  "bench_grep_from_hell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_grep_from_hell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
