# Empty compiler generated dependencies file for bench_grep_from_hell.
# This may be replaced when dependencies are built.
