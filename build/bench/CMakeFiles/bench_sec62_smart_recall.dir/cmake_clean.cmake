file(REMOVE_RECURSE
  "CMakeFiles/bench_sec62_smart_recall.dir/bench_sec62_smart_recall.cpp.o"
  "CMakeFiles/bench_sec62_smart_recall.dir/bench_sec62_smart_recall.cpp.o.d"
  "bench_sec62_smart_recall"
  "bench_sec62_smart_recall.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec62_smart_recall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
