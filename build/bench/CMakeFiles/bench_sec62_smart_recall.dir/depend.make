# Empty dependencies file for bench_sec62_smart_recall.
# This may be replaced when dependencies are built.
