# Empty dependencies file for bench_fig8_files_per_job.
# This may be replaced when dependencies are built.
