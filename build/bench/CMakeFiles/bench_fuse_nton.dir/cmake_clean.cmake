file(REMOVE_RECURSE
  "CMakeFiles/bench_fuse_nton.dir/bench_fuse_nton.cpp.o"
  "CMakeFiles/bench_fuse_nton.dir/bench_fuse_nton.cpp.o.d"
  "bench_fuse_nton"
  "bench_fuse_nton.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fuse_nton.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
