# Empty dependencies file for bench_fuse_nton.
# This may be replaced when dependencies are built.
