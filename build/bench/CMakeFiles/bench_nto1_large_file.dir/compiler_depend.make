# Empty compiler generated dependencies file for bench_nto1_large_file.
# This may be replaced when dependencies are built.
