file(REMOVE_RECURSE
  "CMakeFiles/bench_nto1_large_file.dir/bench_nto1_large_file.cpp.o"
  "CMakeFiles/bench_nto1_large_file.dir/bench_nto1_large_file.cpp.o.d"
  "bench_nto1_large_file"
  "bench_nto1_large_file.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_nto1_large_file.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
