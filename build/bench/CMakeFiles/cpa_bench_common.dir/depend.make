# Empty dependencies file for cpa_bench_common.
# This may be replaced when dependencies are built.
