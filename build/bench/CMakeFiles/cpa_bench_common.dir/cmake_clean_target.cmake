file(REMOVE_RECURSE
  "libcpa_bench_common.a"
)
