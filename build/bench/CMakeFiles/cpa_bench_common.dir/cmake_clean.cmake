file(REMOVE_RECURSE
  "CMakeFiles/cpa_bench_common.dir/campaign_runner.cpp.o"
  "CMakeFiles/cpa_bench_common.dir/campaign_runner.cpp.o.d"
  "libcpa_bench_common.a"
  "libcpa_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpa_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
