# Empty compiler generated dependencies file for bench_fig11_filesize_per_job.
# This may be replaced when dependencies are built.
