# Empty dependencies file for bench_single_server_limit.
# This may be replaced when dependencies are built.
