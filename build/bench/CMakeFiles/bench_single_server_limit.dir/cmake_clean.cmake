file(REMOVE_RECURSE
  "CMakeFiles/bench_single_server_limit.dir/bench_single_server_limit.cpp.o"
  "CMakeFiles/bench_single_server_limit.dir/bench_single_server_limit.cpp.o.d"
  "bench_single_server_limit"
  "bench_single_server_limit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_single_server_limit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
