file(REMOVE_RECURSE
  "CMakeFiles/bench_restart_transfer.dir/bench_restart_transfer.cpp.o"
  "CMakeFiles/bench_restart_transfer.dir/bench_restart_transfer.cpp.o.d"
  "bench_restart_transfer"
  "bench_restart_transfer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_restart_transfer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
