# Empty compiler generated dependencies file for bench_restart_transfer.
# This may be replaced when dependencies are built.
