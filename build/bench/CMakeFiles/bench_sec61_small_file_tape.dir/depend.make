# Empty dependencies file for bench_sec61_small_file_tape.
# This may be replaced when dependencies are built.
