file(REMOVE_RECURSE
  "CMakeFiles/bench_sec61_small_file_tape.dir/bench_sec61_small_file_tape.cpp.o"
  "CMakeFiles/bench_sec61_small_file_tape.dir/bench_sec61_small_file_tape.cpp.o.d"
  "bench_sec61_small_file_tape"
  "bench_sec61_small_file_tape.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec61_small_file_tape.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
