
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_sec61_small_file_tape.cpp" "bench/CMakeFiles/bench_sec61_small_file_tape.dir/bench_sec61_small_file_tape.cpp.o" "gcc" "bench/CMakeFiles/bench_sec61_small_file_tape.dir/bench_sec61_small_file_tape.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/cpa_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/archive/CMakeFiles/cpa_archive.dir/DependInfo.cmake"
  "/root/repo/build/src/pftool/CMakeFiles/cpa_pftool.dir/DependInfo.cmake"
  "/root/repo/build/src/fusefs/CMakeFiles/cpa_fusefs.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/cpa_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/hsm/CMakeFiles/cpa_hsm.dir/DependInfo.cmake"
  "/root/repo/build/src/tape/CMakeFiles/cpa_tape.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/cpa_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/pfs/CMakeFiles/cpa_pfs.dir/DependInfo.cmake"
  "/root/repo/build/src/simcore/CMakeFiles/cpa_simcore.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
