# Empty dependencies file for bench_drive_scaling.
# This may be replaced when dependencies are built.
