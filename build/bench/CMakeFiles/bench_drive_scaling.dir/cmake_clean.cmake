file(REMOVE_RECURSE
  "CMakeFiles/bench_drive_scaling.dir/bench_drive_scaling.cpp.o"
  "CMakeFiles/bench_drive_scaling.dir/bench_drive_scaling.cpp.o.d"
  "bench_drive_scaling"
  "bench_drive_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_drive_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
