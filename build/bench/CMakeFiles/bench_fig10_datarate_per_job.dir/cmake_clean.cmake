file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_datarate_per_job.dir/bench_fig10_datarate_per_job.cpp.o"
  "CMakeFiles/bench_fig10_datarate_per_job.dir/bench_fig10_datarate_per_job.cpp.o.d"
  "bench_fig10_datarate_per_job"
  "bench_fig10_datarate_per_job.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_datarate_per_job.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
