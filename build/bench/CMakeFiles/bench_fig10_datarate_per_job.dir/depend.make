# Empty dependencies file for bench_fig10_datarate_per_job.
# This may be replaced when dependencies are built.
