file(REMOVE_RECURSE
  "libcpa_cluster.a"
)
