file(REMOVE_RECURSE
  "CMakeFiles/cpa_cluster.dir/cluster.cpp.o"
  "CMakeFiles/cpa_cluster.dir/cluster.cpp.o.d"
  "libcpa_cluster.a"
  "libcpa_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpa_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
