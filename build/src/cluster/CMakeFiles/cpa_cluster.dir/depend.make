# Empty dependencies file for cpa_cluster.
# This may be replaced when dependencies are built.
