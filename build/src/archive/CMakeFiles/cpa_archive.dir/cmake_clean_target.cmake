file(REMOVE_RECURSE
  "libcpa_archive.a"
)
