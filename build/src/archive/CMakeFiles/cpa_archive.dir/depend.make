# Empty dependencies file for cpa_archive.
# This may be replaced when dependencies are built.
