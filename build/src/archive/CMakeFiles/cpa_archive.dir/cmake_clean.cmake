file(REMOVE_RECURSE
  "CMakeFiles/cpa_archive.dir/search.cpp.o"
  "CMakeFiles/cpa_archive.dir/search.cpp.o.d"
  "CMakeFiles/cpa_archive.dir/system.cpp.o"
  "CMakeFiles/cpa_archive.dir/system.cpp.o.d"
  "CMakeFiles/cpa_archive.dir/trashcan.cpp.o"
  "CMakeFiles/cpa_archive.dir/trashcan.cpp.o.d"
  "libcpa_archive.a"
  "libcpa_archive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpa_archive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
