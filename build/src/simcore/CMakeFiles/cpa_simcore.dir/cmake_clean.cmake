file(REMOVE_RECURSE
  "CMakeFiles/cpa_simcore.dir/flow_network.cpp.o"
  "CMakeFiles/cpa_simcore.dir/flow_network.cpp.o.d"
  "CMakeFiles/cpa_simcore.dir/resource.cpp.o"
  "CMakeFiles/cpa_simcore.dir/resource.cpp.o.d"
  "CMakeFiles/cpa_simcore.dir/rng.cpp.o"
  "CMakeFiles/cpa_simcore.dir/rng.cpp.o.d"
  "CMakeFiles/cpa_simcore.dir/simulation.cpp.o"
  "CMakeFiles/cpa_simcore.dir/simulation.cpp.o.d"
  "CMakeFiles/cpa_simcore.dir/stats.cpp.o"
  "CMakeFiles/cpa_simcore.dir/stats.cpp.o.d"
  "CMakeFiles/cpa_simcore.dir/time.cpp.o"
  "CMakeFiles/cpa_simcore.dir/time.cpp.o.d"
  "CMakeFiles/cpa_simcore.dir/units.cpp.o"
  "CMakeFiles/cpa_simcore.dir/units.cpp.o.d"
  "libcpa_simcore.a"
  "libcpa_simcore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpa_simcore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
