file(REMOVE_RECURSE
  "libcpa_simcore.a"
)
