# Empty compiler generated dependencies file for cpa_simcore.
# This may be replaced when dependencies are built.
