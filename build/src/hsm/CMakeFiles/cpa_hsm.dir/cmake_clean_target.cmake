file(REMOVE_RECURSE
  "libcpa_hsm.a"
)
