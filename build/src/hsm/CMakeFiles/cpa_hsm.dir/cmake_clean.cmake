file(REMOVE_RECURSE
  "CMakeFiles/cpa_hsm.dir/hsm.cpp.o"
  "CMakeFiles/cpa_hsm.dir/hsm.cpp.o.d"
  "CMakeFiles/cpa_hsm.dir/server.cpp.o"
  "CMakeFiles/cpa_hsm.dir/server.cpp.o.d"
  "libcpa_hsm.a"
  "libcpa_hsm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpa_hsm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
