# Empty compiler generated dependencies file for cpa_hsm.
# This may be replaced when dependencies are built.
