file(REMOVE_RECURSE
  "CMakeFiles/cpa_pftool.dir/core/report.cpp.o"
  "CMakeFiles/cpa_pftool.dir/core/report.cpp.o.d"
  "CMakeFiles/cpa_pftool.dir/core/restart_journal.cpp.o"
  "CMakeFiles/cpa_pftool.dir/core/restart_journal.cpp.o.d"
  "CMakeFiles/cpa_pftool.dir/rt/engine.cpp.o"
  "CMakeFiles/cpa_pftool.dir/rt/engine.cpp.o.d"
  "CMakeFiles/cpa_pftool.dir/rt/file_ops.cpp.o"
  "CMakeFiles/cpa_pftool.dir/rt/file_ops.cpp.o.d"
  "CMakeFiles/cpa_pftool.dir/sim/job.cpp.o"
  "CMakeFiles/cpa_pftool.dir/sim/job.cpp.o.d"
  "libcpa_pftool.a"
  "libcpa_pftool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpa_pftool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
