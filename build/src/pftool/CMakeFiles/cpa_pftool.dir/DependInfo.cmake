
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pftool/core/report.cpp" "src/pftool/CMakeFiles/cpa_pftool.dir/core/report.cpp.o" "gcc" "src/pftool/CMakeFiles/cpa_pftool.dir/core/report.cpp.o.d"
  "/root/repo/src/pftool/core/restart_journal.cpp" "src/pftool/CMakeFiles/cpa_pftool.dir/core/restart_journal.cpp.o" "gcc" "src/pftool/CMakeFiles/cpa_pftool.dir/core/restart_journal.cpp.o.d"
  "/root/repo/src/pftool/rt/engine.cpp" "src/pftool/CMakeFiles/cpa_pftool.dir/rt/engine.cpp.o" "gcc" "src/pftool/CMakeFiles/cpa_pftool.dir/rt/engine.cpp.o.d"
  "/root/repo/src/pftool/rt/file_ops.cpp" "src/pftool/CMakeFiles/cpa_pftool.dir/rt/file_ops.cpp.o" "gcc" "src/pftool/CMakeFiles/cpa_pftool.dir/rt/file_ops.cpp.o.d"
  "/root/repo/src/pftool/sim/job.cpp" "src/pftool/CMakeFiles/cpa_pftool.dir/sim/job.cpp.o" "gcc" "src/pftool/CMakeFiles/cpa_pftool.dir/sim/job.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/simcore/CMakeFiles/cpa_simcore.dir/DependInfo.cmake"
  "/root/repo/build/src/pfs/CMakeFiles/cpa_pfs.dir/DependInfo.cmake"
  "/root/repo/build/src/fusefs/CMakeFiles/cpa_fusefs.dir/DependInfo.cmake"
  "/root/repo/build/src/hsm/CMakeFiles/cpa_hsm.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/cpa_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/tape/CMakeFiles/cpa_tape.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
