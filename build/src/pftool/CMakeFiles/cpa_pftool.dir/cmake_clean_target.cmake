file(REMOVE_RECURSE
  "libcpa_pftool.a"
)
