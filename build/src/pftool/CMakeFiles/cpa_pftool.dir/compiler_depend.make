# Empty compiler generated dependencies file for cpa_pftool.
# This may be replaced when dependencies are built.
