# Empty dependencies file for cpa_pfs.
# This may be replaced when dependencies are built.
