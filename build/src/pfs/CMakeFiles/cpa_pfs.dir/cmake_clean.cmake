file(REMOVE_RECURSE
  "CMakeFiles/cpa_pfs.dir/common.cpp.o"
  "CMakeFiles/cpa_pfs.dir/common.cpp.o.d"
  "CMakeFiles/cpa_pfs.dir/filesystem.cpp.o"
  "CMakeFiles/cpa_pfs.dir/filesystem.cpp.o.d"
  "CMakeFiles/cpa_pfs.dir/glob.cpp.o"
  "CMakeFiles/cpa_pfs.dir/glob.cpp.o.d"
  "CMakeFiles/cpa_pfs.dir/policy.cpp.o"
  "CMakeFiles/cpa_pfs.dir/policy.cpp.o.d"
  "libcpa_pfs.a"
  "libcpa_pfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpa_pfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
