
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pfs/common.cpp" "src/pfs/CMakeFiles/cpa_pfs.dir/common.cpp.o" "gcc" "src/pfs/CMakeFiles/cpa_pfs.dir/common.cpp.o.d"
  "/root/repo/src/pfs/filesystem.cpp" "src/pfs/CMakeFiles/cpa_pfs.dir/filesystem.cpp.o" "gcc" "src/pfs/CMakeFiles/cpa_pfs.dir/filesystem.cpp.o.d"
  "/root/repo/src/pfs/glob.cpp" "src/pfs/CMakeFiles/cpa_pfs.dir/glob.cpp.o" "gcc" "src/pfs/CMakeFiles/cpa_pfs.dir/glob.cpp.o.d"
  "/root/repo/src/pfs/policy.cpp" "src/pfs/CMakeFiles/cpa_pfs.dir/policy.cpp.o" "gcc" "src/pfs/CMakeFiles/cpa_pfs.dir/policy.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/simcore/CMakeFiles/cpa_simcore.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
