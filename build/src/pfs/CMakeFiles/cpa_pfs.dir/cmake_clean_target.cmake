file(REMOVE_RECURSE
  "libcpa_pfs.a"
)
