file(REMOVE_RECURSE
  "CMakeFiles/cpa_tape.dir/cartridge.cpp.o"
  "CMakeFiles/cpa_tape.dir/cartridge.cpp.o.d"
  "CMakeFiles/cpa_tape.dir/drive.cpp.o"
  "CMakeFiles/cpa_tape.dir/drive.cpp.o.d"
  "CMakeFiles/cpa_tape.dir/library.cpp.o"
  "CMakeFiles/cpa_tape.dir/library.cpp.o.d"
  "libcpa_tape.a"
  "libcpa_tape.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpa_tape.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
