# Empty compiler generated dependencies file for cpa_tape.
# This may be replaced when dependencies are built.
