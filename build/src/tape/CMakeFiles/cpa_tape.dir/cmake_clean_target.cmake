file(REMOVE_RECURSE
  "libcpa_tape.a"
)
