file(REMOVE_RECURSE
  "CMakeFiles/cpa_workload.dir/campaign.cpp.o"
  "CMakeFiles/cpa_workload.dir/campaign.cpp.o.d"
  "CMakeFiles/cpa_workload.dir/posix_tree.cpp.o"
  "CMakeFiles/cpa_workload.dir/posix_tree.cpp.o.d"
  "CMakeFiles/cpa_workload.dir/tree.cpp.o"
  "CMakeFiles/cpa_workload.dir/tree.cpp.o.d"
  "libcpa_workload.a"
  "libcpa_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpa_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
