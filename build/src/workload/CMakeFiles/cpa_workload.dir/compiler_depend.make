# Empty compiler generated dependencies file for cpa_workload.
# This may be replaced when dependencies are built.
