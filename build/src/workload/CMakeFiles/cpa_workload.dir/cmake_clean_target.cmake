file(REMOVE_RECURSE
  "libcpa_workload.a"
)
