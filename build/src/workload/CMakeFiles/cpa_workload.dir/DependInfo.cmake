
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/campaign.cpp" "src/workload/CMakeFiles/cpa_workload.dir/campaign.cpp.o" "gcc" "src/workload/CMakeFiles/cpa_workload.dir/campaign.cpp.o.d"
  "/root/repo/src/workload/posix_tree.cpp" "src/workload/CMakeFiles/cpa_workload.dir/posix_tree.cpp.o" "gcc" "src/workload/CMakeFiles/cpa_workload.dir/posix_tree.cpp.o.d"
  "/root/repo/src/workload/tree.cpp" "src/workload/CMakeFiles/cpa_workload.dir/tree.cpp.o" "gcc" "src/workload/CMakeFiles/cpa_workload.dir/tree.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/simcore/CMakeFiles/cpa_simcore.dir/DependInfo.cmake"
  "/root/repo/build/src/pfs/CMakeFiles/cpa_pfs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
