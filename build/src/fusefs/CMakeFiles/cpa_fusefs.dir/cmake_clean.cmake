file(REMOVE_RECURSE
  "CMakeFiles/cpa_fusefs.dir/archive_fuse.cpp.o"
  "CMakeFiles/cpa_fusefs.dir/archive_fuse.cpp.o.d"
  "libcpa_fusefs.a"
  "libcpa_fusefs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpa_fusefs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
