file(REMOVE_RECURSE
  "libcpa_fusefs.a"
)
