# Empty compiler generated dependencies file for cpa_fusefs.
# This may be replaced when dependencies are built.
