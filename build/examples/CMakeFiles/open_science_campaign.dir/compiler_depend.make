# Empty compiler generated dependencies file for open_science_campaign.
# This may be replaced when dependencies are built.
