file(REMOVE_RECURSE
  "CMakeFiles/open_science_campaign.dir/open_science_campaign.cpp.o"
  "CMakeFiles/open_science_campaign.dir/open_science_campaign.cpp.o.d"
  "open_science_campaign"
  "open_science_campaign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/open_science_campaign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
