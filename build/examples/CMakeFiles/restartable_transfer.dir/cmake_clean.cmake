file(REMOVE_RECURSE
  "CMakeFiles/restartable_transfer.dir/restartable_transfer.cpp.o"
  "CMakeFiles/restartable_transfer.dir/restartable_transfer.cpp.o.d"
  "restartable_transfer"
  "restartable_transfer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/restartable_transfer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
