# Empty dependencies file for restartable_transfer.
# This may be replaced when dependencies are built.
