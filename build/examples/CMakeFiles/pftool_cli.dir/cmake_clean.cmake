file(REMOVE_RECURSE
  "CMakeFiles/pftool_cli.dir/pftool_cli.cpp.o"
  "CMakeFiles/pftool_cli.dir/pftool_cli.cpp.o.d"
  "pftool_cli"
  "pftool_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pftool_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
