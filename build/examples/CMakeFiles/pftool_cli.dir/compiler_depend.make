# Empty compiler generated dependencies file for pftool_cli.
# This may be replaced when dependencies are built.
