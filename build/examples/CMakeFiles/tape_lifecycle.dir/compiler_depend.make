# Empty compiler generated dependencies file for tape_lifecycle.
# This may be replaced when dependencies are built.
