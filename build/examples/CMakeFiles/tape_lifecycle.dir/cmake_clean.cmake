file(REMOVE_RECURSE
  "CMakeFiles/tape_lifecycle.dir/tape_lifecycle.cpp.o"
  "CMakeFiles/tape_lifecycle.dir/tape_lifecycle.cpp.o.d"
  "tape_lifecycle"
  "tape_lifecycle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tape_lifecycle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
