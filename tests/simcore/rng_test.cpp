#include "simcore/rng.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <vector>

namespace cpa::sim {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent(7);
  Rng child1 = parent.split();
  Rng child2 = parent.split();
  // Children differ from each other.
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (child1.next_u64() == child2.next_u64()) ++equal;
  }
  EXPECT_EQ(equal, 0);
  // Split is reproducible from the same parent state.
  Rng parent2(7);
  Rng child1b = parent2.split();
  for (int i = 0; i < 100; ++i) {
    (void)i;
  }
  Rng child1c = Rng(7).split();
  EXPECT_EQ(child1c.next_u64(), child1b.next_u64());
}

TEST(Rng, UniformIsInHalfOpenUnitInterval) {
  Rng r(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng r(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += r.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformU64CoversRangeInclusively) {
  Rng r(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto v = r.uniform_u64(10, 13);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 13u);
    saw_lo |= (v == 10);
    saw_hi |= (v == 13);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformU64SingletonRange) {
  Rng r(5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(r.uniform_u64(77, 77), 77u);
}

TEST(Rng, UniformI64HandlesNegativeBounds) {
  Rng r(9);
  for (int i = 0; i < 10000; ++i) {
    const auto v = r.uniform_i64(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(Rng, ExponentialMeanMatches) {
  Rng r(13);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += r.exponential(4.0);
  EXPECT_NEAR(sum / n, 4.0, 0.05);
}

TEST(Rng, NormalMomentsMatch) {
  Rng r(17);
  double sum = 0.0, sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = r.normal(10.0, 3.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 3.0, 0.05);
}

TEST(Rng, LognormalMeanCalibration) {
  Rng r(19);
  double sum = 0.0;
  const int n = 400000;
  for (int i = 0; i < n; ++i) sum += r.lognormal_mean(100.0, 1.5);
  // Heavy tail: generous tolerance.
  EXPECT_NEAR(sum / n, 100.0, 5.0);
}

TEST(Rng, BoundedParetoStaysInBounds) {
  Rng r(23);
  for (int i = 0; i < 20000; ++i) {
    const double x = r.bounded_pareto(1.2, 1e3, 1e9);
    EXPECT_GE(x, 1e3);
    EXPECT_LE(x, 1e9 * (1 + 1e-9));
  }
}

TEST(Rng, WeightedChoiceRespectsWeights) {
  Rng r(29);
  const std::array<double, 3> w{1.0, 0.0, 3.0};
  std::array<int, 3> counts{};
  const int n = 40000;
  for (int i = 0; i < n; ++i) ++counts[r.weighted_choice(w)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[0]) / n, 0.25, 0.02);
  EXPECT_NEAR(static_cast<double>(counts[2]) / n, 0.75, 0.02);
}

TEST(Rng, ShuffleIsAPermutation) {
  Rng r(31);
  std::vector<int> v{0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  auto sorted = v;
  r.shuffle(v);
  auto resorted = v;
  std::sort(resorted.begin(), resorted.end());
  EXPECT_EQ(resorted, sorted);
}

TEST(Rng, ChanceExtremes) {
  Rng r(37);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.chance(0.0));
    EXPECT_TRUE(r.chance(1.0));
  }
}

}  // namespace
}  // namespace cpa::sim
