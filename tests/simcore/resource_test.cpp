#include "simcore/resource.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace cpa::sim {
namespace {

TEST(Resource, GrantsUpToCapacityImmediately) {
  Simulation sim;
  Resource r(sim, "drives", 2);
  int granted = 0;
  r.acquire([&] { ++granted; });
  r.acquire([&] { ++granted; });
  r.acquire([&] { ++granted; });
  sim.run();
  EXPECT_EQ(granted, 2);
  EXPECT_EQ(r.in_use(), 2u);
  EXPECT_EQ(r.queue_length(), 1u);
}

TEST(Resource, ReleaseWakesFifo) {
  Simulation sim;
  Resource r(sim, "drives", 1);
  std::vector<int> order;
  r.acquire([&] { order.push_back(0); });
  r.acquire([&] { order.push_back(1); });
  r.acquire([&] { order.push_back(2); });
  sim.run();
  ASSERT_EQ(order.size(), 1u);
  r.release();
  sim.run();
  r.release();
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(r.total_grants(), 3u);
}

TEST(Resource, GrantIsNotReentrant) {
  Simulation sim;
  Resource r(sim, "x", 1);
  bool granted_inline = false;
  r.acquire([&] { granted_inline = true; });
  // Grant must go through the event queue, not fire during acquire().
  EXPECT_FALSE(granted_inline);
  sim.run();
  EXPECT_TRUE(granted_inline);
}

TEST(Resource, TryAcquireFailsWhenBusyOrQueued) {
  Simulation sim;
  Resource r(sim, "x", 1);
  EXPECT_TRUE(r.try_acquire([] {}));
  sim.run();
  EXPECT_FALSE(r.try_acquire([] {}));
  r.release();
  EXPECT_TRUE(r.try_acquire([] {}));
}

TEST(Resource, CancelWaitRemovesPendingRequest) {
  Simulation sim;
  Resource r(sim, "x", 1);
  bool second = false;
  r.acquire([] {});
  const auto ticket = r.acquire([&] { second = true; });
  sim.run();
  EXPECT_TRUE(r.cancel_wait(ticket));
  r.release();
  sim.run();
  EXPECT_FALSE(second);
  EXPECT_EQ(r.in_use(), 0u);
}

TEST(Resource, CancelWaitAfterGrantReturnsFalse) {
  Simulation sim;
  Resource r(sim, "x", 1);
  const auto ticket = r.acquire([] {});
  sim.run();
  EXPECT_FALSE(r.cancel_wait(ticket));
}

TEST(Resource, ShrinkNeverRevokesHeldSlots) {
  Simulation sim;
  Resource r(sim, "drives", 2);
  r.acquire([] {});
  r.acquire([] {});
  sim.run();
  ASSERT_EQ(r.in_use(), 2u);

  // Fault window: capacity drops below what is held; holders keep their
  // slots and nothing new is granted until releases catch up.
  r.set_capacity(1);
  bool third = false;
  r.acquire([&] { third = true; });
  sim.run();
  EXPECT_EQ(r.in_use(), 2u);
  EXPECT_FALSE(third);

  r.release();  // 1 in use == new capacity: still no free slot
  sim.run();
  EXPECT_FALSE(third);
  r.release();
  sim.run();
  EXPECT_TRUE(third);
}

TEST(Resource, GrowWakesWaitersIntoFreedSlots) {
  Simulation sim;
  Resource r(sim, "drives", 0);  // fully down
  unsigned granted = 0;
  r.acquire([&] { ++granted; });
  r.acquire([&] { ++granted; });
  r.acquire([&] { ++granted; });
  sim.run();
  EXPECT_EQ(granted, 0u);

  r.set_capacity(2);  // repair: two slots come back
  sim.run();
  EXPECT_EQ(granted, 2u);
  EXPECT_EQ(r.queue_length(), 1u);
}

}  // namespace
}  // namespace cpa::sim
