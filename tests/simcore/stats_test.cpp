#include "simcore/stats.hpp"

#include <gtest/gtest.h>

#include "simcore/units.hpp"

namespace cpa::sim {
namespace {

TEST(OnlineStats, EmptyIsZero) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(OnlineStats, KnownMoments) {
  OnlineStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
}

TEST(Samples, PercentilesInterpolate) {
  Samples s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 100.0);
  EXPECT_NEAR(s.percentile(50), 50.5, 1e-9);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 100.0);
  EXPECT_DOUBLE_EQ(s.mean(), 50.5);
}

TEST(Samples, SingleSampleIsEveryPercentile) {
  Samples s;
  s.add(42.0);
  EXPECT_DOUBLE_EQ(s.percentile(0), 42.0);
  EXPECT_DOUBLE_EQ(s.percentile(50), 42.0);
  EXPECT_DOUBLE_EQ(s.percentile(95), 42.0);
  EXPECT_DOUBLE_EQ(s.percentile(99), 42.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 42.0);
  EXPECT_DOUBLE_EQ(s.mean(), 42.0);
}

TEST(Samples, EmptyPercentileIsZero) {
  Samples s;
  EXPECT_DOUBLE_EQ(s.percentile(50), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 0.0);
  EXPECT_DOUBLE_EQ(s.max(), 0.0);
}

TEST(Samples, DuplicatesInterpolateOnRankNotValue) {
  Samples s;
  for (const double x : {3.0, 2.0, 2.0, 1.0}) s.add(x);  // sorted: 1 2 2 3
  // rank = p/100 * (n-1); linear interpolation between neighbors.
  EXPECT_NEAR(s.percentile(50), 2.0, 1e-12);    // rank 1.5: between the 2s
  EXPECT_NEAR(s.percentile(95), 2.85, 1e-12);   // rank 2.85: 2 + 0.85
  EXPECT_NEAR(s.percentile(99), 2.97, 1e-12);   // rank 2.97
  EXPECT_DOUBLE_EQ(s.percentile(100), 3.0);
}

TEST(Samples, AllEqualSamplesAreFlat) {
  Samples s;
  for (int i = 0; i < 5; ++i) s.add(7.0);
  for (const double p : {0.0, 13.0, 50.0, 95.0, 99.0, 100.0}) {
    EXPECT_DOUBLE_EQ(s.percentile(p), 7.0);
  }
}

TEST(Samples, ExactTailPercentilesOnKnownSet) {
  Samples s;
  for (int i = 1; i <= 100; ++i) s.add(i);  // ranks 0..99 hold 1..100
  EXPECT_NEAR(s.percentile(95), 95.05, 1e-9);  // rank 94.05
  EXPECT_NEAR(s.percentile(99), 99.01, 1e-9);  // rank 98.01
  EXPECT_DOUBLE_EQ(s.percentile(100), 100.0);
}

TEST(Samples, AddAfterPercentileResorts) {
  Samples s;
  s.add(10);
  EXPECT_DOUBLE_EQ(s.max(), 10.0);
  s.add(20);
  EXPECT_DOUBLE_EQ(s.max(), 20.0);
}

TEST(Log10Histogram, BinsByDecade) {
  Log10Histogram h;
  h.add(5);       // decade 0: [1, 10)
  h.add(50);      // decade 1
  h.add(55);      // decade 1
  h.add(5e6);     // decade 6
  EXPECT_EQ(h.total(), 4u);
  const std::string r = h.render("files");
  EXPECT_NE(r.find("files (n=4)"), std::string::npos);
  EXPECT_NE(r.find("2 |"), std::string::npos);  // the two-count decade
}

TEST(Log10Histogram, NonPositiveValuesFoldIntoFirstBin) {
  Log10Histogram h;
  h.add(0.0);
  h.add(-3.0);
  EXPECT_EQ(h.total(), 2u);
}

TEST(RateMeter, WindowExpiry) {
  RateMeter m(minutes(1));
  m.record(secs(0), 100, 1);
  m.record(secs(30), 200, 2);
  EXPECT_EQ(m.bytes_in_window(secs(30)), 300u);
  EXPECT_EQ(m.files_in_window(secs(30)), 3u);
  // At t=70s, the t=0 entry has left the 60 s window.
  EXPECT_EQ(m.bytes_in_window(secs(70)), 200u);
  EXPECT_EQ(m.files_in_window(secs(70)), 2u);
  // Totals never expire.
  EXPECT_EQ(m.total_bytes(), 300u);
  EXPECT_EQ(m.total_files(), 3u);
  EXPECT_EQ(m.last_progress(), secs(30));
}

TEST(RateMeter, WindowBoundaryIsInclusive) {
  RateMeter m(secs(10));
  m.record(secs(0), 100, 1);
  m.record(secs(10), 50, 2);
  // The cutoff comparison is strict (`at < now - window`): an entry aged
  // exactly one full window is still counted...
  EXPECT_EQ(m.bytes_in_window(secs(10)), 150u);
  EXPECT_EQ(m.files_in_window(secs(10)), 3u);
  // ...and expires one tick later.
  EXPECT_EQ(m.bytes_in_window(secs(10) + 1), 50u);
  EXPECT_EQ(m.files_in_window(secs(10) + 1), 2u);
  EXPECT_EQ(m.total_bytes(), 150u);
}

TEST(RateMeter, QueriesBeforeOneFullWindowKeepEverything) {
  RateMeter m(minutes(1));
  m.record(secs(1), 10, 1);
  // now < window: the cutoff clamps to 0 instead of wrapping the unsigned
  // Tick, so nothing expires.
  EXPECT_EQ(m.bytes_in_window(secs(5)), 10u);
  EXPECT_EQ(m.bytes_in_window(0), 10u);
}

TEST(RateMeter, StallDetectionViaLastProgress) {
  RateMeter m(minutes(1));
  EXPECT_EQ(m.last_progress(), 0u);
  m.record(secs(10), 1, 1);
  EXPECT_EQ(m.last_progress(), secs(10));
  EXPECT_EQ(m.bytes_in_window(hours(1)), 0u);
}

TEST(Units, FormatBytesPicksUnit) {
  EXPECT_EQ(format_bytes(512), "512 B");
  EXPECT_EQ(format_bytes(2500), "2.50 KB");
  EXPECT_EQ(format_bytes(3 * kMB), "3.00 MB");
  EXPECT_EQ(format_bytes(32593 * kGB), "32.59 TB");
}

TEST(Units, FormatRate) {
  EXPECT_EQ(format_rate_mbs(575.0 * static_cast<double>(kMB)), "575.0 MB/s");
}

}  // namespace
}  // namespace cpa::sim
