#include "simcore/actor.hpp"

#include <gtest/gtest.h>

namespace cpa::sim {
namespace {

class Echo : public Actor {
 public:
  using Actor::Actor;

  void ping(Echo& peer, int hops) {
    if (hops == 0) return;
    send(peer, kDefaultMsgLatency, [this, &peer, hops] {
      ++received_pings;
      peer.ping(*this, hops - 1);
    });
  }

  void schedule_tick(Tick dt) {
    after(dt, [this] { ticked_at = sim().now(); });
  }

  int received_pings = 0;
  Tick ticked_at = 0;
};

TEST(Actor, SendDeliversWithLatencyAndCountsMessages) {
  Simulation sim;
  Echo a(sim, "a");
  Echo b(sim, "b");
  a.ping(b, 4);  // a->b, b->a, a->b, b->a
  sim.run();
  EXPECT_EQ(sim.now(), 4 * kDefaultMsgLatency);
  EXPECT_EQ(a.messages_sent(), 2u);
  EXPECT_EQ(b.messages_sent(), 2u);
  EXPECT_EQ(a.messages_received(), 2u);
  EXPECT_EQ(b.messages_received(), 2u);
  EXPECT_EQ(a.received_pings + b.received_pings, 4);
}

TEST(Actor, AfterSchedulesOnOwnTimeline) {
  Simulation sim;
  Echo a(sim, "a");
  a.schedule_tick(secs(3));
  sim.run();
  EXPECT_EQ(a.ticked_at, secs(3));
  EXPECT_EQ(a.name(), "a");
}

}  // namespace
}  // namespace cpa::sim
