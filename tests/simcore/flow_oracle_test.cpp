// Differential oracle for the incremental flow scheduler.
//
// A randomized churn driver mutates a FlowNetwork (start / abort /
// capacity change / time advance with completions) and after EVERY
// mutation asserts that the incrementally maintained rates are *exactly*
// (bit-for-bit) the rates a full from-scratch water-filling produces —
// recompute_rates_reference() and the dirty-component path share one
// canonically-ordered solver, so any divergence is a real bookkeeping bug
// (stale membership index, missed dirty component, wrong epoch sync), not
// floating-point noise.  Conservation invariants are checked alongside:
// no pool over capacity, no flow over its cap, and max-min work
// conservation (every flow is cap-limited or crosses a saturated pool).
//
// Scale: kSeeds seeds x kMutations mutations > 100k randomized mutations
// per run (CPA_ORACLE_MUTATIONS overrides the per-seed count; ci.sh runs
// this under ASan+UBSan).
#include "simcore/flow_network.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <vector>

#include "simcore/rng.hpp"

namespace cpa::sim {
namespace {

constexpr double kMBd = 1e6;
constexpr int kSeeds = 24;

int mutations_per_seed() {
  if (const char* env = std::getenv("CPA_ORACLE_MUTATIONS")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  return 4500;
}

struct LiveFlow {
  FlowId id;
  double cap;
  std::vector<PathLeg> path;
};

class FlowOracle : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FlowOracle, IncrementalRatesMatchReferenceExactly) {
  Rng rng(GetParam() * 0x9E3779B97F4A7C15ULL + 1);
  Simulation sim;
  FlowNetwork net(sim);

  // Sparse overlap: several pool "clusters" that flows mostly stay inside,
  // so the network usually splits into multiple connected components and
  // the dirty-set logic (component discovery, merge on start, split on
  // abort/finish) is genuinely exercised.
  const int n_clusters = static_cast<int>(rng.uniform_u64(2, 4));
  const int pools_per_cluster = static_cast<int>(rng.uniform_u64(2, 4));
  std::vector<PoolId> pools;
  std::vector<double> base_capacity;
  for (int c = 0; c < n_clusters; ++c) {
    for (int p = 0; p < pools_per_cluster; ++p) {
      const double cap = rng.uniform(10, 500) * kMBd;
      pools.push_back(net.add_pool(
          "c" + std::to_string(c) + "p" + std::to_string(p), cap));
      base_capacity.push_back(cap);
    }
  }
  std::map<std::uint64_t, LiveFlow> live;  // flows we may still abort

  const auto check = [&](int step) {
    const auto reference = net.recompute_rates_reference();
    const std::vector<FlowId> ids = net.live_flow_ids();
    ASSERT_EQ(reference.size(), ids.size()) << "seed " << GetParam()
                                            << " step " << step;
    for (std::size_t i = 0; i < ids.size(); ++i) {
      ASSERT_EQ(reference[i].first, ids[i].id);
      const double incremental = net.flow_rate(ids[i]);
      // Exact: both paths must run the identical FP operation sequence.
      ASSERT_EQ(incremental, reference[i].second)
          << "rate divergence: seed " << GetParam() << " step " << step
          << " flow " << ids[i].id;
    }
    // Conservation invariants (tolerances only absorb benign last-ulp
    // residue in the *sums*, not incremental-vs-reference drift).
    for (std::size_t p = 0; p < pools.size(); ++p) {
      ASSERT_LE(net.pool_allocated(pools[p]),
                net.pool_capacity(pools[p]) * (1 + 1e-9) + 1e-9)
          << "pool over capacity: seed " << GetParam() << " step " << step;
    }
    for (const auto& [id, lf] : live) {
      const double r = net.flow_rate(lf.id);
      ASSERT_GE(r, 0.0);
      ASSERT_LE(r, lf.cap * (1 + 1e-9))
          << "flow over cap: seed " << GetParam() << " step " << step;
      // Work conservation: a flow below its cap must cross a saturated
      // pool (otherwise max-min fairness would raise its rate).  A flow
      // stalled by a zero-capacity pool satisfies this via that pool
      // (allocated 0 >= capacity 0).
      if (lf.cap != FlowNetwork::kUnlimited && r >= lf.cap * (1 - 1e-9)) {
        continue;  // cap-limited, not pool-limited
      }
      bool saturated_leg = false;
      for (const PathLeg& leg : lf.path) {
        if (net.pool_allocated(leg.pool) >=
            net.pool_capacity(leg.pool) * (1 - 1e-9)) {
          saturated_leg = true;
          break;
        }
      }
      ASSERT_TRUE(saturated_leg)
          << "flow " << id << " below cap with no saturated pool: seed "
          << GetParam() << " step " << step;
    }
  };

  const int steps = mutations_per_seed();
  for (int step = 0; step < steps; ++step) {
    const double dice = rng.uniform();
    if (dice < 0.45 || live.empty()) {
      // Start a flow: 1-3 legs, usually inside one cluster, sometimes
      // bridging two (which must merge their components).
      const int cluster = static_cast<int>(rng.uniform_u64(
          0, static_cast<std::uint64_t>(n_clusters - 1)));
      std::vector<PathLeg> path;
      const int legs = static_cast<int>(rng.uniform_u64(1, 3));
      for (int l = 0; l < legs; ++l) {
        int c = cluster;
        if (rng.chance(0.12)) {  // bridge
          c = static_cast<int>(
              rng.uniform_u64(0, static_cast<std::uint64_t>(n_clusters - 1)));
        }
        const int p = static_cast<int>(rng.uniform_u64(
            0, static_cast<std::uint64_t>(pools_per_cluster - 1)));
        const double weight = rng.chance(0.3) ? rng.uniform(0.25, 1.0) : 1.0;
        path.emplace_back(pools[static_cast<std::size_t>(
                              c * pools_per_cluster + p)],
                          weight);
      }
      const double cap =
          rng.chance(0.3) ? rng.uniform(5, 100) * kMBd : FlowNetwork::kUnlimited;
      const double bytes = rng.chance(0.02)
                               ? 0.0  // degenerate zero-byte flow
                               : rng.uniform(1, 5000) * kMBd;
      const FlowId id = net.start_flow(path, bytes, nullptr, cap);
      if (bytes > 0.0) live.emplace(id.id, LiveFlow{id, cap, std::move(path)});
    } else if (dice < 0.65) {
      // Abort a random live flow (may already have completed: then
      // abort_flow returns false and we just forget it).
      auto it = live.begin();
      std::advance(it, static_cast<long>(
                           rng.uniform_u64(0, live.size() - 1)));
      net.abort_flow(it->second.id);
      live.erase(it);
    } else if (dice < 0.80) {
      // Capacity churn, including full stalls and restores.
      const std::size_t p = static_cast<std::size_t>(
          rng.uniform_u64(0, pools.size() - 1));
      double cap;
      if (rng.chance(0.15)) {
        cap = 0.0;  // stall the component
      } else if (rng.chance(0.3)) {
        cap = base_capacity[p];  // restore
      } else {
        cap = rng.uniform(10, 500) * kMBd;
      }
      net.set_pool_capacity(pools[p], cap);
    } else {
      // Advance virtual time; completions fire and resolve components.
      sim.run_until(sim.now() + secs(rng.uniform(0.05, 20.0)));
      // Drop handles of flows that completed meanwhile (merge-scan the
      // sorted live-id list against our sorted handle map).
      std::vector<std::uint64_t> gone;
      {
        const auto ids = net.live_flow_ids();
        std::size_t j = 0;
        for (const auto& [id, lf] : live) {
          while (j < ids.size() && ids[j].id < id) ++j;
          if (j >= ids.size() || ids[j].id != id) gone.push_back(id);
        }
      }
      for (const std::uint64_t id : gone) live.erase(id);
    }
    ASSERT_NO_FATAL_FAILURE(check(step));
  }
  // Drain: let everything finish; the network must end empty with the
  // reference agreeing on the (empty) rate vector.
  for (const auto& [id, lf] : live) net.abort_flow(lf.id);
  live.clear();
  sim.run();
  ASSERT_NO_FATAL_FAILURE(check(steps));
  EXPECT_EQ(net.active_flows(), 0u);
  EXPECT_TRUE(net.recompute_rates_reference().empty());
}

INSTANTIATE_TEST_SUITE_P(RandomChurn, FlowOracle,
                         ::testing::Range<std::uint64_t>(1, kSeeds + 1));

}  // namespace
}  // namespace cpa::sim
