#include "simcore/flow_network.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <optional>
#include <tuple>
#include <vector>

#include "simcore/rng.hpp"

namespace cpa::sim {
namespace {

constexpr double kMBd = 1e6;

TEST(FlowNetwork, SingleFlowRunsAtPoolCapacity) {
  Simulation sim;
  FlowNetwork net(sim);
  const PoolId link = net.add_pool("link", 100 * kMBd);
  std::optional<FlowStats> done;
  net.start_flow({link}, 1000 * kMBd, [&](const FlowStats& s) { done = s; });
  sim.run();
  ASSERT_TRUE(done.has_value());
  EXPECT_NEAR(to_seconds(done->finished - done->started), 10.0, 1e-6);
  EXPECT_NEAR(done->mean_rate(), 100 * kMBd, 1.0);
}

TEST(FlowNetwork, TwoFlowsShareFairly) {
  Simulation sim;
  FlowNetwork net(sim);
  const PoolId link = net.add_pool("link", 100 * kMBd);
  Tick t1 = 0, t2 = 0;
  net.start_flow({link}, 500 * kMBd, [&](const FlowStats& s) { t1 = s.finished; });
  net.start_flow({link}, 500 * kMBd, [&](const FlowStats& s) { t2 = s.finished; });
  sim.run();
  // Both at 50 MB/s for 10 s.
  EXPECT_NEAR(to_seconds(t1), 10.0, 1e-6);
  EXPECT_NEAR(to_seconds(t2), 10.0, 1e-6);
}

TEST(FlowNetwork, ShortFlowFinishesThenLongFlowSpeedsUp) {
  Simulation sim;
  FlowNetwork net(sim);
  const PoolId link = net.add_pool("link", 100 * kMBd);
  Tick t_long = 0;
  net.start_flow({link}, 1000 * kMBd, [&](const FlowStats& s) { t_long = s.finished; });
  net.start_flow({link}, 100 * kMBd, [](const FlowStats&) {});
  sim.run();
  // Short flow: 100 MB at 50 MB/s -> done at t=2 s, having consumed 100 MB.
  // Long flow: 100 MB done by t=2, remaining 900 MB at 100 MB/s -> t=11 s.
  EXPECT_NEAR(to_seconds(t_long), 11.0, 1e-6);
}

TEST(FlowNetwork, PerFlowCapLimitsRate) {
  Simulation sim;
  FlowNetwork net(sim);
  const PoolId link = net.add_pool("link", 1000 * kMBd);
  Tick t = 0;
  net.start_flow({link}, 100 * kMBd, [&](const FlowStats& s) { t = s.finished; },
                 /*max_rate=*/10 * kMBd);
  sim.run();
  EXPECT_NEAR(to_seconds(t), 10.0, 1e-6);
}

TEST(FlowNetwork, CappedFlowLeavesBandwidthToOthers) {
  Simulation sim;
  FlowNetwork net(sim);
  const PoolId link = net.add_pool("link", 100 * kMBd);
  Tick t_capped = 0, t_free = 0;
  // Capped flow takes 20 MB/s; the other should get 80 MB/s, not 50.
  net.start_flow({link}, 200 * kMBd,
                 [&](const FlowStats& s) { t_capped = s.finished; },
                 /*max_rate=*/20 * kMBd);
  net.start_flow({link}, 800 * kMBd, [&](const FlowStats& s) { t_free = s.finished; });
  sim.run();
  EXPECT_NEAR(to_seconds(t_capped), 10.0, 1e-6);
  EXPECT_NEAR(to_seconds(t_free), 10.0, 1e-6);
}

TEST(FlowNetwork, MultiPoolFlowLimitedByTightestPool) {
  Simulation sim;
  FlowNetwork net(sim);
  const PoolId wide = net.add_pool("wide", 1000 * kMBd);
  const PoolId narrow = net.add_pool("narrow", 25 * kMBd);
  Tick t = 0;
  net.start_flow({wide, narrow}, 250 * kMBd, [&](const FlowStats& s) { t = s.finished; });
  sim.run();
  EXPECT_NEAR(to_seconds(t), 10.0, 1e-6);
}

TEST(FlowNetwork, BottleneckSharingAcrossDistinctPaths) {
  // Classic max-min example: flows A (pools X+Y), B (pool X), C (pool Y).
  // X = 100, Y = 200.  Fair shares: A=50, B=50 via X; then C gets
  // Y's residual 150.
  Simulation sim;
  FlowNetwork net(sim);
  const PoolId x = net.add_pool("x", 100 * kMBd);
  const PoolId y = net.add_pool("y", 200 * kMBd);
  const FlowId a = net.start_flow({x, y}, 1e12, nullptr);
  const FlowId b = net.start_flow({x}, 1e12, nullptr);
  const FlowId c = net.start_flow({y}, 1e12, nullptr);
  EXPECT_NEAR(net.flow_rate(a), 50 * kMBd, 1.0);
  EXPECT_NEAR(net.flow_rate(b), 50 * kMBd, 1.0);
  EXPECT_NEAR(net.flow_rate(c), 150 * kMBd, 1.0);
}

TEST(FlowNetwork, DuplicatePoolsSumTheirWeights) {
  Simulation sim;
  FlowNetwork net(sim);
  const PoolId p = net.add_pool("p", 100 * kMBd);
  // A path crossing the same pool three times loads it at 3x the flow
  // rate, so the flow only achieves a third of the capacity.
  const FlowId f = net.start_flow({p, p, p}, 1e12, nullptr);
  EXPECT_NEAR(net.flow_rate(f), 100.0 / 3.0 * kMBd, 1.0);
  EXPECT_NEAR(net.pool_allocated(p), 100 * kMBd, 1.0);
}

TEST(FlowNetwork, WeightedStripeLegsAggregateBandwidth) {
  // A flow striped over four 100 MB/s disk servers (weight 1/4 each)
  // achieves 400 MB/s — the modeling basis for striped NSD reads.
  Simulation sim;
  FlowNetwork net(sim);
  std::vector<PathLeg> legs;
  for (int i = 0; i < 4; ++i) {
    legs.emplace_back(net.add_pool("nsd" + std::to_string(i), 100 * kMBd),
                      0.25);
  }
  const FlowId f = net.start_flow(legs, 1e12, nullptr);
  EXPECT_NEAR(net.flow_rate(f), 400 * kMBd, 1.0);
}

TEST(FlowNetwork, WeightedLegsShareFairlyAcrossFlows) {
  // Two striped flows over the same four servers each get 200 MB/s.
  Simulation sim;
  FlowNetwork net(sim);
  std::vector<PathLeg> legs;
  for (int i = 0; i < 4; ++i) {
    legs.emplace_back(net.add_pool("nsd" + std::to_string(i), 100 * kMBd),
                      0.25);
  }
  const FlowId a = net.start_flow(legs, 1e12, nullptr);
  const FlowId b = net.start_flow(legs, 1e12, nullptr);
  EXPECT_NEAR(net.flow_rate(a), 200 * kMBd, 1.0);
  EXPECT_NEAR(net.flow_rate(b), 200 * kMBd, 1.0);
}

TEST(FlowNetwork, ZeroByteFlowCompletesImmediately) {
  Simulation sim;
  FlowNetwork net(sim);
  const PoolId p = net.add_pool("p", 100 * kMBd);
  bool done = false;
  net.start_flow({p}, 0.0, [&](const FlowStats&) { done = true; });
  sim.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(sim.now(), 0u);
}

TEST(FlowNetwork, AbortPreventsCompletionAndFreesBandwidth) {
  Simulation sim;
  FlowNetwork net(sim);
  const PoolId p = net.add_pool("p", 100 * kMBd);
  bool aborted_done = false;
  Tick t_other = 0;
  const FlowId victim =
      net.start_flow({p}, 1e12, [&](const FlowStats&) { aborted_done = true; });
  net.start_flow({p}, 1000 * kMBd, [&](const FlowStats& s) { t_other = s.finished; });
  sim.after(secs(5), [&] { EXPECT_TRUE(net.abort_flow(victim)); });
  sim.run();
  EXPECT_FALSE(aborted_done);
  // Other flow: 5 s at 50 MB/s = 250 MB, remaining 750 MB at 100 MB/s
  // -> finishes at 12.5 s.
  EXPECT_NEAR(to_seconds(t_other), 12.5, 1e-6);
}

TEST(FlowNetwork, AbortUnknownFlowReturnsFalse) {
  Simulation sim;
  FlowNetwork net(sim);
  net.add_pool("p", 1.0);
  EXPECT_FALSE(net.abort_flow(FlowId{999}));
}

TEST(FlowNetwork, CapacityChangeMidFlight) {
  Simulation sim;
  FlowNetwork net(sim);
  const PoolId p = net.add_pool("p", 100 * kMBd);
  Tick t = 0;
  net.start_flow({p}, 1000 * kMBd, [&](const FlowStats& s) { t = s.finished; });
  sim.after(secs(5), [&] { net.set_pool_capacity(p, 50 * kMBd); });
  sim.run();
  // 500 MB in the first 5 s, then 500 MB at 50 MB/s -> 15 s total.
  EXPECT_NEAR(to_seconds(t), 15.0, 1e-6);
}

TEST(FlowNetwork, ZeroCapacityPoolStallsFlowUntilRaised) {
  Simulation sim;
  FlowNetwork net(sim);
  const PoolId p = net.add_pool("p", 0.0);
  Tick t = 0;
  net.start_flow({p}, 100 * kMBd, [&](const FlowStats& s) { t = s.finished; });
  sim.after(secs(3), [&] { net.set_pool_capacity(p, 100 * kMBd); });
  sim.run();
  EXPECT_NEAR(to_seconds(t), 4.0, 1e-6);
}

TEST(FlowNetwork, FlowBytesDoneTracksProgress) {
  Simulation sim;
  FlowNetwork net(sim);
  const PoolId p = net.add_pool("p", 100 * kMBd);
  const FlowId f = net.start_flow({p}, 1000 * kMBd, nullptr);
  sim.run_until(secs(3));
  EXPECT_NEAR(net.flow_bytes_done(f), 300 * kMBd, 1.0);
}

TEST(FlowNetwork, AbortZeroByteFlowCancelsQueuedCompletion) {
  Simulation sim;
  FlowNetwork net(sim);
  const PoolId p = net.add_pool("p", 100 * kMBd);
  bool done = false;
  const FlowId f = net.start_flow({p}, 0.0, [&](const FlowStats&) { done = true; });
  // The completion event is queued but has not fired yet: aborting must
  // succeed, cancel it, and the callback must never run.
  EXPECT_TRUE(net.abort_flow(f));
  EXPECT_FALSE(net.abort_flow(f));  // second abort: already gone
  sim.run();
  EXPECT_FALSE(done);
  EXPECT_EQ(net.active_flows(), 0u);
}

TEST(FlowNetwork, StallToZeroThenRestoreResumesWithCorrectAccounting) {
  Simulation sim;
  FlowNetwork net(sim);
  const PoolId p = net.add_pool("p", 100 * kMBd);
  Tick t = 0;
  const FlowId f =
      net.start_flow({p}, 1000 * kMBd, [&](const FlowStats& s) { t = s.finished; });
  sim.after(secs(2), [&] { net.set_pool_capacity(p, 0.0); });
  sim.run_until(secs(5));
  // Mid-stall: the 200 MB transferred before the stall are frozen, the
  // rate is zero, and the flow is still attached.
  EXPECT_NEAR(net.flow_bytes_done(f), 200 * kMBd, 1.0);
  EXPECT_EQ(net.flow_rate(f), 0.0);
  EXPECT_EQ(net.active_flows(), 1u);
  sim.run_until(secs(7));
  EXPECT_NEAR(net.flow_bytes_done(f), 200 * kMBd, 1.0);  // still frozen
  net.set_pool_capacity(p, 100 * kMBd);
  sim.run();
  // 2 s of transfer + 5 s stalled + 8 s for the remaining 800 MB.
  EXPECT_NEAR(to_seconds(t), 15.0, 1e-6);
  // A stalled-but-attached flow keeps the pool occupied, so busy time
  // covers the whole 15 s including the stall window.
  EXPECT_NEAR(net.pool_busy_seconds(p), 15.0, 1e-6);
}

// Counts the incremental scheduler's work via the probe: mutations in one
// component must not touch flows in another.
struct RecomputeCounter final : FlowProbe {
  std::size_t calls = 0;
  std::size_t flows_touched = 0;
  void on_flow_started(std::uint64_t, double, Tick) override {}
  void on_flow_completed(std::uint64_t, const FlowStats&) override {}
  void on_flow_aborted(std::uint64_t, Tick) override {}
  void on_rates_recomputed(std::size_t n) override {
    ++calls;
    flows_touched += n;
  }
};

TEST(FlowNetwork, DisjointComponentMutationTouchesOnlyItsFlows) {
  Simulation sim;
  FlowNetwork net(sim);
  RecomputeCounter probe;
  const PoolId a = net.add_pool("a", 100 * kMBd);
  const PoolId b = net.add_pool("b", 100 * kMBd);
  for (int i = 0; i < 8; ++i) net.start_flow({a}, 1e12, nullptr);
  net.set_probe(&probe);
  probe = RecomputeCounter{};
  // Starting a flow in pool b must re-solve only that one flow, no matter
  // how many flows share pool a.
  const FlowId fb = net.start_flow({b}, 1e12, nullptr);
  EXPECT_EQ(probe.calls, 1u);
  EXPECT_EQ(probe.flows_touched, 1u);
  // A capacity change on b likewise stays inside b's component.
  probe = RecomputeCounter{};
  net.set_pool_capacity(b, 50 * kMBd);
  EXPECT_EQ(probe.calls, 1u);
  EXPECT_EQ(probe.flows_touched, 1u);
  EXPECT_EQ(net.flow_rate(fb), 50 * kMBd);
  // Aborting it re-solves the (now empty) component: zero flows touched.
  probe = RecomputeCounter{};
  EXPECT_TRUE(net.abort_flow(fb));
  EXPECT_EQ(probe.flows_touched, 0u);
}

TEST(FlowNetwork, CompletionCallbackMayStartNewFlow) {
  Simulation sim;
  FlowNetwork net(sim);
  const PoolId p = net.add_pool("p", 100 * kMBd);
  Tick t2 = 0;
  net.start_flow({p}, 100 * kMBd, [&](const FlowStats&) {
    net.start_flow({p}, 100 * kMBd, [&](const FlowStats& s) { t2 = s.finished; });
  });
  sim.run();
  EXPECT_NEAR(to_seconds(t2), 2.0, 1e-6);
}

// ---------------------------------------------------------------------------
// Property sweep: max-min fairness invariants over random topologies.
// ---------------------------------------------------------------------------

class FlowNetworkProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FlowNetworkProperty, MaxMinInvariantsHold) {
  Rng rng(GetParam());
  Simulation sim;
  FlowNetwork net(sim);

  const int n_pools = static_cast<int>(rng.uniform_u64(1, 6));
  std::vector<PoolId> pools;
  for (int p = 0; p < n_pools; ++p) {
    pools.push_back(net.add_pool("p" + std::to_string(p), rng.uniform(10, 500) * kMBd));
  }
  const int n_flows = static_cast<int>(rng.uniform_u64(1, 12));
  struct F {
    FlowId id;
    std::vector<PoolId> path;
    double cap;
  };
  std::vector<F> flows;
  for (int i = 0; i < n_flows; ++i) {
    std::vector<PoolId> path;
    for (const PoolId p : pools) {
      if (rng.chance(0.5)) path.push_back(p);
    }
    if (path.empty()) path.push_back(pools[0]);
    const double cap =
        rng.chance(0.3) ? rng.uniform(5, 100) * kMBd : FlowNetwork::kUnlimited;
    const FlowId id = net.start_flow(
        std::vector<PathLeg>(path.begin(), path.end()), 1e15, nullptr, cap);
    flows.push_back(F{id, std::move(path), cap});
  }

  // Invariant 1: no pool is over-allocated.
  for (const PoolId p : pools) {
    EXPECT_LE(net.pool_allocated(p), net.pool_capacity(p) * (1 + 1e-9));
  }
  // Invariant 2: no flow exceeds its cap.
  for (const F& f : flows) {
    EXPECT_LE(net.flow_rate(f.id), f.cap * (1 + 1e-9));
  }
  // Invariant 3 (max-min): every flow is limited by either its cap or a
  // saturated pool on its path.
  for (const F& f : flows) {
    const double r = net.flow_rate(f.id);
    if (f.cap != FlowNetwork::kUnlimited && r >= f.cap * (1 - 1e-9)) continue;
    bool on_saturated_pool = false;
    for (const PoolId p : f.path) {
      if (net.pool_allocated(p) >= net.pool_capacity(p) * (1 - 1e-9)) {
        on_saturated_pool = true;
        break;
      }
    }
    EXPECT_TRUE(on_saturated_pool)
        << "flow neither cap-limited nor pool-limited (rate=" << r << ")";
  }
  // Invariant 4: work conservation per saturated pool is implied by 1+3;
  // additionally rates must be non-negative.
  for (const F& f : flows) EXPECT_GE(net.flow_rate(f.id), 0.0);
}

INSTANTIATE_TEST_SUITE_P(RandomTopologies, FlowNetworkProperty,
                         ::testing::Range<std::uint64_t>(1, 33));

}  // namespace
}  // namespace cpa::sim
