#include "simcore/simulation.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "simcore/rng.hpp"

namespace cpa::sim {
namespace {

TEST(Simulation, StartsAtTimeZeroWithNoEvents) {
  Simulation sim;
  EXPECT_EQ(sim.now(), 0u);
  EXPECT_EQ(sim.pending(), 0u);
  EXPECT_FALSE(sim.step());
}

TEST(Simulation, FiresEventsInTimestampOrder) {
  Simulation sim;
  std::vector<int> order;
  sim.at(secs(3), [&] { order.push_back(3); });
  sim.at(secs(1), [&] { order.push_back(1); });
  sim.at(secs(2), [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), secs(3));
}

TEST(Simulation, EqualTimestampsFireInFifoOrder) {
  Simulation sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.at(secs(1), [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Simulation, AfterSchedulesRelativeToNow) {
  Simulation sim;
  Tick observed = 0;
  sim.at(secs(5), [&] {
    sim.after(secs(2), [&] { observed = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(observed, secs(7));
}

TEST(Simulation, PastEventsClampToNow) {
  Simulation sim;
  Tick observed = 0;
  sim.at(secs(5), [&] {
    sim.at(secs(1), [&] { observed = sim.now(); });  // in the past
  });
  sim.run();
  EXPECT_EQ(observed, secs(5));
}

TEST(Simulation, CancelPreventsFiring) {
  Simulation sim;
  bool fired = false;
  auto id = sim.at(secs(1), [&] { fired = true; });
  EXPECT_TRUE(sim.cancel(id));
  sim.run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(sim.pending(), 0u);
}

TEST(Simulation, CancelTwiceReturnsFalse) {
  Simulation sim;
  auto id = sim.at(secs(1), [] {});
  EXPECT_TRUE(sim.cancel(id));
  EXPECT_FALSE(sim.cancel(id));
}

TEST(Simulation, CancelAfterFireReturnsFalseAndKeepsCountsSane) {
  Simulation sim;
  auto id = sim.at(secs(1), [] {});
  sim.run();
  EXPECT_FALSE(sim.cancel(id));
  EXPECT_EQ(sim.pending(), 0u);
  // Pending count must remain usable afterwards.
  sim.at(secs(2), [] {});
  EXPECT_EQ(sim.pending(), 1u);
  sim.run();
  EXPECT_EQ(sim.pending(), 0u);
}

TEST(Simulation, CancelInvalidIdReturnsFalse) {
  Simulation sim;
  EXPECT_FALSE(sim.cancel(Simulation::EventId{}));
  EXPECT_FALSE(sim.cancel(Simulation::EventId{9999}));
}

TEST(Simulation, RunUntilStopsAtDeadlineAndAdvancesClock) {
  Simulation sim;
  int fired = 0;
  sim.at(secs(1), [&] { ++fired; });
  sim.at(secs(2), [&] { ++fired; });
  sim.at(secs(10), [&] { ++fired; });
  const std::size_t n = sim.run_until(secs(5));
  EXPECT_EQ(n, 2u);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.now(), secs(5));
  EXPECT_EQ(sim.pending(), 1u);
  sim.run();
  EXPECT_EQ(fired, 3);
}

TEST(Simulation, RunUntilIncludesEventsExactlyAtDeadline) {
  Simulation sim;
  bool fired = false;
  sim.at(secs(5), [&] { fired = true; });
  sim.run_until(secs(5));
  EXPECT_TRUE(fired);
}

TEST(Simulation, StopInterruptsRun) {
  Simulation sim;
  int fired = 0;
  sim.at(secs(1), [&] {
    ++fired;
    sim.stop();
  });
  sim.at(secs(2), [&] { ++fired; });
  sim.run();
  EXPECT_EQ(fired, 1);
  sim.run();  // resumes
  EXPECT_EQ(fired, 2);
}

TEST(Simulation, EventsScheduledDuringRunAreProcessed) {
  Simulation sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 100) sim.after(msecs(1), recurse);
  };
  sim.after(0, recurse);
  sim.run();
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(sim.now(), msecs(99));
}

TEST(Simulation, EventsFiredCounterAccumulates) {
  Simulation sim;
  for (int i = 0; i < 42; ++i) sim.at(secs(i), [] {});
  sim.run();
  EXPECT_EQ(sim.events_fired(), 42u);
}

TEST(Simulation, CancelOneOfManyAtSameTimestamp) {
  Simulation sim;
  std::vector<int> order;
  sim.at(secs(1), [&] { order.push_back(0); });
  auto id = sim.at(secs(1), [&] { order.push_back(1); });
  sim.at(secs(1), [&] { order.push_back(2); });
  sim.cancel(id);
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 2}));
}

TEST(Simulation, TimeHelpersConvertExactly) {
  EXPECT_EQ(secs(1.0), 1'000'000'000ULL);
  EXPECT_EQ(msecs(1.0), 1'000'000ULL);
  EXPECT_EQ(usecs(1.0), 1'000ULL);
  EXPECT_EQ(minutes(1.0), 60ULL * 1'000'000'000ULL);
  EXPECT_EQ(hours(1.0), 3600ULL * 1'000'000'000ULL);
  EXPECT_EQ(days(1.0), 86400ULL * 1'000'000'000ULL);
  EXPECT_DOUBLE_EQ(to_seconds(secs(123.5)), 123.5);
}

TEST(Simulation, FormatDurationRendersHoursMinutesSeconds) {
  EXPECT_EQ(format_duration(secs(0.5)), "0.500s");
  EXPECT_EQ(format_duration(secs(65)), "1m05.0s");
  EXPECT_EQ(format_duration(hours(2) + minutes(3) + secs(12.5)), "2h03m12.5s");
}

// --- generation-stamped tombstone edge cases -------------------------------

TEST(Simulation, CancelOwnIdInsideFiringCallbackReturnsFalse) {
  Simulation sim;
  Simulation::EventId self{};
  bool self_cancel = true;
  self = sim.at(secs(1), [&] { self_cancel = sim.cancel(self); });
  sim.run();
  // By the time the callback runs the slot is already retired; the handle
  // is stale and cancelling it must be a no-op.
  EXPECT_FALSE(self_cancel);
  EXPECT_EQ(sim.events_cancelled(), 0u);
}

TEST(Simulation, CancelOtherPendingEventInsideFiringCallback) {
  Simulation sim;
  bool other_fired = false;
  bool cancel_ok = false;
  const auto other = sim.at(secs(2), [&] { other_fired = true; });
  sim.at(secs(1), [&] { cancel_ok = sim.cancel(other); });
  sim.run();
  EXPECT_TRUE(cancel_ok);
  EXPECT_FALSE(other_fired);
  EXPECT_EQ(sim.events_fired(), 1u);
  EXPECT_EQ(sim.events_cancelled(), 1u);
}

TEST(Simulation, StaleHandleSurvivesSlotReuse) {
  Simulation sim;
  // Fire an event, then schedule another: the new event recycles the old
  // slot under a bumped generation, so the stale handle must not be able
  // to cancel it.
  const auto old_id = sim.at(secs(1), [] {});
  sim.run();
  bool fired = false;
  sim.at(secs(2), [&] { fired = true; });
  EXPECT_FALSE(sim.cancel(old_id));
  sim.run();
  EXPECT_TRUE(fired);
}

TEST(Simulation, EventsCancelledCounterAccumulates) {
  Simulation sim;
  std::vector<Simulation::EventId> ids;
  for (int i = 0; i < 5; ++i) ids.push_back(sim.at(secs(i + 1), [] {}));
  EXPECT_TRUE(sim.cancel(ids[1]));
  EXPECT_TRUE(sim.cancel(ids[3]));
  EXPECT_FALSE(sim.cancel(ids[3]));                    // double cancel
  EXPECT_FALSE(sim.cancel(Simulation::EventId{}));     // invalid
  EXPECT_EQ(sim.events_cancelled(), 2u);
  EXPECT_EQ(sim.pending(), 3u);
  sim.run();
  EXPECT_EQ(sim.events_fired(), 3u);
  EXPECT_EQ(sim.events_cancelled(), 2u);
}

// Differential model check: pending() and cancel() results must match a
// naive map-based reference across a long random schedule/cancel/advance
// interleaving (this is what flushes slot-recycling bugs out).
TEST(Simulation, PendingMatchesMapReferenceAcross10kRandomOps) {
  Rng rng(0xC0FFEE);
  Simulation sim;
  std::map<std::uint64_t, Tick> model;  // seq -> effective fire time
  std::uint64_t model_fired = 0;
  std::uint64_t model_cancelled = 0;
  std::uint64_t fired = 0;
  for (int op = 0; op < 10'000; ++op) {
    const double dice = rng.uniform();
    if (dice < 0.55) {
      const Tick when = sim.now() + msecs(static_cast<double>(
                                        rng.uniform_u64(0, 5000)));
      const auto id = sim.at(when, [&] { ++fired; });
      ASSERT_TRUE(id.valid());
      ASSERT_TRUE(model.emplace(id.seq, std::max(when, sim.now())).second)
          << "EventId reused while still live, op " << op;
    } else if (dice < 0.85 && !model.empty()) {
      // Cancel a random outstanding handle (sometimes a stale one).
      auto it = model.begin();
      std::advance(it, static_cast<long>(rng.uniform_u64(0, model.size() - 1)));
      const bool stale = rng.chance(0.1);
      const Simulation::EventId id{stale ? it->first ^ (1ULL << 40)
                                         : it->first};
      const bool ok = sim.cancel(id);
      ASSERT_EQ(ok, !stale) << "op " << op;
      if (ok) {
        model.erase(it);
        ++model_cancelled;
      }
    } else {
      const Tick deadline =
          sim.now() + msecs(static_cast<double>(rng.uniform_u64(0, 2000)));
      sim.run_until(deadline);
      for (auto it = model.begin(); it != model.end();) {
        if (it->second <= deadline) {
          it = model.erase(it);
          ++model_fired;
        } else {
          ++it;
        }
      }
    }
    ASSERT_EQ(sim.pending(), model.size()) << "op " << op;
    ASSERT_EQ(fired, model_fired) << "op " << op;
    ASSERT_EQ(sim.events_cancelled(), model_cancelled) << "op " << op;
  }
  sim.run();
  EXPECT_EQ(sim.pending(), 0u);
  EXPECT_EQ(fired, model_fired + model.size());
}

}  // namespace
}  // namespace cpa::sim
