// End-to-end data integrity: fixity checksums recorded at migrate time,
// verified on recall, and repaired by the tape-ordered scrubber.
#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

#include "hsm/hsm.hpp"
#include "integrity/fixity.hpp"
#include "integrity/scrubber.hpp"
#include "simcore/units.hpp"

namespace cpa::integrity {
namespace {

// ------------------------------------------------------------- checksum math

TEST(Fixity, ChecksumIsDeterministicAndSensitiveToEveryInput) {
  const std::uint64_t base = fixity_checksum(7, 4096, 0, 0x5EED);
  EXPECT_EQ(base, fixity_checksum(7, 4096, 0, 0x5EED));
  EXPECT_NE(base, fixity_checksum(8, 4096, 0, 0x5EED));   // id
  EXPECT_NE(base, fixity_checksum(7, 4097, 0, 0x5EED));   // length
  EXPECT_NE(base, fixity_checksum(7, 4096, 1, 0x5EED));   // chunk index
  EXPECT_NE(base, fixity_checksum(7, 4096, 0, 0x5EEE));   // salt
}

TEST(Fixity, FoldOrderMatters) {
  const std::uint64_t h = fixity_mix(1);
  EXPECT_NE(fixity_fold(fixity_fold(h, 2), 3), fixity_fold(fixity_fold(h, 3), 2));
}

// ----------------------------------------------------------------- FixityDb

TEST(FixityDb, RelocateFollowsSegmentMoves) {
  FixityDb db;
  const std::uint64_t id = db.add(42, 1, 3, 100, 0xABCD, 0);
  ASSERT_TRUE(db.relocate(42, 1, 9, 0));
  const FixityRow* row = db.find(id);
  ASSERT_NE(row, nullptr);
  EXPECT_EQ(row->cartridge_id, 9u);
  EXPECT_EQ(row->tape_seq, 0u);
  EXPECT_EQ(row->checksum, 0xABCDu);  // checksum rides along unchanged
  EXPECT_FALSE(db.relocate(42, 1, 9, 0));  // old location gone
}

TEST(FixityDb, EraseObjectDropsAllReplicaRows) {
  FixityDb db;
  db.add(5, 1, 0, 10, 1, 0);
  db.add(5, 2, 0, 10, 1, 1);
  db.add(6, 1, 1, 10, 2, 0);
  EXPECT_TRUE(db.erase_object(5));
  EXPECT_EQ(db.size(), 1u);
  EXPECT_TRUE(db.by_object(5).empty());
  ASSERT_EQ(db.by_object(6).size(), 1u);
}

TEST(ScrubOrder, TapeOrderedSortsByCartridgeThenSeqNaiveKeepsArchiveOrder) {
  FixityDb db;
  // Archive order interleaves cartridges: (2,1) (1,5) (2,0) (1,2).
  db.add(10, 2, 1, 1, 0, 0);
  db.add(11, 1, 5, 1, 0, 0);
  db.add(12, 2, 0, 1, 0, 0);
  db.add(13, 1, 2, 1, 0, 0);

  const auto naive = plan_scrub_order(db, false);
  ASSERT_EQ(naive.size(), 4u);
  EXPECT_EQ(naive[0].object_id, 10u);
  EXPECT_EQ(naive[3].object_id, 13u);

  const auto ordered = plan_scrub_order(db, true);
  ASSERT_EQ(ordered.size(), 4u);
  EXPECT_EQ(ordered[0].object_id, 13u);  // (1,2)
  EXPECT_EQ(ordered[1].object_id, 11u);  // (1,5)
  EXPECT_EQ(ordered[2].object_id, 12u);  // (2,0)
  EXPECT_EQ(ordered[3].object_id, 10u);  // (2,1)
}

TEST(ScrubOrder, UnrepairableRowsAreExcluded) {
  FixityDb db;
  const std::uint64_t a = db.add(1, 1, 0, 1, 0, 0);
  db.add(2, 1, 1, 1, 0, 0);
  db.set_status(a, FixityStatus::Unrepairable);
  const auto rows = plan_scrub_order(db, true);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].object_id, 2u);
}

// ------------------------------------------------------- HSM integration

pfs::FsConfig fs_config() {
  pfs::FsConfig cfg;
  cfg.pools = {pfs::PoolConfig{"fast", 0, 4, false}};
  return cfg;
}

tape::LibraryConfig lib_config() {
  tape::LibraryConfig cfg;
  cfg.drive_count = 4;
  return cfg;
}

hsm::HsmConfig hsm_config(unsigned copies, bool punch) {
  hsm::HsmConfig cfg;
  cfg.tape_copies = copies;
  cfg.punch_after_migrate = punch;
  return cfg;
}

class IntegrityTest : public ::testing::Test {
 protected:
  explicit IntegrityTest(unsigned copies = 2, bool punch = true)
      : fs_(sim_, fs_config()),
        lib_(sim_, net_, lib_config()),
        hsm_(sim_, net_, fs_, lib_, hsm::Fabric::unconstrained(),
             hsm_config(copies, punch)) {}

  void make_file(const std::string& path, std::uint64_t size,
                 std::uint64_t tag) {
    ASSERT_EQ(fs_.mkdirs(pfs::parent_path(path)), pfs::Errc::Ok);
    ASSERT_TRUE(fs_.create(path).ok());
    ASSERT_EQ(fs_.write_all(path, size, tag), pfs::Errc::Ok);
  }

  std::vector<std::string> migrate_files(unsigned n) {
    std::vector<std::string> paths;
    for (unsigned i = 0; i < n; ++i) {
      const std::string p = "/arch/f" + std::to_string(i);
      make_file(p, 50 * kMB, 0x100 + i);
      paths.push_back(p);
    }
    hsm_.migrate_batch(0, paths, "g", nullptr);
    sim_.run();
    return paths;
  }

  ScrubReport scrub(ScrubConfig cfg = {}) {
    std::optional<ScrubReport> report;
    hsm_.scrub(cfg, [&](const ScrubReport& r) { report = r; });
    sim_.run();
    EXPECT_TRUE(report.has_value());
    return report.value_or(ScrubReport{});
  }

  sim::Simulation sim_;
  sim::FlowNetwork net_{sim_};
  pfs::FileSystem fs_;
  tape::TapeLibrary lib_;
  hsm::HsmSystem hsm_;
};

TEST_F(IntegrityTest, MigrationRecordsFixityRowsForEveryReplica) {
  migrate_files(3);
  // 3 files x (primary + copy) = 6 rows, all distinct locations.
  EXPECT_EQ(hsm_.fixity_db().size(), 6u);
  hsm_.fixity_db().for_each([&](const FixityRow& row) {
    tape::Cartridge* cart = lib_.cartridge(row.cartridge_id);
    ASSERT_NE(cart, nullptr);
    const tape::Segment* seg = cart->segment_by_seq(row.tape_seq);
    ASSERT_NE(seg, nullptr);
    EXPECT_EQ(seg->fingerprint, row.checksum);
    EXPECT_EQ(seg->observed_fingerprint(), row.checksum);
  });
}

TEST_F(IntegrityTest, CopiesShareTheirPrimaryChecksum) {
  migrate_files(2);
  hsm_.fixity_db().for_each([&](const FixityRow& row) {
    const auto replicas = hsm_.fixity_db().by_object(row.object_id);
    ASSERT_EQ(replicas.size(), 2u);
    EXPECT_EQ(replicas[0]->checksum, replicas[1]->checksum);
    EXPECT_NE(replicas[0]->cartridge_id, replicas[1]->cartridge_id);
  });
}

TEST_F(IntegrityTest, CleanScrubFindsNothing) {
  migrate_files(4);
  const ScrubReport r = scrub();
  EXPECT_EQ(r.segments_scanned, 8u);
  EXPECT_EQ(r.mismatches, 0u);
  EXPECT_EQ(r.repaired(), 0u);
  EXPECT_EQ(r.unrepairable, 0u);
  EXPECT_TRUE(r.repair_log.empty());
  // Tape order: both cartridges visited exactly once.
  EXPECT_EQ(r.cartridges_visited, 2u);
}

TEST_F(IntegrityTest, ScrubDetectsAndRepairsFromCopyPool) {
  migrate_files(4);
  // Corrupt two primary-volume segments; the copy volume stays clean.
  ASSERT_EQ(lib_.cartridge(1)->corrupt_random_segments(2, 7), 2u);

  const ScrubReport r = scrub();
  EXPECT_EQ(r.mismatches, 2u);
  EXPECT_EQ(r.repaired_from_copy, 2u);
  EXPECT_EQ(r.unrepairable, 0u);
  ASSERT_EQ(r.repair_log.size(), 2u);
  for (const ScrubRepair& rep : r.repair_log) {
    EXPECT_EQ(rep.action, ScrubRepair::Action::RepairedFromCopy);
    EXPECT_NE(rep.new_cartridge, rep.bad_cartridge);
  }

  // Fixity rows follow the rewrite and a second scrub comes back clean.
  hsm_.fixity_db().for_each([&](const FixityRow& row) {
    tape::Cartridge* cart = lib_.cartridge(row.cartridge_id);
    ASSERT_NE(cart, nullptr);
    const tape::Segment* seg = cart->segment_by_seq(row.tape_seq);
    ASSERT_NE(seg, nullptr);
    EXPECT_EQ(seg->object_id, row.object_id);
    EXPECT_EQ(seg->observed_fingerprint(), row.checksum);
  });
  const ScrubReport again = scrub();
  EXPECT_EQ(again.mismatches, 0u);
}

// Plain (non-fixture) plant so a test can build several independent runs.
struct ScrubRunner {
  sim::Simulation sim;
  sim::FlowNetwork net{sim};
  pfs::FileSystem fs{sim, fs_config()};
  tape::TapeLibrary lib{sim, net, lib_config()};
  hsm::HsmSystem hsm{sim,
                     net,
                     fs,
                     lib,
                     hsm::Fabric::unconstrained(),
                     hsm_config(2, true)};

  std::string run(std::uint64_t seed) {
    std::vector<std::string> paths;
    for (unsigned i = 0; i < 6; ++i) {
      const std::string p = "/arch/f" + std::to_string(i);
      fs.mkdirs(pfs::parent_path(p));
      fs.create(p);
      fs.write_all(p, 50 * kMB, 0x100 + i);
      paths.push_back(p);
    }
    hsm.migrate_batch(0, paths, "g", nullptr);
    sim.run();
    lib.cartridge(1)->corrupt_random_segments(3, seed);
    std::string log;
    hsm.scrub({}, [&](const ScrubReport& r) { log = r.render_repair_log(); });
    sim.run();
    return log;
  }
};

TEST(ScrubDeterminism, SameSeedAndPlanGiveIdenticalRepairLogs) {
  ScrubRunner a, b;
  const std::string log_a = a.run(42);
  const std::string log_b = b.run(42);
  EXPECT_FALSE(log_a.empty());
  EXPECT_EQ(log_a, log_b);
}

TEST_F(IntegrityTest, RecallVerifiesFixityAndHealsFromCopy) {
  const auto paths = migrate_files(2);
  // Rot every primary segment; reads still succeed, checksums do not.
  ASSERT_EQ(lib_.cartridge(1)->corrupt_random_segments(2, 3), 2u);

  std::optional<hsm::RecallReport> report;
  hsm_.recall(paths, hsm::RecallOptions{},
              [&](const hsm::RecallReport& r) { report = r; });
  sim_.run();
  ASSERT_TRUE(report.has_value());
  EXPECT_EQ(report->files_recalled, 2u);
  EXPECT_EQ(report->files_failed, 0u);
  EXPECT_EQ(report->files_unrepairable, 0u);
  EXPECT_EQ(report->fixity_mismatches, 2u);
  EXPECT_GE(report->fixity_verified, 2u);
  // The healed files carry the right content.
  EXPECT_EQ(fs_.read_tag(paths[0]).value(), 0x100u);
  EXPECT_EQ(fs_.read_tag(paths[1]).value(), 0x101u);
}

TEST_F(IntegrityTest, RecallWithEveryReplicaRottenIsUnrepairableNotARetryLoop) {
  const auto paths = migrate_files(1);
  // Both the primary and the copy-pool replica are silently corrupted.
  ASSERT_EQ(lib_.cartridge(1)->corrupt_random_segments(1, 1), 1u);
  ASSERT_EQ(lib_.cartridge(2)->corrupt_random_segments(1, 1), 1u);

  std::optional<hsm::RecallReport> report;
  hsm_.recall(paths, hsm::RecallOptions{},
              [&](const hsm::RecallReport& r) { report = r; });
  sim_.run();  // terminates: fixity failure is not a loud-fault retry
  ASSERT_TRUE(report.has_value());
  EXPECT_EQ(report->files_recalled, 0u);
  EXPECT_EQ(report->files_failed, 1u);
  EXPECT_EQ(report->files_unrepairable, 1u);
  EXPECT_GE(report->fixity_mismatches, 2u);  // primary + fallback both failed
}

TEST_F(IntegrityTest, RateLimitedScrubHonorsCeiling) {
  migrate_files(4);
  ScrubConfig cfg;
  cfg.rate_limit_bps = 20.0 * 1e6;  // 20 MB/s ceiling
  const ScrubReport r = scrub(cfg);
  EXPECT_EQ(r.segments_scanned, 8u);
  EXPECT_GT(r.scan_rate_bps(), 0.0);
  EXPECT_LE(r.scan_rate_bps(), cfg.rate_limit_bps);
}

TEST_F(IntegrityTest, ScrubYieldsToConcurrentRecalls) {
  const auto paths = migrate_files(6);
  ScrubConfig cfg;
  cfg.rate_limit_bps = 10.0 * 1e6;  // slow scan: recalls overlap it
  std::optional<ScrubReport> scrub_report;
  hsm_.scrub(cfg, [&](const ScrubReport& r) { scrub_report = r; });
  std::optional<hsm::RecallReport> recall_report;
  sim_.after(sim::secs(1), [&] {
    hsm_.recall({paths[0], paths[3]}, hsm::RecallOptions{},
                [&](const hsm::RecallReport& r) { recall_report = r; });
  });
  sim_.run();
  ASSERT_TRUE(scrub_report.has_value());
  ASSERT_TRUE(recall_report.has_value());
  // The scrub held one drive; the recall got another and finished clean.
  EXPECT_EQ(recall_report->files_recalled, 2u);
  EXPECT_EQ(recall_report->files_failed, 0u);
  EXPECT_EQ(scrub_report->segments_scanned, 12u);
  EXPECT_LE(scrub_report->scan_rate_bps(), cfg.rate_limit_bps);
}

// Single-copy plant: exercises re-migration and exactly-once unrepairable.
struct SingleCopyIntegrityTest : IntegrityTest {
  SingleCopyIntegrityTest() : IntegrityTest(1) {}
};

// Backup semantics: tape copy exists but disk data is NOT punched, so the
// repair lattice can fall back to re-migration.
struct PremigratedIntegrityTest : IntegrityTest {
  PremigratedIntegrityTest() : IntegrityTest(1, /*punch=*/false) {}
};

TEST_F(PremigratedIntegrityTest, ScrubRemigratesFromPremigratedDiskData) {
  const auto paths = migrate_files(2);
  ASSERT_EQ(fs_.stat(paths[0]).value().dmapi, pfs::DmapiState::Premigrated);
  ASSERT_EQ(lib_.cartridge(1)->corrupt_random_segments(1, 5), 1u);

  const ScrubReport r = scrub();
  EXPECT_EQ(r.mismatches, 1u);
  EXPECT_EQ(r.remigrated, 1u);
  EXPECT_EQ(r.repaired_from_copy, 0u);
  EXPECT_EQ(r.unrepairable, 0u);
  EXPECT_EQ(scrub().mismatches, 0u);  // repaired segment verifies now
}

TEST_F(SingleCopyIntegrityTest, UnrepairableIsReportedExactlyOnceAcrossScrubs) {
  migrate_files(2);  // punched: no disk fallback, no copy pool
  ASSERT_EQ(lib_.cartridge(1)->corrupt_random_segments(1, 9), 1u);

  const ScrubReport first = scrub();
  EXPECT_EQ(first.mismatches, 1u);
  EXPECT_EQ(first.repaired(), 0u);
  EXPECT_EQ(first.unrepairable, 1u);
  ASSERT_EQ(first.repair_log.size(), 1u);
  EXPECT_EQ(first.repair_log[0].action, ScrubRepair::Action::Unrepairable);

  // The poisoned row is excluded from later snapshots: scanned segments
  // drop by one and nothing is re-reported.
  const ScrubReport second = scrub();
  EXPECT_EQ(second.segments_scanned, 1u);
  EXPECT_EQ(second.mismatches, 0u);
  EXPECT_EQ(second.unrepairable, 0u);
}

TEST_F(SingleCopyIntegrityTest, FixityRowsStayConsistentAcrossReclamation) {
  const auto paths = migrate_files(8);
  // Kill most of the volume, then reclaim: survivors move to a new one.
  for (unsigned i = 2; i < 8; ++i) {
    hsm_.synchronous_delete(paths[i], nullptr);
  }
  sim_.run();
  EXPECT_EQ(hsm_.fixity_db().size(), 2u);  // deleted objects dropped rows

  std::optional<hsm::ReclaimReport> reclaim;
  hsm_.reclaim_volumes(0.5, 0, [&](const hsm::ReclaimReport& r) { reclaim = r; });
  sim_.run();
  ASSERT_TRUE(reclaim.has_value());
  EXPECT_EQ(reclaim->objects_moved, 2u);

  // Every surviving row points at a live segment whose fingerprint still
  // matches — the relocation carried the checksums with the bits.
  hsm_.fixity_db().for_each([&](const FixityRow& row) {
    EXPECT_NE(row.cartridge_id, 1u);  // off the reclaimed volume
    tape::Cartridge* cart = lib_.cartridge(row.cartridge_id);
    ASSERT_NE(cart, nullptr);
    const tape::Segment* seg = cart->segment_by_seq(row.tape_seq);
    ASSERT_NE(seg, nullptr);
    EXPECT_EQ(seg->object_id, row.object_id);
    EXPECT_EQ(seg->observed_fingerprint(), row.checksum);
  });
  const ScrubReport r = scrub();
  EXPECT_EQ(r.segments_scanned, 2u);
  EXPECT_EQ(r.mismatches, 0u);
}

}  // namespace
}  // namespace cpa::integrity
