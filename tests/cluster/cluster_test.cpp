#include "cluster/cluster.hpp"

#include <gtest/gtest.h>

#include "simcore/units.hpp"

namespace cpa::cluster {
namespace {

pfs::FsConfig archive_config() {
  pfs::FsConfig cfg;
  cfg.name = "archive";
  cfg.pools = {pfs::PoolConfig{"fast", 0, 5, false}};
  return cfg;
}

pfs::FsConfig scratch_config() {
  pfs::FsConfig cfg;
  cfg.name = "scratch";
  cfg.pools = {pfs::PoolConfig{"panfs", 0, 8, false}};
  return cfg;
}

class ClusterTest : public ::testing::Test {
 protected:
  ClusterTest()
      : archive_(sim_, archive_config()),
        scratch_(sim_, scratch_config()),
        cluster_(net_, ClusterConfig{}, archive_, scratch_) {}
  sim::Simulation sim_;
  sim::FlowNetwork net_{sim_};
  pfs::FileSystem archive_;
  pfs::FileSystem scratch_;
  Cluster cluster_;
};

TEST_F(ClusterTest, PoolsExistWithConfiguredCapacities) {
  const ClusterConfig cfg;
  EXPECT_EQ(net_.pool_capacity(cluster_.node_nic(0)), cfg.node_nic_bps);
  EXPECT_EQ(net_.pool_capacity(cluster_.node_hba(3)), cfg.node_hba_bps);
  EXPECT_EQ(net_.pool_capacity(cluster_.san()), cfg.san_bps);
  EXPECT_EQ(net_.pool_capacity(cluster_.trunk_for(0)), cfg.trunk_bps);
}

TEST_F(ClusterTest, TrunksAlternateAcrossNodes) {
  EXPECT_EQ(cluster_.trunk_for(0).idx, cluster_.trunk_for(2).idx);
  EXPECT_EQ(cluster_.trunk_for(1).idx, cluster_.trunk_for(3).idx);
  EXPECT_NE(cluster_.trunk_for(0).idx, cluster_.trunk_for(1).idx);
}

TEST_F(ClusterTest, DiskPathUsesStripedNsds) {
  ASSERT_TRUE(scratch_.create("/big").ok());
  ASSERT_EQ(scratch_.write_all("/big", 100 * kMB, 1), pfs::Errc::Ok);
  const auto pools = cluster_.disk_path(scratch_, "/big", 0, 100 * kMB);
  EXPECT_EQ(pools.size(), 8u);  // wide stripe covers all scratch NSDs
  const auto narrow = cluster_.disk_path(scratch_, "/big", 0, 1000);
  EXPECT_EQ(narrow.size(), 1u);
}

TEST_F(ClusterTest, CopyPathIncludesAllLegs) {
  ASSERT_TRUE(scratch_.create("/src").ok());
  ASSERT_EQ(scratch_.write_all("/src", 100 * kMB, 1), pfs::Errc::Ok);
  ASSERT_TRUE(archive_.create("/dst").ok());
  ASSERT_EQ(archive_.write_all("/dst", 100 * kMB, 1), pfs::Errc::Ok);
  const auto path = cluster_.copy_path(2, scratch_, "/src", archive_, "/dst",
                                       0, 100 * kMB);
  // 8 scratch NSDs + trunk + nic + hba + san + 5 archive NSDs.
  EXPECT_EQ(path.size(), 8u + 4u + 5u);
}

TEST_F(ClusterTest, FabricRoutesThroughExpectedLegs) {
  const hsm::Fabric f = cluster_.fabric();
  ASSERT_TRUE(archive_.create("/f").ok());
  ASSERT_EQ(archive_.write_all("/f", 100 * kMB, 1), pfs::Errc::Ok);
  EXPECT_EQ(f.disk_path("/f", 0, 100 * kMB).size(), 5u);
  EXPECT_EQ(f.san_path(0).size(), 2u);  // hba + san
  EXPECT_EQ(f.lan_path(0).size(), 2u);  // nic + trunk
  // Node ids beyond the cluster wrap instead of crashing.
  EXPECT_EQ(f.san_path(99).size(), 2u);
}

TEST_F(ClusterTest, LoadManagerSortsAscendingWithStableTies) {
  cluster_.add_load(0, 5);
  cluster_.add_load(1, 1);
  cluster_.add_load(2, 3);
  const auto list = cluster_.machine_list();
  ASSERT_EQ(list.size(), 10u);
  EXPECT_EQ(list[0], 3u);  // zero-load nodes first, by id
  EXPECT_EQ(list[7], 1u);
  EXPECT_EQ(list[8], 2u);
  EXPECT_EQ(list[9], 0u);

  cluster_.remove_load(0, 5);
  EXPECT_EQ(cluster_.load(0), 0.0);
  cluster_.remove_load(0, 100);  // clamped at zero
  EXPECT_EQ(cluster_.load(0), 0.0);
}

TEST_F(ClusterTest, SharedTrunkLimitsAggregateBandwidth) {
  // Five nodes on the same trunk can't exceed the trunk's 1250 MB/s.
  ASSERT_TRUE(scratch_.create("/src").ok());
  ASSERT_EQ(scratch_.write_all("/src", kGB, 1), pfs::Errc::Ok);
  std::vector<sim::Tick> done(5);
  for (unsigned i = 0; i < 5; ++i) {
    const NodeId node = i * 2;  // all even nodes share trunk 0
    auto path = cluster_.copy_path(node, scratch_, "/src", archive_, "/src",
                                   0, kGB);
    net_.start_flow(std::move(path), 1000.0 * static_cast<double>(kMB),
                    [&done, i, this](const sim::FlowStats& s) {
                      done[i] = s.finished;
                    });
  }
  sim_.run();
  // 5 GB over a 1250 MB/s trunk >= 4 s even though each NIC could do it
  // alone in 0.8 s.
  for (const sim::Tick t : done) {
    EXPECT_GE(t, sim::secs(3.9));
  }
}

struct SingleFsCluster : ::testing::Test {
  SingleFsCluster()
      : fs_(sim_, archive_config()),
        cluster_(net_, ClusterConfig{}, fs_, fs_) {}
  sim::Simulation sim_;
  sim::FlowNetwork net_{sim_};
  pfs::FileSystem fs_;
  Cluster cluster_;
};

TEST_F(SingleFsCluster, ScratchAliasesArchivePools) {
  ASSERT_TRUE(fs_.create("/f").ok());
  ASSERT_EQ(fs_.write_all("/f", 100 * kMB, 1), pfs::Errc::Ok);
  EXPECT_FALSE(cluster_.disk_path(fs_, "/f", 0, 100 * kMB).empty());
}

}  // namespace
}  // namespace cpa::cluster
