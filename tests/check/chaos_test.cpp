// End-to-end chaos runs (ctest label: chaos).  Bounded op counts keep
// each case in the low seconds, but every one drives a whole simulated
// plant through a randomized faulted campaign, so they sit outside the
// tier-1 gate.
#include <gtest/gtest.h>

#include "check/runner.hpp"
#include "check/shrink.hpp"

namespace cpa::check {
namespace {

TEST(Chaos, FaultedCampaignCompletesWithZeroViolations) {
  const ChaosConfig cfg = ChaosConfig{}.with_seed(1).with_ops(120);
  const ChaosResult r = run_chaos(cfg);
  EXPECT_TRUE(r.ok()) << r.render_violations();
  EXPECT_EQ(r.ops_executed + r.ops_skipped, 120u);
  EXPECT_GT(r.jobs_submitted, 0u);
  EXPECT_GT(r.drained_at, 0u);
}

TEST(Chaos, SameSeedReplaysToIdenticalDigest) {
  const ChaosConfig cfg = ChaosConfig{}.with_seed(7).with_ops(100);
  const ChaosResult a = run_chaos(cfg);
  const ChaosResult b = run_chaos(cfg);
  ASSERT_TRUE(a.ok()) << a.render_violations();
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.log, b.log);
  EXPECT_EQ(a.state_digest, b.state_digest);
}

TEST(Chaos, RecoveredFaultedRunMatchesFaultFreeTwinState) {
  // The metamorphic oracle: faults that were fully ridden out must leave
  // the plant in the same logical final state as never having happened.
  // Cancels and corruptions stay off so the op stream is twin-comparable.
  const ChaosConfig cfg = ChaosConfig{}
                              .with_seed(5)
                              .with_ops(90)
                              .with_cancels(false)
                              .with_corruptions(false);
  const ChaosResult faulted = run_chaos(cfg);
  ASSERT_TRUE(faulted.ok()) << faulted.render_violations();
  if (!faulted.fully_recovered) {
    GTEST_SKIP() << "seed 5 no longer fully recovers; pick a new seed";
  }
  const ChaosResult twin = run_chaos(cfg.fault_free_twin());
  ASSERT_TRUE(twin.ok()) << twin.render_violations();
  EXPECT_EQ(faulted.state_digest, twin.state_digest)
      << "faulted:\n" << faulted.state << "\ntwin:\n" << twin.state;
}

TEST(Chaos, DoctoredScrubBugIsCaughtAndShrinks) {
  // Self-test: sabotage a tape segment after the final sweep and prove
  // the oracles flag it and the shrinker reduces the repro.
  const ChaosConfig cfg = ChaosConfig{}.with_seed(11).with_ops(120).with_doctor(
      Doctor::BreakScrubRepair);
  const ChaosResult r = run_chaos(cfg);
  ASSERT_FALSE(r.ok()) << "doctored run failed to trip any oracle";
  const auto shrunk = shrink(ChaosCampaign::generate(cfg));
  ASSERT_TRUE(shrunk.has_value());
  EXPECT_FALSE(shrunk->failure.ok());
  EXPECT_LT(shrunk->minimal.ops.size(), 120u / 2);
  EXPECT_GT(shrunk->runs, 0u);
}

TEST(Chaos, DoctoredFixityDropIsCaught) {
  const ChaosConfig cfg =
      ChaosConfig{}.with_seed(11).with_ops(120).with_doctor(
          Doctor::DropFixityRow);
  const ChaosResult r = run_chaos(cfg);
  ASSERT_FALSE(r.ok());
  bool fixity = false;
  for (const Violation& v : r.violations) {
    if (v.invariant == "fixity-consistency") fixity = true;
  }
  EXPECT_TRUE(fixity) << r.render_violations();
}

TEST(Chaos, CrashCampaignCompletesWithZeroViolations) {
  // Whole-archive power failures mid-campaign: every durably-acked file
  // must still restore byte-exact after WAL recovery + reconciliation.
  const ChaosConfig cfg =
      ChaosConfig{}.with_seed(20).with_ops(150).with_crashes(true);
  const ChaosResult r = run_chaos(cfg);
  EXPECT_TRUE(r.ok()) << r.render_violations();
  EXPECT_EQ(r.ops_executed + r.ops_skipped, 150u);
  EXPECT_GT(r.jobs_submitted, 0u);
}

TEST(Chaos, CrashCampaignReplaysToIdenticalDigest) {
  const ChaosConfig cfg =
      ChaosConfig{}.with_seed(6).with_ops(120).with_crashes(true);
  const ChaosResult a = run_chaos(cfg);
  const ChaosResult b = run_chaos(cfg);
  ASSERT_TRUE(a.ok()) << a.render_violations();
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.state_digest, b.state_digest);
}

TEST(Chaos, QuiescentCrashRecoverMatchesCrashFreeState) {
  // The crash metamorphic gate: power-fail a fully drained plant, recover
  // it, and the logical state must equal the run that never crashed.
  const ChaosResult plain =
      run_chaos(ChaosConfig{}.with_seed(9).with_ops(100));
  ASSERT_TRUE(plain.ok()) << plain.render_violations();
  const ChaosResult crashed = run_chaos(
      ChaosConfig{}.with_seed(9).with_ops(100).with_quiescent_crash(true));
  ASSERT_TRUE(crashed.ok()) << crashed.render_violations();
  EXPECT_EQ(crashed.state_digest, plain.state_digest)
      << "crashed:\n" << crashed.state << "\nplain:\n" << plain.state;
}

TEST(Chaos, FaultedCampaignWithBatchingCompletesWithZeroViolations) {
  // Same adversity, batched metadata path: every oracle (no-lost-files,
  // fixity, structural, profiler conservation) must hold when the object
  // DB round-trips are group-committed 8 at a time.
  const ChaosConfig cfg =
      ChaosConfig{}.with_seed(1).with_ops(120).with_md_batch(8);
  const ChaosResult r = run_chaos(cfg);
  EXPECT_TRUE(r.ok()) << r.render_violations();
  EXPECT_EQ(r.ops_executed + r.ops_skipped, 120u);
  EXPECT_GT(r.jobs_submitted, 0u);
}

TEST(Chaos, CrashCampaignWithBatchingCompletesWithZeroViolations) {
  // Power failures landing on in-flight batches: the torn-whole contract
  // (no partial batch survives into the recovered catalog) is what keeps
  // the no-lost-files and fixity oracles green here.
  const ChaosConfig cfg = ChaosConfig{}
                              .with_seed(20)
                              .with_ops(150)
                              .with_crashes(true)
                              .with_md_batch(8);
  const ChaosResult r = run_chaos(cfg);
  EXPECT_TRUE(r.ok()) << r.render_violations();
  EXPECT_EQ(r.ops_executed + r.ops_skipped, 150u);
}

TEST(Chaos, BatchedStateMatchesSingletonState) {
  // Metamorphic equivalence: batching changes *when* metadata lands, not
  // *what* lands.  Over benign campaigns (no faults/cancels/corruption —
  // those legitimately couple outcomes to timing) the final logical state
  // must be identical at any batch size.
  for (const std::uint64_t seed : {3ULL, 14ULL, 27ULL}) {
    const ChaosConfig base = ChaosConfig{}
                                 .with_seed(seed)
                                 .with_ops(90)
                                 .with_faults(false)
                                 .with_corruptions(false)
                                 .with_cancels(false);
    const ChaosResult singleton = run_chaos(base);
    ASSERT_TRUE(singleton.ok()) << singleton.render_violations();
    for (const unsigned b : {4u, 16u}) {
      ChaosConfig batched = base;
      batched.with_md_batch(b);
      const ChaosResult r = run_chaos(batched);
      ASSERT_TRUE(r.ok()) << "seed=" << seed << " batch=" << b << "\n"
                          << r.render_violations();
      EXPECT_EQ(r.state_digest, singleton.state_digest)
          << "seed=" << seed << " batch=" << b << "\nbatched:\n"
          << r.state << "\nsingleton:\n" << singleton.state;
    }
  }
}

TEST(Chaos, ReproLineRoundTripsTheConfig) {
  const ChaosConfig cfg = ChaosConfig{}
                              .with_seed(99)
                              .with_ops(40)
                              .with_corruptions(false)
                              .with_md_batch(8)
                              .with_doctor(Doctor::DropFixityRow);
  const std::string line = repro_line(cfg);
  EXPECT_NE(line.find("--seed=99"), std::string::npos);
  EXPECT_NE(line.find("--ops=40"), std::string::npos);
  EXPECT_NE(line.find("--no-corruptions"), std::string::npos);
  EXPECT_NE(line.find("--md-batch=8"), std::string::npos);
  EXPECT_NE(line.find("--doctor=fixity"), std::string::npos);
}

}  // namespace
}  // namespace cpa::check
