// Deep chaos sweep (ctest labels: chaos;slow).  Wider and longer than
// chaos_test: a block of consecutive seeds at full campaign length, the
// acceptance bar the harness was landed against.  CPA_CHECK_OPS scales
// campaign length the same way it does for the cpa_check CLI.
#include <gtest/gtest.h>

#include <cstdlib>

#include "check/runner.hpp"

namespace cpa::check {
namespace {

unsigned ops_budget() {
  if (const char* env = std::getenv("CPA_CHECK_OPS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v > 0) return static_cast<unsigned>(v);
  }
  return 300;
}

TEST(DeepSweep, TenConsecutiveSeedsAtFullLengthStayClean) {
  const unsigned ops = ops_budget();
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const ChaosConfig cfg = ChaosConfig{}.with_seed(seed).with_ops(ops);
    const ChaosResult r = run_chaos(cfg);
    EXPECT_TRUE(r.ok()) << "seed " << seed << ":\n"
                        << r.render_violations()
                        << "repro: " << repro_line(cfg);
    EXPECT_EQ(r.ops_executed + r.ops_skipped, ops) << "seed " << seed;
  }
}

}  // namespace
}  // namespace cpa::check
