// Two race classes past bugs came from, pinned as fixed regression tests:
//   * JobHandle::cancel racing admission -> launch (the deferred-launch
//     window: an admitted job whose launch event is already queued must
//     not be cancellable, and must run exactly once either way), and
//   * a fixity scrub holding a drive while a tenant-quota-throttled
//     recall storm contends for the rest (no deadlock, no starvation
//     past the aging bound, every restore verified).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "archive/system.hpp"
#include "check/invariants.hpp"
#include "integrity/scrubber.hpp"

namespace cpa::check {
namespace {

using archive::CotsParallelArchive;
using archive::JobHandle;
using archive::JobSpec;
using archive::JobState;
using archive::SystemConfig;

void make_tree(CotsParallelArchive& sys, const std::string& root, int files,
               std::uint64_t bytes = 20 * kMB) {
  for (int i = 0; i < files; ++i) {
    ASSERT_EQ(sys.make_file(sys.scratch(), root + "/f" + std::to_string(i),
                            bytes, 0xF00 + static_cast<std::uint64_t>(i)),
              pfs::Errc::Ok);
  }
}

TEST(CancelRace, CancelInDeferredLaunchWindowLosesAndJobRunsOnce) {
  CotsParallelArchive sys(SystemConfig::small().with_sched(
      sched::SchedConfig{}.with_max_running_jobs(1)));
  make_tree(sys, "/a", 2);
  JobHandle j = sys.submit(JobSpec::pfcp("/a", "/proj/a"));
  // Admitted, launch deferred one event: the handle still reads Queued.
  ASSERT_EQ(j.state(), JobState::Queued);
  bool cancel_result = true;
  // Race the cancel through the event loop, exactly like a chaos
  // campaign does: it fires after the deferred launch, so it must lose.
  sys.sim().after(0, [&] { cancel_result = j.cancel(); });
  sys.sim().run();
  EXPECT_FALSE(cancel_result);
  EXPECT_EQ(j.state(), JobState::Succeeded);
  EXPECT_EQ(j.attempts(), 1u);  // ran exactly once, never double-launched
  EXPECT_EQ(j.report().files_copied, 2u);
  EXPECT_EQ(sys.observer().metrics().counter_value("sched.cancelled"), 0u);
}

TEST(CancelRace, CancelLandsOnQueuedJobAndResubmitCompletes) {
  CotsParallelArchive sys(SystemConfig::small().with_sched(
      sched::SchedConfig{}.with_max_running_jobs(1)));
  make_tree(sys, "/a", 2);
  make_tree(sys, "/b", 2);
  JobHandle j1 = sys.submit(JobSpec::pfcp("/a", "/proj/a"));
  JobHandle j2 = sys.submit(JobSpec::pfcp("/b", "/proj/b"));
  bool landed = false;
  JobHandle j3;
  // Cancel j2 while it is genuinely queued behind j1's slot, then
  // resubmit — the chaos runner's cancel-once-then-go idiom.  One tick:
  // past j1's deferred launch, before j1 frees the slot.
  sys.sim().after(1, [&] {
    landed = j2.cancel();
    j3 = sys.submit(JobSpec::pfcp("/b", "/proj/b"));
  });
  sys.sim().run();
  EXPECT_TRUE(landed);
  EXPECT_EQ(j2.state(), JobState::Cancelled);
  EXPECT_EQ(j2.attempts(), 0u);  // the cancelled incarnation never ran
  EXPECT_EQ(j1.state(), JobState::Succeeded);
  EXPECT_EQ(j3.state(), JobState::Succeeded);
  EXPECT_EQ(j3.report().files_copied, 2u);
}

TEST(ScrubStorm, QuotaThrottledRecallStormSurvivesConcurrentScrub) {
  SystemConfig cfg = SystemConfig::small()
                         .with_tracing(true)
                         .with_sched(sched::SchedConfig{})
                         .with_tenant_quota(
                             "t0", sched::TenantQuota{}.with_max_drives(2));
  cfg.hsm.tape_copies = 2;
  CotsParallelArchive sys(cfg);

  // Archive + migrate four trees so recalls genuinely mount tape.
  for (int t = 0; t < 4; ++t) {
    const std::string root = "/storm/t" + std::to_string(t);
    make_tree(sys, root, 3);
    ASSERT_EQ(sys.pfcp_archive(root, "/arch/t" + std::to_string(t))
                  .files_failed,
              0u);
  }
  pfs::Rule rule;
  rule.name = "all";
  rule.action = pfs::Rule::Action::List;
  rule.where = {pfs::Condition::dmapi_is(pfs::DmapiState::Resident)};
  sys.policy().add_rule(rule);
  bool migrated = false;
  sys.run_migration_cycle("all", "g", [&](const hsm::MigrateReport& r) {
    migrated = true;
    ASSERT_EQ(r.files_failed, 0u);
  });
  sys.sim().run();
  ASSERT_TRUE(migrated);

  // Scrub (holds one drive for the whole pass, Maintenance QoS) ...
  bool scrubbed = false;
  sys.hsm().scrub(integrity::ScrubConfig().with_tenant("maint"),
                  [&](const integrity::ScrubReport& r) {
                    scrubbed = true;
                    EXPECT_EQ(r.mismatches, 0u);
                    EXPECT_GT(r.segments_scanned, 0u);
                  });
  // ... while tenant t0, capped at two drives, storms the recall path.
  std::vector<JobHandle> storm;
  for (int t = 0; t < 4; ++t) {
    storm.push_back(
        sys.submit(JobSpec::pfcp_restore("/arch/t" + std::to_string(t),
                                         "/restage/t" + std::to_string(t))
                       .with_tenant("t0")
                       .with_qos(sched::QosClass::Bulk)
                       .with_verified(true)));
  }
  sys.sim().run();

  EXPECT_TRUE(scrubbed);  // the scrub was not starved out by the storm
  for (int t = 0; t < 4; ++t) {
    EXPECT_EQ(storm[static_cast<std::size_t>(t)].state(),
              JobState::Succeeded)
        << "storm job " << t;
    EXPECT_TRUE(storm[static_cast<std::size_t>(t)].fixity_clean());
    for (int i = 0; i < 3; ++i) {
      const auto tag = sys.scratch().read_tag(
          "/restage/t" + std::to_string(t) + "/f" + std::to_string(i));
      ASSERT_TRUE(tag.ok());
      EXPECT_EQ(tag.value(), 0xF00 + static_cast<std::uint64_t>(i));
    }
  }
  // The cross-subsystem oracles hold over the aftermath, starvation
  // bound included (4 storm jobs + the archives that staged the data).
  InvariantRegistry reg;
  const sim::Tick max_service = sys.sim().now();  // generous upper bound
  const unsigned jobs = 8;
  OracleInputs in;
  in.max_service = &max_service;
  in.jobs_submitted = &jobs;
  register_standard_oracles(reg, sys, in);
  reg.run_final(sys.sim().now());
  EXPECT_TRUE(reg.ok()) << reg.render_violations();
}

}  // namespace
}  // namespace cpa::check
