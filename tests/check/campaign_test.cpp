// Campaign generation: determinism, the metamorphic twin contract, and
// the knob wiring into the generated plant.
#include <gtest/gtest.h>

#include "check/campaign.hpp"

namespace cpa::check {
namespace {

TEST(Campaign, SameSeedGeneratesIdenticalCampaign) {
  const ChaosConfig cfg = ChaosConfig{}.with_seed(42).with_ops(120);
  const ChaosCampaign a = ChaosCampaign::generate(cfg);
  const ChaosCampaign b = ChaosCampaign::generate(cfg);
  EXPECT_EQ(a.render(), b.render());
  EXPECT_EQ(fnv1a64(a.render()), fnv1a64(b.render()));
}

TEST(Campaign, DifferentSeedsDiverge) {
  const ChaosCampaign a =
      ChaosCampaign::generate(ChaosConfig{}.with_seed(1).with_ops(60));
  const ChaosCampaign b =
      ChaosCampaign::generate(ChaosConfig{}.with_seed(2).with_ops(60));
  EXPECT_NE(a.render(), b.render());
}

TEST(Campaign, OpBudgetAndLaneDerivationHold) {
  const ChaosCampaign c =
      ChaosCampaign::generate(ChaosConfig{}.with_seed(7).with_ops(96));
  EXPECT_EQ(c.ops.size(), 96u);
  EXPECT_EQ(c.lane_count(), 8u);  // clamp(96 / 12, 2, 8)
  for (const ChaosOp& op : c.ops) {
    // Job ops target a real lane; maintenance ops use lane == lane_count.
    EXPECT_LE(op.lane, c.lane_count());
    if (op.kind == OpKind::Scrub || op.kind == OpKind::Reconcile) {
      EXPECT_EQ(op.lane, c.lane_count());
    }
  }
}

TEST(Campaign, FaultFreeTwinKeepsOpsDropsFaults) {
  const ChaosConfig cfg = ChaosConfig{}.with_seed(13).with_ops(80);
  const ChaosCampaign full = ChaosCampaign::generate(cfg);
  const ChaosCampaign twin = ChaosCampaign::generate(cfg.fault_free_twin());
  ASSERT_EQ(full.ops.size(), twin.ops.size());
  for (std::size_t i = 0; i < full.ops.size(); ++i) {
    EXPECT_EQ(full.ops[i].render(), twin.ops[i].render()) << "op " << i;
  }
  EXPECT_FALSE(full.fault_plan.empty());
  EXPECT_TRUE(twin.fault_plan.empty());
}

TEST(Campaign, DisablingCorruptionsKeepsWindowFaults) {
  const ChaosConfig cfg =
      ChaosConfig{}.with_seed(13).with_ops(200).with_corruptions(false);
  const ChaosCampaign c = ChaosCampaign::generate(cfg);
  EXPECT_FALSE(c.fault_plan.empty());
  for (const fault::FaultEvent& ev : c.fault_plan.events) {
    EXPECT_NE(ev.kind, fault::FaultKind::Corrupt);
  }
}

TEST(Campaign, DisablingCancelsRemovesRaces) {
  const ChaosCampaign c = ChaosCampaign::generate(
      ChaosConfig{}.with_seed(21).with_ops(300).with_cancels(false));
  for (const ChaosOp& op : c.ops) {
    EXPECT_LT(op.cancel_after, 0);
  }
}

TEST(Campaign, PlantWiresQuotasCopiesAndPlan) {
  const ChaosCampaign c =
      ChaosCampaign::generate(ChaosConfig{}.with_seed(3).with_ops(100));
  const archive::SystemConfig sys = plant_for(c);
  EXPECT_TRUE(sys.sched.enabled);
  EXPECT_EQ(sys.hsm.tape_copies, 2u);
  EXPECT_TRUE(sys.pftool.restartable);
  EXPECT_EQ(sys.fault_plan.render(), c.fault_plan.render());
  // Tenant t0 is drive-throttled so recall storms contend under quota.
  const auto t0 = sys.sched.tenants.find("t0");
  ASSERT_NE(t0, sys.sched.tenants.end());
  EXPECT_EQ(t0->second.max_drives, 2u);
}

TEST(Campaign, Fnv1a64MatchesKnownVector) {
  // FNV-1a 64 test vector: fnv1a64("a") from the reference parameters.
  EXPECT_EQ(fnv1a64(""), 14695981039346656037ULL);
  EXPECT_EQ(fnv1a64("a"), 12638187200555641996ULL);
}

}  // namespace
}  // namespace cpa::check
