// The invariant registry and the standard cross-subsystem oracles: a
// healthy plant passes, and each seeded inconsistency class is caught.
#include <gtest/gtest.h>

#include <string>

#include "archive/system.hpp"
#include "check/invariants.hpp"

namespace cpa::check {
namespace {

class OracleTest : public ::testing::Test {
 protected:
  OracleTest()
      : sys_(archive::SystemConfig::small()
                 .with_tracing(true)
                 .with_servers(1)) {}

  /// Archives and migrates a small tree so fixity rows, tape segments and
  /// server objects all exist.
  void populate() {
    for (int i = 0; i < 3; ++i) {
      ASSERT_EQ(sys_.make_file(sys_.scratch(), "/t/f" + std::to_string(i),
                               8 * kMB, 0x100 + i),
                pfs::Errc::Ok);
    }
    ASSERT_EQ(sys_.pfcp_archive("/t", "/arch/t").files_copied, 3u);
    pfs::Rule rule;
    rule.name = "all";
    rule.action = pfs::Rule::Action::List;
    rule.where = {pfs::Condition::dmapi_is(pfs::DmapiState::Resident)};
    sys_.policy().add_rule(rule);
    bool done = false;
    sys_.run_migration_cycle("all", "g", [&](const hsm::MigrateReport& r) {
      done = true;
      ASSERT_EQ(r.files_failed, 0u);
    });
    sys_.sim().run();
    ASSERT_TRUE(done);
  }

  InvariantRegistry& registered() {
    register_standard_oracles(reg_, sys_, OracleInputs{});
    return reg_;
  }

  archive::CotsParallelArchive sys_;
  InvariantRegistry reg_;
};

TEST_F(OracleTest, HealthyPlantPassesAllOracles) {
  populate();
  registered().run_final(sys_.sim().now());
  EXPECT_TRUE(reg_.ok()) << reg_.render_violations();
}

TEST_F(OracleTest, UnplannedRotTripsFixityConsistency) {
  populate();
  tape::Cartridge* victim = nullptr;
  sys_.library().for_each_cartridge([&](tape::Cartridge& c) {
    if (victim == nullptr && c.segment_count() > 0) victim = &c;
  });
  ASSERT_NE(victim, nullptr);
  ASSERT_EQ(victim->corrupt_random_segments(1, 99), 1u);
  registered().run_final(sys_.sim().now());
  ASSERT_FALSE(reg_.ok());
  EXPECT_EQ(reg_.violations().front().invariant, "fixity-consistency");
  EXPECT_NE(reg_.violations().front().detail.find("undetected corruption"),
            std::string::npos);
}

TEST_F(OracleTest, PlannedRotIsExemptUntilDetection) {
  populate();
  tape::Cartridge* victim = nullptr;
  sys_.library().for_each_cartridge([&](tape::Cartridge& c) {
    if (victim == nullptr && c.segment_count() > 0) victim = &c;
  });
  ASSERT_NE(victim, nullptr);
  ASSERT_EQ(victim->corrupt_random_segments(1, 99), 1u);
  OracleInputs in;
  in.corrupt_cartridges.push_back(victim->id());
  register_standard_oracles(reg_, sys_, in);
  reg_.run_final(sys_.sim().now());
  EXPECT_TRUE(reg_.ok()) << reg_.render_violations();
}

TEST_F(OracleTest, DroppedFixityRowTripsTheReverseWalk) {
  populate();
  std::uint64_t obj = 0;
  sys_.hsm().server(0).for_each_object([&](const hsm::ArchiveObject& o) {
    if (obj == 0 && !o.is_member() && o.cartridge_id != 0) obj = o.object_id;
  });
  ASSERT_NE(obj, 0u);
  ASSERT_TRUE(sys_.hsm().fixity_db().erase_object(obj));
  registered().run_final(sys_.sim().now());
  ASSERT_FALSE(reg_.ok());
  EXPECT_EQ(reg_.violations().front().invariant, "fixity-consistency");
  EXPECT_NE(reg_.violations().front().detail.find("no fixity row"),
            std::string::npos);
}

TEST_F(OracleTest, ContinuousChecksRunOnTheProbeCadence) {
  int calls = 0;
  reg_.add_continuous("counter", [&]() -> std::optional<std::string> {
    ++calls;
    return std::nullopt;
  });
  CheckProbe probe(nullptr, reg_, /*every_events=*/4);
  for (int i = 0; i < 12; ++i) probe.on_event_fired(i);
  EXPECT_EQ(calls, 3);
}

TEST_F(OracleTest, ReportedViolationsRenderWithTimestamps) {
  reg_.report("custom", "something broke", sim::secs(5));
  ASSERT_EQ(reg_.violations().size(), 1u);
  const std::string r = reg_.violations().front().render();
  EXPECT_NE(r.find("VIOLATION custom"), std::string::npos);
  EXPECT_NE(r.find("something broke"), std::string::npos);
  EXPECT_FALSE(reg_.ok());
}

TEST_F(OracleTest, FinalRunsIncludeContinuousChecks) {
  int continuous = 0;
  int final_only = 0;
  reg_.add_continuous("c", [&]() -> std::optional<std::string> {
    ++continuous;
    return std::nullopt;
  });
  reg_.add_final("f", [&]() -> std::optional<std::string> {
    ++final_only;
    return std::nullopt;
  });
  reg_.run_continuous(0);
  EXPECT_EQ(continuous, 1);
  EXPECT_EQ(final_only, 0);
  reg_.run_final(0);
  EXPECT_EQ(continuous, 2);
  EXPECT_EQ(final_only, 1);
}

}  // namespace
}  // namespace cpa::check
