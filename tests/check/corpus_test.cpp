// Replays tests/check/seed_corpus.txt — seeds that once exercised real
// bug classes — as fixed regression tests (ctest label: chaos).
#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "check/runner.hpp"

namespace cpa::check {
namespace {

struct CorpusEntry {
  std::uint64_t seed = 0;
  unsigned ops = 300;
  std::string comment;
};

std::vector<CorpusEntry> load_corpus() {
  const std::string path =
      std::string(CPA_SOURCE_DIR) + "/tests/check/seed_corpus.txt";
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "missing " << path;
  std::vector<CorpusEntry> entries;
  std::string line;
  while (std::getline(in, line)) {
    const std::size_t hash = line.find('#');
    std::string comment;
    if (hash != std::string::npos) {
      comment = line.substr(hash + 1);
      line = line.substr(0, hash);
    }
    std::istringstream ls(line);
    CorpusEntry e;
    if (!(ls >> e.seed)) continue;  // blank or comment-only line
    ls >> e.ops;                    // optional; default stands on failure
    e.comment = comment;
    entries.push_back(e);
  }
  return entries;
}

TEST(SeedCorpus, EveryKnownInterestingSeedStaysClean) {
  const std::vector<CorpusEntry> corpus = load_corpus();
  ASSERT_FALSE(corpus.empty());
  for (const CorpusEntry& e : corpus) {
    const ChaosConfig cfg = ChaosConfig{}.with_seed(e.seed).with_ops(e.ops);
    const ChaosResult r = run_chaos(cfg);
    EXPECT_TRUE(r.ok()) << "seed " << e.seed << " (" << e.comment
                        << ") regressed:\n"
                        << r.render_violations() << "repro: "
                        << repro_line(cfg);
    EXPECT_EQ(r.ops_executed + r.ops_skipped, e.ops)
        << "seed " << e.seed << " lost ops";
  }
}

}  // namespace
}  // namespace cpa::check
