// AdmissionScheduler unit tests: fair-share ratios, strict QoS priority
// with aging (the starvation bound), per-tenant quotas, drive arbitration,
// bandwidth shaper pools, and determinism of the admission order.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/observer.hpp"
#include "sched/scheduler.hpp"
#include "simcore/flow_network.hpp"
#include "simcore/simulation.hpp"

namespace cpa::sched {
namespace {

class SchedTest : public ::testing::Test {
 protected:
  /// Builds the scheduler with `cfg` and records every launch.
  AdmissionScheduler& make(SchedConfig cfg, double total_bps = 2500e6) {
    sched_ = std::make_unique<AdmissionScheduler>(sim_, net_, obs_,
                                                  std::move(cfg), total_bps);
    sched_->set_launcher([this](std::uint64_t id) { launched_.push_back(id); });
    return *sched_;
  }

  sim::Simulation sim_;
  sim::FlowNetwork net_{sim_};
  obs::Observer obs_{obs::ObsConfig{}};
  std::unique_ptr<AdmissionScheduler> sched_;
  std::vector<std::uint64_t> launched_;
};

TEST_F(SchedTest, AdmitsUpToGlobalCapThenQueues) {
  auto& s = make(SchedConfig{}.with_enabled().with_max_running_jobs(2));
  EXPECT_EQ(s.offer(1, "a", QosClass::Bulk), AdmissionScheduler::Offer::Admitted);
  EXPECT_EQ(s.offer(2, "a", QosClass::Bulk), AdmissionScheduler::Offer::Admitted);
  EXPECT_EQ(s.offer(3, "a", QosClass::Bulk), AdmissionScheduler::Offer::Queued);
  EXPECT_EQ(s.running(), 2u);
  EXPECT_EQ(s.queued(), 1u);
  sim_.run();
  ASSERT_EQ(launched_.size(), 2u);  // the queued job waits for a slot
  s.job_finished(1);
  sim_.run();
  EXPECT_EQ(launched_.size(), 3u);
  EXPECT_EQ(launched_.back(), 3u);
}

TEST_F(SchedTest, RejectsWhenQueueFull) {
  auto& s = make(
      SchedConfig{}.with_enabled().with_max_running_jobs(1).with_max_queue(2));
  EXPECT_EQ(s.offer(1, "a", QosClass::Bulk), AdmissionScheduler::Offer::Admitted);
  EXPECT_EQ(s.offer(2, "a", QosClass::Bulk), AdmissionScheduler::Offer::Queued);
  EXPECT_EQ(s.offer(3, "a", QosClass::Bulk), AdmissionScheduler::Offer::Queued);
  EXPECT_EQ(s.offer(4, "a", QosClass::Bulk),
            AdmissionScheduler::Offer::Rejected);
  EXPECT_EQ(obs_.metrics().counter("sched.rejected").value(), 1u);
}

TEST_F(SchedTest, InteractiveOutranksQueuedBulk) {
  auto& s = make(SchedConfig{}.with_enabled().with_max_running_jobs(1));
  s.offer(1, "batch", QosClass::Bulk);        // runs
  s.offer(2, "batch", QosClass::Bulk);        // queued first
  s.offer(3, "ana", QosClass::Interactive);   // queued second, higher class
  s.job_finished(1);
  ASSERT_EQ(s.admission_log().size(), 2u);
  EXPECT_EQ(s.admission_log()[1], 3u);  // the Interactive job jumped
}

TEST_F(SchedTest, FairShareFollowsWeights) {
  // Tenants a (weight 3) and b (weight 1) contend in the same class; over
  // 40 single-slot admissions a should get ~3x b's share.
  auto& s = make(SchedConfig{}
                     .with_enabled()
                     .with_max_running_jobs(1)
                     .with_max_queue(1024)
                     .with_tenant("a", TenantQuota{}.with_weight(3.0))
                     .with_tenant("b", TenantQuota{}.with_weight(1.0)));
  std::uint64_t id = 1;
  s.offer(id++, "a", QosClass::Bulk);  // occupies the slot
  for (int i = 0; i < 40; ++i) {
    s.offer(id++, "a", QosClass::Bulk);
    s.offer(id++, "b", QosClass::Bulk);
  }
  unsigned a = 0;
  unsigned b = 0;
  // Drain 40 slot turnovers; count whose jobs got in.
  for (int i = 0; i < 40; ++i) {
    const std::uint64_t last = s.admission_log().back();
    s.job_finished(last);
    if (s.admission_log().back() % 2 == 0) {  // a's ids are even here
      ++a;
    } else {
      ++b;
    }
  }
  EXPECT_GE(a, 28u);  // ~30 expected for a 3:1 split
  EXPECT_LE(a, 32u);
  EXPECT_EQ(a + b, 40u);
}

TEST_F(SchedTest, IdleTenantBanksNoCredit) {
  // Tenant a admits many jobs while b is absent; when b shows up it must
  // not monopolize the slot replaying "saved" virtual time.
  auto& s = make(SchedConfig{}
                     .with_enabled()
                     .with_max_running_jobs(1)
                     .with_max_queue(1024));
  std::uint64_t id = 2;
  s.offer(1, "a", QosClass::Bulk);
  for (int i = 0; i < 10; ++i) {
    s.offer(id, "a", QosClass::Bulk);
    s.job_finished(s.admission_log().back());
    id += 2;
  }
  // Now both contend: ids alternate a (even), b (odd).
  for (int i = 0; i < 10; ++i) {
    s.offer(id++, "a", QosClass::Bulk);
    s.offer(id++, "b", QosClass::Bulk);
  }
  unsigned b_got = 0;
  for (int i = 0; i < 10; ++i) {
    s.job_finished(s.admission_log().back());
    if (s.admission_log().back() % 2 == 1) ++b_got;
  }
  // Equal weights -> roughly half each; banked credit would give b all 10.
  EXPECT_GE(b_got, 4u);
  EXPECT_LE(b_got, 6u);
}

TEST_F(SchedTest, AgingBoundsStarvation) {
  auto& s = make(SchedConfig{}
                     .with_enabled()
                     .with_max_running_jobs(1)
                     .with_aging_step(sim::minutes(1))
                     .with_aging_max_boost(3));
  s.offer(1, "a", QosClass::Interactive);     // runs
  s.offer(2, "m", QosClass::Maintenance);     // queued, lowest class
  // Advance past the aging bound; the Maintenance job now outranks any
  // fresh Interactive submit.
  sim_.after(s.aging_bound(), [] {});
  sim_.run();
  s.offer(3, "a", QosClass::Interactive);
  s.job_finished(1);
  ASSERT_GE(s.admission_log().size(), 2u);
  EXPECT_EQ(s.admission_log()[1], 2u);
  EXPECT_GE(s.max_queue_wait(), s.aging_bound());
}

TEST_F(SchedTest, PerTenantRunningCapHoldsSlotOpen) {
  auto& s = make(
      SchedConfig{}
          .with_enabled()
          .with_max_running_jobs(4)
          .with_tenant("a", TenantQuota{}.with_max_running_jobs(1)));
  EXPECT_EQ(s.offer(1, "a", QosClass::Bulk), AdmissionScheduler::Offer::Admitted);
  EXPECT_EQ(s.offer(2, "a", QosClass::Bulk), AdmissionScheduler::Offer::Queued);
  EXPECT_EQ(s.offer(3, "b", QosClass::Bulk), AdmissionScheduler::Offer::Admitted);
  EXPECT_EQ(s.tenant_running("a"), 1u);
  s.job_finished(1);
  EXPECT_EQ(s.tenant_running("a"), 1u);  // the queued job moved up
  EXPECT_EQ(s.admission_log().back(), 2u);
}

TEST_F(SchedTest, DriveArbitrationHonorsQuotaAndPriority) {
  auto& s = make(
      SchedConfig{}.with_enabled().with_tenant(
          "bulk", TenantQuota{}.with_max_drives(1)));
  tape::DriveRequest bulk1{"bulk", QosClass::Bulk};
  tape::DriveRequest bulk2{"bulk", QosClass::Bulk};
  tape::DriveRequest inter{"ana", QosClass::Interactive};
  EXPECT_TRUE(s.may_hold(bulk1));
  s.drive_granted(bulk1);
  EXPECT_EQ(s.tenant_drives("bulk"), 1u);
  EXPECT_FALSE(s.may_hold(bulk2));  // at quota
  // Waiter list: bulk first-come, interactive behind — the pick must skip
  // the over-quota bulk request and take the interactive one.
  EXPECT_EQ(s.pick_waiter({bulk2, inter}), 1u);
  // Only over-quota waiters -> nobody eligible.
  EXPECT_EQ(s.pick_waiter({bulk2}), tape::DriveArbiter::kNone);
  s.drive_released(bulk1);
  EXPECT_EQ(s.tenant_drives("bulk"), 0u);
  EXPECT_EQ(s.pick_waiter({bulk2}), 0u);
  // Unmanaged (empty-tenant) requests are never quota-gated.
  EXPECT_TRUE(s.may_hold(tape::DriveRequest{}));
}

TEST_F(SchedTest, ShaperLegsOnlyForCappedTenants) {
  auto& s = make(SchedConfig{}.with_enabled().with_tenant(
                     "capped", TenantQuota{}.with_pfs_bw_fraction(0.25)),
                 2000e6);
  EXPECT_TRUE(s.shaper_legs("uncapped").empty());
  const auto legs = s.shaper_legs("capped");
  ASSERT_EQ(legs.size(), 1u);
  EXPECT_DOUBLE_EQ(net_.pool_capacity(legs[0].pool), 0.25 * 2000e6);
  // Lazy creation is idempotent: same pool on the second ask.
  const auto again = s.shaper_legs("capped");
  ASSERT_EQ(again.size(), 1u);
  EXPECT_EQ(again[0].pool.idx, legs[0].pool.idx);
}

TEST_F(SchedTest, CancelRemovesOnlyQueuedJobs) {
  auto& s = make(SchedConfig{}.with_enabled().with_max_running_jobs(1));
  s.offer(1, "a", QosClass::Bulk);
  s.offer(2, "a", QosClass::Bulk);
  EXPECT_FALSE(s.cancel(1));  // running, not queued
  EXPECT_TRUE(s.cancel(2));
  EXPECT_FALSE(s.cancel(2));  // already gone
  EXPECT_EQ(s.queued(), 0u);
  s.job_finished(1);
  EXPECT_EQ(s.admission_log().size(), 1u);  // nothing left to admit
}

TEST_F(SchedTest, AdmissionOrderIsDeterministic) {
  // Two schedulers fed the identical interleaved sequence admit in the
  // identical order (ties break by arrival seq, never address order).
  const auto drive = [](AdmissionScheduler& s) {
    std::uint64_t id = 1;
    for (int round = 0; round < 5; ++round) {
      s.offer(id++, "a", QosClass::Bulk);
      s.offer(id++, "b", QosClass::Interactive);
      s.offer(id++, "c", QosClass::Maintenance);
      s.offer(id++, "b", QosClass::Bulk);
    }
    for (int i = 0; i < 12; ++i) s.job_finished(s.admission_log().back());
    return s.admission_log();
  };
  sim::Simulation sim2;
  sim::FlowNetwork net2{sim2};
  obs::Observer obs2{obs::ObsConfig{}};
  AdmissionScheduler s1(sim_, net_, obs_,
                        SchedConfig{}.with_enabled().with_max_running_jobs(2),
                        0.0);
  AdmissionScheduler s2(sim2, net2, obs2,
                        SchedConfig{}.with_enabled().with_max_running_jobs(2),
                        0.0);
  EXPECT_EQ(drive(s1), drive(s2));
}

}  // namespace
}  // namespace cpa::sched
