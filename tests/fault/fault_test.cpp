#include "fault/plan.hpp"

#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <vector>

#include "fault/injector.hpp"
#include "obs/observer.hpp"
#include "simcore/simulation.hpp"
#include "simcore/time.hpp"

namespace cpa::fault {
namespace {

// ---------------------------------------------------------------- RetryPolicy

TEST(RetryPolicy, NoneNeverAllowsASecondAttempt) {
  const RetryPolicy p = RetryPolicy::none();
  EXPECT_TRUE(p.allows(0));   // the first attempt itself
  EXPECT_FALSE(p.allows(1));  // no retry after one failure
}

TEST(RetryPolicy, StandardAllowsThreeTotalAttempts) {
  const RetryPolicy p = RetryPolicy::standard();
  EXPECT_TRUE(p.allows(1));
  EXPECT_TRUE(p.allows(2));
  EXPECT_FALSE(p.allows(3));
}

TEST(RetryPolicy, DelayGrowsExponentially) {
  RetryPolicy p;
  p.backoff = sim::secs(5);
  p.multiplier = 2.0;
  p.max_backoff = sim::minutes(10);
  EXPECT_EQ(p.delay(1), sim::secs(5));
  EXPECT_EQ(p.delay(2), sim::secs(10));
  EXPECT_EQ(p.delay(3), sim::secs(20));
  EXPECT_EQ(p.delay(4), sim::secs(40));
}

TEST(RetryPolicy, DelayClampsAtMaxBackoff) {
  RetryPolicy p;
  p.backoff = sim::minutes(1);
  p.multiplier = 10.0;
  p.max_backoff = sim::minutes(5);
  EXPECT_EQ(p.delay(1), sim::minutes(1));
  EXPECT_EQ(p.delay(2), sim::minutes(5));   // 10 min clamped
  EXPECT_EQ(p.delay(10), sim::minutes(5));  // huge exponent still clamped
}

TEST(RetryPolicy, ZeroJitterIsBitIdenticalForEverySalt) {
  RetryPolicy plain;
  plain.backoff = sim::secs(5);
  RetryPolicy seeded = plain;
  seeded.jitter_seed = 0xBEEF;  // a seed alone must change nothing
  for (unsigned i = 1; i <= 6; ++i) {
    for (std::uint64_t salt : {0ULL, 1ULL, 42ULL, 0xDEADULL}) {
      EXPECT_EQ(seeded.delay(i, salt), plain.delay(i));
    }
  }
}

TEST(RetryPolicy, JitterIsDeterministicBoundedAndSaltSensitive) {
  RetryPolicy p;
  p.backoff = sim::secs(10);
  p.jitter = 0.5;
  p.jitter_seed = 7;
  RetryPolicy base = p;
  base.jitter = 0.0;
  bool salt_matters = false;
  for (unsigned i = 1; i <= 5; ++i) {
    for (std::uint64_t salt = 0; salt < 8; ++salt) {
      const sim::Tick d = p.delay(i, salt);
      EXPECT_EQ(d, p.delay(i, salt));  // same (seed, salt, index) replays
      // Full jitter scales by a draw from [1-jitter, 1].
      EXPECT_LE(d, base.delay(i));
      EXPECT_GE(d, static_cast<sim::Tick>(
                       static_cast<double>(base.delay(i)) * 0.5));
      if (d != p.delay(i, salt + 1)) salt_matters = true;
    }
  }
  EXPECT_TRUE(salt_matters);  // colliding jobs decorrelate
}

// ------------------------------------------------------------------ FaultPlan

TEST(FaultPlan, BuildersRenderCanonicalSpec) {
  FaultPlan plan;
  plan.drive_failure(3, sim::secs(120), sim::secs(300))
      .node_crash(2, sim::minutes(10), sim::minutes(20))
      .pool_degrade("trunk0", sim::minutes(5), 0.5, sim::minutes(10));
  const std::string spec = plan.render();
  EXPECT_NE(spec.find("tape.drive[3]:fail@t=120s,repair=300s"), std::string::npos);
  EXPECT_NE(spec.find("cluster.node[2]:fail@t=600s,repair=1200s"), std::string::npos);
  EXPECT_NE(spec.find("net.pool[trunk0]:degrade@t=300s,factor=0.5,repair=600s"),
            std::string::npos);
}

TEST(FaultPlan, ParseRenderRoundTripsExactly) {
  const std::vector<std::string> specs = {
      "tape.drive[3]:fail@t=120s,repair=300s",
      "tape.media[7]:fail@t=3600s",
      "cluster.node[2]:fail@t=600s,repair=1200s",
      "hsm.server[0]:restart@t=7200s,outage=60s",
      "net.pool[trunk0]:degrade@t=300s,factor=0.25,repair=600s",
      "tape.media[7]:corrupt@t=3600s,segments=3,seed=42",
      "tape.media[0]:corrupt@t=90s,segments=1,seed=0",
      "server.power[0]:fail@t=2700s,seed=7,repair=120s",
      "server.power[0]:fail@t=45s",
  };
  for (const auto& s : specs) {
    std::string err;
    const auto plan = FaultPlan::parse(s, &err);
    ASSERT_TRUE(plan.has_value()) << s << ": " << err;
    EXPECT_EQ(plan->render(), s);
    // render() output is itself parseable to the same plan.
    const auto again = FaultPlan::parse(plan->render());
    ASSERT_TRUE(again.has_value());
    EXPECT_EQ(again->render(), s);
  }
}

TEST(FaultPlan, CorruptBuilderRendersCanonicalSpec) {
  FaultPlan plan;
  plan.media_corruption(7, sim::hours(1), 3, 42);
  EXPECT_EQ(plan.render(), "tape.media[7]:corrupt@t=3600s,segments=3,seed=42");
  ASSERT_EQ(plan.size(), 1u);
  EXPECT_EQ(plan.events[0].kind, FaultKind::Corrupt);
  EXPECT_EQ(plan.events[0].segments, 3u);
  EXPECT_EQ(plan.events[0].seed, 42u);
}

TEST(FaultPlan, CorruptParseRejectsBadShapes) {
  for (const std::string bad : {
           "tape.media[1]:corrupt@t=10s",                 // needs segments=
           "tape.media[1]:corrupt@t=10s,segments=0",      // zero segments
           "tape.media[1]:corrupt@t=10s,segments=2,repair=5s",  // silent fault
           "tape.drive[0]:corrupt@t=10s,segments=1",      // media only
           "cluster.node[0]:corrupt@t=10s,segments=1",    // media only
       }) {
    std::string err;
    EXPECT_FALSE(FaultPlan::parse(bad, &err).has_value()) << bad;
    EXPECT_FALSE(err.empty()) << bad;
  }
}

TEST(FaultPlan, CompositePlanRoundTripsThroughTheGrammar) {
  // The chaos generator emits plans mixing every kind in one spec; the
  // whole composite must survive parse -> render -> parse unchanged.
  const std::string spec =
      "tape.media[7]:corrupt@t=3600s,segments=3,seed=42;"
      "cluster.node[2]:fail@t=120s,repair=300s;"
      "tape.drive[3]:fail@t=120s,repair=300s";
  std::string err;
  const auto plan = FaultPlan::parse(spec, &err);
  ASSERT_TRUE(plan.has_value()) << err;
  ASSERT_EQ(plan->size(), 3u);
  EXPECT_EQ(plan->events[0].kind, FaultKind::Corrupt);
  EXPECT_EQ(plan->events[1].target, FaultTarget::ClusterNode);
  EXPECT_EQ(plan->events[2].target, FaultTarget::TapeDrive);
  EXPECT_EQ(plan->render(), spec);
  const auto again = FaultPlan::parse(plan->render(), &err);
  ASSERT_TRUE(again.has_value()) << err;
  EXPECT_EQ(again->render(), spec);
}

TEST(FaultPlan, RandomMatchesPinnedGolden) {
  // FaultPlan::random(cfg, seed) is a replay contract: chaos campaigns
  // embed only (cfg, seed), so the expansion must never drift.  If this
  // golden moves, every archived repro line silently changes meaning.
  RandomFaultConfig cfg;
  cfg.drive_failures = 1;
  cfg.node_crashes = 1;
  cfg.media_corruptions = 1;
  cfg.drives = 4;
  cfg.nodes = 4;
  cfg.cartridges = 4;
  cfg.horizon = sim::hours(1);
  cfg.min_repair = sim::minutes(2);
  cfg.max_repair = sim::minutes(10);
  EXPECT_EQ(FaultPlan::random(cfg, 7).render(),
            "cluster.node[0]:fail@t=2776433019402ns,repair=162201366393ns;"
            "tape.drive[2]:fail@t=3390333354327ns,repair=226460372153ns;"
            "tape.media[0]:corrupt@t=3476297480058ns,segments=1,seed=26083683");
}

TEST(FaultPlan, RandomCoversCorruptionsDeterministically) {
  RandomFaultConfig cfg;
  cfg.drive_failures = 0;
  cfg.node_crashes = 0;
  cfg.media_corruptions = 5;
  cfg.cartridges = 3;
  const FaultPlan a = FaultPlan::random(cfg, 11);
  const FaultPlan b = FaultPlan::random(cfg, 11);
  EXPECT_EQ(a.render(), b.render());
  ASSERT_EQ(a.size(), 5u);
  for (const auto& ev : a.events) {
    EXPECT_EQ(ev.target, FaultTarget::TapeMedia);
    EXPECT_EQ(ev.kind, FaultKind::Corrupt);
    EXPECT_LT(ev.index, 3u);
    EXPECT_GE(ev.segments, 1u);
    EXPECT_LE(ev.segments, 4u);
    EXPECT_LE(ev.at, cfg.horizon);
  }
  // Round-trips through the grammar like every other kind.
  const auto parsed = FaultPlan::parse(a.render());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->render(), a.render());
}

TEST(FaultPlan, ParseAcceptsDurationSuffixesAndMultipleEvents) {
  std::string err;
  const auto plan = FaultPlan::parse(
      "tape.drive[0]:fail@t=2m,repair=1h;cluster.node[1]:fail@t=1d", &err);
  ASSERT_TRUE(plan.has_value()) << err;
  ASSERT_EQ(plan->size(), 2u);
  EXPECT_EQ(plan->events[0].at, sim::minutes(2));
  EXPECT_EQ(plan->events[0].repair, sim::hours(1));
  EXPECT_EQ(plan->events[1].at, sim::days(1));
  EXPECT_EQ(plan->events[1].repair, 0u);  // permanent
}

TEST(FaultPlan, ParseRejectsMalformedSpecs) {
  for (const std::string bad : {
           "tape.drive[x]:fail@t=10s",         // non-numeric index
           "tape.drive[0]",                    // no verb
           "tape.drive[0]:explode@t=10s",      // unknown verb
           "gpu.core[0]:fail@t=10s",           // unknown target
           "net.pool[trunk0]:degrade@t=10s",   // degrade needs factor
           "tape.drive[0]:fail",               // missing @t
       }) {
    std::string err;
    EXPECT_FALSE(FaultPlan::parse(bad, &err).has_value()) << bad;
    EXPECT_FALSE(err.empty()) << bad;
  }
}

TEST(FaultPlan, RandomIsDeterministicPerSeed) {
  RandomFaultConfig cfg;
  cfg.drive_failures = 3;
  cfg.node_crashes = 2;
  cfg.media_errors = 1;
  cfg.server_restarts = 1;
  const FaultPlan a = FaultPlan::random(cfg, 42);
  const FaultPlan b = FaultPlan::random(cfg, 42);
  const FaultPlan c = FaultPlan::random(cfg, 43);
  EXPECT_EQ(a.render(), b.render());
  EXPECT_NE(a.render(), c.render());
  EXPECT_EQ(a.size(), 7u);
}

TEST(FaultPlan, RandomRespectsPlantBoundsAndHorizon) {
  RandomFaultConfig cfg;
  cfg.drive_failures = 8;
  cfg.node_crashes = 8;
  cfg.drives = 2;
  cfg.nodes = 3;
  cfg.horizon = sim::minutes(30);
  const FaultPlan plan = FaultPlan::random(cfg, 7);
  for (const auto& ev : plan.events) {
    EXPECT_LE(ev.at, cfg.horizon);
    if (ev.target == FaultTarget::TapeDrive) EXPECT_LT(ev.index, 2u);
    if (ev.target == FaultTarget::ClusterNode) EXPECT_LT(ev.index, 3u);
    if (ev.repair != 0) {
      EXPECT_GE(ev.repair, cfg.min_repair);
      EXPECT_LE(ev.repair, cfg.max_repair);
    }
  }
}

// -------------------------------------------------------------- FaultInjector

struct Recorded {
  std::vector<std::pair<std::uint64_t, bool>> drives;
  std::vector<std::pair<std::uint64_t, bool>> nodes;
  std::vector<std::pair<std::string, double>> pools;
  std::vector<sim::Tick> when;
};

TEST(FaultInjector, FiresStrikeAndRepairAtExactVirtualTimes) {
  sim::Simulation sim;
  obs::Observer obs;
  FaultInjector inj(sim, obs);

  Recorded rec;
  FaultTargets targets;
  targets.tape_drive = [&](std::uint64_t d, bool down) {
    rec.drives.emplace_back(d, down);
    rec.when.push_back(sim.now());
  };
  targets.cluster_node = [&](std::uint64_t n, bool down) {
    rec.nodes.emplace_back(n, down);
    rec.when.push_back(sim.now());
  };
  inj.set_targets(std::move(targets));

  FaultPlan plan;
  plan.drive_failure(1, sim::secs(10), sim::secs(20));  // repaired at t=30
  plan.node_crash(2, sim::secs(15));                    // permanent
  inj.arm(plan);
  sim.run();

  ASSERT_EQ(rec.drives.size(), 2u);
  EXPECT_EQ(rec.drives[0], (std::pair<std::uint64_t, bool>{1, true}));
  EXPECT_EQ(rec.drives[1], (std::pair<std::uint64_t, bool>{1, false}));
  ASSERT_EQ(rec.nodes.size(), 1u);
  EXPECT_EQ(rec.nodes[0], (std::pair<std::uint64_t, bool>{2, true}));
  ASSERT_EQ(rec.when.size(), 3u);
  EXPECT_EQ(rec.when[0], sim::secs(10));
  EXPECT_EQ(rec.when[1], sim::secs(15));
  EXPECT_EQ(rec.when[2], sim::secs(30));

  // Permanent faults count as injected but never repaired.
  EXPECT_EQ(inj.injected(), 2u);
  EXPECT_EQ(inj.repaired(), 1u);
  EXPECT_EQ(obs.metrics().counter_value("fault.injected_total"), 2u);
  EXPECT_EQ(obs.metrics().counter_value("fault.repaired_total"), 1u);
}

TEST(FaultInjector, PoolDegradePassesFactorThenRestores) {
  sim::Simulation sim;
  obs::Observer obs;
  FaultInjector inj(sim, obs);

  Recorded rec;
  FaultTargets targets;
  targets.net_pool = [&](const std::string& pool, double factor, bool down) {
    rec.pools.emplace_back(pool, down ? factor : 1.0);
  };
  inj.set_targets(std::move(targets));

  FaultPlan plan;
  plan.pool_degrade("trunk0", sim::secs(5), 0.25, sim::secs(10));
  inj.arm(plan);
  sim.run();

  ASSERT_EQ(rec.pools.size(), 2u);
  EXPECT_EQ(rec.pools[0].first, "trunk0");
  EXPECT_DOUBLE_EQ(rec.pools[0].second, 0.25);
  EXPECT_DOUBLE_EQ(rec.pools[1].second, 1.0);
}

TEST(FaultInjector, ServerPowerFiresStrikeWithSeedThenRepair) {
  sim::Simulation sim;
  obs::Observer obs;
  FaultInjector inj(sim, obs);

  std::vector<std::tuple<std::uint64_t, std::uint64_t, bool, sim::Tick>> hits;
  FaultTargets targets;
  targets.server_power = [&](std::uint64_t srv, std::uint64_t seed,
                             bool down) {
    hits.emplace_back(srv, seed, down, sim.now());
  };
  inj.set_targets(std::move(targets));

  const auto plan =
      FaultPlan::parse("server.power[0]:fail@t=10s,seed=9,repair=30s");
  ASSERT_TRUE(plan.has_value());
  inj.arm(*plan);
  sim.run();

  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0], (std::tuple<std::uint64_t, std::uint64_t, bool,
                                 sim::Tick>{0, 9, true, sim::secs(10)}));
  EXPECT_EQ(std::get<2>(hits[1]), false);
  EXPECT_EQ(std::get<3>(hits[1]), sim::secs(40));
}

TEST(FaultInjector, UnwiredTargetsAreCountedSkipped) {
  sim::Simulation sim;
  obs::Observer obs;
  FaultInjector inj(sim, obs);  // no targets wired at all

  FaultPlan plan;
  plan.drive_failure(0, sim::secs(1), sim::secs(1));
  plan.media_error(4, sim::secs(2));
  inj.arm(plan);
  sim.run();

  EXPECT_EQ(inj.injected(), 0u);
  EXPECT_GE(obs.metrics().counter_value("fault.skipped_total"), 2u);
}

TEST(FaultInjector, CorruptFiresSilentCallbackWithSegmentsAndSeed) {
  sim::Simulation sim;
  obs::Observer obs;
  FaultInjector inj(sim, obs);

  struct Hit {
    std::uint64_t cart, segments, seed;
    sim::Tick when;
  };
  std::vector<Hit> hits;
  FaultTargets targets;
  targets.tape_corrupt = [&](std::uint64_t cart, std::uint64_t segments,
                             std::uint64_t seed) {
    hits.push_back({cart, segments, seed, sim.now()});
  };
  inj.set_targets(std::move(targets));

  FaultPlan plan;
  plan.media_corruption(2, sim::secs(30), 4, 99);
  inj.arm(plan);
  sim.run();

  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].cart, 2u);
  EXPECT_EQ(hits[0].segments, 4u);
  EXPECT_EQ(hits[0].seed, 99u);
  EXPECT_EQ(hits[0].when, sim::secs(30));
  // Silent bit-rot never schedules a repair event.
  EXPECT_EQ(inj.injected(), 1u);
  EXPECT_EQ(inj.repaired(), 0u);
  EXPECT_EQ(obs.metrics().counter_value("fault.corruptions"), 1u);
}

TEST(FaultInjector, ArmAccumulatesAcrossCalls) {
  sim::Simulation sim;
  obs::Observer obs;
  FaultInjector inj(sim, obs);

  unsigned strikes = 0;
  FaultTargets targets;
  targets.tape_drive = [&](std::uint64_t, bool down) { strikes += down; };
  inj.set_targets(std::move(targets));

  FaultPlan a;
  a.drive_failure(0, sim::secs(1));
  FaultPlan b;
  b.drive_failure(1, sim::secs(2));
  inj.arm(a);
  inj.arm(b);
  sim.run();
  EXPECT_EQ(strikes, 2u);
}

}  // namespace
}  // namespace cpa::fault
