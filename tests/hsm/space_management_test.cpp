// HSM threshold migration: premigrated data leaves disk least-recently-
// used first, only when the pool crosses its high-water mark.
#include <gtest/gtest.h>

#include <optional>

#include "hsm/hsm.hpp"
#include "simcore/units.hpp"

namespace cpa::hsm {
namespace {

pfs::FsConfig fs_config() {
  pfs::FsConfig cfg;
  cfg.pools = {pfs::PoolConfig{"fast", 1000 * kMB, 4, false}};
  return cfg;
}

class SpaceMgmtTest : public ::testing::Test {
 protected:
  SpaceMgmtTest()
      : fs_(sim_, fs_config()),
        lib_(sim_, net_, tape::LibraryConfig{4, 800 * kGB, {}}),
        hsm_(sim_, net_, fs_, lib_, Fabric::unconstrained(), config()) {}

  static HsmConfig config() {
    HsmConfig cfg;
    cfg.punch_after_migrate = false;  // premigrate only; punch on demand
    return cfg;
  }

  /// Creates and premigrates a 100 MB file at the current virtual time.
  void add_premigrated(const std::string& path) {
    ASSERT_EQ(fs_.mkdirs(pfs::parent_path(path)), pfs::Errc::Ok);
    ASSERT_TRUE(fs_.create(path).ok());
    ASSERT_EQ(fs_.write_all(path, 100 * kMB, 1), pfs::Errc::Ok);
    hsm_.migrate_batch(0, {path}, "g", nullptr);
    sim_.run();
    ASSERT_EQ(fs_.stat(path).value().dmapi, pfs::DmapiState::Premigrated);
  }

  sim::Simulation sim_;
  sim::FlowNetwork net_{sim_};
  pfs::FileSystem fs_;
  tape::TapeLibrary lib_;
  HsmSystem hsm_;
};

TEST_F(SpaceMgmtTest, PunchesLruFilesUntilLowWater) {
  // 9 x 100 MB premigrated files = 90% of the 1000 MB pool.
  for (int i = 0; i < 9; ++i) {
    add_premigrated("/arch/f" + std::to_string(i));
    sim_.run_until(sim_.now() + sim::hours(1));  // staggered atimes
  }
  // Touch f0 so it becomes the most recently used despite being oldest.
  ASSERT_TRUE(fs_.read_tag("/arch/f0").ok());

  std::optional<SpaceManagementReport> report;
  hsm_.space_management("fast", 0.8, 0.5,
                        [&](const SpaceManagementReport& r) { report = r; });
  sim_.run();
  ASSERT_TRUE(report.has_value());
  EXPECT_GE(report->used_fraction_before, 0.8);
  EXPECT_LE(report->used_fraction_after, 0.5);
  EXPECT_EQ(report->files_punched, 4u);  // 900 -> 500 MB
  EXPECT_EQ(report->bytes_freed, 400 * kMB);
  EXPECT_GT(report->duration, 0u);

  // LRU order: f1..f4 punched (f0 was touched), f5..f8 and f0 remain.
  EXPECT_EQ(fs_.stat("/arch/f0").value().dmapi, pfs::DmapiState::Premigrated);
  for (int i = 1; i <= 4; ++i) {
    EXPECT_EQ(fs_.stat("/arch/f" + std::to_string(i)).value().dmapi,
              pfs::DmapiState::Migrated)
        << i;
  }
  for (int i = 5; i <= 8; ++i) {
    EXPECT_EQ(fs_.stat("/arch/f" + std::to_string(i)).value().dmapi,
              pfs::DmapiState::Premigrated)
        << i;
  }
}

TEST_F(SpaceMgmtTest, BelowHighWaterDoesNothing) {
  for (int i = 0; i < 3; ++i) add_premigrated("/arch/f" + std::to_string(i));
  std::optional<SpaceManagementReport> report;
  hsm_.space_management("fast", 0.8, 0.5,
                        [&](const SpaceManagementReport& r) { report = r; });
  sim_.run();
  EXPECT_EQ(report->files_punched, 0u);
  EXPECT_DOUBLE_EQ(report->used_fraction_after, report->used_fraction_before);
}

TEST_F(SpaceMgmtTest, ResidentFilesAreNotEligible) {
  // Fill the pool with files that were never migrated: nothing may be
  // punched (no tape copy exists).
  for (int i = 0; i < 9; ++i) {
    const std::string p = "/arch/r" + std::to_string(i);
    ASSERT_EQ(fs_.mkdirs("/arch"), pfs::Errc::Ok);
    ASSERT_TRUE(fs_.create(p).ok());
    ASSERT_EQ(fs_.write_all(p, 100 * kMB, 1), pfs::Errc::Ok);
  }
  std::optional<SpaceManagementReport> report;
  hsm_.space_management("fast", 0.8, 0.5,
                        [&](const SpaceManagementReport& r) { report = r; });
  sim_.run();
  EXPECT_EQ(report->files_punched, 0u);
  EXPECT_GE(report->used_fraction_after, 0.8);
}

TEST_F(SpaceMgmtTest, UnknownPoolIsCleanNoOp) {
  std::optional<SpaceManagementReport> report;
  hsm_.space_management("nope", 0.8, 0.5,
                        [&](const SpaceManagementReport& r) { report = r; });
  sim_.run();
  EXPECT_EQ(report->files_punched, 0u);
}

TEST_F(SpaceMgmtTest, PunchedFilesRemainRecallable) {
  for (int i = 0; i < 9; ++i) add_premigrated("/arch/f" + std::to_string(i));
  hsm_.space_management("fast", 0.8, 0.5, nullptr);
  sim_.run();
  std::optional<RecallReport> rr;
  hsm_.recall({"/arch/f0"}, RecallOptions{},
              [&](const RecallReport& r) { rr = r; });
  sim_.run();
  // f0 may or may not have been punched depending on tie-break; either
  // way the read path must work end to end.
  EXPECT_EQ(rr->files_failed, 0u);
  EXPECT_TRUE(fs_.read_tag("/arch/f0").ok());
}

}  // namespace
}  // namespace cpa::hsm
