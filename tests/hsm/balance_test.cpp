#include "hsm/balance.hpp"

#include <gtest/gtest.h>

#include "simcore/rng.hpp"

namespace cpa::hsm {
namespace {

std::uint64_t total(const Distribution& d) {
  std::uint64_t sum = 0;
  for (const auto& bin : d) {
    for (const WorkItem& w : bin) sum += w.weight;
  }
  return sum;
}

std::size_t item_count(const Distribution& d) {
  std::size_t n = 0;
  for (const auto& bin : d) n += bin.size();
  return n;
}

TEST(Balance, NaiveRoundRobinIgnoresSize) {
  // The paper's pathology: all large files land on one process.
  // Alternating large/small with 2 bins puts every large file in bin 0.
  std::vector<std::uint64_t> w;
  for (int i = 0; i < 10; ++i) {
    w.push_back(1000);  // even positions: large
    w.push_back(1);     // odd positions: small
  }
  const Distribution d = naive_distribute(w, 2);
  std::uint64_t load0 = 0, load1 = 0;
  for (const WorkItem& it : d[0]) load0 += it.weight;
  for (const WorkItem& it : d[1]) load1 += it.weight;
  EXPECT_EQ(load0, 10000u);
  EXPECT_EQ(load1, 10u);
}

TEST(Balance, SizeBalancedEvensOutTheSameWorkload) {
  std::vector<std::uint64_t> w;
  for (int i = 0; i < 10; ++i) {
    w.push_back(1000);
    w.push_back(1);
  }
  const Distribution d = size_balanced_distribute(w, 2);
  std::uint64_t load0 = 0, load1 = 0;
  for (const WorkItem& it : d[0]) load0 += it.weight;
  for (const WorkItem& it : d[1]) load1 += it.weight;
  EXPECT_EQ(load0 + load1, 10010u);
  EXPECT_NEAR(static_cast<double>(load0), static_cast<double>(load1), 1000.0);
}

TEST(Balance, AllItemsAssignedExactlyOnce) {
  std::vector<std::uint64_t> w{5, 3, 8, 1, 9, 2};
  for (auto* fn : {&naive_distribute, &size_balanced_distribute}) {
    const Distribution d = fn(w, 3);
    EXPECT_EQ(item_count(d), w.size());
    EXPECT_EQ(total(d), 28u);
    std::vector<bool> seen(w.size(), false);
    for (const auto& bin : d) {
      for (const WorkItem& it : bin) {
        EXPECT_FALSE(seen[it.index]);
        seen[it.index] = true;
        EXPECT_EQ(it.weight, w[it.index]);
      }
    }
  }
}

TEST(Balance, MoreBinsThanItems) {
  std::vector<std::uint64_t> w{7, 3};
  const Distribution d = size_balanced_distribute(w, 5);
  EXPECT_EQ(d.size(), 5u);
  EXPECT_EQ(item_count(d), 2u);
  EXPECT_EQ(max_bin_load(d), 7u);
}

TEST(Balance, ZeroBinsClampedToOne) {
  std::vector<std::uint64_t> w{1, 2, 3};
  EXPECT_EQ(naive_distribute(w, 0).size(), 1u);
  EXPECT_EQ(size_balanced_distribute(w, 0).size(), 1u);
}

TEST(Balance, EmptyInput) {
  std::vector<std::uint64_t> w;
  EXPECT_EQ(max_bin_load(naive_distribute(w, 4)), 0u);
  EXPECT_EQ(max_bin_load(size_balanced_distribute(w, 4)), 0u);
}

// Property: LPT makespan <= (4/3 - 1/(3m)) * OPT, where OPT >= max(mean
// load, max item).  We verify against that lower bound.
class LptBound : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LptBound, WithinClassicBoundOfLowerBound) {
  cpa::sim::Rng rng(GetParam());
  const unsigned m = static_cast<unsigned>(rng.uniform_u64(2, 12));
  const std::size_t n = static_cast<std::size_t>(rng.uniform_u64(1, 200));
  std::vector<std::uint64_t> w(n);
  std::uint64_t sum = 0, biggest = 0;
  for (auto& x : w) {
    x = rng.uniform_u64(1, 1'000'000);
    sum += x;
    biggest = std::max(biggest, x);
  }
  const double opt_lb =
      std::max(static_cast<double>(sum) / m, static_cast<double>(biggest));
  const double lpt = static_cast<double>(
      max_bin_load(size_balanced_distribute(w, m)));
  const double bound = (4.0 / 3.0 - 1.0 / (3.0 * m)) * opt_lb;
  EXPECT_LE(lpt, bound * (1 + 1e-12));
  // And LPT never loses to naive by more than rounding.
  const double naive = static_cast<double>(max_bin_load(naive_distribute(w, m)));
  EXPECT_LE(lpt, naive * (1 + 1e-12));
}

INSTANTIATE_TEST_SUITE_P(RandomWorkloads, LptBound,
                         ::testing::Range<std::uint64_t>(1, 25));

}  // namespace
}  // namespace cpa::hsm
