#include "hsm/server.hpp"

#include <gtest/gtest.h>

namespace cpa::hsm {
namespace {

class ServerTest : public ::testing::Test {
 protected:
  ServerTest() : net_(sim_), server_(sim_, net_, "tsm0", ServerConfig{}) {}
  sim::Simulation sim_;
  sim::FlowNetwork net_{sim_};
  ArchiveServer server_{sim_, net_, "tsm0", ServerConfig{}};
};

TEST_F(ServerTest, TxnsSerializeWithFixedCost) {
  std::vector<sim::Tick> completions;
  for (int i = 0; i < 3; ++i) {
    server_.metadata_txn([&] { completions.push_back(sim_.now()); });
  }
  sim_.run();
  ASSERT_EQ(completions.size(), 3u);
  const sim::Tick cost = ServerConfig{}.metadata_txn_cost;
  EXPECT_EQ(completions[0], cost);
  EXPECT_EQ(completions[1], 2 * cost);
  EXPECT_EQ(completions[2], 3 * cost);
  EXPECT_EQ(server_.txns_completed(), 3u);
}

TEST_F(ServerTest, QueueDepthVisible) {
  for (int i = 0; i < 5; ++i) server_.metadata_txn(nullptr);
  EXPECT_GE(server_.txn_queue_depth(), 4u);  // one may be in service
  sim_.run();
  EXPECT_EQ(server_.txn_queue_depth(), 0u);
}

TEST_F(ServerTest, RecordObjectMirrorsIntoExport) {
  ArchiveObject obj;
  obj.object_id = server_.allocate_object_id();
  obj.path = "/arch/f";
  obj.gpfs_file_id = 99;
  obj.size_bytes = 1234;
  obj.cartridge_id = 7;
  obj.tape_seq = 3;
  server_.record_object(obj);

  ASSERT_NE(server_.object(obj.object_id), nullptr);
  const auto* row = server_.export_db().by_path("/arch/f");
  ASSERT_NE(row, nullptr);
  EXPECT_EQ(row->tape_id, 7u);
  EXPECT_EQ(row->tape_seq, 3u);
  EXPECT_EQ(row->gpfs_file_id, 99u);
}

TEST_F(ServerTest, AggregateObjectsAreNotExported) {
  ArchiveObject agg;
  agg.object_id = server_.allocate_object_id();
  agg.members = {10, 11};
  agg.size_bytes = 100;
  server_.record_object(agg);
  EXPECT_EQ(server_.export_db().size(), 0u);
  EXPECT_EQ(server_.object_count(), 1u);
}

TEST_F(ServerTest, DeleteObjectRemovesExportRow) {
  ArchiveObject obj;
  obj.object_id = 5;
  obj.path = "/arch/f";
  server_.record_object(obj);
  EXPECT_TRUE(server_.delete_object(5));
  EXPECT_FALSE(server_.delete_object(5));
  EXPECT_EQ(server_.export_db().by_path("/arch/f"), nullptr);
  EXPECT_EQ(server_.object_count(), 0u);
}

TEST_F(ServerTest, AllocateObjectIdsAreUnique) {
  const auto a = server_.allocate_object_id();
  const auto b = server_.allocate_object_id();
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace cpa::hsm
