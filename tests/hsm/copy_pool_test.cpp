// Copy storage pools (Sec 3.1 item 7: "multiple copies, remote copies,
// smart placement") and media-failure fallback.
#include <gtest/gtest.h>

#include <optional>

#include "hsm/hsm.hpp"
#include "simcore/units.hpp"

namespace cpa::hsm {
namespace {

pfs::FsConfig fs_config() {
  pfs::FsConfig cfg;
  cfg.pools = {pfs::PoolConfig{"fast", 0, 4, false}};
  return cfg;
}

tape::LibraryConfig lib_config() {
  tape::LibraryConfig cfg;
  cfg.drive_count = 4;
  return cfg;
}

class CopyPoolTest : public ::testing::Test {
 protected:
  explicit CopyPoolTest(unsigned copies = 2, bool aggregation = false)
      : fs_(sim_, fs_config()), lib_(sim_, net_, lib_config()),
        hsm_(sim_, net_, fs_, lib_, Fabric::unconstrained(), config(copies, aggregation)) {}

  static HsmConfig config(unsigned copies, bool aggregation) {
    HsmConfig cfg;
    cfg.tape_copies = copies;
    cfg.aggregation_enabled = aggregation;
    cfg.aggregate_threshold = 50 * kMB;
    cfg.aggregate_target = 200 * kMB;
    return cfg;
  }

  void make_file(const std::string& path, std::uint64_t size, std::uint64_t tag) {
    ASSERT_EQ(fs_.mkdirs(pfs::parent_path(path)), pfs::Errc::Ok);
    ASSERT_TRUE(fs_.create(path).ok());
    ASSERT_EQ(fs_.write_all(path, size, tag), pfs::Errc::Ok);
  }

  sim::Simulation sim_;
  sim::FlowNetwork net_{sim_};
  pfs::FileSystem fs_;
  tape::TapeLibrary lib_;
  HsmSystem hsm_;
};

TEST_F(CopyPoolTest, MigrationWritesTwoVolumesAndRecordsReplica) {
  make_file("/arch/f", 100 * kMB, 0xC0);
  std::optional<MigrateReport> report;
  hsm_.migrate_batch(0, {"/arch/f"}, "g",
                     [&](const MigrateReport& r) { report = r; });
  sim_.run();
  EXPECT_EQ(report->files_migrated, 1u);
  EXPECT_EQ(report->tape_objects_written, 2u);  // primary + copy
  EXPECT_EQ(lib_.aggregate_stats().bytes_written, 200 * kMB);
  EXPECT_EQ(lib_.cartridge_count(), 2u);
  // Cartridges belong to distinct volume families.
  EXPECT_EQ(lib_.cartridge(1)->colocation_group(), "g");
  EXPECT_EQ(lib_.cartridge(2)->colocation_group(), "g~copy1");

  const auto* row = hsm_.server(0).export_db().by_path("/arch/f");
  ASSERT_NE(row, nullptr);
  const ArchiveObject* obj = hsm_.server(0).object(row->object_id);
  ASSERT_NE(obj, nullptr);
  ASSERT_EQ(obj->copies.size(), 1u);
  EXPECT_NE(obj->copies[0].cartridge_id, obj->cartridge_id);
  // The file was punched only after both copies landed.
  EXPECT_EQ(fs_.stat("/arch/f").value().dmapi, pfs::DmapiState::Migrated);
}

TEST_F(CopyPoolTest, RecallFallsBackToCopyWhenPrimaryDamaged) {
  make_file("/arch/f", 100 * kMB, 0xAB);
  hsm_.migrate_batch(0, {"/arch/f"}, "g", nullptr);
  sim_.run();
  const auto* row = hsm_.server(0).export_db().by_path("/arch/f");
  ASSERT_NE(row, nullptr);
  lib_.cartridge(row->tape_id)->set_damaged(true);

  std::optional<RecallReport> report;
  hsm_.recall({"/arch/f"}, RecallOptions{},
              [&](const RecallReport& r) { report = r; });
  sim_.run();
  EXPECT_EQ(report->files_recalled, 1u);
  EXPECT_EQ(report->files_failed, 0u);
  EXPECT_EQ(fs_.read_tag("/arch/f").value(), 0xABu);
}

TEST_F(CopyPoolTest, RecallFailsWhenAllCopiesDamaged) {
  make_file("/arch/f", 100 * kMB, 1);
  hsm_.migrate_batch(0, {"/arch/f"}, "g", nullptr);
  sim_.run();
  lib_.cartridge(1)->set_damaged(true);
  lib_.cartridge(2)->set_damaged(true);
  std::optional<RecallReport> report;
  hsm_.recall({"/arch/f"}, RecallOptions{},
              [&](const RecallReport& r) { report = r; });
  sim_.run();
  EXPECT_EQ(report->files_recalled, 0u);
  EXPECT_EQ(report->files_failed, 1u);
}

TEST_F(CopyPoolTest, SynchronousDeleteReclaimsAllReplicas) {
  make_file("/arch/f", 100 * kMB, 1);
  hsm_.migrate_batch(0, {"/arch/f"}, "g", nullptr);
  sim_.run();
  std::optional<pfs::Errc> result;
  hsm_.synchronous_delete("/arch/f", [&](pfs::Errc e) { result = e; });
  sim_.run();
  EXPECT_EQ(result, pfs::Errc::Ok);
  EXPECT_EQ(lib_.cartridge(1)->dead_bytes(), 100 * kMB);
  EXPECT_EQ(lib_.cartridge(2)->dead_bytes(), 100 * kMB);
  EXPECT_EQ(hsm_.server(0).object_count(), 0u);
}

struct AggregatedCopyPoolTest : CopyPoolTest {
  AggregatedCopyPoolTest() : CopyPoolTest(2, true) {}
};

TEST_F(AggregatedCopyPoolTest, AggregateReplicasServeMemberRecalls) {
  std::vector<std::string> paths;
  for (int i = 0; i < 5; ++i) {
    const std::string p = "/arch/s" + std::to_string(i);
    make_file(p, 10 * kMB, 0x50 + static_cast<std::uint64_t>(i));
    paths.push_back(p);
  }
  std::optional<MigrateReport> report;
  hsm_.migrate_batch(0, paths, "g", [&](const MigrateReport& r) { report = r; });
  sim_.run();
  EXPECT_EQ(report->files_migrated, 5u);
  EXPECT_EQ(report->tape_objects_written, 2u);  // one aggregate x 2 pools

  // Damage the primary volume; a member recall must use the copy.
  const auto* row = hsm_.server(0).export_db().by_path(paths[2]);
  ASSERT_NE(row, nullptr);
  lib_.cartridge(row->tape_id)->set_damaged(true);
  std::optional<RecallReport> rr;
  hsm_.recall({paths[2]}, RecallOptions{},
              [&](const RecallReport& r) { rr = r; });
  sim_.run();
  EXPECT_EQ(rr->files_recalled, 1u);
  EXPECT_EQ(fs_.read_tag(paths[2]).value(), 0x52u);
}

struct SingleCopyTest : CopyPoolTest {
  SingleCopyTest() : CopyPoolTest(1, false) {}
};

TEST_F(SingleCopyTest, DefaultBehaviourUnchangedWithOneCopy) {
  make_file("/arch/f", 100 * kMB, 1);
  std::optional<MigrateReport> report;
  hsm_.migrate_batch(0, {"/arch/f"}, "g",
                     [&](const MigrateReport& r) { report = r; });
  sim_.run();
  EXPECT_EQ(report->tape_objects_written, 1u);
  EXPECT_EQ(lib_.cartridge_count(), 1u);
  const auto* row = hsm_.server(0).export_db().by_path("/arch/f");
  EXPECT_TRUE(hsm_.server(0).object(row->object_id)->copies.empty());
}

}  // namespace
}  // namespace cpa::hsm
