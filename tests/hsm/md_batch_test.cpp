// Metadata batching + pipelining: TxnSession flush triggers, ordering,
// backpressure, amortized cost, and the power-fail atomicity contract
// (an in-flight batch tears away whole — no partial apply, no callback
// leak, no wedged queue).
#include <gtest/gtest.h>

#include <vector>

#include "hsm/server.hpp"
#include "hsm/txn_batch.hpp"
#include "simcore/simulation.hpp"
#include "simcore/time.hpp"

namespace cpa::hsm {
namespace {

class MdBatchTest : public ::testing::Test {
 protected:
  MdBatchTest() : net_(sim_), server_(sim_, net_, "tsm0", ServerConfig{}) {}

  TxnSession session(unsigned batch_size, unsigned window,
                     sim::Tick timeout = sim::msecs(2),
                     TxnSession::Hooks hooks = {}) {
    return TxnSession(sim_, server_,
                      TxnSession::Config{batch_size, window, timeout},
                      std::move(hooks));
  }

  sim::Simulation sim_;
  sim::FlowNetwork net_{sim_};
  ArchiveServer server_;
};

TEST(MdBatchConfig, BatchingOffByDefault) {
  const ServerConfig cfg;
  EXPECT_EQ(cfg.md_batch_size, 1u);
  EXPECT_FALSE(cfg.batching());
}

TEST(MdBatchConfig, BatchCostAmortizesAndDegeneratesToSingleton) {
  const ServerConfig cfg;
  // A batch of one costs exactly one legacy round-trip.
  EXPECT_EQ(cfg.batch_cost(1), cfg.metadata_txn_cost);
  // Amortization: 16 ops in one batch vs 16 stop-and-wait round-trips.
  const sim::Tick batched = cfg.batch_cost(16);
  const sim::Tick singleton = 16 * cfg.metadata_txn_cost;
  EXPECT_LT(batched, singleton);
  // The acceptance gate demands >=5x on the storm; the cost model alone
  // must already provide it at B=16.
  EXPECT_GE(singleton / batched, 5u);
}

TEST_F(MdBatchTest, SizeTriggerDispatchesFullBatch) {
  auto s = session(/*batch_size=*/4, /*window=*/4);
  std::vector<int> applied;
  sim::Tick done_at = 0;
  for (int i = 0; i < 4; ++i) {
    s.submit([&applied, i] { applied.push_back(i); },
             {.applied = [&done_at, this] { done_at = sim_.now(); }});
  }
  EXPECT_EQ(s.batches_sent(), 1u);  // size trigger, no flush needed
  sim_.run();
  EXPECT_EQ(applied, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(done_at, server_.config().batch_cost(4));
  EXPECT_EQ(server_.batches_completed(), 1u);
  EXPECT_EQ(server_.batch_ops_completed(), 4u);
  EXPECT_EQ(server_.txns_completed(), 1u);  // one round-trip, not four
}

TEST_F(MdBatchTest, TimeoutFlushesPartialBatch) {
  const sim::Tick timeout = sim::msecs(2);
  auto s = session(/*batch_size=*/16, /*window=*/4, timeout);
  bool applied = false;
  sim::Tick done_at = 0;
  s.submit([&applied] { applied = true; },
           {.applied = [&done_at, this] { done_at = sim_.now(); }});
  EXPECT_EQ(s.batches_sent(), 0u);  // waiting on the timer
  sim_.run();
  EXPECT_TRUE(applied);
  EXPECT_EQ(done_at, timeout + server_.config().batch_cost(1));
}

TEST_F(MdBatchTest, ExplicitFlushSkipsTheTimer) {
  auto s = session(/*batch_size=*/16, /*window=*/4);
  int applied = 0;
  sim::Tick done_at = 0;
  for (int i = 0; i < 2; ++i) {
    s.submit([&applied] { ++applied; },
             {.applied = [&done_at, this] { done_at = sim_.now(); }});
  }
  s.flush();
  EXPECT_EQ(s.batches_sent(), 1u);
  sim_.run();
  EXPECT_EQ(applied, 2);
  EXPECT_EQ(done_at, server_.config().batch_cost(2));
}

TEST_F(MdBatchTest, OpsApplyInSubmissionOrderAcrossBatches) {
  auto s = session(/*batch_size=*/4, /*window=*/2);
  std::vector<int> applied;
  for (int i = 0; i < 10; ++i) {
    s.submit([&applied, i] { applied.push_back(i); });
  }
  s.flush();
  sim_.run();
  ASSERT_EQ(applied.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(applied[i], i);
  EXPECT_EQ(s.applied(), 10u);
  EXPECT_GE(s.batches_sent(), 3u);  // 4 + 4 + 2
}

TEST_F(MdBatchTest, WindowBackpressureDefersAcceptedUntilSlotFrees) {
  auto s = session(/*batch_size=*/2, /*window=*/1);
  std::vector<int> accepted;
  std::vector<int> applied;
  for (int i = 0; i < 6; ++i) {
    s.submit([&applied, i] { applied.push_back(i); },
             {.accepted = [&accepted, i] { accepted.push_back(i); }});
  }
  // Window full (one batch in flight) + forming full: ops 4 and 5 park in
  // overflow and their accepted callbacks are withheld — backpressure.
  EXPECT_EQ(accepted, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(s.overflow(), 2u);
  sim_.run();
  EXPECT_EQ(accepted, (std::vector<int>{0, 1, 2, 3, 4, 5}));
  EXPECT_EQ(applied, (std::vector<int>{0, 1, 2, 3, 4, 5}));
  EXPECT_EQ(s.overflow(), 0u);
  EXPECT_EQ(s.in_flight(), 0u);
}

TEST_F(MdBatchTest, PipelineKeepsWindowBatchesInFlight) {
  auto s = session(/*batch_size=*/2, /*window=*/4);
  for (int i = 0; i < 8; ++i) s.submit([] {});
  // Four full batches dispatched back-to-back without waiting for the
  // first to complete: that is the pipelining half of the design.
  EXPECT_EQ(s.batches_sent(), 4u);
  EXPECT_EQ(s.in_flight(), 4u);
  sim_.run();
  EXPECT_EQ(s.applied(), 8u);
}

TEST_F(MdBatchTest, DrainFiresAfterEverythingSubmittedApplied) {
  auto s = session(/*batch_size=*/4, /*window=*/4);
  int applied = 0;
  for (int i = 0; i < 5; ++i) s.submit([&applied] { ++applied; });
  bool drained = false;
  s.drain([&] {
    drained = true;
    EXPECT_EQ(applied, 5);
  });
  EXPECT_FALSE(drained);
  sim_.run();
  EXPECT_TRUE(drained);
  EXPECT_EQ(s.applied(), 5u);
}

TEST_F(MdBatchTest, DrainWithNothingPendingFiresImmediately) {
  auto s = session(4, 4);
  bool drained = false;
  s.drain([&] { drained = true; });
  EXPECT_TRUE(drained);
}

TEST_F(MdBatchTest, BarrierRunsOncePerBatchBeforeApplied) {
  int barriers = 0;
  int applied_cbs = 0;
  TxnSession::Hooks hooks;
  hooks.barrier = [&](std::function<void()> done) {
    ++barriers;
    done();
  };
  std::size_t last_batch = 0;
  hooks.on_batch = [&](std::size_t n) { last_batch = n; };
  auto s = session(4, 4, sim::msecs(2), std::move(hooks));
  for (int i = 0; i < 8; ++i) {
    s.submit([] {}, {.applied = [&] {
                 // Applied implies the batch's barrier already ran.
                 EXPECT_GE(barriers, 1 + applied_cbs / 4);
                 ++applied_cbs;
               }});
  }
  sim_.run();
  EXPECT_EQ(barriers, 2);  // one group-commit per batch, not per op
  EXPECT_EQ(applied_cbs, 8);
  EXPECT_EQ(last_batch, 4u);
}

// Satellite regression: a power failure while a batch is in flight must
// neither apply a partial batch nor leak done/applied callbacks to the
// dead jobs — and the server queue must not wedge afterwards.
TEST_F(MdBatchTest, PowerFailTearsInFlightBatchWholeAndStaysLive) {
  auto s = session(/*batch_size=*/4, /*window=*/4);
  int applied_ops = 0;
  int applied_cbs = 0;
  bool drained = false;
  for (int i = 0; i < 3; ++i) {
    s.submit([&applied_ops] { ++applied_ops; },
             {.applied = [&applied_cbs] { ++applied_cbs; }});
  }
  s.drain([&drained] { drained = true; });
  ASSERT_EQ(s.batches_sent(), 1u);
  // Power-fail mid-service: the batch costs batch_cost(3); cut at half.
  sim_.at(server_.config().batch_cost(3) / 2, [&] {
    server_.power_fail();
    s.abandon();
  });
  sim_.run();
  EXPECT_EQ(applied_ops, 0);   // nothing applied — torn whole
  EXPECT_EQ(applied_cbs, 0);   // no applied callback leaked
  EXPECT_FALSE(drained);       // no drain leaked
  EXPECT_EQ(server_.batches_completed(), 0u);

  // The session and server both stay usable after recovery.
  int after = 0;
  s.submit([&after] { ++after; });
  bool drained2 = false;
  s.drain([&drained2] { drained2 = true; });
  sim_.run();
  EXPECT_EQ(after, 1);
  EXPECT_TRUE(drained2);
}

TEST_F(MdBatchTest, AbandonDropsFormingAndOverflowSilently) {
  auto s = session(/*batch_size=*/8, /*window=*/1);
  int accepted = 0;
  int applied = 0;
  for (int i = 0; i < 4; ++i) {
    s.submit([&applied] { ++applied; },
             {.accepted = [&accepted] { ++accepted; }});
  }
  EXPECT_EQ(accepted, 4);
  EXPECT_EQ(s.forming(), 4u);
  s.abandon();
  EXPECT_EQ(s.forming(), 0u);
  sim_.run();
  EXPECT_EQ(applied, 0);  // forming ops vanished with the power failure
}

// Server-level half of the same contract, without a session in front.
TEST_F(MdBatchTest, ServerBatchAtomicAgainstPowerFail) {
  int applied = 0;
  bool done = false;
  server_.metadata_batch(
      {[&applied] { ++applied; }, [&applied] { ++applied; }},
      [&done] { done = true; });
  sim_.at(server_.config().batch_cost(2) / 2, [&] { server_.power_fail(); });
  sim_.run();
  EXPECT_EQ(applied, 0);
  EXPECT_FALSE(done);
  // Queue still pumps: a post-recovery singleton completes normally.
  bool txn_done = false;
  server_.metadata_txn([&txn_done] { txn_done = true; });
  sim_.run();
  EXPECT_TRUE(txn_done);
}

TEST_F(MdBatchTest, EmptyServerBatchCompletesSynchronously) {
  bool done = false;
  server_.metadata_batch({}, [&done] { done = true; });
  EXPECT_TRUE(done);
  EXPECT_EQ(server_.batches_completed(), 0u);
}

}  // namespace
}  // namespace cpa::hsm
