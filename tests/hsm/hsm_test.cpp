#include "hsm/hsm.hpp"

#include <gtest/gtest.h>

#include <optional>

#include "simcore/units.hpp"

namespace cpa::hsm {
namespace {

pfs::FsConfig fs_config() {
  pfs::FsConfig cfg;
  cfg.name = "archive-gpfs";
  cfg.pools = {pfs::PoolConfig{"fast", 0, 4, false}};
  return cfg;
}

tape::LibraryConfig lib_config(unsigned drives = 4) {
  tape::LibraryConfig cfg;
  cfg.drive_count = drives;
  cfg.cartridge_capacity = 800 * kGB;
  return cfg;
}

class HsmTest : public ::testing::Test {
 protected:
  explicit HsmTest(HsmConfig cfg = HsmConfig{})
      : fs_(sim_, fs_config()),
        lib_(sim_, net_, lib_config()),
        hsm_(sim_, net_, fs_, lib_, Fabric::unconstrained(), cfg) {}

  void make_file(const std::string& path, std::uint64_t size,
                 std::uint64_t tag) {
    ASSERT_EQ(fs_.mkdirs(pfs::parent_path(path)), pfs::Errc::Ok);
    ASSERT_TRUE(fs_.create(path).ok());
    ASSERT_EQ(fs_.write_all(path, size, tag), pfs::Errc::Ok);
  }

  sim::Simulation sim_;
  sim::FlowNetwork net_{sim_};
  pfs::FileSystem fs_;
  tape::TapeLibrary lib_;
  HsmSystem hsm_;
};

TEST_F(HsmTest, MigrateSingleFilePunchesAndRecords) {
  make_file("/arch/f", 500 * kMB, 0xF00D);
  std::optional<MigrateReport> report;
  hsm_.migrate_batch(0, {"/arch/f"}, "grp",
                     [&](const MigrateReport& r) { report = r; });
  sim_.run();
  ASSERT_TRUE(report.has_value());
  EXPECT_EQ(report->files_migrated, 1u);
  EXPECT_EQ(report->files_failed, 0u);
  EXPECT_EQ(report->bytes, 500 * kMB);
  EXPECT_EQ(report->tape_objects_written, 1u);

  // File is now a stub.
  EXPECT_EQ(fs_.stat("/arch/f").value().dmapi, pfs::DmapiState::Migrated);
  EXPECT_EQ(fs_.pool("fast").value().used_bytes, 0u);

  // The export resolves the tape location.
  const auto* row = hsm_.server(0).export_db().by_path("/arch/f");
  ASSERT_NE(row, nullptr);
  EXPECT_EQ(row->tape_seq, 1u);
  tape::Cartridge* cart = lib_.cartridge(row->tape_id);
  ASSERT_NE(cart, nullptr);
  EXPECT_EQ(cart->bytes_used(), 500 * kMB);
  EXPECT_EQ(cart->colocation_group(), "grp");
}

TEST_F(HsmTest, MigrateSkipsMissingAndAlreadyMigratedFiles) {
  make_file("/arch/ok", kMB, 1);
  std::optional<MigrateReport> r1;
  hsm_.migrate_batch(0, {"/arch/ok", "/arch/missing"}, "g",
                     [&](const MigrateReport& r) { r1 = r; });
  sim_.run();
  EXPECT_EQ(r1->files_migrated, 1u);
  EXPECT_EQ(r1->files_failed, 1u);

  // Migrating the stub again fails (not resident).
  std::optional<MigrateReport> r2;
  hsm_.migrate_batch(0, {"/arch/ok"}, "g",
                     [&](const MigrateReport& r) { r2 = r; });
  sim_.run();
  EXPECT_EQ(r2->files_migrated, 0u);
  EXPECT_EQ(r2->files_failed, 1u);
}

TEST_F(HsmTest, EmptyBatchCompletesImmediately) {
  std::optional<MigrateReport> report;
  hsm_.migrate_batch(0, {}, "g", [&](const MigrateReport& r) { report = r; });
  sim_.run();
  ASSERT_TRUE(report.has_value());
  EXPECT_EQ(report->files_migrated, 0u);
}

TEST_F(HsmTest, BatchSharesOneMountAcrossManyFiles) {
  std::vector<std::string> paths;
  for (int i = 0; i < 20; ++i) {
    const std::string p = "/arch/big" + std::to_string(i);
    make_file(p, 1 * kGB, 100 + static_cast<std::uint64_t>(i));
    paths.push_back(p);
  }
  std::optional<MigrateReport> report;
  hsm_.migrate_batch(0, paths, "g", [&](const MigrateReport& r) { report = r; });
  sim_.run();
  EXPECT_EQ(report->files_migrated, 20u);
  EXPECT_EQ(lib_.aggregate_stats().mounts, 1u);
  // Large files stream near the rated 100 MB/s; the single mount (~65 s)
  // and per-file stops cost ~1/3 of the 200 s streaming time here.
  EXPECT_GT(report->mean_rate_bps(), 60.0 * kMB);
}

TEST_F(HsmTest, RecallRoundTripRestoresData) {
  make_file("/arch/f", 200 * kMB, 0xBEEF);
  hsm_.migrate_batch(0, {"/arch/f"}, "g", nullptr);
  sim_.run();
  ASSERT_EQ(fs_.read_tag("/arch/f").error(), pfs::Errc::Offline);

  std::optional<RecallReport> report;
  hsm_.recall({"/arch/f"}, RecallOptions{},
              [&](const RecallReport& r) { report = r; });
  sim_.run();
  ASSERT_TRUE(report.has_value());
  EXPECT_EQ(report->files_recalled, 1u);
  EXPECT_EQ(report->bytes, 200 * kMB);
  // Data is back on disk with the original content.
  EXPECT_EQ(fs_.stat("/arch/f").value().dmapi, pfs::DmapiState::Premigrated);
  EXPECT_EQ(fs_.read_tag("/arch/f").value(), 0xBEEFu);
  EXPECT_EQ(fs_.pool("fast").value().used_bytes, 200 * kMB);
}

TEST_F(HsmTest, RecallOfUnknownPathFails) {
  std::optional<RecallReport> report;
  hsm_.recall({"/nope"}, RecallOptions{},
              [&](const RecallReport& r) { report = r; });
  sim_.run();
  EXPECT_EQ(report->files_recalled, 0u);
  EXPECT_EQ(report->files_failed, 1u);
}

TEST_F(HsmTest, TapeOrderedRecallAvoidsSeeks) {
  std::vector<std::string> paths;
  for (int i = 0; i < 12; ++i) {
    const std::string p = "/arch/f" + std::to_string(i);
    make_file(p, 50 * kMB, static_cast<std::uint64_t>(i));
    paths.push_back(p);
  }
  hsm_.migrate_batch(0, paths, "g", nullptr);
  sim_.run();

  // Request recall in scrambled order.
  std::vector<std::string> scrambled = {paths[7], paths[2],  paths[11],
                                        paths[0], paths[5],  paths[9],
                                        paths[1], paths[10], paths[3],
                                        paths[8], paths[4],  paths[6]};
  const auto seeks_before = lib_.aggregate_stats().seeks;
  RecallOptions ordered;
  ordered.tape_ordered = true;
  std::optional<RecallReport> report;
  hsm_.recall(scrambled, ordered, [&](const RecallReport& r) { report = r; });
  sim_.run();
  EXPECT_EQ(report->files_recalled, 12u);
  // Ordered: at most the initial position seek.
  EXPECT_LE(lib_.aggregate_stats().seeks - seeks_before, 1u);
}

TEST_F(HsmTest, UnorderedRecallThrashesWithSeeks) {
  std::vector<std::string> paths;
  for (int i = 0; i < 12; ++i) {
    const std::string p = "/arch/f" + std::to_string(i);
    make_file(p, 50 * kMB, static_cast<std::uint64_t>(i));
    paths.push_back(p);
  }
  hsm_.migrate_batch(0, paths, "g", nullptr);
  sim_.run();

  std::vector<std::string> scrambled = {paths[7], paths[2],  paths[11],
                                        paths[0], paths[5],  paths[9],
                                        paths[1], paths[10], paths[3],
                                        paths[8], paths[4],  paths[6]};
  const auto seeks_before = lib_.aggregate_stats().seeks;
  RecallOptions unordered;
  unordered.tape_ordered = false;
  std::optional<RecallReport> report;
  hsm_.recall(scrambled, unordered, [&](const RecallReport& r) { report = r; });
  sim_.run();
  EXPECT_EQ(report->files_recalled, 12u);
  EXPECT_GT(lib_.aggregate_stats().seeks - seeks_before, 6u);
}

TEST_F(HsmTest, RoundRobinAssignmentCausesHandoffs) {
  std::vector<std::string> paths;
  for (int i = 0; i < 10; ++i) {
    const std::string p = "/arch/f" + std::to_string(i);
    make_file(p, 50 * kMB, static_cast<std::uint64_t>(i));
    paths.push_back(p);
  }
  hsm_.migrate_batch(0, paths, "g", nullptr);
  sim_.run();

  RecallOptions rr;
  rr.assignment = RecallOptions::Assignment::RoundRobin;
  rr.nodes = {0, 1, 2, 3};
  std::optional<RecallReport> report;
  hsm_.recall(paths, rr, [&](const RecallReport& r) { report = r; });
  sim_.run();
  EXPECT_EQ(report->files_recalled, 10u);
  EXPECT_GE(lib_.aggregate_stats().handoffs, 8u);

  // Affinity on the same layout: no handoffs at all.
  sim::Simulation sim2;
  // (fresh fixture state is easier: re-run within this sim by recalling
  //  again — the data is premigrated now, but handoff counting still works
  //  through a second recall of the same segments)
  const auto handoffs_before = lib_.aggregate_stats().handoffs;
  RecallOptions aff;
  aff.assignment = RecallOptions::Assignment::TapeAffinity;
  aff.nodes = {0, 1, 2, 3};
  std::optional<RecallReport> report2;
  hsm_.recall(paths, aff, [&](const RecallReport& r) { report2 = r; });
  sim_.run();
  EXPECT_EQ(report2->files_recalled, 10u);
  // One possible handoff when the affinity node differs from the previous
  // owner; never one per file.
  EXPECT_LE(lib_.aggregate_stats().handoffs - handoffs_before, 1u);
}

TEST_F(HsmTest, ParallelMigrateUsesMultipleDrives) {
  std::vector<std::string> paths;
  for (int i = 0; i < 8; ++i) {
    const std::string p = "/arch/f" + std::to_string(i);
    make_file(p, 10 * kGB, static_cast<std::uint64_t>(i));
    paths.push_back(p);
  }
  std::optional<MigrateReport> report;
  hsm_.parallel_migrate(paths, {0, 1, 2, 3}, DistributionStrategy::SizeBalanced,
                        "g", [&](const MigrateReport& r) { report = r; });
  sim_.run();
  EXPECT_EQ(report->files_migrated, 8u);
  EXPECT_EQ(lib_.aggregate_stats().mounts, 4u);  // one volume per node
  // Four concurrent 100 MB/s streams; the single robot arm staggers the
  // four mounts, so aggregate lands below the ideal 400 MB/s.
  EXPECT_GT(report->mean_rate_bps(), 150.0 * kMB);
  // And clearly better than any single drive could do.
  EXPECT_GT(report->mean_rate_bps(), 100.0 * kMB);
}

TEST_F(HsmTest, SynchronousDeleteRemovesObjectAndFile) {
  make_file("/arch/f", 100 * kMB, 1);
  hsm_.migrate_batch(0, {"/arch/f"}, "g", nullptr);
  sim_.run();
  const auto* row = hsm_.server(0).export_db().by_path("/arch/f");
  ASSERT_NE(row, nullptr);
  const std::uint64_t cart_id = row->tape_id;

  std::optional<pfs::Errc> result;
  hsm_.synchronous_delete("/arch/f", [&](pfs::Errc e) { result = e; });
  sim_.run();
  EXPECT_EQ(result, pfs::Errc::Ok);
  EXPECT_FALSE(fs_.exists("/arch/f"));
  EXPECT_EQ(hsm_.server(0).object_count(), 0u);
  EXPECT_EQ(hsm_.server(0).export_db().size(), 0u);
  EXPECT_EQ(lib_.cartridge(cart_id)->dead_bytes(), 100 * kMB);

  // Reconcile finds nothing to clean up.
  std::optional<ReconcileReport> rec;
  hsm_.reconcile(false, [&](const ReconcileReport& r) { rec = r; });
  sim_.run();
  EXPECT_EQ(rec->orphans_found, 0u);
}

TEST_F(HsmTest, SynchronousDeleteOfResidentFileJustUnlinks) {
  make_file("/arch/plain", kMB, 1);
  std::optional<pfs::Errc> result;
  hsm_.synchronous_delete("/arch/plain", [&](pfs::Errc e) { result = e; });
  sim_.run();
  EXPECT_EQ(result, pfs::Errc::Ok);
  EXPECT_FALSE(fs_.exists("/arch/plain"));
}

TEST_F(HsmTest, PlainUnlinkLeavesOrphanThatReconcileFinds) {
  make_file("/arch/f", 100 * kMB, 1);
  hsm_.migrate_batch(0, {"/arch/f"}, "g", nullptr);
  sim_.run();
  ASSERT_EQ(fs_.unlink("/arch/f"), pfs::Errc::Ok);  // user bypassed trashcan
  EXPECT_EQ(hsm_.destroy_events(), 1u);

  std::optional<ReconcileReport> rec;
  hsm_.reconcile(true, [&](const ReconcileReport& r) { rec = r; });
  sim_.run();
  EXPECT_EQ(rec->orphans_found, 1u);
  EXPECT_EQ(rec->orphans_deleted, 1u);
  EXPECT_EQ(hsm_.server(0).object_count(), 0u);
  EXPECT_GT(rec->duration, 0u);
}

TEST_F(HsmTest, ReconcileDurationScalesWithNamespace) {
  for (int i = 0; i < 100; ++i) {
    make_file("/arch/f" + std::to_string(i), kMB, 1);
  }
  std::optional<ReconcileReport> small;
  hsm_.reconcile(false, [&](const ReconcileReport& r) { small = r; });
  sim_.run();
  for (int i = 100; i < 300; ++i) {
    make_file("/arch/f" + std::to_string(i), kMB, 1);
  }
  std::optional<ReconcileReport> large;
  hsm_.reconcile(false, [&](const ReconcileReport& r) { large = r; });
  sim_.run();
  EXPECT_GT(large->duration, small->duration);
  EXPECT_GT(large->inodes_walked, small->inodes_walked);
}

TEST_F(HsmTest, OfflineReadEventCounted) {
  make_file("/arch/f", kMB, 1);
  hsm_.migrate_batch(0, {"/arch/f"}, "g", nullptr);
  sim_.run();
  (void)fs_.read_tag("/arch/f");
  EXPECT_EQ(hsm_.offline_read_events(), 1u);
}

// --- aggregation fixtures ---------------------------------------------------

struct AggregationTest : HsmTest {
  static HsmConfig agg_config() {
    HsmConfig cfg;
    cfg.aggregation_enabled = true;
    cfg.aggregate_threshold = 50 * kMB;
    cfg.aggregate_target = 400 * kMB;
    return cfg;
  }
  AggregationTest() : HsmTest(agg_config()) {}
};

TEST_F(AggregationTest, SmallFilesShareTapeTransactions) {
  std::vector<std::string> paths;
  for (int i = 0; i < 400; ++i) {
    const std::string p = "/arch/s" + std::to_string(i);
    make_file(p, 8 * kMB, static_cast<std::uint64_t>(i));
    paths.push_back(p);
  }
  std::optional<MigrateReport> report;
  hsm_.migrate_batch(0, paths, "g", [&](const MigrateReport& r) { report = r; });
  sim_.run();
  EXPECT_EQ(report->files_migrated, 400u);
  // 400 * 8 MB = 3.2 GB packs into eight 400 MB aggregates.
  EXPECT_EQ(report->tape_objects_written, 8u);
  EXPECT_EQ(lib_.aggregate_stats().backhitches, 8u);
  // Dramatically better than the unaggregated ~4 MB/s (one stop per file
  // would spend 400 * 1.92 s stopped).
  EXPECT_GT(report->mean_rate_bps(), 25.0 * kMB);
}

TEST_F(AggregationTest, LargeFilesStayStandalone) {
  make_file("/arch/big", kGB, 1);
  make_file("/arch/tiny", kMB, 2);
  std::optional<MigrateReport> report;
  hsm_.migrate_batch(0, {"/arch/big", "/arch/tiny"}, "g",
                     [&](const MigrateReport& r) { report = r; });
  sim_.run();
  EXPECT_EQ(report->files_migrated, 2u);
  EXPECT_EQ(report->tape_objects_written, 2u);
}

TEST_F(AggregationTest, MemberRecallReadsAggregateAndRestoresFile) {
  std::vector<std::string> paths;
  for (int i = 0; i < 10; ++i) {
    const std::string p = "/arch/s" + std::to_string(i);
    make_file(p, 8 * kMB, 0x100 + static_cast<std::uint64_t>(i));
    paths.push_back(p);
  }
  hsm_.migrate_batch(0, paths, "g", nullptr);
  sim_.run();

  std::optional<RecallReport> report;
  hsm_.recall({paths[3]}, RecallOptions{},
              [&](const RecallReport& r) { report = r; });
  sim_.run();
  EXPECT_EQ(report->files_recalled, 1u);
  EXPECT_EQ(report->bytes, 8 * kMB);
  EXPECT_EQ(report->tape_bytes, 80 * kMB);  // whole aggregate read
  EXPECT_EQ(fs_.read_tag(paths[3]).value(), 0x103u);
}

TEST_F(AggregationTest, DeletingAllMembersReclaimsAggregateSegment) {
  std::vector<std::string> paths;
  for (int i = 0; i < 3; ++i) {
    const std::string p = "/arch/s" + std::to_string(i);
    make_file(p, 8 * kMB, static_cast<std::uint64_t>(i));
    paths.push_back(p);
  }
  hsm_.migrate_batch(0, paths, "g", nullptr);
  sim_.run();
  const auto* row = hsm_.server(0).export_db().by_path(paths[0]);
  ASSERT_NE(row, nullptr);
  const std::uint64_t cart_id = row->tape_id;

  for (const auto& p : paths) {
    hsm_.synchronous_delete(p, nullptr);
  }
  sim_.run();
  EXPECT_EQ(hsm_.server(0).object_count(), 0u);  // members + aggregate gone
  EXPECT_EQ(lib_.cartridge(cart_id)->dead_bytes(), 24 * kMB);
}

// --- multi-server routing ----------------------------------------------------

struct MultiServerTest : HsmTest {
  static HsmConfig cfg() {
    HsmConfig c;
    c.server_count = 4;
    return c;
  }
  MultiServerTest() : HsmTest(cfg()) {}
};

TEST_F(MultiServerTest, ObjectsSpreadAcrossServers) {
  std::vector<std::string> paths;
  for (int i = 0; i < 32; ++i) {
    const std::string p = "/arch/f" + std::to_string(i);
    make_file(p, kMB, static_cast<std::uint64_t>(i));
    paths.push_back(p);
  }
  hsm_.migrate_batch(0, paths, "g", nullptr);
  sim_.run();
  unsigned used = 0;
  for (unsigned s = 0; s < hsm_.server_count(); ++s) {
    if (hsm_.server(s).object_count() > 0) ++used;
  }
  EXPECT_GE(used, 2u);
  // Recall still resolves every path through its owning server.
  std::optional<RecallReport> report;
  hsm_.recall(paths, RecallOptions{}, [&](const RecallReport& r) { report = r; });
  sim_.run();
  EXPECT_EQ(report->files_recalled, 32u);
}

}  // namespace
}  // namespace cpa::hsm
