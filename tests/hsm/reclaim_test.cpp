// Volume space reclamation: live segments move off mostly-dead volumes
// and the owning objects follow.
#include <gtest/gtest.h>

#include <optional>

#include "hsm/hsm.hpp"
#include "simcore/units.hpp"

namespace cpa::hsm {
namespace {

pfs::FsConfig fs_config() {
  pfs::FsConfig cfg;
  cfg.pools = {pfs::PoolConfig{"fast", 0, 4, false}};
  return cfg;
}

class ReclaimTest : public ::testing::Test {
 protected:
  ReclaimTest()
      : fs_(sim_, fs_config()),
        lib_(sim_, net_, lib_config()),
        hsm_(sim_, net_, fs_, lib_, Fabric::unconstrained(), HsmConfig{}) {}

  static tape::LibraryConfig lib_config() {
    tape::LibraryConfig cfg;
    cfg.drive_count = 4;
    return cfg;
  }

  void make_file(const std::string& path, std::uint64_t size, std::uint64_t tag) {
    ASSERT_EQ(fs_.mkdirs(pfs::parent_path(path)), pfs::Errc::Ok);
    ASSERT_TRUE(fs_.create(path).ok());
    ASSERT_EQ(fs_.write_all(path, size, tag), pfs::Errc::Ok);
  }

  /// Migrates n files to one volume, then sync-deletes all but `keep`.
  std::vector<std::string> fragment_volume(unsigned n, unsigned keep) {
    std::vector<std::string> paths;
    for (unsigned i = 0; i < n; ++i) {
      const std::string p = "/arch/f" + std::to_string(i);
      make_file(p, 50 * kMB, 0x100 + i);
      paths.push_back(p);
    }
    hsm_.migrate_batch(0, paths, "g", nullptr);
    sim_.run();
    for (unsigned i = keep; i < n; ++i) {
      hsm_.synchronous_delete(paths[i], nullptr);
    }
    sim_.run();
    paths.resize(keep);
    return paths;
  }

  sim::Simulation sim_;
  sim::FlowNetwork net_{sim_};
  pfs::FileSystem fs_;
  tape::TapeLibrary lib_;
  HsmSystem hsm_;
};

TEST_F(ReclaimTest, MovesLiveSegmentsAndRetiresVolume) {
  const auto survivors = fragment_volume(20, 4);  // 80% dead
  ASSERT_EQ(lib_.cartridge_count(), 1u);
  tape::Cartridge* old_cart = lib_.cartridge(1);
  ASSERT_EQ(old_cart->dead_bytes(), 16 * 50 * kMB);

  std::optional<ReclaimReport> report;
  hsm_.reclaim_volumes(0.5, 0, [&](const ReclaimReport& r) { report = r; });
  sim_.run();
  ASSERT_TRUE(report.has_value());
  EXPECT_EQ(report->volumes_examined, 1u);
  EXPECT_EQ(report->volumes_reclaimed, 1u);
  EXPECT_EQ(report->objects_moved, 4u);
  EXPECT_EQ(report->bytes_moved, 4 * 50 * kMB);

  // Old volume is now all-dead; survivors live on a fresh volume.
  EXPECT_EQ(old_cart->dead_bytes(), old_cart->bytes_used());
  EXPECT_EQ(lib_.cartridge_count(), 2u);
  for (const auto& p : survivors) {
    const auto* row = hsm_.server(0).export_db().by_path(p);
    ASSERT_NE(row, nullptr) << p;
    EXPECT_EQ(row->tape_id, 2u);
  }
}

TEST_F(ReclaimTest, RecallWorksAfterReclaim) {
  const auto survivors = fragment_volume(10, 3);
  hsm_.reclaim_volumes(0.5, 0, nullptr);
  sim_.run();
  std::optional<RecallReport> rr;
  hsm_.recall(survivors, RecallOptions{},
              [&](const RecallReport& r) { rr = r; });
  sim_.run();
  EXPECT_EQ(rr->files_recalled, 3u);
  EXPECT_EQ(rr->files_failed, 0u);
  for (unsigned i = 0; i < 3; ++i) {
    EXPECT_EQ(fs_.read_tag(survivors[i]).value(), 0x100u + i);
  }
}

TEST_F(ReclaimTest, BelowThresholdVolumesAreLeftAlone) {
  fragment_volume(20, 15);  // only 25% dead
  std::optional<ReclaimReport> report;
  hsm_.reclaim_volumes(0.5, 0, [&](const ReclaimReport& r) { report = r; });
  sim_.run();
  EXPECT_EQ(report->volumes_reclaimed, 0u);
  EXPECT_EQ(report->objects_moved, 0u);
  EXPECT_EQ(lib_.cartridge_count(), 1u);
}

TEST_F(ReclaimTest, NoVolumesIsCleanNoOp) {
  std::optional<ReclaimReport> report;
  hsm_.reclaim_volumes(0.5, 0, [&](const ReclaimReport& r) { report = r; });
  sim_.run();
  ASSERT_TRUE(report.has_value());
  EXPECT_EQ(report->volumes_examined, 0u);
}

TEST_F(ReclaimTest, AllDeadVolumeNeedsNoMove) {
  fragment_volume(5, 0);
  std::optional<ReclaimReport> report;
  hsm_.reclaim_volumes(0.5, 0, [&](const ReclaimReport& r) { report = r; });
  sim_.run();
  // Nothing live to move: volume is scratch already, not "reclaimed".
  EXPECT_EQ(report->objects_moved, 0u);
  EXPECT_EQ(report->volumes_reclaimed, 0u);
}

}  // namespace
}  // namespace cpa::hsm
