#include "archive/system.hpp"

#include <gtest/gtest.h>

namespace cpa::archive {
namespace {

TEST(SystemConfig, RoadrunnerMatchesPaperPlant) {
  const SystemConfig cfg = SystemConfig::roadrunner();
  EXPECT_EQ(cfg.cluster.fta_nodes, 10u);
  EXPECT_EQ(cfg.cluster.trunk_count, 2u);
  EXPECT_EQ(cfg.tape.drive_count, 24u);
  EXPECT_TRUE(cfg.hsm.lan_free);
  EXPECT_EQ(cfg.hsm.server_count, 1u);
  // Fast pool = 100 TB of FC disk.
  ASSERT_GE(cfg.archive_fs.pools.size(), 2u);
  EXPECT_EQ(cfg.archive_fs.pools[0].name, "fast");
  EXPECT_EQ(cfg.archive_fs.pools[0].capacity_bytes, 100ULL * kTB);
  EXPECT_EQ(cfg.archive_fs.pools[1].name, "slow");
}

TEST(CotsParallelArchive, ConstructsAndWiresEverything) {
  CotsParallelArchive sys(SystemConfig::small());
  EXPECT_EQ(sys.library().drive_count(), 4u);
  EXPECT_EQ(sys.fta().node_count(), 4u);
  EXPECT_TRUE(sys.archive_fs().exists("/.trashcan"));
}

class EndToEndTest : public ::testing::Test {
 protected:
  EndToEndTest() : sys_(SystemConfig::small()) {}
  CotsParallelArchive sys_;
};

TEST_F(EndToEndTest, FullLifecycleArchiveMigrateRecallRestoreVerify) {
  // 1. Science run produces files on scratch.
  for (int i = 0; i < 8; ++i) {
    ASSERT_EQ(sys_.make_file(sys_.scratch(), "/runs/ckpt" + std::to_string(i),
                             100 * kMB, 0xC0DE + static_cast<std::uint64_t>(i)),
              pfs::Errc::Ok);
  }
  // 2. pfcp to the archive file system.
  const auto cp = sys_.pfcp_archive("/runs", "/proj/run1");
  ASSERT_EQ(cp.files_copied, 8u);
  // 3. Verify the copy.
  const auto cm = sys_.pfcm("/runs", "/proj/run1");
  ASSERT_EQ(cm.files_matched, 8u);
  // 4. ILM policy migrates everything older than 0 s to tape.
  pfs::Rule rule;
  rule.name = "tape-candidates";
  rule.action = pfs::Rule::Action::List;
  rule.where = {pfs::Condition::path_glob("/proj/*"),
                pfs::Condition::dmapi_is(pfs::DmapiState::Resident)};
  sys_.policy().add_rule(rule);
  bool migrated = false;
  sys_.run_migration_cycle("tape-candidates", "proj",
                           [&](const hsm::MigrateReport& r) {
                             EXPECT_EQ(r.files_migrated, 8u);
                             migrated = true;
                           });
  sys_.sim().run();
  ASSERT_TRUE(migrated);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(
        sys_.archive_fs().stat("/proj/run1/ckpt" + std::to_string(i)).value().dmapi,
        pfs::DmapiState::Migrated);
  }
  // Disk space was released by the punch.
  EXPECT_EQ(sys_.archive_fs().pool("fast").value().used_bytes, 0u);

  // 5. Years later: restore the whole project back to scratch.
  const auto restore = sys_.pfcp_restore("/proj/run1", "/restage/run1");
  EXPECT_EQ(restore.files_restored, 8u);
  EXPECT_EQ(restore.files_copied, 8u);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(sys_.scratch()
                  .read_tag("/restage/run1/ckpt" + std::to_string(i))
                  .value(),
              0xC0DE + static_cast<std::uint64_t>(i));
  }
}

TEST_F(EndToEndTest, MigrationCycleChargesScanTime) {
  for (int i = 0; i < 50; ++i) {
    ASSERT_EQ(sys_.make_file(sys_.archive_fs(), "/p/f" + std::to_string(i),
                             kMB, 1),
              pfs::Errc::Ok);
  }
  pfs::Rule rule;
  rule.name = "all";
  rule.action = pfs::Rule::Action::List;
  sys_.policy().add_rule(rule);
  sim::Tick finished = 0;
  sys_.run_migration_cycle("all", "g", [&](const hsm::MigrateReport& r) {
    EXPECT_EQ(r.files_migrated, 50u);
    finished = sys_.sim().now();
  });
  sys_.sim().run();
  // Scan of ~52 inodes over 4 streams at 1667/s plus migration time.
  EXPECT_GT(finished, 0u);
}

TEST_F(EndToEndTest, MigrationCycleWithUnknownRuleCompletesEmpty) {
  bool done = false;
  sys_.run_migration_cycle("no-such-rule", "g",
                           [&](const hsm::MigrateReport& r) {
                             EXPECT_EQ(r.files_migrated, 0u);
                             done = true;
                           });
  sys_.sim().run();
  EXPECT_TRUE(done);
}

TEST_F(EndToEndTest, ConcurrentJobsShareTheTrunks) {
  for (int j = 0; j < 4; ++j) {
    for (int f = 0; f < 4; ++f) {
      ASSERT_EQ(sys_.make_file(sys_.scratch(),
                               "/j" + std::to_string(j) + "/f" + std::to_string(f),
                               500 * kMB, static_cast<std::uint64_t>(j * 10 + f)),
                pfs::Errc::Ok);
    }
  }
  // One job alone.
  const auto solo = sys_.pfcp_archive("/j0", "/archive/solo");
  // Three jobs concurrently.
  std::vector<pftool::JobReport> reports;
  for (int j = 1; j < 4; ++j) {
    sys_.submit(JobSpec::pfcp("/j" + std::to_string(j),
                              "/archive/c" + std::to_string(j)))
        .on_done([&](const pftool::JobReport& r) { reports.push_back(r); });
  }
  sys_.sim().run();
  ASSERT_EQ(reports.size(), 3u);
  for (const auto& r : reports) {
    EXPECT_EQ(r.files_copied, 4u);
    // Sharing the plant: each concurrent job is slower than the solo run.
    EXPECT_LT(r.rate_bps(), solo.rate_bps() * 1.01);
  }
}

}  // namespace
}  // namespace cpa::archive
