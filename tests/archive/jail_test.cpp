#include "archive/jail.hpp"

#include <gtest/gtest.h>

namespace cpa::archive {
namespace {

TEST(CommandJail, DefaultAllowsPftoolAndMetadataTools) {
  const CommandJail jail = CommandJail::lanl_default();
  for (const char* c : {"pfls", "pfcp", "pfcm", "ls", "mkdir", "mv", "find",
                        "stat", "du", "rm"}) {
    EXPECT_TRUE(jail.is_allowed(c)) << c;
  }
}

TEST(CommandJail, DefaultDeniesTapeDangerousTools) {
  const CommandJail jail = CommandJail::lanl_default();
  // "the grep from &*&(*&" and friends.
  for (const char* c : {"grep", "cat", "tar", "cp", "md5sum", "less"}) {
    EXPECT_FALSE(jail.is_allowed(c)) << c;
  }
}

TEST(CommandJail, PolicyIsEditable) {
  CommandJail jail = CommandJail::lanl_default();
  jail.allow("tar");
  EXPECT_TRUE(jail.is_allowed("tar"));
  jail.deny("pfls");
  EXPECT_FALSE(jail.is_allowed("pfls"));
}

TEST(CommandJail, AllowedCommandsEnumerates) {
  const CommandJail jail = CommandJail::lanl_default();
  const auto cmds = jail.allowed_commands();
  EXPECT_GE(cmds.size(), 10u);
}

}  // namespace
}  // namespace cpa::archive
