// Golden-digest regression for the Figure 10 campaign.
//
// Runs the seed-2009, 1/100-scale Open Science campaign end to end and
// compares per-job (files, bytes, duration) tuples byte-for-byte against
// tests/archive/golden_fig10.txt.  The campaign exercises every layer —
// workload generator, pfcp job scheduling, the flow network, tape
// migration, fault-free restart journals — so any behavioural drift in
// the simcore scheduler (or in PR 2's replay machinery) shows up as a
// digest mismatch with a per-job diff.
//
// Regenerate intentionally with:
//   CPA_UPDATE_GOLDEN=1 ./archive_test --gtest_filter='GoldenCampaign.*'
//
// Provenance: the digest was first captured from the pre-incremental
// scheduler.  The incremental rewrite reproduced every per-job file and
// byte count exactly; 13 of 62 durations moved by <= 65 ns (relative
// ~1e-12) because lazy byte accounting evaluates rate*(t1-t0) in one
// multiply instead of summing per-event slices — pure FP re-association,
// at which point the golden was re-pinned to the incremental scheduler.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "bench/campaign_runner.hpp"

namespace cpa {
namespace {

#ifndef CPA_SOURCE_DIR
#error "CPA_SOURCE_DIR must point at the repository root"
#endif

constexpr const char* kGoldenPath =
    CPA_SOURCE_DIR "/tests/archive/golden_fig10.txt";

// FNV-1a 64: stable across platforms, no dependencies.
std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

std::string render_digest(const bench::CampaignResult& result) {
  std::ostringstream out;
  out << "# fig10 campaign golden digest: seed 2009, scale 0.01\n";
  out << "# job_id files_copied total_bytes duration_seconds\n";
  std::string body;
  for (const auto& job : result.jobs) {
    char line[160];
    std::snprintf(line, sizeof(line), "job %2u %6llu %15llu %.9f\n",
                  job.spec.job_id,
                  static_cast<unsigned long long>(job.files_copied),
                  static_cast<unsigned long long>(job.spec.total_bytes),
                  job.elapsed_seconds);
    body += line;
  }
  out << body;
  char tail[64];
  std::snprintf(tail, sizeof(tail), "fnv1a %016llx\n",
                static_cast<unsigned long long>(fnv1a(body)));
  out << tail;
  return out.str();
}

TEST(GoldenCampaign, Fig10Seed2009DigestUnchanged) {
  bench::CampaignOptions opts;  // defaults: seed 2009, scale 0.01
  const bench::CampaignResult result = bench::run_campaign(opts);
  ASSERT_EQ(result.jobs.size(), 62u);
  const std::string actual = render_digest(result);

  if (std::getenv("CPA_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(kGoldenPath, std::ios::binary);
    ASSERT_TRUE(out.good()) << "cannot write " << kGoldenPath;
    out << actual;
    GTEST_SKIP() << "golden regenerated at " << kGoldenPath;
  }

  std::ifstream in(kGoldenPath, std::ios::binary);
  ASSERT_TRUE(in.good()) << "missing golden file " << kGoldenPath
                         << " (run with CPA_UPDATE_GOLDEN=1 to create)";
  std::ostringstream expected;
  expected << in.rdbuf();
  EXPECT_EQ(expected.str(), actual)
      << "campaign results drifted from the golden digest; if intentional, "
         "regenerate with CPA_UPDATE_GOLDEN=1";
}

}  // namespace
}  // namespace cpa
