#include "archive/trashcan.hpp"

#include <gtest/gtest.h>

#include "archive/system.hpp"

namespace cpa::archive {
namespace {

class TrashcanTest : public ::testing::Test {
 protected:
  TrashcanTest() : sys_(SystemConfig::small()) {}

  void make_archived_file(const std::string& path, std::uint64_t size,
                          std::uint64_t tag) {
    ASSERT_EQ(sys_.make_file(sys_.archive_fs(), path, size, tag), pfs::Errc::Ok);
    sys_.hsm().migrate_batch(0, {path}, "g", nullptr);
    sys_.sim().run();
    ASSERT_EQ(sys_.archive_fs().stat(path).value().dmapi,
              pfs::DmapiState::Migrated);
  }

  CotsParallelArchive sys_;
};

TEST_F(TrashcanTest, TrashMovesFileWithoutDestroyingData) {
  make_archived_file("/arch/f", 10 * kMB, 1);
  const auto destroys_before = sys_.hsm().destroy_events();
  ASSERT_EQ(sys_.trashcan().trash("/arch/f"), pfs::Errc::Ok);
  EXPECT_FALSE(sys_.archive_fs().exists("/arch/f"));
  EXPECT_EQ(sys_.trashcan().size(), 1u);
  // Rename destroys nothing: no DMAPI destroy event, no orphan.
  EXPECT_EQ(sys_.hsm().destroy_events(), destroys_before);

  bool checked = false;
  sys_.hsm().reconcile(false, [&](const hsm::ReconcileReport& r) {
    EXPECT_EQ(r.orphans_found, 0u);
    checked = true;
  });
  sys_.sim().run();
  EXPECT_TRUE(checked);
}

TEST_F(TrashcanTest, UndeleteRestoresOriginalPath) {
  make_archived_file("/arch/f", 10 * kMB, 0xAB);
  ASSERT_EQ(sys_.trashcan().trash("/arch/f"), pfs::Errc::Ok);
  ASSERT_EQ(sys_.trashcan().undelete("/arch/f"), pfs::Errc::Ok);
  EXPECT_TRUE(sys_.archive_fs().exists("/arch/f"));
  EXPECT_EQ(sys_.trashcan().size(), 0u);
  // The file is still migrated, and still recallable.
  bool recalled = false;
  sys_.hsm().recall({"/arch/f"}, hsm::RecallOptions{},
                    [&](const hsm::RecallReport& r) {
                      EXPECT_EQ(r.files_recalled, 1u);
                      recalled = true;
                    });
  sys_.sim().run();
  EXPECT_TRUE(recalled);
  EXPECT_EQ(sys_.archive_fs().read_tag("/arch/f").value(), 0xABu);
}

TEST_F(TrashcanTest, TrashErrors) {
  EXPECT_EQ(sys_.trashcan().trash("/missing"), pfs::Errc::NotFound);
  EXPECT_EQ(sys_.trashcan().undelete("/never/trashed"), pfs::Errc::NotFound);
  make_archived_file("/arch/f", kMB, 1);
  ASSERT_EQ(sys_.trashcan().trash("/arch/f"), pfs::Errc::Ok);
  EXPECT_EQ(sys_.trashcan().trash("/arch/f"), pfs::Errc::NotFound);
}

TEST_F(TrashcanTest, PurgeDeletesAgedEntriesSynchronously) {
  make_archived_file("/arch/old", 10 * kMB, 1);
  ASSERT_EQ(sys_.trashcan().trash("/arch/old"), pfs::Errc::Ok);
  const sim::Tick cutoff = sys_.sim().now();
  sys_.sim().run_until(sys_.sim().now() + sim::days(1));
  make_archived_file("/arch/new", 10 * kMB, 2);
  ASSERT_EQ(sys_.trashcan().trash("/arch/new"), pfs::Errc::Ok);

  std::size_t purged = 0;
  sys_.trashcan().purge_older_than(cutoff, [&](std::size_t n) { purged = n; });
  sys_.sim().run();
  EXPECT_EQ(purged, 1u);
  EXPECT_EQ(sys_.trashcan().size(), 1u);  // the fresh entry survives
  // The purged file's tape object is gone (synchronous delete).
  unsigned total_objects = 0;
  for (unsigned s = 0; s < sys_.hsm().server_count(); ++s) {
    total_objects += static_cast<unsigned>(sys_.hsm().server(s).object_count());
  }
  EXPECT_EQ(total_objects, 1u);

  bool checked = false;
  sys_.hsm().reconcile(false, [&](const hsm::ReconcileReport& r) {
    EXPECT_EQ(r.orphans_found, 0u);
    checked = true;
  });
  sys_.sim().run();
  EXPECT_TRUE(checked);
}

TEST_F(TrashcanTest, EntriesReportMetadata) {
  make_archived_file("/arch/f", 5 * kMB, 1);
  const sim::Tick t = sys_.sim().now();
  ASSERT_EQ(sys_.trashcan().trash("/arch/f"), pfs::Errc::Ok);
  const auto entries = sys_.trashcan().entries();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].original_path, "/arch/f");
  EXPECT_EQ(entries[0].size, 5 * kMB);
  EXPECT_EQ(entries[0].trashed_at, t);
  EXPECT_TRUE(sys_.archive_fs().exists(entries[0].trash_path));
}

}  // namespace
}  // namespace cpa::archive
