// End-to-end fault injection and recovery through the submission API:
// node crashes resumed from the restart journal, drive failures ridden
// out by the HSM retry policy, media errors retried with backoff, and
// seeded plans replaying byte-for-byte.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "archive/system.hpp"

namespace cpa::archive {
namespace {

/// 8 multi-chunk files (16 GB = 4 chunks each at the default 4 GB chunk
/// size) so a mid-copy node crash always aborts in-flight chunks and the
/// journal has real per-chunk state to resume.
void make_tree(CotsParallelArchive& sys, unsigned files) {
  for (unsigned i = 0; i < files; ++i) {
    sys.make_file(sys.scratch(), "/scratch/tree/f" + std::to_string(i),
                  16 * kGB, 0xBEEF00 + i);
  }
}

TEST(FaultRecovery, NodeCrashResumesFromJournalAndTreeMatches) {
  fault::FaultPlan plan;
  plan.node_crash(1, sim::secs(10));  // permanent: attempt 2 avoids it
  SystemConfig cfg = SystemConfig::small().with_workers(8).with_fault_plan(plan);
  CotsParallelArchive sys(cfg);
  make_tree(sys, 8);

  JobHandle job = sys.submit(JobSpec::pfcp("/scratch/tree", "/proj/tree")
                                 .with_restartable()
                                 .with_retry(fault::RetryPolicy::standard()));
  sys.sim().run();

  ASSERT_TRUE(job.done());
  EXPECT_EQ(job.state(), JobState::Succeeded);
  EXPECT_EQ(job.attempts(), 2u);  // crash failed attempt 1, relaunch healed
  const pftool::JobReport& r = job.report();
  EXPECT_EQ(r.files_failed, 0u);
  // The relaunch must not have re-copied what attempt 1 already landed.
  EXPECT_GT(r.chunks_skipped_restart, 0u);
  EXPECT_GT(sys.observer().metrics().counter_value("pftool.worker_crashes"), 0u);
  EXPECT_GT(sys.observer().metrics().counter_value("pftool.retries_total"), 0u);
  EXPECT_EQ(sys.observer().metrics().counter_value("fault.injected_total"), 1u);

  // Byte-exact tree compare: every file present, sized and tagged right.
  const pftool::JobReport cm = sys.pfcm("/scratch/tree", "/proj/tree");
  EXPECT_EQ(cm.files_compared, 8u);
  EXPECT_EQ(cm.files_mismatched, 0u);
}

TEST(FaultRecovery, RelaunchBackoffIsExactInVirtualTime) {
  fault::FaultPlan plan;
  plan.node_crash(1, sim::secs(10));
  SystemConfig cfg = SystemConfig::small().with_workers(8).with_fault_plan(plan);
  CotsParallelArchive sys(cfg);
  make_tree(sys, 8);

  fault::RetryPolicy rp;
  rp.max_attempts = 3;
  rp.backoff = sim::secs(30);
  JobHandle job = sys.submit(JobSpec::pfcp("/scratch/tree", "/proj/tree")
                                 .with_restartable()
                                 .with_retry(rp));

  // Step to the attempt-1 failure, then to the relaunch: the gap must be
  // exactly the policy's first backoff (virtual time makes this exact).
  while (job.state() != JobState::Retrying && sys.sim().step()) {
  }
  ASSERT_EQ(job.state(), JobState::Retrying);
  const sim::Tick failed_at = sys.sim().now();
  while (job.state() != JobState::Running && sys.sim().step()) {
  }
  ASSERT_EQ(job.state(), JobState::Running);
  EXPECT_EQ(sys.sim().now() - failed_at, rp.delay(1));

  job.await();
  EXPECT_EQ(job.state(), JobState::Succeeded);
}

TEST(FaultRecovery, DriveFailuresDuringMigrationAreRetried) {
  fault::FaultPlan plan;
  plan.drive_failure(0, sim::secs(30), sim::minutes(3));
  plan.drive_failure(1, sim::secs(60), sim::minutes(3));
  SystemConfig cfg = SystemConfig::small().with_fault_plan(plan);
  CotsParallelArchive sys(cfg);

  std::vector<std::string> paths;
  for (unsigned i = 0; i < 8; ++i) {
    const std::string p = "/proj/mig/f" + std::to_string(i);
    sys.make_file(sys.archive_fs(), p, 2 * kGB, 0xAB00 + i);
    paths.push_back(p);
  }
  hsm::MigrateReport mig;
  sys.hsm().parallel_migrate(paths, {0, 1},
                             hsm::DistributionStrategy::SizeBalanced, "grp",
                             [&mig](const hsm::MigrateReport& r) { mig = r; });
  sys.sim().run();

  EXPECT_EQ(mig.files_migrated, 8u);
  EXPECT_EQ(mig.files_failed, 0u);
  EXPECT_GT(mig.retries, 0u);  // failover to a healthy drive happened
  EXPECT_EQ(sys.observer().metrics().counter_value("fault.injected_total"), 2u);
  EXPECT_EQ(sys.observer().metrics().counter_value("fault.repaired_total"), 2u);
}

TEST(FaultRecovery, MediaErrorsDuringRecallAreRetriedWithBackoff) {
  // Damage every cartridge index that could back the group for a 10 min
  // window starting at t=1h; the recall launched inside the window fails,
  // backs off, and succeeds once the media heals.
  fault::FaultPlan plan;
  for (std::uint64_t c = 0; c < 8; ++c) {
    plan.media_error(c, sim::hours(1), sim::minutes(10));
  }
  fault::RetryPolicy rp;
  rp.max_attempts = 8;
  rp.backoff = sim::minutes(5);
  rp.max_backoff = sim::minutes(10);
  SystemConfig cfg = SystemConfig::small().with_retry(rp).with_fault_plan(plan);
  CotsParallelArchive sys(cfg);

  std::vector<std::string> paths;
  for (unsigned i = 0; i < 4; ++i) {
    const std::string p = "/proj/rec/f" + std::to_string(i);
    sys.make_file(sys.archive_fs(), p, 1 * kGB, 0xCD00 + i);
    paths.push_back(p);
  }
  bool migrated = false;
  sys.hsm().parallel_migrate(paths, {0},
                             hsm::DistributionStrategy::SizeBalanced, "grp",
                             [&migrated](const hsm::MigrateReport& r) {
                               migrated = r.files_failed == 0;
                             });
  // Launch the recall just before the strike: it resolves against healthy
  // media, then the window opens while its reads are still in flight, so
  // later reads fail transiently and go through the backoff path.
  hsm::RecallReport rec;
  sys.sim().at(sim::hours(1) - sim::secs(10), [&] {
    sys.hsm().recall(paths, hsm::RecallOptions{},
                     [&rec](const hsm::RecallReport& r) { rec = r; });
  });
  sys.sim().run();
  ASSERT_TRUE(migrated);

  EXPECT_EQ(rec.files_recalled, 4u);
  EXPECT_EQ(rec.files_failed, 0u);
  EXPECT_GT(rec.retries, 0u);
}

/// Renders everything an acceptance check would compare across two runs.
std::string faulty_run_digest(std::uint64_t seed) {
  fault::RandomFaultConfig rnd;
  rnd.drive_failures = 2;
  rnd.node_crashes = 1;
  rnd.drives = 4;
  rnd.nodes = 4;
  rnd.horizon = sim::minutes(2);
  const fault::FaultPlan plan = fault::FaultPlan::random(rnd, seed);

  SystemConfig cfg = SystemConfig::small().with_workers(8).with_fault_plan(plan);
  CotsParallelArchive sys(cfg);
  make_tree(sys, 8);
  JobHandle job = sys.submit(JobSpec::pfcp("/scratch/tree", "/proj/tree")
                                 .with_restartable()
                                 .with_retry(fault::RetryPolicy::standard()));
  sys.sim().run();

  std::string digest = plan.render();
  digest += '\n';
  digest += job.report().render();
  digest += "attempts=" + std::to_string(job.attempts());
  digest += " injected=" +
            std::to_string(
                sys.observer().metrics().counter_value("fault.injected_total"));
  digest += " retries=" +
            std::to_string(
                sys.observer().metrics().counter_value("pftool.retries_total"));
  return digest;
}

TEST(FaultRecovery, SeededFaultPlanReplaysByteForByte) {
  const std::string a = faulty_run_digest(1234);
  const std::string b = faulty_run_digest(1234);
  const std::string c = faulty_run_digest(5678);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);  // a different seed must produce a different plan
}

TEST(FaultRecovery, JobRecordsAreReapedAcrossACampaign) {
  CotsParallelArchive sys(SystemConfig::small());
  std::size_t max_live = 0;
  for (unsigned i = 0; i < 62; ++i) {
    const std::string src = "/scratch/c/f" + std::to_string(i);
    sys.make_file(sys.scratch(), src, 64 * kMB, 0xF00 + i);
    JobHandle job =
        sys.submit(JobSpec::pfcp(src, "/proj/c/f" + std::to_string(i)));
    max_live = std::max(max_live, sys.jobs_live());
    job.await();
    EXPECT_EQ(job.state(), JobState::Succeeded);
  }
  // submit() reaps finished records, so the live set never grows with the
  // campaign; the bound is the in-flight job plus the one just submitted.
  EXPECT_LE(max_live, 2u);
  sys.reap_finished();
  EXPECT_EQ(sys.jobs_live(), 0u);
}

}  // namespace
}  // namespace cpa::archive
