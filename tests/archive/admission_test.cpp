// JobHandle lifecycle under admission queueing: await/on_done while
// Queued, cancel-before-admit, backpressure rejection, reaping of jobs
// that never launched, determinism of the admission order through the
// full plant, and the admission-wait trace span keeping the profiler's
// conservation invariant intact.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "archive/system.hpp"
#include "obs/profile.hpp"

namespace cpa::archive {
namespace {

/// One-slot admission: every job but the first queues behind it.
SystemConfig one_slot_config() {
  return SystemConfig::small().with_sched(
      sched::SchedConfig{}.with_max_running_jobs(1));
}

void make_tree(CotsParallelArchive& sys, const std::string& root, int files) {
  for (int i = 0; i < files; ++i) {
    ASSERT_EQ(sys.make_file(sys.scratch(), root + "/f" + std::to_string(i),
                            20 * kMB, 0xAB + static_cast<std::uint64_t>(i)),
              pfs::Errc::Ok);
  }
}

TEST(Admission, AwaitAndOnDoneWorkWhileQueued) {
  CotsParallelArchive sys(one_slot_config());
  make_tree(sys, "/a", 2);
  make_tree(sys, "/b", 2);
  JobHandle j1 = sys.submit(JobSpec::pfcp("/a", "/proj/a"));
  JobHandle j2 = sys.submit(JobSpec::pfcp("/b", "/proj/b"));
  // Even the admitted job reads Queued until its deferred launch event.
  EXPECT_EQ(j1.state(), JobState::Queued);
  EXPECT_EQ(j2.state(), JobState::Queued);
  EXPECT_FALSE(j2.done());
  bool fired = false;
  j2.on_done([&](const pftool::JobReport& r) {
    fired = true;
    EXPECT_EQ(r.files_failed, 0u);
  });
  EXPECT_FALSE(fired);  // registered while Queued: deferred, not dropped
  const pftool::JobReport& rep = j2.await();
  EXPECT_TRUE(fired);
  EXPECT_EQ(rep.files_copied, 2u);
  EXPECT_EQ(j2.state(), JobState::Succeeded);
  EXPECT_EQ(j2.attempts(), 1u);
  // The single slot forces serialization, so awaiting j2 drained j1 too.
  EXPECT_EQ(j1.state(), JobState::Succeeded);
}

TEST(Admission, CancelBeforeAdmitNeverLaunches) {
  CotsParallelArchive sys(one_slot_config());
  make_tree(sys, "/a", 1);
  make_tree(sys, "/b", 1);
  JobHandle j1 = sys.submit(JobSpec::pfcp("/a", "/proj/a"));
  JobHandle j2 = sys.submit(JobSpec::pfcp("/b", "/proj/b"));
  bool fired = false;
  j2.on_done([&](const pftool::JobReport&) { fired = true; });
  // j1 holds the slot (admitted, launch pending): not cancellable.
  EXPECT_FALSE(j1.cancel());
  // j2 is genuinely waiting in the queue: cancellable exactly once.
  EXPECT_TRUE(j2.cancel());
  EXPECT_EQ(j2.state(), JobState::Cancelled);
  EXPECT_TRUE(j2.done());
  EXPECT_TRUE(fired);  // completion hooks fire at cancellation
  EXPECT_EQ(j2.attempts(), 0u);
  EXPECT_FALSE(j2.cancel());
  sys.sim().run();
  EXPECT_EQ(j1.state(), JobState::Succeeded);
  EXPECT_EQ(j2.attempts(), 0u);  // the cancelled job never launched
  EXPECT_FALSE(j1.cancel());     // terminal jobs are not cancellable
  EXPECT_EQ(sys.observer().metrics().counter_value("sched.cancelled"), 1u);
}

TEST(Admission, FullQueueRejectsAtSubmitTerminally) {
  SystemConfig cfg = SystemConfig::small().with_sched(
      sched::SchedConfig{}.with_max_running_jobs(1).with_max_queue(1));
  CotsParallelArchive sys(cfg);
  make_tree(sys, "/a", 1);
  make_tree(sys, "/b", 1);
  make_tree(sys, "/c", 1);
  JobHandle j1 = sys.submit(JobSpec::pfcp("/a", "/proj/a"));
  JobHandle j2 = sys.submit(JobSpec::pfcp("/b", "/proj/b"));
  JobHandle j3 = sys.submit(JobSpec::pfcp("/c", "/proj/c"));
  EXPECT_EQ(j3.state(), JobState::Rejected);
  EXPECT_TRUE(j3.done());
  EXPECT_EQ(j3.attempts(), 0u);
  bool fired = false;
  j3.on_done([&](const pftool::JobReport&) { fired = true; });
  EXPECT_TRUE(fired);  // already terminal: hook fires immediately
  // await() on a rejected job returns without stepping the clock.
  const sim::Tick before = sys.sim().now();
  EXPECT_EQ(j3.await().files_copied, 0u);
  EXPECT_EQ(sys.sim().now(), before);
  sys.sim().run();
  EXPECT_EQ(j1.state(), JobState::Succeeded);
  EXPECT_EQ(j2.state(), JobState::Succeeded);
  EXPECT_EQ(sys.observer().metrics().counter_value("sched.rejected"), 1u);
}

TEST(Admission, ReapDropsJobsThatNeverLaunched) {
  SystemConfig cfg = SystemConfig::small().with_sched(
      sched::SchedConfig{}.with_max_running_jobs(1).with_max_queue(1));
  CotsParallelArchive sys(cfg);
  make_tree(sys, "/a", 1);
  make_tree(sys, "/b", 1);
  make_tree(sys, "/c", 1);
  JobHandle j1 = sys.submit(JobSpec::pfcp("/a", "/proj/a"));
  JobHandle j2 = sys.submit(JobSpec::pfcp("/b", "/proj/b"));
  JobHandle j3 = sys.submit(JobSpec::pfcp("/c", "/proj/c"));  // rejected
  ASSERT_TRUE(j2.cancel());
  sys.sim().run();
  // One Succeeded, one Cancelled, one Rejected: all reapable, and the
  // handles stay valid afterwards (shared ownership).
  EXPECT_EQ(sys.reap_finished(), 3u);
  EXPECT_EQ(sys.reap_finished(), 0u);
  EXPECT_EQ(j1.state(), JobState::Succeeded);
  EXPECT_EQ(j2.state(), JobState::Cancelled);
  EXPECT_EQ(j3.state(), JobState::Rejected);
}

/// Drives a mixed-tenant submission burst through the full plant and
/// renders the scheduler's admission order plus every final report.
std::string admission_digest() {
  SystemConfig cfg = SystemConfig::small().with_sched(
      sched::SchedConfig{}
          .with_max_running_jobs(1)
          .with_tenant("batch", sched::TenantQuota{}.with_weight(1.0))
          .with_tenant("ana", sched::TenantQuota{}.with_weight(2.0)));
  CotsParallelArchive sys(cfg);
  std::vector<JobHandle> jobs;
  for (int i = 0; i < 6; ++i) {
    const std::string root = "/t" + std::to_string(i);
    make_tree(sys, root, 1);
    JobSpec spec = JobSpec::pfcp(root, "/proj" + root);
    spec.with_tenant(i % 2 == 0 ? "batch" : "ana")
        .with_qos(i % 3 == 0 ? sched::QosClass::Bulk
                             : sched::QosClass::Interactive);
    jobs.push_back(sys.submit(std::move(spec)));
  }
  sys.sim().run();
  std::string digest;
  for (const std::uint64_t id : sys.scheduler()->admission_log()) {
    digest += std::to_string(id) + ",";
  }
  digest += "\n";
  for (const JobHandle& j : jobs) {
    digest += to_string(j.state());
    digest += " ";
    digest += j.report().render();
    digest += "\n";
  }
  return digest;
}

TEST(Admission, AdmissionOrderIsDeterministicAcrossRuns) {
  EXPECT_EQ(admission_digest(), admission_digest());
}

TEST(Admission, AdmissionWaitSpanKeepsConservation) {
  SystemConfig cfg = one_slot_config().with_tracing();
  CotsParallelArchive sys(cfg);
  make_tree(sys, "/a", 3);
  make_tree(sys, "/b", 3);
  JobHandle j1 = sys.submit(JobSpec::pfcp("/a", "/proj/a"));
  JobHandle j2 = sys.submit(JobSpec::pfcp("/b", "/proj/b"));
  sys.sim().run();
  ASSERT_EQ(j1.state(), JobState::Succeeded);
  ASSERT_EQ(j2.state(), JobState::Succeeded);

  const obs::Profiler prof(sys.observer().trace());
  ASSERT_EQ(prof.jobs().size(), 2u);
  EXPECT_TRUE(prof.conservation_ok());
  // Exactly one of the two jobs waited for admission; its wait is charged
  // to the AdmissionWait bucket and the bucket sum still equals its wall
  // clock (the queued span stretches the job's root to the submit tick).
  unsigned waited = 0;
  for (const obs::JobProfile& jp : prof.jobs()) {
    EXPECT_TRUE(jp.conserved()) << jp.job_class << ": bucket sum "
                                << jp.bucket_sum() << " wall " << jp.wall();
    const sim::Tick wait =
        jp.buckets[static_cast<std::size_t>(obs::Bucket::AdmissionWait)];
    if (wait > 0) {
      ++waited;
      EXPECT_LT(wait, jp.wall());
    }
  }
  EXPECT_EQ(waited, 1u);
}

}  // namespace
}  // namespace cpa::archive
