// End-to-end randomized property tests over the assembled system: for a
// range of seeds, data must survive the full archive life cycle intact
// and every layer's accounting must stay consistent.
#include <gtest/gtest.h>

#include "archive/system.hpp"
#include "simcore/rng.hpp"
#include "workload/tree.hpp"

namespace cpa::archive {
namespace {

class LifecycleProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LifecycleProperty, RandomTreeSurvivesArchiveMigrateRecallRestore) {
  sim::Rng rng(GetParam());
  CotsParallelArchive sys(SystemConfig::small());

  // Random tree: mixed sizes, including zero-byte and multi-GB files.
  workload::TreeSpec tree;
  tree.root = "/scratch/run";
  tree.tag_seed = GetParam();
  tree.files_per_dir = static_cast<unsigned>(rng.uniform_u64(3, 40));
  const unsigned n_files = static_cast<unsigned>(rng.uniform_u64(5, 60));
  std::uint64_t total_bytes = 0;
  for (unsigned i = 0; i < n_files; ++i) {
    std::uint64_t size = 0;
    switch (rng.uniform_u64(0, 3)) {
      case 0: size = 0; break;
      case 1: size = rng.uniform_u64(1, 64) * kKB; break;
      case 2: size = rng.uniform_u64(1, 512) * kMB; break;
      case 3: size = rng.uniform_u64(1, 4) * kGB; break;
    }
    tree.file_sizes.push_back(size);
    total_bytes += size;
  }
  const auto built = workload::build_tree(sys.scratch(), tree);
  ASSERT_EQ(built.files, n_files);
  ASSERT_EQ(built.bytes, total_bytes);

  // 1. Archive.
  const auto cp = sys.pfcp_archive("/scratch/run", "/proj/run");
  ASSERT_EQ(cp.files_copied, n_files);
  ASSERT_EQ(cp.bytes_copied, total_bytes);
  ASSERT_EQ(cp.files_failed, 0u);

  // Invariant: archive pool holds exactly the copied bytes (no fuse files
  // at these sizes, so the fast pool carries everything).
  std::uint64_t pools_used = 0;
  for (const auto& p : sys.archive_fs().pools()) pools_used += p.used_bytes;
  EXPECT_EQ(pools_used, total_bytes);

  // 2. Verify.
  const auto cm = sys.pfcm("/scratch/run", "/proj/run");
  EXPECT_EQ(cm.files_matched, n_files);
  EXPECT_EQ(cm.files_mismatched, 0u);

  // 3. Migrate everything (skip zero-byte files: nothing to put on tape,
  //    and the policy below only selects non-empty resident files).
  pfs::Rule rule;
  rule.name = "mig";
  rule.action = pfs::Rule::Action::List;
  rule.where = {pfs::Condition::path_glob("/proj/*"),
                pfs::Condition::size_ge(1),
                pfs::Condition::dmapi_is(pfs::DmapiState::Resident)};
  sys.policy().add_rule(rule);
  unsigned nonempty = 0;
  for (const auto s : tree.file_sizes) nonempty += s > 0 ? 1 : 0;
  hsm::MigrateReport mig;
  sys.run_migration_cycle("mig", "run",
                          [&](const hsm::MigrateReport& r) { mig = r; });
  sys.sim().run();
  EXPECT_EQ(mig.files_migrated, nonempty);
  EXPECT_EQ(mig.bytes, total_bytes);

  // Invariant: tape holds exactly the migrated bytes; the export resolves
  // every migrated file; disk was released by the punch.
  EXPECT_EQ(sys.library().aggregate_stats().bytes_written, total_bytes);
  pools_used = 0;
  for (const auto& p : sys.archive_fs().pools()) pools_used += p.used_bytes;
  EXPECT_EQ(pools_used, 0u);
  unsigned resolvable = 0;
  for (std::uint64_t i = 0; i < n_files; ++i) {
    const std::string dst =
        "/proj/run" + workload::tree_file_path(tree, i).substr(tree.root.size());
    if (sys.hsm().server_for(dst).export_db().by_path(dst) != nullptr) {
      ++resolvable;
    }
  }
  EXPECT_EQ(resolvable, nonempty);

  // 4. Restore to a fresh location and verify contents bit for bit.
  const auto rs = sys.pfcp_restore("/proj/run", "/scratch/back");
  EXPECT_EQ(rs.files_copied, n_files);
  EXPECT_EQ(rs.files_restored, nonempty);
  EXPECT_EQ(rs.files_failed, 0u);
  for (std::uint64_t i = 0; i < n_files; ++i) {
    const std::string back =
        "/scratch/back" + workload::tree_file_path(tree, i).substr(tree.root.size());
    const auto st = sys.scratch().stat(back);
    ASSERT_TRUE(st.ok()) << back;
    EXPECT_EQ(st.value().size, tree.file_sizes[i]);
    if (tree.file_sizes[i] > 0) {
      EXPECT_EQ(sys.scratch().read_tag(back).value(),
                workload::tree_file_tag(tree.tag_seed, i));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LifecycleProperty,
                         ::testing::Range<std::uint64_t>(1, 11));

class DeletionProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DeletionProperty, RandomDeletesNeverLeaveOrphansWhenSynchronous) {
  sim::Rng rng(GetParam() * 131);
  CotsParallelArchive sys(SystemConfig::small());
  workload::TreeSpec tree;
  tree.root = "/proj/data";
  tree.tag_seed = GetParam();
  const unsigned n = static_cast<unsigned>(rng.uniform_u64(10, 40));
  for (unsigned i = 0; i < n; ++i) {
    tree.file_sizes.push_back(rng.uniform_u64(1, 50) * kMB);
  }
  workload::build_tree(sys.archive_fs(), tree);
  std::vector<std::string> paths;
  for (unsigned i = 0; i < n; ++i) {
    paths.push_back(workload::tree_file_path(tree, i));
  }
  sys.hsm().parallel_migrate(paths, {0, 1},
                             hsm::DistributionStrategy::SizeBalanced, "g",
                             nullptr);
  sys.sim().run();

  // Randomly: trash-then-purge, synchronous delete, or keep.
  unsigned expected_remaining = n;
  for (const auto& p : paths) {
    switch (rng.uniform_u64(0, 2)) {
      case 0:
        ASSERT_EQ(sys.trashcan().trash(p), pfs::Errc::Ok);
        --expected_remaining;
        break;
      case 1:
        sys.hsm().synchronous_delete(p, nullptr);
        --expected_remaining;
        break;
      default:
        break;
    }
  }
  sys.trashcan().purge_older_than(sys.sim().now(), nullptr);
  sys.sim().run();

  // Invariants: object count matches surviving files; reconcile is clean.
  unsigned objects = 0;
  for (unsigned s = 0; s < sys.hsm().server_count(); ++s) {
    objects += static_cast<unsigned>(sys.hsm().server(s).object_count());
  }
  EXPECT_EQ(objects, expected_remaining);
  hsm::ReconcileReport rec;
  sys.hsm().reconcile(false, [&](const hsm::ReconcileReport& r) { rec = r; });
  sys.sim().run();
  EXPECT_EQ(rec.orphans_found, 0u);
  // Surviving files are still recallable.
  std::vector<std::string> survivors;
  for (const auto& p : paths) {
    if (sys.archive_fs().exists(p)) survivors.push_back(p);
  }
  ASSERT_EQ(survivors.size(), expected_remaining);
  if (!survivors.empty()) {
    hsm::RecallReport rr;
    sys.hsm().recall(survivors, hsm::RecallOptions{},
                     [&](const hsm::RecallReport& r) { rr = r; });
    sys.sim().run();
    EXPECT_EQ(rr.files_recalled, expected_remaining);
    EXPECT_EQ(rr.files_failed, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeletionProperty,
                         ::testing::Range<std::uint64_t>(1, 9));

}  // namespace
}  // namespace cpa::archive
