#include "archive/search.hpp"

#include <gtest/gtest.h>

#include "simcore/units.hpp"

namespace cpa::archive {
namespace {

pfs::FsConfig fs_config() {
  pfs::FsConfig cfg;
  cfg.pools = {pfs::PoolConfig{"fast", 0, 4, false},
               pfs::PoolConfig{"slow", 0, 2, false}};
  return cfg;
}

class SearchTest : public ::testing::Test {
 protected:
  SearchTest() : fs_(sim_, fs_config()) {
    // A small mixed namespace across two pools and three mtimes.
    fs_.mkdirs("/proj/astro");
    fs_.mkdirs("/proj/laser");
    make("/proj/astro/big1", 10 * kGB, "");
    make("/proj/astro/big2", 20 * kGB, "");
    sim_.run_until(sim::hours(1));
    make("/proj/astro/small1", 4 * kMB, "slow");
    make("/proj/laser/small2", 8 * kMB, "slow");
    sim_.run_until(sim::hours(2));
    make("/proj/laser/mid", 500 * kMB, "");
    // One migrated file.
    fs_.premigrate("/proj/astro/big1");
    fs_.punch("/proj/astro/big1");
    catalog_.rebuild(fs_);
  }

  void make(const std::string& path, std::uint64_t size, const std::string& pool) {
    ASSERT_TRUE(fs_.create(path, pool).ok());
    ASSERT_EQ(fs_.write_all(path, size, 1), pfs::Errc::Ok);
  }

  sim::Simulation sim_;
  pfs::FileSystem fs_;
  MetadataCatalog catalog_;
};

TEST_F(SearchTest, RebuildIndexesAllRegularFiles) {
  EXPECT_EQ(catalog_.size(), 5u);
}

TEST_F(SearchTest, RebuildReportsScanCost) {
  MetadataCatalog fresh;
  const sim::Tick t1 = fresh.rebuild(fs_, 1);
  const sim::Tick t4 = fresh.rebuild(fs_, 4);
  EXPECT_GT(t1, 0u);
  EXPECT_GT(t1, t4);
}

TEST_F(SearchTest, SizeRangeQuery) {
  SearchQuery q;
  q.min_size = 1 * kGB;
  const auto hits = catalog_.search(q);
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0].path, "/proj/astro/big1");
  EXPECT_EQ(hits[1].path, "/proj/astro/big2");
  // Index probe touched only the range, not the whole table.
  EXPECT_LE(catalog_.last_rows_examined(), 2u);
}

TEST_F(SearchTest, MtimeRangeQuery) {
  SearchQuery q;
  q.min_mtime = sim::hours(2);
  const auto hits = catalog_.search(q);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].path, "/proj/laser/mid");
}

TEST_F(SearchTest, PoolAndStateQueries) {
  SearchQuery by_pool;
  by_pool.pool = "slow";
  EXPECT_EQ(catalog_.search(by_pool).size(), 2u);

  SearchQuery by_state;
  by_state.dmapi = pfs::DmapiState::Migrated;
  const auto hits = catalog_.search(by_state);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].path, "/proj/astro/big1");
}

TEST_F(SearchTest, MultiDimensionalConjunction) {
  // "small files in the slow pool under /proj/laser, modified after 30min"
  SearchQuery q;
  q.max_size = 100 * kMB;
  q.pool = "slow";
  q.path_glob = "/proj/laser/*";
  q.min_mtime = sim::minutes(30);
  const auto hits = catalog_.search(q);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].path, "/proj/laser/small2");
}

TEST_F(SearchTest, GlobOnlyQueryFallsBackToScan) {
  SearchQuery q;
  q.path_glob = "/proj/astro/*";
  const auto hits = catalog_.search(q);
  EXPECT_EQ(hits.size(), 3u);
  EXPECT_EQ(catalog_.last_rows_examined(), catalog_.size());
}

TEST_F(SearchTest, EmptyQueryReturnsEverything) {
  EXPECT_EQ(catalog_.search(SearchQuery{}).size(), 5u);
}

TEST_F(SearchTest, IncrementalUpsertAndErase) {
  CatalogEntry e;
  e.fid = 0xDEAD;
  e.path = "/proj/new";
  e.size = 7 * kGB;
  catalog_.upsert(e);
  SearchQuery q;
  q.min_size = 1 * kGB;
  EXPECT_EQ(catalog_.search(q).size(), 3u);
  EXPECT_TRUE(catalog_.erase(0xDEAD));
  EXPECT_FALSE(catalog_.erase(0xDEAD));
  EXPECT_EQ(catalog_.search(q).size(), 2u);
}

TEST_F(SearchTest, NoMatchesIsEmptyNotError) {
  SearchQuery q;
  q.min_size = 100 * kTB;
  EXPECT_TRUE(catalog_.search(q).empty());
}

}  // namespace
}  // namespace cpa::archive
