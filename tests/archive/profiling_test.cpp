// End-to-end acceptance for the causal critical-path profiler: real jobs
// through the full plant (pftool -> HSM -> tape -> flows), then the
// tentpole invariant — every job's attribution buckets sum exactly, in
// virtual ticks, to its wall-clock — and the Sec 5 story: a disk-to-disk
// copy is PFS-transfer-bound, while a recall of punched files spends its
// critical path on tape mount/position/transfer spans.
#include <gtest/gtest.h>

#include "archive/system.hpp"
#include "bench/campaign_runner.hpp"
#include "obs/profile.hpp"

namespace cpa::archive {
namespace {

class ProfilingTest : public ::testing::Test {
 protected:
  ProfilingTest() : sys_(traced_config()) {}

  static SystemConfig traced_config() {
    SystemConfig cfg = SystemConfig::small();
    cfg.obs.tracing = true;
    cfg.hsm.punch_after_migrate = true;
    return cfg;
  }

  void make_scratch_tree(int files, std::uint64_t bytes) {
    for (int i = 0; i < files; ++i) {
      ASSERT_EQ(sys_.make_file(sys_.scratch(), "/runs/f" + std::to_string(i),
                               bytes, 0xFEED + static_cast<std::uint64_t>(i)),
                pfs::Errc::Ok);
    }
  }

  void migrate_all() {
    pfs::Rule rule;
    rule.name = "tape-candidates";
    rule.action = pfs::Rule::Action::List;
    rule.where = {pfs::Condition::path_glob("/proj/*"),
                  pfs::Condition::dmapi_is(pfs::DmapiState::Resident)};
    sys_.policy().add_rule(rule);
    bool done = false;
    sys_.run_migration_cycle("tape-candidates", "proj",
                             [&](const hsm::MigrateReport& r) {
                               EXPECT_GT(r.files_migrated, 0u);
                               done = true;
                             });
    sys_.sim().run();
    ASSERT_TRUE(done);
  }

  CotsParallelArchive sys_;
};

TEST_F(ProfilingTest, DiskCopyConservesAndIsPfsBound) {
  make_scratch_tree(6, 80 * kMB);
  const pftool::JobReport cp = sys_.pfcp_archive("/runs", "/proj/run");
  ASSERT_EQ(cp.files_failed, 0u);

  const obs::Profiler prof(sys_.observer().trace());
  ASSERT_EQ(prof.jobs().size(), 1u);
  const obs::JobProfile& jp = prof.jobs()[0];
  EXPECT_EQ(jp.job_class, "pfcp");
  EXPECT_TRUE(jp.conserved()) << "bucket sum " << jp.bucket_sum() << " wall "
                              << jp.wall();
  const sim::Tick pfs =
      jp.buckets[static_cast<std::size_t>(obs::Bucket::PfsTransfer)];
  EXPECT_GT(pfs, jp.wall() / 2);  // a disk copy is transfer-dominated
  EXPECT_EQ(jp.buckets[static_cast<std::size_t>(obs::Bucket::TapeTransfer)],
            0u);
}

TEST_F(ProfilingTest, TapeBoundRecallNamesTapeSpansOnCriticalPath) {
  make_scratch_tree(5, 60 * kMB);
  ASSERT_EQ(sys_.pfcp_archive("/runs", "/proj/run").files_failed, 0u);
  migrate_all();  // punch_after_migrate: data now lives on tape only
  const pftool::JobReport rs = sys_.pfcp_restore("/proj/run", "/restage/run");
  ASSERT_EQ(rs.files_restored, 5u);

  const obs::Profiler prof(sys_.observer().trace());
  // Job 0 is the archive copy, job 1 the restore.
  ASSERT_GE(prof.jobs().size(), 2u);
  EXPECT_TRUE(prof.conservation_ok());
  for (const obs::JobProfile& jp : prof.jobs()) {
    EXPECT_TRUE(jp.conserved()) << jp.job_class << ": bucket sum "
                                << jp.bucket_sum() << " wall " << jp.wall();
  }
  const obs::JobProfile& restore = prof.jobs().back();
  const auto bucket = [&](obs::Bucket b) {
    return restore.buckets[static_cast<std::size_t>(b)];
  };
  // The recall actually touched tape mechanics, not just the network.
  EXPECT_GT(bucket(obs::Bucket::TapeTransfer), 0u);
  EXPECT_GT(bucket(obs::Bucket::TapeMountWait) +
                bucket(obs::Bucket::TapePosition) +
                bucket(obs::Bucket::DriveQueueWait),
            0u);
  // And the critical path names them: a tape-category span carrying
  // mount/position/read time shows up in the per-segment decomposition.
  bool tape_on_path = false;
  const obs::TraceRecorder& tr = sys_.observer().trace();
  for (const obs::PathSegment& seg : restore.path.segments) {
    const obs::TraceRecorder::SpanView v = tr.view(seg.span);
    if (v.comp == obs::Component::Tape &&
        (*v.name == "mount_wait" || *v.name == "position" ||
         *v.name == "read" || *v.name == "drive_wait")) {
      tape_on_path = true;
      break;
    }
  }
  EXPECT_TRUE(tape_on_path);

  // The report renders without surprises and flags nothing.
  const std::string rep = prof.report(5);
  EXPECT_NE(rep.find("conservation: OK"), std::string::npos);
  EXPECT_NE(rep.find("tape"), std::string::npos);
}

TEST_F(ProfilingTest, ScrubSpansLiveUnderIntegrityComponent) {
  make_scratch_tree(4, 40 * kMB);
  ASSERT_EQ(sys_.pfcp_archive("/runs", "/proj/run").files_failed, 0u);
  migrate_all();
  bool done = false;
  sys_.hsm().scrub(integrity::ScrubConfig{},
                   [&](const integrity::ScrubReport& r) {
                     EXPECT_GT(r.segments_scanned, 0u);
                     done = true;
                   });
  sys_.sim().run();
  ASSERT_TRUE(done);
  EXPECT_GT(sys_.observer().trace().events_for(obs::Component::Integrity), 0u);
  EXPECT_GT(
      sys_.observer().metrics().counter_value("integrity.scrub_segments_scanned"),
      0u);
}

// Tracing off: the whole causal layer must vanish behind one branch.
TEST(ProfilingDisabled, NoEventsNoEdgesNoJobs) {
  CotsParallelArchive sys(SystemConfig::small());
  ASSERT_EQ(sys.make_file(sys.scratch(), "/runs/f0", 10 * kMB, 1),
            pfs::Errc::Ok);
  ASSERT_EQ(sys.pfcp_archive("/runs", "/proj/run").files_copied, 1u);
  EXPECT_EQ(sys.observer().trace().event_count(), 0u);
  EXPECT_EQ(sys.observer().trace().edge_count(), 0u);
  const obs::Profiler prof(sys.observer().trace());
  EXPECT_TRUE(prof.jobs().empty());
  EXPECT_TRUE(prof.conservation_ok());
}

}  // namespace
}  // namespace cpa::archive
