// Acceptance checks for the observability layer, end to end: the metrics
// registry must agree *exactly* with the substrate reports, and a traced
// run must produce spans from every major subsystem.
#include <gtest/gtest.h>

#include "archive/system.hpp"

namespace cpa::archive {
namespace {

class ObservabilityTest : public ::testing::Test {
 protected:
  ObservabilityTest() : sys_(traced_config()) {}

  static SystemConfig traced_config() {
    SystemConfig cfg = SystemConfig::small();
    cfg.obs.tracing = true;
    return cfg;
  }

  void make_scratch_tree(int files, std::uint64_t bytes) {
    for (int i = 0; i < files; ++i) {
      ASSERT_EQ(sys_.make_file(sys_.scratch(), "/runs/f" + std::to_string(i),
                               bytes, 0xFEED + static_cast<std::uint64_t>(i)),
                pfs::Errc::Ok);
    }
  }

  hsm::MigrateReport migrate_all() {
    pfs::Rule rule;
    rule.name = "tape-candidates";
    rule.action = pfs::Rule::Action::List;
    rule.where = {pfs::Condition::path_glob("/proj/*"),
                  pfs::Condition::dmapi_is(pfs::DmapiState::Resident)};
    sys_.policy().add_rule(rule);
    hsm::MigrateReport out;
    bool done = false;
    sys_.run_migration_cycle("tape-candidates", "proj",
                             [&](const hsm::MigrateReport& r) {
                               out = r;
                               done = true;
                             });
    sys_.sim().run();
    EXPECT_TRUE(done);
    return out;
  }

  CotsParallelArchive sys_;
};

TEST_F(ObservabilityTest, PftoolCountersMatchJobReportExactly) {
  make_scratch_tree(6, 50 * kMB);
  const pftool::JobReport cp = sys_.pfcp_archive("/runs", "/proj/run");
  ASSERT_EQ(cp.files_failed, 0u);
  const obs::MetricsRegistry& m = sys_.observer().metrics();
  EXPECT_EQ(m.counter_value("pftool.jobs"), 1u);
  EXPECT_EQ(m.counter_value("pftool.files_copied"), cp.files_copied);
  EXPECT_EQ(m.counter_value("pftool.bytes_copied"), cp.bytes_copied);
  EXPECT_EQ(m.counter_value("pftool.files_failed"), cp.files_failed);
}

TEST_F(ObservabilityTest, HsmCountersMatchMigrateReportExactly) {
  make_scratch_tree(8, 40 * kMB);
  const pftool::JobReport cp = sys_.pfcp_archive("/runs", "/proj/run");
  ASSERT_EQ(cp.files_copied, 8u);
  const hsm::MigrateReport mig = migrate_all();
  ASSERT_GT(mig.files_migrated, 0u);
  const obs::MetricsRegistry& m = sys_.observer().metrics();
  // The combined parallel_migrate report is the sum of its batches, and
  // the counters accrue once per finished batch: exact equality.
  EXPECT_EQ(m.counter_value("hsm.migrated_files"), mig.files_migrated);
  EXPECT_EQ(m.counter_value("hsm.migrated_bytes"), mig.bytes);
  EXPECT_EQ(m.counter_value("hsm.migrate_failed_files"), mig.files_failed);
  EXPECT_EQ(m.counter_value("hsm.tape_objects_written"),
            mig.tape_objects_written);
  // Every migrated byte crossed a tape drive's write head.
  EXPECT_EQ(m.counter_value("tape.bytes_written"), mig.bytes);
}

TEST(ObservabilityBatched, MdBatchCountersAccrueAndSaveRoundTrips) {
  // A batched migrate must report its group commits: batches, ops
  // carried, and round-trips saved (ops minus batches).  Aggregation is
  // on so one migrate unit records several member objects plus the
  // container in a single group commit — a genuine multi-op batch.
  SystemConfig cfg = SystemConfig::small();
  cfg.hsm.server.md_batch_size = 16;
  cfg.hsm.aggregation_enabled = true;
  CotsParallelArchive sys(cfg);
  for (int i = 0; i < 6; ++i) {
    ASSERT_EQ(sys.make_file(sys.scratch(), "/runs/f" + std::to_string(i),
                            20 * kMB, 0xFEED + static_cast<std::uint64_t>(i)),
              pfs::Errc::Ok);
  }
  sys.pfcp_archive("/runs", "/proj/run");
  pfs::Rule rule;
  rule.name = "tape-candidates";
  rule.action = pfs::Rule::Action::List;
  rule.where = {pfs::Condition::path_glob("/proj/*"),
                pfs::Condition::dmapi_is(pfs::DmapiState::Resident)};
  sys.policy().add_rule(rule);
  bool done = false;
  sys.run_migration_cycle("tape-candidates", "proj",
                          [&](const hsm::MigrateReport&) { done = true; });
  sys.sim().run();
  ASSERT_TRUE(done);
  const obs::MetricsRegistry& m = sys.observer().metrics();
  const std::uint64_t batches = m.counter_value("hsm.md_batches");
  const std::uint64_t ops = m.counter_value("hsm.md_batch_ops");
  EXPECT_GT(batches, 0u);
  EXPECT_GT(ops, batches);  // at least one multi-op group commit
  EXPECT_EQ(m.counter_value("hsm.md_txn_saved"), ops - batches);
}

TEST_F(ObservabilityTest, TracedRunCoversAllMajorSubsystems) {
  make_scratch_tree(6, 80 * kMB);
  const pftool::JobReport cp = sys_.pfcp_archive("/runs", "/proj/run");
  ASSERT_EQ(cp.files_failed, 0u);
  migrate_all();
  const pftool::JobReport rs = sys_.pfcp_restore("/proj/run", "/restage/run");
  EXPECT_EQ(rs.files_restored, 6u);

  const obs::TraceRecorder& tr = sys_.observer().trace();
  EXPECT_GT(tr.events_for(obs::Component::Net), 0u);
  EXPECT_GT(tr.events_for(obs::Component::Pfs), 0u);
  EXPECT_GT(tr.events_for(obs::Component::Hsm), 0u);
  EXPECT_GT(tr.events_for(obs::Component::Tape), 0u);
  EXPECT_GT(tr.events_for(obs::Component::Pftool), 0u);
  EXPECT_GE(tr.track_count(), 5u);

  const std::string json = tr.chrome_json();
  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_NE(json.find("\"cat\":\"tape\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"pftool\""), std::string::npos);

  // Restores came back through the HSM recall path.
  const obs::MetricsRegistry& m = sys_.observer().metrics();
  EXPECT_GT(m.counter_value("hsm.recalled_files"), 0u);

  sys_.snapshot_net_metrics();
  EXPECT_NE(m.find_gauge("net.trunk_busy_seconds"), nullptr);
  EXPECT_GT(m.find_gauge("net.trunk_busy_seconds")->value(), 0.0);
}

TEST(ObservabilityDisabled, MetricsStillAccrueButNoEventsRecord) {
  CotsParallelArchive sys(SystemConfig::small());  // tracing defaults off
  ASSERT_EQ(sys.make_file(sys.scratch(), "/runs/f0", 10 * kMB, 1),
            pfs::Errc::Ok);
  const pftool::JobReport cp = sys.pfcp_archive("/runs", "/proj/run");
  ASSERT_EQ(cp.files_copied, 1u);
  EXPECT_EQ(sys.observer().trace().event_count(), 0u);
  EXPECT_EQ(sys.observer().metrics().counter_value("pftool.bytes_copied"),
            cp.bytes_copied);
  EXPECT_GT(sys.observer().metrics().counter_value("net.flows_completed"), 0u);
}

}  // namespace
}  // namespace cpa::archive
