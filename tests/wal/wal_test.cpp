// Write-ahead log: framing, group commit, torn-tail semantics, checkpoint
// truncation, and crash/recover cycles through the Durable wrapper.
#include "wal/wal.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "hsm/server.hpp"
#include "hsm/txn_batch.hpp"
#include "integrity/fixity.hpp"
#include "obs/observer.hpp"
#include "pftool/core/restart_journal.hpp"
#include "simcore/units.hpp"
#include "wal/durable.hpp"

namespace cpa::wal {
namespace {

// A frame exactly as WalWriter lays it down: [len][crc32(payload)][payload].
std::string frame(const std::string& payload) {
  std::string out;
  const auto put = [&out](std::uint32_t v) {
    out.push_back(static_cast<char>(v & 0xFF));
    out.push_back(static_cast<char>((v >> 8) & 0xFF));
    out.push_back(static_cast<char>((v >> 16) & 0xFF));
    out.push_back(static_cast<char>((v >> 24) & 0xFF));
  };
  put(static_cast<std::uint32_t>(payload.size()));
  put(crc32(payload.data(), payload.size()));
  out += payload;
  return out;
}

// -------------------------------------------------------------- WalReader

TEST(WalReader, EmptyLogReplaysZeroRecords) {
  std::uint64_t valid = 99;
  std::uint64_t calls = 0;
  EXPECT_EQ(WalReader::replay("", [&](const std::string&) { ++calls; }, &valid),
            0u);
  EXPECT_EQ(calls, 0u);
  EXPECT_EQ(valid, 0u);
}

TEST(WalReader, StopsAtTornFrameAtEveryByteBoundary) {
  const std::vector<std::string> payloads = {"alpha", "bb", "record-three"};
  std::string log;
  std::vector<std::size_t> boundaries = {0};
  for (const std::string& p : payloads) {
    log += frame(p);
    boundaries.push_back(log.size());
  }
  // Cut the image at every possible byte: replay must apply exactly the
  // frames wholly inside the cut, in order, and report where it stopped.
  for (std::size_t cut = 0; cut <= log.size(); ++cut) {
    std::size_t whole = 0;
    while (whole + 1 < boundaries.size() && boundaries[whole + 1] <= cut) {
      ++whole;
    }
    std::vector<std::string> seen;
    std::uint64_t valid = 0;
    const std::uint64_t n = WalReader::replay(
        log.substr(0, cut), [&](const std::string& r) { seen.push_back(r); },
        &valid);
    ASSERT_EQ(n, whole) << "cut=" << cut;
    ASSERT_EQ(valid, boundaries[whole]) << "cut=" << cut;
    for (std::size_t i = 0; i < whole; ++i) EXPECT_EQ(seen[i], payloads[i]);
  }
}

TEST(WalReader, StopsAtCorruptPayload) {
  std::string log = frame("first") + frame("second") + frame("third");
  log[frame("first").size() + 8] ^= 0x40;  // flip a bit in "second"'s payload
  std::uint64_t valid = 0;
  std::vector<std::string> seen;
  EXPECT_EQ(WalReader::replay(
                log, [&](const std::string& r) { seen.push_back(r); }, &valid),
            1u);
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0], "first");
  EXPECT_EQ(valid, frame("first").size());
}

// -------------------------------------------------------------- WalWriter

TEST(WalWriter, GroupCommitBatchesConcurrentSyncs) {
  sim::Simulation sim;
  obs::Observer obs;
  WalConfig cfg;
  cfg.flush_latency = sim::msecs(2);
  WalWriter w(sim, cfg, obs);
  std::vector<sim::Tick> done;
  for (int i = 0; i < 5; ++i) {
    w.append_record("r" + std::to_string(i));
    w.sync([&] { done.push_back(sim.now()); });
  }
  sim.run();
  // The first sync rides its own flush; the four issued while it was in
  // flight share the next one (group commit), so two flushes total.
  ASSERT_EQ(done.size(), 5u);
  EXPECT_EQ(done[0], sim::msecs(2));
  for (int i = 1; i < 5; ++i) EXPECT_EQ(done[i], sim::msecs(4));
}

TEST(WalWriter, DurablePrefixSurvivesAnyTearSeed) {
  for (std::uint64_t seed = 1; seed <= 16; ++seed) {
    sim::Simulation sim;
    obs::Observer obs;
    WalWriter w(sim, WalConfig{}, obs);
    for (int i = 0; i < 3; ++i) w.append_record("durable" + std::to_string(i));
    bool synced = false;
    w.sync([&] { synced = true; });
    sim.run();
    ASSERT_TRUE(synced);
    w.append_record("volatile0");
    w.append_record("volatile1");
    w.crash(seed);
    std::vector<std::string> seen;
    WalReader::replay(w.log_bytes(),
                      [&](const std::string& r) { seen.push_back(r); });
    ASSERT_GE(seen.size(), 3u) << "seed=" << seed;
    ASSERT_LE(seen.size(), 5u) << "seed=" << seed;
    for (int i = 0; i < 3; ++i) {
      EXPECT_EQ(seen[i], "durable" + std::to_string(i)) << "seed=" << seed;
    }
  }
}

TEST(WalWriter, PendingSyncCallbackDiesWithTheCrash) {
  sim::Simulation sim;
  obs::Observer obs;
  WalWriter w(sim, WalConfig{}, obs);
  w.append_record("r");
  bool fired = false;
  w.sync([&] { fired = true; });
  w.crash(7);  // before the flush latency elapsed
  sim.run();
  EXPECT_FALSE(fired);
  // The writer is still usable: a fresh sync after the crash completes.
  w.append_record("r2");
  bool fired2 = false;
  w.sync([&] { fired2 = true; });
  sim.run();
  EXPECT_TRUE(fired2);
}

TEST(WalWriter, CheckpointTruncationNeverDropsUncheckpointedRecords) {
  sim::Simulation sim;
  obs::Observer obs;
  WalWriter w(sim, WalConfig{}, obs);
  w.set_checkpoint_source([] { return std::string("SNAP"); });
  w.append_record("covered0");
  w.append_record("covered1");
  bool synced = false;
  w.sync([&] { synced = true; });
  sim.run();
  ASSERT_TRUE(synced);
  w.checkpoint();
  // Appended after the snapshot was taken but before it installs: must
  // survive the truncation that lands with the install.
  w.append_record("late");
  sim.run();
  EXPECT_EQ(w.installed_checkpoint(), "SNAP");
  std::vector<std::string> seen;
  WalReader::replay(w.log_bytes(),
                    [&](const std::string& r) { seen.push_back(r); });
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0], "late");
}

TEST(WalWriter, CrashMidCheckpointKeepsThePreviousCheckpoint) {
  sim::Simulation sim;
  obs::Observer obs;
  WalWriter w(sim, WalConfig{}, obs);
  int snaps = 0;
  w.set_checkpoint_source(
      [&] { return "SNAP" + std::to_string(snaps++); });
  w.append_record("r0");
  w.sync([] {});
  sim.run();
  w.checkpoint();
  sim.run();
  ASSERT_EQ(w.installed_checkpoint(), "SNAP0");
  const std::uint64_t before = w.log_bytes().size();
  w.append_record("r1");
  w.checkpoint();  // snapshot taken...
  w.crash(3);      // ...but power dies before the install completes
  sim.run();
  EXPECT_EQ(w.installed_checkpoint(), "SNAP0");  // old checkpoint stands
  EXPECT_GE(w.log_bytes().size(), before);       // nothing truncated
}

// ---------------------------------------------------------------- Durable

// One fully wired metadata plant: a catalog server, the fixity table, and
// a restart journal, all redo-logged through one Durable.
struct World {
  World() : net(sim), server(sim, net, "tsm0", hsm::ServerConfig{}) {
    durable.attach_server(0, server);
    durable.attach_fixity(fixity);
    durable.attach_journal(journal);
  }

  std::uint64_t record(const std::string& path) {
    hsm::ArchiveObject o;
    o.object_id = server.allocate_object_id();
    o.gpfs_file_id = o.object_id;
    o.size_bytes = 1 << 20;
    o.content_tag = 0xAB00 + o.object_id;
    o.cartridge_id = 3;
    o.tape_seq = o.object_id;
    o.path = path;
    const std::uint64_t id = o.object_id;
    server.record_object(std::move(o));
    fixity.add(id, 3, id, 1 << 20, 0xC0FFEE00 + id, 0);
    return id;
  }

  void sync_and_run() {
    bool done = false;
    durable.sync([&] { done = true; });
    sim.run();
    ASSERT_TRUE(done);
  }

  // What CotsParallelArchive::power_fail does to the metadata stores.
  void crash(std::uint64_t seed) {
    server.power_fail();
    fixity.clear();
    journal.clear();
    durable.crash(seed);
  }

  std::uint64_t object_count() {
    std::uint64_t n = 0;
    server.for_each_object([&](const hsm::ArchiveObject&) { ++n; });
    return n;
  }

  sim::Simulation sim;
  sim::FlowNetwork net;
  obs::Observer obs;
  hsm::ArchiveServer server;
  integrity::FixityDb fixity;
  pftool::RestartJournal journal;
  Durable durable{sim, WalConfig{}, obs};
};

TEST(Durable, EmptyLogRecoversToEmptyState) {
  World w;
  const Durable::RecoveryStats st = w.durable.recover();
  EXPECT_EQ(st.replayed_records, 0u);
  EXPECT_EQ(st.checkpoint_bytes, 0u);
  EXPECT_EQ(w.object_count(), 0u);
}

TEST(Durable, SyncedMutationsSurviveCrashAndRecover) {
  World w;
  const std::uint64_t a = w.record("/arch/a");
  const std::uint64_t b = w.record("/arch/b");
  w.journal.begin("/arch/a", 1 << 20, 4);
  w.journal.mark_good("/arch/a", 2);
  w.sync_and_run();
  w.crash(11);
  ASSERT_EQ(w.object_count(), 0u);  // power failure wiped the stores
  const Durable::RecoveryStats st = w.durable.recover();
  EXPECT_GE(st.replayed_records, 6u);  // 2 objects + 2 fixity rows + 2 journal
  EXPECT_EQ(w.object_count(), 2u);
  ASSERT_NE(w.server.object(a), nullptr);
  EXPECT_EQ(w.server.object(a)->path, "/arch/a");
  EXPECT_EQ(w.fixity.by_object(a).size(), 1u);
  EXPECT_EQ(w.fixity.by_object(b).size(), 1u);
  // The allocator resumes above every replayed id.
  EXPECT_GT(w.server.next_object_id(), b);
}

TEST(Durable, RecoverTwiceConvergesOnTheSameState) {
  World w;
  w.record("/arch/a");
  w.record("/arch/b");
  w.journal.begin("/arch/a", 1 << 20, 4);
  w.sync_and_run();
  w.crash(5);
  const Durable::RecoveryStats s1 = w.durable.recover();
  const std::uint64_t objects = w.object_count();
  const std::uint64_t next_id = w.server.next_object_id();
  const std::string journal_img = w.journal.serialize();
  // Replaying the same prefix again (without a second wipe) must be a
  // no-op: every record is a full-row image, so redo is idempotent.
  const Durable::RecoveryStats s2 = w.durable.recover();
  EXPECT_EQ(s2.replayed_records, s1.replayed_records);
  EXPECT_EQ(w.object_count(), objects);
  EXPECT_EQ(w.server.next_object_id(), next_id);
  EXPECT_EQ(w.journal.serialize(), journal_img);
}

TEST(Durable, CheckpointThenEmptyLogRecovers) {
  World w;
  const std::uint64_t a = w.record("/arch/a");
  w.journal.begin("/arch/a", 1 << 20, 4);
  w.journal.mark_good("/arch/a", 0);
  w.journal.mark_good("/arch/a", 3);
  w.sync_and_run();
  w.durable.checkpoint();
  w.sim.run();
  EXPECT_TRUE(w.durable.writer().log_bytes().empty());  // fully truncated
  w.crash(9);
  const Durable::RecoveryStats st = w.durable.recover();
  EXPECT_EQ(st.replayed_records, 0u);
  EXPECT_GT(st.checkpoint_bytes, 0u);
  ASSERT_NE(w.server.object(a), nullptr);
  EXPECT_EQ(w.fixity.by_object(a).size(), 1u);
  EXPECT_FALSE(w.journal.serialize().empty());
}

TEST(Durable, DeleteIsDurable) {
  World w;
  const std::uint64_t a = w.record("/arch/a");
  const std::uint64_t b = w.record("/arch/b");
  w.sync_and_run();
  w.server.delete_object(a);
  w.fixity.erase_object(a);
  w.sync_and_run();
  w.crash(21);
  w.durable.recover();
  EXPECT_EQ(w.server.object(a), nullptr);
  EXPECT_TRUE(w.fixity.by_object(a).empty());
  EXPECT_NE(w.server.object(b), nullptr);
}

// Regression: a tear usually cuts a frame in half, and the surviving torn
// bytes used to stay in the log forever.  Records appended after recovery
// then sat behind CRC garbage where no future replay could reach them —
// durably-acked mutations silently vanished at the *second* crash.
TEST(Durable, MutationsAfterRecoverySurviveASecondCrash) {
  for (std::uint64_t seed = 1; seed <= 16; ++seed) {
    World w;
    w.record("/arch/a");
    w.sync_and_run();
    w.record("/arch/b");  // volatile: the tear lands somewhere inside it
    w.crash(seed);
    w.durable.recover();
    // Post-recovery life: a new durably-acked object...
    const std::uint64_t c = w.record("/arch/c");
    w.sync_and_run();
    // ...must still be there after the next crash.
    w.crash(seed * 977 + 1);
    const Durable::RecoveryStats st = w.durable.recover();
    ASSERT_NE(w.server.object(c), nullptr)
        << "seed=" << seed << " (durably-acked object lost behind torn tail)";
    EXPECT_EQ(w.server.object(c)->path, "/arch/c") << "seed=" << seed;
    EXPECT_EQ(w.fixity.by_object(c).size(), 1u) << "seed=" << seed;
    EXPECT_GE(st.replayed_records, 2u) << "seed=" << seed;
  }
}

// Regression: record_object used to fire its WAL hook before upserting.
// An auto-checkpoint triggered synchronously inside that append then
// snapshotted a catalog *without* the row while the truncation mark
// covered its frame — the object vanished at the next recovery.
TEST(Durable, AutoCheckpointNeverLosesTheRecordThatTriggeredIt) {
  sim::Simulation sim;
  sim::FlowNetwork net(sim);
  obs::Observer obs;
  hsm::ArchiveServer server(sim, net, "tsm0", hsm::ServerConfig{});
  integrity::FixityDb fixity;
  pftool::RestartJournal journal;
  WalConfig cfg;
  cfg.checkpoint_bytes = 2048;  // aggressive: checkpoints every ~20 records
  Durable durable(sim, cfg, obs);
  durable.attach_server(0, server);
  durable.attach_fixity(fixity);
  durable.attach_journal(journal);

  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 120; ++i) {
    hsm::ArchiveObject o;
    o.object_id = server.allocate_object_id();
    o.size_bytes = 1 << 20;
    o.cartridge_id = 1;
    o.tape_seq = i;
    o.path = "/arch/f" + std::to_string(i);
    ids.push_back(o.object_id);
    server.record_object(std::move(o));
    fixity.add(ids.back(), 1, i, 1 << 20, 0xF00D + i, 0);
    if (i % 8 == 7) {
      durable.sync([] {});
      sim.run();
    }
  }
  durable.sync([] {});
  sim.run();
  server.power_fail();
  fixity.clear();
  journal.clear();
  durable.crash(13);
  durable.recover();
  for (const std::uint64_t id : ids) {
    ASSERT_NE(server.object(id), nullptr) << "object " << id << " lost";
    ASSERT_EQ(fixity.by_object(id).size(), 1u) << "fixity row " << id;
  }
}

// Metadata batching rides the WAL's group commit: a TxnSession barrier is
// one durable.sync covering the whole batch.  Once that barrier acks, every
// mutation in the batch must survive a crash — at any torn-tail seed.
TEST(Durable, BatchBarrierAckImpliesWholeBatchDurable) {
  for (std::uint64_t seed = 1; seed <= 16; ++seed) {
    World w;
    hsm::ServerConfig scfg;
    scfg.md_batch_size = 8;
    hsm::TxnSession::Hooks hooks;
    hooks.barrier = [&w](std::function<void()> done) {
      w.durable.sync(std::move(done));
    };
    hsm::TxnSession session(
        w.sim, w.server,
        hsm::TxnSession::Config{scfg.md_batch_size, scfg.md_window,
                                scfg.md_flush_timeout},
        std::move(hooks));

    std::vector<std::uint64_t> acked;
    for (int i = 0; i < 8; ++i) {
      const std::string path = "/arch/batched" + std::to_string(i);
      session.submit([&w, path] { w.record(path); });
    }
    bool drained = false;
    session.drain([&] {
      drained = true;
      // Applied implies past the barrier: snapshot what was acked durable.
      w.server.for_each_object([&](const hsm::ArchiveObject& o) {
        acked.push_back(o.object_id);
      });
    });
    w.sim.run();
    ASSERT_TRUE(drained) << "seed=" << seed;
    ASSERT_EQ(acked.size(), 8u) << "seed=" << seed;

    // More mutations land in the log without a barrier: the tear has
    // un-synced frames to cut through while the acked batch sits below.
    for (int i = 0; i < 3; ++i) {
      w.record("/arch/volatile" + std::to_string(i));
    }
    w.crash(seed);
    session.abandon();
    const Durable::RecoveryStats st = w.durable.recover();
    (void)st;
    // Every mutation of the acked batch is back, with its fixity row.
    for (const std::uint64_t id : acked) {
      ASSERT_NE(w.server.object(id), nullptr)
          << "seed=" << seed << " object " << id
          << " from a barrier-acked batch lost";
      EXPECT_EQ(w.fixity.by_object(id).size(), 1u) << "seed=" << seed;
    }
  }
}

// The tear lands *inside* an un-acked batch's WAL records: recovery must
// replay a clean prefix (idempotent full-row images), never garbage, and a
// re-recover converges.
TEST(Durable, TornMidBatchReplaysCleanPrefix) {
  for (std::uint64_t seed = 1; seed <= 16; ++seed) {
    World w;
    // One acked object, then a batch of appends whose sync never lands.
    const std::uint64_t base = w.record("/arch/base");
    w.sync_and_run();
    for (int i = 0; i < 6; ++i) {
      w.record("/arch/torn" + std::to_string(i));  // appended, not synced
    }
    w.crash(seed);  // tear lands inside the batch's frames
    w.durable.recover();
    ASSERT_NE(w.server.object(base), nullptr) << "seed=" << seed;
    const std::uint64_t after_first = w.object_count();
    EXPECT_LE(after_first, 7u) << "seed=" << seed;
    // Idempotent redo: recovering again changes nothing.
    w.durable.recover();
    EXPECT_EQ(w.object_count(), after_first) << "seed=" << seed;
    // Post-recovery appends stay durable through a second crash.
    const std::uint64_t fresh = w.record("/arch/fresh");
    w.sync_and_run();
    w.crash(seed * 131 + 7);
    w.durable.recover();
    ASSERT_NE(w.server.object(fresh), nullptr) << "seed=" << seed;
  }
}

TEST(Durable, RecoveryDurationScalesWithLogAndReplay) {
  World w;
  for (int i = 0; i < 8; ++i) w.record("/arch/f" + std::to_string(i));
  w.sync_and_run();
  w.crash(2);
  const Durable::RecoveryStats st = w.durable.recover();
  const WalConfig& cfg = w.durable.config();
  EXPECT_GE(st.duration, cfg.flush_latency +
                             cfg.replay_record_cost * st.replayed_records);
}

}  // namespace
}  // namespace cpa::wal
