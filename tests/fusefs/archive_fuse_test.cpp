#include "fusefs/archive_fuse.hpp"

#include <gtest/gtest.h>

#include "simcore/rng.hpp"
#include "simcore/units.hpp"

namespace cpa::fusefs {
namespace {

pfs::FsConfig fs_config() {
  pfs::FsConfig cfg;
  cfg.pools = {pfs::PoolConfig{"fast", 0, 4, false}};
  return cfg;
}

class FuseTest : public ::testing::Test {
 protected:
  FuseTest() : fs_(sim_, fs_config()), fuse_(fs_, config()) {}
  static FuseConfig config() {
    FuseConfig cfg;
    cfg.chunk_size = 100 * kMB;
    return cfg;
  }
  sim::Simulation sim_;
  pfs::FileSystem fs_{sim_, fs_config()};
  ArchiveFuse fuse_{fs_, config()};
};

TEST_F(FuseTest, ChunkCountMath) {
  EXPECT_EQ(fuse_.chunk_count(0), 1u);
  EXPECT_EQ(fuse_.chunk_count(1), 1u);
  EXPECT_EQ(fuse_.chunk_count(100 * kMB), 1u);
  EXPECT_EQ(fuse_.chunk_count(100 * kMB + 1), 2u);
  EXPECT_EQ(fuse_.chunk_count(1050 * kMB), 11u);
}

TEST_F(FuseTest, CreateMakesShadowDirWithChunkFiles) {
  ASSERT_EQ(fs_.mkdirs("/arch"), pfs::Errc::Ok);
  ASSERT_EQ(fuse_.create("/arch/huge", 250 * kMB), pfs::Errc::Ok);
  EXPECT_TRUE(fuse_.is_chunked("/arch/huge"));
  EXPECT_TRUE(fs_.exists("/arch/huge.__fusechunks__"));
  auto entries = fs_.readdir("/arch/huge.__fusechunks__");
  ASSERT_TRUE(entries.ok());
  EXPECT_EQ(entries.value().size(), 3u);

  const auto st = fuse_.stat("/arch/huge");
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st.value().size, 250 * kMB);
  EXPECT_EQ(st.value().chunk_count, 3u);
  EXPECT_EQ(st.value().good_chunks, 0u);
  EXPECT_FALSE(st.value().complete);
}

TEST_F(FuseTest, ChunkGeometryCoversFileExactly) {
  ASSERT_EQ(fs_.mkdirs("/arch"), pfs::Errc::Ok);
  ASSERT_EQ(fuse_.create("/arch/f", 250 * kMB), pfs::Errc::Ok);
  const auto chunks = fuse_.chunks("/arch/f");
  ASSERT_TRUE(chunks.ok());
  const auto& cs = chunks.value();
  ASSERT_EQ(cs.size(), 3u);
  std::uint64_t covered = 0;
  for (std::size_t i = 0; i < cs.size(); ++i) {
    EXPECT_EQ(cs[i].index, i);
    EXPECT_EQ(cs[i].offset, covered);
    covered += cs[i].bytes;
  }
  EXPECT_EQ(covered, 250 * kMB);
  EXPECT_EQ(cs[0].bytes, 100 * kMB);
  EXPECT_EQ(cs[2].bytes, 50 * kMB);
}

TEST_F(FuseTest, WriteChunkChargesPoolAndMarksGood) {
  ASSERT_EQ(fs_.mkdirs("/arch"), pfs::Errc::Ok);
  ASSERT_EQ(fuse_.create("/arch/f", 250 * kMB), pfs::Errc::Ok);
  ASSERT_EQ(fuse_.write_chunk("/arch/f", 0, 111), pfs::Errc::Ok);
  ASSERT_EQ(fuse_.write_chunk("/arch/f", 2, 333), pfs::Errc::Ok);
  EXPECT_EQ(fs_.pool("fast").value().used_bytes, 150 * kMB);

  const auto pending = fuse_.pending_chunks("/arch/f");
  ASSERT_TRUE(pending.ok());
  EXPECT_EQ(pending.value(), (std::vector<std::uint64_t>{1}));
  EXPECT_FALSE(fuse_.stat("/arch/f").value().complete);

  ASSERT_EQ(fuse_.write_chunk("/arch/f", 1, 222), pfs::Errc::Ok);
  EXPECT_TRUE(fuse_.stat("/arch/f").value().complete);
  EXPECT_TRUE(fuse_.pending_chunks("/arch/f").value().empty());
}

TEST_F(FuseTest, WriteChunkValidation) {
  ASSERT_EQ(fs_.mkdirs("/arch"), pfs::Errc::Ok);
  ASSERT_EQ(fuse_.create("/arch/f", 150 * kMB), pfs::Errc::Ok);
  EXPECT_EQ(fuse_.write_chunk("/nope", 0, 1), pfs::Errc::NotFound);
  EXPECT_EQ(fuse_.write_chunk("/arch/f", 5, 1), pfs::Errc::InvalidArgument);
}

TEST_F(FuseTest, LogicalTagRequiresCompleteness) {
  ASSERT_EQ(fs_.mkdirs("/arch"), pfs::Errc::Ok);
  ASSERT_EQ(fuse_.create("/arch/f", 200 * kMB), pfs::Errc::Ok);
  ASSERT_EQ(fuse_.write_chunk("/arch/f", 0, 1), pfs::Errc::Ok);
  EXPECT_EQ(fuse_.logical_tag("/arch/f").error(), pfs::Errc::InvalidArgument);
  ASSERT_EQ(fuse_.write_chunk("/arch/f", 1, 2), pfs::Errc::Ok);
  ASSERT_TRUE(fuse_.logical_tag("/arch/f").ok());

  // Tag depends on chunk order and content.
  const auto tag_a = fuse_.logical_tag("/arch/f").value();
  ASSERT_EQ(fuse_.write_chunk("/arch/f", 1, 3), pfs::Errc::Ok);
  EXPECT_NE(fuse_.logical_tag("/arch/f").value(), tag_a);
}

TEST_F(FuseTest, SameContentSameTag) {
  ASSERT_EQ(fs_.mkdirs("/a"), pfs::Errc::Ok);
  ASSERT_EQ(fs_.mkdirs("/b"), pfs::Errc::Ok);
  ASSERT_EQ(fuse_.create("/a/f", 200 * kMB), pfs::Errc::Ok);
  ASSERT_EQ(fuse_.create("/b/f", 200 * kMB), pfs::Errc::Ok);
  for (std::uint64_t i = 0; i < 2; ++i) {
    ASSERT_EQ(fuse_.write_chunk("/a/f", i, 42 + i), pfs::Errc::Ok);
    ASSERT_EQ(fuse_.write_chunk("/b/f", i, 42 + i), pfs::Errc::Ok);
  }
  EXPECT_EQ(fuse_.logical_tag("/a/f").value(), fuse_.logical_tag("/b/f").value());
}

TEST_F(FuseTest, MarkChunkBadReappearsInPending) {
  ASSERT_EQ(fs_.mkdirs("/arch"), pfs::Errc::Ok);
  ASSERT_EQ(fuse_.create("/arch/f", 300 * kMB), pfs::Errc::Ok);
  for (std::uint64_t i = 0; i < 3; ++i) {
    ASSERT_EQ(fuse_.write_chunk("/arch/f", i, i), pfs::Errc::Ok);
  }
  ASSERT_EQ(fuse_.mark_chunk("/arch/f", 1, ChunkMark::Bad), pfs::Errc::Ok);
  EXPECT_EQ(fuse_.pending_chunks("/arch/f").value(),
            (std::vector<std::uint64_t>{1}));
  EXPECT_FALSE(fuse_.stat("/arch/f").value().complete);
}

TEST_F(FuseTest, UnlinkMovesChunksToTrashcan) {
  ASSERT_EQ(fs_.mkdirs("/arch"), pfs::Errc::Ok);
  ASSERT_EQ(fuse_.create("/arch/f", 200 * kMB), pfs::Errc::Ok);
  ASSERT_EQ(fuse_.write_chunk("/arch/f", 0, 1), pfs::Errc::Ok);
  ASSERT_EQ(fuse_.unlink("/arch/f"), pfs::Errc::Ok);
  EXPECT_FALSE(fuse_.is_chunked("/arch/f"));
  EXPECT_FALSE(fs_.exists("/arch/f.__fusechunks__"));
  // Chunks live on in the trashcan — no destroyed data, no tape orphan.
  auto trash = fs_.readdir("/.trashcan");
  ASSERT_TRUE(trash.ok());
  ASSERT_EQ(trash.value().size(), 1u);
  EXPECT_EQ(fs_.pool("fast").value().used_bytes, 100 * kMB);
  EXPECT_EQ(fuse_.unlink("/arch/f"), pfs::Errc::NotFound);
}

TEST_F(FuseTest, OverwriteInterceptsAndTrashesOldChunks) {
  ASSERT_EQ(fs_.mkdirs("/arch"), pfs::Errc::Ok);
  ASSERT_EQ(fuse_.create("/arch/f", 200 * kMB), pfs::Errc::Ok);
  ASSERT_EQ(fuse_.write_chunk("/arch/f", 0, 1), pfs::Errc::Ok);
  // Re-create (user overwrote the file): old chunks must end up in trash.
  ASSERT_EQ(fuse_.create("/arch/f", 300 * kMB), pfs::Errc::Ok);
  EXPECT_EQ(fuse_.stat("/arch/f").value().chunk_count, 3u);
  EXPECT_EQ(fuse_.stat("/arch/f").value().good_chunks, 0u);
  auto trash = fs_.readdir("/.trashcan");
  ASSERT_TRUE(trash.ok());
  EXPECT_EQ(trash.value().size(), 1u);
}

TEST_F(FuseTest, LogicalFilesEnumeration) {
  ASSERT_EQ(fs_.mkdirs("/arch"), pfs::Errc::Ok);
  ASSERT_EQ(fuse_.create("/arch/a", kMB), pfs::Errc::Ok);
  ASSERT_EQ(fuse_.create("/arch/b", kMB), pfs::Errc::Ok);
  EXPECT_EQ(fuse_.logical_files(),
            (std::vector<std::string>{"/arch/a", "/arch/b"}));
}

// Property sweep: chunk geometry is exact for arbitrary sizes.
class FuseGeometry : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuseGeometry, ChunksPartitionTheFile) {
  sim::Simulation sim;
  pfs::FileSystem fs(sim, fs_config());
  FuseConfig cfg;
  cfg.chunk_size = 7919;  // prime, to exercise remainders
  ArchiveFuse fuse(fs, cfg);
  sim::Rng rng(GetParam());
  const std::uint64_t size = rng.uniform_u64(1, 1'000'000);
  ASSERT_EQ(fs.mkdirs("/t"), pfs::Errc::Ok);
  ASSERT_EQ(fuse.create("/t/f", size), pfs::Errc::Ok);
  const auto chunks = fuse.chunks("/t/f").value();
  EXPECT_EQ(chunks.size(), (size + 7918) / 7919);
  std::uint64_t covered = 0;
  for (const auto& c : chunks) {
    EXPECT_EQ(c.offset, covered);
    EXPECT_GT(c.bytes, 0u);
    EXPECT_LE(c.bytes, 7919u);
    covered += c.bytes;
  }
  EXPECT_EQ(covered, size);
}

INSTANTIATE_TEST_SUITE_P(RandomSizes, FuseGeometry,
                         ::testing::Range<std::uint64_t>(1, 17));

}  // namespace
}  // namespace cpa::fusefs
