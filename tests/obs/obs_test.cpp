#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include "obs/metrics.hpp"
#include "obs/observer.hpp"
#include "simcore/time.hpp"

namespace cpa::obs {
namespace {

TEST(TraceRecorder, DisabledRecordsNothing) {
  TraceRecorder tr;
  const SpanId id = tr.begin(Component::Tape, "drive0", "mount", sim::secs(1));
  EXPECT_FALSE(id.valid());
  tr.arg(id, "k", "v");   // must be a safe no-op on an invalid handle
  tr.end(id, sim::secs(2));
  tr.instant(Component::Sim, "t", "i", sim::secs(1));
  tr.complete(Component::Hsm, "t", "c", sim::secs(1), sim::secs(2));
  EXPECT_EQ(tr.event_count(), 0u);
  EXPECT_EQ(tr.track_count(), 0u);
}

TEST(TraceRecorder, SpansNestAndOrderOnVirtualTime) {
  TraceRecorder tr;
  tr.set_enabled(true);
  // Properly nested spans on one fixed track, out-of-order ends.
  const SpanId outer = tr.begin(Component::Hsm, "migrate", "batch", sim::secs(1));
  const SpanId inner = tr.begin(Component::Hsm, "migrate", "unit", sim::secs(2));
  tr.end(inner, sim::secs(3));
  tr.end(outer, sim::secs(5));
  EXPECT_EQ(tr.event_count(), 2u);
  EXPECT_EQ(tr.track_count(), 1u);
  EXPECT_EQ(tr.events_for(Component::Hsm), 2u);
  // The CSV dump preserves recording order and closed-span durations.
  const std::string csv = tr.csv();
  EXPECT_NE(csv.find("1000000.000,5000000.000,hsm,migrate,X,batch"),
            std::string::npos);
  EXPECT_NE(csv.find("2000000.000,3000000.000,hsm,migrate,X,unit"),
            std::string::npos);
}

TEST(TraceRecorder, EndClampsToBeginAndIgnoresDoubleClose) {
  TraceRecorder tr;
  tr.set_enabled(true);
  const SpanId id = tr.begin(Component::Net, "flow#0", "xfer", sim::secs(4));
  tr.end(id, sim::secs(2));  // virtual clocks never run backwards; clamp
  tr.end(id, sim::secs(9));  // double close is a no-op
  const std::string csv = tr.csv();
  EXPECT_NE(csv.find("4000000.000,4000000.000,net,flow#0,X,xfer"),
            std::string::npos);
}

TEST(TraceRecorder, LanesAllocateLowestFreeAndRecycle) {
  TraceRecorder tr;
  tr.set_enabled(true);
  const SpanId a = tr.begin_lane(Component::Net, "flow", "a", sim::secs(0));
  const SpanId b = tr.begin_lane(Component::Net, "flow", "b", sim::secs(0));
  EXPECT_EQ(tr.track_count(), 2u);  // flow#0 and flow#1
  tr.end(a, sim::secs(1));
  // Lane 0 is free again: the next span must reuse it, not open flow#2.
  const SpanId c = tr.begin_lane(Component::Net, "flow", "c", sim::secs(2));
  EXPECT_TRUE(c.valid());
  tr.end(b, sim::secs(3));
  tr.end(c, sim::secs(3));
  EXPECT_EQ(tr.track_count(), 2u);
  const std::string csv = tr.csv();
  EXPECT_NE(csv.find("2000000.000,3000000.000,net,flow#0,X,c"),
            std::string::npos);
}

TEST(TraceRecorder, UnfinishedSpansCloseAtMaxTickOnExport) {
  TraceRecorder tr;
  tr.set_enabled(true);
  tr.begin(Component::Pftool, "job#0", "pfcp", sim::secs(1));
  tr.instant(Component::Pftool, "watchdog", "tick", sim::secs(7));
  const std::string csv = tr.csv();
  EXPECT_NE(csv.find("1000000.000,7000000.000,pftool,job#0,X,pfcp"),
            std::string::npos);
}

// Byte-exact golden output: the exporter's framing, separators, virtual-us
// timestamps, metadata records, and arg encoding are all load-bearing for
// chrome://tracing / Perfetto compatibility.
TEST(TraceRecorder, ChromeJsonGolden) {
  TraceRecorder tr;
  tr.set_enabled(true);
  const SpanId a = tr.begin(Component::Tape, "drive0", "mount", sim::usecs(1));
  tr.arg_num(a, "bytes", std::uint64_t{42});
  tr.end(a, sim::usecs(3));
  tr.instant(Component::Pftool, "watchdog", "tick", sim::usecs(2));
  const std::string expected =
      "{\"traceEvents\":["
      "{\"ph\":\"M\",\"pid\":1,\"tid\":1,\"name\":\"thread_name\","
      "\"args\":{\"name\":\"tape/drive0\"}},\n"
      "{\"ph\":\"M\",\"pid\":1,\"tid\":2,\"name\":\"thread_name\","
      "\"args\":{\"name\":\"pftool/watchdog\"}},\n"
      "{\"ph\":\"X\",\"pid\":1,\"tid\":1,\"cat\":\"tape\",\"name\":\"mount\","
      "\"ts\":1.000,\"dur\":2.000,\"args\":{\"bytes\":42}},\n"
      "{\"ph\":\"i\",\"pid\":1,\"tid\":2,\"cat\":\"pftool\",\"name\":\"tick\","
      "\"ts\":2.000,\"s\":\"t\"}"
      "]}\n";
  EXPECT_EQ(tr.chrome_json(), expected);
}

TEST(TraceRecorder, JsonEscapesControlAndQuoteCharacters) {
  TraceRecorder tr;
  tr.set_enabled(true);
  const SpanId a =
      tr.begin(Component::Pfs, "scan", "name\"with\\quote", sim::usecs(0));
  tr.arg(a, "path", "/a\nb\tc");
  tr.end(a, sim::usecs(1));
  const std::string json = tr.chrome_json();
  EXPECT_NE(json.find("name\\\"with\\\\quote"), std::string::npos);
  EXPECT_NE(json.find("/a\\nb\\tc"), std::string::npos);
}

TEST(Component, ToStringCoversEveryEnumerator) {
  // One name per enumerator, in declaration order; a new component must
  // extend both the enum and this table (and kComponentCount).
  static const char* const kNames[] = {"sim",  "net",    "pfs",
                                       "hsm",  "tape",   "pftool",
                                       "fuse", "fault",  "integrity",
                                       "sched", "wal"};
  static_assert(std::size(kNames) == kComponentCount);
  for (unsigned i = 0; i < kComponentCount; ++i) {
    EXPECT_STREQ(to_string(static_cast<Component>(i)), kNames[i]);
  }
  EXPECT_STREQ(to_string(Component::Integrity), "integrity");
}

TEST(TraceRecorder, ClearResetsLaneAllocatorsAndTracks) {
  TraceRecorder tr;
  tr.set_enabled(true);
  const SpanId a = tr.begin_lane(Component::Net, "flow", "a", sim::secs(0));
  tr.begin_lane(Component::Net, "flow", "b", sim::secs(0));
  ASSERT_EQ(tr.track_count(), 2u);
  ASSERT_EQ(tr.lane_group_count(), 1u);
  const std::uint32_t epoch0 = tr.epoch();

  tr.clear();
  EXPECT_EQ(tr.event_count(), 0u);
  EXPECT_EQ(tr.track_count(), 0u);
  EXPECT_EQ(tr.lane_group_count(), 0u);
  EXPECT_GT(tr.epoch(), epoch0);
  tr.end(a, sim::secs(9));  // stale handle from before clear(): inert
  EXPECT_EQ(tr.event_count(), 0u);

  // A fresh lane span must start over at lane 0, not resume old state.
  const SpanId c = tr.begin_lane(Component::Net, "flow", "c", sim::secs(1));
  tr.end(c, sim::secs(2));
  EXPECT_EQ(tr.track_count(), 1u);
  EXPECT_NE(tr.csv().find("net,flow#0,X,c"), std::string::npos);
}

TEST(TraceRecorder, DoubleEndDoesNotFreeAnotherSpansLane) {
  TraceRecorder tr;
  tr.set_enabled(true);
  const SpanId a = tr.begin_lane(Component::Net, "flow", "a", sim::secs(0));
  tr.end(a, sim::secs(1));
  // b takes the freed lane 0.  If the second end(a) freed the lane again,
  // c would alias b's lane and the two open spans would overlap on one
  // exported thread.
  const SpanId b = tr.begin_lane(Component::Net, "flow", "b", sim::secs(2));
  tr.end(a, sim::secs(3));
  const SpanId c = tr.begin_lane(Component::Net, "flow", "c", sim::secs(3));
  tr.end(b, sim::secs(4));
  tr.end(c, sim::secs(4));
  EXPECT_EQ(tr.track_count(), 2u);  // flow#0 (a, b) and flow#1 (c)
  EXPECT_NE(tr.csv().find("net,flow#1,X,c"), std::string::npos);
}

TEST(TraceRecorder, LinkRecordsOnlyForwardCurrentEpochEdges) {
  TraceRecorder tr;
  tr.set_enabled(true);
  const SpanId a = tr.begin(Component::Pftool, "job#0", "pfcp", sim::secs(0));
  const SpanId b = tr.begin(Component::Hsm, "recall", "recall", sim::secs(1));
  tr.link(b, a);         // backwards: rejected (graph must stay acyclic)
  tr.link(a, SpanId{});  // invalid child: no-op
  tr.link(SpanId{}, b);  // invalid parent: no-op
  EXPECT_EQ(tr.edge_count(), 0u);
  tr.link(a, b);
  ASSERT_EQ(tr.edge_count(), 1u);
  EXPECT_EQ(tr.edges()[0], (std::pair<std::uint32_t, std::uint32_t>{0, 1}));

  tr.clear();
  tr.link(a, b);  // both handles are stale now
  EXPECT_EQ(tr.edge_count(), 0u);
}

TEST(TraceRecorder, ParentContextAutoLinksNewSpans) {
  TraceRecorder tr;
  tr.set_enabled(true);
  const SpanId job = tr.begin(Component::Pftool, "job#0", "pfcp", sim::secs(0));
  tr.push_parent(job);
  const SpanId flow =
      tr.begin_lane(Component::Net, "flow", "transfer", sim::secs(1));
  tr.pop_parent();
  const SpanId after =
      tr.begin_lane(Component::Net, "flow", "other", sim::secs(1));
  tr.end(flow, sim::secs(2));
  tr.end(after, sim::secs(2));
  tr.end(job, sim::secs(3));
  ASSERT_EQ(tr.edge_count(), 1u);  // only the span inside the window linked
  EXPECT_EQ(tr.edges()[0].first, 0u);
  EXPECT_EQ(tr.edges()[0].second, 1u);
}

TEST(TraceRecorder, ChromeJsonRendersEdgesAsFlowArrows) {
  TraceRecorder tr;
  tr.set_enabled(true);
  const SpanId a = tr.begin(Component::Pftool, "job#0", "pfcp", sim::usecs(1));
  const SpanId b = tr.complete(Component::Tape, "d0", "read", sim::usecs(2),
                               sim::usecs(5));
  tr.link(a, b);
  tr.end(a, sim::usecs(6));
  const std::string json = tr.chrome_json();
  EXPECT_NE(json.find("\"ph\":\"s\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"f\""), std::string::npos);
  EXPECT_NE(json.find("\"bp\":\"e\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"causal\""), std::string::npos);
}

TEST(TraceRecorder, SaveLoadRoundTripsEventsArgsAndEdges) {
  TraceRecorder tr;
  tr.set_enabled(true);
  const SpanId a = tr.begin(Component::Pftool, "job#0", "pfcp", sim::secs(0));
  tr.arg(a, "src", "/scratch a\nweird");
  tr.arg_num(a, "files", std::uint64_t{7});
  const SpanId b =
      tr.begin_lane(Component::Tape, "drive", "read", sim::secs(1));
  tr.link(a, b);
  tr.instant(Component::Sim, "clock", "tick", sim::secs(2));
  tr.end(b, sim::secs(3));
  tr.end(a, sim::secs(4));

  TraceRecorder back;
  ASSERT_TRUE(back.deserialize(tr.serialize()));
  EXPECT_EQ(back.event_count(), tr.event_count());
  EXPECT_EQ(back.track_count(), tr.track_count());
  EXPECT_EQ(back.edge_count(), tr.edge_count());
  EXPECT_EQ(back.edges(), tr.edges());
  EXPECT_EQ(back.csv(), tr.csv());
  EXPECT_EQ(back.chrome_json(), tr.chrome_json());

  TraceRecorder bad;
  EXPECT_FALSE(bad.deserialize("not a trace"));
  EXPECT_EQ(bad.event_count(), 0u);
}

TEST(MetricsRegistry, RegistrationIsIdempotent) {
  MetricsRegistry m;
  Counter& c1 = m.counter("tape.mounts");
  Counter& c2 = m.counter("tape.mounts");
  EXPECT_EQ(&c1, &c2);  // the shared-total contract: same instrument back
  c1.inc();
  c2.add(2);
  EXPECT_EQ(m.counter_value("tape.mounts"), 3u);

  sim::Log10Histogram& h1 = m.histogram("pfs.file_bytes", 1.0);
  // `base` applies only on first registration; a different base must not
  // silently fork a second histogram.
  sim::Log10Histogram& h2 = m.histogram("pfs.file_bytes", 1000.0);
  EXPECT_EQ(&h1, &h2);

  EXPECT_EQ(&m.gauge("g"), &m.gauge("g"));
  EXPECT_EQ(&m.stats("s"), &m.stats("s"));
  EXPECT_EQ(&m.series("x"), &m.series("x"));
}

TEST(MetricsRegistry, FindReturnsNullWhenAbsent) {
  MetricsRegistry m;
  EXPECT_EQ(m.find_counter("nope"), nullptr);
  EXPECT_EQ(m.find_gauge("nope"), nullptr);
  EXPECT_EQ(m.find_stats("nope"), nullptr);
  EXPECT_EQ(m.find_series("nope"), nullptr);
  EXPECT_EQ(m.counter_value("nope"), 0u);
}

TEST(MetricsRegistry, SummaryIsSortedAndComplete) {
  MetricsRegistry m;
  m.counter("b.count").add(7);
  m.counter("a.count").inc();
  m.gauge("c.level").set(2.5);
  const std::string s = m.summary();
  // Names are padded to a fixed column; values follow on the same line.
  const std::size_t a = s.find("a.count");
  const std::size_t b = s.find("b.count");
  ASSERT_NE(a, std::string::npos);
  ASSERT_NE(b, std::string::npos);
  EXPECT_LT(a, b);  // std::map storage: dump sorted by name
  EXPECT_EQ(s.substr(a, s.find('\n', a) - a).back(), '1');
  EXPECT_EQ(s.substr(b, s.find('\n', b) - b).back(), '7');
  EXPECT_NE(s.find("2.500"), std::string::npos);
}

TEST(MetricsRegistry, StatsAgreeWithRetainedSamples) {
  // The online mean/min/max/count must match the exact retained-sample
  // path for the same stream — pfprof's percentile tables and the metrics
  // summary must never tell different stories about the same series.
  MetricsRegistry m;
  sim::Samples exact;
  sim::OnlineStats& online = m.stats("job.seconds");
  sim::Samples& retained = m.series("job.seconds");
  for (const double x : {4.0, 1.0, 9.0, 9.0, 2.5, 7.75}) {
    online.add(x);
    retained.add(x);
    exact.add(x);
  }
  EXPECT_EQ(online.count(), exact.count());
  EXPECT_DOUBLE_EQ(online.mean(), exact.mean());
  EXPECT_DOUBLE_EQ(online.min(), exact.min());
  EXPECT_DOUBLE_EQ(online.max(), exact.max());
  EXPECT_DOUBLE_EQ(retained.percentile(100), online.max());
  EXPECT_DOUBLE_EQ(retained.percentile(0), online.min());
}

TEST(Observer, NilSinkAbsorbsEverything) {
  Observer& nil = Observer::nil();
  EXPECT_FALSE(nil.tracing());
  const SpanId id =
      nil.trace().begin(Component::Sim, "t", "noop", sim::secs(1));
  EXPECT_FALSE(id.valid());
  EXPECT_EQ(nil.trace().event_count(), 0u);
}

TEST(Observer, FlowProbeTracksSpansPerFlow) {
  ObsConfig cfg;
  cfg.tracing = true;
  Observer ob(cfg);
  sim::FlowProbe& probe = ob;
  probe.on_flow_started(1, 1e6, sim::secs(0));
  probe.on_flow_started(2, 2e6, sim::secs(0));
  EXPECT_EQ(ob.trace().events_for(Component::Net), 2u);
  EXPECT_EQ(ob.metrics().counter_value("net.flows_started"), 2u);
}

}  // namespace
}  // namespace cpa::obs
