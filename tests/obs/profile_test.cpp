// Unit tests for the causal critical-path profiler on hand-built DAGs
// with known answers.  The load-bearing invariant everywhere: the walk
// partitions each job's [started, finished] window exactly, so
// sum(buckets) == wall-clock no matter how children overlap.
#include "obs/profile.hpp"

#include <gtest/gtest.h>

#include "obs/trace.hpp"
#include "simcore/time.hpp"

namespace cpa::obs {
namespace {

sim::Tick bucket_of(const JobProfile& jp, Bucket b) {
  return jp.buckets[static_cast<std::size_t>(b)];
}

TEST(Bucket, ToStringCoversEveryEnumerator) {
  static const char* const kNames[] = {
      "pfs transfer",  "tape mount wait", "tape position", "tape transfer",
      "drive queue wait", "metadata",     "retry backoff", "scheduler idle",
      "admission wait", "wal commit"};
  static_assert(std::size(kNames) == kBucketCount);
  for (unsigned i = 0; i < kBucketCount; ++i) {
    EXPECT_STREQ(to_string(static_cast<Bucket>(i)), kNames[i]);
  }
}

TEST(Profiler, JobWithNoChildrenIsAllSchedulerIdle) {
  TraceRecorder tr;
  tr.set_enabled(true);
  const SpanId job = tr.begin_lane(Component::Pftool, "job", "pfcp", 0);
  tr.end(job, sim::secs(10));

  const Profiler prof(tr);
  ASSERT_EQ(prof.jobs().size(), 1u);
  const JobProfile& jp = prof.jobs()[0];
  EXPECT_EQ(jp.job_class, "pfcp");
  EXPECT_EQ(jp.wall(), sim::secs(10));
  EXPECT_EQ(bucket_of(jp, Bucket::SchedulerIdle), sim::secs(10));
  EXPECT_TRUE(jp.conserved());
  EXPECT_TRUE(prof.conservation_ok());
  ASSERT_EQ(jp.path.segments.size(), 1u);
  EXPECT_EQ(jp.path.total(), jp.wall());
}

// The canonical tape-bound recall: every bucket exercised, exact values.
//
//   job [0,100]
//   └─ chunk [10,90]
//      └─ recall [15,80]
//         ├─ drive_wait [15,30]   ├─ mount_wait [30,40]
//         ├─ read [40,75]  (tape) │  ├─ position [40,45]
//         │                      │  └─ flow "transfer" [45,75]
//         └─ md_txn [75,80]
TEST(Profiler, TapeBoundRecallDecomposesExactly) {
  TraceRecorder tr;
  tr.set_enabled(true);
  const SpanId job = tr.begin_lane(Component::Pftool, "job", "pfcp", 0);
  const SpanId chunk = tr.complete(Component::Pftool, "chunk", "chunk",
                                   sim::secs(10), sim::secs(90));
  tr.link(job, chunk);
  const SpanId recall = tr.complete(Component::Hsm, "recall", "recall",
                                    sim::secs(15), sim::secs(80));
  tr.link(chunk, recall);
  tr.link(recall, tr.complete(Component::Tape, "drive_wait", "drive_wait",
                              sim::secs(15), sim::secs(30)));
  tr.link(recall, tr.complete(Component::Tape, "mount_wait", "mount_wait",
                              sim::secs(30), sim::secs(40)));
  const SpanId read = tr.complete(Component::Tape, "d0", "read", sim::secs(40),
                                  sim::secs(75));
  tr.link(recall, read);
  tr.link(read, tr.complete(Component::Tape, "d0", "position", sim::secs(40),
                            sim::secs(45)));
  tr.link(read, tr.complete(Component::Net, "flow#0", "transfer",
                            sim::secs(45), sim::secs(75)));
  tr.link(recall, tr.complete(Component::Hsm, "md_txn", "md_txn",
                              sim::secs(75), sim::secs(80)));
  tr.end(job, sim::secs(100));

  const Profiler prof(tr);
  ASSERT_EQ(prof.jobs().size(), 1u);
  const JobProfile& jp = prof.jobs()[0];
  EXPECT_TRUE(jp.conserved());
  EXPECT_EQ(bucket_of(jp, Bucket::DriveQueueWait), sim::secs(15));
  EXPECT_EQ(bucket_of(jp, Bucket::TapeMountWait), sim::secs(10));
  EXPECT_EQ(bucket_of(jp, Bucket::TapePosition), sim::secs(5));
  // The flow under the tape read is drive streaming, not PFS transfer.
  EXPECT_EQ(bucket_of(jp, Bucket::TapeTransfer), sim::secs(30));
  EXPECT_EQ(bucket_of(jp, Bucket::PfsTransfer), sim::secs(0));
  // chunk self [10,15]+[80,90] plus md_txn [75,80].
  EXPECT_EQ(bucket_of(jp, Bucket::Metadata), sim::secs(20));
  // job self [0,10]+[90,100].
  EXPECT_EQ(bucket_of(jp, Bucket::SchedulerIdle), sim::secs(20));
  EXPECT_EQ(jp.bucket_sum(), sim::secs(100));

  // The critical path names the tape mechanics spans.
  bool saw_mount = false;
  bool saw_position = false;
  bool saw_transfer = false;
  for (const PathSegment& seg : jp.path.segments) {
    const TraceRecorder::SpanView v = tr.view(seg.span);
    if (*v.name == "mount_wait") saw_mount = true;
    if (*v.name == "position") saw_position = true;
    if (seg.bucket == Bucket::TapeTransfer) saw_transfer = true;
  }
  EXPECT_TRUE(saw_mount);
  EXPECT_TRUE(saw_position);
  EXPECT_TRUE(saw_transfer);
}

TEST(Profiler, FlowOutsideTapePathIsPfsTransfer) {
  TraceRecorder tr;
  tr.set_enabled(true);
  const SpanId job = tr.begin_lane(Component::Pftool, "job", "pfcp", 0);
  const SpanId chunk = tr.complete(Component::Pftool, "chunk", "chunk",
                                   sim::secs(1), sim::secs(9));
  tr.link(job, chunk);
  tr.link(chunk, tr.complete(Component::Net, "flow#0", "transfer",
                             sim::secs(2), sim::secs(8)));
  tr.end(job, sim::secs(10));

  const Profiler prof(tr);
  ASSERT_EQ(prof.jobs().size(), 1u);
  const JobProfile& jp = prof.jobs()[0];
  EXPECT_TRUE(jp.conserved());
  EXPECT_EQ(bucket_of(jp, Bucket::PfsTransfer), sim::secs(6));
  EXPECT_EQ(bucket_of(jp, Bucket::TapeTransfer), sim::secs(0));
  EXPECT_EQ(bucket_of(jp, Bucket::Metadata), sim::secs(2));
  EXPECT_EQ(bucket_of(jp, Bucket::SchedulerIdle), sim::secs(2));
}

TEST(Profiler, RetryBackoffSpansAttributeToTheirBucket) {
  TraceRecorder tr;
  tr.set_enabled(true);
  const SpanId job = tr.begin_lane(Component::Pftool, "job", "pfcp", 0);
  tr.link(job, tr.complete(Component::Pftool, "retry", "retry_backoff",
                           sim::secs(2), sim::secs(5)));
  tr.end(job, sim::secs(10));

  const Profiler prof(tr);
  ASSERT_EQ(prof.jobs().size(), 1u);
  const JobProfile& jp = prof.jobs()[0];
  EXPECT_TRUE(jp.conserved());
  EXPECT_EQ(bucket_of(jp, Bucket::RetryBackoff), sim::secs(3));
  EXPECT_EQ(bucket_of(jp, Bucket::SchedulerIdle), sim::secs(7));
}

// Two children whose windows overlap: the latest-ending child owns the
// overlap (it is the binding constraint at those instants) and the
// partition stays exact.
TEST(Profiler, OverlappingChildrenStillPartitionExactly) {
  TraceRecorder tr;
  tr.set_enabled(true);
  const SpanId job = tr.begin_lane(Component::Pftool, "job", "pfcp", 0);
  const SpanId a = tr.complete(Component::Net, "flow#0", "transfer",
                               sim::secs(10), sim::secs(60));
  tr.link(job, a);
  const SpanId b = tr.complete(Component::Net, "flow#1", "transfer",
                               sim::secs(40), sim::secs(90));
  tr.link(job, b);
  tr.end(job, sim::secs(100));

  const Profiler prof(tr);
  ASSERT_EQ(prof.jobs().size(), 1u);
  const JobProfile& jp = prof.jobs()[0];
  EXPECT_TRUE(jp.conserved());
  // b owns [40,90], a is clipped to [10,40], job self [0,10]+[90,100].
  EXPECT_EQ(bucket_of(jp, Bucket::PfsTransfer), sim::secs(80));
  EXPECT_EQ(bucket_of(jp, Bucket::SchedulerIdle), sim::secs(20));
  // Segments are an ascending gap-free cover of [0, 100].
  sim::Tick cursor = 0;
  for (const PathSegment& seg : jp.path.segments) {
    EXPECT_EQ(seg.begin, cursor);
    EXPECT_LT(seg.begin, seg.end);
    cursor = seg.end;
  }
  EXPECT_EQ(cursor, sim::secs(100));
}

TEST(Profiler, ChildrenOutsideTheParentWindowAreClipped) {
  TraceRecorder tr;
  tr.set_enabled(true);
  const SpanId job = tr.begin_lane(Component::Pftool, "job", "pfcp",
                                   sim::secs(10));
  // A recall armed before the job started and finishing after the window
  // we attribute to this job ends: only the in-window part counts.
  const SpanId r = tr.complete(Component::Hsm, "recall", "recall",
                               sim::secs(0), sim::secs(50));
  tr.link(job, r);
  tr.end(job, sim::secs(30));

  const Profiler prof(tr);
  ASSERT_EQ(prof.jobs().size(), 1u);
  const JobProfile& jp = prof.jobs()[0];
  EXPECT_EQ(jp.wall(), sim::secs(20));
  EXPECT_TRUE(jp.conserved());
  EXPECT_EQ(bucket_of(jp, Bucket::Metadata), sim::secs(20));  // recall self
}

TEST(Profiler, UnfinishedOrEmptyJobsAreSkipped) {
  TraceRecorder tr;
  tr.set_enabled(true);
  tr.begin_lane(Component::Pftool, "job", "pfcp", sim::secs(5));  // never ends
  const Profiler prof(tr);
  // The open span resolves to end == max_tick == begin: zero wall-clock,
  // nothing to attribute, no division by zero.
  EXPECT_TRUE(prof.conservation_ok());
  EXPECT_EQ(prof.violations(), 0u);
}

TEST(Profiler, ReportListsClassesPercentilesAndTopSpans) {
  TraceRecorder tr;
  tr.set_enabled(true);
  for (int i = 0; i < 3; ++i) {
    const SpanId job =
        tr.begin_lane(Component::Pftool, "job", "pfcp", sim::secs(100 * i));
    const SpanId flow =
        tr.complete(Component::Net, "flow#0", "transfer",
                    sim::secs(100 * i + 1), sim::secs(100 * i + 9));
    tr.link(job, flow);
    tr.end(job, sim::secs(100 * i + 10));
  }
  const Profiler prof(tr);
  ASSERT_EQ(prof.jobs().size(), 3u);
  const std::string rep = prof.report(2);
  EXPECT_NE(rep.find("class pfcp"), std::string::npos);
  EXPECT_NE(rep.find("(n=3)"), std::string::npos);
  EXPECT_NE(rep.find("p50="), std::string::npos);
  EXPECT_NE(rep.find("p95="), std::string::npos);
  EXPECT_NE(rep.find("p99="), std::string::npos);
  EXPECT_NE(rep.find("pfs transfer"), std::string::npos);
  EXPECT_NE(rep.find("net/transfer"), std::string::npos);
  EXPECT_NE(rep.find("conservation: OK"), std::string::npos);
}

TEST(Profiler, DeepLinkChainsTerminate) {
  TraceRecorder tr;
  tr.set_enabled(true);
  const SpanId job = tr.begin_lane(Component::Pftool, "job", "pfcp", 0);
  SpanId prev = job;
  // 200 nested spans: deeper than kMaxDepth, must not blow the stack and
  // must still conserve (the clipped tail attributes to shallower spans).
  for (int i = 1; i <= 200; ++i) {
    const SpanId s = tr.complete(Component::Hsm, "nest", "md_txn",
                                 sim::secs(i), sim::secs(400 - i));
    tr.link(prev, s);
    prev = s;
  }
  tr.end(job, sim::secs(400));
  const Profiler prof(tr);
  ASSERT_EQ(prof.jobs().size(), 1u);
  EXPECT_TRUE(prof.jobs()[0].conserved());
}

}  // namespace
}  // namespace cpa::obs
