#include "tape/library.hpp"

#include <gtest/gtest.h>

#include "simcore/units.hpp"

namespace cpa::tape {
namespace {

LibraryConfig small_config() {
  LibraryConfig cfg;
  cfg.drive_count = 2;
  cfg.cartridge_capacity = 100 * kMB;
  return cfg;
}

class LibraryTest : public ::testing::Test {
 protected:
  LibraryTest() : net_(sim_), lib_(sim_, net_, small_config()) {}
  sim::Simulation sim_;
  sim::FlowNetwork net_{sim_};
  TapeLibrary lib_{sim_, net_, small_config()};
};

TEST_F(LibraryTest, AcquireGrantsUpToDriveCount) {
  std::vector<TapeDrive*> granted;
  for (int i = 0; i < 3; ++i) {
    lib_.acquire_drive([&](TapeDrive& d) { granted.push_back(&d); });
  }
  sim_.run();
  ASSERT_EQ(granted.size(), 2u);
  EXPECT_NE(granted[0], granted[1]);
  EXPECT_EQ(lib_.idle_drives(), 0u);
  lib_.release_drive(*granted[0]);
  sim_.run();
  ASSERT_EQ(granted.size(), 3u);
  EXPECT_EQ(granted[2], granted[0]);  // recycled to the waiter
}

TEST_F(LibraryTest, ReleaseWithoutWaiterFreesDrive) {
  TapeDrive* d = nullptr;
  lib_.acquire_drive([&](TapeDrive& g) { d = &g; });
  sim_.run();
  ASSERT_NE(d, nullptr);
  lib_.release_drive(*d);
  EXPECT_EQ(lib_.idle_drives(), 2u);
}

TEST_F(LibraryTest, OpenCartridgePerColocationGroup) {
  Cartridge& a1 = lib_.open_cartridge_for("projA", 10 * kMB);
  Cartridge& a2 = lib_.open_cartridge_for("projA", 10 * kMB);
  Cartridge& b1 = lib_.open_cartridge_for("projB", 10 * kMB);
  EXPECT_EQ(&a1, &a2);          // same open cartridge reused
  EXPECT_NE(&a1, &b1);          // groups do not share cartridges
  EXPECT_EQ(a1.colocation_group(), "projA");
  EXPECT_EQ(lib_.cartridge_count(), 2u);
}

TEST_F(LibraryTest, OpenCartridgeRollsOverWhenFull) {
  Cartridge& c1 = lib_.open_cartridge_for("g", 80 * kMB);
  c1.append(1, 80 * kMB);
  Cartridge& c2 = lib_.open_cartridge_for("g", 30 * kMB);  // 20 MB left
  EXPECT_NE(&c1, &c2);
  EXPECT_EQ(lib_.cartridge_count(), 2u);
}

TEST_F(LibraryTest, EnsureMountedSwapsCartridges) {
  Cartridge& c1 = lib_.new_cartridge();
  Cartridge& c2 = lib_.new_cartridge();
  TapeDrive& d = lib_.drive(0);
  int step = 0;
  lib_.ensure_mounted(d, c1, [&] {
    EXPECT_EQ(d.mounted(), &c1);
    ++step;
    lib_.ensure_mounted(d, c2, [&] {
      EXPECT_EQ(d.mounted(), &c2);
      ++step;
      // Already mounted: no robot work, immediate.
      lib_.ensure_mounted(d, c2, [&] { ++step; });
    });
  });
  sim_.run();
  EXPECT_EQ(step, 3);
  EXPECT_EQ(d.stats().mounts, 2u);
  EXPECT_EQ(d.stats().unmounts, 1u);
}

TEST_F(LibraryTest, DismountIsNoOpWhenEmpty) {
  bool done = false;
  lib_.dismount(lib_.drive(0), [&] { done = true; });
  sim_.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(lib_.drive(0).stats().unmounts, 0u);
}

TEST_F(LibraryTest, RobotSerializesMounts) {
  Cartridge& c1 = lib_.new_cartridge();
  Cartridge& c2 = lib_.new_cartridge();
  sim::Tick t1 = 0, t2 = 0;
  lib_.ensure_mounted(lib_.drive(0), c1, [&] { t1 = sim_.now(); });
  lib_.ensure_mounted(lib_.drive(1), c2, [&] { t2 = sim_.now(); });
  sim_.run();
  // With one robot arm, the second mount cannot complete at the same time.
  EXPECT_GT(t2, t1);
}

TEST_F(LibraryTest, AggregateStatsSumAcrossDrives) {
  Cartridge& c1 = lib_.new_cartridge();
  Cartridge& c2 = lib_.new_cartridge();
  lib_.ensure_mounted(lib_.drive(0), c1, nullptr);
  lib_.ensure_mounted(lib_.drive(1), c2, nullptr);
  sim_.run();
  const DriveStats total = lib_.aggregate_stats();
  EXPECT_EQ(total.mounts, 2u);
  EXPECT_EQ(total.label_verifies, 2u);
}

}  // namespace
}  // namespace cpa::tape
