#include "tape/cartridge.hpp"

#include <gtest/gtest.h>

#include "simcore/units.hpp"

namespace cpa::tape {
namespace {

TEST(Cartridge, AppendAssignsSequentialSeqAndOffsets) {
  Cartridge c(1, 100 * kMB);
  const Segment& s1 = c.append(101, 10 * kMB);
  EXPECT_EQ(s1.seq, 1u);
  EXPECT_EQ(s1.offset, 0u);
  const Segment& s2 = c.append(102, 20 * kMB);
  EXPECT_EQ(s2.seq, 2u);
  EXPECT_EQ(s2.offset, 10 * kMB);
  EXPECT_EQ(c.bytes_used(), 30 * kMB);
  EXPECT_EQ(c.bytes_free(), 70 * kMB);
  EXPECT_EQ(c.segment_count(), 2u);
}

TEST(Cartridge, FitsChecksCapacity) {
  Cartridge c(1, 100 * kMB);
  EXPECT_TRUE(c.fits(100 * kMB));
  c.append(1, 60 * kMB);
  EXPECT_TRUE(c.fits(40 * kMB));
  EXPECT_FALSE(c.fits(40 * kMB + 1));
}

TEST(Cartridge, LookupBySeqAndObject) {
  Cartridge c(1, 100 * kMB);
  c.append(101, kMB);
  c.append(102, kMB);
  ASSERT_NE(c.segment_by_seq(2), nullptr);
  EXPECT_EQ(c.segment_by_seq(2)->object_id, 102u);
  EXPECT_EQ(c.segment_by_seq(0), nullptr);
  EXPECT_EQ(c.segment_by_seq(3), nullptr);
  ASSERT_NE(c.segment_by_object(101), nullptr);
  EXPECT_EQ(c.segment_by_object(101)->seq, 1u);
  EXPECT_EQ(c.segment_by_object(999), nullptr);
}

TEST(Cartridge, DeletedSegmentsBecomeDeadRegions) {
  Cartridge c(1, 100 * kMB);
  c.append(101, 10 * kMB);
  c.append(102, 5 * kMB);
  EXPECT_TRUE(c.mark_deleted(101));
  EXPECT_FALSE(c.mark_deleted(101));
  EXPECT_EQ(c.dead_bytes(), 10 * kMB);
  // Tape is append-only: space is not reclaimed.
  EXPECT_EQ(c.bytes_used(), 15 * kMB);
  EXPECT_EQ(c.segment_by_seq(1), nullptr);  // gone
  EXPECT_NE(c.segment_by_seq(2), nullptr);  // untouched
}

TEST(Cartridge, ColocationGroupIsRecorded) {
  Cartridge c(7, kGB, "projectA");
  EXPECT_EQ(c.colocation_group(), "projectA");
  EXPECT_EQ(c.id(), 7u);
}

}  // namespace
}  // namespace cpa::tape
