#include "tape/timings.hpp"

#include <gtest/gtest.h>

namespace cpa::tape {
namespace {

TEST(TapeTimings, SeekIsZeroInPlace) {
  TapeTimings t;
  EXPECT_EQ(t.seek_time(5 * kGB, 5 * kGB), 0u);
}

TEST(TapeTimings, SeekIsSymmetricInDistance) {
  TapeTimings t;
  EXPECT_EQ(t.seek_time(0, 10 * kGB), t.seek_time(10 * kGB, 0));
  EXPECT_EQ(t.seek_time(3 * kGB, 7 * kGB), t.seek_time(7 * kGB, 3 * kGB));
}

TEST(TapeTimings, SeekGrowsMonotonicallyWithDistance) {
  TapeTimings t;
  sim::Tick prev = 0;
  for (std::uint64_t gb = 1; gb <= 800; gb *= 2) {
    const sim::Tick s = t.seek_time(0, gb * kGB);
    EXPECT_GT(s, prev);
    prev = s;
  }
}

TEST(TapeTimings, SeekHasFixedBasePlusLinearComponent) {
  TapeTimings t;
  const sim::Tick one = t.seek_time(0, 100 * kGB);
  const sim::Tick two = t.seek_time(0, 200 * kGB);
  // Doubling the distance does not double the time (seek_base amortizes).
  EXPECT_LT(two, 2 * one);
  // But the linear part is exact.
  EXPECT_EQ(two - one, sim::secs(100.0 * t.seek_secs_per_gb));
}

TEST(TapeTimings, RewindEqualsSeekToZero) {
  TapeTimings t;
  EXPECT_EQ(t.rewind_time(123 * kGB), t.seek_time(123 * kGB, 0));
  EXPECT_EQ(t.rewind_time(0), 0u);
}

TEST(TapeTimings, CalibrationYieldsPaperSmallFileRate) {
  // 8 MB at stream rate plus one backhitch must land near 4 MB/s.
  TapeTimings t;
  const double per_file_s =
      8e6 / t.stream_rate_bps + sim::to_seconds(t.backhitch);
  const double rate_mbs = 8.0 / per_file_s;
  EXPECT_GT(rate_mbs, 3.5);
  EXPECT_LT(rate_mbs, 4.5);
}

}  // namespace
}  // namespace cpa::tape
