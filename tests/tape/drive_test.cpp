#include "tape/drive.hpp"

#include <gtest/gtest.h>

#include "simcore/units.hpp"

namespace cpa::tape {
namespace {

class DriveTest : public ::testing::Test {
 protected:
  DriveTest() : net_(sim_), drive_(sim_, net_, "d0", timings_) {
    san_ = net_.add_pool("san", 4000.0 * static_cast<double>(kMB));
  }

  sim::Simulation sim_;
  sim::FlowNetwork net_{sim_};
  TapeTimings timings_;
  TapeDrive drive_{sim_, net_, "d0", timings_};
  sim::PoolId san_;
};

TEST_F(DriveTest, MountChargesLoadAndLabelVerify) {
  Cartridge cart(1, 800 * kGB);
  sim::Tick done_at = 0;
  drive_.mount(&cart, [&] { done_at = sim_.now(); });
  sim_.run();
  EXPECT_EQ(done_at, timings_.load + timings_.label_verify);
  EXPECT_EQ(drive_.mounted(), &cart);
  EXPECT_EQ(drive_.stats().mounts, 1u);
  EXPECT_EQ(drive_.stats().label_verifies, 1u);
}

TEST_F(DriveTest, WriteStreamsAtDriveRatePlusBackhitch) {
  Cartridge cart(1, 800 * kGB);
  drive_.mount(&cart, nullptr);
  sim::Tick t0 = 0, t1 = 0;
  const Segment* result = nullptr;
  Segment seg_copy;
  drive_.write_object(0, 42, 1000 * kMB, {san_}, [&](const Segment* s) {
    ASSERT_NE(s, nullptr);
    seg_copy = *s;
    result = &seg_copy;
    t1 = sim_.now();
  });
  t0 = timings_.load + timings_.label_verify;
  sim_.run();
  ASSERT_NE(result, nullptr);
  EXPECT_EQ(seg_copy.object_id, 42u);
  EXPECT_EQ(seg_copy.seq, 1u);
  // 1000 MB at 100 MB/s = 10 s, plus the backhitch.
  EXPECT_NEAR(sim::to_seconds(t1 - t0), 10.0 + sim::to_seconds(timings_.backhitch),
              1e-3);
  EXPECT_EQ(drive_.stats().bytes_written, 1000 * kMB);
  EXPECT_EQ(drive_.stats().write_txns, 1u);
  EXPECT_EQ(drive_.stats().backhitches, 1u);
}

TEST_F(DriveTest, SmallFileWritesLandNearFourMBPerSecond) {
  // The paper's Sec 6.1 calibration: migrating 8 MB files achieved
  // ~4 MB/s against the 100 MB/s rated speed.
  Cartridge cart(1, 800 * kGB);
  drive_.mount(&cart, nullptr);
  const int kFiles = 50;
  sim::Tick start = 0, end = 0;
  int done = 0;
  for (int i = 0; i < kFiles; ++i) {
    drive_.write_object(0, 100 + static_cast<std::uint64_t>(i), 8 * kMB, {san_},
                        [&](const Segment* s) {
                          ASSERT_NE(s, nullptr);
                          if (++done == kFiles) end = sim_.now();
                        });
  }
  start = timings_.load + timings_.label_verify;
  sim_.run();
  const double rate_mbs =
      kFiles * 8.0 / sim::to_seconds(end - start);
  EXPECT_GT(rate_mbs, 3.0);
  EXPECT_LT(rate_mbs, 5.0);
}

TEST_F(DriveTest, LargeFileWritesApproachRatedSpeed) {
  Cartridge cart(1, 10'000 * kGB);
  drive_.mount(&cart, nullptr);
  const int kFiles = 5;
  sim::Tick end = 0;
  int done = 0;
  for (int i = 0; i < kFiles; ++i) {
    drive_.write_object(0, 100 + static_cast<std::uint64_t>(i), 10 * kGB, {san_},
                        [&](const Segment*) {
                          if (++done == kFiles) end = sim_.now();
                        });
  }
  const sim::Tick start = timings_.load + timings_.label_verify;
  sim_.run();
  const double rate_mbs = kFiles * 10'000.0 / sim::to_seconds(end - start);
  EXPECT_GT(rate_mbs, 90.0);
  EXPECT_LE(rate_mbs, 100.0);
}

TEST_F(DriveTest, SequentialReadAvoidsSeeksAndBackhitches) {
  Cartridge cart(1, 800 * kGB);
  for (int i = 0; i < 10; ++i) {
    cart.append(100 + static_cast<std::uint64_t>(i), 100 * kMB);
  }
  drive_.mount(&cart, nullptr);
  int done = 0;
  for (std::uint64_t seq = 1; seq <= 10; ++seq) {
    drive_.read_object(0, seq, {san_}, [&](const Segment* s) {
      ASSERT_NE(s, nullptr);
      ++done;
    });
  }
  sim_.run();
  EXPECT_EQ(done, 10);
  EXPECT_EQ(drive_.stats().seeks, 0u);
  EXPECT_EQ(drive_.stats().backhitches, 0u);
  EXPECT_EQ(drive_.stats().bytes_read, 1000 * kMB);
}

TEST_F(DriveTest, ReverseOrderReadsPaySeeks) {
  Cartridge cart(1, 800 * kGB);
  for (int i = 0; i < 10; ++i) {
    cart.append(100 + static_cast<std::uint64_t>(i), 100 * kMB);
  }
  drive_.mount(&cart, nullptr);
  int done = 0;
  for (std::uint64_t seq = 10; seq >= 1; --seq) {
    drive_.read_object(0, seq, {san_}, [&](const Segment* s) {
      ASSERT_NE(s, nullptr);
      ++done;
    });
  }
  sim_.run();
  EXPECT_EQ(done, 10);
  EXPECT_EQ(drive_.stats().seeks, 10u);  // every read repositions
  EXPECT_GT(drive_.stats().seek_time, 0u);
}

TEST_F(DriveTest, OwnershipHandoffForcesRewindAndLabelVerify) {
  Cartridge cart(1, 800 * kGB);
  for (int i = 0; i < 4; ++i) {
    cart.append(100 + static_cast<std::uint64_t>(i), 100 * kMB);
  }
  drive_.mount(&cart, nullptr);
  // Alternate reads between two nodes, in perfect tape order.  Without
  // handoffs this would be seek-free; with them every switch rewinds.
  int done = 0;
  drive_.read_object(0, 1, {san_}, [&](const Segment*) { ++done; });
  drive_.read_object(1, 2, {san_}, [&](const Segment*) { ++done; });
  drive_.read_object(0, 3, {san_}, [&](const Segment*) { ++done; });
  drive_.read_object(1, 4, {san_}, [&](const Segment*) { ++done; });
  sim_.run();
  EXPECT_EQ(done, 4);
  EXPECT_EQ(drive_.stats().handoffs, 3u);
  // Mount label verify + one per handoff.
  EXPECT_EQ(drive_.stats().label_verifies, 4u);
  // After each handoff rewind, the read must seek forward again.
  EXPECT_EQ(drive_.stats().seeks, 3u);
}

TEST_F(DriveTest, SameNodeKeepsOwnershipWithoutPenalty) {
  Cartridge cart(1, 800 * kGB);
  cart.append(1, kMB);
  cart.append(2, kMB);
  drive_.mount(&cart, nullptr);
  drive_.read_object(5, 1, {san_}, nullptr);
  drive_.read_object(5, 2, {san_}, nullptr);
  sim_.run();
  EXPECT_EQ(drive_.stats().handoffs, 0u);
}

TEST_F(DriveTest, WriteWithoutCartridgeFails) {
  bool called = false;
  drive_.write_object(0, 1, kMB, {san_}, [&](const Segment* s) {
    EXPECT_EQ(s, nullptr);
    called = true;
  });
  sim_.run();
  EXPECT_TRUE(called);
}

TEST_F(DriveTest, WriteBeyondCapacityFails) {
  Cartridge cart(1, 10 * kMB);
  drive_.mount(&cart, nullptr);
  bool ok_called = false, fail_called = false;
  drive_.write_object(0, 1, 8 * kMB, {san_},
                      [&](const Segment* s) { ok_called = s != nullptr; });
  drive_.write_object(0, 2, 8 * kMB, {san_}, [&](const Segment* s) {
    EXPECT_EQ(s, nullptr);
    fail_called = true;
  });
  sim_.run();
  EXPECT_TRUE(ok_called);
  EXPECT_TRUE(fail_called);
}

TEST_F(DriveTest, ReadMissingSeqFails) {
  Cartridge cart(1, 800 * kGB);
  drive_.mount(&cart, nullptr);
  bool called = false;
  drive_.read_object(0, 99, {san_}, [&](const Segment* s) {
    EXPECT_EQ(s, nullptr);
    called = true;
  });
  sim_.run();
  EXPECT_TRUE(called);
}

TEST_F(DriveTest, UnmountRewindsFromCurrentPosition) {
  Cartridge cart(1, 800 * kGB);
  drive_.mount(&cart, nullptr);
  drive_.write_object(0, 1, 10 * kGB, {san_}, nullptr);
  sim::Tick unmounted_at = 0;
  drive_.unmount([&] { unmounted_at = sim_.now(); });
  sim_.run();
  EXPECT_EQ(drive_.mounted(), nullptr);
  EXPECT_EQ(drive_.stats().unmounts, 1u);
  // Rewind from 10 GB position costs seek_base + 10 GB * per-GB.
  const double expect_rewind = sim::to_seconds(timings_.seek_base) +
                               10.0 * timings_.seek_secs_per_gb;
  const double total = sim::to_seconds(unmounted_at);
  const double before_unmount =
      sim::to_seconds(timings_.load + timings_.label_verify) + 100.0 +
      sim::to_seconds(timings_.backhitch);
  EXPECT_NEAR(total, before_unmount + expect_rewind +
                         sim::to_seconds(timings_.unload),
              1e-3);
}

TEST_F(DriveTest, OpsSerializeFifo) {
  Cartridge cart(1, 800 * kGB);
  drive_.mount(&cart, nullptr);
  std::vector<int> order;
  drive_.write_object(0, 1, 100 * kMB, {san_},
                      [&](const Segment*) { order.push_back(1); });
  drive_.write_object(0, 2, 100 * kMB, {san_},
                      [&](const Segment*) { order.push_back(2); });
  drive_.read_object(0, 1, {san_}, [&](const Segment*) { order.push_back(3); });
  sim_.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST_F(DriveTest, SharedSanLimitsConcurrentDrives) {
  // Two drives streaming through a SAN pool narrower than their sum.
  TapeDrive d2(sim_, net_, "d1", timings_);
  const sim::PoolId narrow =
      net_.add_pool("narrow_san", 100.0 * static_cast<double>(kMB));
  Cartridge c1(1, 800 * kGB), c2(2, 800 * kGB);
  drive_.mount(&c1, nullptr);
  d2.mount(&c2, nullptr);
  sim::Tick t1 = 0, t2 = 0;
  drive_.write_object(0, 1, 1000 * kMB, {narrow},
                      [&](const Segment*) { t1 = sim_.now(); });
  d2.write_object(1, 2, 1000 * kMB, {narrow},
                  [&](const Segment*) { t2 = sim_.now(); });
  sim_.run();
  // Each gets 50 MB/s -> 20 s of streaming instead of 10.
  const double mount_s = sim::to_seconds(timings_.load + timings_.label_verify);
  EXPECT_NEAR(sim::to_seconds(t1) - mount_s,
              20.0 + sim::to_seconds(timings_.backhitch), 0.1);
  EXPECT_NEAR(sim::to_seconds(t2) - mount_s,
              20.0 + sim::to_seconds(timings_.backhitch), 0.1);
}

}  // namespace
}  // namespace cpa::tape
