#include "metadb/tsm_export.hpp"

#include <gtest/gtest.h>

namespace cpa::metadb {
namespace {

TapeObjectRow row(std::uint64_t oid, std::uint64_t fid, std::string path,
                  std::uint64_t tape, std::uint64_t seq) {
  return TapeObjectRow{oid, fid, std::move(path), 1024, tape, seq};
}

TEST(TsmExportDb, LookupByEveryIndex) {
  TsmExportDb db;
  db.upsert(row(100, 1, "/arch/a", 7, 3));
  db.upsert(row(101, 2, "/arch/b", 7, 1));
  db.upsert(row(102, 3, "/arch/c", 8, 1));

  ASSERT_NE(db.by_object_id(101), nullptr);
  EXPECT_EQ(db.by_object_id(101)->path, "/arch/b");
  EXPECT_EQ(db.by_object_id(999), nullptr);

  ASSERT_NE(db.by_gpfs_file_id(3), nullptr);
  EXPECT_EQ(db.by_gpfs_file_id(3)->object_id, 102u);
  EXPECT_EQ(db.by_gpfs_file_id(999), nullptr);

  ASSERT_NE(db.by_path("/arch/a"), nullptr);
  EXPECT_EQ(db.by_path("/arch/a")->tape_id, 7u);
  EXPECT_EQ(db.by_path("/nope"), nullptr);

  EXPECT_EQ(db.on_tape(7).size(), 2u);
  EXPECT_EQ(db.on_tape(8).size(), 1u);
  EXPECT_TRUE(db.on_tape(9).empty());
}

TEST(TsmExportDb, EraseObjectRemovesFromAllIndexes) {
  TsmExportDb db;
  db.upsert(row(100, 1, "/arch/a", 7, 3));
  EXPECT_TRUE(db.erase_object(100));
  EXPECT_FALSE(db.erase_object(100));
  EXPECT_EQ(db.by_path("/arch/a"), nullptr);
  EXPECT_EQ(db.by_gpfs_file_id(1), nullptr);
  EXPECT_TRUE(db.on_tape(7).empty());
}

TEST(TsmExportDb, UnindexedPathLookupScansWholeTable) {
  TsmExportDb db;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    db.upsert(row(i, i, "/arch/f" + std::to_string(i), i % 10, i / 10));
  }
  db.reset_stats();
  const auto* r = db.by_path_unindexed("/arch/f500");
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->object_id, 500u);
  EXPECT_EQ(db.stats().rows_scanned, 1000u);

  // The indexed query touches no scan counter.
  db.reset_stats();
  ASSERT_NE(db.by_path("/arch/f500"), nullptr);
  EXPECT_EQ(db.stats().rows_scanned, 0u);
  EXPECT_EQ(db.stats().index_lookups, 1u);
}

TEST(TsmExportDb, UpsertReplacesTapeLocation) {
  TsmExportDb db;
  db.upsert(row(100, 1, "/arch/a", 7, 3));
  db.upsert(row(100, 1, "/arch/a", 9, 1));  // re-migrated to another tape
  EXPECT_TRUE(db.on_tape(7).empty());
  ASSERT_EQ(db.on_tape(9).size(), 1u);
  EXPECT_EQ(db.size(), 1u);
}

}  // namespace
}  // namespace cpa::metadb
