#include "metadb/table.hpp"

#include <gtest/gtest.h>

#include "simcore/rng.hpp"

namespace cpa::metadb {
namespace {

struct Item {
  std::uint64_t id;
  std::uint64_t group;
  std::string name;
  int payload;
};

class TableTest : public ::testing::Test {
 protected:
  TableTest() : t_([](const Item& i) { return i.id; }) {
    by_group_ = t_.add_index_u64([](const Item& i) { return i.group; });
    by_name_ = t_.add_index_str([](const Item& i) { return i.name; });
  }
  Table<Item> t_;
  Table<Item>::IndexId by_group_{};
  Table<Item>::IndexId by_name_{};
};

TEST_F(TableTest, InsertFindErase) {
  EXPECT_TRUE(t_.insert({1, 10, "a", 100}));
  EXPECT_TRUE(t_.insert({2, 10, "b", 200}));
  EXPECT_FALSE(t_.insert({1, 99, "dup", 0}));
  EXPECT_EQ(t_.size(), 2u);

  const Item* it = t_.find(1);
  ASSERT_NE(it, nullptr);
  EXPECT_EQ(it->payload, 100);
  EXPECT_EQ(t_.find(3), nullptr);

  EXPECT_TRUE(t_.erase(1));
  EXPECT_FALSE(t_.erase(1));
  EXPECT_EQ(t_.find(1), nullptr);
  EXPECT_EQ(t_.size(), 1u);
}

TEST_F(TableTest, SecondaryU64IndexFindsAllMatches) {
  t_.insert({1, 10, "a", 0});
  t_.insert({2, 10, "b", 0});
  t_.insert({3, 20, "c", 0});
  auto rows = t_.lookup_u64(by_group_, 10);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0]->id, 1u);
  EXPECT_EQ(rows[1]->id, 2u);
  EXPECT_TRUE(t_.lookup_u64(by_group_, 999).empty());
}

TEST_F(TableTest, SecondaryStrIndex) {
  t_.insert({1, 1, "alpha", 0});
  t_.insert({2, 2, "beta", 0});
  t_.insert({3, 3, "alpha", 0});
  auto rows = t_.lookup_str(by_name_, "alpha");
  EXPECT_EQ(rows.size(), 2u);
}

TEST_F(TableTest, RangeQueryAscending) {
  for (std::uint64_t i = 0; i < 10; ++i) t_.insert({i + 1, i * 10, "x", 0});
  auto rows = t_.range_u64(by_group_, 25, 65);
  ASSERT_EQ(rows.size(), 4u);  // groups 30, 40, 50, 60
  EXPECT_EQ(rows.front()->group, 30u);
  EXPECT_EQ(rows.back()->group, 60u);
}

TEST_F(TableTest, EraseRemovesIndexEntries) {
  t_.insert({1, 10, "a", 0});
  t_.insert({2, 10, "a", 0});
  t_.erase(1);
  EXPECT_EQ(t_.lookup_u64(by_group_, 10).size(), 1u);
  EXPECT_EQ(t_.lookup_str(by_name_, "a").size(), 1u);
}

TEST_F(TableTest, UpsertReindexes) {
  t_.insert({1, 10, "old", 7});
  t_.upsert({1, 20, "new", 8});
  EXPECT_TRUE(t_.lookup_u64(by_group_, 10).empty());
  ASSERT_EQ(t_.lookup_u64(by_group_, 20).size(), 1u);
  EXPECT_TRUE(t_.lookup_str(by_name_, "old").empty());
  EXPECT_EQ(t_.find(1)->payload, 8);
  EXPECT_EQ(t_.size(), 1u);
}

TEST_F(TableTest, UpsertInsertsWhenAbsent) {
  t_.upsert({5, 1, "n", 3});
  EXPECT_EQ(t_.size(), 1u);
  EXPECT_EQ(t_.find(5)->payload, 3);
}

TEST_F(TableTest, ScanCountsRowsTouched) {
  for (std::uint64_t i = 1; i <= 100; ++i) t_.insert({i, i % 3, "x", 0});
  auto rows = t_.scan([](const Item& i) { return i.group == 1; });
  EXPECT_EQ(rows.size(), 34u);  // i % 3 == 1 for i in 1..100
  EXPECT_EQ(t_.stats().full_scans, 1u);
  EXPECT_EQ(t_.stats().rows_scanned, 100u);
  EXPECT_EQ(t_.stats().index_lookups, 0u);
}

TEST_F(TableTest, StatsTrackOperations) {
  t_.insert({1, 1, "a", 0});
  t_.find(1);
  t_.lookup_u64(by_group_, 1);
  t_.range_u64(by_group_, 0, 5);
  t_.erase(1);
  const auto& s = t_.stats();
  EXPECT_EQ(s.inserts, 1u);
  EXPECT_EQ(s.point_lookups, 1u);
  EXPECT_EQ(s.index_lookups, 1u);
  EXPECT_EQ(s.range_lookups, 1u);
  EXPECT_EQ(s.erases, 1u);
}

TEST_F(TableTest, AddIndexAfterInsertThrows) {
  t_.insert({1, 1, "a", 0});
  EXPECT_THROW(t_.add_index_u64([](const Item& i) { return i.id; }),
               std::logic_error);
  EXPECT_THROW(t_.add_index_str([](const Item& i) { return i.name; }),
               std::logic_error);
}

TEST_F(TableTest, ForEachVisitsAllRows) {
  for (std::uint64_t i = 1; i <= 5; ++i) t_.insert({i, 0, "x", 0});
  int n = 0;
  t_.for_each([&](const Item&) { ++n; });
  EXPECT_EQ(n, 5);
}

TEST_F(TableTest, VisitorsMatchLookupWithoutMaterializing) {
  t_.insert({1, 10, "a", 100});
  t_.insert({2, 10, "b", 200});
  t_.insert({3, 20, "alpha", 300});
  t_.insert({4, 10, "alpha", 400});

  std::vector<std::uint64_t> ids;
  t_.for_each_u64(by_group_, 10, [&](const Item& i) { ids.push_back(i.id); });
  EXPECT_EQ(ids, (std::vector<std::uint64_t>{1, 2, 4}));  // pk order

  ids.clear();
  t_.for_each_str(by_name_, "alpha",
                  [&](const Item& i) { ids.push_back(i.id); });
  EXPECT_EQ(ids, (std::vector<std::uint64_t>{3, 4}));

  ids.clear();
  t_.for_each_range(by_group_, 10, 20,
                    [&](const Item& i) { ids.push_back(i.id); });
  // Range walk: ascending attribute, ties broken by primary key.
  EXPECT_EQ(ids, (std::vector<std::uint64_t>{1, 2, 4, 3}));

  int n = 0;
  t_.for_each_u64(by_group_, 999, [&](const Item&) { ++n; });
  EXPECT_EQ(n, 0);
  // Visitors count as index/range lookups, same as the vector forms.
  EXPECT_EQ(t_.stats().index_lookups, 3u);
  EXPECT_EQ(t_.stats().range_lookups, 1u);
}

TEST_F(TableTest, FirstMatchReturnsLowestPrimaryKey) {
  t_.insert({5, 10, "dup", 0});
  t_.insert({2, 10, "dup", 0});
  t_.insert({9, 20, "other", 0});
  const Item* u = t_.first_u64(by_group_, 10);
  ASSERT_NE(u, nullptr);
  EXPECT_EQ(u->id, 2u);
  EXPECT_EQ(t_.first_u64(by_group_, 30), nullptr);
  const Item* s = t_.first_str(by_name_, "dup");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->id, 2u);
  EXPECT_EQ(t_.first_str(by_name_, "nope"), nullptr);
}

TEST_F(TableTest, BulkOpsApplyPerRowAndCountBatches) {
  EXPECT_EQ(t_.insert_bulk({{1, 10, "a", 0}, {2, 10, "b", 0}, {1, 9, "dup", 0}}),
            2u);  // duplicate pk skipped
  EXPECT_EQ(t_.size(), 2u);
  t_.upsert_bulk({{1, 20, "a2", 1}, {3, 20, "c", 2}});
  EXPECT_EQ(t_.size(), 3u);
  EXPECT_EQ(t_.find(1)->group, 20u);
  // Indexes follow bulk upserts.
  EXPECT_TRUE(t_.lookup_u64(by_group_, 10).size() == 1u);
  EXPECT_EQ(t_.lookup_u64(by_group_, 20).size(), 2u);
  EXPECT_EQ(t_.erase_bulk({1, 3, 77}), 2u);  // missing key skipped
  EXPECT_EQ(t_.size(), 1u);
  const auto& s = t_.stats();
  EXPECT_EQ(s.bulk_batches, 3u);
  EXPECT_EQ(s.bulk_rows, 3u + 2u + 3u);
  EXPECT_EQ(s.inserts, 3u);  // 2 bulk-inserted + 1 new row via bulk upsert
  EXPECT_EQ(s.erases, 2u);
}

// Property sweep: random insert/erase/upsert keeps indexes consistent with
// a brute-force scan.
class TableProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TableProperty, IndexMatchesScanUnderRandomOps) {
  cpa::sim::Rng rng(GetParam());
  Table<Item> t([](const Item& i) { return i.id; });
  const auto by_group = t.add_index_u64([](const Item& i) { return i.group; });

  for (int op = 0; op < 500; ++op) {
    const auto id = rng.uniform_u64(1, 40);
    const auto group = rng.uniform_u64(0, 5);
    switch (rng.uniform_u64(0, 2)) {
      case 0:
        t.insert({id, group, "n", 0});
        break;
      case 1:
        t.upsert({id, group, "n", 0});
        break;
      case 2:
        t.erase(id);
        break;
    }
  }
  for (std::uint64_t g = 0; g <= 5; ++g) {
    auto via_index = t.lookup_u64(by_group, g);
    auto via_scan = t.scan([&](const Item& i) { return i.group == g; });
    ASSERT_EQ(via_index.size(), via_scan.size()) << "group " << g;
    for (std::size_t i = 0; i < via_index.size(); ++i) {
      EXPECT_EQ(via_index[i]->id, via_scan[i]->id);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomOps, TableProperty,
                         ::testing::Range<std::uint64_t>(1, 17));

}  // namespace
}  // namespace cpa::metadb
