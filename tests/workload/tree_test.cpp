#include "workload/tree.hpp"

#include <gtest/gtest.h>

#include "simcore/units.hpp"

namespace cpa::workload {
namespace {

pfs::FsConfig fs_config() {
  pfs::FsConfig cfg;
  cfg.pools = {pfs::PoolConfig{"p", 0, 4, false}};
  return cfg;
}

TEST(Tree, BuildsLayoutWithFanout) {
  sim::Simulation sim;
  pfs::FileSystem fs(sim, fs_config());
  TreeSpec spec;
  spec.root = "/data/run";
  spec.files_per_dir = 10;
  spec.tag_seed = 42;
  for (int i = 0; i < 25; ++i) spec.file_sizes.push_back(kMB);
  const TreeReport r = build_tree(fs, spec);
  EXPECT_EQ(r.files, 25u);
  EXPECT_EQ(r.dirs, 3u);  // d0000, d0001, d0002
  EXPECT_EQ(r.bytes, 25 * kMB);
  EXPECT_TRUE(fs.exists("/data/run/d0000/f000000"));
  EXPECT_TRUE(fs.exists("/data/run/d0002/f000024"));
}

TEST(Tree, TagsAreDeterministicAndVerifiable) {
  sim::Simulation sim;
  pfs::FileSystem fs(sim, fs_config());
  TreeSpec spec;
  spec.root = "/t";
  spec.tag_seed = 7;
  spec.file_sizes = {kMB, 2 * kMB, 3 * kMB};
  build_tree(fs, spec);
  for (std::uint64_t i = 0; i < 3; ++i) {
    EXPECT_EQ(fs.read_tag(tree_file_path(spec, i)).value(),
              tree_file_tag(7, i));
  }
  EXPECT_NE(tree_file_tag(7, 0), tree_file_tag(7, 1));
  EXPECT_NE(tree_file_tag(7, 0), tree_file_tag(8, 0));
}

TEST(Tree, EmptySpecBuildsJustRoot) {
  sim::Simulation sim;
  pfs::FileSystem fs(sim, fs_config());
  TreeSpec spec;
  spec.root = "/empty";
  const TreeReport r = build_tree(fs, spec);
  EXPECT_EQ(r.files, 0u);
  EXPECT_TRUE(fs.exists("/empty"));
}

}  // namespace
}  // namespace cpa::workload
