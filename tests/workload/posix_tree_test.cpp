#include "workload/posix_tree.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "pftool/rt/engine.hpp"

namespace cpa::workload {
namespace {

namespace fs = std::filesystem;

class PosixTreeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    base_ = fs::temp_directory_path() /
            ("cpa_ptree_" +
             std::string(::testing::UnitTest::GetInstance()
                             ->current_test_info()
                             ->name()));
    fs::remove_all(base_);
  }
  void TearDown() override { fs::remove_all(base_); }
  fs::path base_;
};

TEST_F(PosixTreeTest, BuildsAndVerifies) {
  PosixTreeSpec spec;
  spec.root = (base_ / "tree").string();
  spec.files_per_dir = 4;
  spec.seed = 99;
  spec.file_sizes = {0, 100, 5000, 65536, 7, 12345};
  const PosixTreeReport r = build_posix_tree(spec);
  EXPECT_EQ(r.files, 6u);
  EXPECT_EQ(r.dirs, 2u);
  EXPECT_EQ(r.bytes, 0u + 100 + 5000 + 65536 + 7 + 12345);
  EXPECT_EQ(verify_posix_tree(spec), 0u);
}

TEST_F(PosixTreeTest, VerifyDetectsCorruptionAndTruncation) {
  PosixTreeSpec spec;
  spec.root = (base_ / "tree").string();
  spec.seed = 7;
  spec.file_sizes = {4096, 4096};
  build_posix_tree(spec);
  {
    std::fstream f(posix_tree_file_path(spec, 0),
                   std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(100);
    f.put('\x00');
    f.put('\xFF');
  }
  fs::resize_file(posix_tree_file_path(spec, 1), 1000);
  EXPECT_EQ(verify_posix_tree(spec), 2u);
}

TEST_F(PosixTreeTest, DifferentSeedsDifferentBytes) {
  PosixTreeSpec a;
  a.root = (base_ / "a").string();
  a.seed = 1;
  a.file_sizes = {1024};
  PosixTreeSpec b = a;
  b.root = (base_ / "b").string();
  b.seed = 2;
  build_posix_tree(a);
  build_posix_tree(b);
  // Verifying b's layout against a's seed fails.
  EXPECT_EQ(verify_posix_tree(a), 0u);
  EXPECT_EQ(verify_posix_tree(a, b.root), 1u);
}

TEST_F(PosixTreeTest, RealPfcpRoundTripVerifies) {
  PosixTreeSpec spec;
  spec.root = (base_ / "src").string();
  spec.seed = 42;
  for (int i = 0; i < 30; ++i) {
    spec.file_sizes.push_back(static_cast<std::uint64_t>(500 + i * 997));
  }
  build_posix_tree(spec);

  pftool::rt::RtConfig cfg;
  cfg.workers = 4;
  pftool::rt::RtEngine engine(cfg);
  const auto r = engine.pfcp(spec.root, (base_ / "dst").string());
  EXPECT_EQ(r.files_copied, 30u);
  // The copy verifies bit-for-bit against the generator.
  EXPECT_EQ(verify_posix_tree(spec, (base_ / "dst").string()), 0u);
}

}  // namespace
}  // namespace cpa::workload
