#include "workload/campaign.hpp"

#include <gtest/gtest.h>

namespace cpa::workload {
namespace {

TEST(Campaign, GeneratesConfiguredJobCountSortedByTime) {
  CampaignConfig cfg;
  cfg.file_count_scale = 0.001;
  CampaignGenerator gen(cfg);
  const auto jobs = gen.generate();
  ASSERT_EQ(jobs.size(), 62u);
  for (std::size_t i = 1; i < jobs.size(); ++i) {
    EXPECT_GE(jobs[i].submit_time, jobs[i - 1].submit_time);
  }
  EXPECT_LE(jobs.back().submit_time, sim::days(18));
}

TEST(Campaign, MarginalsRespectPaperRanges) {
  CampaignConfig cfg;
  cfg.file_count_scale = 0.001;
  const auto jobs = CampaignGenerator(cfg).generate();
  for (const JobSpec& j : jobs) {
    EXPECT_GE(j.total_bytes, cfg.min_bytes);
    EXPECT_LE(j.total_bytes, cfg.max_bytes);
    EXPECT_GE(j.file_count, 1u);
    EXPECT_LE(j.file_count, cfg.max_files);
    EXPECT_GE(j.avg_file_size, cfg.min_avg_file / 2);  // integer division slop
    EXPECT_LE(j.avg_file_size, cfg.max_avg_file);
    EXPECT_EQ(j.avg_file_size, j.total_bytes / j.file_count);
  }
}

TEST(Campaign, MarginalMeansInPaperBallpark) {
  // Means are tail-dominated with 62 samples; accept broad factors.
  CampaignConfig cfg;
  cfg.file_count_scale = 0.001;
  const auto jobs = CampaignGenerator(cfg).generate();
  const CampaignSummary s = CampaignGenerator::summarize(jobs);
  EXPECT_GT(s.mean_bytes, 800.0 * kGB);            // paper: 2442 GB
  EXPECT_LT(s.mean_bytes, 8000.0 * kGB);
  EXPECT_GT(s.mean_avg_file, 100.0 * kMB);         // paper: 596 MB
  EXPECT_LT(s.mean_avg_file, 2500.0 * kMB);
  EXPECT_GT(s.mean_files, 10'000.0);               // paper: 167,491
  EXPECT_GT(s.max_files, 100'000.0);               // heavy tail present
}

TEST(Campaign, DeterministicForSeed) {
  CampaignConfig cfg;
  cfg.file_count_scale = 0.01;
  const auto a = CampaignGenerator(cfg).generate();
  const auto b = CampaignGenerator(cfg).generate();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].total_bytes, b[i].total_bytes);
    EXPECT_EQ(a[i].file_sizes, b[i].file_sizes);
  }
  cfg.seed = 777;
  const auto c = CampaignGenerator(cfg).generate();
  EXPECT_NE(a[0].total_bytes, c[0].total_bytes);
}

TEST(Campaign, ScaledMaterializationPreservesByteDensity) {
  CampaignConfig cfg;
  cfg.file_count_scale = 0.01;
  const auto jobs = CampaignGenerator(cfg).generate();
  for (const JobSpec& j : jobs) {
    ASSERT_FALSE(j.file_sizes.empty());
    EXPECT_LE(j.file_sizes.size(), cfg.max_materialized_files);
    std::uint64_t sum = 0;
    for (const auto s : j.file_sizes) sum += s;
    const double expected =
        static_cast<double>(j.total_bytes) *
        (static_cast<double>(j.file_sizes.size()) /
         static_cast<double>(j.file_count));
    EXPECT_NEAR(static_cast<double>(sum), expected, expected * 0.25 + 1e6);
  }
}

TEST(Campaign, SummarizeEmptyIsZero) {
  const CampaignSummary s = CampaignGenerator::summarize({});
  EXPECT_EQ(s.mean_bytes, 0.0);
}

}  // namespace
}  // namespace cpa::workload
