#include <gtest/gtest.h>

#include "pftool/core/options.hpp"
#include "pftool/core/planner.hpp"
#include "pftool/core/queues.hpp"
#include "pftool/core/report.hpp"
#include "pftool/core/restart_journal.hpp"
#include "simcore/rng.hpp"

namespace cpa::pftool {
namespace {

// --- ChunkPlanner -----------------------------------------------------------

TEST(ChunkPlanner, ModeThresholdsMatchThePaper) {
  ChunkPlanner p{PlannerConfig{}};
  EXPECT_EQ(p.mode_for(1 * kGB), CopyMode::Whole);
  EXPECT_EQ(p.mode_for(10 * kGB), CopyMode::ChunkedNto1);   // "10GBs to 100 GBs"
  EXPECT_EQ(p.mode_for(99 * kGB), CopyMode::ChunkedNto1);
  EXPECT_EQ(p.mode_for(100 * kGB), CopyMode::FuseNtoN);     // "> 100 GB"
  EXPECT_EQ(p.mode_for(1000 * kGB), CopyMode::FuseNtoN);
}

TEST(ChunkPlanner, WholeFilesAreOneChunk) {
  ChunkPlanner p{PlannerConfig{}};
  const CopyPlan plan = p.plan(5 * kGB);
  EXPECT_EQ(plan.mode, CopyMode::Whole);
  ASSERT_EQ(plan.chunks.size(), 1u);
  EXPECT_EQ(plan.chunks[0].bytes, 5 * kGB);
}

TEST(ChunkPlanner, ZeroByteFile) {
  ChunkPlanner p{PlannerConfig{}};
  const CopyPlan plan = p.plan(0);
  ASSERT_EQ(plan.chunks.size(), 1u);
  EXPECT_EQ(plan.chunks[0].bytes, 0u);
}

TEST(ChunkPlanner, Nto1ChunksPartitionExactly) {
  PlannerConfig cfg;
  cfg.copy_chunk_size = 4 * kGB;
  ChunkPlanner p{cfg};
  const CopyPlan plan = p.plan(10 * kGB);
  EXPECT_EQ(plan.mode, CopyMode::ChunkedNto1);
  ASSERT_EQ(plan.chunks.size(), 3u);  // 4 + 4 + 2
  EXPECT_EQ(plan.chunks[2].bytes, 2 * kGB);
  std::uint64_t covered = 0;
  for (const auto& c : plan.chunks) {
    EXPECT_EQ(c.offset, covered);
    covered += c.bytes;
  }
  EXPECT_EQ(covered, 10 * kGB);
}

TEST(ChunkPlanner, FuseChunksUseFuseChunkSize) {
  PlannerConfig cfg;
  cfg.fuse_chunk_size = 16 * kGB;
  ChunkPlanner p{cfg};
  const CopyPlan plan = p.plan(200 * kGB);
  EXPECT_EQ(plan.mode, CopyMode::FuseNtoN);
  EXPECT_EQ(plan.chunks.size(), 13u);  // ceil(200/16)
}

TEST(ChunkTag, DistinctAcrossChunksAndFiles) {
  EXPECT_NE(chunk_tag(1, 0), chunk_tag(1, 1));
  EXPECT_NE(chunk_tag(1, 0), chunk_tag(2, 0));
  EXPECT_EQ(chunk_tag(7, 3), chunk_tag(7, 3));  // deterministic
}

// --- WorkQueue / TapeCopyQueues ----------------------------------------------

TEST(WorkQueue, FifoWithStats) {
  WorkQueue<int> q;
  EXPECT_TRUE(q.empty());
  q.push(1);
  q.push(2);
  q.push(3);
  EXPECT_EQ(q.size(), 3u);
  EXPECT_EQ(q.max_depth(), 3u);
  EXPECT_EQ(q.pop(), 1);
  EXPECT_EQ(q.pop(), 2);
  q.push(4);
  EXPECT_EQ(q.max_depth(), 3u);  // high watermark unchanged
  EXPECT_EQ(q.total_enqueued(), 4u);
}

TEST(TapeCopyQueues, PerCartridgeSeqOrdering) {
  TapeCopyQueues<std::string> q;
  q.add(2, 30, "c-late");
  q.add(1, 5, "a-mid");
  q.add(1, 1, "a-first");
  q.add(1, 9, "a-last");
  q.add(2, 10, "c-early");
  EXPECT_EQ(q.cartridge_count(), 2u);
  EXPECT_EQ(q.total_enqueued(), 5u);

  std::uint64_t cart = 0;
  std::vector<std::string> items;
  ASSERT_TRUE(q.pop_cartridge(&cart, &items));
  EXPECT_EQ(cart, 1u);
  EXPECT_EQ(items, (std::vector<std::string>{"a-first", "a-mid", "a-last"}));
  ASSERT_TRUE(q.pop_cartridge(&cart, &items));
  EXPECT_EQ(cart, 2u);
  EXPECT_EQ(items, (std::vector<std::string>{"c-early", "c-late"}));
  EXPECT_FALSE(q.pop_cartridge(&cart, &items));
  EXPECT_TRUE(q.empty());
}

TEST(TapeCopyQueues, DuplicateSeqsKeptInInsertionOrder) {
  TapeCopyQueues<int> q;
  q.add(1, 5, 100);
  q.add(1, 5, 200);
  std::uint64_t cart = 0;
  std::vector<int> items;
  ASSERT_TRUE(q.pop_cartridge(&cart, &items));
  EXPECT_EQ(items, (std::vector<int>{100, 200}));
}

// --- RestartJournal -----------------------------------------------------------

TEST(RestartJournal, TracksPendingChunks) {
  RestartJournal j;
  j.begin("/dst/f", 100, 4);
  EXPECT_TRUE(j.known("/dst/f"));
  EXPECT_EQ(j.pending("/dst/f").size(), 4u);
  j.mark_good("/dst/f", 0);
  j.mark_good("/dst/f", 2);
  EXPECT_EQ(j.pending("/dst/f"), (std::vector<std::uint64_t>{1, 3}));
  EXPECT_EQ(j.good_count("/dst/f"), 2u);
  EXPECT_FALSE(j.complete("/dst/f"));
  j.mark_good("/dst/f", 1);
  j.mark_good("/dst/f", 3);
  EXPECT_TRUE(j.complete("/dst/f"));
}

TEST(RestartJournal, ResumePreservesMarksWhenShapeMatches) {
  RestartJournal j;
  j.begin("/f", 100, 4);
  j.mark_good("/f", 1);
  j.begin("/f", 100, 4);  // restart, same file
  EXPECT_EQ(j.good_count("/f"), 1u);
  j.begin("/f", 200, 4);  // source changed: reset
  EXPECT_EQ(j.good_count("/f"), 0u);
}

TEST(RestartJournal, MarkBadReturnsChunkToPending) {
  RestartJournal j;
  j.begin("/f", 100, 2);
  j.mark_good("/f", 0);
  j.mark_bad("/f", 0);
  EXPECT_EQ(j.pending("/f").size(), 2u);
}

TEST(RestartJournal, UnknownDestinationIsSafe) {
  RestartJournal j;
  EXPECT_FALSE(j.known("/x"));
  EXPECT_FALSE(j.complete("/x"));
  EXPECT_TRUE(j.pending("/x").empty());
  j.mark_good("/x", 0);  // no-op
  j.forget("/x");        // no-op
}

TEST(RestartJournal, OutOfRangeChunkIgnored) {
  RestartJournal j;
  j.begin("/f", 100, 2);
  j.mark_good("/f", 99);
  EXPECT_EQ(j.good_count("/f"), 0u);
}

TEST(RestartJournal, SerializeRoundTrip) {
  RestartJournal j;
  j.begin("/a/b", 1000, 3);
  j.mark_good("/a/b", 1);
  j.begin("/c", 0, 1);
  const std::string text = j.serialize();
  const auto parsed = RestartJournal::parse(text);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->size(), 2u);
  EXPECT_EQ(parsed->pending("/a/b"), (std::vector<std::uint64_t>{0, 2}));
  EXPECT_EQ(parsed->good_count("/a/b"), 1u);
}

TEST(RestartJournal, ParseRejectsGarbage) {
  EXPECT_FALSE(RestartJournal::parse("not a journal").has_value());
  EXPECT_FALSE(RestartJournal::parse("/f|x|y|11").has_value());
  EXPECT_FALSE(RestartJournal::parse("/f|10|3|11").has_value());   // bitmap len
  EXPECT_FALSE(RestartJournal::parse("/f|10|2|1z").has_value());   // bad char
  EXPECT_TRUE(RestartJournal::parse("").has_value());              // empty ok
}

// Property: after random mark sequences, pending + good partition chunks.
class JournalProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(JournalProperty, PendingAndGoodPartition) {
  cpa::sim::Rng rng(GetParam());
  RestartJournal j;
  const std::uint64_t chunks = rng.uniform_u64(1, 64);
  j.begin("/f", chunks * 100, chunks);
  for (int op = 0; op < 200; ++op) {
    const std::uint64_t c = rng.uniform_u64(0, chunks - 1);
    if (rng.chance(0.7)) {
      j.mark_good("/f", c);
    } else {
      j.mark_bad("/f", c);
    }
  }
  EXPECT_EQ(j.pending("/f").size() + j.good_count("/f"), chunks);
  // Serialize/parse preserves exact state.
  const auto parsed = RestartJournal::parse(j.serialize());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->pending("/f"), j.pending("/f"));
}

INSTANTIATE_TEST_SUITE_P(RandomMarks, JournalProperty,
                         ::testing::Range<std::uint64_t>(1, 13));

// --- JobReport -----------------------------------------------------------------

TEST(JobReport, RenderContainsKeyFigures) {
  JobReport r;
  r.command = "pfcp";
  r.src_root = "/scratch/run1";
  r.dst_root = "/archive/run1";
  r.started = 0;
  r.finished = sim::secs(100);
  r.dirs_walked = 5;
  r.files_stated = 20;
  r.files_copied = 20;
  r.bytes_copied = 57'500 * kMB;
  r.chunks_copied = 22;
  const std::string s = r.render();
  EXPECT_NE(s.find("pfcp"), std::string::npos);
  EXPECT_NE(s.find("575.0 MB/s"), std::string::npos);
  EXPECT_NE(s.find("walked 5 dirs"), std::string::npos);
  EXPECT_DOUBLE_EQ(r.elapsed_seconds(), 100.0);
}

TEST(JobReport, AbortedFlagShown) {
  JobReport r;
  r.command = "pfcp";
  r.aborted_by_watchdog = true;
  EXPECT_NE(r.render().find("ABORTED"), std::string::npos);
}

}  // namespace
}  // namespace cpa::pftool
