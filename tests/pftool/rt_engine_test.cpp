#include "pftool/rt/engine.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <random>

namespace cpa::pftool::rt {
namespace {

namespace fs = std::filesystem;

class RtEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    base_ = fs::temp_directory_path() /
            ("cpa_rt_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(base_);
    fs::create_directories(base_);
  }
  void TearDown() override { fs::remove_all(base_); }

  [[nodiscard]] std::string path(const std::string& rel) const {
    return (base_ / rel).string();
  }

  void write_random(const std::string& rel, std::size_t size,
                    std::uint32_t seed) {
    const fs::path p = base_ / rel;
    fs::create_directories(p.parent_path());
    std::ofstream out(p, std::ios::binary);
    std::mt19937 rng(seed);
    for (std::size_t i = 0; i < size; ++i) {
      out.put(static_cast<char>(rng() & 0xFF));
    }
  }

  [[nodiscard]] static std::string slurp(const std::string& p) {
    std::ifstream in(p, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
  }

  fs::path base_;
};

TEST_F(RtEngineTest, PflsCountsTree) {
  write_random("src/a/f1", 100, 1);
  write_random("src/a/f2", 200, 2);
  write_random("src/b/f3", 300, 3);
  RtEngine engine(RtConfig{});
  const RtReport r = engine.pfls(path("src"));
  EXPECT_EQ(r.dirs_walked, 3u);
  EXPECT_EQ(r.files_stated, 3u);
  EXPECT_EQ(r.files_failed, 0u);
}

TEST_F(RtEngineTest, PfcpCopiesTreeByteIdentical) {
  write_random("src/d1/small", 1000, 10);
  write_random("src/d1/medium", 100'000, 11);
  write_random("src/d2/nested/deep", 5000, 12);
  write_random("src/empty_file", 0, 13);
  RtEngine engine(RtConfig{});
  const RtReport r = engine.pfcp(path("src"), path("dst"));
  EXPECT_EQ(r.files_copied, 4u);
  EXPECT_EQ(r.files_failed, 0u);
  EXPECT_EQ(r.bytes_copied, 106'000u);
  EXPECT_EQ(slurp(path("src/d1/small")), slurp(path("dst/d1/small")));
  EXPECT_EQ(slurp(path("src/d1/medium")), slurp(path("dst/d1/medium")));
  EXPECT_EQ(slurp(path("src/d2/nested/deep")), slurp(path("dst/d2/nested/deep")));
  EXPECT_TRUE(fs::exists(path("dst/empty_file")));
  EXPECT_EQ(fs::file_size(path("dst/empty_file")), 0u);
}

TEST_F(RtEngineTest, LargeFileCopiedInParallelChunks) {
  RtConfig cfg;
  cfg.large_file_threshold = 64 * 1024;
  cfg.chunk_size = 16 * 1024;
  cfg.workers = 4;
  write_random("src/big", 200 * 1024 + 17, 42);  // 13 chunks, odd tail
  RtEngine engine(cfg);
  const RtReport r = engine.pfcp(path("src"), path("dst"));
  EXPECT_EQ(r.files_copied, 1u);
  EXPECT_EQ(r.chunks_copied, 13u);
  EXPECT_EQ(slurp(path("src/big")), slurp(path("dst/big")));
}

TEST_F(RtEngineTest, PfcmMatchesAndDetectsCorruption) {
  write_random("src/f1", 50'000, 7);
  write_random("src/f2", 50'000, 8);
  RtEngine engine(RtConfig{});
  engine.pfcp(path("src"), path("dst"));
  RtReport r = engine.pfcm(path("src"), path("dst"));
  EXPECT_EQ(r.files_compared, 2u);
  EXPECT_EQ(r.files_matched, 2u);

  // Flip one byte in the middle of dst/f2.
  {
    std::fstream f(path("dst/f2"), std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(25'000);
    f.put('\xFF');
    f.seekp(25'001);
    f.put('\x00');
  }
  r = engine.pfcm(path("src"), path("dst"));
  EXPECT_EQ(r.files_compared, 2u);
  EXPECT_EQ(r.files_mismatched, 1u);
  EXPECT_EQ(r.files_matched, 1u);
}

TEST_F(RtEngineTest, PfcmFailsOnMissingDestination) {
  write_random("src/f1", 100, 1);
  RtEngine engine(RtConfig{});
  const RtReport r = engine.pfcm(path("src"), path("nonexistent_dst"));
  EXPECT_EQ(r.files_failed, 1u);
}

TEST_F(RtEngineTest, MissingSourceRootFails) {
  RtEngine engine(RtConfig{});
  const RtReport r = engine.pfcp(path("nope"), path("dst"));
  EXPECT_EQ(r.files_failed, 1u);
}

TEST_F(RtEngineTest, SingleFileCopy) {
  write_random("one.dat", 12345, 5);
  RtEngine engine(RtConfig{});
  const RtReport r = engine.pfcp(path("one.dat"), path("out/one.dat"));
  EXPECT_EQ(r.files_copied, 1u);
  EXPECT_EQ(slurp(path("one.dat")), slurp(path("out/one.dat")));
}

TEST_F(RtEngineTest, RestartSkipsJournaledChunks) {
  RtConfig cfg;
  cfg.large_file_threshold = 64 * 1024;
  cfg.chunk_size = 64 * 1024;
  cfg.journal_path = path("journal.txt");
  write_random("src/big", 256 * 1024, 9);  // 4 chunks

  // First, a full run to produce correct content and learn chunk layout.
  RtEngine engine(cfg);
  RtReport r = engine.pfcp(path("src"), path("dst"));
  EXPECT_EQ(r.files_copied, 1u);
  EXPECT_EQ(r.chunks_copied, 4u);

  // Simulate an interrupted prior transfer: journal says chunks 0,1 done.
  RestartJournal j;
  const std::string dst_file = path("dst2") + "/big";
  j.begin(dst_file, 256 * 1024, 4);
  j.mark_good(dst_file, 0);
  j.mark_good(dst_file, 1);
  {
    std::ofstream out(cfg.journal_path);
    out << j.serialize();
  }
  // The interrupted run had created the sized destination and copied the
  // first half.
  fs::create_directories(path("dst2"));
  {
    std::ofstream out(dst_file, std::ios::binary);
  }
  fs::resize_file(dst_file, 256 * 1024);
  PosixFileOps ops;
  ASSERT_TRUE(ops.copy_range(path("src/big"), dst_file, 0, 128 * 1024));

  r = engine.pfcp(path("src"), path("dst2"));
  EXPECT_EQ(r.files_copied, 1u);
  EXPECT_EQ(r.chunks_copied, 2u);
  EXPECT_EQ(r.chunks_skipped_restart, 2u);
  EXPECT_EQ(r.bytes_copied, 128u * 1024);
  EXPECT_EQ(slurp(path("src/big")), slurp(dst_file));
}

TEST_F(RtEngineTest, PflsOnSingleFileRoot) {
  write_random("lone.dat", 4242, 3);
  RtEngine engine(RtConfig{});
  const RtReport r = engine.pfls(path("lone.dat"));
  EXPECT_EQ(r.files_stated, 1u);
  EXPECT_EQ(r.dirs_walked, 0u);
  EXPECT_EQ(r.files_failed, 0u);
}

TEST_F(RtEngineTest, ManySmallFilesWithManyWorkers) {
  for (int i = 0; i < 200; ++i) {
    write_random("src/d" + std::to_string(i % 10) + "/f" + std::to_string(i),
                 512 + static_cast<std::size_t>(i), static_cast<std::uint32_t>(i));
  }
  RtConfig cfg;
  cfg.workers = 8;
  RtEngine engine(cfg);
  const RtReport r = engine.pfcp(path("src"), path("dst"));
  EXPECT_EQ(r.files_copied, 200u);
  EXPECT_EQ(r.files_failed, 0u);
  const RtReport v = engine.pfcm(path("src"), path("dst"));
  EXPECT_EQ(v.files_matched, 200u);
  EXPECT_EQ(v.files_mismatched, 0u);
}

}  // namespace
}  // namespace cpa::pftool::rt
