#include "pftool/sim/job.hpp"

#include <gtest/gtest.h>

#include "archive/system.hpp"

namespace cpa::pftool::sim {
namespace {

using archive::CotsParallelArchive;
using archive::SystemConfig;

class PftoolSimTest : public ::testing::Test {
 protected:
  PftoolSimTest() : sys_(SystemConfig::small()) {}

  /// Builds a small scratch tree: 2 dirs, `files_per_dir` files each.
  void build_tree(unsigned files_per_dir, std::uint64_t file_size) {
    for (int d = 0; d < 2; ++d) {
      for (unsigned f = 0; f < files_per_dir; ++f) {
        const std::string path = "/runs/d" + std::to_string(d) + "/f" +
                                 std::to_string(f);
        ASSERT_EQ(sys_.make_file(sys_.scratch(), path, file_size,
                                 0x1000 + d * 100 + f),
                  pfs::Errc::Ok);
      }
    }
  }

  CotsParallelArchive sys_;
};

TEST_F(PftoolSimTest, PflsWalksAndLists) {
  build_tree(5, kMB);
  const JobReport r = sys_.pfls("/runs");
  EXPECT_EQ(r.command, "pfls");
  EXPECT_EQ(r.dirs_walked, 3u);   // /runs, d0, d1
  EXPECT_EQ(r.files_stated, 10u);
  EXPECT_EQ(r.files_copied, 0u);
  EXPECT_GT(r.finished, r.started);
}

TEST_F(PftoolSimTest, PfcpCopiesTreePreservingContent) {
  build_tree(5, 10 * kMB);
  const JobReport r = sys_.pfcp_archive("/runs", "/archive/runs");
  EXPECT_EQ(r.files_copied, 10u);
  EXPECT_EQ(r.bytes_copied, 100 * kMB);
  EXPECT_EQ(r.files_failed, 0u);
  EXPECT_EQ(r.chunks_copied, 10u);  // all small -> whole-file copies

  // Destination tree mirrors the source with identical content tags.
  for (int d = 0; d < 2; ++d) {
    for (int f = 0; f < 5; ++f) {
      const std::string src = "/runs/d" + std::to_string(d) + "/f" +
                              std::to_string(f);
      const std::string dst = "/archive/runs/d" + std::to_string(d) + "/f" +
                              std::to_string(f);
      ASSERT_TRUE(sys_.archive_fs().exists(dst)) << dst;
      EXPECT_EQ(sys_.archive_fs().read_tag(dst).value(),
                sys_.scratch().read_tag(src).value());
    }
  }
}

TEST_F(PftoolSimTest, PfcmVerifiesCopiedTree) {
  build_tree(4, 5 * kMB);
  sys_.pfcp_archive("/runs", "/archive/runs");
  const JobReport r = sys_.pfcm("/runs", "/archive/runs");
  EXPECT_EQ(r.files_compared, 8u);
  EXPECT_EQ(r.files_matched, 8u);
  EXPECT_EQ(r.files_mismatched, 0u);
}

TEST_F(PftoolSimTest, PfcmDetectsCorruption) {
  build_tree(4, 5 * kMB);
  sys_.pfcp_archive("/runs", "/archive/runs");
  // Corrupt one destination file.
  ASSERT_EQ(sys_.archive_fs().write_all("/archive/runs/d0/f1", 5 * kMB, 0xBAD),
            pfs::Errc::Ok);
  const JobReport r = sys_.pfcm("/runs", "/archive/runs");
  EXPECT_EQ(r.files_compared, 8u);
  EXPECT_EQ(r.files_matched, 7u);
  EXPECT_EQ(r.files_mismatched, 1u);
}

TEST_F(PftoolSimTest, PfcmDetectsMissingDestination) {
  build_tree(2, kMB);
  sys_.pfcp_archive("/runs", "/archive/runs");
  ASSERT_EQ(sys_.archive_fs().unlink("/archive/runs/d1/f0"), pfs::Errc::Ok);
  const JobReport r = sys_.pfcm("/runs", "/archive/runs");
  EXPECT_EQ(r.files_failed, 1u);  // incomparable
  EXPECT_EQ(r.files_compared, 3u);
}

TEST_F(PftoolSimTest, SingleFilePfcp) {
  ASSERT_EQ(sys_.make_file(sys_.scratch(), "/data/one", 7 * kMB, 0x777),
            pfs::Errc::Ok);
  const JobReport r = sys_.pfcp_archive("/data/one", "/archive/one");
  EXPECT_EQ(r.files_copied, 1u);
  EXPECT_EQ(r.dirs_walked, 0u);
  EXPECT_EQ(sys_.archive_fs().read_tag("/archive/one").value(), 0x777u);
}

TEST_F(PftoolSimTest, LargeFileGoesNto1Chunked) {
  // 20 GB: within the "10 GBs to 100 GBs" N-to-1 band.
  ASSERT_EQ(sys_.make_file(sys_.scratch(), "/data/big", 20 * kGB, 0xB16),
            pfs::Errc::Ok);
  const JobReport r = sys_.pfcp_archive("/data/big", "/archive/big");
  EXPECT_EQ(r.files_copied, 1u);
  EXPECT_EQ(r.chunks_copied, 5u);  // 20 GB / 4 GB chunks
  EXPECT_EQ(r.fuse_files, 0u);
  EXPECT_EQ(sys_.archive_fs().read_tag("/archive/big").value(), 0xB16u);
  EXPECT_EQ(sys_.archive_fs().stat("/archive/big").value().size, 20 * kGB);
}

TEST_F(PftoolSimTest, VeryLargeFileGoesThroughFuseNtoN) {
  ASSERT_EQ(sys_.make_file(sys_.scratch(), "/data/huge", 200 * kGB, 0xA5A5),
            pfs::Errc::Ok);
  const JobReport r = sys_.pfcp_archive("/data/huge", "/archive/huge");
  EXPECT_EQ(r.files_copied, 1u);
  EXPECT_EQ(r.fuse_files, 1u);
  EXPECT_EQ(r.chunks_copied, 13u);  // ceil(200/16)
  ASSERT_TRUE(sys_.fuse().is_chunked("/archive/huge"));
  const auto st = sys_.fuse().stat("/archive/huge");
  ASSERT_TRUE(st.ok());
  EXPECT_TRUE(st.value().complete);
  EXPECT_EQ(st.value().size, 200 * kGB);
  EXPECT_EQ(sys_.fuse().origin_tag("/archive/huge").value(), 0xA5A5u);
}

TEST_F(PftoolSimTest, PfcmMatchesFuseChunkedCopy) {
  ASSERT_EQ(sys_.make_file(sys_.scratch(), "/data/huge", 150 * kGB, 0xFACE),
            pfs::Errc::Ok);
  sys_.pfcp_archive("/data/huge", "/archive/huge");
  const JobReport r = sys_.pfcm("/data/huge", "/archive/huge");
  EXPECT_EQ(r.files_compared, 1u);
  EXPECT_EQ(r.files_matched, 1u);
}

TEST_F(PftoolSimTest, MoreWorkersCopyFaster) {
  for (int f = 0; f < 32; ++f) {
    ASSERT_EQ(sys_.make_file(sys_.scratch(), "/w/f" + std::to_string(f),
                             500 * kMB, static_cast<std::uint64_t>(f)),
              pfs::Errc::Ok);
  }
  PftoolConfig one = sys_.config().pftool;
  one.num_workers = 1;
  const JobReport r1 =
      run_pfcp(sys_.job_env(false), one, "/w", "/archive/w1");

  PftoolConfig eight = sys_.config().pftool;
  eight.num_workers = 8;
  const JobReport r8 =
      run_pfcp(sys_.job_env(false), eight, "/w", "/archive/w8");

  EXPECT_EQ(r1.files_copied, 32u);
  EXPECT_EQ(r8.files_copied, 32u);
  EXPECT_GT(r8.rate_bps(), 2.0 * r1.rate_bps());
}

TEST_F(PftoolSimTest, RestoreDirectionEngagesTapeProcs) {
  // Archive 6 files, migrate them to tape, punch stubs.
  build_tree(3, 50 * kMB);
  sys_.pfcp_archive("/runs", "/archive/runs");
  std::vector<std::string> paths;
  for (int d = 0; d < 2; ++d) {
    for (int f = 0; f < 3; ++f) {
      paths.push_back("/archive/runs/d" + std::to_string(d) + "/f" +
                      std::to_string(f));
    }
  }
  bool migrated = false;
  sys_.hsm().migrate_batch(0, paths, "g",
                           [&](const hsm::MigrateReport& r) {
                             EXPECT_EQ(r.files_migrated, 6u);
                             migrated = true;
                           });
  sys_.sim().run();
  ASSERT_TRUE(migrated);

  // Restore to a fresh scratch location.
  const JobReport r = sys_.pfcp_restore("/archive/runs", "/restored");
  EXPECT_EQ(r.files_restored, 6u);
  EXPECT_EQ(r.files_copied, 6u);
  EXPECT_GE(r.tapes_touched, 1u);
  EXPECT_EQ(r.files_failed, 0u);
  for (const auto& p : paths) {
    const std::string dst = "/restored" + p.substr(std::string("/archive/runs").size());
    ASSERT_TRUE(sys_.scratch().exists(dst)) << dst;
    EXPECT_EQ(sys_.scratch().read_tag(dst).value(),
              sys_.archive_fs().read_tag(p).value());
  }
}

TEST_F(PftoolSimTest, RestartSkipsKnownGoodChunks) {
  ASSERT_EQ(sys_.make_file(sys_.scratch(), "/data/big", 20 * kGB, 0x5E57),
            pfs::Errc::Ok);
  // Simulate a previous interrupted run: 3 of 5 chunks already good.
  sys_.journal().begin("/archive/big", 20 * kGB, 5);
  sys_.journal().mark_good("/archive/big", 0);
  sys_.journal().mark_good("/archive/big", 1);
  sys_.journal().mark_good("/archive/big", 2);
  // The interrupted run had already created the destination file.
  ASSERT_EQ(sys_.archive_fs().mkdirs("/archive"), pfs::Errc::Ok);

  PftoolConfig cfg = sys_.config().pftool;
  cfg.restartable = true;
  const JobReport r = run_pfcp(sys_.job_env(false), cfg, "/data/big",
                               "/archive/big");
  EXPECT_EQ(r.files_copied, 1u);
  EXPECT_EQ(r.chunks_skipped_restart, 3u);
  EXPECT_EQ(r.chunks_copied, 2u);
  EXPECT_EQ(r.bytes_copied, 8 * kGB);  // only the missing 2 x 4 GB
  EXPECT_EQ(sys_.archive_fs().read_tag("/archive/big").value(), 0x5E57u);
  // Journal entry cleaned up after completion.
  EXPECT_FALSE(sys_.journal().known("/archive/big"));
}

TEST_F(PftoolSimTest, WatchdogRecordsProgressSamples) {
  for (int f = 0; f < 16; ++f) {
    ASSERT_EQ(sys_.make_file(sys_.scratch(), "/w/f" + std::to_string(f),
                             20 * kGB, static_cast<std::uint64_t>(f)),
              pfs::Errc::Ok);
  }
  JobReport out;
  PftoolJob job(sys_.job_env(false), sys_.config().pftool, Command::Pfcp,
                "/w", "/archive/w", [&](const JobReport& r) { out = r; });
  job.start();
  sys_.sim().run();
  EXPECT_EQ(out.files_copied, 16u);
  // The job runs minutes of virtual time; the WatchDog sampled it.
  EXPECT_GT(job.watchdog_samples().size(), 0u);
  EXPECT_GT(job.watchdog_samples().back().total_bytes, 0u);
}

TEST_F(PftoolSimTest, WatchdogAbortsStalledJob) {
  ASSERT_EQ(sys_.make_file(sys_.scratch(), "/w/f", kGB, 1), pfs::Errc::Ok);
  // Stall the data path completely: zero both trunks.
  sys_.net().set_pool_capacity(sys_.fta().trunk_for(0), 0.0);
  sys_.net().set_pool_capacity(sys_.fta().trunk_for(1), 0.0);
  PftoolConfig cfg = sys_.config().pftool;
  cfg.stall_timeout = cpa::sim::minutes(5);
  JobReport out;
  PftoolJob job(sys_.job_env(false), cfg, Command::Pfcp, "/w", "/archive/w",
                [&](const JobReport& r) { out = r; });
  job.start();
  sys_.sim().run();
  EXPECT_TRUE(out.aborted_by_watchdog);
  EXPECT_EQ(out.files_copied, 0u);
}

TEST_F(PftoolSimTest, MissingSourceFailsCleanly) {
  const JobReport r = sys_.pfcp_archive("/does/not/exist", "/archive/x");
  EXPECT_EQ(r.files_failed, 1u);
  EXPECT_EQ(r.files_copied, 0u);
}

TEST_F(PftoolSimTest, EmptyDirectoryTreeCopiesStructureOnly) {
  ASSERT_EQ(sys_.scratch().mkdirs("/empty/a/b"), pfs::Errc::Ok);
  const JobReport r = sys_.pfcp_archive("/empty", "/archive/empty");
  EXPECT_EQ(r.dirs_walked, 3u);
  EXPECT_EQ(r.files_copied, 0u);
  EXPECT_TRUE(sys_.archive_fs().exists("/archive/empty/a/b"));
}

TEST_F(PftoolSimTest, OutputProcReceivesListingLines) {
  build_tree(5, kMB);
  JobReport out;
  PftoolJob job(sys_.job_env(false), sys_.config().pftool, Command::Pfls,
                "/runs", "", [&](const JobReport& r) { out = r; });
  job.start();
  sys_.sim().run();
  EXPECT_EQ(job.output_lines(), 10u);
}

TEST_F(PftoolSimTest, PlacementPolicyRoutesSmallFilesToSlowPool) {
  // Sec 4.2.1: "a 'slow' disk pool used to store small files".
  pfs::Rule place;
  place.name = "smalls-to-slow";
  place.action = pfs::Rule::Action::Place;
  place.target = "slow";
  place.where = {pfs::Condition::path_glob("/archive/smallfiles/*")};
  sys_.policy().add_rule(place);

  ASSERT_EQ(sys_.make_file(sys_.scratch(), "/in/tiny", 64 * kKB, 1), pfs::Errc::Ok);
  ASSERT_EQ(sys_.make_file(sys_.scratch(), "/in/big", 200 * kMB, 2), pfs::Errc::Ok);
  sys_.pfcp_archive("/in/tiny", "/archive/smallfiles/tiny");
  sys_.pfcp_archive("/in/big", "/archive/bigfiles/big");
  EXPECT_EQ(sys_.archive_fs().stat("/archive/smallfiles/tiny").value().pool,
            "slow");
  EXPECT_EQ(sys_.archive_fs().stat("/archive/bigfiles/big").value().pool,
            "fast");
}

TEST_F(PftoolSimTest, ReportCarriesQueueHighWatermarks) {
  build_tree(20, kMB);
  const JobReport r = sys_.pfcp_archive("/runs", "/archive/runs");
  EXPECT_GT(r.nameq_max_depth, 0u);
  EXPECT_GT(r.copyq_max_depth, 0u);
  EXPECT_GT(r.dirq_max_depth, 0u);
  EXPECT_NE(r.render().find("queues:"), std::string::npos);
}

}  // namespace
}  // namespace cpa::pftool::sim
