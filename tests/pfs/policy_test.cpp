#include "pfs/policy.hpp"

#include <gtest/gtest.h>

#include "simcore/units.hpp"

namespace cpa::pfs {
namespace {

FsConfig config() {
  FsConfig cfg;
  cfg.pools = {
      PoolConfig{"fast", 0, 4, false},
      PoolConfig{"slow", 0, 2, false},
      PoolConfig{"tape", 0, 1, true},
  };
  return cfg;
}

class PolicyTest : public ::testing::Test {
 protected:
  PolicyTest() : fs_(sim_, config()) {}

  void make_file(const std::string& path, std::uint64_t size,
                 const std::string& pool = "") {
    ASSERT_EQ(fs_.mkdirs(parent_path(path)), Errc::Ok);
    ASSERT_TRUE(fs_.create(path, pool).ok());
    ASSERT_EQ(fs_.write_all(path, size, 1), Errc::Ok);
  }

  sim::Simulation sim_;
  FileSystem fs_;
  PolicyEngine engine_;
};

TEST_F(PolicyTest, ConditionEvaluation) {
  make_file("/data/big.dat", 500 * kMB);
  const auto attrs = fs_.stat("/data/big.dat").value();
  const sim::Tick now = sim_.now();

  EXPECT_TRUE(Condition::size_ge(100 * kMB).eval("/data/big.dat", attrs, now));
  EXPECT_FALSE(Condition::size_ge(kGB).eval("/data/big.dat", attrs, now));
  EXPECT_TRUE(Condition::size_le(kGB).eval("/data/big.dat", attrs, now));
  EXPECT_TRUE(Condition::pool_is("fast").eval("/data/big.dat", attrs, now));
  EXPECT_FALSE(Condition::pool_is("slow").eval("/data/big.dat", attrs, now));
  EXPECT_TRUE(Condition::path_glob("/data/*.dat").eval("/data/big.dat", attrs, now));
  EXPECT_FALSE(Condition::path_glob("/other/*").eval("/data/big.dat", attrs, now));
  EXPECT_TRUE(Condition::dmapi_is(DmapiState::Resident).eval("/data/big.dat", attrs, now));
  EXPECT_TRUE(Condition::dmapi_not(DmapiState::Migrated).eval("/data/big.dat", attrs, now));
}

TEST_F(PolicyTest, AgeCondition) {
  make_file("/old", kMB);
  sim_.run_until(sim::hours(2));
  make_file("/new", kMB);
  const sim::Tick now = sim_.now();
  const auto old_attrs = fs_.stat("/old").value();
  const auto new_attrs = fs_.stat("/new").value();
  const auto one_hour = Condition::age_ge(3600);
  EXPECT_TRUE(one_hour.eval("/old", old_attrs, now));
  EXPECT_FALSE(one_hour.eval("/new", new_attrs, now));
}

TEST_F(PolicyTest, PlacementPoolFirstMatchWins) {
  Rule small_to_slow;
  small_to_slow.name = "small-files";
  small_to_slow.action = Rule::Action::Place;
  small_to_slow.target = "slow";
  small_to_slow.where = {Condition::path_glob("/archive/smallfiles/*")};
  engine_.add_rule(small_to_slow);

  Rule everything_fast;
  everything_fast.name = "default";
  everything_fast.action = Rule::Action::Place;
  everything_fast.target = "fast";
  engine_.add_rule(everything_fast);

  EXPECT_EQ(engine_.placement_pool("/archive/smallfiles/x", sim_.now()), "slow");
  EXPECT_EQ(engine_.placement_pool("/archive/bigfiles/x", sim_.now()), "fast");
}

TEST_F(PolicyTest, PlacementReturnsEmptyWithoutRules) {
  EXPECT_EQ(engine_.placement_pool("/x", sim_.now()), "");
}

TEST_F(PolicyTest, ListRuleCollectsCandidates) {
  make_file("/a/keep", 10 * kMB);
  make_file("/a/mig1", 200 * kMB);
  make_file("/a/mig2", 300 * kMB);

  Rule list;
  list.name = "premigrate-candidates";
  list.action = Rule::Action::List;
  list.target = "candidates";
  list.where = {Condition::size_ge(100 * kMB),
                Condition::dmapi_is(DmapiState::Resident)};
  engine_.add_rule(list);

  const ScanReport report = engine_.run_scan(fs_);
  const auto& matches = report.matches.at("premigrate-candidates");
  ASSERT_EQ(matches.size(), 2u);
  EXPECT_EQ(matches[0].path, "/a/mig1");
  EXPECT_EQ(matches[1].path, "/a/mig2");
  // Directories are not candidates but are scanned.
  EXPECT_EQ(report.inodes_scanned, fs_.total_inodes());
}

TEST_F(PolicyTest, MigrateRulesUseFirstMatchSemantics) {
  make_file("/f", 200 * kMB);

  Rule first;
  first.name = "to-slow";
  first.action = Rule::Action::MigrateToPool;
  first.target = "slow";
  first.where = {Condition::size_ge(100 * kMB)};
  Rule second;
  second.name = "to-tape";
  second.action = Rule::Action::MigrateExternal;
  second.target = "tape";
  second.where = {Condition::size_ge(50 * kMB)};
  engine_.add_rule(first);
  engine_.add_rule(second);

  const ScanReport report = engine_.run_scan(fs_);
  EXPECT_EQ(report.matches.at("to-slow").size(), 1u);
  EXPECT_TRUE(report.matches.at("to-tape").empty());  // claimed by first
}

TEST_F(PolicyTest, ListRulesDoNotClaimFiles) {
  make_file("/f", 200 * kMB);
  Rule list;
  list.name = "watch";
  list.action = Rule::Action::List;
  list.where = {};
  Rule mig;
  mig.name = "mig";
  mig.action = Rule::Action::MigrateExternal;
  mig.target = "tape";
  engine_.add_rule(list);
  engine_.add_rule(mig);
  const ScanReport report = engine_.run_scan(fs_);
  EXPECT_EQ(report.matches.at("watch").size(), 1u);
  EXPECT_EQ(report.matches.at("mig").size(), 1u);
}

TEST_F(PolicyTest, ScanDurationScalesWithStreams) {
  for (int i = 0; i < 50; ++i) {
    make_file("/bulk" + std::to_string(i), kMB);
  }
  const ScanReport one = engine_.run_scan(fs_, 1);
  const ScanReport ten = engine_.run_scan(fs_, 10);
  EXPECT_EQ(one.inodes_scanned, ten.inodes_scanned);
  EXPECT_GT(one.scan_duration, ten.scan_duration);
}

TEST_F(PolicyTest, RuleToStringIsReadable) {
  Rule r;
  r.name = "mig-old-big";
  r.action = Rule::Action::MigrateExternal;
  r.target = "tape";
  r.where = {Condition::size_ge(100), Condition::age_ge(60)};
  const std::string s = r.to_string();
  EXPECT_NE(s.find("mig-old-big"), std::string::npos);
  EXPECT_NE(s.find("MIGRATE EXTERNAL"), std::string::npos);
  EXPECT_NE(s.find("size >= 100"), std::string::npos);
  EXPECT_NE(s.find("age >= 60s"), std::string::npos);
}

}  // namespace
}  // namespace cpa::pfs
