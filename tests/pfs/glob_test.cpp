#include "pfs/glob.hpp"

#include <gtest/gtest.h>

namespace cpa::pfs {
namespace {

TEST(Glob, LiteralMatch) {
  EXPECT_TRUE(glob_match("/a/b", "/a/b"));
  EXPECT_FALSE(glob_match("/a/b", "/a/c"));
  EXPECT_FALSE(glob_match("/a/b", "/a/bb"));
  EXPECT_FALSE(glob_match("/a/bb", "/a/b"));
}

TEST(Glob, StarMatchesAnyRunIncludingSlash) {
  EXPECT_TRUE(glob_match("/data/*", "/data/x"));
  EXPECT_TRUE(glob_match("/data/*", "/data/sub/deep/file"));
  EXPECT_TRUE(glob_match("*", ""));
  EXPECT_TRUE(glob_match("*", "anything/at/all"));
  EXPECT_FALSE(glob_match("/data/*", "/other/x"));
}

TEST(Glob, SuffixAndInfixStars) {
  EXPECT_TRUE(glob_match("*.dat", "run42.dat"));
  EXPECT_FALSE(glob_match("*.dat", "run42.txt"));
  EXPECT_TRUE(glob_match("/proj/*/ckpt*", "/proj/astro/ckpt-0001"));
  EXPECT_FALSE(glob_match("/proj/*/ckpt*", "/proj/astro/dump-0001"));
  EXPECT_TRUE(glob_match("a*b*c", "aXXbYYc"));
  EXPECT_FALSE(glob_match("a*b*c", "aXXcYYb"));
}

TEST(Glob, QuestionMarkMatchesExactlyOne) {
  EXPECT_TRUE(glob_match("file?", "file1"));
  EXPECT_FALSE(glob_match("file?", "file"));
  EXPECT_FALSE(glob_match("file?", "file12"));
  EXPECT_TRUE(glob_match("???", "abc"));
}

TEST(Glob, EmptyPatternMatchesOnlyEmpty) {
  EXPECT_TRUE(glob_match("", ""));
  EXPECT_FALSE(glob_match("", "x"));
}

TEST(Glob, TrailingStarsCollapse) {
  EXPECT_TRUE(glob_match("abc***", "abc"));
  EXPECT_TRUE(glob_match("abc***", "abcdef"));
}

TEST(Glob, BacktrackingCase) {
  // Requires re-expanding an earlier '*'.
  EXPECT_TRUE(glob_match("*aab", "aaaab"));
  EXPECT_TRUE(glob_match("*ab*ab", "abxabxab"));
}

}  // namespace
}  // namespace cpa::pfs
