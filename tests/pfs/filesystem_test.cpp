#include "pfs/filesystem.hpp"

#include <gtest/gtest.h>

#include "simcore/units.hpp"

namespace cpa::pfs {
namespace {

FsConfig small_config() {
  FsConfig cfg;
  cfg.name = "testfs";
  cfg.block_size = 1 * kMB;
  cfg.pools = {
      PoolConfig{"fast", 100 * kMB, 4, false},
      PoolConfig{"slow", 50 * kMB, 2, false},
      PoolConfig{"tape", 0, 1, true},
  };
  return cfg;
}

class FileSystemTest : public ::testing::Test {
 protected:
  FileSystemTest() : fs_(sim_, small_config()) {}
  sim::Simulation sim_;
  FileSystem fs_;
};

TEST_F(FileSystemTest, PathHelpers) {
  std::vector<std::string> parts;
  EXPECT_TRUE(split_path("/a/b/c", &parts));
  EXPECT_EQ(parts, (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(split_path("/", &parts));
  EXPECT_TRUE(parts.empty());
  EXPECT_FALSE(split_path("relative", &parts));
  EXPECT_FALSE(split_path("/a//b", &parts));
  EXPECT_FALSE(split_path("/a/../b", &parts));
  EXPECT_FALSE(split_path("", &parts));

  EXPECT_EQ(join_path("/", "a"), "/a");
  EXPECT_EQ(join_path("/a", "b"), "/a/b");
  EXPECT_EQ(parent_path("/a/b"), "/a");
  EXPECT_EQ(parent_path("/a"), "/");
  EXPECT_EQ(base_name("/a/b"), "b");
}

TEST_F(FileSystemTest, MkdirCreateStat) {
  ASSERT_TRUE(fs_.mkdir("/data").ok());
  auto fid = fs_.create("/data/f1");
  ASSERT_TRUE(fid.ok());
  EXPECT_TRUE(fid.value().valid());

  auto st = fs_.stat("/data/f1");
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st.value().kind, FileKind::Regular);
  EXPECT_EQ(st.value().size, 0u);
  EXPECT_EQ(st.value().pool, "fast");
  EXPECT_EQ(st.value().dmapi, DmapiState::Resident);

  EXPECT_EQ(fs_.stat("/data/missing").error(), Errc::NotFound);
  EXPECT_EQ(fs_.mkdir("/data").error(), Errc::Exists);
  EXPECT_EQ(fs_.create("/data/f1").error(), Errc::Exists);
  EXPECT_EQ(fs_.create("/nodir/f").error(), Errc::NotFound);
}

TEST_F(FileSystemTest, MkdirsCreatesChain) {
  EXPECT_EQ(fs_.mkdirs("/a/b/c/d"), Errc::Ok);
  EXPECT_TRUE(fs_.exists("/a/b/c/d"));
  EXPECT_EQ(fs_.mkdirs("/a/b/c/d"), Errc::Ok);  // idempotent
  ASSERT_TRUE(fs_.create("/a/file").ok());
  EXPECT_EQ(fs_.mkdirs("/a/file/x"), Errc::NotADirectory);
}

TEST_F(FileSystemTest, CreateWithPoolHint) {
  auto fid = fs_.create("/small", "slow");
  ASSERT_TRUE(fid.ok());
  EXPECT_EQ(fs_.stat("/small").value().pool, "slow");
  EXPECT_EQ(fs_.create("/bad", "nope").error(), Errc::InvalidArgument);
}

TEST_F(FileSystemTest, WriteChargesPoolAndSetsTag) {
  ASSERT_TRUE(fs_.create("/f").ok());
  EXPECT_EQ(fs_.write_all("/f", 10 * kMB, 0xABCD), Errc::Ok);
  EXPECT_EQ(fs_.stat("/f").value().size, 10 * kMB);
  EXPECT_EQ(fs_.pool("fast").value().used_bytes, 10 * kMB);
  EXPECT_EQ(fs_.read_tag("/f").value(), 0xABCDu);

  // Overwrite re-charges, not accumulates.
  EXPECT_EQ(fs_.write_all("/f", 4 * kMB, 0x1111), Errc::Ok);
  EXPECT_EQ(fs_.pool("fast").value().used_bytes, 4 * kMB);
}

TEST_F(FileSystemTest, WriteBeyondPoolCapacityFails) {
  ASSERT_TRUE(fs_.create("/big").ok());
  EXPECT_EQ(fs_.write_all("/big", 200 * kMB, 1), Errc::NoSpace);
  EXPECT_EQ(fs_.stat("/big").value().size, 0u);
  EXPECT_EQ(fs_.pool("fast").value().used_bytes, 0u);
}

TEST_F(FileSystemTest, UnlinkFreesSpace) {
  ASSERT_TRUE(fs_.create("/f").ok());
  ASSERT_EQ(fs_.write_all("/f", 10 * kMB, 1), Errc::Ok);
  EXPECT_EQ(fs_.unlink("/f"), Errc::Ok);
  EXPECT_FALSE(fs_.exists("/f"));
  EXPECT_EQ(fs_.pool("fast").value().used_bytes, 0u);
  EXPECT_EQ(fs_.unlink("/f"), Errc::NotFound);
}

TEST_F(FileSystemTest, RmdirOnlyWhenEmpty) {
  ASSERT_TRUE(fs_.mkdir("/d").ok());
  ASSERT_TRUE(fs_.create("/d/f").ok());
  EXPECT_EQ(fs_.rmdir("/d"), Errc::NotEmpty);
  EXPECT_EQ(fs_.unlink("/d"), Errc::IsADirectory);
  ASSERT_EQ(fs_.unlink("/d/f"), Errc::Ok);
  EXPECT_EQ(fs_.rmdir("/d"), Errc::Ok);
  EXPECT_EQ(fs_.rmdir("/"), Errc::InvalidArgument);
}

TEST_F(FileSystemTest, ReaddirListsSortedEntries) {
  ASSERT_TRUE(fs_.mkdir("/d").ok());
  ASSERT_TRUE(fs_.create("/d/zz").ok());
  ASSERT_TRUE(fs_.create("/d/aa").ok());
  ASSERT_TRUE(fs_.mkdir("/d/mm").ok());
  auto entries = fs_.readdir("/d");
  ASSERT_TRUE(entries.ok());
  ASSERT_EQ(entries.value().size(), 3u);
  EXPECT_EQ(entries.value()[0].name, "aa");
  EXPECT_EQ(entries.value()[1].name, "mm");
  EXPECT_EQ(entries.value()[1].kind, FileKind::Directory);
  EXPECT_EQ(entries.value()[2].name, "zz");
  EXPECT_EQ(fs_.readdir("/d/aa").error(), Errc::NotADirectory);
}

TEST_F(FileSystemTest, RenameMovesSubtree) {
  ASSERT_EQ(fs_.mkdirs("/a/b"), Errc::Ok);
  ASSERT_TRUE(fs_.create("/a/b/f").ok());
  ASSERT_TRUE(fs_.mkdir("/dst").ok());
  EXPECT_EQ(fs_.rename("/a/b", "/dst/b2"), Errc::Ok);
  EXPECT_TRUE(fs_.exists("/dst/b2/f"));
  EXPECT_FALSE(fs_.exists("/a/b"));
  // Destination exists.
  ASSERT_TRUE(fs_.create("/x").ok());
  EXPECT_EQ(fs_.rename("/x", "/dst/b2"), Errc::Exists);
  // Cannot move a directory into itself.
  EXPECT_EQ(fs_.rename("/dst", "/dst/b2/evil"), Errc::InvalidArgument);
}

TEST_F(FileSystemTest, FileIdStableAcrossRenameAndReverseLookup) {
  auto fid = fs_.create("/orig");
  ASSERT_TRUE(fid.ok());
  ASSERT_TRUE(fs_.mkdir("/sub").ok());
  ASSERT_EQ(fs_.rename("/orig", "/sub/moved"), Errc::Ok);
  EXPECT_EQ(fs_.stat("/sub/moved").value().fid, fid.value());
  EXPECT_EQ(fs_.path_of(fid.value()).value(), "/sub/moved");
}

TEST_F(FileSystemTest, FileIdGenerationDetectsReuse) {
  auto fid1 = fs_.create("/f");
  ASSERT_TRUE(fid1.ok());
  ASSERT_EQ(fs_.unlink("/f"), Errc::Ok);
  auto fid2 = fs_.create("/f2");
  ASSERT_TRUE(fid2.ok());
  EXPECT_NE(fid1.value().packed(), fid2.value().packed());
  EXPECT_EQ(fs_.path_of(fid1.value()).error(), Errc::NotFound);
}

TEST_F(FileSystemTest, DmapiLifecycle) {
  ASSERT_TRUE(fs_.create("/f").ok());
  ASSERT_EQ(fs_.write_all("/f", 10 * kMB, 7), Errc::Ok);

  // resident -> premigrated: disk still charged.
  EXPECT_EQ(fs_.premigrate("/f"), Errc::Ok);
  EXPECT_EQ(fs_.stat("/f").value().dmapi, DmapiState::Premigrated);
  EXPECT_EQ(fs_.pool("fast").value().used_bytes, 10 * kMB);
  EXPECT_EQ(fs_.read_tag("/f").value(), 7u);  // still readable

  // premigrated -> migrated: disk released, stub remains, reads go offline.
  EXPECT_EQ(fs_.punch("/f"), Errc::Ok);
  EXPECT_EQ(fs_.stat("/f").value().dmapi, DmapiState::Migrated);
  EXPECT_EQ(fs_.stat("/f").value().size, 10 * kMB);  // logical size kept
  EXPECT_EQ(fs_.pool("fast").value().used_bytes, 0u);
  EXPECT_EQ(fs_.read_tag("/f").error(), Errc::Offline);

  // migrated -> premigrated (recall): disk charged again.
  EXPECT_EQ(fs_.mark_recalled("/f"), Errc::Ok);
  EXPECT_EQ(fs_.pool("fast").value().used_bytes, 10 * kMB);
  EXPECT_EQ(fs_.read_tag("/f").value(), 7u);

  EXPECT_EQ(fs_.make_resident("/f"), Errc::Ok);
  EXPECT_EQ(fs_.stat("/f").value().dmapi, DmapiState::Resident);
}

TEST_F(FileSystemTest, DmapiInvalidTransitions) {
  ASSERT_TRUE(fs_.create("/f").ok());
  EXPECT_EQ(fs_.punch("/f"), Errc::InvalidArgument);         // not premigrated
  EXPECT_EQ(fs_.mark_recalled("/f"), Errc::InvalidArgument); // not migrated
  EXPECT_EQ(fs_.make_resident("/f"), Errc::InvalidArgument); // not premigrated
  ASSERT_EQ(fs_.premigrate("/f"), Errc::Ok);
  EXPECT_EQ(fs_.premigrate("/f"), Errc::InvalidArgument);    // already
}

struct RecordingListener : DmapiListener {
  std::vector<std::string> offline_reads;
  std::vector<std::string> destroyed;
  void on_read_offline(const std::string& path, FileId) override {
    offline_reads.push_back(path);
  }
  void on_managed_data_destroyed(const std::string& path, FileId) override {
    destroyed.push_back(path);
  }
};

TEST_F(FileSystemTest, ListenerFiresOnOfflineRead) {
  RecordingListener listener;
  fs_.set_dmapi_listener(&listener);
  ASSERT_TRUE(fs_.create("/f").ok());
  ASSERT_EQ(fs_.write_all("/f", kMB, 1), Errc::Ok);
  ASSERT_EQ(fs_.premigrate("/f"), Errc::Ok);
  ASSERT_EQ(fs_.punch("/f"), Errc::Ok);
  EXPECT_EQ(fs_.read_tag("/f").error(), Errc::Offline);
  ASSERT_EQ(listener.offline_reads.size(), 1u);
  EXPECT_EQ(listener.offline_reads[0], "/f");
}

TEST_F(FileSystemTest, ListenerFiresWhenManagedDataDestroyed) {
  RecordingListener listener;
  fs_.set_dmapi_listener(&listener);
  // Unlink of a migrated file orphans the tape copy.
  ASSERT_TRUE(fs_.create("/m").ok());
  ASSERT_EQ(fs_.write_all("/m", kMB, 1), Errc::Ok);
  ASSERT_EQ(fs_.premigrate("/m"), Errc::Ok);
  ASSERT_EQ(fs_.punch("/m"), Errc::Ok);
  ASSERT_EQ(fs_.unlink("/m"), Errc::Ok);
  // Overwrite of a premigrated file also destroys the tape copy's validity.
  ASSERT_TRUE(fs_.create("/o").ok());
  ASSERT_EQ(fs_.write_all("/o", kMB, 1), Errc::Ok);
  ASSERT_EQ(fs_.premigrate("/o"), Errc::Ok);
  ASSERT_EQ(fs_.write_all("/o", kMB, 2), Errc::Ok);
  // Unlink of a plain resident file does NOT fire.
  ASSERT_TRUE(fs_.create("/r").ok());
  ASSERT_EQ(fs_.write_all("/r", kMB, 1), Errc::Ok);
  ASSERT_EQ(fs_.unlink("/r"), Errc::Ok);

  ASSERT_EQ(listener.destroyed.size(), 2u);
  EXPECT_EQ(listener.destroyed[0], "/m");
  EXPECT_EQ(listener.destroyed[1], "/o");
}

TEST_F(FileSystemTest, TruncateChangesTagAndAccounting) {
  ASSERT_TRUE(fs_.create("/f").ok());
  ASSERT_EQ(fs_.write_all("/f", 10 * kMB, 42), Errc::Ok);
  ASSERT_EQ(fs_.truncate("/f", 2 * kMB), Errc::Ok);
  EXPECT_EQ(fs_.stat("/f").value().size, 2 * kMB);
  EXPECT_EQ(fs_.pool("fast").value().used_bytes, 2 * kMB);
  EXPECT_NE(fs_.read_tag("/f").value(), 42u);
  ASSERT_EQ(fs_.truncate("/f", 0), Errc::Ok);
  EXPECT_EQ(fs_.read_tag("/f").value(), 0u);
}

TEST_F(FileSystemTest, MoveToPoolTransfersCharge) {
  ASSERT_TRUE(fs_.create("/f").ok());
  ASSERT_EQ(fs_.write_all("/f", 10 * kMB, 1), Errc::Ok);
  EXPECT_EQ(fs_.move_to_pool("/f", "slow"), Errc::Ok);
  EXPECT_EQ(fs_.pool("fast").value().used_bytes, 0u);
  EXPECT_EQ(fs_.pool("slow").value().used_bytes, 10 * kMB);
  EXPECT_EQ(fs_.stat("/f").value().pool, "slow");
  EXPECT_EQ(fs_.move_to_pool("/f", "absent"), Errc::InvalidArgument);
}

TEST_F(FileSystemTest, MoveToPoolOfMigratedStubMovesNoBytes) {
  ASSERT_TRUE(fs_.create("/f").ok());
  ASSERT_EQ(fs_.write_all("/f", 10 * kMB, 1), Errc::Ok);
  ASSERT_EQ(fs_.premigrate("/f"), Errc::Ok);
  ASSERT_EQ(fs_.punch("/f"), Errc::Ok);
  // A stub holds no disk blocks; retargeting its pool charges nothing.
  EXPECT_EQ(fs_.move_to_pool("/f", "slow"), Errc::Ok);
  EXPECT_EQ(fs_.pool("fast").value().used_bytes, 0u);
  EXPECT_EQ(fs_.pool("slow").value().used_bytes, 0u);
  EXPECT_EQ(fs_.stat("/f").value().pool, "slow");
  // The recall then charges the new pool.
  EXPECT_EQ(fs_.mark_recalled("/f"), Errc::Ok);
  EXPECT_EQ(fs_.pool("slow").value().used_bytes, 10 * kMB);
}

TEST_F(FileSystemTest, MoveToPoolRespectsDestinationCapacity) {
  ASSERT_TRUE(fs_.create("/f").ok());
  ASSERT_EQ(fs_.write_all("/f", 80 * kMB, 1), Errc::Ok);
  EXPECT_EQ(fs_.move_to_pool("/f", "slow"), Errc::NoSpace);  // slow = 50 MB
  EXPECT_EQ(fs_.stat("/f").value().pool, "fast");
}

TEST_F(FileSystemTest, StripingCoversPoolNsds) {
  ASSERT_TRUE(fs_.create("/f").ok());
  ASSERT_EQ(fs_.write_all("/f", 20 * kMB, 1), Errc::Ok);
  // 20 blocks over 4 NSDs -> all 4 servers, global ids 0..3 (fast pool).
  auto nsds = fs_.stripe_nsds("/f", 0, 20 * kMB);
  EXPECT_EQ(nsds.size(), 4u);
  for (const unsigned s : nsds) EXPECT_LT(s, 4u);
  // A sub-block range touches exactly one server.
  auto one = fs_.stripe_nsds("/f", 0, 1000);
  EXPECT_EQ(one.size(), 1u);
  // Slow pool files map to the slow pool's NSD range (global ids 4..5).
  ASSERT_TRUE(fs_.create("/s", "slow").ok());
  ASSERT_EQ(fs_.write_all("/s", 10 * kMB, 1), Errc::Ok);
  for (const unsigned s : fs_.stripe_nsds("/s", 0, 10 * kMB)) {
    EXPECT_GE(s, 4u);
    EXPECT_LT(s, 6u);
  }
  EXPECT_EQ(fs_.pool_nsd_base("slow"), 4u);
  EXPECT_EQ(fs_.total_nsds(), 7u);
}

TEST_F(FileSystemTest, ForEachInodeVisitsEverythingWithPaths) {
  ASSERT_EQ(fs_.mkdirs("/a/b"), Errc::Ok);
  ASSERT_TRUE(fs_.create("/a/b/f").ok());
  std::vector<std::string> paths;
  fs_.for_each_inode([&](const std::string& p, const InodeAttrs&) {
    paths.push_back(p);
  });
  ASSERT_EQ(paths.size(), 4u);  // root, /a, /a/b, /a/b/f
  EXPECT_EQ(paths[0], "/");
  EXPECT_EQ(paths[3], "/a/b/f");
}

TEST_F(FileSystemTest, ScanDurationMatchesPaperCalibration) {
  // 1M inodes at the paper's rate = 10 minutes on one stream.
  EXPECT_EQ(fs_.scan_duration(1'000'000, 1), sim::minutes(10));
  // Parallel streams divide the time.
  EXPECT_EQ(fs_.scan_duration(1'000'000, 10), sim::minutes(1));
  EXPECT_EQ(fs_.scan_duration(0, 4), 0u);
}

TEST_F(FileSystemTest, TimesComeFromVirtualClock) {
  sim_.run_until(sim::secs(100));
  ASSERT_TRUE(fs_.create("/f").ok());
  EXPECT_EQ(fs_.stat("/f").value().ctime, sim::secs(100));
  sim_.run_until(sim::secs(200));
  ASSERT_EQ(fs_.write_all("/f", kMB, 1), Errc::Ok);
  EXPECT_EQ(fs_.stat("/f").value().mtime, sim::secs(200));
  EXPECT_EQ(fs_.stat("/f").value().ctime, sim::secs(100));
}

}  // namespace
}  // namespace cpa::pfs
