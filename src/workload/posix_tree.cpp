#include "workload/posix_tree.hpp"

#include <cstdio>
#include <filesystem>
#include <cstring>
#include <fstream>

#include "simcore/rng.hpp"

namespace cpa::workload {
namespace fs = std::filesystem;
namespace {

/// Deterministic per-file byte stream: a dedicated RNG seeded from
/// (tree seed, file index).
void fill_file(std::ostream& out, std::uint64_t seed, std::uint64_t index,
               std::uint64_t size) {
  sim::Rng rng(seed ^ (index * 0x9E3779B97F4A7C15ULL + 0xD1B54A32D192ED03ULL));
  std::uint64_t written = 0;
  char buf[4096];
  while (written < size) {
    const std::size_t chunk =
        static_cast<std::size_t>(std::min<std::uint64_t>(sizeof(buf), size - written));
    for (std::size_t i = 0; i < chunk; i += 8) {
      const std::uint64_t v = rng.next_u64();
      for (std::size_t b = 0; b < 8 && i + b < chunk; ++b) {
        buf[i + b] = static_cast<char>((v >> (8 * b)) & 0xFF);
      }
    }
    out.write(buf, static_cast<std::streamsize>(chunk));
    written += chunk;
  }
}

bool check_file(std::istream& in, std::uint64_t seed, std::uint64_t index,
                std::uint64_t size) {
  sim::Rng rng(seed ^ (index * 0x9E3779B97F4A7C15ULL + 0xD1B54A32D192ED03ULL));
  std::uint64_t read = 0;
  char want[4096], have[4096];
  while (read < size) {
    const std::size_t chunk =
        static_cast<std::size_t>(std::min<std::uint64_t>(sizeof(want), size - read));
    for (std::size_t i = 0; i < chunk; i += 8) {
      const std::uint64_t v = rng.next_u64();
      for (std::size_t b = 0; b < 8 && i + b < chunk; ++b) {
        want[i + b] = static_cast<char>((v >> (8 * b)) & 0xFF);
      }
    }
    in.read(have, static_cast<std::streamsize>(chunk));
    if (static_cast<std::size_t>(in.gcount()) != chunk) return false;
    if (std::memcmp(want, have, chunk) != 0) return false;
    read += chunk;
  }
  // File must not be longer than expected.
  return in.peek() == std::char_traits<char>::eof();
}

}  // namespace

std::string posix_tree_file_path(const PosixTreeSpec& spec,
                                 std::uint64_t index) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "d%04llu/f%06llu",
                static_cast<unsigned long long>(index / spec.files_per_dir),
                static_cast<unsigned long long>(index));
  return (fs::path(spec.root) / buf).string();
}

PosixTreeReport build_posix_tree(const PosixTreeSpec& spec) {
  PosixTreeReport report;
  fs::create_directories(spec.root);
  std::uint64_t current_dir = static_cast<std::uint64_t>(-1);
  for (std::uint64_t i = 0; i < spec.file_sizes.size(); ++i) {
    const std::uint64_t dir = i / spec.files_per_dir;
    if (dir != current_dir) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "d%04llu",
                    static_cast<unsigned long long>(dir));
      fs::create_directories(fs::path(spec.root) / buf);
      current_dir = dir;
      ++report.dirs;
    }
    std::ofstream out(posix_tree_file_path(spec, i),
                      std::ios::binary | std::ios::trunc);
    if (!out) continue;
    fill_file(out, spec.seed, i, spec.file_sizes[i]);
    if (!out) continue;
    ++report.files;
    report.bytes += spec.file_sizes[i];
  }
  return report;
}

std::uint64_t verify_posix_tree(const PosixTreeSpec& spec,
                                const std::string& root) {
  PosixTreeSpec probe = spec;
  if (!root.empty()) probe.root = root;
  std::uint64_t bad = 0;
  for (std::uint64_t i = 0; i < spec.file_sizes.size(); ++i) {
    std::ifstream in(posix_tree_file_path(probe, i), std::ios::binary);
    if (!in || !check_file(in, spec.seed, i, spec.file_sizes[i])) ++bad;
  }
  return bad;
}

}  // namespace cpa::workload
