// Synthetic POSIX directory trees for the thread-based (real) PFTool
// engine: deterministic content from a seed, so copies can be verified
// byte-for-byte and benchmarks of the real tool are reproducible.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace cpa::workload {

struct PosixTreeSpec {
  std::string root;                       // directory to create
  std::vector<std::uint64_t> file_sizes;  // one file per entry
  unsigned files_per_dir = 256;
  std::uint64_t seed = 1;                 // drives every file's bytes
};

struct PosixTreeReport {
  std::uint64_t files = 0;
  std::uint64_t dirs = 0;
  std::uint64_t bytes = 0;
};

/// Materializes the tree on the local file system (root/d0000/f000000...).
/// Existing contents of `root` are left in place; files are overwritten.
PosixTreeReport build_posix_tree(const PosixTreeSpec& spec);

/// Path of file `index` within the layout build_posix_tree uses.
[[nodiscard]] std::string posix_tree_file_path(const PosixTreeSpec& spec,
                                               std::uint64_t index);

/// Verifies that every file of the tree exists under `root` (defaulting
/// to spec.root) with exactly the bytes the seed dictates.  Returns the
/// number of mismatching or missing files.
std::uint64_t verify_posix_tree(const PosixTreeSpec& spec,
                                const std::string& root = "");

}  // namespace cpa::workload
