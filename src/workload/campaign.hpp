// The Open Science archive workload (Sec 5.2).
//
// The paper reports 62 parallel archive jobs over 18 operation days with
// these marginals (Figs 8-11):
//   files/job:        1 .. 2,920,088   (mean 167,491)
//   data/job:         4 GB .. 32,593 GB (mean 2,442 GB)
//   avg file size/job: 4 KB .. 4,220 MB (mean 596 MB)
//   data rate/job:    73 .. 1,868 MB/s (mean ~575 MB/s)  <- an OUTPUT
//
// The raw trace is not published, so the generator draws per-job
// (total bytes, average file size) from clamped log-normal distributions
// calibrated to those ranges/means and derives the file count; the rate
// column is produced by pushing the jobs through the simulated plant.
//
// The `file_count_scale` knob shrinks per-job *file counts* (not bytes)
// so host-side simulation cost stays sane; per-job rates are unaffected
// to first order because per-file costs are small against transfer time
// at the scaled counts used (documented in bench headers).
#pragma once

#include <cstdint>
#include <vector>

#include "simcore/rng.hpp"
#include "simcore/time.hpp"
#include "simcore/units.hpp"

namespace cpa::workload {

struct JobSpec {
  unsigned job_id = 0;
  sim::Tick submit_time = 0;
  std::uint64_t total_bytes = 0;
  std::uint64_t file_count = 0;       // unscaled (what Fig 8 reports)
  std::uint64_t avg_file_size = 0;    // total_bytes / file_count
  /// Materialized per-file sizes at the configured scale; sums to
  /// ~total_bytes * file_count_scale.
  std::vector<std::uint64_t> file_sizes;
};

struct CampaignConfig {
  unsigned jobs = 62;
  double operation_days = 18.0;

  std::uint64_t min_bytes = 4 * kGB;
  std::uint64_t max_bytes = 32'593 * kGB;
  double mean_bytes = 2'442.0 * static_cast<double>(kGB);
  double sigma_log_bytes = 1.45;

  std::uint64_t min_avg_file = 4 * kKB;
  std::uint64_t max_avg_file = 4'220 * kMB;
  /// Parameterizes the pre-clamp lognormal.  The clamp at 4,220 MB cuts
  /// the heavy upper tail, so the raw mean is set above the paper's
  /// 596 MB target; these values yield a post-clamp mean of ~596 MB and
  /// ~140k files/job (paper: 167k) over many seeds.
  double mean_avg_file = 1'500.0 * static_cast<double>(kMB);
  double sigma_log_avg_file = 2.3;

  std::uint64_t max_files = 2'920'088;

  /// Per-file size spread around the job's average.
  double sigma_log_file = 0.8;
  /// Fraction of the unscaled file count that is materialized.
  double file_count_scale = 1.0;
  /// Cap on materialized files per job (simulation cost backstop).
  std::uint64_t max_materialized_files = 200'000;
  /// When true, the materialized files carry the job's FULL byte volume
  /// (sizes inflate as counts shrink), so job durations — and therefore
  /// job overlap — stay realistic under file-count scaling.
  bool preserve_total_bytes = false;

  std::uint64_t seed = 2009;
};

struct CampaignSummary {
  double mean_files = 0, min_files = 0, max_files = 0;
  double mean_bytes = 0, min_bytes = 0, max_bytes = 0;
  double mean_avg_file = 0, min_avg_file = 0, max_avg_file = 0;
};

class CampaignGenerator {
 public:
  explicit CampaignGenerator(CampaignConfig cfg) : cfg_(cfg) {}

  /// Generates the campaign: job specs sorted by submit time, each with
  /// materialized (scaled) file sizes.
  [[nodiscard]] std::vector<JobSpec> generate() const;

  /// Marginal statistics of the *unscaled* job specs, for comparison with
  /// the paper's figures.
  static CampaignSummary summarize(const std::vector<JobSpec>& jobs);

 private:
  CampaignConfig cfg_;
};

}  // namespace cpa::workload
