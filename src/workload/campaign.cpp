#include "workload/campaign.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace cpa::workload {
namespace {

std::uint64_t clamp_u64(double x, std::uint64_t lo, std::uint64_t hi) {
  if (x < static_cast<double>(lo)) return lo;
  if (x > static_cast<double>(hi)) return hi;
  return static_cast<std::uint64_t>(x);
}

}  // namespace

std::vector<JobSpec> CampaignGenerator::generate() const {
  sim::Rng rng(cfg_.seed);
  sim::Rng size_rng = rng.split();
  sim::Rng time_rng = rng.split();
  sim::Rng file_rng = rng.split();

  std::vector<sim::Tick> submit_times;
  submit_times.reserve(cfg_.jobs);
  for (unsigned j = 0; j < cfg_.jobs; ++j) {
    submit_times.push_back(
        sim::days(time_rng.uniform(0.0, cfg_.operation_days)));
  }
  std::sort(submit_times.begin(), submit_times.end());

  std::vector<JobSpec> jobs;
  jobs.reserve(cfg_.jobs);
  for (unsigned j = 0; j < cfg_.jobs; ++j) {
    JobSpec spec;
    spec.job_id = j;
    spec.submit_time = submit_times[j];
    spec.total_bytes = clamp_u64(
        size_rng.lognormal_mean(cfg_.mean_bytes, cfg_.sigma_log_bytes),
        cfg_.min_bytes, cfg_.max_bytes);
    spec.avg_file_size = clamp_u64(
        size_rng.lognormal_mean(cfg_.mean_avg_file, cfg_.sigma_log_avg_file),
        cfg_.min_avg_file, cfg_.max_avg_file);
    spec.file_count = std::max<std::uint64_t>(
        1, std::min(cfg_.max_files, spec.total_bytes / spec.avg_file_size));
    // Integer division can push the recomputed average past the cap; add
    // files until it fits again.
    const std::uint64_t min_count =
        (spec.total_bytes + cfg_.max_avg_file - 1) / cfg_.max_avg_file;
    spec.file_count = std::max(spec.file_count, std::max<std::uint64_t>(1, min_count));
    spec.avg_file_size = spec.total_bytes / spec.file_count;

    // Materialize per-file sizes at the configured scale.
    const std::uint64_t n = std::max<std::uint64_t>(
        1, std::min(cfg_.max_materialized_files,
                    static_cast<std::uint64_t>(
                        static_cast<double>(spec.file_count) *
                        cfg_.file_count_scale)));
    const double scaled_bytes =
        cfg_.preserve_total_bytes
            ? static_cast<double>(spec.total_bytes)
            : static_cast<double>(spec.total_bytes) *
                  (static_cast<double>(n) / static_cast<double>(spec.file_count));
    spec.file_sizes.reserve(n);
    double sum = 0.0;
    for (std::uint64_t i = 0; i < n; ++i) {
      const double s = file_rng.lognormal_mean(
          static_cast<double>(spec.avg_file_size), cfg_.sigma_log_file);
      spec.file_sizes.push_back(std::max<std::uint64_t>(
          1024, static_cast<std::uint64_t>(s)));
      sum += static_cast<double>(spec.file_sizes.back());
    }
    // Rescale so the job carries the intended (scaled) byte volume.
    const double factor = sum > 0 ? scaled_bytes / sum : 1.0;
    for (auto& s : spec.file_sizes) {
      s = std::max<std::uint64_t>(
          1024, static_cast<std::uint64_t>(static_cast<double>(s) * factor));
    }
    jobs.push_back(std::move(spec));
  }
  return jobs;
}

CampaignSummary CampaignGenerator::summarize(const std::vector<JobSpec>& jobs) {
  CampaignSummary s;
  if (jobs.empty()) return s;
  s.min_files = s.min_bytes = s.min_avg_file = 1e300;
  for (const JobSpec& j : jobs) {
    const auto files = static_cast<double>(j.file_count);
    const auto bytes = static_cast<double>(j.total_bytes);
    const auto avg = static_cast<double>(j.avg_file_size);
    s.mean_files += files;
    s.mean_bytes += bytes;
    s.mean_avg_file += avg;
    s.min_files = std::min(s.min_files, files);
    s.max_files = std::max(s.max_files, files);
    s.min_bytes = std::min(s.min_bytes, bytes);
    s.max_bytes = std::max(s.max_bytes, bytes);
    s.min_avg_file = std::min(s.min_avg_file, avg);
    s.max_avg_file = std::max(s.max_avg_file, avg);
  }
  const auto n = static_cast<double>(jobs.size());
  s.mean_files /= n;
  s.mean_bytes /= n;
  s.mean_avg_file /= n;
  return s;
}

}  // namespace cpa::workload
