#include "workload/tree.hpp"

#include <cstdio>

namespace cpa::workload {

std::uint64_t tree_file_tag(std::uint64_t tag_seed, std::uint64_t index) {
  std::uint64_t x = tag_seed ^ (index * 0x9E3779B97F4A7C15ULL + 1);
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

std::string tree_file_path(const TreeSpec& spec, std::uint64_t index) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "d%04llu/f%06llu",
                static_cast<unsigned long long>(index / spec.files_per_dir),
                static_cast<unsigned long long>(index));
  return pfs::join_path(spec.root, buf);
}

TreeReport build_tree(pfs::FileSystem& fs, const TreeSpec& spec) {
  TreeReport report;
  fs.mkdirs(spec.root);
  std::uint64_t current_dir = static_cast<std::uint64_t>(-1);
  for (std::uint64_t i = 0; i < spec.file_sizes.size(); ++i) {
    const std::uint64_t dir = i / spec.files_per_dir;
    if (dir != current_dir) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "d%04llu",
                    static_cast<unsigned long long>(dir));
      fs.mkdirs(pfs::join_path(spec.root, buf));
      current_dir = dir;
      ++report.dirs;
    }
    const std::string path = tree_file_path(spec, i);
    if (!fs.create(path).ok()) continue;
    if (fs.write_all(path, spec.file_sizes[i], tree_file_tag(spec.tag_seed, i)) !=
        pfs::Errc::Ok) {
      continue;
    }
    ++report.files;
    report.bytes += spec.file_sizes[i];
  }
  return report;
}

}  // namespace cpa::workload
