// Synthetic directory-tree builders for jobs and tests.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "pfs/filesystem.hpp"
#include "simcore/rng.hpp"

namespace cpa::workload {

struct TreeSpec {
  std::string root;                       // absolute path to create
  std::vector<std::uint64_t> file_sizes;  // one file per entry
  unsigned files_per_dir = 1000;          // fan-out control
  std::uint64_t tag_seed = 1;             // content tags derive from this
};

struct TreeReport {
  std::uint64_t files = 0;
  std::uint64_t dirs = 0;
  std::uint64_t bytes = 0;
};

/// Materializes the tree on a simulated file system: root/d0000/f000000...
/// Content tags are deterministic functions of (tag_seed, index) so copies
/// can be verified end to end.
TreeReport build_tree(pfs::FileSystem& fs, const TreeSpec& spec);

/// Content tag of file `index` in a tree with `tag_seed` (what build_tree
/// assigned; verification helpers recompute it).
[[nodiscard]] std::uint64_t tree_file_tag(std::uint64_t tag_seed,
                                          std::uint64_t index);

/// Path of file `index` within the tree layout build_tree uses.
[[nodiscard]] std::string tree_file_path(const TreeSpec& spec,
                                         std::uint64_t index);

}  // namespace cpa::workload
