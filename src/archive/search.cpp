#include "archive/search.hpp"

#include "pfs/glob.hpp"

namespace cpa::archive {

MetadataCatalog::MetadataCatalog()
    : table_([](const CatalogEntry& e) { return e.fid; }) {
  by_size_ = table_.add_index_u64([](const CatalogEntry& e) { return e.size; });
  by_mtime_ = table_.add_index_u64(
      [](const CatalogEntry& e) { return static_cast<std::uint64_t>(e.mtime); });
  by_pool_ = table_.add_index_str([](const CatalogEntry& e) { return e.pool; });
  by_state_ = table_.add_index_u64([](const CatalogEntry& e) {
    return static_cast<std::uint64_t>(e.dmapi);
  });
}

sim::Tick MetadataCatalog::rebuild(const pfs::FileSystem& fs, unsigned streams) {
  table_ = metadb::Table<CatalogEntry>(
      [](const CatalogEntry& e) { return e.fid; });
  by_size_ = table_.add_index_u64([](const CatalogEntry& e) { return e.size; });
  by_mtime_ = table_.add_index_u64(
      [](const CatalogEntry& e) { return static_cast<std::uint64_t>(e.mtime); });
  by_pool_ = table_.add_index_str([](const CatalogEntry& e) { return e.pool; });
  by_state_ = table_.add_index_u64([](const CatalogEntry& e) {
    return static_cast<std::uint64_t>(e.dmapi);
  });

  std::uint64_t inodes = 0;
  fs.for_each_inode([&](const std::string& path, const pfs::InodeAttrs& a) {
    ++inodes;
    if (a.kind != pfs::FileKind::Regular) return;
    CatalogEntry e;
    e.fid = a.fid.packed();
    e.path = path;
    e.size = a.size;
    e.mtime = a.mtime;
    e.pool = a.pool;
    e.dmapi = a.dmapi;
    table_.insert(std::move(e));
  });
  return fs.scan_duration(inodes, streams);
}

void MetadataCatalog::upsert(const CatalogEntry& entry) { table_.upsert(entry); }

bool MetadataCatalog::erase(std::uint64_t fid) { return table_.erase(fid); }

bool MetadataCatalog::matches(const CatalogEntry& e, const SearchQuery& q) {
  if (q.min_size && e.size < *q.min_size) return false;
  if (q.max_size && e.size > *q.max_size) return false;
  if (q.min_mtime && e.mtime < *q.min_mtime) return false;
  if (q.max_mtime && e.mtime > *q.max_mtime) return false;
  if (q.pool && e.pool != *q.pool) return false;
  if (q.dmapi && e.dmapi != *q.dmapi) return false;
  if (q.path_glob && !pfs::glob_match(*q.path_glob, e.path)) return false;
  return true;
}

std::vector<CatalogEntry> MetadataCatalog::search(const SearchQuery& q) const {
  // Probe the most selective indexable dimension, then post-filter.
  std::vector<const CatalogEntry*> candidates;
  bool used_index = false;

  if (q.min_size || q.max_size) {
    candidates = table_.range_u64(by_size_, q.min_size.value_or(0),
                                  q.max_size.value_or(~0ULL));
    used_index = true;
  } else if (q.min_mtime || q.max_mtime) {
    candidates = table_.range_u64(
        by_mtime_, static_cast<std::uint64_t>(q.min_mtime.value_or(0)),
        static_cast<std::uint64_t>(q.max_mtime.value_or(~0ULL)));
    used_index = true;
  } else if (q.pool) {
    candidates = table_.lookup_str(by_pool_, *q.pool);
    used_index = true;
  } else if (q.dmapi) {
    candidates = table_.lookup_u64(by_state_,
                                   static_cast<std::uint64_t>(*q.dmapi));
    used_index = true;
  }

  std::vector<CatalogEntry> out;
  if (used_index) {
    last_examined_ = candidates.size();
    for (const CatalogEntry* e : candidates) {
      if (matches(*e, q)) out.push_back(*e);
    }
    // range_u64 returns attribute order; normalize to primary-key order.
    std::sort(out.begin(), out.end(),
              [](const CatalogEntry& a, const CatalogEntry& b) {
                return a.fid < b.fid;
              });
  } else {
    last_examined_ = table_.size();
    table_.for_each([&](const CatalogEntry& e) {
      if (matches(e, q)) out.push_back(e);
    });
  }
  return out;
}

}  // namespace cpa::archive
