// CotsParallelArchive: the assembled system of Figure 2 / Figure 7.
//
// One object owns and wires every substrate:
//   scratch PFS (Panasas stand-in)  <- two 10GigE trunks ->  FTA cluster
//   -> archive GPFS (fast FC pool + slow pool, ILM policy engine)
//   -> HSM (TSM stand-in, LAN-free) -> tape library (24 x LTO-4)
// plus the user-space glue: PFTool (pfls/pfcp/pfcm), ArchiveFUSE, the
// restart journal, the trashcan, and the ILM policy engine driving the
// parallel data migrator.
//
// This is the public entry point a downstream user would program against;
// examples/ and bench/ are written exclusively in terms of it.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "archive/job.hpp"
#include "archive/trashcan.hpp"
#include "cluster/cluster.hpp"
#include "fault/injector.hpp"
#include "fault/plan.hpp"
#include "fusefs/archive_fuse.hpp"
#include "hsm/hsm.hpp"
#include "obs/observer.hpp"
#include "pfs/filesystem.hpp"
#include "pfs/policy.hpp"
#include "pftool/core/restart_journal.hpp"
#include "pftool/sim/job.hpp"
#include "sched/scheduler.hpp"
#include "simcore/flow_network.hpp"
#include "simcore/simulation.hpp"
#include "tape/library.hpp"
#include "wal/durable.hpp"

namespace cpa::archive {

struct SystemConfig {
  pfs::FsConfig scratch_fs;
  pfs::FsConfig archive_fs;
  cluster::ClusterConfig cluster;
  tape::LibraryConfig tape;
  hsm::HsmConfig hsm;
  fusefs::FuseConfig fuse;
  pftool::PftoolConfig pftool;
  obs::ObsConfig obs;
  /// Scripted faults armed against the system at construction; empty by
  /// default (no faults).
  fault::FaultPlan fault_plan;
  /// Multi-tenant fair-share admission control (off by default: submit()
  /// launches immediately, drive grants stay strict FIFO, and the golden
  /// baselines are bit-identical to the unscheduled system).
  sched::SchedConfig sched;
  /// Crash-consistent metadata (off by default: no WAL, no durability
  /// barriers, bit-identical timing).  Enabled, every catalog/fixity/
  /// journal mutation is redo-logged through a virtual-time WAL and the
  /// system survives power_fail() + recover().
  wal::WalConfig wal;

  /// The paper's plant (Sec 4.3.1 / Fig. 7): 10 mover nodes, 5 disk nodes
  /// with 100 TB fast FC4 disk + slow pool, 24 LTO-4 drives, one TSM
  /// server, two 10GigE trunks, LAN-free movement.
  static SystemConfig roadrunner();
  /// A scaled-down plant for fast unit tests: 4 nodes, 4 drives.
  static SystemConfig small();

  // --- fluent refinement, e.g. SystemConfig::small().with_drives(8) -------
  SystemConfig& with_drives(unsigned n) {
    tape.drive_count = n;
    return *this;
  }
  SystemConfig& with_fta_nodes(unsigned n) {
    cluster.fta_nodes = n;
    return *this;
  }
  SystemConfig& with_trunks(unsigned n) {
    cluster.trunk_count = n;
    return *this;
  }
  SystemConfig& with_workers(unsigned n) {
    pftool.num_workers = n;
    return *this;
  }
  SystemConfig& with_tapeprocs(unsigned n) {
    pftool.num_tapeprocs = n;
    return *this;
  }
  SystemConfig& with_servers(unsigned n) {
    hsm.server_count = n;
    return *this;
  }
  SystemConfig& with_tracing(bool on = true) {
    obs.tracing = on;
    return *this;
  }
  SystemConfig& with_restartable(bool on = true) {
    pftool.restartable = on;
    return *this;
  }
  /// Chunk-level (PFTool) and unit-level (HSM) retry policy in one stroke.
  SystemConfig& with_retry(fault::RetryPolicy policy) {
    pftool.retry = policy;
    hsm.retry = policy;
    return *this;
  }
  SystemConfig& with_fault_plan(fault::FaultPlan plan) {
    fault_plan = std::move(plan);
    return *this;
  }
  /// Enables write-ahead logging of all archive metadata (and with it
  /// power_fail()/recover() support).
  SystemConfig& with_wal(wal::WalConfig w = {}) {
    wal = w;
    wal.enabled = true;
    return *this;
  }
  /// Enables (and configures) the fair-share admission scheduler.
  SystemConfig& with_sched(sched::SchedConfig cfg) {
    sched = std::move(cfg);
    sched.enabled = true;
    return *this;
  }
  /// Shorthand: enable the scheduler and set one tenant's quota.
  SystemConfig& with_tenant_quota(const std::string& tenant,
                                  sched::TenantQuota quota) {
    sched.enabled = true;
    sched.tenants[tenant] = quota;
    return *this;
  }
  /// Parses the fault-spec grammar (see fault/plan.hpp); invalid specs
  /// leave the plan empty.
  SystemConfig& with_fault_plan(const std::string& spec) {
    if (auto plan = fault::FaultPlan::parse(spec)) fault_plan = std::move(*plan);
    return *this;
  }
};

class CotsParallelArchive {
 public:
  explicit CotsParallelArchive(SystemConfig cfg = SystemConfig::roadrunner());
  CotsParallelArchive(const CotsParallelArchive&) = delete;
  CotsParallelArchive& operator=(const CotsParallelArchive&) = delete;

  // --- components ------------------------------------------------------------
  [[nodiscard]] sim::Simulation& sim() { return sim_; }
  [[nodiscard]] sim::FlowNetwork& net() { return net_; }
  [[nodiscard]] pfs::FileSystem& scratch() { return *scratch_; }
  [[nodiscard]] pfs::FileSystem& archive_fs() { return *archive_; }
  [[nodiscard]] cluster::Cluster& fta() { return *cluster_; }
  [[nodiscard]] tape::TapeLibrary& library() { return *library_; }
  [[nodiscard]] hsm::HsmSystem& hsm() { return *hsm_; }
  [[nodiscard]] fusefs::ArchiveFuse& fuse() { return *fuse_; }
  [[nodiscard]] Trashcan& trashcan() { return *trashcan_; }
  [[nodiscard]] pftool::RestartJournal& journal() { return journal_; }
  [[nodiscard]] pfs::PolicyEngine& policy() { return policy_; }
  [[nodiscard]] const SystemConfig& config() const { return cfg_; }
  /// The system-wide observability sink: every substrate's metrics land in
  /// observer().metrics(); spans record when cfg.obs.tracing is set.
  [[nodiscard]] obs::Observer& observer() { return *obs_; }
  /// The admission scheduler, or nullptr when SystemConfig::sched is
  /// disabled.
  [[nodiscard]] sched::AdmissionScheduler* scheduler() { return sched_.get(); }
  /// The WAL durability layer, or nullptr when SystemConfig::wal is
  /// disabled.
  [[nodiscard]] wal::Durable* durable() { return durable_.get(); }

  // --- power failure & recovery --------------------------------------------
  /// Whole-archive power loss at the current instant: every running
  /// pftool attempt and HSM operation aborts where it stands, drives drop
  /// their transfers, volatile metadata (catalogs, fixity, restart
  /// journal) vanishes, and the un-fsynced WAL tail is torn at a
  /// seed-derived byte offset.  Data already on tape or disk survives —
  /// it is physical.  Also reachable as a scripted fault:
  /// `server.power:fail@t=...,seed=N,repair=D`.
  void power_fail(std::uint64_t seed = 0);

  struct RecoveryReport {
    wal::Durable::RecoveryStats wal;
    hsm::HsmSystem::CrashReconcileReport reconcile;
    std::uint64_t jobs_relaunched = 0;
  };

  /// Restart after power_fail(): replays checkpoint + surviving WAL into
  /// the wiped stores, reconciles the catalog against tape/disk reality,
  /// restores power to the drives, and — after the recovery scan's
  /// virtual time has elapsed — relaunches every crash-parked job from
  /// its restart journal.  `done` (optional) fires once jobs relaunch.
  void recover(std::function<void(const RecoveryReport&)> done = nullptr);

  /// Copies the flow network's per-pool busy-seconds into net.* gauges
  /// (including the headline net.trunk_busy_seconds).  Call before dumping
  /// a metrics summary — busy time accrues inside the kernel, not the
  /// registry.
  void snapshot_net_metrics();

  /// JobEnv wired to this system, for hand-constructed PftoolJob runs.
  [[nodiscard]] pftool::sim::JobEnv job_env(bool restore_direction = false);

  // --- job submission ------------------------------------------------------
  /// Submits a PFTool job without running the simulation.  With the
  /// admission scheduler disabled the first attempt launches immediately;
  /// with it enabled the job may sit Queued behind fair-share admission
  /// (or come back Rejected when the bounded queue is full — that is the
  /// backpressure signal).  The returned handle tracks the job across
  /// queueing and retry attempts; finished jobs are reaped on the next
  /// submit() (or explicitly via reap_finished()).
  JobHandle submit(JobSpec spec);
  /// Drops bookkeeping for jobs that have reached a terminal state.
  /// Returns how many were reaped.  Outstanding JobHandles stay valid.
  std::size_t reap_finished();
  /// Job records currently owned by the system (running + not yet reaped).
  [[nodiscard]] std::size_t jobs_live() const { return jobs_.size(); }

  // --- PFTool commands (synchronous: run the simulation to completion) -----
  // Thin wrappers over submit(): submit, run, return the final report.
  pftool::JobReport pfls(const std::string& root);
  /// scratch -> archive
  pftool::JobReport pfcp_archive(const std::string& src, const std::string& dst);
  /// archive -> scratch (engages TapeProcs for migrated files)
  pftool::JobReport pfcp_restore(const std::string& src, const std::string& dst);
  /// compare scratch tree against archive tree
  pftool::JobReport pfcm(const std::string& src, const std::string& dst);

  // --- backend driving ---------------------------------------------------------
  /// One ILM cycle (Sec 4.2.4): run the policy engine's list rules, then
  /// hand each named list to the parallel data migrator, size-balanced
  /// across all FTA nodes.  `done` gets the combined migration report.
  void run_migration_cycle(const std::string& list_rule_name,
                           const std::string& colocation_group,
                           std::function<void(const hsm::MigrateReport&)> done);

  // --- helpers ------------------------------------------------------------------
  /// Creates a file with parents and synthetic content on a file system.
  pfs::Errc make_file(pfs::FileSystem& fs, const std::string& path,
                      std::uint64_t size, std::uint64_t tag);

 private:
  void launch_attempt(const std::shared_ptr<detail::JobRecord>& rec);
  /// Scheduler launch hook: fires when a Queued job wins admission.
  void launch_admitted(std::uint64_t job_id);
  void on_attempt_done(const std::shared_ptr<detail::JobRecord>& rec,
                       const pftool::JobReport& report);
  void wire_fault_targets();

  SystemConfig cfg_;
  // Declared before the kernel objects that hold probe pointers into it,
  // so it outlives them during destruction.
  std::unique_ptr<obs::Observer> obs_;
  sim::Simulation sim_;
  sim::FlowNetwork net_{sim_};
  std::unique_ptr<pfs::FileSystem> scratch_;
  std::unique_ptr<pfs::FileSystem> archive_;
  std::unique_ptr<cluster::Cluster> cluster_;
  std::unique_ptr<tape::TapeLibrary> library_;
  std::unique_ptr<hsm::HsmSystem> hsm_;
  /// Constructed only when cfg_.sched.enabled; declared after the library
  /// and HSM it arbitrates so it is torn down first.
  std::unique_ptr<sched::AdmissionScheduler> sched_;
  std::unique_ptr<fusefs::ArchiveFuse> fuse_;
  std::unique_ptr<Trashcan> trashcan_;
  pftool::RestartJournal journal_;
  /// Constructed only when cfg_.wal.enabled; hooks into the HSM servers,
  /// the fixity table, and the restart journal above.
  std::unique_ptr<wal::Durable> durable_;
  pfs::PolicyEngine policy_;
  fault::FaultInjector injector_{sim_, *obs_};
  /// Saved capacities of pools currently degraded by a fault window.
  std::map<std::string, double> saved_pool_caps_;
  std::vector<std::shared_ptr<detail::JobRecord>> jobs_;
  /// Watchdog-aborted jobs parked here until teardown: they finish with
  /// events still in flight that reference them (all no-op once finished).
  std::vector<std::unique_ptr<pftool::sim::PftoolJob>> graveyard_;
  std::uint64_t next_job_id_ = 1;
};

}  // namespace cpa::archive
