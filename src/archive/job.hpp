// The submission API: JobSpec in, JobHandle out.
//
// Historically the archive exposed `start_pfcp(src, dst, done, cfg)` and
// returned a raw PftoolJob& whose lifetime the caller had to reason about.
// The redesigned surface separates *what to run* (JobSpec: command, paths,
// config override, retry policy) from *how to watch it* (JobHandle: a
// cheap value type with state/report/attempts/await and completion hooks).
// Job-level recovery lives here too: a failed or watchdog-aborted attempt
// is relaunched under the spec's RetryPolicy, with the restart journal
// resuming already-copied chunks.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "fault/plan.hpp"
#include "pftool/core/options.hpp"
#include "pftool/core/report.hpp"
#include "pftool/sim/job.hpp"
#include "sched/qos.hpp"

namespace cpa::archive {

class CotsParallelArchive;

enum class JobState : std::uint8_t {
  Pending,    // submitted, first attempt not yet launched
  Queued,     // waiting in the admission scheduler's queue
  Running,    // an attempt is executing
  Retrying,   // an attempt failed; the next one is waiting out its backoff
  Succeeded,  // final attempt finished with no failed files
  Failed,     // attempts exhausted (or policy allowed none)
  Cancelled,  // cancelled while still Queued (never launched)
  Rejected,   // admission queue full at submit (never launched)
};

[[nodiscard]] const char* to_string(JobState s);

/// What to run, and for whom.  Build with the static constructors, refine
/// with the fluent `with_*` methods, hand to CotsParallelArchive::submit().
struct JobSpec {
  pftool::sim::Command command = pftool::sim::Command::Pfcp;
  std::string src;
  std::string dst;
  /// archive -> scratch (engages TapeProcs for migrated files).
  bool restore_direction = false;
  /// Tenant and QoS class the admission scheduler charges this job to
  /// (ignored when SystemConfig::sched is disabled).
  std::string tenant = "default";
  sched::QosClass qos = sched::QosClass::Interactive;
  /// Overrides the system-wide PftoolConfig when set.
  std::optional<pftool::PftoolConfig> config;
  /// Overrides the resolved config's `restartable` flag when set (keeps
  /// the system-default config otherwise intact).
  std::optional<bool> restart_override;
  /// Overrides the resolved config's `verify_fixity` flag when set.
  std::optional<bool> verify_override;
  /// Job-level relaunch budget: a failed/aborted attempt is retried after
  /// backoff, resuming from the restart journal.  Default: no relaunch.
  fault::RetryPolicy retry = fault::RetryPolicy::none();

  static JobSpec pfls(std::string root);
  static JobSpec pfcp(std::string src, std::string dst);
  static JobSpec pfcp_restore(std::string src, std::string dst);
  static JobSpec pfcm(std::string src, std::string dst);

  JobSpec& with_config(pftool::PftoolConfig cfg) {
    config = std::move(cfg);
    return *this;
  }
  JobSpec& with_retry(fault::RetryPolicy policy) {
    retry = policy;
    return *this;
  }
  JobSpec& with_tenant(std::string name) {
    tenant = std::move(name);
    return *this;
  }
  JobSpec& with_qos(sched::QosClass q) {
    qos = q;
    return *this;
  }
  /// Journal the transfer so interrupted attempts (and relaunches) skip
  /// chunks already copied.
  JobSpec& with_restartable(bool on = true);
  /// End-to-end fixity verification: recompute-and-compare after every
  /// copy; restores carry the archive's recall fixity verdict.
  JobSpec& with_verified(bool on = true);
};

namespace detail {

/// Shared bookkeeping for one submitted job; owned jointly by the system
/// (until reaped) and any JobHandle copies.
struct JobRecord {
  std::uint64_t id = 0;
  JobSpec spec;
  pftool::PftoolConfig cfg;  // resolved: spec.config or system default
  JobState state = JobState::Pending;
  unsigned attempts = 0;
  pftool::JobReport last_report;
  std::vector<std::function<void(const pftool::JobReport&)>> callbacks;
  std::unique_ptr<pftool::sim::PftoolJob> active;
  sim::Simulation* sim = nullptr;
  /// When the job was submitted; a queued launch opens the root span here
  /// so the admission wait shows up in the profile.
  sim::Tick submitted_at = 0;
  /// Went through the admission queue (first attempt records the
  /// admission_wait span).
  bool was_queued = false;
  /// Installed by the system while the job is Queued; cancels it at the
  /// scheduler and flips the state to Cancelled.  Cleared at launch.
  std::function<void()> cancel_hook;
  /// The running attempt died in a power failure; recover() relaunches it
  /// (without charging the spec's retry budget — a crash restart is the
  /// plant's fault, not the job's).
  bool crash_parked = false;

  [[nodiscard]] bool done() const {
    return state == JobState::Succeeded || state == JobState::Failed ||
           state == JobState::Cancelled || state == JobState::Rejected;
  }
};

}  // namespace detail

/// Cheap, copyable view of a submitted job.  All methods are safe on a
/// default-constructed (invalid) handle.
class JobHandle {
 public:
  JobHandle() = default;

  [[nodiscard]] bool valid() const { return rec_ != nullptr; }
  [[nodiscard]] std::uint64_t id() const { return rec_ ? rec_->id : 0; }
  [[nodiscard]] JobState state() const {
    return rec_ ? rec_->state : JobState::Failed;
  }
  [[nodiscard]] bool done() const { return rec_ == nullptr || rec_->done(); }
  /// Attempts launched so far (1 on a fault-free run).
  [[nodiscard]] unsigned attempts() const { return rec_ ? rec_->attempts : 0; }
  /// The latest attempt's report (final report once done()).
  [[nodiscard]] const pftool::JobReport& report() const;
  /// Per-job fixity verdict: true when no tape read failed fixity and no
  /// file was declared unrepairable.  Trivially true before completion.
  [[nodiscard]] bool fixity_clean() const {
    return rec_ == nullptr || (rec_->last_report.fixity_mismatches == 0 &&
                               rec_->last_report.files_unrepairable == 0);
  }

  /// Steps the simulation until this job is done; other submitted jobs
  /// progress alongside.  Returns the final report.
  const pftool::JobReport& await();

  /// Cancels the job if it is still waiting in the admission queue; a job
  /// that already launched keeps running (no mid-flight abort).  Returns
  /// true when the job ends up Cancelled.
  bool cancel();

  /// Registers a completion hook; fires once, with the final report, when
  /// the job reaches Succeeded/Failed.  Registering on an already-done
  /// job fires immediately.  Returns *this for chaining.
  JobHandle& on_done(std::function<void(const pftool::JobReport&)> fn);

 private:
  friend class CotsParallelArchive;
  explicit JobHandle(std::shared_ptr<detail::JobRecord> rec)
      : rec_(std::move(rec)) {}

  std::shared_ptr<detail::JobRecord> rec_;
};

}  // namespace cpa::archive
