// The chroot-jail command policy (Sec 4.2.3, "Controlling User Commands").
//
// "If the archive is left as a standard UNIX environment, user can make
//  use of any tool available ... This becomes a dangerous problem when
//  some files may be on tape.  A simple example of this would be 'grep'
//  ... One solution to this problem is to restrict the commands available
//  to users by creating a unique environment using the UNIX 'chroot'
//  utility ... While avoiding dangerous uses of commands like 'grep', we
//  encourage the use of PFTool, which executes in parallel and is tape
//  aware."
//
// This models the jail's policy decision: which command names users may
// run against the archive mount, with tape-dangerous defaults denied and
// the PFTool commands plus ordinary namespace tools allowed.
#pragma once

#include <set>
#include <string>
#include <vector>

namespace cpa::archive {

class CommandJail {
 public:
  /// The production policy: PFTool + metadata-only tools allowed;
  /// data-scanning tools (grep & friends) and raw deletes denied.
  static CommandJail lanl_default();

  void allow(const std::string& command) { allowed_.insert(command); }
  void deny(const std::string& command) { allowed_.erase(command); }

  [[nodiscard]] bool is_allowed(const std::string& command) const {
    return allowed_.count(command) != 0;
  }
  [[nodiscard]] std::vector<std::string> allowed_commands() const {
    return {allowed_.begin(), allowed_.end()};
  }

 private:
  std::set<std::string> allowed_;
};

inline CommandJail CommandJail::lanl_default() {
  CommandJail jail;
  // PFTool: parallel and tape aware.
  for (const char* c : {"pfls", "pfcp", "pfcm"}) jail.allow(c);
  // Metadata-only tools are harmless to tape.
  for (const char* c : {"ls", "cd", "pwd", "mkdir", "mv", "stat", "du", "find"}) {
    jail.allow(c);
  }
  // "rm" is allowed but the jail wires it to the trashcan, not unlink.
  jail.allow("rm");
  // Data-scanning tools would recall files from tape in arbitrary order:
  // grep, cat, tar, cp and friends stay outside the jail.
  return jail;
}

}  // namespace cpa::archive
