// Multi-dimensional metadata search over the archive namespace.
//
// The paper's future work (Sec 7): "We plan to enhance the proposed COTS
// Parallel Archive System with the multi-dimensional metadata searching
// capabilities."  This catalog indexes every regular file's metadata
// (size, mtime, pool, residency, name) in the embedded table store so
// queries hit B-tree indexes instead of tree-walking the namespace — the
// same move that made tape-ordered recall possible (Sec 4.2.5).
//
// The catalog is rebuilt from a policy-engine-style scan (charged at the
// GPFS inode-scan rate) and can be refreshed incrementally.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "metadb/table.hpp"
#include "pfs/filesystem.hpp"

namespace cpa::archive {

struct CatalogEntry {
  std::uint64_t fid = 0;  // packed GPFS file id (primary key)
  std::string path;
  std::uint64_t size = 0;
  sim::Tick mtime = 0;
  std::string pool;
  pfs::DmapiState dmapi = pfs::DmapiState::Resident;
};

/// A conjunctive multi-dimensional query.  Unset fields match everything.
struct SearchQuery {
  std::optional<std::uint64_t> min_size;
  std::optional<std::uint64_t> max_size;
  std::optional<sim::Tick> min_mtime;
  std::optional<sim::Tick> max_mtime;
  std::optional<std::string> pool;
  std::optional<pfs::DmapiState> dmapi;
  std::optional<std::string> path_glob;
};

class MetadataCatalog {
 public:
  MetadataCatalog();

  /// Rebuilds the catalog from a full scan of `fs`.  Returns the virtual
  /// time the scan costs (`streams` parallel scan processes); the caller
  /// decides whether to charge it to the simulation.
  sim::Tick rebuild(const pfs::FileSystem& fs, unsigned streams = 1);

  /// Incremental maintenance hooks (call on create/change/delete).
  void upsert(const CatalogEntry& entry);
  bool erase(std::uint64_t fid);

  /// Runs a multi-dimensional query.  The narrowest indexed dimension
  /// (size range, mtime range, pool, or residency) drives the index probe
  /// and the remaining predicates filter; a query with no indexable
  /// dimension falls back to a full scan.  Results are in primary-key
  /// order.
  [[nodiscard]] std::vector<CatalogEntry> search(const SearchQuery& q) const;

  /// Rows the last search touched (index probe + filter), for the
  /// indexed-vs-scan comparison benches.
  [[nodiscard]] std::uint64_t last_rows_examined() const { return last_examined_; }

  [[nodiscard]] std::size_t size() const { return table_.size(); }

 private:
  [[nodiscard]] static bool matches(const CatalogEntry& e, const SearchQuery& q);

  metadb::Table<CatalogEntry> table_;
  metadb::Table<CatalogEntry>::IndexId by_size_{};
  metadb::Table<CatalogEntry>::IndexId by_mtime_{};
  metadb::Table<CatalogEntry>::IndexId by_pool_{};
  metadb::Table<CatalogEntry>::IndexId by_state_{};
  mutable std::uint64_t last_examined_ = 0;
};

}  // namespace cpa::archive
