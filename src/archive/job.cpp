#include "archive/job.hpp"

namespace cpa::archive {

const char* to_string(JobState s) {
  switch (s) {
    case JobState::Pending:
      return "pending";
    case JobState::Queued:
      return "queued";
    case JobState::Running:
      return "running";
    case JobState::Retrying:
      return "retrying";
    case JobState::Succeeded:
      return "succeeded";
    case JobState::Failed:
      return "failed";
    case JobState::Cancelled:
      return "cancelled";
    case JobState::Rejected:
      return "rejected";
  }
  return "?";
}

JobSpec JobSpec::pfls(std::string root) {
  JobSpec s;
  s.command = pftool::sim::Command::Pfls;
  s.src = std::move(root);
  return s;
}

JobSpec JobSpec::pfcp(std::string src, std::string dst) {
  JobSpec s;
  s.command = pftool::sim::Command::Pfcp;
  s.src = std::move(src);
  s.dst = std::move(dst);
  return s;
}

JobSpec JobSpec::pfcp_restore(std::string src, std::string dst) {
  JobSpec s = pfcp(std::move(src), std::move(dst));
  s.restore_direction = true;
  return s;
}

JobSpec JobSpec::pfcm(std::string src, std::string dst) {
  JobSpec s;
  s.command = pftool::sim::Command::Pfcm;
  s.src = std::move(src);
  s.dst = std::move(dst);
  return s;
}

JobSpec& JobSpec::with_restartable(bool on) {
  restart_override = on;
  return *this;
}

JobSpec& JobSpec::with_verified(bool on) {
  verify_override = on;
  return *this;
}

const pftool::JobReport& JobHandle::report() const {
  static const pftool::JobReport kEmpty;
  return rec_ ? rec_->last_report : kEmpty;
}

const pftool::JobReport& JobHandle::await() {
  if (rec_ != nullptr) {
    while (!rec_->done() && rec_->sim->step()) {
    }
  }
  return report();
}

bool JobHandle::cancel() {
  if (rec_ == nullptr || rec_->state != JobState::Queued || !rec_->cancel_hook) {
    return false;
  }
  rec_->cancel_hook();
  return rec_->state == JobState::Cancelled;
}

JobHandle& JobHandle::on_done(std::function<void(const pftool::JobReport&)> fn) {
  if (rec_ == nullptr || !fn) return *this;
  if (rec_->done()) {
    fn(rec_->last_report);
  } else {
    rec_->callbacks.push_back(std::move(fn));
  }
  return *this;
}

}  // namespace cpa::archive
