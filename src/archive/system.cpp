#include "archive/system.hpp"

namespace cpa::archive {

SystemConfig SystemConfig::roadrunner() {
  SystemConfig cfg;

  cfg.scratch_fs.name = "panfs";
  cfg.scratch_fs.pools = {pfs::PoolConfig{"scratch", 0, 16, false}};

  cfg.archive_fs.name = "gpfs";
  cfg.archive_fs.pools = {
      // "100 TB of fast FC4 disk" where all files land first.
      pfs::PoolConfig{"fast", 100ULL * kTB, 10, false},
      // "a 'slow' disk pool used to store small files".
      pfs::PoolConfig{"slow", 100ULL * kTB, 4, false},
      // GPFS 3.2 external pool: the tape side.
      pfs::PoolConfig{"tape-external", 0, 1, true},
  };

  cfg.cluster.fta_nodes = 10;
  cfg.cluster.trunk_count = 2;

  cfg.tape.drive_count = 24;

  cfg.hsm.lan_free = true;
  cfg.hsm.server_count = 1;

  return cfg;
}

SystemConfig SystemConfig::small() {
  SystemConfig cfg = roadrunner();
  cfg.scratch_fs.pools = {pfs::PoolConfig{"scratch", 0, 4, false}};
  cfg.archive_fs.pools = {
      pfs::PoolConfig{"fast", 10ULL * kTB, 4, false},
      pfs::PoolConfig{"slow", 10ULL * kTB, 2, false},
      pfs::PoolConfig{"tape-external", 0, 1, true},
  };
  cfg.cluster.fta_nodes = 4;
  cfg.tape.drive_count = 4;
  cfg.pftool.num_workers = 4;
  cfg.pftool.num_readdir = 1;
  cfg.pftool.num_tapeprocs = 2;
  return cfg;
}

CotsParallelArchive::CotsParallelArchive(SystemConfig cfg)
    : cfg_(std::move(cfg)), obs_(std::make_unique<obs::Observer>(cfg_.obs)) {
  sim_.set_probe(obs_.get());
  net_.set_probe(obs_.get());
  scratch_ = std::make_unique<pfs::FileSystem>(sim_, cfg_.scratch_fs);
  archive_ = std::make_unique<pfs::FileSystem>(sim_, cfg_.archive_fs);
  cluster_ = std::make_unique<cluster::Cluster>(net_, cfg_.cluster, *archive_,
                                                *scratch_);
  library_ = std::make_unique<tape::TapeLibrary>(sim_, net_, cfg_.tape);
  hsm_ = std::make_unique<hsm::HsmSystem>(sim_, net_, *archive_, *library_,
                                          cluster_->fabric(), cfg_.hsm);
  fuse_ = std::make_unique<fusefs::ArchiveFuse>(*archive_, cfg_.fuse);
  trashcan_ = std::make_unique<Trashcan>(*archive_, *hsm_);
  library_->set_observer(*obs_);
  hsm_->set_observer(*obs_);
  fuse_->set_observer(*obs_);
  policy_.set_observer(*obs_);
}

void CotsParallelArchive::snapshot_net_metrics() {
  obs::MetricsRegistry& m = obs_->metrics();
  double trunk_busy = 0.0;
  for (std::size_t i = 0; i < net_.pool_count(); ++i) {
    const sim::PoolId id{static_cast<std::uint32_t>(i)};
    const std::string& name = net_.pool_name(id);
    const double busy = net_.pool_busy_seconds(id);
    m.gauge("net.pool_busy_seconds." + name).set(busy);
    if (name.rfind("trunk", 0) == 0) trunk_busy += busy;
  }
  m.gauge("net.trunk_busy_seconds").set(trunk_busy);
}

pftool::sim::JobEnv CotsParallelArchive::job_env(bool restore_direction) {
  pftool::sim::JobEnv env;
  env.sim = &sim_;
  env.net = &net_;
  env.cluster = cluster_.get();
  if (restore_direction) {
    env.src_fs = archive_.get();
    env.dst_fs = scratch_.get();
  } else {
    env.src_fs = scratch_.get();
    env.dst_fs = archive_.get();
  }
  env.fuse = restore_direction ? nullptr : fuse_.get();
  env.hsm = hsm_.get();
  env.journal = &journal_;
  env.obs = obs_.get();
  if (!restore_direction) {
    env.placement = [this](const std::string& dst_path) {
      return policy_.placement_pool(dst_path, sim_.now());
    };
  }
  return env;
}

pftool::JobReport CotsParallelArchive::pfls(const std::string& root) {
  pftool::sim::JobEnv env = job_env(false);
  env.src_fs = scratch_->exists(root) ? scratch_.get() : archive_.get();
  env.dst_fs = env.src_fs;
  return pftool::sim::run_pfls(env, cfg_.pftool, root);
}

pftool::JobReport CotsParallelArchive::pfcp_archive(const std::string& src,
                                                    const std::string& dst) {
  return pftool::sim::run_pfcp(job_env(false), cfg_.pftool, src, dst);
}

pftool::JobReport CotsParallelArchive::pfcp_restore(const std::string& src,
                                                    const std::string& dst) {
  return pftool::sim::run_pfcp(job_env(true), cfg_.pftool, src, dst);
}

pftool::JobReport CotsParallelArchive::pfcm(const std::string& src,
                                            const std::string& dst) {
  return pftool::sim::run_pfcm(job_env(false), cfg_.pftool, src, dst);
}

pftool::sim::PftoolJob& CotsParallelArchive::start_pfcp(
    const std::string& src, const std::string& dst,
    std::function<void(const pftool::JobReport&)> done,
    pftool::PftoolConfig cfg_override) {
  jobs_.push_back(std::make_unique<pftool::sim::PftoolJob>(
      job_env(false), cfg_override, pftool::sim::Command::Pfcp, src, dst,
      std::move(done)));
  jobs_.back()->start();
  return *jobs_.back();
}

pftool::sim::PftoolJob& CotsParallelArchive::start_pfcp(
    const std::string& src, const std::string& dst,
    std::function<void(const pftool::JobReport&)> done) {
  return start_pfcp(src, dst, std::move(done), cfg_.pftool);
}

void CotsParallelArchive::run_migration_cycle(
    const std::string& list_rule_name, const std::string& colocation_group,
    std::function<void(const hsm::MigrateReport&)> done) {
  // "Rather than use a GPFS migration policy, we use a list policy to
  // generate lists of candidate files to migrate to tape" (Sec 4.2.4).
  const pfs::ScanReport scan =
      policy_.run_scan(*archive_, cfg_.cluster.fta_nodes);
  auto it = scan.matches.find(list_rule_name);
  std::vector<std::string> paths;
  if (it != scan.matches.end()) {
    paths.reserve(it->second.size());
    for (const pfs::PolicyMatch& m : it->second) paths.push_back(m.path);
  }
  std::vector<tape::NodeId> nodes;
  for (unsigned n = 0; n < cfg_.cluster.fta_nodes; ++n) nodes.push_back(n);
  // The scan itself takes virtual time before migration starts.
  sim_.after(scan.scan_duration, [this, paths = std::move(paths),
                                  nodes = std::move(nodes), colocation_group,
                                  done = std::move(done)]() mutable {
    hsm_->parallel_migrate(std::move(paths), std::move(nodes),
                           hsm::DistributionStrategy::SizeBalanced,
                           colocation_group, std::move(done));
  });
}

pfs::Errc CotsParallelArchive::make_file(pfs::FileSystem& fs,
                                         const std::string& path,
                                         std::uint64_t size,
                                         std::uint64_t tag) {
  if (const pfs::Errc e = fs.mkdirs(pfs::parent_path(path)); e != pfs::Errc::Ok) {
    return e;
  }
  const auto created = fs.create(path);
  if (!created.ok()) return created.error();
  return fs.write_all(path, size, tag);
}

}  // namespace cpa::archive
