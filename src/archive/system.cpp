#include "archive/system.hpp"

#include <algorithm>

namespace cpa::archive {

SystemConfig SystemConfig::roadrunner() {
  SystemConfig cfg;

  cfg.scratch_fs.name = "panfs";
  cfg.scratch_fs.pools = {pfs::PoolConfig{"scratch", 0, 16, false}};

  cfg.archive_fs.name = "gpfs";
  cfg.archive_fs.pools = {
      // "100 TB of fast FC4 disk" where all files land first.
      pfs::PoolConfig{"fast", 100ULL * kTB, 10, false},
      // "a 'slow' disk pool used to store small files".
      pfs::PoolConfig{"slow", 100ULL * kTB, 4, false},
      // GPFS 3.2 external pool: the tape side.
      pfs::PoolConfig{"tape-external", 0, 1, true},
  };

  cfg.cluster.fta_nodes = 10;
  cfg.cluster.trunk_count = 2;

  cfg.tape.drive_count = 24;

  cfg.hsm.lan_free = true;
  cfg.hsm.server_count = 1;

  return cfg;
}

SystemConfig SystemConfig::small() {
  SystemConfig cfg = roadrunner();
  cfg.scratch_fs.pools = {pfs::PoolConfig{"scratch", 0, 4, false}};
  cfg.archive_fs.pools = {
      pfs::PoolConfig{"fast", 10ULL * kTB, 4, false},
      pfs::PoolConfig{"slow", 10ULL * kTB, 2, false},
      pfs::PoolConfig{"tape-external", 0, 1, true},
  };
  cfg.cluster.fta_nodes = 4;
  cfg.tape.drive_count = 4;
  cfg.pftool.num_workers = 4;
  cfg.pftool.num_readdir = 1;
  cfg.pftool.num_tapeprocs = 2;
  return cfg;
}

CotsParallelArchive::CotsParallelArchive(SystemConfig cfg)
    : cfg_(std::move(cfg)), obs_(std::make_unique<obs::Observer>(cfg_.obs)) {
  sim_.set_probe(obs_.get());
  net_.set_probe(obs_.get());
  scratch_ = std::make_unique<pfs::FileSystem>(sim_, cfg_.scratch_fs);
  archive_ = std::make_unique<pfs::FileSystem>(sim_, cfg_.archive_fs);
  cluster_ = std::make_unique<cluster::Cluster>(net_, cfg_.cluster, *archive_,
                                                *scratch_);
  library_ = std::make_unique<tape::TapeLibrary>(sim_, net_, cfg_.tape);
  hsm_ = std::make_unique<hsm::HsmSystem>(sim_, net_, *archive_, *library_,
                                          cluster_->fabric(), cfg_.hsm);
  fuse_ = std::make_unique<fusefs::ArchiveFuse>(*archive_, cfg_.fuse);
  trashcan_ = std::make_unique<Trashcan>(*archive_, *hsm_);
  library_->set_observer(*obs_);
  hsm_->set_observer(*obs_);
  fuse_->set_observer(*obs_);
  policy_.set_observer(*obs_);
  if (cfg_.sched.enabled) {
    // Per-tenant PFS bandwidth fractions are carved out of the trunk
    // aggregate: the scheduler adds one shaper pool per capped tenant.
    const double total_pfs_bps = static_cast<double>(cfg_.cluster.trunk_count) *
                                 cfg_.cluster.trunk_bps;
    sched_ = std::make_unique<sched::AdmissionScheduler>(
        sim_, net_, *obs_, cfg_.sched, total_pfs_bps);
    sched_->set_launcher([this](std::uint64_t id) { launch_admitted(id); });
    library_->set_arbiter(sched_.get());
    hsm_->set_scheduler(sched_.get());
  }
  if (cfg_.wal.enabled) {
    durable_ = std::make_unique<wal::Durable>(sim_, cfg_.wal, *obs_);
    for (unsigned i = 0; i < hsm_->server_count(); ++i) {
      durable_->attach_server(i, hsm_->server(i));
    }
    durable_->attach_fixity(hsm_->fixity_db());
    durable_->attach_journal(journal_);
    hsm_->set_durability_barrier(
        [this](std::function<void()> k) { durable_->sync(std::move(k)); });
  }
  wire_fault_targets();
  injector_.arm(cfg_.fault_plan);
}

void CotsParallelArchive::power_fail(std::uint64_t seed) {
  obs_->metrics().counter("archive.power_fails").inc();
  obs_->trace().instant(obs::Component::Fault, "power", "power_fail",
                        sim_.now());
  // Frontend first: a finished pftool job no-ops on every entry point, so
  // the HSM abort closures firing next (which can call back into tape
  // procs) land harmlessly.  Jobs whose attempt already finished but
  // whose durability ack was still in flight are parked too — the sync
  // waiter died with the WAL.
  for (const std::shared_ptr<detail::JobRecord>& rec : jobs_) {
    if (rec->state != JobState::Running) continue;
    rec->crash_parked = true;
    if (rec->active != nullptr) rec->active->abort_crashed();
  }
  // Backend: abort in-flight HSM operations, then wipe volatile metadata.
  hsm_->power_fail();
  // Tape plant: drives drop transfers; waiters/claims/checkouts die with
  // their owners.
  library_->power_fail();
  // Tear the un-fsynced log tail at a seed-derived offset.
  if (durable_ != nullptr) durable_->crash(seed);
  // The in-memory restart journal dies with the host; recovery replays it
  // from the WAL.
  journal_.clear();
}

void CotsParallelArchive::recover(
    std::function<void(const RecoveryReport&)> done) {
  RecoveryReport rep;
  if (durable_ != nullptr) rep.wal = durable_->recover();
  rep.reconcile = hsm_->reconcile_crash();
  library_->power_restore();
  obs_->metrics().counter("archive.recoveries").inc();
  const obs::SpanId span = obs_->trace().complete(
      obs::Component::Fault, "power", "recover", sim_.now(),
      sim_.now() + rep.wal.duration);
  obs_->trace().arg_num(span, "replayed", rep.wal.replayed_records);
  for (const std::shared_ptr<detail::JobRecord>& rec : jobs_) {
    if (rec->crash_parked) ++rep.jobs_relaunched;
  }
  // Service resumes only after the recovery scan's virtual time.
  sim_.after(rep.wal.duration, [this, rep, done = std::move(done)] {
    for (const std::shared_ptr<detail::JobRecord>& rec : jobs_) {
      if (!rec->crash_parked) continue;
      rec->crash_parked = false;
      // A crash relaunch is the plant's fault: give the attempt back so
      // the spec's retry budget is not charged.
      --rec->attempts;
      launch_attempt(rec);
    }
    if (done) done(rep);
  });
}

void CotsParallelArchive::wire_fault_targets() {
  fault::FaultTargets t;
  t.tape_drive = [this](std::uint64_t idx, bool down) {
    if (idx >= library_->drive_count()) return;
    const auto i = static_cast<unsigned>(idx);
    if (down) {
      library_->fail_drive(i);
    } else {
      library_->repair_drive(i);
    }
  };
  t.tape_media = [this](std::uint64_t cart, bool down) {
    // Cartridges appear as data lands on tape; a fault against one that
    // does not exist (yet) is a no-op.
    if (tape::Cartridge* c = library_->cartridge(cart)) c->set_damaged(down);
  };
  t.tape_corrupt = [this](std::uint64_t cart, std::uint64_t segments,
                          std::uint64_t seed) {
    // Silent bit-rot: flips fingerprints only, so reads keep succeeding
    // and the damage is visible to fixity verification alone.
    if (tape::Cartridge* c = library_->cartridge(cart)) {
      c->corrupt_random_segments(segments, seed);
    }
  };
  t.cluster_node = [this](std::uint64_t node, bool down) {
    if (node >= cfg_.cluster.fta_nodes) return;
    cluster_->set_node_down(static_cast<cluster::NodeId>(node), down);
  };
  t.hsm_server = [this](std::uint64_t server, sim::Tick outage) {
    if (server >= hsm_->server_count()) return;
    hsm_->server(static_cast<unsigned>(server)).restart(outage);
  };
  t.server_power = [this](std::uint64_t, std::uint64_t seed, bool down) {
    // Whole-plant power loss: the index is accepted for grammar symmetry
    // but there is one host.  repair= schedules recover().
    if (down) {
      power_fail(seed);
    } else {
      recover();
    }
  };
  t.net_pool = [this](const std::string& pool, double factor, bool down) {
    for (std::size_t i = 0; i < net_.pool_count(); ++i) {
      const sim::PoolId id{static_cast<std::uint32_t>(i)};
      if (net_.pool_name(id) != pool) continue;
      if (down) {
        // Remember the healthy capacity once; overlapping windows keep
        // the first-saved value so repair restores the true baseline.
        saved_pool_caps_.emplace(pool, net_.pool_capacity(id));
        net_.set_pool_capacity(id, saved_pool_caps_[pool] * factor);
      } else if (auto it = saved_pool_caps_.find(pool);
                 it != saved_pool_caps_.end()) {
        net_.set_pool_capacity(id, it->second);
        saved_pool_caps_.erase(it);
      }
      return;
    }
  };
  injector_.set_targets(std::move(t));
}

void CotsParallelArchive::snapshot_net_metrics() {
  obs::MetricsRegistry& m = obs_->metrics();
  double trunk_busy = 0.0;
  for (std::size_t i = 0; i < net_.pool_count(); ++i) {
    const sim::PoolId id{static_cast<std::uint32_t>(i)};
    const std::string& name = net_.pool_name(id);
    const double busy = net_.pool_busy_seconds(id);
    m.gauge("net.pool_busy_seconds." + name).set(busy);
    if (name.rfind("trunk", 0) == 0) trunk_busy += busy;
  }
  m.gauge("net.trunk_busy_seconds").set(trunk_busy);
}

pftool::sim::JobEnv CotsParallelArchive::job_env(bool restore_direction) {
  pftool::sim::JobEnv env;
  env.sim = &sim_;
  env.net = &net_;
  env.cluster = cluster_.get();
  if (restore_direction) {
    env.src_fs = archive_.get();
    env.dst_fs = scratch_.get();
  } else {
    env.src_fs = scratch_.get();
    env.dst_fs = archive_.get();
  }
  env.fuse = restore_direction ? nullptr : fuse_.get();
  env.hsm = hsm_.get();
  env.journal = &journal_;
  env.obs = obs_.get();
  if (!restore_direction) {
    env.placement = [this](const std::string& dst_path) {
      return policy_.placement_pool(dst_path, sim_.now());
    };
  }
  return env;
}

JobHandle CotsParallelArchive::submit(JobSpec spec) {
  reap_finished();
  auto rec = std::make_shared<detail::JobRecord>();
  rec->id = next_job_id_++;
  rec->sim = &sim_;
  rec->cfg = spec.config.has_value() ? *spec.config : cfg_.pftool;
  if (spec.restart_override.has_value()) {
    rec->cfg.restartable = *spec.restart_override;
  }
  if (spec.verify_override.has_value()) {
    rec->cfg.verify_fixity = *spec.verify_override;
  }
  rec->spec = std::move(spec);
  rec->submitted_at = sim_.now();
  jobs_.push_back(rec);
  if (sched_ == nullptr) {
    launch_attempt(rec);
    return JobHandle(rec);
  }
  const sched::AdmissionScheduler::Offer offer =
      sched_->offer(rec->id, rec->spec.tenant, rec->spec.qos);
  switch (offer) {
    case sched::AdmissionScheduler::Offer::Rejected:
      // Backpressure: the bounded queue is full.  Terminal immediately;
      // on_done hooks registered on the handle fire right away.
      rec->state = JobState::Rejected;
      break;
    case sched::AdmissionScheduler::Offer::Queued:
    case sched::AdmissionScheduler::Offer::Admitted: {
      // Even an immediately-admitted job goes through Queued: the launch
      // itself is deferred one event so admission never reenters submit().
      rec->state = JobState::Queued;
      std::weak_ptr<detail::JobRecord> weak = rec;
      rec->cancel_hook = [this, weak] {
        auto sp = weak.lock();
        if (!sp || sp->state != JobState::Queued) return;
        if (!sched_->cancel(sp->id)) return;  // already leaving the queue
        sp->state = JobState::Cancelled;
        sp->cancel_hook = nullptr;
        auto callbacks = std::move(sp->callbacks);
        sp->callbacks.clear();
        for (auto& cb : callbacks) cb(sp->last_report);
      };
      break;
    }
  }
  return JobHandle(rec);
}

void CotsParallelArchive::launch_admitted(std::uint64_t job_id) {
  for (const std::shared_ptr<detail::JobRecord>& rec : jobs_) {
    if (rec->id != job_id) continue;
    if (rec->state != JobState::Queued) return;  // cancelled in the meantime
    rec->was_queued = true;
    rec->cancel_hook = nullptr;
    launch_attempt(rec);
    return;
  }
}

std::size_t CotsParallelArchive::reap_finished() {
  const std::size_t before = jobs_.size();
  jobs_.erase(std::remove_if(jobs_.begin(), jobs_.end(),
                             [](const std::shared_ptr<detail::JobRecord>& r) {
                               return r->done();
                             }),
              jobs_.end());
  return before - jobs_.size();
}

void CotsParallelArchive::launch_attempt(
    const std::shared_ptr<detail::JobRecord>& rec) {
  ++rec->attempts;
  rec->state = JobState::Running;
  pftool::PftoolConfig cfg = rec->cfg;
  if (rec->attempts > 1 && rec->spec.command == pftool::sim::Command::Pfcp) {
    // Relaunches always journal so already-copied chunks are skipped.
    cfg.restartable = true;
  }
  pftool::sim::JobEnv env = job_env(rec->spec.restore_direction);
  if (rec->spec.command == pftool::sim::Command::Pfls) {
    env.src_fs = scratch_->exists(rec->spec.src) ? scratch_.get()
                                                 : archive_.get();
    env.dst_fs = env.src_fs;
  }
  env.tenant = rec->spec.tenant;
  env.qos = rec->spec.qos;
  if (sched_ != nullptr) {
    env.shaper_legs = sched_->shaper_legs(rec->spec.tenant);
  }
  if (rec->attempts == 1) {
    // Only the first attempt accounts the admission wait; relaunches open
    // their span at the relaunch instant as before.
    env.was_queued = rec->was_queued;
    env.queued_since = rec->submitted_at;
  }
  // The job's completion callback holds only a weak reference: the record
  // is kept alive by jobs_ (and any handles), never by its own job.
  std::weak_ptr<detail::JobRecord> weak = rec;
  rec->active = std::make_unique<pftool::sim::PftoolJob>(
      env, cfg, rec->spec.command, rec->spec.src, rec->spec.dst,
      [this, weak](const pftool::JobReport& r) {
        if (auto sp = weak.lock()) on_attempt_done(sp, r);
      });
  rec->active->start();
}

void CotsParallelArchive::on_attempt_done(
    const std::shared_ptr<detail::JobRecord>& rec,
    const pftool::JobReport& report) {
  rec->last_report = report;
  if (rec->crash_parked) {
    // The attempt died with the host.  Park the carcass (events still in
    // flight reference it; every entry point no-ops once finished) and
    // wait for recover() to relaunch from the restart journal.
    graveyard_.push_back(std::move(rec->active));
    rec->state = JobState::Retrying;
    return;
  }
  const bool failed = report.files_failed > 0 || report.aborted_by_watchdog;
  if (report.aborted_by_watchdog) {
    // A stall abort finishes the job with work still in flight; pending
    // events (flow completions, retry backoffs) reference the job's
    // procs and would dangle if it were freed now.  Every entry point
    // no-ops once finished, so park it until system teardown instead.
    graveyard_.push_back(std::move(rec->active));
  } else {
    // This callback runs from inside the PftoolJob; defer its
    // destruction until the current event unwinds.
    auto doomed = std::make_shared<std::unique_ptr<pftool::sim::PftoolJob>>(
        std::move(rec->active));
    sim_.after(0, [doomed] { doomed->reset(); });
  }
  if (failed && rec->spec.retry.allows(rec->attempts)) {
    rec->state = JobState::Retrying;
    obs_->metrics().counter("pftool.job_relaunches").inc();
    // A relaunch is a job-level retry; fold it into the same headline
    // counter as the chunk-level ones.
    obs_->metrics().counter("pftool.retries_total").inc();
    obs_->trace().instant(obs::Component::Pftool, "job", "relaunch",
                          sim_.now());
    std::weak_ptr<detail::JobRecord> weak = rec;
    sim_.after(rec->spec.retry.delay(rec->attempts), [this, weak] {
      if (auto sp = weak.lock()) launch_attempt(sp);
    });
    return;
  }
  const JobState final_state = failed ? JobState::Failed : JobState::Succeeded;
  auto settle = [this, rec, final_state] {
    rec->state = final_state;
    // Retries kept the admission slot; release it only at a terminal state.
    if (sched_ != nullptr) sched_->job_finished(rec->id);
    auto callbacks = std::move(rec->callbacks);
    rec->callbacks.clear();
    for (auto& cb : callbacks) cb(rec->last_report);
  };
  if (durable_ != nullptr) {
    // Acknowledgement barrier: the job turns terminal only once every
    // metadata record it produced is on the durable log.  A crash in
    // this window drops the sync waiter; the still-Running job is parked
    // and relaunched (the journal makes the rerun skip finished chunks).
    durable_->sync(std::move(settle));
  } else {
    settle();
  }
}

pftool::JobReport CotsParallelArchive::pfls(const std::string& root) {
  JobHandle h = submit(JobSpec::pfls(root));
  sim_.run();
  return h.report();
}

pftool::JobReport CotsParallelArchive::pfcp_archive(const std::string& src,
                                                    const std::string& dst) {
  JobHandle h = submit(JobSpec::pfcp(src, dst));
  sim_.run();
  return h.report();
}

pftool::JobReport CotsParallelArchive::pfcp_restore(const std::string& src,
                                                    const std::string& dst) {
  JobHandle h = submit(JobSpec::pfcp_restore(src, dst));
  sim_.run();
  return h.report();
}

pftool::JobReport CotsParallelArchive::pfcm(const std::string& src,
                                            const std::string& dst) {
  JobHandle h = submit(JobSpec::pfcm(src, dst));
  sim_.run();
  return h.report();
}

void CotsParallelArchive::run_migration_cycle(
    const std::string& list_rule_name, const std::string& colocation_group,
    std::function<void(const hsm::MigrateReport&)> done) {
  // "Rather than use a GPFS migration policy, we use a list policy to
  // generate lists of candidate files to migrate to tape" (Sec 4.2.4).
  const pfs::ScanReport scan =
      policy_.run_scan(*archive_, cfg_.cluster.fta_nodes);
  auto it = scan.matches.find(list_rule_name);
  std::vector<std::string> paths;
  if (it != scan.matches.end()) {
    paths.reserve(it->second.size());
    for (const pfs::PolicyMatch& m : it->second) paths.push_back(m.path);
  }
  std::vector<tape::NodeId> nodes;
  for (unsigned n = 0; n < cfg_.cluster.fta_nodes; ++n) nodes.push_back(n);
  // The scan itself takes virtual time before migration starts.
  sim_.after(scan.scan_duration, [this, paths = std::move(paths),
                                  nodes = std::move(nodes), colocation_group,
                                  done = std::move(done)]() mutable {
    hsm_->parallel_migrate(std::move(paths), std::move(nodes),
                           hsm::DistributionStrategy::SizeBalanced,
                           colocation_group, std::move(done));
  });
}

pfs::Errc CotsParallelArchive::make_file(pfs::FileSystem& fs,
                                         const std::string& path,
                                         std::uint64_t size,
                                         std::uint64_t tag) {
  if (const pfs::Errc e = fs.mkdirs(pfs::parent_path(path)); e != pfs::Errc::Ok) {
    return e;
  }
  const auto created = fs.create(path);
  if (!created.ok()) return created.error();
  return fs.write_all(path, size, tag);
}

}  // namespace cpa::archive
