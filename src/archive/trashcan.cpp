#include "archive/trashcan.hpp"

#include <cstdio>
#include <memory>

namespace cpa::archive {

Trashcan::Trashcan(pfs::FileSystem& fs, hsm::HsmSystem& hsm, std::string dir)
    : fs_(fs), hsm_(hsm), dir_(std::move(dir)) {
  fs_.mkdirs(dir_);
}

pfs::Errc Trashcan::trash(const std::string& path) {
  const auto st = fs_.stat(path);
  if (!st.ok()) return st.error();
  if (entries_.count(path) != 0) return pfs::Errc::Exists;
  char name[64];
  std::snprintf(name, sizeof(name), "t%08llu_%s",
                static_cast<unsigned long long>(counter_++),
                pfs::base_name(path).c_str());
  const std::string trash_path = pfs::join_path(dir_, name);
  if (const pfs::Errc e = fs_.rename(path, trash_path); e != pfs::Errc::Ok) {
    return e;
  }
  Entry entry;
  entry.trash_path = trash_path;
  entry.original_path = path;
  entry.trashed_at = fs_.sim().now();
  entry.size = st.value().size;
  entries_.emplace(path, std::move(entry));
  return pfs::Errc::Ok;
}

pfs::Errc Trashcan::undelete(const std::string& original_path) {
  auto it = entries_.find(original_path);
  if (it == entries_.end()) return pfs::Errc::NotFound;
  if (const pfs::Errc e = fs_.rename(it->second.trash_path, original_path);
      e != pfs::Errc::Ok) {
    return e;
  }
  entries_.erase(it);
  return pfs::Errc::Ok;
}

std::vector<Trashcan::Entry> Trashcan::entries() const {
  std::vector<Entry> out;
  out.reserve(entries_.size());
  for (const auto& [orig, e] : entries_) out.push_back(e);
  return out;
}

void Trashcan::purge_older_than(sim::Tick cutoff,
                                std::function<void(std::size_t)> done) {
  auto victims = std::make_shared<std::vector<std::string>>();
  for (const auto& [orig, e] : entries_) {
    if (e.trashed_at <= cutoff) victims->push_back(orig);
  }
  auto purged = std::make_shared<std::size_t>(0);
  auto step = std::make_shared<std::function<void(std::size_t)>>();
  *step = [this, victims, purged, step, done = std::move(done)](std::size_t i) {
    if (i >= victims->size()) {
      if (done) done(*purged);
      return;
    }
    auto it = entries_.find((*victims)[i]);
    if (it == entries_.end()) {
      (*step)(i + 1);
      return;
    }
    const std::string trash_path = it->second.trash_path;
    entries_.erase(it);
    // Synchronous delete: file-system entry and tape object die together.
    hsm_.synchronous_delete(trash_path, [purged, step, i](pfs::Errc e) {
      if (e == pfs::Errc::Ok) ++*purged;
      (*step)(i + 1);
    });
  };
  (*step)(0);
}

}  // namespace cpa::archive
