#include "archive/trashcan.hpp"

#include <cstdio>
#include <memory>

namespace cpa::archive {

Trashcan::Trashcan(pfs::FileSystem& fs, hsm::HsmSystem& hsm, std::string dir)
    : fs_(fs), hsm_(hsm), dir_(std::move(dir)) {
  fs_.mkdirs(dir_);
}

pfs::Errc Trashcan::trash(const std::string& path) {
  const auto st = fs_.stat(path);
  if (!st.ok()) return st.error();
  if (entries_.count(path) != 0) return pfs::Errc::Exists;
  char name[64];
  std::snprintf(name, sizeof(name), "t%08llu_%s",
                static_cast<unsigned long long>(counter_++),
                pfs::base_name(path).c_str());
  const std::string trash_path = pfs::join_path(dir_, name);
  if (const pfs::Errc e = fs_.rename(path, trash_path); e != pfs::Errc::Ok) {
    return e;
  }
  Entry entry;
  entry.trash_path = trash_path;
  entry.original_path = path;
  entry.trashed_at = fs_.sim().now();
  entry.size = st.value().size;
  entries_.emplace(path, std::move(entry));
  return pfs::Errc::Ok;
}

pfs::Errc Trashcan::undelete(const std::string& original_path) {
  auto it = entries_.find(original_path);
  if (it == entries_.end()) return pfs::Errc::NotFound;
  if (const pfs::Errc e = fs_.rename(it->second.trash_path, original_path);
      e != pfs::Errc::Ok) {
    return e;
  }
  entries_.erase(it);
  return pfs::Errc::Ok;
}

std::vector<Trashcan::Entry> Trashcan::entries() const {
  std::vector<Entry> out;
  out.reserve(entries_.size());
  for (const auto& [orig, e] : entries_) out.push_back(e);
  return out;
}

void Trashcan::purge_older_than(sim::Tick cutoff,
                                std::function<void(std::size_t)> done) {
  // Shared state instead of a self-capturing std::function: a closure that
  // owns a shared_ptr to itself never reaches refcount zero.
  struct Purge {
    Trashcan* self = nullptr;
    std::vector<std::string> victims;
    std::size_t purged = 0;
    std::function<void(std::size_t)> done;

    void run(const std::shared_ptr<Purge>& p, std::size_t i) {
      if (i >= victims.size()) {
        if (done) done(purged);
        return;
      }
      auto it = self->entries_.find(victims[i]);
      if (it == self->entries_.end()) {
        run(p, i + 1);
        return;
      }
      const std::string trash_path = it->second.trash_path;
      self->entries_.erase(it);
      // Synchronous delete: file-system entry and tape object die together.
      self->hsm_.synchronous_delete(trash_path, [p, i](pfs::Errc e) {
        if (e == pfs::Errc::Ok) ++p->purged;
        p->run(p, i + 1);
      });
    }
  };
  auto p = std::make_shared<Purge>();
  p->self = this;
  for (const auto& [orig, e] : entries_) {
    if (e.trashed_at <= cutoff) p->victims.push_back(orig);
  }
  p->done = std::move(done);
  p->run(p, 0);
}

}  // namespace cpa::archive
