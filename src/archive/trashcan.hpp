// The trashcan (Sec 4.2.7).
//
// "From a user's perspective, the trashcan is identical to the Windows
// Recycle Bin."  Deletes inside the chroot jail rename files here instead
// of unlinking; a policy pass later feeds aged entries to the synchronous
// deleter, "thereby deleting data without leaving orphans on tape or
// requiring a costly reconciliation process.  Before this policy is run,
// we can also un-delete."
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "hsm/hsm.hpp"
#include "pfs/filesystem.hpp"

namespace cpa::archive {

class Trashcan {
 public:
  Trashcan(pfs::FileSystem& fs, hsm::HsmSystem& hsm,
           std::string dir = "/.trashcan");

  [[nodiscard]] const std::string& dir() const { return dir_; }

  /// User-facing delete: moves the file into the trashcan.  Works for
  /// resident, premigrated and migrated files alike — nothing is
  /// destroyed, so no tape orphan can appear.
  pfs::Errc trash(const std::string& path);

  /// Restores an accidentally deleted file to its original location.
  pfs::Errc undelete(const std::string& original_path);

  struct Entry {
    std::string trash_path;
    std::string original_path;
    sim::Tick trashed_at = 0;
    std::uint64_t size = 0;
  };
  [[nodiscard]] std::vector<Entry> entries() const;
  [[nodiscard]] std::size_t size() const { return entries_.size(); }

  /// The aging policy: synchronously deletes (file system + tape object
  /// together) every entry trashed at or before `cutoff`.  `done` receives
  /// the number purged.
  void purge_older_than(sim::Tick cutoff, std::function<void(std::size_t)> done);

 private:
  pfs::FileSystem& fs_;
  hsm::HsmSystem& hsm_;
  std::string dir_;
  std::uint64_t counter_ = 0;
  std::map<std::string, Entry> entries_;  // keyed by original path
};

}  // namespace cpa::archive
