#include "obs/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace cpa::obs {
namespace {

void json_escape(const std::string& s, std::string& out) {
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

/// Virtual microseconds with sub-microsecond (nanosecond) precision —
/// Chrome's ts/dur unit.  Fixed three decimals keeps the output
/// byte-deterministic across platforms.
void append_us(sim::Tick t, std::string& out) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%llu.%03llu",
                static_cast<unsigned long long>(t / sim::kTicksPerUsec),
                static_cast<unsigned long long>(t % sim::kTicksPerUsec));
  out += buf;
}

// Percent-escaping for the save()/load() text format: keeps every field a
// single whitespace-free token so the loader can split on spaces.
void field_escape(const std::string& s, std::string& out) {
  for (const char c : s) {
    if (c == '%' || c == ' ' || c == '\n' || c == '\r' || c == '\t') {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "%%%02X",
                    static_cast<unsigned char>(c));
      out += buf;
    } else {
      out += c;
    }
  }
}

std::string field_unescape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '%' && i + 2 < s.size()) {
      const auto hex = [](char c) -> int {
        if (c >= '0' && c <= '9') return c - '0';
        if (c >= 'A' && c <= 'F') return c - 'A' + 10;
        if (c >= 'a' && c <= 'f') return c - 'a' + 10;
        return -1;
      };
      const int hi = hex(s[i + 1]);
      const int lo = hex(s[i + 2]);
      if (hi >= 0 && lo >= 0) {
        out += static_cast<char>(hi * 16 + lo);
        i += 2;
        continue;
      }
    }
    out += s[i];
  }
  return out;
}

}  // namespace

const char* to_string(Component c) {
  switch (c) {
    case Component::Sim: return "sim";
    case Component::Net: return "net";
    case Component::Pfs: return "pfs";
    case Component::Hsm: return "hsm";
    case Component::Tape: return "tape";
    case Component::Pftool: return "pftool";
    case Component::Fuse: return "fuse";
    case Component::Fault: return "fault";
    case Component::Integrity: return "integrity";
    case Component::Sched: return "sched";
    case Component::Wal: return "wal";
  }
  return "?";
}

std::uint32_t TraceRecorder::intern_track(Component c, const std::string& name) {
  for (std::uint32_t i = 0; i < tracks_.size(); ++i) {
    if (tracks_[i].comp == c && tracks_[i].name == name) return i;
  }
  tracks_.push_back(Track{c, name});
  return static_cast<std::uint32_t>(tracks_.size() - 1);
}

TraceRecorder::Event* TraceRecorder::resolve(SpanId id) {
  if (!id.valid() || id.epoch != epoch_ || id.idx > events_.size()) {
    return nullptr;
  }
  return &events_[id.idx - 1];
}

SpanId TraceRecorder::push_open(Component c, std::uint32_t track,
                                std::string name, sim::Tick now,
                                std::int32_t lane) {
  Event ev;
  ev.begin = now;
  ev.end = now;
  ev.comp = c;
  ev.phase = 'X';
  ev.open = true;
  ev.track = track;
  ev.lane = lane;
  ev.name = std::move(name);
  events_.push_back(std::move(ev));
  if (now > max_tick_) max_tick_ = now;
  const SpanId id{static_cast<std::uint32_t>(events_.size()), epoch_};
  if (!parent_stack_.empty()) link(parent_stack_.back(), id);
  return id;
}

SpanId TraceRecorder::begin(Component c, const std::string& track,
                            std::string name, sim::Tick now) {
  if (!enabled_) return {};
  return push_open(c, intern_track(c, track), std::move(name), now, -1);
}

SpanId TraceRecorder::begin_lane(Component c, const std::string& group,
                                 std::string name, sim::Tick now) {
  if (!enabled_) return {};
  LaneGroup* lg = nullptr;
  std::size_t lg_idx = 0;
  for (; lg_idx < lane_groups_.size(); ++lg_idx) {
    if (lane_groups_[lg_idx].group == group) {
      lg = &lane_groups_[lg_idx];
      break;
    }
  }
  if (lg == nullptr) {
    lane_groups_.push_back(LaneGroup{group, {}, {}});
    lg = &lane_groups_.back();
  }
  std::size_t lane = 0;
  for (; lane < lg->in_use.size(); ++lane) {
    if (!lg->in_use[lane]) break;
  }
  if (lane == lg->in_use.size()) {
    lg->in_use.push_back(false);
    lg->track_idx.push_back(
        intern_track(c, group + "#" + std::to_string(lane)));
    lg = &lane_groups_[lg_idx];  // intern_track may not move lane_groups_,
                                 // but re-read for clarity after push_back
  }
  lg->in_use[lane] = true;
  // Encode the lane as (group index << 16 | lane) so end() can free it.
  const auto lane_code =
      static_cast<std::int32_t>((lg_idx << 16) | (lane & 0xFFFF));
  return push_open(c, lg->track_idx[lane], std::move(name), now, lane_code);
}

void TraceRecorder::end(SpanId id, sim::Tick now) {
  Event* ev = resolve(id);
  if (ev == nullptr || !ev->open) return;
  ev->open = false;
  ev->end = now < ev->begin ? ev->begin : now;
  if (ev->end > max_tick_) max_tick_ = ev->end;
  if (ev->lane >= 0) {
    const std::size_t lg_idx = static_cast<std::uint32_t>(ev->lane) >> 16;
    const std::size_t lane = static_cast<std::uint32_t>(ev->lane) & 0xFFFF;
    if (lg_idx < lane_groups_.size() &&
        lane < lane_groups_[lg_idx].in_use.size()) {
      lane_groups_[lg_idx].in_use[lane] = false;
    }
    ev->lane = -1;  // the lane is freed exactly once
  }
}

void TraceRecorder::arg(SpanId id, std::string key, std::string value) {
  Event* ev = resolve(id);
  if (ev == nullptr) return;
  ev->args.push_back(Arg{std::move(key), std::move(value), true});
}

void TraceRecorder::arg_num(SpanId id, std::string key, double value) {
  Event* ev = resolve(id);
  if (ev == nullptr) return;
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  ev->args.push_back(Arg{std::move(key), buf, false});
}

void TraceRecorder::arg_num(SpanId id, std::string key, std::uint64_t value) {
  Event* ev = resolve(id);
  if (ev == nullptr) return;
  ev->args.push_back(Arg{std::move(key), std::to_string(value), false});
}

void TraceRecorder::instant(Component c, const std::string& track,
                            std::string name, sim::Tick now) {
  if (!enabled_) return;
  const std::uint32_t t = intern_track(c, track);
  Event ev;
  ev.begin = now;
  ev.end = now;
  ev.comp = c;
  ev.phase = 'i';
  ev.track = t;
  ev.name = std::move(name);
  events_.push_back(std::move(ev));
  if (now > max_tick_) max_tick_ = now;
}

SpanId TraceRecorder::complete(Component c, const std::string& track,
                               std::string name, sim::Tick begin,
                               sim::Tick end) {
  if (!enabled_) return {};
  const SpanId id = push_open(c, intern_track(c, track), std::move(name),
                              begin, -1);
  this->end(id, end);
  return id;
}

void TraceRecorder::link(SpanId parent, SpanId child) {
  if (!parent.valid() || !child.valid()) return;
  if (parent.epoch != epoch_ || child.epoch != epoch_) return;
  if (parent.idx >= child.idx || child.idx > events_.size()) return;
  edges_.emplace_back(parent.idx - 1, child.idx - 1);
}

void TraceRecorder::push_parent(SpanId id) {
  if (!enabled_) return;
  parent_stack_.push_back(id);
}

void TraceRecorder::pop_parent() {
  if (!enabled_ || parent_stack_.empty()) return;
  parent_stack_.pop_back();
}

std::size_t TraceRecorder::events_for(Component c) const {
  std::size_t n = 0;
  for (const Event& ev : events_) {
    if (ev.comp == c) ++n;
  }
  return n;
}

void TraceRecorder::clear() {
  events_.clear();
  tracks_.clear();
  lane_groups_.clear();
  edges_.clear();
  parent_stack_.clear();
  max_tick_ = 0;
  ++epoch_;  // SpanIds issued before the clear become inert
}

TraceRecorder::SpanView TraceRecorder::view(std::size_t i) const {
  const Event& ev = events_[i];
  SpanView v;
  v.begin = ev.begin;
  v.end = ev.open ? std::max(ev.begin, max_tick_) : ev.end;
  v.comp = ev.comp;
  v.phase = ev.phase;
  v.name = &ev.name;
  v.track = &tracks_[ev.track].name;
  return v;
}

std::string TraceRecorder::chrome_json() const {
  std::string out;
  out.reserve(events_.size() * 96 + edges_.size() * 128 +
              tracks_.size() * 64 + 64);
  out += "{\"traceEvents\":[";
  bool first = true;
  auto sep = [&] {
    if (!first) out += ",\n";
    first = false;
  };
  // Thread-name metadata: one virtual thread per track, tid = index + 1.
  for (std::size_t i = 0; i < tracks_.size(); ++i) {
    sep();
    out += "{\"ph\":\"M\",\"pid\":1,\"tid\":";
    out += std::to_string(i + 1);
    out += ",\"name\":\"thread_name\",\"args\":{\"name\":\"";
    json_escape(std::string(to_string(tracks_[i].comp)) + "/" +
                    tracks_[i].name,
                out);
    out += "\"}}";
  }
  for (const Event& ev : events_) {
    sep();
    out += "{\"ph\":\"";
    out += ev.phase;
    out += "\",\"pid\":1,\"tid\":";
    out += std::to_string(ev.track + 1);
    out += ",\"cat\":\"";
    out += to_string(ev.comp);
    out += "\",\"name\":\"";
    json_escape(ev.name, out);
    out += "\",\"ts\":";
    append_us(ev.begin, out);
    if (ev.phase == 'X') {
      const sim::Tick end = ev.open ? std::max(ev.begin, max_tick_) : ev.end;
      out += ",\"dur\":";
      append_us(end - ev.begin, out);
    } else {
      out += ",\"s\":\"t\"";  // instant scope: thread
    }
    if (!ev.args.empty()) {
      out += ",\"args\":{";
      for (std::size_t a = 0; a < ev.args.size(); ++a) {
        if (a > 0) out += ",";
        out += "\"";
        json_escape(ev.args[a].key, out);
        out += "\":";
        if (ev.args[a].quoted) {
          out += "\"";
          json_escape(ev.args[a].value, out);
          out += "\"";
        } else {
          out += ev.args[a].value;
        }
      }
      out += "}";
    }
    out += "}";
  }
  // Causal edges as flow-event pairs: an arrow from inside the parent span
  // to the child's begin.  Shared id + cat + name bind each pair.
  for (std::size_t k = 0; k < edges_.size(); ++k) {
    const Event& p = events_[edges_[k].first];
    const Event& c = events_[edges_[k].second];
    const sim::Tick p_end = p.open ? std::max(p.begin, max_tick_) : p.end;
    const sim::Tick ts_f = c.begin;
    const sim::Tick ts_s = std::min(std::max(p.begin, std::min(ts_f, p_end)),
                                    ts_f);
    sep();
    out += "{\"ph\":\"s\",\"pid\":1,\"tid\":";
    out += std::to_string(p.track + 1);
    out += ",\"cat\":\"causal\",\"name\":\"handoff\",\"id\":";
    out += std::to_string(k + 1);
    out += ",\"ts\":";
    append_us(ts_s, out);
    out += "},\n{\"ph\":\"f\",\"bp\":\"e\",\"pid\":1,\"tid\":";
    out += std::to_string(c.track + 1);
    out += ",\"cat\":\"causal\",\"name\":\"handoff\",\"id\":";
    out += std::to_string(k + 1);
    out += ",\"ts\":";
    append_us(ts_f, out);
    out += "}";
  }
  out += "]}\n";
  return out;
}

bool TraceRecorder::write_chrome_json(const std::string& path) const {
  std::ofstream f(path, std::ios::binary);
  if (!f) return false;
  f << chrome_json();
  return static_cast<bool>(f);
}

std::string TraceRecorder::csv() const {
  std::string out = "begin_us,end_us,component,track,phase,name\n";
  for (const Event& ev : events_) {
    append_us(ev.begin, out);
    out += ",";
    append_us(ev.open ? std::max(ev.begin, max_tick_) : ev.end, out);
    out += ",";
    out += to_string(ev.comp);
    out += ",";
    out += tracks_[ev.track].name;
    out += ",";
    out += ev.phase;
    out += ",";
    out += ev.name;
    out += "\n";
  }
  return out;
}

bool TraceRecorder::write_csv(const std::string& path) const {
  std::ofstream f(path, std::ios::binary);
  if (!f) return false;
  f << csv();
  return static_cast<bool>(f);
}

std::string TraceRecorder::serialize() const {
  std::string out = "CPATRACE 1\n";
  out += "m " + std::to_string(max_tick_) + "\n";
  for (const Track& t : tracks_) {
    out += "t " + std::to_string(static_cast<unsigned>(t.comp)) + " ";
    field_escape(t.name, out);
    out += "\n";
  }
  for (std::size_t i = 0; i < events_.size(); ++i) {
    const Event& ev = events_[i];
    out += "e ";
    out += ev.phase;
    out += " " + std::to_string(ev.begin) + " " + std::to_string(ev.end) +
           " " + std::to_string(static_cast<unsigned>(ev.comp)) + " " +
           std::to_string(ev.track) + " " + (ev.open ? "1" : "0") + " ";
    field_escape(ev.name, out);
    out += "\n";
    for (const Arg& a : ev.args) {
      out += "a " + std::to_string(i) + " ";
      out += a.quoted ? "1 " : "0 ";
      field_escape(a.key, out);
      out += " ";
      field_escape(a.value, out);
      out += "\n";
    }
  }
  for (const auto& [p, c] : edges_) {
    out += "l " + std::to_string(p) + " " + std::to_string(c) + "\n";
  }
  return out;
}

bool TraceRecorder::save(const std::string& path) const {
  std::ofstream f(path, std::ios::binary);
  if (!f) return false;
  f << serialize();
  return static_cast<bool>(f);
}

bool TraceRecorder::deserialize(const std::string& text) {
  clear();
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line) || line != "CPATRACE 1") return false;
  auto bad = [this] {
    clear();
    return false;
  };
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream ls(line);
    std::string tag;
    ls >> tag;
    if (tag == "m") {
      unsigned long long m = 0;
      if (!(ls >> m)) return bad();
      max_tick_ = m;
    } else if (tag == "t") {
      unsigned comp = 0;
      std::string name;
      if (!(ls >> comp >> name) || comp >= kComponentCount) return bad();
      tracks_.push_back(Track{static_cast<Component>(comp),
                              field_unescape(name)});
    } else if (tag == "e") {
      char phase = 'X';
      unsigned long long b = 0, e = 0;
      unsigned comp = 0, track = 0, open = 0;
      std::string name;
      if (!(ls >> phase >> b >> e >> comp >> track >> open >> name) ||
          comp >= kComponentCount || track >= tracks_.size()) {
        return bad();
      }
      Event ev;
      ev.begin = b;
      ev.end = e;
      ev.comp = static_cast<Component>(comp);
      ev.phase = phase;
      ev.open = open != 0;
      ev.track = track;
      ev.name = field_unescape(name);
      events_.push_back(std::move(ev));
    } else if (tag == "a") {
      std::size_t idx = 0;
      unsigned quoted = 0;
      std::string key, value;
      if (!(ls >> idx >> quoted >> key >> value) || idx >= events_.size()) {
        return bad();
      }
      events_[idx].args.push_back(Arg{field_unescape(key),
                                      field_unescape(value), quoted != 0});
    } else if (tag == "l") {
      std::uint32_t p = 0, c = 0;
      if (!(ls >> p >> c) || p >= c || c >= events_.size()) return bad();
      edges_.emplace_back(p, c);
    } else {
      return bad();
    }
  }
  return true;
}

bool TraceRecorder::load(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) return false;
  std::ostringstream ss;
  ss << f.rdbuf();
  return deserialize(ss.str());
}

}  // namespace cpa::obs
