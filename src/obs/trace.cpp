#include "obs/trace.hpp"

#include <cstdio>
#include <fstream>

namespace cpa::obs {
namespace {

void json_escape(const std::string& s, std::string& out) {
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

/// Virtual microseconds with sub-microsecond (nanosecond) precision —
/// Chrome's ts/dur unit.  Fixed three decimals keeps the output
/// byte-deterministic across platforms.
void append_us(sim::Tick t, std::string& out) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%llu.%03llu",
                static_cast<unsigned long long>(t / sim::kTicksPerUsec),
                static_cast<unsigned long long>(t % sim::kTicksPerUsec));
  out += buf;
}

}  // namespace

const char* to_string(Component c) {
  switch (c) {
    case Component::Sim: return "sim";
    case Component::Net: return "net";
    case Component::Pfs: return "pfs";
    case Component::Hsm: return "hsm";
    case Component::Tape: return "tape";
    case Component::Pftool: return "pftool";
    case Component::Fuse: return "fuse";
    case Component::Fault: return "fault";
  }
  return "?";
}

std::uint32_t TraceRecorder::intern_track(Component c, const std::string& name) {
  for (std::uint32_t i = 0; i < tracks_.size(); ++i) {
    if (tracks_[i].comp == c && tracks_[i].name == name) return i;
  }
  tracks_.push_back(Track{c, name});
  return static_cast<std::uint32_t>(tracks_.size() - 1);
}

SpanId TraceRecorder::push_open(Component c, std::uint32_t track,
                                std::string name, sim::Tick now,
                                std::int32_t lane) {
  Event ev;
  ev.begin = now;
  ev.end = now;
  ev.comp = c;
  ev.phase = 'X';
  ev.open = true;
  ev.track = track;
  ev.lane = lane;
  ev.name = std::move(name);
  events_.push_back(std::move(ev));
  if (now > max_tick_) max_tick_ = now;
  return SpanId{static_cast<std::uint32_t>(events_.size())};
}

SpanId TraceRecorder::begin(Component c, const std::string& track,
                            std::string name, sim::Tick now) {
  if (!enabled_) return {};
  return push_open(c, intern_track(c, track), std::move(name), now, -1);
}

SpanId TraceRecorder::begin_lane(Component c, const std::string& group,
                                 std::string name, sim::Tick now) {
  if (!enabled_) return {};
  LaneGroup* lg = nullptr;
  std::size_t lg_idx = 0;
  for (; lg_idx < lane_groups_.size(); ++lg_idx) {
    if (lane_groups_[lg_idx].group == group) {
      lg = &lane_groups_[lg_idx];
      break;
    }
  }
  if (lg == nullptr) {
    lane_groups_.push_back(LaneGroup{group, {}, {}});
    lg = &lane_groups_.back();
  }
  std::size_t lane = 0;
  for (; lane < lg->in_use.size(); ++lane) {
    if (!lg->in_use[lane]) break;
  }
  if (lane == lg->in_use.size()) {
    lg->in_use.push_back(false);
    lg->track_idx.push_back(
        intern_track(c, group + "#" + std::to_string(lane)));
    lg = &lane_groups_[lg_idx];  // intern_track may not move lane_groups_,
                                 // but re-read for clarity after push_back
  }
  lg->in_use[lane] = true;
  // Encode the lane as (group index << 16 | lane) so end() can free it.
  const auto lane_code =
      static_cast<std::int32_t>((lg_idx << 16) | (lane & 0xFFFF));
  return push_open(c, lg->track_idx[lane], std::move(name), now, lane_code);
}

void TraceRecorder::end(SpanId id, sim::Tick now) {
  if (!id.valid() || id.idx > events_.size()) return;
  Event& ev = events_[id.idx - 1];
  if (!ev.open) return;
  ev.open = false;
  ev.end = now < ev.begin ? ev.begin : now;
  if (ev.end > max_tick_) max_tick_ = ev.end;
  if (ev.lane >= 0) {
    const std::size_t lg_idx = static_cast<std::uint32_t>(ev.lane) >> 16;
    const std::size_t lane = static_cast<std::uint32_t>(ev.lane) & 0xFFFF;
    if (lg_idx < lane_groups_.size() &&
        lane < lane_groups_[lg_idx].in_use.size()) {
      lane_groups_[lg_idx].in_use[lane] = false;
    }
  }
}

void TraceRecorder::arg(SpanId id, std::string key, std::string value) {
  if (!id.valid() || id.idx > events_.size()) return;
  events_[id.idx - 1].args.push_back(Arg{std::move(key), std::move(value), true});
}

void TraceRecorder::arg_num(SpanId id, std::string key, double value) {
  if (!id.valid() || id.idx > events_.size()) return;
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  events_[id.idx - 1].args.push_back(Arg{std::move(key), buf, false});
}

void TraceRecorder::arg_num(SpanId id, std::string key, std::uint64_t value) {
  if (!id.valid() || id.idx > events_.size()) return;
  events_[id.idx - 1].args.push_back(
      Arg{std::move(key), std::to_string(value), false});
}

void TraceRecorder::instant(Component c, const std::string& track,
                            std::string name, sim::Tick now) {
  if (!enabled_) return;
  const std::uint32_t t = intern_track(c, track);
  Event ev;
  ev.begin = now;
  ev.end = now;
  ev.comp = c;
  ev.phase = 'i';
  ev.track = t;
  ev.name = std::move(name);
  events_.push_back(std::move(ev));
  if (now > max_tick_) max_tick_ = now;
}

SpanId TraceRecorder::complete(Component c, const std::string& track,
                               std::string name, sim::Tick begin,
                               sim::Tick end) {
  if (!enabled_) return {};
  const SpanId id = push_open(c, intern_track(c, track), std::move(name),
                              begin, -1);
  this->end(id, end);
  return id;
}

std::size_t TraceRecorder::events_for(Component c) const {
  std::size_t n = 0;
  for (const Event& ev : events_) {
    if (ev.comp == c) ++n;
  }
  return n;
}

void TraceRecorder::clear() {
  events_.clear();
  tracks_.clear();
  lane_groups_.clear();
  max_tick_ = 0;
}

std::string TraceRecorder::chrome_json() const {
  std::string out;
  out.reserve(events_.size() * 96 + tracks_.size() * 64 + 64);
  out += "{\"traceEvents\":[";
  bool first = true;
  auto sep = [&] {
    if (!first) out += ",\n";
    first = false;
  };
  // Thread-name metadata: one virtual thread per track, tid = index + 1.
  for (std::size_t i = 0; i < tracks_.size(); ++i) {
    sep();
    out += "{\"ph\":\"M\",\"pid\":1,\"tid\":";
    out += std::to_string(i + 1);
    out += ",\"name\":\"thread_name\",\"args\":{\"name\":\"";
    json_escape(std::string(to_string(tracks_[i].comp)) + "/" +
                    tracks_[i].name,
                out);
    out += "\"}}";
  }
  for (const Event& ev : events_) {
    sep();
    out += "{\"ph\":\"";
    out += ev.phase;
    out += "\",\"pid\":1,\"tid\":";
    out += std::to_string(ev.track + 1);
    out += ",\"cat\":\"";
    out += to_string(ev.comp);
    out += "\",\"name\":\"";
    json_escape(ev.name, out);
    out += "\",\"ts\":";
    append_us(ev.begin, out);
    if (ev.phase == 'X') {
      const sim::Tick end = ev.open ? std::max(ev.begin, max_tick_) : ev.end;
      out += ",\"dur\":";
      append_us(end - ev.begin, out);
    } else {
      out += ",\"s\":\"t\"";  // instant scope: thread
    }
    if (!ev.args.empty()) {
      out += ",\"args\":{";
      for (std::size_t a = 0; a < ev.args.size(); ++a) {
        if (a > 0) out += ",";
        out += "\"";
        json_escape(ev.args[a].key, out);
        out += "\":";
        if (ev.args[a].quoted) {
          out += "\"";
          json_escape(ev.args[a].value, out);
          out += "\"";
        } else {
          out += ev.args[a].value;
        }
      }
      out += "}";
    }
    out += "}";
  }
  out += "]}\n";
  return out;
}

bool TraceRecorder::write_chrome_json(const std::string& path) const {
  std::ofstream f(path, std::ios::binary);
  if (!f) return false;
  f << chrome_json();
  return static_cast<bool>(f);
}

std::string TraceRecorder::csv() const {
  std::string out = "begin_us,end_us,component,track,phase,name\n";
  for (const Event& ev : events_) {
    append_us(ev.begin, out);
    out += ",";
    append_us(ev.open ? std::max(ev.begin, max_tick_) : ev.end, out);
    out += ",";
    out += to_string(ev.comp);
    out += ",";
    out += tracks_[ev.track].name;
    out += ",";
    out += ev.phase;
    out += ",";
    out += ev.name;
    out += "\n";
  }
  return out;
}

bool TraceRecorder::write_csv(const std::string& path) const {
  std::ofstream f(path, std::ios::binary);
  if (!f) return false;
  f << csv();
  return static_cast<bool>(f);
}

}  // namespace cpa::obs
