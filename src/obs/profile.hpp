// Causal critical-path profiler over a recorded trace.
//
// The paper's central question — why does the COTS archive deliver less
// than raw hardware bandwidth (Sec 5) — is an *attribution* question:
// which part of each job's wall-clock went to PFS transfer, tape mount
// wait, tape positioning, drive queueing, metadata, retry backoff?  The
// profiler answers it from the span DAG the subsystems record via
// TraceRecorder::link():
//
//   job (pftool) -> chunk -> flow            (pfs transfer path)
//   job -> recall -> drive_wait / mount_wait (queueing on the plant)
//                 -> read -> position / flow (tape mechanics + transfer)
//                 -> md_txn                  (HSM metadata serialization)
//   job -> retry_backoff                     (fault handling)
//
// For each job root the profiler walks the DAG *backwards*: at every
// instant of [start, finish] the critical path holds the latest-ending
// causal descendant active at that instant.  The walk partitions the job
// window exactly — every tick lands in exactly one PathSegment — so the
// bucket decomposition obeys `sum(buckets) == wall-clock` by construction,
// and the invariant doubles as a self-check that the instrumentation
// didn't drop or double-count a handoff.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/trace.hpp"
#include "simcore/time.hpp"

namespace cpa::obs {

/// Exclusive attribution buckets: each tick of a job's wall-clock lands in
/// exactly one.
enum class Bucket : std::uint8_t {
  PfsTransfer,     // network flows outside the tape path (PanFS/NFS/SAN)
  TapeMountWait,   // robot + mount/unmount/handoff + volume conflicts
  TapePosition,    // seek, locate, backhitch repositioning
  TapeTransfer,    // streaming to/from the drive head
  DriveQueueWait,  // waiting for a free drive (library FIFO + op queue)
  Metadata,        // readdir/stat, HSM db transactions, chunk bookkeeping
  RetryBackoff,    // fault-retry delay windows
  SchedulerIdle,   // job-root self time: queueing/dispatch gaps
  AdmissionWait,   // queued behind the fair-share admission scheduler
  WalCommit,       // group-commit fsync barriers and checkpoint installs
};
inline constexpr unsigned kBucketCount = 10;

[[nodiscard]] const char* to_string(Bucket b);

/// One stretch of a job's critical path: span `span` (event index) was the
/// deepest active cause during [begin, end).
struct PathSegment {
  std::uint32_t span = 0;
  sim::Tick begin = 0;
  sim::Tick end = 0;
  Bucket bucket = Bucket::Metadata;
};

/// The longest causal chain through one job, as an exact partition of the
/// job's [started, finished] window (ascending, gap-free).
struct CriticalPath {
  std::vector<PathSegment> segments;
  [[nodiscard]] sim::Tick total() const;
};

struct JobProfile {
  std::uint32_t root = 0;  // event index of the job's root span
  std::string job_class;   // root span name: "pfcp", "pfls", ...
  sim::Tick started = 0;
  sim::Tick finished = 0;
  std::array<sim::Tick, kBucketCount> buckets{};
  CriticalPath path;

  [[nodiscard]] sim::Tick wall() const { return finished - started; }
  [[nodiscard]] sim::Tick bucket_sum() const;
  /// The tentpole invariant: the bucket decomposition loses nothing.
  [[nodiscard]] bool conserved() const { return bucket_sum() == wall(); }
};

/// Extracts per-job critical paths and bucket attribution from a trace.
/// Job roots are the pftool job-lane spans ("job#<n>" tracks).
class Profiler {
 public:
  explicit Profiler(const TraceRecorder& trace);

  [[nodiscard]] const std::vector<JobProfile>& jobs() const { return jobs_; }
  [[nodiscard]] bool conservation_ok() const;
  [[nodiscard]] std::size_t violations() const;

  /// Human-readable report: per-class attribution table, exact latency
  /// percentiles (p50/p95/p99/max over retained per-job samples), and the
  /// top-k critical-path spans by exclusive time.
  [[nodiscard]] std::string report(std::size_t top_k = 10) const;

 private:
  void walk(JobProfile& jp, std::uint32_t s, sim::Tick lo, sim::Tick hi,
            bool in_tape, int depth);
  [[nodiscard]] Bucket classify_self(const TraceRecorder::SpanView& v,
                                     bool is_root, bool in_tape) const;

  const TraceRecorder& trace_;
  std::vector<std::vector<std::uint32_t>> children_;  // per event, by end desc
  std::vector<JobProfile> jobs_;
};

}  // namespace cpa::obs
