#include "obs/observer.hpp"

#include "simcore/flow_network.hpp"

namespace cpa::obs {

Observer::Observer() : Observer(ObsConfig{}) {}

Observer::Observer(const ObsConfig& cfg)
    : c_events_(metrics_.counter("sim.events_fired")),
      c_events_cancelled_(metrics_.counter("sim.events.cancelled")),
      c_flows_started_(metrics_.counter("net.flows_started")),
      c_flows_completed_(metrics_.counter("net.flows_completed")),
      c_flows_aborted_(metrics_.counter("net.flows_aborted")),
      c_bytes_moved_(metrics_.counter("net.bytes_moved")),
      c_recompute_calls_(metrics_.counter("sim.flow.recompute_calls")),
      c_recompute_flows_(metrics_.counter("sim.flow.recompute_flows_touched")) {
  trace_.set_enabled(cfg.tracing);
}

Observer& Observer::nil() {
  static Observer instance;
  return instance;
}

void Observer::on_event_fired(sim::Tick /*at*/) { c_events_.inc(); }

void Observer::on_event_cancelled(sim::Tick /*at*/) { c_events_cancelled_.inc(); }

void Observer::on_rates_recomputed(std::size_t flows_touched) {
  c_recompute_calls_.inc();
  c_recompute_flows_.add(flows_touched);
}

void Observer::on_flow_started(std::uint64_t flow_id, double bytes,
                               sim::Tick now) {
  c_flows_started_.inc();
  if (trace_.enabled()) {
    const SpanId id = trace_.begin_lane(Component::Net, "flow", "transfer", now);
    trace_.arg_num(id, "bytes", bytes);
    open_flows_.emplace(flow_id, id);
  }
}

void Observer::on_flow_completed(std::uint64_t flow_id,
                                 const sim::FlowStats& stats) {
  c_flows_completed_.inc();
  c_bytes_moved_.add(static_cast<std::uint64_t>(stats.bytes + 0.5));
  if (trace_.enabled()) {
    const auto it = open_flows_.find(flow_id);
    if (it != open_flows_.end()) {
      trace_.arg_num(it->second, "rate_bps", stats.mean_rate());
      trace_.end(it->second, stats.finished);
      open_flows_.erase(it);
    }
  }
}

void Observer::on_flow_aborted(std::uint64_t flow_id, sim::Tick now) {
  c_flows_aborted_.inc();
  if (trace_.enabled()) {
    const auto it = open_flows_.find(flow_id);
    if (it != open_flows_.end()) {
      trace_.end(it->second, now);
      open_flows_.erase(it);
    }
  }
}

}  // namespace cpa::obs
