#include "obs/profile.hpp"

#include <algorithm>
#include <cstdio>
#include <map>

#include "simcore/stats.hpp"

namespace cpa::obs {
namespace {

// Beyond this the DAG is almost certainly malformed (a cycle would need a
// backward edge, which link() rejects); the walk degrades to self time so
// conservation still holds.
constexpr int kMaxDepth = 64;

std::string fmt_secs(double s) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.3f", s);
  return buf;
}

std::string fmt_pct(double frac) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%5.1f%%", frac * 100.0);
  return buf;
}

}  // namespace

const char* to_string(Bucket b) {
  switch (b) {
    case Bucket::PfsTransfer: return "pfs transfer";
    case Bucket::TapeMountWait: return "tape mount wait";
    case Bucket::TapePosition: return "tape position";
    case Bucket::TapeTransfer: return "tape transfer";
    case Bucket::DriveQueueWait: return "drive queue wait";
    case Bucket::Metadata: return "metadata";
    case Bucket::RetryBackoff: return "retry backoff";
    case Bucket::SchedulerIdle: return "scheduler idle";
    case Bucket::AdmissionWait: return "admission wait";
    case Bucket::WalCommit: return "wal commit";
  }
  return "?";
}

sim::Tick CriticalPath::total() const {
  sim::Tick t = 0;
  for (const PathSegment& s : segments) t += s.end - s.begin;
  return t;
}

sim::Tick JobProfile::bucket_sum() const {
  sim::Tick t = 0;
  for (const sim::Tick b : buckets) t += b;
  return t;
}

Profiler::Profiler(const TraceRecorder& trace) : trace_(trace) {
  const std::size_t n = trace_.event_count();
  children_.assign(n, {});
  for (const auto& [p, c] : trace_.edges()) {
    if (p < n && c < n) children_[p].push_back(c);
  }
  // The backward walk takes children latest-ending first.
  for (auto& kids : children_) {
    std::sort(kids.begin(), kids.end(),
              [this](std::uint32_t a, std::uint32_t b) {
                const sim::Tick ea = trace_.view(a).end;
                const sim::Tick eb = trace_.view(b).end;
                if (ea != eb) return ea > eb;
                return a < b;
              });
  }
  for (std::uint32_t i = 0; i < n; ++i) {
    const TraceRecorder::SpanView v = trace_.view(i);
    if (v.phase != 'X' || v.comp != Component::Pftool) continue;
    if (v.track == nullptr || v.track->rfind("job#", 0) != 0) continue;
    JobProfile jp;
    jp.root = i;
    jp.job_class = *v.name;
    jp.started = v.begin;
    jp.finished = v.end;
    if (jp.finished > jp.started) {
      walk(jp, i, jp.started, jp.finished, false, 0);
      std::sort(jp.path.segments.begin(), jp.path.segments.end(),
                [](const PathSegment& a, const PathSegment& b) {
                  return a.begin < b.begin;
                });
    }
    jobs_.push_back(std::move(jp));
  }
}

void Profiler::walk(JobProfile& jp, std::uint32_t s, sim::Tick lo,
                    sim::Tick hi, bool in_tape, int depth) {
  const TraceRecorder::SpanView v = trace_.view(s);
  const bool is_root = s == jp.root;
  auto emit = [&](sim::Tick b, sim::Tick e) {
    const Bucket bucket = classify_self(v, is_root, in_tape);
    jp.buckets[static_cast<std::size_t>(bucket)] += e - b;
    jp.path.segments.push_back(PathSegment{s, b, e, bucket});
  };
  sim::Tick cursor = hi;
  if (depth < kMaxDepth) {
    for (const std::uint32_t c : children_[s]) {
      const TraceRecorder::SpanView cv = trace_.view(c);
      if (cv.phase != 'X') continue;
      const sim::Tick ce = std::min(cv.end, cursor);
      const sim::Tick cb = std::max(cv.begin, lo);
      if (ce <= cb) continue;  // fully shadowed or outside the window
      if (ce < cursor) emit(ce, cursor);  // gap: the parent itself was the cause
      const bool child_tape =
          in_tape || (cv.comp == Component::Tape &&
                      (*cv.name == "read" || *cv.name == "write"));
      walk(jp, c, cb, ce, child_tape, depth + 1);
      cursor = cb;
      if (cursor <= lo) break;
    }
  }
  if (cursor > lo) emit(lo, cursor);
}

Bucket Profiler::classify_self(const TraceRecorder::SpanView& v, bool is_root,
                               bool in_tape) const {
  if (is_root) return Bucket::SchedulerIdle;
  const std::string& n = *v.name;
  switch (v.comp) {
    case Component::Net:
      // A flow's cause decides its bucket: under a tape read/write it is
      // the drive streaming, otherwise a parallel-file-system transfer.
      return in_tape ? Bucket::TapeTransfer : Bucket::PfsTransfer;
    case Component::Tape:
      if (n == "drive_wait") return Bucket::DriveQueueWait;
      if (n == "mount_wait" || n == "handoff_wait" || n == "mount" ||
          n == "unmount" || n == "handoff") {
        return Bucket::TapeMountWait;
      }
      if (n == "position" || n == "seek" || n == "backhitch") {
        return Bucket::TapePosition;
      }
      if (n == "read" || n == "write") return Bucket::TapeTransfer;
      return Bucket::TapePosition;
    case Component::Wal:
      // A flush/checkpoint span on the critical path is a durability
      // barrier the job stalled behind.
      return Bucket::WalCommit;
    default:
      if (n == "retry_backoff") return Bucket::RetryBackoff;
      if (n == "admission_wait") return Bucket::AdmissionWait;
      return Bucket::Metadata;
  }
}

bool Profiler::conservation_ok() const { return violations() == 0; }

std::size_t Profiler::violations() const {
  std::size_t n = 0;
  for (const JobProfile& jp : jobs_) {
    if (!jp.conserved()) ++n;
  }
  return n;
}

std::string Profiler::report(std::size_t top_k) const {
  std::string out;
  out += "== pfprof: causal critical-path attribution ==\n";
  out += "jobs profiled: " + std::to_string(jobs_.size()) + "\n";
  const std::size_t bad = violations();
  if (bad == 0) {
    out += "conservation: OK (every job's buckets sum to its wall-clock)\n";
  } else {
    out += "conservation: VIOLATED for " + std::to_string(bad) + " job(s)\n";
  }

  // Group jobs by class for the percentile and attribution tables.
  std::map<std::string, std::vector<const JobProfile*>> by_class;
  for (const JobProfile& jp : jobs_) by_class[jp.job_class].push_back(&jp);

  for (const auto& [cls, js] : by_class) {
    sim::Samples wall;
    std::array<sim::Tick, kBucketCount> total{};
    sim::Tick grand = 0;
    for (const JobProfile* jp : js) {
      wall.add(sim::to_seconds(jp->wall()));
      for (std::size_t b = 0; b < kBucketCount; ++b) total[b] += jp->buckets[b];
      grand += jp->wall();
    }
    out += "\nclass " + cls + "  (n=" + std::to_string(js.size()) + ")\n";
    out += "  wall-clock seconds: p50=" + fmt_secs(wall.percentile(50)) +
           "  p95=" + fmt_secs(wall.percentile(95)) +
           "  p99=" + fmt_secs(wall.percentile(99)) +
           "  max=" + fmt_secs(wall.max()) + "\n";
    out += "  bucket                 seconds    share\n";
    for (std::size_t b = 0; b < kBucketCount; ++b) {
      char line[128];
      const double secs = sim::to_seconds(total[b]);
      const double share =
          grand > 0
              ? static_cast<double>(total[b]) / static_cast<double>(grand)
              : 0.0;
      std::snprintf(line, sizeof(line), "  %-20s %10.3f   %s\n",
                    to_string(static_cast<Bucket>(b)), secs,
                    fmt_pct(share).c_str());
      out += line;
    }
  }

  // Top-k critical-path spans by exclusive time, aggregated over all jobs.
  std::map<std::string, std::pair<sim::Tick, std::uint64_t>> agg;
  for (const JobProfile& jp : jobs_) {
    for (const PathSegment& s : jp.path.segments) {
      const TraceRecorder::SpanView v = trace_.view(s.span);
      auto& slot = agg[std::string(to_string(v.comp)) + "/" + *v.name];
      slot.first += s.end - s.begin;
      ++slot.second;
    }
  }
  std::vector<std::pair<std::string, std::pair<sim::Tick, std::uint64_t>>>
      ranked(agg.begin(), agg.end());
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    if (a.second.first != b.second.first)
      return a.second.first > b.second.first;
    return a.first < b.first;
  });
  out += "\ntop critical-path spans (exclusive seconds, all jobs)\n";
  for (std::size_t i = 0; i < ranked.size() && i < top_k; ++i) {
    char line[160];
    std::snprintf(line, sizeof(line), "  %2zu. %-24s %10.3f  (segments=%llu)\n",
                  i + 1, ranked[i].first.c_str(),
                  sim::to_seconds(ranked[i].second.first),
                  static_cast<unsigned long long>(ranked[i].second.second));
    out += line;
  }
  return out;
}

}  // namespace cpa::obs
