// Named metrics shared by every substrate.
//
// A MetricsRegistry is a flat namespace of counters, gauges, online
// statistics, log10 histograms, and sample series, keyed by canonical
// dotted names ("tape.mounts", "hsm.migrated_bytes", ...).  Subsystems
// register the instruments they need once — at construction or when an
// Observer is attached — and then update them through cached references,
// so the per-event cost is an inline integer/double add with no lookup.
//
// Registration is idempotent: asking for an existing name of the same kind
// returns the same instrument (the double-registration contract relied on
// when several subsystems share a total, e.g. all tape drives adding into
// "tape.mounts").  Instrument references stay valid for the registry's
// lifetime (node-based storage).
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "simcore/stats.hpp"

namespace cpa::obs {

class Counter {
 public:
  void inc() { ++v_; }
  void add(std::uint64_t n) { v_ += n; }
  [[nodiscard]] std::uint64_t value() const { return v_; }

 private:
  std::uint64_t v_ = 0;
};

class Gauge {
 public:
  void set(double v) { v_ = v; }
  void add(double d) { v_ += d; }
  [[nodiscard]] double value() const { return v_; }

 private:
  double v_ = 0.0;
};

class MetricsRegistry {
 public:
  /// Registers (first call) or looks up (subsequent calls) an instrument.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  sim::OnlineStats& stats(const std::string& name);
  /// `base` applies only on first registration.
  sim::Log10Histogram& histogram(const std::string& name, double base = 1.0);
  /// Exact sample series (per-job values; the paper's 62-sample figures).
  sim::Samples& series(const std::string& name);

  // --- read-only lookup (nullptr when never registered) -------------------
  [[nodiscard]] const Counter* find_counter(const std::string& name) const;
  [[nodiscard]] const Gauge* find_gauge(const std::string& name) const;
  [[nodiscard]] const sim::OnlineStats* find_stats(const std::string& name) const;
  [[nodiscard]] sim::Samples* find_series(const std::string& name);

  /// Value of a counter, 0 when absent (convenience for reports/tests).
  [[nodiscard]] std::uint64_t counter_value(const std::string& name) const;

  /// Text dump, one "name value" line per instrument, sorted by name.
  [[nodiscard]] std::string summary() const;
  bool write_summary(const std::string& path) const;

 private:
  // std::map: node-based (stable references) and sorted (deterministic dump).
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, sim::OnlineStats> stats_;
  std::map<std::string, sim::Log10Histogram> histograms_;
  std::map<std::string, sim::Samples> series_;
};

}  // namespace cpa::obs
