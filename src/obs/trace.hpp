// Structured tracing on the virtual timeline.
//
// Every subsystem records *spans* (an operation with a begin and an end
// tick) and *instant* events, tagged with a Component and a track.  The
// recorder maps each (component, track) pair to a "thread" of one virtual
// process, so an exported trace opens directly in chrome://tracing or
// Perfetto with one row per drive, per concurrent flow lane, per PFTool
// job, and so on.
//
// Recording is designed to disappear when disabled: `begin()` and friends
// test one flag and return immediately, so instrumented hot paths cost a
// single predictable branch per call-site (the tier-1 benches must not
// regress when tracing is off).
//
// Concurrency within one component (many flows, many migrate batches,
// many jobs) is handled by *lanes*: `begin_lane()` places the span on the
// lowest-numbered free lane of a named group, and `end()` frees the lane.
// Lanes keep the exported thread count bounded by peak concurrency rather
// than total event count, and spans on one lane never overlap — which is
// what the Chrome trace format requires of events sharing a tid.
//
// Causality: `link(parent, child)` records a directed edge between two
// spans at every handoff (job -> chunk -> flow, recall -> mount -> read,
// ...).  Edges only ever point from an older span to a newer one, so the
// per-job event graph is a DAG by construction.  The Chrome export renders
// each edge as a flow arrow; `Profiler` (obs/profile.hpp) walks the edges
// to extract critical paths and attribute wall-clock to buckets.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "simcore/time.hpp"

namespace cpa::obs {

/// The subsystem a trace event or metric belongs to.  Exported as the
/// event category and as the thread-name prefix.
enum class Component : std::uint8_t {
  Sim, Net, Pfs, Hsm, Tape, Pftool, Fuse, Fault, Integrity, Sched, Wal
};
inline constexpr unsigned kComponentCount = 11;

[[nodiscard]] const char* to_string(Component c);

/// Handle to an open span.  Invalid handles (default-constructed, or
/// returned while tracing is disabled) make `end()`/`arg()` no-ops, so
/// call-sites never need to re-test the enabled flag.  The epoch stamp
/// makes handles that survived a `clear()` harmlessly stale instead of
/// aliasing an unrelated new event (which used to corrupt lane state).
struct SpanId {
  std::uint32_t idx = 0;    // 1-based index into the event log; 0 = invalid
  std::uint32_t epoch = 0;  // recorder epoch the handle was issued in
  [[nodiscard]] bool valid() const { return idx != 0; }
};

class TraceRecorder {
 public:
  struct Arg {
    std::string key;
    std::string value;
    bool quoted = true;  // false: emit as a bare JSON number
  };

  /// Read-only view of one recorded event; `end` is resolved to the
  /// latest recorded tick for spans still open.
  struct SpanView {
    sim::Tick begin = 0;
    sim::Tick end = 0;
    Component comp = Component::Sim;
    char phase = 'X';
    const std::string* name = nullptr;
    const std::string* track = nullptr;
  };

  void set_enabled(bool on) { enabled_ = on; }
  [[nodiscard]] bool enabled() const { return enabled_; }

  // --- recording ---------------------------------------------------------
  /// Opens a span on the fixed track `track` (e.g. a drive name).
  SpanId begin(Component c, const std::string& track, std::string name,
               sim::Tick now);
  /// Opens a span on the lowest free lane of `group`; the exported track
  /// is "<group>#<lane>".
  SpanId begin_lane(Component c, const std::string& group, std::string name,
                    sim::Tick now);
  /// Closes a span (no-op on an invalid id, a stale id, or double close).
  void end(SpanId id, sim::Tick now);
  /// Attaches a key/value argument to an open or closed span.
  void arg(SpanId id, std::string key, std::string value);
  void arg_num(SpanId id, std::string key, double value);
  void arg_num(SpanId id, std::string key, std::uint64_t value);
  /// Records a zero-duration instant event.
  void instant(Component c, const std::string& track, std::string name,
               sim::Tick now);
  /// Records an already-finished span (begin and end both known).
  SpanId complete(Component c, const std::string& track, std::string name,
                  sim::Tick begin, sim::Tick end);

  // --- causality ---------------------------------------------------------
  /// Records a causal edge parent -> child.  No-op unless both handles are
  /// valid, current-epoch, and parent was recorded before child (edges
  /// always point forward in the log, keeping the graph acyclic).
  void link(SpanId parent, SpanId child);
  /// Parent-context stack: while a span is pushed, every span opened via
  /// begin()/begin_lane()/complete() is auto-linked under it.  Used at
  /// handoffs that cross module boundaries (e.g. starting a network flow
  /// whose span is recorded by the flow probe, not the caller).
  void push_parent(SpanId id);
  void pop_parent();

  // --- inspection (profiler / tests / acceptance checks) ------------------
  [[nodiscard]] std::size_t event_count() const { return events_.size(); }
  [[nodiscard]] std::size_t events_for(Component c) const;
  /// Number of distinct (component, track) rows recorded so far.
  [[nodiscard]] std::size_t track_count() const { return tracks_.size(); }
  [[nodiscard]] std::size_t lane_group_count() const {
    return lane_groups_.size();
  }
  [[nodiscard]] std::size_t edge_count() const { return edges_.size(); }
  /// Causal edges as 0-based (parent, child) event-index pairs.
  [[nodiscard]] const std::vector<std::pair<std::uint32_t, std::uint32_t>>&
  edges() const {
    return edges_;
  }
  /// View of event `i` (0-based; must be < event_count()).
  [[nodiscard]] SpanView view(std::size_t i) const;
  [[nodiscard]] std::uint32_t epoch() const { return epoch_; }
  void clear();

  // --- export ------------------------------------------------------------
  /// Chrome trace-event JSON (object form, "traceEvents" array).  Loadable
  /// in chrome://tracing and Perfetto.  Timestamps are virtual microseconds;
  /// causal edges appear as flow arrows ("s"/"f" event pairs).
  [[nodiscard]] std::string chrome_json() const;
  bool write_chrome_json(const std::string& path) const;
  /// Compact text dump: one line per event,
  /// "begin_us,end_us,component,track,phase,name".
  [[nodiscard]] std::string csv() const;
  bool write_csv(const std::string& path) const;
  /// Lossless self-describing dump (events, args, tracks, edges) that
  /// `load()` reads back, so pfprof can analyse a recorded trace offline.
  [[nodiscard]] std::string serialize() const;
  bool save(const std::string& path) const;
  /// Replaces the recorder's contents with a previously `save()`d trace.
  /// Returns false (leaving the recorder cleared) on malformed input.
  bool load(const std::string& path);
  bool deserialize(const std::string& text);

 private:
  struct Event {
    sim::Tick begin = 0;
    sim::Tick end = 0;
    Component comp = Component::Sim;
    char phase = 'X';  // 'X' complete span, 'i' instant
    bool open = false;
    std::uint32_t track = 0;  // index into tracks_
    std::int32_t lane = -1;   // >= 0: lane spans free their lane on end()
    std::string name;
    std::vector<Arg> args;
  };
  struct Track {
    Component comp = Component::Sim;
    std::string name;
  };
  struct LaneGroup {
    std::string group;
    std::vector<bool> in_use;
    std::vector<std::uint32_t> track_idx;  // per lane
  };

  std::uint32_t intern_track(Component c, const std::string& name);
  SpanId push_open(Component c, std::uint32_t track, std::string name,
                   sim::Tick now, std::int32_t lane);
  /// The event a handle points at, or nullptr for invalid/stale handles.
  Event* resolve(SpanId id);

  bool enabled_ = false;
  std::uint32_t epoch_ = 1;  // bumped by clear(); stale SpanIds are ignored
  sim::Tick max_tick_ = 0;   // unfinished spans close here on export
  std::vector<Event> events_;
  std::vector<Track> tracks_;
  std::vector<LaneGroup> lane_groups_;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges_;
  std::vector<SpanId> parent_stack_;
};

}  // namespace cpa::obs
