#include "obs/metrics.hpp"

#include <cstdio>
#include <fstream>

namespace cpa::obs {

Counter& MetricsRegistry::counter(const std::string& name) {
  return counters_[name];
}

Gauge& MetricsRegistry::gauge(const std::string& name) { return gauges_[name]; }

sim::OnlineStats& MetricsRegistry::stats(const std::string& name) {
  return stats_[name];
}

sim::Log10Histogram& MetricsRegistry::histogram(const std::string& name,
                                                double base) {
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(name, sim::Log10Histogram(base)).first;
  }
  return it->second;
}

sim::Samples& MetricsRegistry::series(const std::string& name) {
  return series_[name];
}

const Counter* MetricsRegistry::find_counter(const std::string& name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : &it->second;
}

const Gauge* MetricsRegistry::find_gauge(const std::string& name) const {
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : &it->second;
}

const sim::OnlineStats* MetricsRegistry::find_stats(
    const std::string& name) const {
  const auto it = stats_.find(name);
  return it == stats_.end() ? nullptr : &it->second;
}

sim::Samples* MetricsRegistry::find_series(const std::string& name) {
  const auto it = series_.find(name);
  return it == series_.end() ? nullptr : &it->second;
}

std::uint64_t MetricsRegistry::counter_value(const std::string& name) const {
  const Counter* c = find_counter(name);
  return c == nullptr ? 0 : c->value();
}

std::string MetricsRegistry::summary() const {
  std::string out;
  char buf[160];
  for (const auto& [name, c] : counters_) {
    std::snprintf(buf, sizeof(buf), "%-40s %llu\n", name.c_str(),
                  static_cast<unsigned long long>(c.value()));
    out += buf;
  }
  for (const auto& [name, g] : gauges_) {
    std::snprintf(buf, sizeof(buf), "%-40s %.3f\n", name.c_str(), g.value());
    out += buf;
  }
  for (const auto& [name, s] : stats_) {
    std::snprintf(buf, sizeof(buf),
                  "%-40s n=%llu mean=%.3f min=%.3f max=%.3f\n", name.c_str(),
                  static_cast<unsigned long long>(s.count()), s.mean(), s.min(),
                  s.max());
    out += buf;
  }
  for (auto& [name, s] : series_) {
    sim::Samples copy = s;  // percentile/min/max sort lazily
    if (copy.count() == 0) {
      std::snprintf(buf, sizeof(buf), "%-40s n=0\n", name.c_str());
    } else {
      std::snprintf(buf, sizeof(buf),
                    "%-40s n=%zu mean=%.3f p50=%.3f min=%.3f max=%.3f\n",
                    name.c_str(), copy.count(), copy.mean(),
                    copy.percentile(50.0), copy.min(), copy.max());
    }
    out += buf;
  }
  for (const auto& [name, h] : histograms_) {
    out += h.render(name);
  }
  return out;
}

bool MetricsRegistry::write_summary(const std::string& path) const {
  std::ofstream f(path, std::ios::binary);
  if (!f) return false;
  f << summary();
  return static_cast<bool>(f);
}

}  // namespace cpa::obs
