// The one observability object threaded through the archive.
//
// An Observer owns the trace recorder and the metrics registry and
// implements both kernel probe interfaces, so a single instance sees the
// event loop, every network flow, and (via set_observer hooks) every
// substrate.  Components hold a never-null `Observer*` defaulting to
// `Observer::nil()` — a process-wide disabled instance — so instrumented
// call-sites need no null checks: disabled tracing costs one branch, and
// metric updates are inline adds into the nil registry that nobody reads.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "simcore/probe.hpp"

namespace cpa::obs {

struct ObsConfig {
  /// Record spans and instants (memory grows with event count).  Metrics
  /// are always maintained; they are a handful of numbers per subsystem.
  bool tracing = false;
};

class Observer final : public sim::SimProbe, public sim::FlowProbe {
 public:
  Observer();
  explicit Observer(const ObsConfig& cfg);
  Observer(const Observer&) = delete;
  Observer& operator=(const Observer&) = delete;

  /// Shared disabled instance used as the default target of component
  /// `Observer*` members.  Never exported or inspected.
  static Observer& nil();

  [[nodiscard]] TraceRecorder& trace() { return trace_; }
  [[nodiscard]] const TraceRecorder& trace() const { return trace_; }
  [[nodiscard]] MetricsRegistry& metrics() { return metrics_; }
  [[nodiscard]] const MetricsRegistry& metrics() const { return metrics_; }

  void set_tracing(bool on) { trace_.set_enabled(on); }
  [[nodiscard]] bool tracing() const { return trace_.enabled(); }

  // --- sim::SimProbe ------------------------------------------------------
  void on_event_fired(sim::Tick at) override;
  void on_event_cancelled(sim::Tick at) override;

  // --- sim::FlowProbe -----------------------------------------------------
  void on_flow_started(std::uint64_t flow_id, double bytes,
                       sim::Tick now) override;
  void on_flow_completed(std::uint64_t flow_id,
                         const sim::FlowStats& stats) override;
  void on_flow_aborted(std::uint64_t flow_id, sim::Tick now) override;
  void on_rates_recomputed(std::size_t flows_touched) override;

 private:
  TraceRecorder trace_;
  MetricsRegistry metrics_;
  // Hot-path instruments, cached at construction so probe hooks never do a
  // map lookup.
  Counter& c_events_;
  Counter& c_events_cancelled_;
  Counter& c_flows_started_;
  Counter& c_flows_completed_;
  Counter& c_flows_aborted_;
  Counter& c_bytes_moved_;
  Counter& c_recompute_calls_;
  Counter& c_recompute_flows_;
  std::unordered_map<std::uint64_t, SpanId> open_flows_;
};

}  // namespace cpa::obs
