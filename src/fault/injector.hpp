// Arms a FaultPlan against the live simulation.
//
// The injector knows nothing about tape libraries or clusters: it holds a
// set of target callbacks (wired up by whoever owns the substrates — in
// practice CotsParallelArchive) and schedules each FaultEvent's strike and
// repair on the shared virtual clock.  Everything it does is visible
// through the observability layer: `fault.*` counters and spans on the
// Component::Fault track, one lane per overlapping fault window.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "fault/plan.hpp"
#include "obs/observer.hpp"
#include "simcore/simulation.hpp"

namespace cpa::fault {

/// Substrate hooks the injector fires.  `down == true` is the strike,
/// `down == false` the repair.  An unset callback makes events against
/// that target no-ops (counted under fault.skipped_total) so plans can be
/// reused across differently-shaped systems.
struct FaultTargets {
  std::function<void(std::uint64_t drive, bool down)> tape_drive;
  std::function<void(std::uint64_t cartridge, bool down)> tape_media;
  /// Silent corruption (FaultKind::Corrupt): rot `segments` live segments
  /// on the cartridge, deterministically in `seed`.  No repair event ever
  /// fires — only scrub/recall-verify undoes it.
  std::function<void(std::uint64_t cartridge, std::uint64_t segments,
                     std::uint64_t seed)>
      tape_corrupt;
  std::function<void(std::uint64_t node, bool down)> cluster_node;
  /// Restart with the given outage; the server models its own recovery.
  std::function<void(std::uint64_t server, sim::Tick outage)> hsm_server;
  std::function<void(const std::string& pool, double factor, bool down)> net_pool;
  /// Whole-archive power loss.  The strike (`down == true`) kills every
  /// in-flight flow and tears the un-fsynced WAL tail at a `seed`-derived
  /// offset; the repair (`down == false`, fired after `repair=`) powers
  /// the plant back up and runs crash recovery.
  std::function<void(std::uint64_t server, std::uint64_t seed, bool down)>
      server_power;
};

class FaultInjector {
 public:
  FaultInjector(sim::Simulation& sim, obs::Observer& obs);

  void set_targets(FaultTargets targets) { targets_ = std::move(targets); }

  /// Schedules every event of `plan`.  May be called more than once;
  /// plans accumulate.
  void arm(const FaultPlan& plan);

  [[nodiscard]] std::uint64_t injected() const { return c_injected_.value(); }
  [[nodiscard]] std::uint64_t repaired() const { return c_repaired_.value(); }

 private:
  void fire(const FaultEvent& ev);

  sim::Simulation& sim_;
  obs::Observer& obs_;
  FaultTargets targets_;
  obs::Counter& c_injected_;
  obs::Counter& c_repaired_;
  obs::Counter& c_skipped_;
};

}  // namespace cpa::fault
