// Deterministic fault planning: what breaks, when, and for how long.
//
// The paper is an *integration experience* report, and half of its Sec 5
// operational lessons are about failure: tape drive and media errors, FTA
// node loss, and interrupted multi-day archive jobs that PFTool's restart
// journal must resume.  A FaultPlan is the reproducible script of such an
// outage: a list of virtual-time fault windows against named targets,
// built programmatically, parsed from a compact spec string, or drawn from
// a seeded RNG (same seed -> identical plan -> identical run).
//
// Spec grammar (events separated by ';', durations accept s/m/h/d
// suffixes, plain numbers are seconds):
//
//   tape.drive[3]:fail@t=120s,repair=300s    drive down for a window
//   tape.media[7]:fail@t=1h,repair=30m       cartridge unreadable window
//   tape.media[7]:corrupt@t=1h,segments=3,seed=42   silent bit-rot
//   cluster.node[2]:fail@t=10m,repair=20m    FTA node crash + reboot
//   hsm.server[0]:restart@t=2h,outage=60s    archive server restart
//   net.pool[trunk0]:degrade@t=5m,factor=0.5,repair=10m
//   server.power[0]:fail@t=45m,seed=7,repair=120s   whole-archive power loss
//
// `server.power` is the whole-system crash: every in-flight flow aborts,
// volatile metadata is lost, and the un-fsynced WAL tail is torn at a
// seed-derived byte offset.  `repair=` schedules the restart+recovery;
// omitting it leaves the plant down until the caller recovers manually.
//
// `corrupt@` differs from the hard `fail@` window: reads of a corrupted
// segment still succeed, but the fixity checksum no longer matches, so
// only recall verification or the scrubber notices.
//
// Omitting `repair=` makes the fault permanent.  RetryPolicy is the
// recovery half: bounded attempts with exponential backoff in virtual
// time, shared by the HSM migrator/recaller and the PFTool job layer.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "simcore/time.hpp"

namespace cpa::fault {

/// Bounded-retry schedule: attempt N+1 runs `delay(N)` after attempt N
/// failed, with exponential growth clamped at `max_backoff`.  Virtual
/// time, so backoff is exact and assertable in tests.
struct RetryPolicy {
  /// Total attempts including the first; 1 = no retries.
  unsigned max_attempts = 1;
  /// Delay before the first retry.
  sim::Tick backoff = sim::secs(5);
  /// Growth factor per subsequent retry.
  double multiplier = 2.0;
  sim::Tick max_backoff = sim::minutes(10);
  /// Seeded full-jitter fraction in [0,1]: each delay is scaled by a
  /// deterministic draw from [1-jitter, 1].  0 (the default) disables
  /// jitter entirely and keeps every schedule bit-identical to the
  /// un-jittered policy; 1 is classic AWS-style full jitter.
  double jitter = 0.0;
  /// Base seed for the jitter draw; mixed with the caller's salt so
  /// distinct jobs decorrelate while each (seed, salt, index) replays.
  std::uint64_t jitter_seed = 0;

  /// True when another attempt may run after `attempts_made` failures.
  [[nodiscard]] bool allows(unsigned attempts_made) const {
    return attempts_made < max_attempts;
  }
  /// Backoff before retry number `retry_index` (1-based: the first retry
  /// waits `backoff`, the second `backoff * multiplier`, ...).  `salt`
  /// only matters when `jitter > 0` — pass a per-job identifier so
  /// colliding retries spread out instead of thundering together.
  [[nodiscard]] sim::Tick delay(unsigned retry_index,
                                std::uint64_t salt = 0) const;

  static RetryPolicy none() { return RetryPolicy{}; }
  static RetryPolicy standard() {
    RetryPolicy p;
    p.max_attempts = 3;
    return p;
  }
};

enum class FaultTarget : std::uint8_t {
  TapeDrive,    // tape.drive[i]  — drive down, in-flight transfer killed
  TapeMedia,    // tape.media[i]  — cartridge i unreadable (media errors)
  ClusterNode,  // cluster.node[i]— FTA node crash, in-flight workers die
  HsmServer,    // hsm.server[i]  — server restart, in-flight txns requeue
  NetPool,      // net.pool[name] — capacity degraded by `factor`
  ServerPower,  // server.power[i]— whole-archive power loss, WAL tail torn
};

[[nodiscard]] const char* to_string(FaultTarget t);

enum class FaultKind : std::uint8_t {
  Window,   // fail/restart/degrade: target is down or slow, then repaired
  Corrupt,  // silent bit-rot on tape.media: reads succeed, fixity fails
};

struct FaultEvent {
  FaultTarget target = FaultTarget::TapeDrive;
  /// Drive / cartridge / node / server index (unused for NetPool).
  std::uint64_t index = 0;
  /// Pool name (NetPool only).
  std::string pool;
  /// Virtual time the fault strikes.
  sim::Tick at = 0;
  /// Repair delay after `at`; 0 = permanent.  For HsmServer this is the
  /// restart outage during which no metadata transaction is serviced.
  sim::Tick repair = 0;
  /// Remaining capacity fraction while degraded (NetPool only; 0 = dead).
  double factor = 0.0;
  /// Window faults are the classic down-then-repaired outage; Corrupt is
  /// silent tape bit-rot (TapeMedia only, never repaired by time).
  FaultKind kind = FaultKind::Window;
  /// Corrupt only: how many live segments flip (>= 1).
  std::uint64_t segments = 0;
  /// Corrupt: seed for the deterministic segment pick.  ServerPower: seed
  /// for the torn-tail byte offset of the un-fsynced WAL.
  std::uint64_t seed = 0;

  /// Canonical spec form, e.g. "tape.drive[3]:fail@t=120s,repair=300s".
  [[nodiscard]] std::string render() const;
};

/// Seeded random-plan shape: how many faults of each kind to scatter over
/// `horizon`, against a plant of the given size.
struct RandomFaultConfig {
  unsigned drive_failures = 2;
  unsigned node_crashes = 1;
  unsigned media_errors = 0;
  unsigned media_corruptions = 0;
  unsigned server_restarts = 0;
  unsigned drives = 4;
  unsigned nodes = 4;
  unsigned cartridges = 4;
  unsigned servers = 1;
  sim::Tick horizon = sim::hours(1);
  sim::Tick min_repair = sim::minutes(2);
  sim::Tick max_repair = sim::minutes(10);
};

struct FaultPlan {
  std::vector<FaultEvent> events;

  [[nodiscard]] bool empty() const { return events.empty(); }
  [[nodiscard]] std::size_t size() const { return events.size(); }

  FaultPlan& add(FaultEvent ev);
  // Convenience builders (chainable).
  FaultPlan& drive_failure(std::uint64_t drive, sim::Tick at, sim::Tick repair = 0);
  FaultPlan& media_error(std::uint64_t cartridge, sim::Tick at, sim::Tick repair = 0);
  FaultPlan& media_corruption(std::uint64_t cartridge, sim::Tick at,
                              std::uint64_t segments, std::uint64_t seed = 0);
  FaultPlan& node_crash(std::uint64_t node, sim::Tick at, sim::Tick repair = 0);
  FaultPlan& server_restart(std::uint64_t server, sim::Tick at, sim::Tick outage);
  FaultPlan& pool_degrade(std::string pool, sim::Tick at, double factor,
                          sim::Tick repair = 0);
  FaultPlan& power_fail(std::uint64_t server, sim::Tick at,
                        std::uint64_t seed = 0, sim::Tick repair = 0);

  /// Canonical spec string (parse(render()) round-trips exactly).
  [[nodiscard]] std::string render() const;

  /// Parses the spec grammar above.  Returns nullopt on error and, when
  /// `error` is non-null, stores a one-line diagnostic.
  static std::optional<FaultPlan> parse(const std::string& spec,
                                        std::string* error = nullptr);

  /// Seeded plan generation: the same (config, seed) pair always yields
  /// the identical plan, so a whole faulty run replays byte-for-byte.
  static FaultPlan random(const RandomFaultConfig& cfg, std::uint64_t seed);
};

}  // namespace cpa::fault
