#include "fault/injector.hpp"

#include <utility>

namespace cpa::fault {
namespace {

const char* kind_counter(FaultTarget t) {
  switch (t) {
    case FaultTarget::TapeDrive: return "fault.drive_failures";
    case FaultTarget::TapeMedia: return "fault.media_errors";
    case FaultTarget::ClusterNode: return "fault.node_crashes";
    case FaultTarget::HsmServer: return "fault.server_restarts";
    case FaultTarget::NetPool: return "fault.pool_degrades";
    case FaultTarget::ServerPower: return "fault.power_failures";
  }
  return "fault.unknown";
}

std::string target_label(const FaultEvent& ev) {
  std::string label = to_string(ev.target);
  label += '[';
  if (ev.target == FaultTarget::NetPool) {
    label += ev.pool;
  } else {
    label += std::to_string(ev.index);
  }
  label += ']';
  return label;
}

}  // namespace

FaultInjector::FaultInjector(sim::Simulation& sim, obs::Observer& obs)
    : sim_(sim),
      obs_(obs),
      c_injected_(obs.metrics().counter("fault.injected_total")),
      c_repaired_(obs.metrics().counter("fault.repaired_total")),
      c_skipped_(obs.metrics().counter("fault.skipped_total")) {}

void FaultInjector::arm(const FaultPlan& plan) {
  for (const FaultEvent& ev : plan.events) {
    sim_.at(ev.at, [this, ev] { fire(ev); });
  }
}

void FaultInjector::fire(const FaultEvent& ev) {
  const std::string label = target_label(ev);
  if (ev.kind == FaultKind::Corrupt) {
    // Silent bit-rot: no window, no repair schedule.  The cartridge keeps
    // serving reads; only fixity verification can tell.
    if (!targets_.tape_corrupt) {
      c_skipped_.inc();
      return;
    }
    targets_.tape_corrupt(ev.index, ev.segments, ev.seed);
    c_injected_.inc();
    obs_.metrics().counter("fault.corruptions").inc();
    obs_.trace().instant(obs::Component::Fault, "plan", label + ":corrupt",
                         sim_.now());
    return;
  }
  auto strike = [&]() -> bool {
    switch (ev.target) {
      case FaultTarget::TapeDrive:
        if (!targets_.tape_drive) return false;
        targets_.tape_drive(ev.index, true);
        return true;
      case FaultTarget::TapeMedia:
        if (!targets_.tape_media) return false;
        targets_.tape_media(ev.index, true);
        return true;
      case FaultTarget::ClusterNode:
        if (!targets_.cluster_node) return false;
        targets_.cluster_node(ev.index, true);
        return true;
      case FaultTarget::HsmServer:
        if (!targets_.hsm_server) return false;
        targets_.hsm_server(ev.index, ev.repair);
        return true;
      case FaultTarget::NetPool:
        if (!targets_.net_pool) return false;
        targets_.net_pool(ev.pool, ev.factor, true);
        return true;
      case FaultTarget::ServerPower:
        if (!targets_.server_power) return false;
        targets_.server_power(ev.index, ev.seed, true);
        return true;
    }
    return false;
  };
  if (!strike()) {
    c_skipped_.inc();
    return;
  }
  c_injected_.inc();
  obs_.metrics().counter(kind_counter(ev.target)).inc();

  auto& trace = obs_.trace();
  if (ev.repair == 0) {
    // Permanent fault: a point event on the fault track.
    trace.instant(obs::Component::Fault, "plan", label + ":fail", sim_.now());
    return;
  }
  const obs::SpanId span = trace.begin_lane(obs::Component::Fault, "window",
                                            label, sim_.now());
  trace.arg_num(span, "repair_s", sim::to_seconds(ev.repair));

  // hsm.server restarts model their own outage; the injector only marks
  // the window and counts the recovery.  Everything else gets an explicit
  // repair call.
  sim_.after(ev.repair, [this, ev, span] {
    switch (ev.target) {
      case FaultTarget::TapeDrive: targets_.tape_drive(ev.index, false); break;
      case FaultTarget::TapeMedia: targets_.tape_media(ev.index, false); break;
      case FaultTarget::ClusterNode:
        targets_.cluster_node(ev.index, false);
        break;
      case FaultTarget::HsmServer: break;
      case FaultTarget::NetPool:
        targets_.net_pool(ev.pool, ev.factor, false);
        break;
      case FaultTarget::ServerPower:
        targets_.server_power(ev.index, 0, false);
        break;
    }
    c_repaired_.inc();
    obs_.trace().end(span, sim_.now());
  });
}

}  // namespace cpa::fault
