#include "fault/plan.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include "simcore/rng.hpp"

namespace cpa::fault {
namespace {

// Canonical duration rendering: the largest unit that divides evenly, so
// parse(render()) round-trips tick-exact.
std::string render_duration(sim::Tick t) {
  char buf[32];
  if (t % sim::kTicksPerSec == 0) {
    std::snprintf(buf, sizeof(buf), "%llus",
                  static_cast<unsigned long long>(t / sim::kTicksPerSec));
  } else if (t % sim::kTicksPerMsec == 0) {
    std::snprintf(buf, sizeof(buf), "%llums",
                  static_cast<unsigned long long>(t / sim::kTicksPerMsec));
  } else if (t % sim::kTicksPerUsec == 0) {
    std::snprintf(buf, sizeof(buf), "%lluus",
                  static_cast<unsigned long long>(t / sim::kTicksPerUsec));
  } else {
    std::snprintf(buf, sizeof(buf), "%lluns", static_cast<unsigned long long>(t));
  }
  return buf;
}

std::string trim(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b])) != 0) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])) != 0) --e;
  return s.substr(b, e - b);
}

bool parse_duration(const std::string& text, sim::Tick* out) {
  if (text.empty()) return false;
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || value < 0.0) return false;
  const std::string suffix = trim(std::string(end));
  if (suffix.empty() || suffix == "s") {
    *out = sim::secs(value);
  } else if (suffix == "ms") {
    *out = sim::msecs(value);
  } else if (suffix == "us") {
    *out = sim::usecs(value);
  } else if (suffix == "ns") {
    *out = static_cast<sim::Tick>(value + 0.5);
  } else if (suffix == "m") {
    *out = sim::minutes(value);
  } else if (suffix == "h") {
    *out = sim::hours(value);
  } else if (suffix == "d") {
    *out = sim::days(value);
  } else {
    return false;
  }
  return true;
}

bool fail_with(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
  return false;
}

// One `target:action` clause, e.g. "tape.drive[3]:fail@t=120s,repair=300s".
bool parse_event(const std::string& clause, FaultEvent* ev, std::string* error) {
  const std::size_t colon = clause.find(':');
  if (colon == std::string::npos) {
    return fail_with(error, "missing ':' in '" + clause + "'");
  }
  const std::string target = trim(clause.substr(0, colon));
  const std::string action = trim(clause.substr(colon + 1));

  const std::size_t lb = target.find('[');
  const std::size_t rb = target.rfind(']');
  if (lb == std::string::npos || rb == std::string::npos || rb < lb ||
      rb + 1 != target.size()) {
    return fail_with(error, "malformed target '" + target + "' (want name[arg])");
  }
  const std::string name = trim(target.substr(0, lb));
  const std::string arg = trim(target.substr(lb + 1, rb - lb - 1));

  std::string verb = "fail";
  if (name == "tape.drive") {
    ev->target = FaultTarget::TapeDrive;
  } else if (name == "tape.media") {
    ev->target = FaultTarget::TapeMedia;
  } else if (name == "cluster.node") {
    ev->target = FaultTarget::ClusterNode;
  } else if (name == "hsm.server") {
    ev->target = FaultTarget::HsmServer;
    verb = "restart";
  } else if (name == "net.pool") {
    ev->target = FaultTarget::NetPool;
    verb = "degrade";
  } else if (name == "server.power") {
    ev->target = FaultTarget::ServerPower;
  } else {
    return fail_with(error, "unknown fault target '" + name + "'");
  }

  if (ev->target == FaultTarget::NetPool) {
    if (arg.empty()) return fail_with(error, "net.pool needs a pool name");
    ev->pool = arg;
  } else {
    char* end = nullptr;
    ev->index = std::strtoull(arg.c_str(), &end, 10);
    if (arg.empty() || end == nullptr || *end != '\0') {
      return fail_with(error, "bad index '" + arg + "' for " + name);
    }
  }

  const std::size_t at_sign = action.find('@');
  if (at_sign == std::string::npos) {
    return fail_with(error, "missing '@' in action '" + action + "'");
  }
  const std::string got_verb = trim(action.substr(0, at_sign));
  if (ev->target == FaultTarget::TapeMedia && got_verb == "corrupt") {
    // Silent bit-rot is a second verb on the media target: not a readable
    // outage window but a fixity violation discovered later.
    ev->kind = FaultKind::Corrupt;
  } else if (got_verb != verb) {
    return fail_with(error, name + " wants action '" + verb + "', got '" +
                                got_verb + "'");
  }

  // key=value list: t= (required first), then repair=/outage=/factor=,
  // or segments=/seed= for the corrupt kind.
  bool have_at = false;
  bool have_factor = false;
  bool have_segments = false;
  std::string rest = action.substr(at_sign + 1);
  while (!rest.empty()) {
    const std::size_t comma = rest.find(',');
    const std::string pair =
        trim(comma == std::string::npos ? rest : rest.substr(0, comma));
    rest = comma == std::string::npos ? std::string() : rest.substr(comma + 1);
    const std::size_t eq = pair.find('=');
    if (eq == std::string::npos) {
      return fail_with(error, "expected key=value, got '" + pair + "'");
    }
    const std::string key = trim(pair.substr(0, eq));
    const std::string value = trim(pair.substr(eq + 1));
    if (key == "t") {
      if (!parse_duration(value, &ev->at)) {
        return fail_with(error, "bad time '" + value + "'");
      }
      have_at = true;
    } else if (key == "repair" || key == "outage") {
      if (ev->kind == FaultKind::Corrupt) {
        return fail_with(error,
                         "corrupt is silent bit-rot; '" + key +
                             "=' makes no sense (scrub repairs it)");
      }
      if (!parse_duration(value, &ev->repair)) {
        return fail_with(error, "bad duration '" + value + "'");
      }
    } else if (key == "segments" && ev->kind == FaultKind::Corrupt) {
      char* end = nullptr;
      ev->segments = std::strtoull(value.c_str(), &end, 10);
      if (value.empty() || end == nullptr || *end != '\0' ||
          ev->segments == 0) {
        return fail_with(error, "segments must be a positive count, got '" +
                                    value + "'");
      }
      have_segments = true;
    } else if (key == "seed" && (ev->kind == FaultKind::Corrupt ||
                                 ev->target == FaultTarget::ServerPower)) {
      char* end = nullptr;
      ev->seed = std::strtoull(value.c_str(), &end, 10);
      if (value.empty() || end == nullptr || *end != '\0') {
        return fail_with(error, "bad seed '" + value + "'");
      }
    } else if (key == "factor") {
      char* end = nullptr;
      ev->factor = std::strtod(value.c_str(), &end);
      if (end == value.c_str() || *end != '\0' || ev->factor < 0.0 ||
          ev->factor > 1.0) {
        return fail_with(error, "factor must be in [0,1], got '" + value + "'");
      }
      have_factor = true;
    } else {
      return fail_with(error, "unknown key '" + key + "'");
    }
  }
  if (!have_at) return fail_with(error, "missing t= in '" + clause + "'");
  if (ev->kind == FaultKind::Corrupt && !have_segments) {
    return fail_with(error, "tape.media corrupt needs segments=");
  }
  if (ev->target == FaultTarget::NetPool && !have_factor) {
    return fail_with(error, "net.pool degrade needs factor=");
  }
  if (ev->target == FaultTarget::HsmServer && ev->repair == 0) {
    return fail_with(error, "hsm.server restart needs a non-zero outage=");
  }
  return true;
}

}  // namespace

namespace {

// splitmix64 finalizer: a one-shot mix good enough to decorrelate the
// jitter draw across (seed, salt, retry_index) triples.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

}  // namespace

sim::Tick RetryPolicy::delay(unsigned retry_index, std::uint64_t salt) const {
  sim::Tick base = 0;
  if (retry_index <= 1) {
    base = std::min(backoff, max_backoff);
  } else {
    double d = static_cast<double>(backoff);
    bool capped = false;
    for (unsigned i = 1; i < retry_index; ++i) {
      d *= multiplier;
      if (d >= static_cast<double>(max_backoff)) {
        capped = true;
        break;
      }
    }
    base = capped ? max_backoff
                  : std::min(static_cast<sim::Tick>(d + 0.5), max_backoff);
  }
  if (jitter <= 0.0) return base;
  // Seeded full jitter: scale by a deterministic draw from [1-jitter, 1].
  const std::uint64_t h =
      mix64(jitter_seed ^ mix64(salt) ^ (0x5B17ULL * retry_index));
  const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
  const double scale = 1.0 - std::min(jitter, 1.0) * u;
  return static_cast<sim::Tick>(static_cast<double>(base) * scale + 0.5);
}

const char* to_string(FaultTarget t) {
  switch (t) {
    case FaultTarget::TapeDrive: return "tape.drive";
    case FaultTarget::TapeMedia: return "tape.media";
    case FaultTarget::ClusterNode: return "cluster.node";
    case FaultTarget::HsmServer: return "hsm.server";
    case FaultTarget::NetPool: return "net.pool";
    case FaultTarget::ServerPower: return "server.power";
  }
  return "?";
}

std::string FaultEvent::render() const {
  std::string out = to_string(target);
  out += '[';
  if (target == FaultTarget::NetPool) {
    out += pool;
  } else {
    out += std::to_string(index);
  }
  out += "]:";
  if (kind == FaultKind::Corrupt) {
    out += "corrupt@t=" + render_duration(at);
    out += ",segments=" + std::to_string(segments);
    out += ",seed=" + std::to_string(seed);
    return out;
  }
  switch (target) {
    case FaultTarget::HsmServer: out += "restart"; break;
    case FaultTarget::NetPool: out += "degrade"; break;
    default: out += "fail"; break;
  }
  out += "@t=" + render_duration(at);
  if (target == FaultTarget::NetPool) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), ",factor=%g", factor);
    out += buf;
  }
  if (target == FaultTarget::ServerPower && seed != 0) {
    out += ",seed=" + std::to_string(seed);
  }
  if (repair != 0) {
    out += target == FaultTarget::HsmServer ? ",outage=" : ",repair=";
    out += render_duration(repair);
  }
  return out;
}

FaultPlan& FaultPlan::add(FaultEvent ev) {
  events.push_back(std::move(ev));
  return *this;
}

FaultPlan& FaultPlan::drive_failure(std::uint64_t drive, sim::Tick at,
                                    sim::Tick repair) {
  return add({FaultTarget::TapeDrive, drive, {}, at, repair, 0.0});
}

FaultPlan& FaultPlan::media_error(std::uint64_t cartridge, sim::Tick at,
                                  sim::Tick repair) {
  return add({FaultTarget::TapeMedia, cartridge, {}, at, repair, 0.0});
}

FaultPlan& FaultPlan::media_corruption(std::uint64_t cartridge, sim::Tick at,
                                       std::uint64_t segments,
                                       std::uint64_t seed) {
  FaultEvent ev;
  ev.target = FaultTarget::TapeMedia;
  ev.kind = FaultKind::Corrupt;
  ev.index = cartridge;
  ev.at = at;
  ev.segments = segments;
  ev.seed = seed;
  return add(std::move(ev));
}

FaultPlan& FaultPlan::node_crash(std::uint64_t node, sim::Tick at,
                                 sim::Tick repair) {
  return add({FaultTarget::ClusterNode, node, {}, at, repair, 0.0});
}

FaultPlan& FaultPlan::server_restart(std::uint64_t server, sim::Tick at,
                                     sim::Tick outage) {
  return add({FaultTarget::HsmServer, server, {}, at, outage, 0.0});
}

FaultPlan& FaultPlan::pool_degrade(std::string pool, sim::Tick at, double factor,
                                   sim::Tick repair) {
  return add({FaultTarget::NetPool, 0, std::move(pool), at, repair, factor});
}

FaultPlan& FaultPlan::power_fail(std::uint64_t server, sim::Tick at,
                                 std::uint64_t seed, sim::Tick repair) {
  FaultEvent ev;
  ev.target = FaultTarget::ServerPower;
  ev.index = server;
  ev.at = at;
  ev.repair = repair;
  ev.seed = seed;
  return add(std::move(ev));
}

std::string FaultPlan::render() const {
  std::string out;
  for (const FaultEvent& ev : events) {
    if (!out.empty()) out += ";";
    out += ev.render();
  }
  return out;
}

std::optional<FaultPlan> FaultPlan::parse(const std::string& spec,
                                          std::string* error) {
  FaultPlan plan;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    const std::size_t semi = spec.find(';', pos);
    const std::string clause = trim(
        semi == std::string::npos ? spec.substr(pos)
                                  : spec.substr(pos, semi - pos));
    if (!clause.empty()) {
      FaultEvent ev;
      if (!parse_event(clause, &ev, error)) return std::nullopt;
      plan.events.push_back(std::move(ev));
    }
    if (semi == std::string::npos) break;
    pos = semi + 1;
  }
  return plan;
}

FaultPlan FaultPlan::random(const RandomFaultConfig& cfg, std::uint64_t seed) {
  sim::Rng rng(seed);
  FaultPlan plan;
  auto window = [&](FaultEvent ev) {
    ev.at = rng.uniform_u64(0, cfg.horizon);
    ev.repair = rng.uniform_u64(cfg.min_repair, cfg.max_repair);
    plan.add(std::move(ev));
  };
  for (unsigned i = 0; i < cfg.drive_failures && cfg.drives > 0; ++i) {
    FaultEvent ev;
    ev.target = FaultTarget::TapeDrive;
    ev.index = rng.uniform_u64(0, cfg.drives - 1);
    window(std::move(ev));
  }
  for (unsigned i = 0; i < cfg.node_crashes && cfg.nodes > 0; ++i) {
    FaultEvent ev;
    ev.target = FaultTarget::ClusterNode;
    ev.index = rng.uniform_u64(0, cfg.nodes - 1);
    window(std::move(ev));
  }
  for (unsigned i = 0; i < cfg.media_errors && cfg.cartridges > 0; ++i) {
    FaultEvent ev;
    ev.target = FaultTarget::TapeMedia;
    ev.index = rng.uniform_u64(0, cfg.cartridges - 1);
    window(std::move(ev));
  }
  for (unsigned i = 0; i < cfg.media_corruptions && cfg.cartridges > 0; ++i) {
    FaultEvent ev;
    ev.target = FaultTarget::TapeMedia;
    ev.kind = FaultKind::Corrupt;
    ev.index = rng.uniform_u64(0, cfg.cartridges - 1);
    ev.at = rng.uniform_u64(0, cfg.horizon);
    ev.segments = rng.uniform_u64(1, 4);
    ev.seed = rng.uniform_u64(0, 0xFFFFFFFFULL);
    plan.add(std::move(ev));
  }
  for (unsigned i = 0; i < cfg.server_restarts && cfg.servers > 0; ++i) {
    FaultEvent ev;
    ev.target = FaultTarget::HsmServer;
    ev.index = rng.uniform_u64(0, cfg.servers - 1);
    window(std::move(ev));
  }
  std::stable_sort(plan.events.begin(), plan.events.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.at < b.at;
                   });
  return plan;
}

}  // namespace cpa::fault
