// The FTA (File Transfer Agent) cluster topology — Figure 7 of the paper.
//
//   RoadRunner -> [two 10GigE trunks] -> 10 FTA nodes -> [FC4 SAN] ->
//   archive GPFS disk (NSD servers) + 24 LTO-4 tape drives
//
// The scratch parallel file system (Panasas stand-in) hangs off the same
// trunks.  Every component with finite bandwidth is a FlowNetwork pool:
// per-node NICs and HBAs, the two trunks, the SAN fabric, and one pool per
// NSD disk server on each file system.  Path-builder methods assemble the
// pool list a given transfer must traverse; the HSM gets its Fabric from
// here.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "hsm/fabric.hpp"
#include "pfs/filesystem.hpp"
#include "simcore/flow_network.hpp"
#include "tape/drive.hpp"

namespace cpa::cluster {

using tape::NodeId;

struct ClusterConfig {
  unsigned fta_nodes = 10;
  /// Per-node 10-gigabit Ethernet NIC.
  double node_nic_bps = 1250.0 * 1e6;
  /// Site trunks between the scratch file system and the FTA cluster
  /// ("Two 10-Gigabit Ethernet links were used", Sec 5.1).
  unsigned trunk_count = 2;
  double trunk_bps = 1250.0 * 1e6;
  /// Per-node FC4 HBA ("Each of these machines has a fiber channel card
  /// (FC4)", Sec 4.3.1).
  double node_hba_bps = 400.0 * 1e6;
  /// Shared SAN fabric capacity.
  double san_bps = 8000.0 * 1e6;
  /// Per-NSD-server bandwidth on the archive file system (5 disk nodes /
  /// 100 TB of fast FC disk).
  double archive_nsd_bps = 500.0 * 1e6;
  /// Per-NSD bandwidth on the scratch file system (Panasas shelves).
  double scratch_nsd_bps = 400.0 * 1e6;
};

class Cluster {
 public:
  /// Builds pools for the given file systems.  `scratch` may equal
  /// `archive` in single-file-system setups (pools are built once per
  /// distinct file system).
  Cluster(sim::FlowNetwork& net, ClusterConfig cfg, pfs::FileSystem& archive,
          pfs::FileSystem& scratch);

  [[nodiscard]] const ClusterConfig& config() const { return cfg_; }
  [[nodiscard]] unsigned node_count() const { return cfg_.fta_nodes; }

  // --- raw pools -------------------------------------------------------------
  [[nodiscard]] sim::PoolId node_nic(NodeId n) const { return nics_.at(n); }
  [[nodiscard]] sim::PoolId node_hba(NodeId n) const { return hbas_.at(n); }
  [[nodiscard]] sim::PoolId trunk_for(NodeId n) const {
    return trunks_.at(n % trunks_.size());
  }
  [[nodiscard]] sim::PoolId san() const { return san_; }

  // --- path builders -----------------------------------------------------------
  /// Pools a read/write of file `path` [offset, offset+len) on `fs`
  /// touches on the disk side (its NSD servers).
  [[nodiscard]] std::vector<sim::PathLeg> disk_path(const pfs::FileSystem& fs,
                                                   const std::string& path,
                                                   std::uint64_t offset,
                                                   std::uint64_t len) const;

  /// Full path for a PFTool copy through node `n`: source NSDs -> trunk ->
  /// node NIC (network side) -> node HBA -> SAN -> destination NSDs.
  [[nodiscard]] std::vector<sim::PathLeg> copy_path(
      NodeId n, const pfs::FileSystem& src_fs, const std::string& src_path,
      const pfs::FileSystem& dst_fs, const std::string& dst_path,
      std::uint64_t offset, std::uint64_t len) const;

  /// The HSM's view of this topology (archive disk + SAN/LAN legs).
  [[nodiscard]] hsm::Fabric fabric() const;

  // --- LoadManager feed (Sec 4.1.2 item 1) -------------------------------------
  void add_load(NodeId n, double amount = 1.0);
  void remove_load(NodeId n, double amount = 1.0);
  [[nodiscard]] double load(NodeId n) const { return loads_.at(n); }
  /// Machine list sorted ascending by load (ties by node id) — "sorting
  /// available MPI machine list in ascending order based on current
  /// machine CPU workload".  Down nodes are excluded; if every node is
  /// down the full list is returned so callers always have a target.
  [[nodiscard]] std::vector<NodeId> machine_list() const;

  // --- fault injection: FTA node crashes ---------------------------------------
  /// Takes node `n` down (crash) or brings it back.  State only: killing
  /// in-flight work on the node is the listeners' job (PFTool jobs
  /// register one and abort/re-pin their workers).
  void set_node_down(NodeId n, bool down);
  [[nodiscard]] bool node_down(NodeId n) const { return down_.at(n); }
  [[nodiscard]] unsigned nodes_up() const;

  /// Registers a callback fired after every node state change.  Returns a
  /// token for remove_node_listener.  Listener order is registration
  /// order (deterministic).
  std::uint64_t add_node_listener(std::function<void(NodeId, bool down)> fn);
  void remove_node_listener(std::uint64_t token);

 private:
  [[nodiscard]] const std::vector<sim::PoolId>& nsd_pools_for(
      const pfs::FileSystem& fs) const;

  ClusterConfig cfg_;
  std::vector<sim::PoolId> nics_;
  std::vector<sim::PoolId> hbas_;
  std::vector<sim::PoolId> trunks_;
  sim::PoolId san_;
  const pfs::FileSystem* archive_;
  const pfs::FileSystem* scratch_;
  std::vector<sim::PoolId> archive_nsds_;
  std::vector<sim::PoolId> scratch_nsds_;
  std::vector<double> loads_;
  std::vector<bool> down_;
  // std::map: stable iteration order for deterministic notification.
  std::map<std::uint64_t, std::function<void(NodeId, bool)>> node_listeners_;
  std::uint64_t next_listener_token_ = 1;
};

}  // namespace cpa::cluster
