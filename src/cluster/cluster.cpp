#include "cluster/cluster.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>

namespace cpa::cluster {

Cluster::Cluster(sim::FlowNetwork& net, ClusterConfig cfg,
                 pfs::FileSystem& archive, pfs::FileSystem& scratch)
    : cfg_(cfg), archive_(&archive), scratch_(&scratch) {
  assert(cfg_.fta_nodes > 0 && cfg_.trunk_count > 0);
  for (unsigned n = 0; n < cfg_.fta_nodes; ++n) {
    nics_.push_back(net.add_pool("fta" + std::to_string(n) + ".nic",
                                 cfg_.node_nic_bps));
    hbas_.push_back(net.add_pool("fta" + std::to_string(n) + ".hba",
                                 cfg_.node_hba_bps));
  }
  for (unsigned t = 0; t < cfg_.trunk_count; ++t) {
    trunks_.push_back(net.add_pool("trunk" + std::to_string(t), cfg_.trunk_bps));
  }
  san_ = net.add_pool("san", cfg_.san_bps);
  for (unsigned i = 0; i < archive.total_nsds(); ++i) {
    archive_nsds_.push_back(net.add_pool(
        archive.name() + ".nsd" + std::to_string(i), cfg_.archive_nsd_bps));
  }
  if (&scratch != &archive) {
    for (unsigned i = 0; i < scratch.total_nsds(); ++i) {
      scratch_nsds_.push_back(net.add_pool(
          scratch.name() + ".nsd" + std::to_string(i), cfg_.scratch_nsd_bps));
    }
  }
  loads_.assign(cfg_.fta_nodes, 0.0);
  down_.assign(cfg_.fta_nodes, false);
}

const std::vector<sim::PoolId>& Cluster::nsd_pools_for(
    const pfs::FileSystem& fs) const {
  if (&fs == archive_) return archive_nsds_;
  assert(&fs == scratch_ && "file system not wired into this cluster");
  return scratch_nsds_.empty() ? archive_nsds_ : scratch_nsds_;
}

std::vector<sim::PathLeg> Cluster::disk_path(const pfs::FileSystem& fs,
                                             const std::string& path,
                                             std::uint64_t offset,
                                             std::uint64_t len) const {
  const auto& pools = nsd_pools_for(fs);
  const std::vector<unsigned> nsds = fs.stripe_nsds(path, offset, len);
  std::vector<sim::PathLeg> out;
  if (nsds.empty()) return out;
  // A transfer striped over N servers loads each with 1/N of its rate.
  const double weight = 1.0 / static_cast<double>(nsds.size());
  for (const unsigned nsd : nsds) {
    if (nsd < pools.size()) out.emplace_back(pools[nsd], weight);
  }
  return out;
}

std::vector<sim::PathLeg> Cluster::copy_path(
    NodeId n, const pfs::FileSystem& src_fs, const std::string& src_path,
    const pfs::FileSystem& dst_fs, const std::string& dst_path,
    std::uint64_t offset, std::uint64_t len) const {
  std::vector<sim::PathLeg> out = disk_path(src_fs, src_path, offset, len);
  // Network leg: the scratch file system is reached over the site trunks
  // through the node's NIC; the archive disk is SAN-attached via the HBA.
  out.emplace_back(trunk_for(n));
  out.emplace_back(node_nic(n));
  out.emplace_back(node_hba(n));
  out.emplace_back(san_);
  for (const sim::PathLeg& leg : disk_path(dst_fs, dst_path, offset, len)) {
    out.push_back(leg);
  }
  return out;
}

hsm::Fabric Cluster::fabric() const {
  hsm::Fabric f;
  f.disk_path = [this](const std::string& path, std::uint64_t off,
                       std::uint64_t len) {
    return disk_path(*archive_, path, off, len);
  };
  f.san_path = [this](tape::NodeId n) {
    return std::vector<sim::PathLeg>{node_hba(n % cfg_.fta_nodes), san_};
  };
  f.lan_path = [this](tape::NodeId n) {
    return std::vector<sim::PathLeg>{node_nic(n % cfg_.fta_nodes),
                                     trunk_for(n % cfg_.fta_nodes)};
  };
  return f;
}

void Cluster::add_load(NodeId n, double amount) {
  loads_.at(n) += amount;
}

void Cluster::remove_load(NodeId n, double amount) {
  double& l = loads_.at(n);
  l = l > amount ? l - amount : 0.0;
}

std::vector<NodeId> Cluster::machine_list() const {
  std::vector<NodeId> nodes;
  nodes.reserve(loads_.size());
  for (NodeId n = 0; n < loads_.size(); ++n) {
    if (!down_[n]) nodes.push_back(n);
  }
  if (nodes.empty()) {
    // Total outage: hand back every node so callers still have a target
    // to schedule (and fail) against rather than an empty list.
    nodes.resize(loads_.size());
    std::iota(nodes.begin(), nodes.end(), NodeId{0});
  }
  std::stable_sort(nodes.begin(), nodes.end(), [this](NodeId a, NodeId b) {
    return loads_[a] < loads_[b];
  });
  return nodes;
}

void Cluster::set_node_down(NodeId n, bool down) {
  if (down_.at(n) == down) return;
  down_[n] = down;
  if (down) loads_[n] = 0.0;  // the crash takes its workload with it
  // Copy before notifying: listeners may (de)register during the walk.
  std::vector<std::function<void(NodeId, bool)>> fns;
  fns.reserve(node_listeners_.size());
  for (const auto& [token, fn] : node_listeners_) fns.push_back(fn);
  for (const auto& fn : fns) fn(n, down);
}

unsigned Cluster::nodes_up() const {
  unsigned up = 0;
  for (const bool d : down_) {
    if (!d) ++up;
  }
  return up;
}

std::uint64_t Cluster::add_node_listener(
    std::function<void(NodeId, bool down)> fn) {
  const std::uint64_t token = next_listener_token_++;
  node_listeners_.emplace(token, std::move(fn));
  return token;
}

void Cluster::remove_node_listener(std::uint64_t token) {
  node_listeners_.erase(token);
}

}  // namespace cpa::cluster
