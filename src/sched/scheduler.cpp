#include "sched/scheduler.hpp"

#include <algorithm>
#include <cassert>

namespace cpa::sched {

AdmissionScheduler::AdmissionScheduler(sim::Simulation& sim,
                                       sim::FlowNetwork& net,
                                       obs::Observer& obs, SchedConfig cfg,
                                       double total_pfs_bps)
    : sim_(sim),
      net_(net),
      obs_(obs),
      cfg_(std::move(cfg)),
      total_pfs_bps_(total_pfs_bps) {
  if (cfg_.max_running_jobs == 0) cfg_.max_running_jobs = 1;
}

const TenantQuota& AdmissionScheduler::quota(const std::string& tenant) const {
  const auto it = cfg_.tenants.find(tenant);
  return it == cfg_.tenants.end() ? cfg_.default_quota : it->second;
}

unsigned AdmissionScheduler::effective_priority(QosClass qos,
                                                sim::Tick enqueued) const {
  const sim::Tick waited = sim_.now() > enqueued ? sim_.now() - enqueued : 0;
  const sim::Tick step = cfg_.aging_step > 0 ? cfg_.aging_step : 1;
  const auto boost = static_cast<unsigned>(
      std::min<sim::Tick>(waited / step, cfg_.aging_max_boost));
  return base_priority(qos) + boost;
}

AdmissionScheduler::Offer AdmissionScheduler::offer(std::uint64_t job_id,
                                                    const std::string& tenant,
                                                    QosClass qos) {
  obs_.metrics().counter("sched.submitted").inc();
  if (queue_.size() >= cfg_.max_queue) {
    obs_.metrics().counter("sched.rejected").inc();
    return Offer::Rejected;
  }
  QueuedJob j;
  j.id = job_id;
  j.tenant = tenant;
  j.qos = qos;
  j.enqueued = sim_.now();
  j.seq = next_seq_++;
  queue_.push_back(std::move(j));
  dispatch();
  obs_.metrics().gauge("sched.queued").set(static_cast<double>(queue_.size()));
  for (const QueuedJob& q : queue_) {
    if (q.id == job_id) return Offer::Queued;
  }
  return Offer::Admitted;
}

void AdmissionScheduler::dispatch() {
  while (running_total_ < cfg_.max_running_jobs && !queue_.empty()) {
    // Best eligible job: highest effective priority (class + aging), then
    // lowest tenant fair-share clock, then arrival order.  Tenants at
    // their running cap are skipped, never head-block.
    std::size_t best = static_cast<std::size_t>(-1);
    unsigned best_prio = 0;
    double best_vtime = 0.0;
    for (std::size_t i = 0; i < queue_.size(); ++i) {
      const QueuedJob& q = queue_[i];
      const TenantQuota& quo = quota(q.tenant);
      const TenantState& ts = tenants_[q.tenant];
      if (quo.max_running_jobs != 0 && ts.running >= quo.max_running_jobs) {
        continue;
      }
      const unsigned prio = effective_priority(q.qos, q.enqueued);
      const double vt = ts.vtime;
      // Queue order is arrival order, so "first seen wins ties" is the
      // seq tiebreak.
      if (best == static_cast<std::size_t>(-1) || prio > best_prio ||
          (prio == best_prio && vt < best_vtime)) {
        best = i;
        best_prio = prio;
        best_vtime = vt;
      }
    }
    if (best == static_cast<std::size_t>(-1)) return;
    QueuedJob job = std::move(queue_[best]);
    queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(best));
    admit(std::move(job));
  }
}

void AdmissionScheduler::admit(QueuedJob job) {
  TenantState& ts = state(job.tenant);
  const TenantQuota& quo = quota(job.tenant);
  ++ts.running;
  ++running_total_;
  // Weighted fair share: each admission advances the tenant's clock by
  // 1/weight; re-entering tenants start at the system clock (no banked
  // credit from idle periods).
  ts.vtime = std::max(ts.vtime, vnow_);
  vnow_ = ts.vtime;
  ts.vtime += 1.0 / std::max(quo.weight, 1e-9);
  running_jobs_[job.id] = job.tenant;
  admission_log_.push_back(job.id);

  const sim::Tick waited = sim_.now() - job.enqueued;
  max_queue_wait_ = std::max(max_queue_wait_, waited);
  obs_.metrics().counter("sched.admitted").inc();
  obs_.metrics()
      .series("sched.queue_wait_seconds")
      .add(sim::to_seconds(waited));
  obs_.metrics().gauge("sched.queued").set(static_cast<double>(queue_.size()));
  // Launch through the event queue: admission decisions stay reentrancy-
  // free (job_finished -> dispatch -> launcher -> submit would otherwise
  // nest arbitrarily deep).
  if (launcher_) {
    sim_.after(0, [this, id = job.id] { launcher_(id); });
  }
}

void AdmissionScheduler::job_finished(std::uint64_t job_id) {
  const auto it = running_jobs_.find(job_id);
  if (it == running_jobs_.end()) return;  // never admitted (or double call)
  TenantState& ts = state(it->second);
  if (ts.running > 0) --ts.running;
  if (running_total_ > 0) --running_total_;
  running_jobs_.erase(it);
  dispatch();
}

bool AdmissionScheduler::cancel(std::uint64_t job_id) {
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    if (it->id == job_id) {
      queue_.erase(it);
      obs_.metrics().counter("sched.cancelled").inc();
      obs_.metrics().gauge("sched.queued").set(
          static_cast<double>(queue_.size()));
      return true;
    }
  }
  return false;
}

std::vector<sim::PathLeg> AdmissionScheduler::shaper_legs(
    const std::string& tenant) {
  const TenantQuota& quo = quota(tenant);
  if (quo.pfs_bw_fraction >= 1.0 || quo.pfs_bw_fraction <= 0.0 ||
      total_pfs_bps_ <= 0.0) {
    return {};
  }
  TenantState& ts = state(tenant);
  if (!ts.shaper_made) {
    ts.shaper = net_.add_pool("sched.bw." + tenant,
                              quo.pfs_bw_fraction * total_pfs_bps_);
    ts.shaper_made = true;
  }
  return {sim::PathLeg(ts.shaper)};
}

bool AdmissionScheduler::may_hold(const tape::DriveRequest& req) {
  if (req.tenant.empty()) return true;  // unmanaged internal work
  const TenantQuota& quo = quota(req.tenant);
  if (quo.max_drives == 0) return true;
  return tenants_[req.tenant].drives < quo.max_drives;
}

std::size_t AdmissionScheduler::pick_waiter(
    const std::vector<tape::DriveRequest>& waiters) {
  std::size_t best = kNone;
  unsigned best_prio = 0;
  for (std::size_t i = 0; i < waiters.size(); ++i) {
    const tape::DriveRequest& w = waiters[i];
    if (!may_hold(w)) continue;
    const unsigned prio = effective_priority(w.qos, w.enqueued);
    // waiters is FIFO-ordered, so the first hit at a given priority is
    // the oldest request in that priority band.
    if (best == kNone || prio > best_prio) {
      best = i;
      best_prio = prio;
    }
  }
  if (best != kNone && best != 0) {
    // An Interactive (or aged) request overtook the queue head — the
    // batch-boundary preemption the Sec 6.2 fix needs.
    obs_.metrics().counter("sched.drive_queue_jumps").inc();
  }
  return best;
}

void AdmissionScheduler::drive_granted(const tape::DriveRequest& req) {
  obs_.metrics().counter("sched.drive_grants").inc();
  if (!req.tenant.empty()) ++tenants_[req.tenant].drives;
}

void AdmissionScheduler::drive_released(const tape::DriveRequest& req) {
  if (req.tenant.empty()) return;
  TenantState& ts = tenants_[req.tenant];
  if (ts.drives > 0) --ts.drives;
}

unsigned AdmissionScheduler::tenant_running(const std::string& tenant) const {
  const auto it = tenants_.find(tenant);
  return it == tenants_.end() ? 0 : it->second.running;
}

unsigned AdmissionScheduler::tenant_drives(const std::string& tenant) const {
  const auto it = tenants_.find(tenant);
  return it == tenants_.end() ? 0 : it->second.drives;
}

}  // namespace cpa::sched
