// Multi-tenant fair-share admission control.
//
// The archive's submit(JobSpec) used to launch every job immediately; the
// only arbitration anywhere was the tape library's drive FIFO, so one bulk
// campaign would bury interactive recalls (the Sec 6.2 story at job
// granularity).  The AdmissionScheduler puts an admission queue in front
// of job launch and teaches the two contended resources about tenants:
//
//   * admission: a bounded queue drained by strict QoS priority with
//     aging (starvation-free), weighted fair-share between tenants inside
//     a class (per-tenant virtual time, +1/weight per admission), under a
//     global running-job cap and per-tenant running caps;
//   * tape drives: the scheduler doubles as the library's DriveArbiter —
//     idle drives go to the highest-priority waiter whose tenant is below
//     its drive quota, so Interactive recalls overtake queued Bulk batches
//     at batch boundaries (a holder is never preempted mid-stream);
//   * PFS bandwidth: tenants capped below 1.0 of the trunk capacity get a
//     per-tenant shaper pool; their data flows carry one extra PathLeg
//     through it, and the flow network's max-min water-filling does the
//     rest (no kernel changes, so the differential oracle still holds).
//
// Everything is deterministic in virtual time: ties break by arrival
// sequence number, never by wall-clock or address order.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "obs/observer.hpp"
#include "sched/qos.hpp"
#include "simcore/flow_network.hpp"
#include "simcore/simulation.hpp"
#include "tape/library.hpp"

namespace cpa::sched {

/// Per-tenant resource limits.  Zero means "unlimited" for the integer
/// caps; pfs_bw_fraction >= 1 means "unshaped".
struct TenantQuota {
  /// Fair-share weight inside a QoS class (admissions are proportional).
  double weight = 1.0;
  /// Concurrent tape drives this tenant's work may hold (0 = unlimited).
  unsigned max_drives = 0;
  /// Concurrently running jobs (0 = unlimited, the global cap still binds).
  unsigned max_running_jobs = 0;
  /// Fraction of total PFS trunk bandwidth this tenant's flows may use.
  double pfs_bw_fraction = 1.0;

  TenantQuota& with_weight(double w) {
    weight = w;
    return *this;
  }
  TenantQuota& with_max_drives(unsigned n) {
    max_drives = n;
    return *this;
  }
  TenantQuota& with_max_running_jobs(unsigned n) {
    max_running_jobs = n;
    return *this;
  }
  TenantQuota& with_pfs_bw_fraction(double f) {
    pfs_bw_fraction = f;
    return *this;
  }
};

struct SchedConfig {
  /// Off by default: submit() launches immediately and the library stays
  /// FIFO, preserving the pre-scheduler system bit-for-bit.
  bool enabled = false;
  /// Bounded admission queue: submits beyond this are Rejected outright
  /// (backpressure the caller can see, instead of unbounded latency).
  std::size_t max_queue = 256;
  /// Global concurrently-running-jobs cap (admission slots).
  unsigned max_running_jobs = 8;
  /// A queued job gains one priority level per `aging_step` of waiting,
  /// up to `aging_max_boost` levels.  Since the widest class gap is
  /// base_priority(Interactive) - base_priority(Maintenance) = 2, the
  /// default boost of 3 guarantees any job outranks every fresher submit
  /// after aging_step * 3 of queueing — the starvation bound.
  sim::Tick aging_step = sim::minutes(2);
  unsigned aging_max_boost = 3;
  /// Quota for tenants not named in `tenants`.
  TenantQuota default_quota;
  std::map<std::string, TenantQuota> tenants;

  SchedConfig& with_enabled(bool on = true) {
    enabled = on;
    return *this;
  }
  SchedConfig& with_max_queue(std::size_t n) {
    max_queue = n;
    return *this;
  }
  SchedConfig& with_max_running_jobs(unsigned n) {
    max_running_jobs = n;
    return *this;
  }
  SchedConfig& with_aging_step(sim::Tick t) {
    aging_step = t;
    return *this;
  }
  SchedConfig& with_aging_max_boost(unsigned n) {
    aging_max_boost = n;
    return *this;
  }
  SchedConfig& with_default_quota(TenantQuota q) {
    default_quota = q;
    return *this;
  }
  SchedConfig& with_tenant(const std::string& name, TenantQuota q) {
    tenants[name] = q;
    return *this;
  }
};

/// The admission scheduler.  One per CotsParallelArchive (constructed only
/// when SchedConfig::enabled); also installed as the tape library's
/// DriveArbiter and consulted for per-tenant flow shaping.
class AdmissionScheduler final : public tape::DriveArbiter {
 public:
  /// `total_pfs_bps` anchors pfs_bw_fraction (the trunks' aggregate rate).
  AdmissionScheduler(sim::Simulation& sim, sim::FlowNetwork& net,
                     obs::Observer& obs, SchedConfig cfg, double total_pfs_bps);

  [[nodiscard]] const SchedConfig& config() const { return cfg_; }

  // --- job admission -------------------------------------------------------
  enum class Offer : std::uint8_t {
    Admitted,  // left the queue already; the launcher fires at now+0
    Queued,    // waiting for a slot / quota headroom
    Rejected,  // admission queue full (bounded backpressure)
  };
  /// Offers a job; Admitted/Queued jobs are launched (later) through the
  /// launcher callback — including those admitted on the spot, so launch
  /// timing is uniform.
  Offer offer(std::uint64_t job_id, const std::string& tenant, QosClass qos);
  /// A running job reached a terminal state: frees its slot and admits
  /// whatever became eligible.
  void job_finished(std::uint64_t job_id);
  /// Removes a still-queued job; false once admitted (or unknown).
  bool cancel(std::uint64_t job_id);
  void set_launcher(std::function<void(std::uint64_t)> fn) {
    launcher_ = std::move(fn);
  }

  // --- flow shaping --------------------------------------------------------
  /// Extra path legs a tenant's data flows must traverse: the tenant's
  /// shaper pool (created lazily), or empty when the tenant is unshaped.
  std::vector<sim::PathLeg> shaper_legs(const std::string& tenant);

  // --- DriveArbiter --------------------------------------------------------
  bool may_hold(const tape::DriveRequest& req) override;
  std::size_t pick_waiter(const std::vector<tape::DriveRequest>& waiters) override;
  void drive_granted(const tape::DriveRequest& req) override;
  void drive_released(const tape::DriveRequest& req) override;

  // --- inspection ----------------------------------------------------------
  [[nodiscard]] std::size_t queued() const { return queue_.size(); }
  [[nodiscard]] unsigned running() const { return running_total_; }
  [[nodiscard]] const TenantQuota& quota(const std::string& tenant) const;
  /// Job ids in admission order (for determinism tests).
  [[nodiscard]] const std::vector<std::uint64_t>& admission_log() const {
    return admission_log_;
  }
  /// Longest queue wait among jobs admitted so far.
  [[nodiscard]] sim::Tick max_queue_wait() const { return max_queue_wait_; }
  /// After this much queueing a job outranks every fresher submit; its
  /// remaining wait is bounded by slot turnover, not by other arrivals.
  [[nodiscard]] sim::Tick aging_bound() const {
    return cfg_.aging_step * static_cast<sim::Tick>(cfg_.aging_max_boost);
  }
  [[nodiscard]] unsigned tenant_running(const std::string& tenant) const;
  [[nodiscard]] unsigned tenant_drives(const std::string& tenant) const;

 private:
  struct QueuedJob {
    std::uint64_t id = 0;
    std::string tenant;
    QosClass qos = QosClass::Bulk;
    sim::Tick enqueued = 0;
    std::uint64_t seq = 0;
  };
  struct TenantState {
    double vtime = 0.0;  // weighted admissions so far (fair-share clock)
    unsigned running = 0;
    unsigned drives = 0;
    sim::PoolId shaper{};
    bool shaper_made = false;
  };

  TenantState& state(const std::string& tenant) { return tenants_[tenant]; }
  /// Priority now: class base + aging boost for waiting since `enqueued`.
  [[nodiscard]] unsigned effective_priority(QosClass qos,
                                            sim::Tick enqueued) const;
  /// Admits eligible queued jobs (best first) while slots allow.
  void dispatch();
  void admit(QueuedJob job);

  sim::Simulation& sim_;
  sim::FlowNetwork& net_;
  obs::Observer& obs_;
  SchedConfig cfg_;
  double total_pfs_bps_ = 0.0;
  std::function<void(std::uint64_t)> launcher_;

  std::deque<QueuedJob> queue_;
  std::map<std::string, TenantState> tenants_;
  std::map<std::uint64_t, std::string> running_jobs_;  // id -> tenant
  unsigned running_total_ = 0;
  std::uint64_t next_seq_ = 0;
  /// System virtual time: the fair-share clock only moves forward, so a
  /// long-idle tenant re-enters at the current clock instead of replaying
  /// banked credit and starving everyone else.
  double vnow_ = 0.0;
  std::vector<std::uint64_t> admission_log_;
  sim::Tick max_queue_wait_ = 0;
};

}  // namespace cpa::sched
