// Tenant / quality-of-service vocabulary shared across layers.
//
// The paper's operational lessons (Sec 6.2 tape thrashing, Sec 6.4 single
// server saturation) all reduce to *unarbitrated* contention: every user's
// job hits the drive FIFO and the trunks directly.  The admission layer
// (sched/scheduler.hpp) arbitrates in terms of the types below; they live
// in their own leaf header so the tape library and the HSM can tag work
// with a tenant and a class without depending on the scheduler itself.
#pragma once

#include <cstdint>
#include <string>

namespace cpa::sched {

/// Service class of one piece of work.  Classes are strict priorities at
/// every arbitration point (admission, drive grants), softened by aging so
/// lower classes cannot starve (see SchedConfig::aging_step).
enum class QosClass : std::uint8_t {
  Interactive,  // a user is waiting: small recalls, pfls — lowest latency
  Bulk,         // throughput work: campaign archives, batch restores
  Maintenance,  // background upkeep: scrub, reclamation, reconcile
};

[[nodiscard]] constexpr const char* to_string(QosClass q) {
  switch (q) {
    case QosClass::Interactive: return "interactive";
    case QosClass::Bulk: return "bulk";
    case QosClass::Maintenance: return "maintenance";
  }
  return "?";
}

/// Base priority of a class before aging (higher runs first).
[[nodiscard]] constexpr unsigned base_priority(QosClass q) {
  switch (q) {
    case QosClass::Interactive: return 2;
    case QosClass::Bulk: return 1;
    case QosClass::Maintenance: return 0;
  }
  return 0;
}

/// Who a piece of backend work (a migrate batch, a recall) runs for.  The
/// empty tenant means "unmanaged": internal plumbing that predates the
/// scheduler, exempt from quotas but still ordered by its class.
struct WorkClass {
  std::string tenant = "default";
  QosClass qos = QosClass::Bulk;
};

}  // namespace cpa::sched
