#include "pfs/glob.hpp"

namespace cpa::pfs {

bool glob_match(std::string_view pattern, std::string_view text) {
  // Iterative wildcard match with backtracking over the last '*'.
  std::size_t p = 0, t = 0;
  std::size_t star = std::string_view::npos, star_t = 0;
  while (t < text.size()) {
    if (p < pattern.size() && (pattern[p] == '?' || pattern[p] == text[t])) {
      ++p;
      ++t;
    } else if (p < pattern.size() && pattern[p] == '*') {
      star = p++;
      star_t = t;
    } else if (star != std::string_view::npos) {
      p = star + 1;
      t = ++star_t;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '*') ++p;
  return p == pattern.size();
}

}  // namespace cpa::pfs
