// GPFS surrogate: a striped, pool-aware parallel file system model.
//
// What is modeled (because the archive's behaviour depends on it):
//   * a POSIX-like namespace with directories, rename, unlink;
//   * GPFS file ids (inode + generation) for the synchronous deleter;
//   * storage pools with capacity accounting and placement (Sec 4.2.1:
//     "a fast fiber channel disk storage pool where all files are
//     initially written and a 'slow' disk pool used to store small files");
//   * DMAPI data residency (resident / premigrated / migrated) with stub
//     files, driving HSM migrate/recall (Sec 4.2.2);
//   * block striping across NSD servers, so the data path can be charged
//     against per-server bandwidth pools;
//   * a metadata scan-rate model calibrated to "GPFS can scan one million
//     inodes in ten minutes" (Sec 4.2.1).
//
// What is NOT stored: file bytes.  Files carry a 64-bit content tag that
// copy operations propagate and compare operations check; this is
// sufficient for every integrity property the paper's tools exercise
// (pfcm byte comparison, restart resume verification, corruption tests)
// without hosting terabytes.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "pfs/common.hpp"
#include "simcore/simulation.hpp"

namespace cpa::pfs {

struct PoolConfig {
  std::string name;
  std::uint64_t capacity_bytes = 0;
  unsigned nsd_count = 1;       // disk servers backing the pool
  bool is_external = false;     // GPFS 3.2 "external pool" (tape side)
};

struct PoolInfo {
  PoolConfig config;
  std::uint64_t used_bytes = 0;
  [[nodiscard]] std::uint64_t free_bytes() const {
    return config.capacity_bytes > used_bytes
               ? config.capacity_bytes - used_bytes
               : 0;
  }
};

struct FsConfig {
  std::string name = "gpfs";
  std::uint64_t block_size = 4ULL << 20;  // striping granularity
  std::vector<PoolConfig> pools;          // pools[0] = default placement
  /// Inodes per second one policy-scan stream evaluates (1e6 / 600 s).
  double inode_scan_rate = 1e6 / 600.0;
};

struct InodeAttrs {
  FileId fid;
  FileKind kind = FileKind::Regular;
  std::uint64_t size = 0;
  sim::Tick atime = 0;
  sim::Tick mtime = 0;
  sim::Tick ctime = 0;
  std::string pool;
  DmapiState dmapi = DmapiState::Resident;
  std::uint64_t content_tag = 0;
};

struct DirEntry {
  std::string name;
  InodeId inode = kInvalidInode;
  FileKind kind = FileKind::Regular;
};

/// Receives DMAPI-style data events.  The HSM registers itself here.
class DmapiListener {
 public:
  virtual ~DmapiListener() = default;
  /// A read touched a migrated file's data (auto-recall trigger).
  virtual void on_read_offline(const std::string& path, FileId fid) = 0;
  /// A managed file's data was destroyed (unlink or truncate) — the tape
  /// copy is now orphaned unless the handler deletes it (Sec 4.2.6).
  virtual void on_managed_data_destroyed(const std::string& path, FileId fid) = 0;
};

class FileSystem {
 public:
  FileSystem(sim::Simulation& sim, FsConfig cfg);

  [[nodiscard]] const FsConfig& config() const { return cfg_; }
  [[nodiscard]] const std::string& name() const { return cfg_.name; }

  // --- namespace -----------------------------------------------------------
  Result<InodeId> mkdir(const std::string& path);
  /// mkdir -p: creates all missing components.
  Errc mkdirs(const std::string& path);
  /// Creates an empty regular file.  `pool_hint` overrides placement; empty
  /// means "apply placement policy / default pool".
  Result<FileId> create(const std::string& path, const std::string& pool_hint = "");
  [[nodiscard]] Result<InodeAttrs> stat(const std::string& path) const;
  [[nodiscard]] Result<std::string> path_of(FileId fid) const;
  [[nodiscard]] Result<std::vector<DirEntry>> readdir(const std::string& path) const;
  Errc unlink(const std::string& path);
  Errc rmdir(const std::string& path);
  /// Renames a file or directory.  The destination must not exist.
  Errc rename(const std::string& from, const std::string& to);
  [[nodiscard]] bool exists(const std::string& path) const;

  // --- data (modeled) ------------------------------------------------------
  /// Replaces content: sets size and content tag, charging pool capacity.
  /// Overwriting a premigrated/migrated file destroys the managed data
  /// (fires on_managed_data_destroyed) and makes the file resident.
  Errc write_all(const std::string& path, std::uint64_t size, std::uint64_t content_tag);
  Errc truncate(const std::string& path, std::uint64_t new_size);
  /// Reads the content tag; Errc::Offline if the data is on tape.
  /// (The caller — PFTool or the NFS layer — must recall first.)
  [[nodiscard]] Result<std::uint64_t> read_tag(const std::string& path) const;

  // --- DMAPI / HSM ---------------------------------------------------------
  Errc premigrate(const std::string& path);    // resident    -> premigrated
  Errc punch(const std::string& path);         // premigrated -> migrated (frees disk)
  Errc mark_recalled(const std::string& path); // migrated    -> premigrated (re-charges disk)
  Errc make_resident(const std::string& path); // premigrated -> resident
  void set_dmapi_listener(DmapiListener* listener) { dmapi_ = listener; }

  // --- pools ---------------------------------------------------------------
  [[nodiscard]] Result<PoolInfo> pool(const std::string& name) const;
  [[nodiscard]] std::vector<PoolInfo> pools() const;
  /// ILM migration between disk pools; moves the charged bytes.
  Errc move_to_pool(const std::string& path, const std::string& pool);

  // --- striping ------------------------------------------------------------
  /// Global NSD indices (across all pools, in declaration order) serving
  /// the given byte range of a file.  Blocks are striped round-robin over
  /// the file's pool's NSDs starting at a per-inode offset.
  [[nodiscard]] std::vector<unsigned> stripe_nsds(const std::string& path,
                                                  std::uint64_t offset,
                                                  std::uint64_t len) const;
  /// Global index of the first NSD of a pool.
  [[nodiscard]] unsigned pool_nsd_base(const std::string& pool) const;
  [[nodiscard]] unsigned total_nsds() const { return total_nsds_; }

  // --- scans ---------------------------------------------------------------
  /// Visits every inode (files and directories) in inode order with its
  /// full path.  Pure traversal; pair with `scan_duration` for timing.
  void for_each_inode(
      const std::function<void(const std::string& path, const InodeAttrs&)>& fn) const;
  /// Virtual time for a policy scan of `inodes` inodes split over
  /// `streams` parallel scan streams (GPFS runs one per node).
  [[nodiscard]] sim::Tick scan_duration(std::uint64_t inodes, unsigned streams) const;

  [[nodiscard]] std::uint64_t total_inodes() const { return inodes_.size(); }
  [[nodiscard]] sim::Simulation& sim() { return sim_; }
  [[nodiscard]] const sim::Simulation& sim() const { return sim_; }

 private:
  struct Inode {
    InodeId id = kInvalidInode;
    std::uint64_t gen = 1;
    FileKind kind = FileKind::Regular;
    std::uint64_t size = 0;
    sim::Tick atime = 0, mtime = 0, ctime = 0;
    unsigned pool_idx = 0;
    DmapiState dmapi = DmapiState::Resident;
    std::uint64_t content_tag = 0;
    // Tree links.
    InodeId parent = kInvalidInode;
    std::string name;                         // entry name in parent
    std::map<std::string, InodeId> children;  // directories only
  };

  [[nodiscard]] const Inode* resolve(const std::string& path) const;
  [[nodiscard]] Inode* resolve(const std::string& path);
  /// Resolves the parent directory of `path`; sets `leaf` to the last
  /// component.  Returns nullptr (with `err`) on failure.
  Inode* resolve_parent(const std::string& path, std::string* leaf, Errc* err);
  [[nodiscard]] InodeAttrs attrs_of(const Inode& n) const;
  [[nodiscard]] std::string rebuild_path(const Inode& n) const;
  [[nodiscard]] int pool_index(const std::string& name) const;
  Errc charge_pool(unsigned pool_idx, std::uint64_t bytes);
  void credit_pool(unsigned pool_idx, std::uint64_t bytes);
  /// Destroys data bytes of a managed file and notifies the listener.
  void destroy_data(Inode& n, const std::string& path);

  sim::Simulation& sim_;
  FsConfig cfg_;
  std::vector<PoolInfo> pools_;
  std::vector<unsigned> pool_nsd_base_;
  unsigned total_nsds_ = 0;
  std::map<InodeId, Inode> inodes_;  // ordered for deterministic scans
  InodeId root_ = kInvalidInode;
  InodeId next_inode_ = 1;
  std::uint64_t next_gen_ = 1;
  DmapiListener* dmapi_ = nullptr;
};

/// Splits an absolute path into components; returns false on malformed
/// input (relative, empty component, "." or "..").
bool split_path(const std::string& path, std::vector<std::string>* parts);

/// Joins a directory path and entry name.
std::string join_path(const std::string& dir, const std::string& name);

/// Returns the parent directory of an absolute path ("/" for "/a").
std::string parent_path(const std::string& path);

/// Returns the last component of an absolute path.
std::string base_name(const std::string& path);

}  // namespace cpa::pfs
