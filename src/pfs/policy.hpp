// ILM policy engine (GPFS-style).
//
// GPFS policies are SQL-ish rules evaluated by a parallel metadata scan.
// The archive uses three kinds (Secs 4.2.1, 4.2.4, 4.2.7):
//   * placement rules    — choose the storage pool at create time
//                          (fast FC pool by default, "slow" pool for small
//                          files);
//   * list rules         — emit candidate file lists (the parallel data
//                          migrator consumes these instead of letting the
//                          policy engine migrate directly);
//   * migrate/delete     — move data between pools / to the external
//                          (tape) pool, or delete (trashcan aging).
//
// Rules carry structured AND-ed conditions rather than free-form lambdas
// so they can be printed, compared, and tested.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/observer.hpp"
#include "pfs/filesystem.hpp"

namespace cpa::pfs {

struct Condition {
  enum class Field : std::uint8_t {
    SizeBytes,    // numeric
    AgeSeconds,   // numeric: now - mtime
    Pool,         // string equality
    PathGlob,     // glob over full path
    Dmapi,        // residency state
  };
  enum class Op : std::uint8_t { Ge, Le, Eq, Ne, Match };

  Field field = Field::SizeBytes;
  Op op = Op::Ge;
  std::uint64_t num = 0;
  std::string str;
  DmapiState state = DmapiState::Resident;

  [[nodiscard]] bool eval(const std::string& path, const InodeAttrs& a,
                          sim::Tick now) const;
  [[nodiscard]] std::string to_string() const;

  // Convenience constructors, e.g. Condition::size_ge(100 * kMB).
  static Condition size_ge(std::uint64_t bytes);
  static Condition size_le(std::uint64_t bytes);
  static Condition age_ge(double seconds);
  static Condition pool_is(std::string pool);
  static Condition path_glob(std::string pattern);
  static Condition dmapi_is(DmapiState s);
  static Condition dmapi_not(DmapiState s);
};

struct Rule {
  enum class Action : std::uint8_t {
    Place,            // target = pool (applies at create)
    MigrateToPool,    // target = destination disk pool
    MigrateExternal,  // target = external pool name (tape side)
    Delete,
    List,             // target = list name
  };

  std::string name;
  Action action = Rule::Action::List;
  std::string target;
  std::vector<Condition> where;  // conjunction; empty = match everything

  [[nodiscard]] bool matches(const std::string& path, const InodeAttrs& a,
                             sim::Tick now) const;
  [[nodiscard]] std::string to_string() const;
};

struct PolicyMatch {
  std::string path;
  InodeAttrs attrs;
};

struct ScanReport {
  /// rule name -> matched files (in inode order).
  std::map<std::string, std::vector<PolicyMatch>> matches;
  std::uint64_t inodes_scanned = 0;
  sim::Tick scan_duration = 0;
};

class PolicyEngine {
 public:
  void add_rule(Rule rule) { rules_.push_back(std::move(rule)); }
  [[nodiscard]] const std::vector<Rule>& rules() const { return rules_; }

  /// Pool for a newly created file: first matching placement rule, or
  /// empty if none (caller falls back to the file system default).
  /// Placement is evaluated before data exists, so size-based conditions
  /// see size 0 — exactly GPFS's create-time limitation.
  [[nodiscard]] std::string placement_pool(const std::string& path,
                                           sim::Tick now) const;

  /// Scans every regular file.  For Migrate/Delete actions the first
  /// matching rule claims the file (GPFS first-match semantics); List
  /// rules each collect independently.  `streams` models the number of
  /// parallel scan processes for the duration estimate.
  [[nodiscard]] ScanReport run_scan(const FileSystem& fs, unsigned streams = 1) const;

  /// Routes pfs.policy_* metrics and scan spans to `obs`.
  void set_observer(obs::Observer& obs) { obs_ = &obs; }

 private:
  std::vector<Rule> rules_;
  obs::Observer* obs_ = &obs::Observer::nil();
};

}  // namespace cpa::pfs
