#include "pfs/filesystem.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

namespace cpa::pfs {

bool split_path(const std::string& path, std::vector<std::string>* parts) {
  parts->clear();
  if (path.empty() || path[0] != '/') return false;
  std::size_t i = 1;
  while (i < path.size()) {
    std::size_t j = path.find('/', i);
    if (j == std::string::npos) j = path.size();
    if (j == i) return false;  // empty component ("//")
    std::string comp = path.substr(i, j - i);
    if (comp == "." || comp == "..") return false;
    parts->push_back(std::move(comp));
    i = j + 1;
  }
  return true;
}

std::string join_path(const std::string& dir, const std::string& name) {
  if (dir.empty() || dir == "/") return "/" + name;
  return dir + "/" + name;
}

std::string parent_path(const std::string& path) {
  const std::size_t pos = path.find_last_of('/');
  if (pos == std::string::npos || pos == 0) return "/";
  return path.substr(0, pos);
}

std::string base_name(const std::string& path) {
  const std::size_t pos = path.find_last_of('/');
  return pos == std::string::npos ? path : path.substr(pos + 1);
}

FileSystem::FileSystem(sim::Simulation& sim, FsConfig cfg)
    : sim_(sim), cfg_(std::move(cfg)) {
  assert(!cfg_.pools.empty() && "a file system needs at least one pool");
  for (const auto& pc : cfg_.pools) {
    pool_nsd_base_.push_back(total_nsds_);
    total_nsds_ += std::max(1u, pc.nsd_count);
    pools_.push_back(PoolInfo{pc, 0});
  }
  // Root directory.
  Inode root;
  root.id = next_inode_++;
  root.gen = next_gen_++;
  root.kind = FileKind::Directory;
  root.ctime = root.mtime = root.atime = sim_.now();
  root_ = root.id;
  inodes_.emplace(root.id, std::move(root));
}

const FileSystem::Inode* FileSystem::resolve(const std::string& path) const {
  std::vector<std::string> parts;
  if (!split_path(path, &parts)) return nullptr;
  const Inode* cur = &inodes_.at(root_);
  for (const auto& comp : parts) {
    if (cur->kind != FileKind::Directory) return nullptr;
    auto it = cur->children.find(comp);
    if (it == cur->children.end()) return nullptr;
    cur = &inodes_.at(it->second);
  }
  return cur;
}

FileSystem::Inode* FileSystem::resolve(const std::string& path) {
  return const_cast<Inode*>(std::as_const(*this).resolve(path));
}

FileSystem::Inode* FileSystem::resolve_parent(const std::string& path,
                                              std::string* leaf, Errc* err) {
  std::vector<std::string> parts;
  if (!split_path(path, &parts) || parts.empty()) {
    *err = Errc::InvalidArgument;
    return nullptr;
  }
  *leaf = parts.back();
  Inode* cur = &inodes_.at(root_);
  for (std::size_t i = 0; i + 1 < parts.size(); ++i) {
    if (cur->kind != FileKind::Directory) {
      *err = Errc::NotADirectory;
      return nullptr;
    }
    auto it = cur->children.find(parts[i]);
    if (it == cur->children.end()) {
      *err = Errc::NotFound;
      return nullptr;
    }
    cur = &inodes_.at(it->second);
  }
  if (cur->kind != FileKind::Directory) {
    *err = Errc::NotADirectory;
    return nullptr;
  }
  *err = Errc::Ok;
  return cur;
}

InodeAttrs FileSystem::attrs_of(const Inode& n) const {
  InodeAttrs a;
  a.fid = FileId{n.id, n.gen};
  a.kind = n.kind;
  a.size = n.size;
  a.atime = n.atime;
  a.mtime = n.mtime;
  a.ctime = n.ctime;
  a.pool = pools_[n.pool_idx].config.name;
  a.dmapi = n.dmapi;
  a.content_tag = n.content_tag;
  return a;
}

std::string FileSystem::rebuild_path(const Inode& n) const {
  if (n.id == root_) return "/";
  std::vector<const std::string*> comps;
  const Inode* cur = &n;
  while (cur->id != root_) {
    comps.push_back(&cur->name);
    cur = &inodes_.at(cur->parent);
  }
  std::string out;
  for (auto it = comps.rbegin(); it != comps.rend(); ++it) {
    out += '/';
    out += **it;
  }
  return out;
}

int FileSystem::pool_index(const std::string& name) const {
  for (std::size_t i = 0; i < pools_.size(); ++i) {
    if (pools_[i].config.name == name) return static_cast<int>(i);
  }
  return -1;
}

Errc FileSystem::charge_pool(unsigned pool_idx, std::uint64_t bytes) {
  PoolInfo& p = pools_[pool_idx];
  if (p.config.capacity_bytes != 0 && p.used_bytes + bytes > p.config.capacity_bytes) {
    return Errc::NoSpace;
  }
  p.used_bytes += bytes;
  return Errc::Ok;
}

void FileSystem::credit_pool(unsigned pool_idx, std::uint64_t bytes) {
  PoolInfo& p = pools_[pool_idx];
  p.used_bytes = p.used_bytes > bytes ? p.used_bytes - bytes : 0;
}

void FileSystem::destroy_data(Inode& n, const std::string& path) {
  const bool managed = n.dmapi != DmapiState::Resident;
  // Migrated stubs hold no disk bytes; others do.
  if (n.dmapi != DmapiState::Migrated) credit_pool(n.pool_idx, n.size);
  if (managed && dmapi_ != nullptr) {
    dmapi_->on_managed_data_destroyed(path, FileId{n.id, n.gen});
  }
  n.dmapi = DmapiState::Resident;
  n.size = 0;
  n.content_tag = 0;
}

Result<InodeId> FileSystem::mkdir(const std::string& path) {
  std::string leaf;
  Errc err = Errc::Ok;
  Inode* parent = resolve_parent(path, &leaf, &err);
  if (parent == nullptr) return err;
  if (parent->children.count(leaf) != 0) return Errc::Exists;
  Inode n;
  n.id = next_inode_++;
  n.gen = next_gen_++;
  n.kind = FileKind::Directory;
  n.atime = n.mtime = n.ctime = sim_.now();
  n.parent = parent->id;
  n.name = leaf;
  const InodeId id = n.id;
  parent->children.emplace(leaf, id);
  parent->mtime = sim_.now();
  inodes_.emplace(id, std::move(n));
  return id;
}

Errc FileSystem::mkdirs(const std::string& path) {
  std::vector<std::string> parts;
  if (!split_path(path, &parts)) return Errc::InvalidArgument;
  std::string cur;
  for (const auto& comp : parts) {
    cur += '/';
    cur += comp;
    const Inode* n = resolve(cur);
    if (n == nullptr) {
      auto r = mkdir(cur);
      if (!r.ok()) return r.error();
    } else if (n->kind != FileKind::Directory) {
      return Errc::NotADirectory;
    }
  }
  return Errc::Ok;
}

Result<FileId> FileSystem::create(const std::string& path,
                                  const std::string& pool_hint) {
  std::string leaf;
  Errc err = Errc::Ok;
  Inode* parent = resolve_parent(path, &leaf, &err);
  if (parent == nullptr) return err;
  if (parent->children.count(leaf) != 0) return Errc::Exists;
  int pidx = 0;
  if (!pool_hint.empty()) {
    pidx = pool_index(pool_hint);
    if (pidx < 0) return Errc::InvalidArgument;
  }
  Inode n;
  n.id = next_inode_++;
  n.gen = next_gen_++;
  n.kind = FileKind::Regular;
  n.atime = n.mtime = n.ctime = sim_.now();
  n.pool_idx = static_cast<unsigned>(pidx);
  n.parent = parent->id;
  n.name = leaf;
  const FileId fid{n.id, n.gen};
  parent->children.emplace(leaf, n.id);
  parent->mtime = sim_.now();
  inodes_.emplace(n.id, std::move(n));
  return fid;
}

Result<InodeAttrs> FileSystem::stat(const std::string& path) const {
  const Inode* n = resolve(path);
  if (n == nullptr) return Errc::NotFound;
  return attrs_of(*n);
}

Result<std::string> FileSystem::path_of(FileId fid) const {
  auto it = inodes_.find(fid.inode);
  if (it == inodes_.end()) return Errc::NotFound;
  if (it->second.gen != fid.gen) return Errc::Stale;
  return rebuild_path(it->second);
}

Result<std::vector<DirEntry>> FileSystem::readdir(const std::string& path) const {
  const Inode* n = resolve(path);
  if (n == nullptr) return Errc::NotFound;
  if (n->kind != FileKind::Directory) return Errc::NotADirectory;
  std::vector<DirEntry> out;
  out.reserve(n->children.size());
  for (const auto& [name, id] : n->children) {
    const Inode& c = inodes_.at(id);
    out.push_back(DirEntry{name, id, c.kind});
  }
  return out;
}

Errc FileSystem::unlink(const std::string& path) {
  Inode* n = resolve(path);
  if (n == nullptr) return Errc::NotFound;
  if (n->kind == FileKind::Directory) return Errc::IsADirectory;
  destroy_data(*n, path);
  Inode& parent = inodes_.at(n->parent);
  parent.children.erase(n->name);
  parent.mtime = sim_.now();
  inodes_.erase(n->id);
  return Errc::Ok;
}

Errc FileSystem::rmdir(const std::string& path) {
  Inode* n = resolve(path);
  if (n == nullptr) return Errc::NotFound;
  if (n->kind != FileKind::Directory) return Errc::NotADirectory;
  if (n->id == root_) return Errc::InvalidArgument;
  if (!n->children.empty()) return Errc::NotEmpty;
  Inode& parent = inodes_.at(n->parent);
  parent.children.erase(n->name);
  parent.mtime = sim_.now();
  inodes_.erase(n->id);
  return Errc::Ok;
}

Errc FileSystem::rename(const std::string& from, const std::string& to) {
  Inode* src = resolve(from);
  if (src == nullptr) return Errc::NotFound;
  if (src->id == root_) return Errc::InvalidArgument;
  std::string leaf;
  Errc err = Errc::Ok;
  Inode* new_parent = resolve_parent(to, &leaf, &err);
  if (new_parent == nullptr) return err;
  if (new_parent->children.count(leaf) != 0) return Errc::Exists;
  // Reject moving a directory into its own subtree.
  for (const Inode* a = new_parent; a->id != root_; a = &inodes_.at(a->parent)) {
    if (a->id == src->id) return Errc::InvalidArgument;
  }
  Inode& old_parent = inodes_.at(src->parent);
  old_parent.children.erase(src->name);
  old_parent.mtime = sim_.now();
  src->parent = new_parent->id;
  src->name = leaf;
  new_parent->children.emplace(leaf, src->id);
  new_parent->mtime = sim_.now();
  return Errc::Ok;
}

bool FileSystem::exists(const std::string& path) const {
  return resolve(path) != nullptr;
}

Errc FileSystem::write_all(const std::string& path, std::uint64_t size,
                           std::uint64_t content_tag) {
  Inode* n = resolve(path);
  if (n == nullptr) return Errc::NotFound;
  if (n->kind != FileKind::Regular) return Errc::IsADirectory;
  // Overwrite destroys any managed (tape) copy first — this is exactly the
  // truncate-hole the synchronous deleter cannot see (Sec 6.3).
  destroy_data(*n, path);
  if (const Errc e = charge_pool(n->pool_idx, size); e != Errc::Ok) return e;
  n->size = size;
  n->content_tag = content_tag;
  n->mtime = n->atime = sim_.now();
  return Errc::Ok;
}

Errc FileSystem::truncate(const std::string& path, std::uint64_t new_size) {
  Inode* n = resolve(path);
  if (n == nullptr) return Errc::NotFound;
  if (n->kind != FileKind::Regular) return Errc::IsADirectory;
  if (new_size != 0 && new_size == n->size) return Errc::Ok;
  const std::uint64_t tag = n->content_tag;
  destroy_data(*n, path);
  if (const Errc e = charge_pool(n->pool_idx, new_size); e != Errc::Ok) return e;
  n->size = new_size;
  // Truncation changes content; derive a new tag so comparisons fail.
  n->content_tag = new_size == 0 ? 0 : tag ^ (0x517CC1B727220A95ULL + new_size);
  n->mtime = sim_.now();
  return Errc::Ok;
}

Result<std::uint64_t> FileSystem::read_tag(const std::string& path) const {
  const Inode* n = resolve(path);
  if (n == nullptr) return Errc::NotFound;
  if (n->kind != FileKind::Regular) return Errc::IsADirectory;
  if (n->dmapi == DmapiState::Migrated) {
    if (dmapi_ != nullptr) {
      dmapi_->on_read_offline(path, FileId{n->id, n->gen});
    }
    return Errc::Offline;
  }
  const_cast<Inode*>(n)->atime = sim_.now();
  return n->content_tag;
}

Errc FileSystem::premigrate(const std::string& path) {
  Inode* n = resolve(path);
  if (n == nullptr) return Errc::NotFound;
  if (n->kind != FileKind::Regular) return Errc::IsADirectory;
  if (n->dmapi != DmapiState::Resident) return Errc::InvalidArgument;
  n->dmapi = DmapiState::Premigrated;
  return Errc::Ok;
}

Errc FileSystem::punch(const std::string& path) {
  Inode* n = resolve(path);
  if (n == nullptr) return Errc::NotFound;
  if (n->dmapi != DmapiState::Premigrated) return Errc::InvalidArgument;
  credit_pool(n->pool_idx, n->size);  // disk blocks released; stub remains
  n->dmapi = DmapiState::Migrated;
  return Errc::Ok;
}

Errc FileSystem::mark_recalled(const std::string& path) {
  Inode* n = resolve(path);
  if (n == nullptr) return Errc::NotFound;
  if (n->dmapi != DmapiState::Migrated) return Errc::InvalidArgument;
  if (const Errc e = charge_pool(n->pool_idx, n->size); e != Errc::Ok) return e;
  n->dmapi = DmapiState::Premigrated;
  n->atime = sim_.now();
  return Errc::Ok;
}

Errc FileSystem::make_resident(const std::string& path) {
  Inode* n = resolve(path);
  if (n == nullptr) return Errc::NotFound;
  if (n->dmapi != DmapiState::Premigrated) return Errc::InvalidArgument;
  n->dmapi = DmapiState::Resident;
  return Errc::Ok;
}

Result<PoolInfo> FileSystem::pool(const std::string& name) const {
  const int i = pool_index(name);
  if (i < 0) return Errc::NotFound;
  return pools_[static_cast<std::size_t>(i)];
}

std::vector<PoolInfo> FileSystem::pools() const { return pools_; }

Errc FileSystem::move_to_pool(const std::string& path, const std::string& pool) {
  Inode* n = resolve(path);
  if (n == nullptr) return Errc::NotFound;
  if (n->kind != FileKind::Regular) return Errc::IsADirectory;
  const int pidx = pool_index(pool);
  if (pidx < 0) return Errc::InvalidArgument;
  const auto new_idx = static_cast<unsigned>(pidx);
  if (new_idx == n->pool_idx) return Errc::Ok;
  const bool holds_disk = n->dmapi != DmapiState::Migrated;
  if (holds_disk) {
    if (const Errc e = charge_pool(new_idx, n->size); e != Errc::Ok) return e;
    credit_pool(n->pool_idx, n->size);
  }
  n->pool_idx = new_idx;
  return Errc::Ok;
}

std::vector<unsigned> FileSystem::stripe_nsds(const std::string& path,
                                              std::uint64_t offset,
                                              std::uint64_t len) const {
  const Inode* n = resolve(path);
  std::vector<unsigned> out;
  if (n == nullptr || n->kind != FileKind::Regular || len == 0) return out;
  const PoolConfig& pc = pools_[n->pool_idx].config;
  const unsigned nsds = std::max(1u, pc.nsd_count);
  const unsigned base = pool_nsd_base_[n->pool_idx];
  const std::uint64_t bs = cfg_.block_size;
  const std::uint64_t first_block = offset / bs;
  const std::uint64_t last_block = (offset + len - 1) / bs;
  const std::uint64_t nblocks = last_block - first_block + 1;
  // Round-robin striping with a per-inode start offset (GPFS randomizes
  // the first disk per file to even out load).
  const std::uint64_t start = n->id % nsds;
  if (nblocks >= nsds) {
    for (unsigned i = 0; i < nsds; ++i) out.push_back(base + i);
  } else {
    for (std::uint64_t b = first_block; b <= last_block; ++b) {
      const unsigned s = static_cast<unsigned>((start + b) % nsds);
      if (std::find(out.begin(), out.end(), base + s) == out.end()) {
        out.push_back(base + s);
      }
    }
  }
  return out;
}

unsigned FileSystem::pool_nsd_base(const std::string& pool) const {
  const int i = pool_index(pool);
  return i < 0 ? 0 : pool_nsd_base_[static_cast<std::size_t>(i)];
}

void FileSystem::for_each_inode(
    const std::function<void(const std::string&, const InodeAttrs&)>& fn) const {
  for (const auto& [id, n] : inodes_) {
    fn(rebuild_path(n), attrs_of(n));
  }
}

sim::Tick FileSystem::scan_duration(std::uint64_t inodes, unsigned streams) const {
  if (inodes == 0) return 0;
  const double per_stream =
      static_cast<double>(inodes) / std::max(1u, streams);
  return sim::secs(per_stream / cfg_.inode_scan_rate);
}

}  // namespace cpa::pfs
