#include "pfs/policy.hpp"

#include "pfs/glob.hpp"

namespace cpa::pfs {
namespace {

bool cmp_u64(Condition::Op op, std::uint64_t lhs, std::uint64_t rhs) {
  switch (op) {
    case Condition::Op::Ge: return lhs >= rhs;
    case Condition::Op::Le: return lhs <= rhs;
    case Condition::Op::Eq: return lhs == rhs;
    case Condition::Op::Ne: return lhs != rhs;
    case Condition::Op::Match: return false;
  }
  return false;
}

}  // namespace

bool Condition::eval(const std::string& path, const InodeAttrs& a,
                     sim::Tick now) const {
  switch (field) {
    case Field::SizeBytes:
      return cmp_u64(op, a.size, num);
    case Field::AgeSeconds: {
      const sim::Tick age = now > a.mtime ? now - a.mtime : 0;
      return cmp_u64(op, static_cast<std::uint64_t>(sim::to_seconds(age)), num);
    }
    case Field::Pool:
      return op == Op::Ne ? a.pool != str : a.pool == str;
    case Field::PathGlob: {
      const bool m = glob_match(str, path);
      return op == Op::Ne ? !m : m;
    }
    case Field::Dmapi:
      return op == Op::Ne ? a.dmapi != state : a.dmapi == state;
  }
  return false;
}

std::string Condition::to_string() const {
  auto op_str = [this] {
    switch (op) {
      case Op::Ge: return ">=";
      case Op::Le: return "<=";
      case Op::Eq: return "==";
      case Op::Ne: return "!=";
      case Op::Match: return "LIKE";
    }
    return "?";
  };
  switch (field) {
    case Field::SizeBytes:
      return "size " + std::string(op_str()) + " " + std::to_string(num);
    case Field::AgeSeconds:
      return "age " + std::string(op_str()) + " " + std::to_string(num) + "s";
    case Field::Pool:
      return "pool " + std::string(op_str()) + " '" + str + "'";
    case Field::PathGlob:
      return "path " + std::string(op_str()) + " '" + str + "'";
    case Field::Dmapi:
      return std::string("state ") + op_str() + " " + cpa::pfs::to_string(state);
  }
  return "?";
}

Condition Condition::size_ge(std::uint64_t bytes) {
  Condition c;
  c.field = Field::SizeBytes;
  c.op = Op::Ge;
  c.num = bytes;
  return c;
}

Condition Condition::size_le(std::uint64_t bytes) {
  Condition c;
  c.field = Field::SizeBytes;
  c.op = Op::Le;
  c.num = bytes;
  return c;
}

Condition Condition::age_ge(double seconds) {
  Condition c;
  c.field = Field::AgeSeconds;
  c.op = Op::Ge;
  c.num = static_cast<std::uint64_t>(seconds);
  return c;
}

Condition Condition::pool_is(std::string pool) {
  Condition c;
  c.field = Field::Pool;
  c.op = Op::Eq;
  c.str = std::move(pool);
  return c;
}

Condition Condition::path_glob(std::string pattern) {
  Condition c;
  c.field = Field::PathGlob;
  c.op = Op::Match;
  c.str = std::move(pattern);
  return c;
}

Condition Condition::dmapi_is(DmapiState s) {
  Condition c;
  c.field = Field::Dmapi;
  c.op = Op::Eq;
  c.state = s;
  return c;
}

Condition Condition::dmapi_not(DmapiState s) {
  Condition c;
  c.field = Field::Dmapi;
  c.op = Op::Ne;
  c.state = s;
  return c;
}

bool Rule::matches(const std::string& path, const InodeAttrs& a,
                   sim::Tick now) const {
  for (const Condition& c : where) {
    if (!c.eval(path, a, now)) return false;
  }
  return true;
}

std::string Rule::to_string() const {
  auto action_str = [this] {
    switch (action) {
      case Action::Place: return "PLACE";
      case Action::MigrateToPool: return "MIGRATE";
      case Action::MigrateExternal: return "MIGRATE EXTERNAL";
      case Action::Delete: return "DELETE";
      case Action::List: return "LIST";
    }
    return "?";
  };
  std::string out = "RULE '" + name + "' " + action_str();
  if (!target.empty()) out += " TO '" + target + "'";
  if (!where.empty()) {
    out += " WHERE ";
    for (std::size_t i = 0; i < where.size(); ++i) {
      if (i != 0) out += " AND ";
      out += where[i].to_string();
    }
  }
  return out;
}

std::string PolicyEngine::placement_pool(const std::string& path,
                                         sim::Tick now) const {
  InodeAttrs blank;  // create-time: no size, default everything
  for (const Rule& r : rules_) {
    if (r.action != Rule::Action::Place) continue;
    if (r.matches(path, blank, now)) return r.target;
  }
  return "";
}

ScanReport PolicyEngine::run_scan(const FileSystem& fs, unsigned streams) const {
  ScanReport report;
  const sim::Tick now = fs.sim().now();
  // Pre-create entries so empty rules still appear in the report.
  for (const Rule& r : rules_) {
    if (r.action != Rule::Action::Place) report.matches[r.name];
  }
  fs.for_each_inode([&](const std::string& path, const InodeAttrs& a) {
    ++report.inodes_scanned;
    if (a.kind != FileKind::Regular) return;
    bool claimed = false;
    for (const Rule& r : rules_) {
      switch (r.action) {
        case Rule::Action::Place:
          break;  // create-time only
        case Rule::Action::List:
          if (r.matches(path, a, now)) {
            report.matches[r.name].push_back(PolicyMatch{path, a});
          }
          break;
        case Rule::Action::MigrateToPool:
        case Rule::Action::MigrateExternal:
        case Rule::Action::Delete:
          if (!claimed && r.matches(path, a, now)) {
            report.matches[r.name].push_back(PolicyMatch{path, a});
            claimed = true;  // first-match semantics
          }
          break;
      }
    }
  });
  report.scan_duration = fs.scan_duration(report.inodes_scanned, streams);
  obs::MetricsRegistry& m = obs_->metrics();
  m.counter("pfs.policy_scans").inc();
  m.counter("pfs.policy_scanned_inodes").add(report.inodes_scanned);
  // The caller charges scan_duration; the span covers that charged window.
  const obs::SpanId sp =
      obs_->trace().complete(obs::Component::Pfs, "policy", "policy_scan", now,
                             now + report.scan_duration);
  obs_->trace().arg_num(sp, "inodes", report.inodes_scanned);
  obs_->trace().arg_num(sp, "streams", static_cast<std::uint64_t>(streams));
  return report;
}

}  // namespace cpa::pfs
