#include "pfs/common.hpp"

namespace cpa::pfs {

const char* to_string(DmapiState s) {
  switch (s) {
    case DmapiState::Resident: return "resident";
    case DmapiState::Premigrated: return "premigrated";
    case DmapiState::Migrated: return "migrated";
  }
  return "?";
}

const char* to_string(FileKind k) {
  switch (k) {
    case FileKind::Regular: return "regular";
    case FileKind::Directory: return "directory";
  }
  return "?";
}

const char* to_string(Errc e) {
  switch (e) {
    case Errc::Ok: return "ok";
    case Errc::NotFound: return "not found";
    case Errc::Exists: return "exists";
    case Errc::NotADirectory: return "not a directory";
    case Errc::IsADirectory: return "is a directory";
    case Errc::NotEmpty: return "directory not empty";
    case Errc::NoSpace: return "no space in pool";
    case Errc::Stale: return "stale file id";
    case Errc::InvalidArgument: return "invalid argument";
    case Errc::Offline: return "data offline (migrated to tape)";
  }
  return "?";
}

}  // namespace cpa::pfs
