// Shared types for the parallel file system model.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>

namespace cpa::pfs {

using InodeId = std::uint64_t;
inline constexpr InodeId kInvalidInode = 0;

/// GPFS-style unique file id: inode number plus generation.  Generations
/// make ids unique across inode reuse, which the synchronous deleter
/// (Sec 4.2.6) depends on when joining against the TSM export.
struct FileId {
  InodeId inode = kInvalidInode;
  std::uint64_t gen = 0;
  [[nodiscard]] bool valid() const { return inode != kInvalidInode; }
  /// Packed form used as a database key.
  [[nodiscard]] std::uint64_t packed() const { return inode * 1'000'003ULL + gen; }
  friend bool operator==(const FileId&, const FileId&) = default;
};

enum class FileKind : std::uint8_t { Regular, Directory };

/// DMAPI-managed data residency (Sec 4.2.2): Resident data lives in a disk
/// pool; Premigrated has a tape copy while the disk copy remains; Migrated
/// has been punched to a stub — reads must trigger a recall.
enum class DmapiState : std::uint8_t { Resident, Premigrated, Migrated };

[[nodiscard]] const char* to_string(DmapiState s);
[[nodiscard]] const char* to_string(FileKind k);

enum class Errc : std::uint8_t {
  Ok,
  NotFound,
  Exists,
  NotADirectory,
  IsADirectory,
  NotEmpty,
  NoSpace,
  Stale,        // FileId generation mismatch
  InvalidArgument,
  Offline,      // data is on tape and auto-recall is disabled
};

[[nodiscard]] const char* to_string(Errc e);

/// Minimal result type: either a value or an error code.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Errc err) : err_(err) {}                // NOLINT(google-explicit-constructor)

  [[nodiscard]] bool ok() const { return err_ == Errc::Ok; }
  [[nodiscard]] Errc error() const { return err_; }
  [[nodiscard]] const T& value() const& { return *value_; }
  [[nodiscard]] T& value() & { return *value_; }
  /// Rvalue overload returns by value so `f().value()` never dangles
  /// (e.g. in a range-for over a temporary Result).
  [[nodiscard]] T value() && { return std::move(*value_); }
  [[nodiscard]] T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }
  explicit operator bool() const { return ok(); }

 private:
  std::optional<T> value_;
  Errc err_ = Errc::Ok;
};

}  // namespace cpa::pfs
