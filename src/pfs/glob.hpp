// Shell-style glob matching for ILM policy rules ("WHERE path LIKE ...").
// Supports `*` (any run, including '/'), `?` (any single char), and literal
// characters.  `*` crossing '/' matches GPFS policy semantics, where rules
// are written against full path names.
#pragma once

#include <string_view>

namespace cpa::pfs {

[[nodiscard]] bool glob_match(std::string_view pattern, std::string_view text);

}  // namespace cpa::pfs
