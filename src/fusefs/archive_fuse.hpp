// ArchiveFUSE: the chunking layer over the archive file system.
//
// The paper's problem (Sec 4.1.2): archiving a very large file (>100 GB)
// as one object means N writers funnel into one N-to-1 stream and one tape
// — slow on both counts.  LANL's fix: "we built an ArchiveFUSE file system
// on top of the GPFS file system, and can successfully transfer very large
// files broken down in to N equal size chunk files ... We have
// successfully converted an N-to-1 parallel I/O operation into an N-to-N
// parallel I/O operation."
//
// A chunked logical file at `path` is backed by chunk files in a shadow
// directory `path + ".__fusechunks__"`; each chunk is an ordinary file the
// HSM migrates/recalls independently (that is the point).  The layer also:
//   * tracks per-chunk good/bad marks, the paper's restartable-transfer
//     mechanism ("we mark regular file chunks or FUSE file chunks as good
//     or bad so that we don't have to re-send known good chunks", Sec 4.5);
//   * intercepts unlink and overwrite, moving old chunks into the trashcan
//     instead of destroying them — closing the truncate hole the
//     synchronous deleter cannot see (Sec 6.3).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/observer.hpp"
#include "pfs/filesystem.hpp"
#include "simcore/units.hpp"

namespace cpa::fusefs {

struct FuseConfig {
  /// Chunk size for splitting very large files ("Fuse ChunkSize" runtime
  /// tunable, Sec 4.1.2).
  std::uint64_t chunk_size = 16ULL * kGB;
  /// Where intercepted deletes/overwrites park old chunks.
  std::string trash_dir = "/.trashcan";
};

enum class ChunkMark : std::uint8_t { Missing, Good, Bad };

struct ChunkInfo {
  std::uint64_t index = 0;
  std::string chunk_path;
  std::uint64_t offset = 0;  // within the logical file
  std::uint64_t bytes = 0;
  ChunkMark mark = ChunkMark::Missing;
};

struct LogicalStat {
  std::uint64_t size = 0;
  std::uint64_t chunk_size = 0;
  std::uint64_t chunk_count = 0;
  std::uint64_t good_chunks = 0;
  bool complete = false;
};

class ArchiveFuse {
 public:
  ArchiveFuse(pfs::FileSystem& fs, FuseConfig cfg);

  [[nodiscard]] const FuseConfig& config() const { return cfg_; }

  /// Number of chunks a file of `size` splits into (>= 1).
  [[nodiscard]] std::uint64_t chunk_count(std::uint64_t size) const;

  /// Registers a chunked logical file and creates its (empty) chunk files.
  /// If a chunked file already exists at `path`, it is overwritten: the
  /// old chunks move to the trashcan first (the Sec 6.3 interception).
  pfs::Errc create(const std::string& path, std::uint64_t size);

  /// Writes chunk `index` (full chunk) with the given content tag and
  /// marks it good.  The underlying write charges pool space.
  pfs::Errc write_chunk(const std::string& path, std::uint64_t index,
                        std::uint64_t content_tag);

  /// Flags a chunk bad (failure injection / interrupted transfer).
  pfs::Errc mark_chunk(const std::string& path, std::uint64_t index, ChunkMark m);

  [[nodiscard]] pfs::Result<LogicalStat> stat(const std::string& path) const;
  [[nodiscard]] pfs::Result<std::vector<ChunkInfo>> chunks(const std::string& path) const;

  /// Indices that still need (re)sending: everything not marked Good.
  [[nodiscard]] pfs::Result<std::vector<std::uint64_t>> pending_chunks(
      const std::string& path) const;

  /// Combined content tag over all chunks, defined only when complete.
  [[nodiscard]] pfs::Result<std::uint64_t> logical_tag(const std::string& path) const;

  /// Records/reads the original whole-file content tag, so tools can
  /// verify logical equality between a chunked copy and its plain source
  /// (pfcm across representations).
  pfs::Errc set_origin_tag(const std::string& path, std::uint64_t tag);
  [[nodiscard]] pfs::Result<std::uint64_t> origin_tag(const std::string& path) const;

  /// Intercepted unlink: chunks move to the trashcan; the logical file
  /// disappears.  Nothing is destroyed, so tape copies never orphan.
  pfs::Errc unlink(const std::string& path);

  /// True if `path` names a chunked logical file on this mount.
  [[nodiscard]] bool is_chunked(const std::string& path) const;

  /// All logical files on this mount (deterministic order).
  [[nodiscard]] std::vector<std::string> logical_files() const;

  /// Path of chunk `index`'s backing file.
  [[nodiscard]] std::string chunk_path(const std::string& path,
                                       std::uint64_t index) const;
  [[nodiscard]] std::string shadow_dir(const std::string& path) const;

  /// Routes fuse.* metrics to `obs`.
  void set_observer(obs::Observer& obs) { obs_ = &obs; }

 private:
  struct Meta {
    std::uint64_t size = 0;
    std::uint64_t origin_tag = 0;
    bool has_origin_tag = false;
    std::vector<ChunkMark> marks;
  };

  [[nodiscard]] std::uint64_t chunk_bytes(const Meta& m, std::uint64_t index) const;
  /// Moves the shadow directory into the trashcan under a unique name.
  pfs::Errc trash_chunks(const std::string& path);

  pfs::FileSystem& fs_;
  FuseConfig cfg_;
  obs::Observer* obs_ = &obs::Observer::nil();
  std::map<std::string, Meta> files_;
  std::uint64_t trash_counter_ = 0;
};

}  // namespace cpa::fusefs
