#include "fusefs/archive_fuse.hpp"

#include <cassert>
#include <cstdio>

namespace cpa::fusefs {
namespace {

/// Order-dependent tag combination: matches what byte-order-sensitive
/// concatenation would produce for real content.
std::uint64_t mix_tags(std::uint64_t acc, std::uint64_t tag) {
  acc ^= tag + 0x9E3779B97F4A7C15ULL + (acc << 6) + (acc >> 2);
  return acc;
}

}  // namespace

ArchiveFuse::ArchiveFuse(pfs::FileSystem& fs, FuseConfig cfg)
    : fs_(fs), cfg_(std::move(cfg)) {
  assert(cfg_.chunk_size > 0);
  fs_.mkdirs(cfg_.trash_dir);
}

std::uint64_t ArchiveFuse::chunk_count(std::uint64_t size) const {
  if (size == 0) return 1;
  return (size + cfg_.chunk_size - 1) / cfg_.chunk_size;
}

std::uint64_t ArchiveFuse::chunk_bytes(const Meta& m, std::uint64_t index) const {
  const std::uint64_t start = index * cfg_.chunk_size;
  if (start >= m.size) return 0;
  return std::min(cfg_.chunk_size, m.size - start);
}

std::string ArchiveFuse::shadow_dir(const std::string& path) const {
  return path + ".__fusechunks__";
}

std::string ArchiveFuse::chunk_path(const std::string& path,
                                    std::uint64_t index) const {
  char name[32];
  std::snprintf(name, sizeof(name), "c%08llu",
                static_cast<unsigned long long>(index));
  return shadow_dir(path) + "/" + name;
}

pfs::Errc ArchiveFuse::create(const std::string& path, std::uint64_t size) {
  if (is_chunked(path)) {
    // Overwrite interception: old chunks go to the trashcan (Sec 6.3).
    if (const pfs::Errc e = trash_chunks(path); e != pfs::Errc::Ok) return e;
    files_.erase(path);
  }
  const std::string dir = shadow_dir(path);
  if (fs_.exists(dir)) return pfs::Errc::Exists;
  if (const pfs::Errc e = fs_.mkdirs(dir); e != pfs::Errc::Ok) return e;
  Meta meta;
  meta.size = size;
  meta.marks.assign(chunk_count(size), ChunkMark::Missing);
  for (std::uint64_t i = 0; i < meta.marks.size(); ++i) {
    const auto r = fs_.create(chunk_path(path, i));
    if (!r.ok()) return r.error();
  }
  files_.emplace(path, std::move(meta));
  obs::MetricsRegistry& m = obs_->metrics();
  m.counter("fuse.chunked_files").inc();
  m.counter("fuse.chunks_created").add(chunk_count(size));
  return pfs::Errc::Ok;
}

pfs::Errc ArchiveFuse::write_chunk(const std::string& path, std::uint64_t index,
                                   std::uint64_t content_tag) {
  auto it = files_.find(path);
  if (it == files_.end()) return pfs::Errc::NotFound;
  Meta& meta = it->second;
  if (index >= meta.marks.size()) return pfs::Errc::InvalidArgument;
  const pfs::Errc e =
      fs_.write_all(chunk_path(path, index), chunk_bytes(meta, index), content_tag);
  if (e != pfs::Errc::Ok) return e;
  meta.marks[index] = ChunkMark::Good;
  obs::MetricsRegistry& m = obs_->metrics();
  m.counter("fuse.chunk_writes").inc();
  m.counter("fuse.chunk_bytes_written").add(chunk_bytes(meta, index));
  return pfs::Errc::Ok;
}

pfs::Errc ArchiveFuse::mark_chunk(const std::string& path, std::uint64_t index,
                                  ChunkMark m) {
  auto it = files_.find(path);
  if (it == files_.end()) return pfs::Errc::NotFound;
  if (index >= it->second.marks.size()) return pfs::Errc::InvalidArgument;
  it->second.marks[index] = m;
  return pfs::Errc::Ok;
}

pfs::Result<LogicalStat> ArchiveFuse::stat(const std::string& path) const {
  auto it = files_.find(path);
  if (it == files_.end()) return pfs::Errc::NotFound;
  const Meta& meta = it->second;
  LogicalStat st;
  st.size = meta.size;
  st.chunk_size = cfg_.chunk_size;
  st.chunk_count = meta.marks.size();
  for (const ChunkMark m : meta.marks) {
    if (m == ChunkMark::Good) ++st.good_chunks;
  }
  st.complete = st.good_chunks == st.chunk_count;
  return st;
}

pfs::Result<std::vector<ChunkInfo>> ArchiveFuse::chunks(
    const std::string& path) const {
  auto it = files_.find(path);
  if (it == files_.end()) return pfs::Errc::NotFound;
  const Meta& meta = it->second;
  std::vector<ChunkInfo> out;
  out.reserve(meta.marks.size());
  for (std::uint64_t i = 0; i < meta.marks.size(); ++i) {
    ChunkInfo ci;
    ci.index = i;
    ci.chunk_path = chunk_path(path, i);
    ci.offset = i * cfg_.chunk_size;
    ci.bytes = chunk_bytes(meta, i);
    ci.mark = meta.marks[i];
    out.push_back(std::move(ci));
  }
  return out;
}

pfs::Result<std::vector<std::uint64_t>> ArchiveFuse::pending_chunks(
    const std::string& path) const {
  auto it = files_.find(path);
  if (it == files_.end()) return pfs::Errc::NotFound;
  std::vector<std::uint64_t> out;
  for (std::uint64_t i = 0; i < it->second.marks.size(); ++i) {
    if (it->second.marks[i] != ChunkMark::Good) out.push_back(i);
  }
  return out;
}

pfs::Result<std::uint64_t> ArchiveFuse::logical_tag(const std::string& path) const {
  auto it = files_.find(path);
  if (it == files_.end()) return pfs::Errc::NotFound;
  const Meta& meta = it->second;
  std::uint64_t acc = 0;
  for (std::uint64_t i = 0; i < meta.marks.size(); ++i) {
    if (meta.marks[i] != ChunkMark::Good) return pfs::Errc::InvalidArgument;
    const auto tag = fs_.read_tag(chunk_path(path, i));
    if (!tag.ok()) return tag.error();
    acc = mix_tags(acc, tag.value());
  }
  return acc;
}

pfs::Errc ArchiveFuse::set_origin_tag(const std::string& path,
                                      std::uint64_t tag) {
  auto it = files_.find(path);
  if (it == files_.end()) return pfs::Errc::NotFound;
  it->second.origin_tag = tag;
  it->second.has_origin_tag = true;
  return pfs::Errc::Ok;
}

pfs::Result<std::uint64_t> ArchiveFuse::origin_tag(const std::string& path) const {
  auto it = files_.find(path);
  if (it == files_.end()) return pfs::Errc::NotFound;
  if (!it->second.has_origin_tag) return pfs::Errc::InvalidArgument;
  return it->second.origin_tag;
}

pfs::Errc ArchiveFuse::trash_chunks(const std::string& path) {
  const std::string dir = shadow_dir(path);
  if (!fs_.exists(dir)) return pfs::Errc::NotFound;
  char name[64];
  std::snprintf(name, sizeof(name), "fuse%08llu_%s",
                static_cast<unsigned long long>(trash_counter_++),
                pfs::base_name(path).c_str());
  const pfs::Errc e = fs_.rename(dir, pfs::join_path(cfg_.trash_dir, name));
  if (e == pfs::Errc::Ok) obs_->metrics().counter("fuse.trashcan_moves").inc();
  return e;
}

pfs::Errc ArchiveFuse::unlink(const std::string& path) {
  auto it = files_.find(path);
  if (it == files_.end()) return pfs::Errc::NotFound;
  if (const pfs::Errc e = trash_chunks(path); e != pfs::Errc::Ok) return e;
  files_.erase(it);
  return pfs::Errc::Ok;
}

bool ArchiveFuse::is_chunked(const std::string& path) const {
  return files_.count(path) != 0;
}

std::vector<std::string> ArchiveFuse::logical_files() const {
  std::vector<std::string> out;
  out.reserve(files_.size());
  for (const auto& [path, meta] : files_) out.push_back(path);
  return out;
}

}  // namespace cpa::fusefs
