// Minimal actor base for simulated message-passing processes.
//
// PFTool's MPI ranks (Manager, ReadDir, Worker, TapeProc, WatchDog,
// OutPutProc) are modeled as actors: objects whose methods are invoked via
// latency-stamped events.  `send` is a typed method call with a message
// latency; there is no serialized payload because all actors share the
// simulation's address space, exactly like an MPI job sharing a fabric.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>

#include "simcore/simulation.hpp"

namespace cpa::sim {

class Actor {
 public:
  Actor(Simulation& sim, std::string name)
      : sim_(sim), name_(std::move(name)) {}
  Actor(const Actor&) = delete;
  Actor& operator=(const Actor&) = delete;
  virtual ~Actor() = default;

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] Simulation& sim() { return sim_; }
  [[nodiscard]] const Simulation& sim() const { return sim_; }

  [[nodiscard]] std::uint64_t messages_sent() const { return sent_; }
  [[nodiscard]] std::uint64_t messages_received() const { return received_; }

 protected:
  /// Schedules work on this actor after a delay.
  Simulation::EventId after(Tick dt, std::function<void()> fn) {
    return sim_.after(dt, std::move(fn));
  }

  /// Sends a "message": invokes `handler` in `to`'s context after
  /// `latency`.  Handler is any callable capturing what it needs; message
  /// counters feed the OutPutProc-style run report.
  template <typename Target, typename Handler>
  void send(Target& to, Tick latency, Handler handler) {
    ++sent_;
    Actor* dest = &to;
    sim_.after(latency, [dest, h = std::move(handler)]() mutable {
      ++dest->received_;
      h();
    });
  }

 private:
  Simulation& sim_;
  std::string name_;
  std::uint64_t sent_ = 0;
  std::uint64_t received_ = 0;
};

/// Default intra-cluster message latency (per-hop, 10GigE-class fabric).
inline constexpr Tick kDefaultMsgLatency = usecs(50);

}  // namespace cpa::sim
