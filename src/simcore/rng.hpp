// Deterministic, splittable random number generation.
//
// We implement xoshiro256** seeded via SplitMix64 rather than using
// <random> engines/distributions: libstdc++ and libc++ produce different
// streams for the same distribution parameters, and this repository's
// benchmark tables must be reproducible byte-for-byte.  `split()` derives
// an independent child stream so that subsystems (workload generator, tape
// robot, per-job jitter, ...) can be reseeded without coupling.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace cpa::sim {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Uniform 64-bit value.
  std::uint64_t next_u64();

  /// Derives an independent child generator (stable for a given parent
  /// state; each call yields a distinct child).
  Rng split();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive.  Requires lo <= hi.
  std::uint64_t uniform_u64(std::uint64_t lo, std::uint64_t hi);
  std::int64_t uniform_i64(std::int64_t lo, std::int64_t hi);

  /// Bernoulli trial with probability `p` of true.
  bool chance(double p);

  /// Exponential with the given mean (= 1/lambda).
  double exponential(double mean);

  /// Normal via Box-Muller.
  double normal(double mean, double stddev);

  /// Log-normal parameterized by the *underlying* normal's mu/sigma.
  double lognormal(double mu, double sigma);

  /// Log-normal parameterized by its own mean and sigma-of-log; convenient
  /// for calibrating file-size distributions to a target mean.
  double lognormal_mean(double mean, double sigma_log);

  /// Bounded Pareto on [lo, hi] with shape alpha (heavy-tailed sizes).
  double bounded_pareto(double alpha, double lo, double hi);

  /// Index drawn from unnormalized weights.  Requires non-empty weights
  /// with a positive sum.
  std::size_t weighted_choice(std::span<const double> weights);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(uniform_u64(0, i - 1));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

 private:
  std::uint64_t s_[4];
  bool have_spare_normal_ = false;
  double spare_normal_ = 0.0;
};

}  // namespace cpa::sim
