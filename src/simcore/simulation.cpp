#include "simcore/simulation.hpp"

#include <utility>

namespace cpa::sim {

Simulation::EventId Simulation::at(Tick when, Callback fn) {
  if (when < now_) when = now_;
  const std::uint64_t seq = next_seq_++;
  heap_.push(Event{when, seq, std::move(fn)});
  pending_seqs_.insert(seq);
  ++live_;
  return EventId{seq};
}

bool Simulation::cancel(EventId id) {
  if (!id.valid()) return false;
  // The heap cannot be edited in place; removing the seq from the pending
  // set makes the heap entry stale, and pop_live() discards stale entries.
  if (pending_seqs_.erase(id.seq) == 0) return false;  // fired or cancelled
  --live_;
  return true;
}

bool Simulation::pop_live(Event& out) {
  while (!heap_.empty()) {
    // priority_queue::top() is const; the callback must be moved out, so we
    // const_cast the non-key payload (the heap invariant does not depend on
    // `fn`).
    Event& top = const_cast<Event&>(heap_.top());
    if (pending_seqs_.erase(top.seq) == 0) {
      heap_.pop();  // stale: was cancelled
      continue;
    }
    out.at = top.at;
    out.seq = top.seq;
    out.fn = std::move(top.fn);
    heap_.pop();
    --live_;
    return true;
  }
  return false;
}

bool Simulation::step() {
  Event ev;
  if (!pop_live(ev)) return false;
  now_ = ev.at;
  ++fired_;
  if (probe_ != nullptr) probe_->on_event_fired(now_);
  ev.fn();
  return true;
}

std::size_t Simulation::run() {
  stopped_ = false;
  std::size_t n = 0;
  while (!stopped_ && step()) ++n;
  return n;
}

std::size_t Simulation::run_until(Tick deadline) {
  stopped_ = false;
  std::size_t n = 0;
  while (!stopped_ && !heap_.empty()) {
    const Event& top = heap_.top();
    if (pending_seqs_.find(top.seq) == pending_seqs_.end()) {
      heap_.pop();  // stale: was cancelled
      continue;
    }
    if (top.at > deadline) break;
    Event ev;
    if (!pop_live(ev)) break;
    now_ = ev.at;
    ++fired_;
    if (probe_ != nullptr) probe_->on_event_fired(now_);
    ev.fn();
    ++n;
  }
  if (now_ < deadline) now_ = deadline;
  return n;
}

}  // namespace cpa::sim
