#include "simcore/simulation.hpp"

#include <utility>

namespace cpa::sim {

Simulation::EventId Simulation::at(Tick when, Callback fn) {
  if (when < now_) when = now_;
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(slot_gen_.size());
    slot_gen_.push_back(0);
  }
  const std::uint32_t gen = slot_gen_[slot];
  heap_.push(Event{when, next_order_++, slot, gen, std::move(fn)});
  ++live_;
  return EventId{pack(slot, gen)};
}

bool Simulation::cancel(EventId id) {
  if (!id.valid()) return false;
  const std::uint32_t slot = static_cast<std::uint32_t>((id.seq & 0xFFFFFFFFULL) - 1);
  const std::uint32_t gen = static_cast<std::uint32_t>(id.seq >> 32);
  if (slot >= slot_gen_.size() || slot_gen_[slot] != gen) {
    return false;  // fired or already cancelled
  }
  // The heap cannot be edited in place; bumping the slot generation makes
  // the heap entry stale, and pop_live() discards stale entries.
  retire_slot(slot);
  --live_;
  ++cancelled_;
  if (probe_ != nullptr) probe_->on_event_cancelled(now_);
  return true;
}

bool Simulation::pop_live(Event& out) {
  while (!heap_.empty()) {
    // priority_queue::top() is const; the callback must be moved out, so we
    // const_cast the non-key payload (the heap invariant does not depend on
    // `fn`).
    Event& top = const_cast<Event&>(heap_.top());
    if (!entry_live(top)) {
      heap_.pop();  // stale: was cancelled
      continue;
    }
    out.at = top.at;
    out.order = top.order;
    out.slot = top.slot;
    out.gen = top.gen;
    out.fn = std::move(top.fn);
    retire_slot(top.slot);
    heap_.pop();
    --live_;
    return true;
  }
  return false;
}

bool Simulation::step() {
  Event ev;
  if (!pop_live(ev)) return false;
  now_ = ev.at;
  ++fired_;
  if (probe_ != nullptr) probe_->on_event_fired(now_);
  ev.fn();
  return true;
}

std::size_t Simulation::run() {
  stopped_ = false;
  std::size_t n = 0;
  while (!stopped_ && step()) ++n;
  return n;
}

std::size_t Simulation::run_until(Tick deadline) {
  stopped_ = false;
  std::size_t n = 0;
  while (!stopped_ && !heap_.empty()) {
    const Event& top = heap_.top();
    if (!entry_live(top)) {
      heap_.pop();  // stale: was cancelled
      continue;
    }
    if (top.at > deadline) break;
    Event ev;
    if (!pop_live(ev)) break;
    now_ = ev.at;
    ++fired_;
    if (probe_ != nullptr) probe_->on_event_fired(now_);
    ev.fn();
    ++n;
  }
  if (now_ < deadline) now_ = deadline;
  return n;
}

}  // namespace cpa::sim
