#include "simcore/stats.hpp"

#include <cmath>
#include <cstdio>

namespace cpa::sim {

void OnlineStats::add(double x) {
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

void Samples::ensure_sorted() {
  if (sorted_) return;
  sorted_xs_ = xs_;
  std::sort(sorted_xs_.begin(), sorted_xs_.end());
  sorted_ = true;
}

double Samples::percentile(double p) {
  if (xs_.empty()) return 0.0;
  ensure_sorted();
  p = std::clamp(p, 0.0, 100.0);
  // Nearest-rank with linear interpolation.
  const double rank = p / 100.0 * static_cast<double>(sorted_xs_.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted_xs_.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted_xs_[lo] * (1.0 - frac) + sorted_xs_[hi] * frac;
}

double Samples::min() {
  ensure_sorted();
  return sorted_xs_.empty() ? 0.0 : sorted_xs_.front();
}

double Samples::max() {
  ensure_sorted();
  return sorted_xs_.empty() ? 0.0 : sorted_xs_.back();
}

double Samples::mean() const {
  if (xs_.empty()) return 0.0;
  double s = 0.0;
  for (const double x : xs_) s += x;
  return s / static_cast<double>(xs_.size());
}

void Log10Histogram::add(double x) {
  ++total_;
  if (x <= 0.0) x = base_;  // fold non-positive values into the first decade
  const int decade = static_cast<int>(std::floor(std::log10(x / base_)));
  if (bins_.empty()) {
    offset_ = decade;
    bins_.assign(1, 0);
  } else if (decade < offset_) {
    bins_.insert(bins_.begin(), static_cast<std::size_t>(offset_ - decade), 0);
    offset_ = decade;
  } else if (decade >= offset_ + static_cast<int>(bins_.size())) {
    bins_.resize(static_cast<std::size_t>(decade - offset_) + 1, 0);
  }
  ++bins_[static_cast<std::size_t>(decade - offset_)];
}

std::string Log10Histogram::render(const std::string& label) const {
  std::string out = label + " (n=" + std::to_string(total_) + ")\n";
  std::uint64_t peak = 1;
  for (const auto b : bins_) peak = std::max(peak, b);
  for (std::size_t i = 0; i < bins_.size(); ++i) {
    if (bins_[i] == 0) continue;
    const int decade = static_cast<int>(i) + offset_;
    char line[160];
    const double lo = base_ * std::pow(10.0, decade);
    const double hi = lo * 10.0;
    const int bar = static_cast<int>(50.0 * static_cast<double>(bins_[i]) /
                                     static_cast<double>(peak));
    std::snprintf(line, sizeof(line), "  [%10.3g, %10.3g) %6llu |", lo, hi,
                  static_cast<unsigned long long>(bins_[i]));
    out += line;
    out.append(static_cast<std::size_t>(std::max(bar, 1)), '#');
    out += '\n';
  }
  return out;
}

void RateMeter::record(Tick now, std::uint64_t bytes, std::uint64_t files) {
  entries_.push_back(Entry{now, bytes, files});
  window_bytes_ += bytes;
  window_files_ += files;
  total_bytes_ += bytes;
  total_files_ += files;
  last_ = now;
  expire(now);
}

void RateMeter::expire(Tick now) const {
  const Tick cutoff = now > window_ ? now - window_ : 0;
  while (head_ < entries_.size() && entries_[head_].at < cutoff) {
    window_bytes_ -= entries_[head_].bytes;
    window_files_ -= entries_[head_].files;
    ++head_;
  }
  // Compact occasionally so memory stays bounded on long runs.
  if (head_ > 1024 && head_ * 2 > entries_.size()) {
    entries_.erase(entries_.begin(),
                   entries_.begin() + static_cast<std::ptrdiff_t>(head_));
    head_ = 0;
  }
}

std::uint64_t RateMeter::bytes_in_window(Tick now) const {
  expire(now);
  return window_bytes_;
}

std::uint64_t RateMeter::files_in_window(Tick now) const {
  expire(now);
  return window_files_;
}

}  // namespace cpa::sim
