// Fluid-flow bandwidth model with max-min fair sharing.
//
// Every data movement in the simulated archive (client NIC -> 10GigE trunk
// -> NSD disk server, or client HBA -> FC SAN -> tape drive) is a *flow*
// that traverses a set of bandwidth *pools*.  Active flows share each pool
// max-min fairly: rates are computed by progressive filling (repeatedly
// saturate the tightest pool), which is the standard fluid approximation
// for TCP-like fair sharing used in storage/network simulators.
//
// Scheduling is incremental.  Pools keep membership indexes of the flows
// traversing them, so a mutation (flow start/finish/abort, capacity
// change) re-solves only the connected component of pools and flows it
// touches — a flow joining an idle pool never re-solves unrelated flows.
// Progress accounting is lazy: each flow carries a rate epoch and accrues
// bytes only when its own rate changes (or when it is queried), so
// quiescent flows cost nothing per event.  Pool busy time is integrated
// from idle/active transitions.  `recompute_rates_reference()` performs
// the full from-scratch water-filling; the incremental path is required
// (and differentially tested) to produce bit-identical rates.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <queue>
#include <string>
#include <utility>
#include <vector>

#include "simcore/probe.hpp"
#include "simcore/simulation.hpp"

namespace cpa::sim {

struct PoolId {
  std::uint32_t idx = std::uint32_t(-1);
  [[nodiscard]] bool valid() const { return idx != std::uint32_t(-1); }
  friend bool operator==(PoolId a, PoolId b) { return a.idx == b.idx; }
};

struct FlowId {
  std::uint64_t id = 0;
  [[nodiscard]] bool valid() const { return id != 0; }
  friend bool operator==(FlowId a, FlowId b) { return a.id == b.id; }
};

/// One hop of a flow's path.  `weight` is the fraction of the flow's rate
/// this pool carries: a serial leg (NIC, trunk, SAN, tape drive) carries
/// the full rate (weight 1); a transfer striped over N disk servers
/// charges each server only rate/N (weight 1/N), which is what lets wide
/// stripes aggregate bandwidth.
struct PathLeg {
  PoolId pool;
  double weight = 1.0;
  PathLeg(PoolId p) : pool(p) {}  // NOLINT(google-explicit-constructor)
  PathLeg(PoolId p, double w) : pool(p), weight(w) {}
};

struct FlowStats {
  Tick started = 0;
  Tick finished = 0;
  double bytes = 0.0;
  [[nodiscard]] double mean_rate() const {
    const double dt = to_seconds(finished - started);
    return dt > 0.0 ? bytes / dt : 0.0;
  }
};

class FlowNetwork {
 public:
  static constexpr double kUnlimited = std::numeric_limits<double>::infinity();

  explicit FlowNetwork(Simulation& sim) : sim_(sim) {}
  FlowNetwork(const FlowNetwork&) = delete;
  FlowNetwork& operator=(const FlowNetwork&) = delete;

  /// Registers a bandwidth pool with the given capacity in bytes/second.
  PoolId add_pool(std::string name, double capacity_bps);

  /// Changes a pool's capacity; rates of the flows in the pool's connected
  /// component are recomputed.  Capacity 0 stalls the component's flows
  /// (they keep their byte progress and resume when capacity returns).
  void set_pool_capacity(PoolId pool, double capacity_bps);

  [[nodiscard]] double pool_capacity(PoolId pool) const;
  [[nodiscard]] const std::string& pool_name(PoolId pool) const;
  /// Sum of current flow rates through the pool.
  [[nodiscard]] double pool_allocated(PoolId pool) const;
  [[nodiscard]] std::size_t pool_count() const { return pools_.size(); }
  /// Virtual seconds (up to `now()`) during which at least one flow
  /// traversed the pool — the utilization numerator behind the paper's
  /// "~75% bandwidth utilization from two 10GigE trunks".  A stalled but
  /// still-attached flow counts as busy (the pool is occupied).
  [[nodiscard]] double pool_busy_seconds(PoolId pool) const;

  /// Starts a flow of `bytes` through `path` (duplicate pools have their
  /// weights summed).  `on_complete` fires through the event queue when
  /// the last byte arrives.  `max_rate` caps the flow independently of
  /// pool contention.  A zero-byte flow completes at the current time.
  FlowId start_flow(std::vector<PathLeg> path, double bytes,
                    std::function<void(const FlowStats&)> on_complete,
                    double max_rate = kUnlimited);

  /// Aborts an in-progress flow; its completion callback never fires.
  /// This includes zero-byte flows whose completion is still queued.
  /// Returns false if the flow already completed or does not exist.
  bool abort_flow(FlowId id);

  /// Current fair-share rate of a flow (0 if unknown / completed).
  [[nodiscard]] double flow_rate(FlowId id) const;

  /// Bytes transferred so far by a flow (includes progress accrued since
  /// the flow's last rate change).
  [[nodiscard]] double flow_bytes_done(FlowId id) const;

  [[nodiscard]] std::size_t active_flows() const { return flows_.size(); }

  /// Ids of all in-progress flows, ascending (oracle/test accessor).
  [[nodiscard]] std::vector<FlowId> live_flow_ids() const;

  /// Full from-scratch progressive-filling water-filling over every active
  /// flow, without mutating any state.  Returns (flow id, rate) pairs in
  /// ascending id order.  This is the differential-test oracle: the
  /// incrementally maintained `flow_rate()` values must equal these
  /// *exactly* (bit for bit) after every mutation.
  [[nodiscard]] std::vector<std::pair<std::uint64_t, double>>
  recompute_rates_reference() const;

  /// Debug/bench knob: when on, every mutation re-solves all components
  /// from scratch instead of only the dirty component (the pre-incremental
  /// behaviour; what bench_flow_churn measures against).
  void set_full_recompute(bool on) { full_recompute_ = on; }

  /// Attaches a flow-lifecycle probe (nullptr detaches).
  void set_probe(FlowProbe* probe) { probe_ = probe; }

 private:
  /// Membership entry: which flow, and which of its legs, sits in a pool.
  /// The leg backpointer makes removal O(1) via swap-erase.
  struct PoolMember {
    std::uint64_t flow;
    std::uint32_t leg;
  };
  struct Pool {
    std::string name;
    double capacity;
    double busy_seconds = 0.0;  // integrated over active intervals
    Tick busy_since = 0;        // valid while members is non-empty
    std::vector<PoolMember> members;
  };
  struct Leg {
    std::uint32_t pool;
    double weight;
    std::uint32_t member_pos = 0;  // index into Pool::members
  };
  struct Flow {
    std::vector<Leg> legs;  // deduplicated (pool, weight) pairs
    double bytes_total;
    double bytes_done = 0.0;  // as of `rate_epoch`
    double rate = 0.0;
    double max_rate;
    Tick started;
    Tick rate_epoch = 0;        // when bytes_done/rate were last synced
    std::uint32_t pred_gen = 0;  // invalidates queued FinishEntry records
    std::uint64_t mark = 0;      // component-BFS visit stamp
    std::function<void(const FlowStats&)> on_complete;
  };
  /// Water-filling working item; `legs` aliases the flow's leg list.
  struct WfFlow {
    const std::vector<Leg>* legs;
    double cap;
    double rate = 0.0;
  };
  /// Predicted completion, lazily invalidated by Flow::pred_gen.
  struct FinishEntry {
    Tick at;
    std::uint64_t order;  // FIFO among equal ticks
    std::uint64_t flow;
    std::uint32_t gen;
  };
  struct FinishLater {
    bool operator()(const FinishEntry& a, const FinishEntry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.order > b.order;
    }
  };

  /// Accrues the flow's bytes up to `now` and stamps its rate epoch.
  void sync_flow(Flow& f, Tick now);
  /// Inserts/removes the flow in its legs' pool membership indexes,
  /// integrating pool busy time on idle/active transitions.
  void attach_flow(std::uint64_t id, Flow& f);
  void detach_flow(Flow& f);
  /// Pushes a fresh completion prediction for the flow (tombstoning any
  /// queued one).  Stalled flows (rate 0, bytes remaining) get none.
  void predict_completion(std::uint64_t id, Flow& f, Tick now);
  /// Re-solves the connected components reachable from the seed pools
  /// (plus, for start_flow, the seed flow), or every component when
  /// `full_recompute_` is set.  Flows in re-solved components have their
  /// bytes synced, rates reassigned, and completions re-predicted.
  void recompute_components(const std::vector<std::uint32_t>& seed_pools,
                            std::uint64_t seed_flow);
  /// Canonical per-component progressive filling.  `unfixed` must be in
  /// ascending flow-id order and `comp_pools` ascending; both orders are
  /// part of the determinism contract shared with the reference solver.
  static void solve_component(std::vector<WfFlow*>& unfixed,
                              const std::vector<std::uint32_t>& comp_pools,
                              std::vector<double>& residual,
                              std::vector<double>& weight_sum);
  /// Cancels and reschedules the single sim event for the earliest
  /// predicted completion.
  void schedule_next_completion();
  /// Fires from the completion event: completes every due flow, cascading
  /// through same-tick completions revealed by the recompute.
  void on_completion_event();

  Simulation& sim_;
  FlowProbe* probe_ = nullptr;
  bool full_recompute_ = false;
  std::vector<Pool> pools_;
  std::map<std::uint64_t, Flow> flows_;  // ordered: deterministic iteration
  /// Zero-byte flows whose queued completion can still be aborted.
  std::map<std::uint64_t, Simulation::EventId> zero_flows_;
  std::uint64_t next_flow_id_ = 1;
  std::uint64_t next_pred_order_ = 1;
  std::uint64_t mark_epoch_ = 0;
  std::priority_queue<FinishEntry, std::vector<FinishEntry>, FinishLater>
      finish_q_;
  Simulation::EventId completion_event_{};
  // Recompute scratch (member buffers so the steady path never allocates).
  std::vector<std::uint32_t> seed_pools_;
  std::vector<double> residual_;
  std::vector<double> weight_sum_;
  std::vector<std::uint64_t> pool_mark_;
  std::vector<std::uint32_t> comp_pools_;
  std::vector<Flow*> comp_flows_;
  std::vector<std::uint64_t> comp_flow_ids_;
  std::vector<WfFlow> wf_items_;
  std::vector<WfFlow*> wf_unfixed_;
};

}  // namespace cpa::sim
