// Fluid-flow bandwidth model with max-min fair sharing.
//
// Every data movement in the simulated archive (client NIC -> 10GigE trunk
// -> NSD disk server, or client HBA -> FC SAN -> tape drive) is a *flow*
// that traverses a set of bandwidth *pools*.  Active flows share each pool
// max-min fairly: rates are computed by progressive filling (repeatedly
// saturate the tightest pool), which is the standard fluid approximation
// for TCP-like fair sharing used in storage/network simulators.
//
// Rates change only when the set of flows or a pool capacity changes; the
// network then advances accumulated progress and reschedules the single
// earliest completion event.  Per-flow rate caps (e.g. a tape drive's
// streaming rate) participate in the fairness computation.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "simcore/probe.hpp"
#include "simcore/simulation.hpp"

namespace cpa::sim {

struct PoolId {
  std::uint32_t idx = std::uint32_t(-1);
  [[nodiscard]] bool valid() const { return idx != std::uint32_t(-1); }
  friend bool operator==(PoolId a, PoolId b) { return a.idx == b.idx; }
};

struct FlowId {
  std::uint64_t id = 0;
  [[nodiscard]] bool valid() const { return id != 0; }
  friend bool operator==(FlowId a, FlowId b) { return a.id == b.id; }
};

/// One hop of a flow's path.  `weight` is the fraction of the flow's rate
/// this pool carries: a serial leg (NIC, trunk, SAN, tape drive) carries
/// the full rate (weight 1); a transfer striped over N disk servers
/// charges each server only rate/N (weight 1/N), which is what lets wide
/// stripes aggregate bandwidth.
struct PathLeg {
  PoolId pool;
  double weight = 1.0;
  PathLeg(PoolId p) : pool(p) {}  // NOLINT(google-explicit-constructor)
  PathLeg(PoolId p, double w) : pool(p), weight(w) {}
};

struct FlowStats {
  Tick started = 0;
  Tick finished = 0;
  double bytes = 0.0;
  [[nodiscard]] double mean_rate() const {
    const double dt = to_seconds(finished - started);
    return dt > 0.0 ? bytes / dt : 0.0;
  }
};

class FlowNetwork {
 public:
  static constexpr double kUnlimited = std::numeric_limits<double>::infinity();

  explicit FlowNetwork(Simulation& sim) : sim_(sim) {}
  FlowNetwork(const FlowNetwork&) = delete;
  FlowNetwork& operator=(const FlowNetwork&) = delete;

  /// Registers a bandwidth pool with the given capacity in bytes/second.
  PoolId add_pool(std::string name, double capacity_bps);

  /// Changes a pool's capacity; active flow rates are recomputed.
  void set_pool_capacity(PoolId pool, double capacity_bps);

  [[nodiscard]] double pool_capacity(PoolId pool) const;
  [[nodiscard]] const std::string& pool_name(PoolId pool) const;
  /// Sum of current flow rates through the pool.
  [[nodiscard]] double pool_allocated(PoolId pool) const;
  [[nodiscard]] std::size_t pool_count() const { return pools_.size(); }
  /// Virtual seconds (up to the last rate change) during which at least
  /// one flow traversed the pool — the utilization numerator behind the
  /// paper's "~75% bandwidth utilization from two 10GigE trunks".
  [[nodiscard]] double pool_busy_seconds(PoolId pool) const;

  /// Starts a flow of `bytes` through `path` (duplicate pools have their
  /// weights summed).  `on_complete` fires through the event queue when
  /// the last byte arrives.  `max_rate` caps the flow independently of
  /// pool contention.  A zero-byte flow completes at the current time.
  FlowId start_flow(std::vector<PathLeg> path, double bytes,
                    std::function<void(const FlowStats&)> on_complete,
                    double max_rate = kUnlimited);

  /// Aborts an in-progress flow; its completion callback never fires.
  /// Returns false if the flow already completed or does not exist.
  bool abort_flow(FlowId id);

  /// Current fair-share rate of a flow (0 if unknown / completed).
  [[nodiscard]] double flow_rate(FlowId id) const;

  /// Bytes transferred so far by a flow (includes progress accrued since
  /// the last rate change).
  [[nodiscard]] double flow_bytes_done(FlowId id) const;

  [[nodiscard]] std::size_t active_flows() const { return flows_.size(); }

  /// Attaches a flow-lifecycle probe (nullptr detaches).
  void set_probe(FlowProbe* probe) { probe_ = probe; }

 private:
  struct Pool {
    std::string name;
    double capacity;
    unsigned active = 0;        // flows currently traversing the pool
    double busy_seconds = 0.0;  // accumulated in advance()
  };
  struct Flow {
    // Deduplicated (pool, weight) pairs.
    std::vector<std::pair<std::uint32_t, double>> pools;
    double bytes_total;
    double bytes_done = 0.0;
    double rate = 0.0;
    double max_rate;
    Tick started;
    std::function<void(const FlowStats&)> on_complete;
  };

  /// Accrues progress for all flows since `last_update_`.
  void advance();
  /// Progressive-filling max-min fairness over all active flows.
  void recompute_rates();
  /// Cancels and reschedules the single earliest-completion event.
  void schedule_next_completion();
  /// Fires from the completion event: completes every flow that is done.
  void on_completion_event();

  Simulation& sim_;
  FlowProbe* probe_ = nullptr;
  std::vector<Pool> pools_;
  std::map<std::uint64_t, Flow> flows_;  // ordered: deterministic iteration
  std::uint64_t next_flow_id_ = 1;
  Tick last_update_ = 0;
  Simulation::EventId completion_event_{};
};

}  // namespace cpa::sim
