// Instrumentation hooks for the simulation kernel.
//
// The observability layer (src/obs) sits *above* simcore in the dependency
// graph, so the kernel cannot call it directly.  Instead the kernel
// exposes these two narrow interfaces; obs::Observer implements both and
// higher layers wire it in.  Every hook site costs exactly one pointer
// test when no probe is attached.
#pragma once

#include <cstddef>
#include <cstdint>

#include "simcore/time.hpp"

namespace cpa::sim {

struct FlowStats;

/// Event-loop accounting: one call per fired event.
class SimProbe {
 public:
  virtual ~SimProbe() = default;
  /// Called after the clock advanced to `at`, before the callback runs.
  virtual void on_event_fired(Tick at) = 0;
  /// Called when a pending event is cancelled (tombstoned).  Defaulted so
  /// probes that only care about fired events need not override it.
  virtual void on_event_cancelled(Tick /*at*/) {}
};

/// Data-movement accounting: one call per flow transition.
class FlowProbe {
 public:
  virtual ~FlowProbe() = default;
  virtual void on_flow_started(std::uint64_t flow_id, double bytes,
                               Tick now) = 0;
  virtual void on_flow_completed(std::uint64_t flow_id,
                                 const FlowStats& stats) = 0;
  virtual void on_flow_aborted(std::uint64_t flow_id, Tick now) = 0;
  /// Called once per rate recomputation with the number of flows whose
  /// rates were re-solved (the dirty-component size; the full flow count
  /// when a reference/full recompute ran).  Defaulted: most probes only
  /// watch flow lifecycles.
  virtual void on_rates_recomputed(std::size_t /*flows_touched*/) {}
};

}  // namespace cpa::sim
