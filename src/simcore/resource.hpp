// FCFS counted resource: models entities that serve at most `capacity`
// concurrent holders (tape drives in a library, the robot arm, recall
// daemon slots on a node, ...).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>

#include "simcore/simulation.hpp"

namespace cpa::sim {

class Resource {
 public:
  using Grant = std::function<void()>;

  Resource(Simulation& sim, std::string name, std::size_t capacity);

  /// Queues a request; `on_grant` is invoked (via the event queue, never
  /// re-entrantly) once a slot is available.  Returns a ticket usable with
  /// `cancel_wait`.
  std::uint64_t acquire(Grant on_grant);

  /// Acquires immediately if a slot is free (grant runs via the event
  /// queue); returns false without queueing otherwise.
  bool try_acquire(Grant on_grant);

  /// Releases one held slot, waking the longest-waiting requester.
  void release();

  /// Removes a not-yet-granted request.  Returns false if it was already
  /// granted (in which case the holder must still `release()`).
  bool cancel_wait(std::uint64_t ticket);

  /// Changes the concurrency limit (fault windows shrink it, repairs grow
  /// it back).  Shrinking never revokes held slots — `in_use_` may exceed
  /// the new capacity until holders release; no new grants happen until it
  /// drops below.  Growing wakes waiters into the freed slots.  Capacity
  /// zero is allowed while shrunk (all requests queue).
  void set_capacity(std::size_t capacity);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::size_t in_use() const { return in_use_; }
  [[nodiscard]] std::size_t queue_length() const { return waiters_.size(); }
  [[nodiscard]] std::uint64_t total_grants() const { return grants_; }

 private:
  struct Waiter {
    std::uint64_t ticket;
    Grant fn;
  };
  void grant_one();

  Simulation& sim_;
  std::string name_;
  std::size_t capacity_;
  std::size_t in_use_ = 0;
  std::uint64_t next_ticket_ = 1;
  std::uint64_t grants_ = 0;
  std::deque<Waiter> waiters_;
};

}  // namespace cpa::sim
