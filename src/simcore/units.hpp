// Byte-size units and formatting helpers.
//
// Tape and network hardware is conventionally specified in decimal units
// (an LTO-4 drive streams at 100 MB/s = 1e8 bytes/s); file sizes in the
// paper are also decimal.  We therefore use decimal units throughout and
// provide binary units only where explicitly named (KiB, MiB, ...).
#pragma once

#include <cstdint>
#include <string>

namespace cpa {

inline constexpr std::uint64_t kKB = 1000ULL;
inline constexpr std::uint64_t kMB = 1000ULL * kKB;
inline constexpr std::uint64_t kGB = 1000ULL * kMB;
inline constexpr std::uint64_t kTB = 1000ULL * kGB;

inline constexpr std::uint64_t kKiB = 1024ULL;
inline constexpr std::uint64_t kMiB = 1024ULL * kKiB;
inline constexpr std::uint64_t kGiB = 1024ULL * kMiB;
inline constexpr std::uint64_t kTiB = 1024ULL * kGiB;

/// Renders a byte count with an adaptive decimal unit, e.g. "2.44 TB".
std::string format_bytes(std::uint64_t bytes);

/// Renders a rate in MB/s (decimal), e.g. "575.2 MB/s".
std::string format_rate_mbs(double bytes_per_sec);

}  // namespace cpa
