#include "simcore/units.hpp"

#include <cstdio>

namespace cpa {

std::string format_bytes(std::uint64_t bytes) {
  char buf[64];
  const double b = static_cast<double>(bytes);
  if (bytes >= kTB) {
    std::snprintf(buf, sizeof(buf), "%.2f TB", b / static_cast<double>(kTB));
  } else if (bytes >= kGB) {
    std::snprintf(buf, sizeof(buf), "%.2f GB", b / static_cast<double>(kGB));
  } else if (bytes >= kMB) {
    std::snprintf(buf, sizeof(buf), "%.2f MB", b / static_cast<double>(kMB));
  } else if (bytes >= kKB) {
    std::snprintf(buf, sizeof(buf), "%.2f KB", b / static_cast<double>(kKB));
  } else {
    std::snprintf(buf, sizeof(buf), "%llu B", static_cast<unsigned long long>(bytes));
  }
  return buf;
}

std::string format_rate_mbs(double bytes_per_sec) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.1f MB/s", bytes_per_sec / static_cast<double>(kMB));
  return buf;
}

}  // namespace cpa
