#include "simcore/resource.hpp"

#include <cassert>
#include <utility>

namespace cpa::sim {

Resource::Resource(Simulation& sim, std::string name, std::size_t capacity)
    : sim_(sim), name_(std::move(name)), capacity_(capacity) {
  assert(capacity_ > 0);
}

std::uint64_t Resource::acquire(Grant on_grant) {
  const std::uint64_t ticket = next_ticket_++;
  waiters_.push_back(Waiter{ticket, std::move(on_grant)});
  if (in_use_ < capacity_) grant_one();
  return ticket;
}

bool Resource::try_acquire(Grant on_grant) {
  if (in_use_ >= capacity_ || !waiters_.empty()) return false;
  const std::uint64_t ticket = next_ticket_++;
  waiters_.push_back(Waiter{ticket, std::move(on_grant)});
  grant_one();
  return true;
}

void Resource::release() {
  assert(in_use_ > 0);
  --in_use_;
  if (!waiters_.empty() && in_use_ < capacity_) grant_one();
}

void Resource::set_capacity(std::size_t capacity) {
  capacity_ = capacity;
  while (!waiters_.empty() && in_use_ < capacity_) grant_one();
}

bool Resource::cancel_wait(std::uint64_t ticket) {
  for (auto it = waiters_.begin(); it != waiters_.end(); ++it) {
    if (it->ticket == ticket) {
      waiters_.erase(it);
      return true;
    }
  }
  return false;
}

void Resource::grant_one() {
  assert(!waiters_.empty() && in_use_ < capacity_);
  ++in_use_;
  ++grants_;
  Grant fn = std::move(waiters_.front().fn);
  waiters_.pop_front();
  // Deliver through the event queue so grants are never re-entrant with the
  // caller's stack frame.
  sim_.after(0, std::move(fn));
}

}  // namespace cpa::sim
