// Online statistics, sample collections, and log-scale histograms used by
// the benchmark harnesses and the PFTool WatchDog.
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "simcore/time.hpp"

namespace cpa::sim {

/// Welford online mean/variance with min/max tracking.
class OnlineStats {
 public:
  void add(double x);

  [[nodiscard]] std::uint64_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const { return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0; }
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const { return sum_; }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Keeps every sample; supports exact percentiles.  Intended for the
/// per-job campaign series (62 samples in the paper) — not for per-file data.
class Samples {
 public:
  void add(double x) { xs_.push_back(x); sorted_ = false; }
  [[nodiscard]] std::size_t count() const { return xs_.size(); }
  [[nodiscard]] double percentile(double p);  // p in [0, 100]
  [[nodiscard]] double min();
  [[nodiscard]] double max();
  [[nodiscard]] double mean() const;
  [[nodiscard]] const std::vector<double>& values() const { return xs_; }

 private:
  void ensure_sorted();
  std::vector<double> xs_;
  std::vector<double> sorted_xs_;
  bool sorted_ = false;
};

/// Fixed-base log10 histogram, matching the paper's log10-scaled Figures
/// 8-9.  Bin i covers [base * 10^i, base * 10^(i+1)).
class Log10Histogram {
 public:
  explicit Log10Histogram(double base = 1.0) : base_(base) {}
  void add(double x);
  [[nodiscard]] std::uint64_t total() const { return total_; }
  /// Renders an ASCII histogram (one row per non-empty decade).
  [[nodiscard]] std::string render(const std::string& label) const;

 private:
  double base_;
  std::uint64_t total_ = 0;
  std::vector<std::uint64_t> bins_;  // index shifted by offset_
  int offset_ = 0;                   // bins_[i] covers decade (i + offset_)
};

/// Windowed byte/file counters driving the PFTool WatchDog's "progress in
/// the past T minutes" report and its stall detector.
class RateMeter {
 public:
  explicit RateMeter(Tick window = minutes(1)) : window_(window) {}

  void record(Tick now, std::uint64_t bytes, std::uint64_t files);

  /// Bytes observed inside the trailing window ending at `now`.
  [[nodiscard]] std::uint64_t bytes_in_window(Tick now) const;
  [[nodiscard]] std::uint64_t files_in_window(Tick now) const;
  [[nodiscard]] std::uint64_t total_bytes() const { return total_bytes_; }
  [[nodiscard]] std::uint64_t total_files() const { return total_files_; }
  /// Virtual time of the most recent record, or 0 if none.
  [[nodiscard]] Tick last_progress() const { return last_; }

 private:
  void expire(Tick now) const;

  struct Entry {
    Tick at;
    std::uint64_t bytes;
    std::uint64_t files;
  };
  Tick window_;
  Tick last_ = 0;
  std::uint64_t total_bytes_ = 0;
  std::uint64_t total_files_ = 0;
  mutable std::vector<Entry> entries_;  // expired lazily from the front
  mutable std::size_t head_ = 0;
  mutable std::uint64_t window_bytes_ = 0;
  mutable std::uint64_t window_files_ = 0;
};

}  // namespace cpa::sim
