// The discrete-event simulation kernel.
//
// A Simulation owns a virtual clock and a priority queue of events.  Every
// simulated subsystem (file systems, tape drives, PFTool processes, ...)
// advances exclusively by scheduling callbacks; there is no wall-clock or
// thread dependence, so a given seed always produces the identical run.
//
// Ties are broken by insertion order (FIFO at equal timestamps), which the
// rest of the code base relies on for determinism.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <string>
#include <unordered_set>
#include <vector>

#include "simcore/probe.hpp"
#include "simcore/time.hpp"

namespace cpa::sim {

class Simulation {
 public:
  using Callback = std::function<void()>;

  /// Handle to a scheduled event; may be used to cancel it before it fires.
  struct EventId {
    std::uint64_t seq = 0;
    [[nodiscard]] bool valid() const { return seq != 0; }
  };

  Simulation() = default;
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  /// Current virtual time.
  [[nodiscard]] Tick now() const { return now_; }

  /// Schedules `fn` at absolute time `when`.  Times in the past are clamped
  /// to `now()` (the event still fires, after all already-queued events at
  /// the current timestamp).
  EventId at(Tick when, Callback fn);

  /// Schedules `fn` after a relative delay.
  EventId after(Tick delay, Callback fn) { return at(now_ + delay, std::move(fn)); }

  /// Cancels a pending event.  Returns false if it already fired, was
  /// already cancelled, or the id is invalid.
  bool cancel(EventId id);

  /// Fires the single next event.  Returns false if the queue is empty.
  bool step();

  /// Runs until no events remain or `stop()` is called.
  /// Returns the number of events fired.
  std::size_t run();

  /// Runs all events with timestamp <= `deadline`, then sets the clock to
  /// `deadline`.  Returns the number of events fired.
  std::size_t run_until(Tick deadline);

  /// Requests `run()`/`run_until()` to return after the current event.
  void stop() { stopped_ = true; }

  /// Number of live (non-cancelled) pending events.
  [[nodiscard]] std::size_t pending() const { return live_; }

  /// Total events fired since construction (for capacity reporting).
  [[nodiscard]] std::uint64_t events_fired() const { return fired_; }

  /// Attaches an event-loop probe (nullptr detaches).  The probe sees
  /// every fired event; keep its hook trivial.
  void set_probe(SimProbe* probe) { probe_ = probe; }

 private:
  struct Event {
    Tick at;
    std::uint64_t seq;
    Callback fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;  // FIFO among equal timestamps
    }
  };

  /// Pops the next live event into `out`; returns false if none.
  bool pop_live(Event& out);

  Tick now_ = 0;
  SimProbe* probe_ = nullptr;
  std::uint64_t next_seq_ = 1;
  std::uint64_t fired_ = 0;
  std::size_t live_ = 0;
  bool stopped_ = false;
  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  // Seqs currently scheduled and not cancelled.  Membership here is the
  // source of truth for cancellation: the heap may hold stale (cancelled)
  // entries, which are skipped on pop.
  std::unordered_set<std::uint64_t> pending_seqs_;
};

}  // namespace cpa::sim
