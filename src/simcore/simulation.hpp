// The discrete-event simulation kernel.
//
// A Simulation owns a virtual clock and a priority queue of events.  Every
// simulated subsystem (file systems, tape drives, PFTool processes, ...)
// advances exclusively by scheduling callbacks; there is no wall-clock or
// thread dependence, so a given seed always produces the identical run.
//
// Ties are broken by insertion order (FIFO at equal timestamps), which the
// rest of the code base relies on for determinism.
//
// Cancellation uses generation-stamped slots instead of a hash set: every
// event occupies a slot in a flat vector whose generation stamp is baked
// into its EventId and its heap entry.  Cancel/fire bump the stamp, which
// tombstones any stale heap entry (discarded lazily on pop) and any stale
// handle, so schedule/cancel/fire are allocation-free once the slot vector
// and heap have reached their steady-state size.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "simcore/probe.hpp"
#include "simcore/time.hpp"

namespace cpa::sim {

class Simulation {
 public:
  using Callback = std::function<void()>;

  /// Handle to a scheduled event; may be used to cancel it before it
  /// fires.  Packs (slot, generation); stale handles compare against the
  /// slot's current generation, so cancel-after-fire and double-cancel
  /// are cheap no-ops.
  struct EventId {
    std::uint64_t seq = 0;
    [[nodiscard]] bool valid() const { return seq != 0; }
  };

  Simulation() = default;
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  /// Current virtual time.
  [[nodiscard]] Tick now() const { return now_; }

  /// Schedules `fn` at absolute time `when`.  Times in the past are clamped
  /// to `now()` (the event still fires, after all already-queued events at
  /// the current timestamp).
  EventId at(Tick when, Callback fn);

  /// Schedules `fn` after a relative delay.
  EventId after(Tick delay, Callback fn) { return at(now_ + delay, std::move(fn)); }

  /// Cancels a pending event.  Returns false if it already fired, was
  /// already cancelled, or the id is invalid.
  bool cancel(EventId id);

  /// Fires the single next event.  Returns false if the queue is empty.
  bool step();

  /// Runs until no events remain or `stop()` is called.
  /// Returns the number of events fired.
  std::size_t run();

  /// Runs all events with timestamp <= `deadline`, then sets the clock to
  /// `deadline`.  Returns the number of events fired.
  std::size_t run_until(Tick deadline);

  /// Requests `run()`/`run_until()` to return after the current event.
  void stop() { stopped_ = true; }

  /// Number of live (non-cancelled) pending events.
  [[nodiscard]] std::size_t pending() const { return live_; }

  /// Total events fired since construction (for capacity reporting).
  [[nodiscard]] std::uint64_t events_fired() const { return fired_; }

  /// Total events cancelled since construction.
  [[nodiscard]] std::uint64_t events_cancelled() const { return cancelled_; }

  /// Attaches an event-loop probe (nullptr detaches).  The probe sees
  /// every fired event; keep its hook trivial.
  void set_probe(SimProbe* probe) { probe_ = probe; }

 private:
  struct Event {
    Tick at;
    std::uint64_t order;  // insertion order: FIFO among equal timestamps
    std::uint32_t slot;
    std::uint32_t gen;
    Callback fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.order > b.order;
    }
  };

  static constexpr std::uint64_t pack(std::uint32_t slot, std::uint32_t gen) {
    // +1 keeps seq nonzero (slot 0, generation 0 is a legal event).
    return (static_cast<std::uint64_t>(gen) << 32) | (slot + 1ULL);
  }

  /// True when the heap entry's stamp matches its slot (i.e. not
  /// cancelled and not fired).
  [[nodiscard]] bool entry_live(const Event& e) const {
    return e.slot < slot_gen_.size() && slot_gen_[e.slot] == e.gen;
  }

  /// Bumps the slot's generation (tombstoning every outstanding handle and
  /// heap entry for it) and recycles it.
  void retire_slot(std::uint32_t slot) {
    ++slot_gen_[slot];
    free_slots_.push_back(slot);
  }

  /// Pops the next live event into `out`; returns false if none.
  bool pop_live(Event& out);

  Tick now_ = 0;
  SimProbe* probe_ = nullptr;
  std::uint64_t next_order_ = 1;
  std::uint64_t fired_ = 0;
  std::uint64_t cancelled_ = 0;
  std::size_t live_ = 0;
  bool stopped_ = false;
  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  // Per-slot generation stamps.  A handle or heap entry is live iff its
  // stamp equals the slot's current one; the heap may hold stale
  // (tombstoned) entries, which are skipped on pop.
  std::vector<std::uint32_t> slot_gen_;
  std::vector<std::uint32_t> free_slots_;
};

}  // namespace cpa::sim
