// Virtual time for the discrete-event simulation.
//
// All simulated components share a single monotonically increasing virtual
// clock measured in integer nanoseconds ("ticks").  Using a fixed-point
// integer clock keeps event ordering exact and platform independent, which
// in turn keeps every benchmark in this repository bit-reproducible.
#pragma once

#include <cstdint>
#include <string>

namespace cpa::sim {

/// Virtual time in nanoseconds since simulation start.
using Tick = std::uint64_t;

/// Signed tick difference (for deltas that may be negative).
using TickDelta = std::int64_t;

inline constexpr Tick kTicksPerUsec = 1'000ULL;
inline constexpr Tick kTicksPerMsec = 1'000'000ULL;
inline constexpr Tick kTicksPerSec = 1'000'000'000ULL;

/// Converts seconds (possibly fractional) to ticks, rounding to nearest.
constexpr Tick secs(double s) {
  return static_cast<Tick>(s * static_cast<double>(kTicksPerSec) + 0.5);
}

constexpr Tick msecs(double ms) {
  return static_cast<Tick>(ms * static_cast<double>(kTicksPerMsec) + 0.5);
}

constexpr Tick usecs(double us) {
  return static_cast<Tick>(us * static_cast<double>(kTicksPerUsec) + 0.5);
}

constexpr Tick minutes(double m) { return secs(m * 60.0); }
constexpr Tick hours(double h) { return secs(h * 3600.0); }
constexpr Tick days(double d) { return secs(d * 86400.0); }

/// Converts ticks back to floating-point seconds.
constexpr double to_seconds(Tick t) {
  return static_cast<double>(t) / static_cast<double>(kTicksPerSec);
}

/// Human-readable rendering, e.g. "2h03m12.5s" — used in reports only.
std::string format_duration(Tick t);

}  // namespace cpa::sim
