#include "simcore/rng.hpp"

#include <cassert>
#include <cmath>

namespace cpa::sim {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& s : s_) s = splitmix64(x);
  // xoshiro must not start from the all-zero state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

Rng Rng::split() { return Rng(next_u64() ^ 0xA5A5A5A55A5A5A5AULL); }

double Rng::uniform() {
  // 53 random mantissa bits -> [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::uint64_t Rng::uniform_u64(std::uint64_t lo, std::uint64_t hi) {
  assert(lo <= hi);
  const std::uint64_t span = hi - lo + 1;
  if (span == 0) return next_u64();  // full range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = std::uint64_t(-1) - std::uint64_t(-1) % span;
  std::uint64_t v;
  do {
    v = next_u64();
  } while (v >= limit);
  return lo + v % span;
}

std::int64_t Rng::uniform_i64(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo);
  return lo + static_cast<std::int64_t>(uniform_u64(0, span));
}

bool Rng::chance(double p) { return uniform() < p; }

double Rng::exponential(double mean) {
  double u;
  do {
    u = uniform();
  } while (u <= 0.0);
  return -mean * std::log(u);
}

double Rng::normal(double mean, double stddev) {
  if (have_spare_normal_) {
    have_spare_normal_ = false;
    return mean + stddev * spare_normal_;
  }
  double u1;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * 3.141592653589793238462643 * u2;
  spare_normal_ = r * std::sin(theta);
  have_spare_normal_ = true;
  return mean + stddev * r * std::cos(theta);
}

double Rng::lognormal(double mu, double sigma) {
  return std::exp(normal(mu, sigma));
}

double Rng::lognormal_mean(double mean, double sigma_log) {
  assert(mean > 0.0);
  // E[exp(N(mu, s))] = exp(mu + s^2/2)  =>  mu = ln(mean) - s^2/2.
  const double mu = std::log(mean) - 0.5 * sigma_log * sigma_log;
  return lognormal(mu, sigma_log);
}

double Rng::bounded_pareto(double alpha, double lo, double hi) {
  assert(alpha > 0.0 && lo > 0.0 && hi > lo);
  const double u = uniform();
  const double la = std::pow(lo, alpha);
  const double ha = std::pow(hi, alpha);
  return std::pow(-(u * ha - u * la - ha) / (ha * la), -1.0 / alpha);
}

std::size_t Rng::weighted_choice(std::span<const double> weights) {
  assert(!weights.empty());
  double total = 0.0;
  for (const double w : weights) total += w;
  assert(total > 0.0);
  double x = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    x -= weights[i];
    if (x < 0.0) return i;
  }
  return weights.size() - 1;  // floating-point slop
}

}  // namespace cpa::sim
