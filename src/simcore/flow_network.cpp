#include "simcore/flow_network.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace cpa::sim {
namespace {
// Bytes below this are considered "transferred" when deciding completion;
// integer-tick rounding can leave sub-nanosecond residues.
constexpr double kByteEps = 1e-6;
}  // namespace

PoolId FlowNetwork::add_pool(std::string name, double capacity_bps) {
  assert(capacity_bps >= 0.0);
  pools_.push_back(Pool{std::move(name), capacity_bps});
  return PoolId{static_cast<std::uint32_t>(pools_.size() - 1)};
}

void FlowNetwork::set_pool_capacity(PoolId pool, double capacity_bps) {
  assert(pool.valid() && pool.idx < pools_.size());
  advance();
  pools_[pool.idx].capacity = capacity_bps;
  recompute_rates();
  schedule_next_completion();
}

double FlowNetwork::pool_capacity(PoolId pool) const {
  assert(pool.valid() && pool.idx < pools_.size());
  return pools_[pool.idx].capacity;
}

const std::string& FlowNetwork::pool_name(PoolId pool) const {
  assert(pool.valid() && pool.idx < pools_.size());
  return pools_[pool.idx].name;
}

double FlowNetwork::pool_busy_seconds(PoolId pool) const {
  assert(pool.valid() && pool.idx < pools_.size());
  return pools_[pool.idx].busy_seconds;
}

double FlowNetwork::pool_allocated(PoolId pool) const {
  assert(pool.valid() && pool.idx < pools_.size());
  double sum = 0.0;
  for (const auto& [id, f] : flows_) {
    for (const auto& [p, w] : f.pools) {
      if (p == pool.idx) sum += f.rate * w;
    }
  }
  return sum;
}

FlowId FlowNetwork::start_flow(std::vector<PathLeg> path, double bytes,
                               std::function<void(const FlowStats&)> on_complete,
                               double max_rate) {
  assert(bytes >= 0.0);
  assert(max_rate > 0.0);
  Flow f;
  f.pools.reserve(path.size());
  for (const PathLeg& leg : path) {
    assert(leg.pool.valid() && leg.pool.idx < pools_.size());
    assert(leg.weight > 0.0);
    bool merged = false;
    for (auto& [p, w] : f.pools) {
      if (p == leg.pool.idx) {
        w += leg.weight;
        merged = true;
        break;
      }
    }
    if (!merged) f.pools.emplace_back(leg.pool.idx, leg.weight);
  }
  f.bytes_total = bytes;
  f.max_rate = max_rate;
  f.started = sim_.now();
  f.on_complete = std::move(on_complete);

  const std::uint64_t id = next_flow_id_++;

  if (probe_ != nullptr) probe_->on_flow_started(id, bytes, sim_.now());

  if (bytes <= kByteEps) {
    // Degenerate flow: complete immediately (via the event queue).
    FlowStats st{f.started, sim_.now(), bytes};
    sim_.after(0, [this, id, cb = std::move(f.on_complete), st] {
      if (probe_ != nullptr) probe_->on_flow_completed(id, st);
      if (cb) cb(st);
    });
    return FlowId{id};
  }

  advance();
  for (const auto& [p, w] : f.pools) ++pools_[p].active;
  flows_.emplace(id, std::move(f));
  recompute_rates();
  schedule_next_completion();
  return FlowId{id};
}

bool FlowNetwork::abort_flow(FlowId id) {
  auto it = flows_.find(id.id);
  if (it == flows_.end()) return false;
  advance();
  for (const auto& [p, w] : it->second.pools) --pools_[p].active;
  flows_.erase(it);
  recompute_rates();
  schedule_next_completion();
  if (probe_ != nullptr) probe_->on_flow_aborted(id.id, sim_.now());
  return true;
}

double FlowNetwork::flow_rate(FlowId id) const {
  auto it = flows_.find(id.id);
  return it == flows_.end() ? 0.0 : it->second.rate;
}

double FlowNetwork::flow_bytes_done(FlowId id) const {
  auto it = flows_.find(id.id);
  if (it == flows_.end()) return 0.0;
  const double dt = to_seconds(sim_.now() - last_update_);
  return std::min(it->second.bytes_total,
                  it->second.bytes_done + it->second.rate * dt);
}

void FlowNetwork::advance() {
  const Tick now = sim_.now();
  if (now == last_update_) return;
  const double dt = to_seconds(now - last_update_);
  for (auto& [id, f] : flows_) {
    f.bytes_done = std::min(f.bytes_total, f.bytes_done + f.rate * dt);
  }
  if (!flows_.empty()) {
    for (Pool& p : pools_) {
      if (p.active > 0) p.busy_seconds += dt;
    }
  }
  last_update_ = now;
}

void FlowNetwork::recompute_rates() {
  // Progressive filling (water-filling) with per-flow caps and per-leg
  // weights.  All unfixed flows' rates rise together; pool p saturates at
  // rate r = residual_p / W_p, where W_p is the total weight of unfixed
  // flows through it:
  //   1. the system-wide bottleneck share is min_p residual_p / W_p;
  //   2. any unfixed flow whose cap is below that share is fixed at its
  //      cap first (it cannot use its full fair share anywhere);
  //   3. otherwise all unfixed flows through the bottleneck pool are fixed
  //      at the bottleneck share.
  // Each round fixes at least one flow, so this is O(F * (F + P)).
  if (flows_.empty()) return;

  std::vector<double> residual(pools_.size());
  for (std::size_t i = 0; i < pools_.size(); ++i) residual[i] = pools_[i].capacity;

  std::vector<Flow*> unfixed;
  unfixed.reserve(flows_.size());
  for (auto& [id, f] : flows_) {
    f.rate = 0.0;
    unfixed.push_back(&f);
  }

  std::vector<double> weight_sum(pools_.size(), 0.0);
  while (!unfixed.empty()) {
    std::fill(weight_sum.begin(), weight_sum.end(), 0.0);
    for (const Flow* f : unfixed) {
      for (const auto& [p, w] : f->pools) weight_sum[p] += w;
    }

    double share = std::numeric_limits<double>::infinity();
    std::uint32_t bottleneck = std::uint32_t(-1);
    for (std::uint32_t p = 0; p < pools_.size(); ++p) {
      if (weight_sum[p] <= 0.0) continue;
      const double s = std::max(residual[p], 0.0) / weight_sum[p];
      if (s < share) {
        share = s;
        bottleneck = p;
      }
    }

    auto fix_flow = [&](Flow* f, double rate) {
      f->rate = rate;
      for (const auto& [p, w] : f->pools) residual[p] -= rate * w;
    };

    // Flows that traverse no pools at all are limited only by their cap.
    // (The archive always routes through at least one pool, but the model
    // stays well-defined without.)
    if (bottleneck == std::uint32_t(-1)) {
      for (Flow* f : unfixed) {
        f->rate = std::isinf(f->max_rate) ? 0.0 : f->max_rate;
      }
      unfixed.clear();
      break;
    }

    // Step 2: cap-limited flows first.
    bool fixed_any_capped = false;
    for (std::size_t i = 0; i < unfixed.size();) {
      Flow* f = unfixed[i];
      if (f->max_rate <= share) {
        fix_flow(f, f->max_rate);
        unfixed[i] = unfixed.back();
        unfixed.pop_back();
        fixed_any_capped = true;
      } else {
        ++i;
      }
    }
    if (fixed_any_capped) continue;

    // Step 3: saturate the bottleneck pool.
    for (std::size_t i = 0; i < unfixed.size();) {
      Flow* f = unfixed[i];
      bool through = false;
      for (const auto& [p, w] : f->pools) {
        if (p == bottleneck) {
          through = true;
          break;
        }
      }
      if (through) {
        fix_flow(f, share);
        unfixed[i] = unfixed.back();
        unfixed.pop_back();
      } else {
        ++i;
      }
    }
  }
}

void FlowNetwork::schedule_next_completion() {
  if (completion_event_.valid()) {
    sim_.cancel(completion_event_);
    completion_event_ = {};
  }
  if (flows_.empty()) return;

  double earliest_s = std::numeric_limits<double>::infinity();
  for (const auto& [id, f] : flows_) {
    const double remaining = f.bytes_total - f.bytes_done;
    if (remaining <= kByteEps) {
      earliest_s = 0.0;
      break;
    }
    if (f.rate > 0.0) {
      earliest_s = std::min(earliest_s, remaining / f.rate);
    }
  }
  if (std::isinf(earliest_s)) return;  // everything stalled (capacity 0)

  // Round up to the next tick so the flow is certainly finished when the
  // event fires.
  const Tick dt =
      static_cast<Tick>(std::ceil(earliest_s * static_cast<double>(kTicksPerSec)));
  completion_event_ = sim_.after(dt, [this] { on_completion_event(); });
}

void FlowNetwork::on_completion_event() {
  completion_event_ = {};
  advance();

  // Collect finished flows first (callbacks may start new flows).
  struct Done {
    std::uint64_t id;
    FlowStats st;
    std::function<void(const FlowStats&)> cb;
  };
  std::vector<Done> done;
  for (auto it = flows_.begin(); it != flows_.end();) {
    Flow& f = it->second;
    if (f.bytes_total - f.bytes_done <= kByteEps) {
      for (const auto& [p, w] : f.pools) --pools_[p].active;
      done.push_back(Done{it->first,
                          FlowStats{f.started, sim_.now(), f.bytes_total},
                          std::move(f.on_complete)});
      it = flows_.erase(it);
    } else {
      ++it;
    }
  }
  recompute_rates();
  schedule_next_completion();

  for (auto& d : done) {
    if (probe_ != nullptr) probe_->on_flow_completed(d.id, d.st);
    if (d.cb) d.cb(d.st);
  }
}

}  // namespace cpa::sim
