#include "simcore/flow_network.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <unordered_set>

namespace cpa::sim {
namespace {
// Bytes below this are considered "transferred" when deciding completion;
// integer-tick rounding can leave sub-nanosecond residues.
constexpr double kByteEps = 1e-6;
// Completion predictions beyond this many virtual seconds (> 100 years)
// are treated as "never": the flow stays attached and is re-predicted
// when a mutation changes its rate.  Keeps the seconds -> Tick cast in
// range for pathological byte/rate combinations.
constexpr double kNeverSeconds = 4.0e9;
}  // namespace

PoolId FlowNetwork::add_pool(std::string name, double capacity_bps) {
  assert(capacity_bps >= 0.0);
  pools_.push_back(Pool{std::move(name), capacity_bps, 0.0, 0, {}});
  return PoolId{static_cast<std::uint32_t>(pools_.size() - 1)};
}

void FlowNetwork::set_pool_capacity(PoolId pool, double capacity_bps) {
  assert(pool.valid() && pool.idx < pools_.size());
  pools_[pool.idx].capacity = capacity_bps;
  if (pools_[pool.idx].members.empty() && !full_recompute_) return;
  seed_pools_.clear();
  seed_pools_.push_back(pool.idx);
  recompute_components(seed_pools_, 0);
  schedule_next_completion();
}

double FlowNetwork::pool_capacity(PoolId pool) const {
  assert(pool.valid() && pool.idx < pools_.size());
  return pools_[pool.idx].capacity;
}

const std::string& FlowNetwork::pool_name(PoolId pool) const {
  assert(pool.valid() && pool.idx < pools_.size());
  return pools_[pool.idx].name;
}

double FlowNetwork::pool_busy_seconds(PoolId pool) const {
  assert(pool.valid() && pool.idx < pools_.size());
  const Pool& p = pools_[pool.idx];
  double busy = p.busy_seconds;
  if (!p.members.empty()) busy += to_seconds(sim_.now() - p.busy_since);
  return busy;
}

double FlowNetwork::pool_allocated(PoolId pool) const {
  assert(pool.valid() && pool.idx < pools_.size());
  double sum = 0.0;
  for (const PoolMember& m : pools_[pool.idx].members) {
    const auto it = flows_.find(m.flow);
    sum += it->second.rate * it->second.legs[m.leg].weight;
  }
  return sum;
}

FlowId FlowNetwork::start_flow(std::vector<PathLeg> path, double bytes,
                               std::function<void(const FlowStats&)> on_complete,
                               double max_rate) {
  assert(bytes >= 0.0);
  assert(max_rate > 0.0);
  Flow f;
  f.legs.reserve(path.size());
  for (const PathLeg& leg : path) {
    assert(leg.pool.valid() && leg.pool.idx < pools_.size());
    assert(leg.weight > 0.0);
    bool merged = false;
    for (Leg& l : f.legs) {
      if (l.pool == leg.pool.idx) {
        l.weight += leg.weight;
        merged = true;
        break;
      }
    }
    if (!merged) f.legs.push_back(Leg{leg.pool.idx, leg.weight, 0});
  }
  f.bytes_total = bytes;
  f.max_rate = max_rate;
  f.started = sim_.now();
  f.rate_epoch = sim_.now();
  f.on_complete = std::move(on_complete);

  const std::uint64_t id = next_flow_id_++;

  if (probe_ != nullptr) probe_->on_flow_started(id, bytes, sim_.now());

  if (bytes <= kByteEps) {
    // Degenerate flow: complete immediately (via the event queue), but
    // keep the queued completion cancellable through abort_flow.
    FlowStats st{f.started, sim_.now(), bytes};
    const Simulation::EventId ev =
        sim_.after(0, [this, id, cb = std::move(f.on_complete), st] {
          zero_flows_.erase(id);
          if (probe_ != nullptr) probe_->on_flow_completed(id, st);
          if (cb) cb(st);
        });
    zero_flows_.emplace(id, ev);
    return FlowId{id};
  }

  auto [it, inserted] = flows_.emplace(id, std::move(f));
  assert(inserted);
  attach_flow(id, it->second);
  seed_pools_.clear();
  recompute_components(seed_pools_, id);
  schedule_next_completion();
  return FlowId{id};
}

bool FlowNetwork::abort_flow(FlowId id) {
  const auto zit = zero_flows_.find(id.id);
  if (zit != zero_flows_.end()) {
    sim_.cancel(zit->second);
    zero_flows_.erase(zit);
    if (probe_ != nullptr) probe_->on_flow_aborted(id.id, sim_.now());
    return true;
  }
  const auto it = flows_.find(id.id);
  if (it == flows_.end()) return false;
  Flow& f = it->second;
  detach_flow(f);
  seed_pools_.clear();
  for (const Leg& leg : f.legs) seed_pools_.push_back(leg.pool);
  flows_.erase(it);
  recompute_components(seed_pools_, 0);
  schedule_next_completion();
  if (probe_ != nullptr) probe_->on_flow_aborted(id.id, sim_.now());
  return true;
}

double FlowNetwork::flow_rate(FlowId id) const {
  const auto it = flows_.find(id.id);
  return it == flows_.end() ? 0.0 : it->second.rate;
}

double FlowNetwork::flow_bytes_done(FlowId id) const {
  const auto it = flows_.find(id.id);
  if (it == flows_.end()) return 0.0;
  const Flow& f = it->second;
  const double dt = to_seconds(sim_.now() - f.rate_epoch);
  return std::min(f.bytes_total, f.bytes_done + f.rate * dt);
}

std::vector<FlowId> FlowNetwork::live_flow_ids() const {
  std::vector<FlowId> out;
  out.reserve(flows_.size());
  for (const auto& [id, f] : flows_) out.push_back(FlowId{id});
  return out;
}

void FlowNetwork::sync_flow(Flow& f, Tick now) {
  if (now == f.rate_epoch) return;
  const double dt = to_seconds(now - f.rate_epoch);
  f.bytes_done = std::min(f.bytes_total, f.bytes_done + f.rate * dt);
  f.rate_epoch = now;
}

void FlowNetwork::attach_flow(std::uint64_t id, Flow& f) {
  const Tick now = sim_.now();
  for (std::uint32_t i = 0; i < f.legs.size(); ++i) {
    Pool& p = pools_[f.legs[i].pool];
    if (p.members.empty()) p.busy_since = now;  // idle -> active transition
    f.legs[i].member_pos = static_cast<std::uint32_t>(p.members.size());
    p.members.push_back(PoolMember{id, i});
  }
}

void FlowNetwork::detach_flow(Flow& f) {
  const Tick now = sim_.now();
  for (const Leg& leg : f.legs) {
    Pool& p = pools_[leg.pool];
    const std::uint32_t pos = leg.member_pos;
    const PoolMember moved = p.members.back();
    p.members.pop_back();
    if (pos < p.members.size()) {
      p.members[pos] = moved;
      flows_.find(moved.flow)->second.legs[moved.leg].member_pos = pos;
    }
    if (p.members.empty()) {
      p.busy_seconds += to_seconds(now - p.busy_since);  // active -> idle
    }
  }
}

void FlowNetwork::predict_completion(std::uint64_t id, Flow& f, Tick now) {
  ++f.pred_gen;  // tombstone any queued prediction
  const double remaining = f.bytes_total - f.bytes_done;
  Tick at;
  if (remaining <= kByteEps) {
    at = now;
  } else if (f.rate > 0.0) {
    const double s = remaining / f.rate;
    if (s >= kNeverSeconds) return;  // effectively stalled
    // Round up to the next tick so the flow is certainly finished when
    // the event fires.
    at = now + static_cast<Tick>(std::ceil(s * static_cast<double>(kTicksPerSec)));
  } else {
    return;  // stalled: re-predicted when a mutation restores its rate
  }
  finish_q_.push(FinishEntry{at, next_pred_order_++, id, f.pred_gen});
}

void FlowNetwork::solve_component(std::vector<WfFlow*>& unfixed,
                                  const std::vector<std::uint32_t>& comp_pools,
                                  std::vector<double>& residual,
                                  std::vector<double>& weight_sum) {
  // Progressive filling (water-filling) with per-flow caps and per-leg
  // weights.  All unfixed flows' rates rise together; pool p saturates at
  // rate r = residual_p / W_p, where W_p is the total weight of unfixed
  // flows through it:
  //   1. the component bottleneck share is min_p residual_p / W_p;
  //   2. any unfixed flow whose cap is below that share is fixed at its
  //      cap first (it cannot use its full fair share anywhere);
  //   3. otherwise all unfixed flows through the bottleneck pool are fixed
  //      at the bottleneck share.
  // Each round fixes at least one flow, so this is O(F * (F + P)) in the
  // *component* size.  `unfixed` arrives in ascending flow-id order and
  // `comp_pools` ascending; together with this function being shared by
  // the incremental and reference paths, that makes both produce
  // bit-identical floating-point rates.
  while (!unfixed.empty()) {
    for (const std::uint32_t p : comp_pools) weight_sum[p] = 0.0;
    for (const WfFlow* f : unfixed) {
      for (const Leg& leg : *f->legs) weight_sum[leg.pool] += leg.weight;
    }

    double share = std::numeric_limits<double>::infinity();
    std::uint32_t bottleneck = std::uint32_t(-1);
    for (const std::uint32_t p : comp_pools) {
      if (weight_sum[p] <= 0.0) continue;
      const double s = std::max(residual[p], 0.0) / weight_sum[p];
      if (s < share) {
        share = s;
        bottleneck = p;
      }
    }

    auto fix_flow = [&](WfFlow* f, double rate) {
      f->rate = rate;
      for (const Leg& leg : *f->legs) residual[leg.pool] -= rate * leg.weight;
    };

    // Flows that traverse no pools at all are limited only by their cap.
    // (The archive always routes through at least one pool, but the model
    // stays well-defined without.)
    if (bottleneck == std::uint32_t(-1)) {
      for (WfFlow* f : unfixed) {
        f->rate = std::isinf(f->cap) ? 0.0 : f->cap;
      }
      unfixed.clear();
      break;
    }

    // Step 2: cap-limited flows first.
    bool fixed_any_capped = false;
    for (std::size_t i = 0; i < unfixed.size();) {
      WfFlow* f = unfixed[i];
      if (f->cap <= share) {
        fix_flow(f, f->cap);
        unfixed[i] = unfixed.back();
        unfixed.pop_back();
        fixed_any_capped = true;
      } else {
        ++i;
      }
    }
    if (fixed_any_capped) continue;

    // Step 3: saturate the bottleneck pool.
    for (std::size_t i = 0; i < unfixed.size();) {
      WfFlow* f = unfixed[i];
      bool through = false;
      for (const Leg& leg : *f->legs) {
        if (leg.pool == bottleneck) {
          through = true;
          break;
        }
      }
      if (through) {
        fix_flow(f, share);
        unfixed[i] = unfixed.back();
        unfixed.pop_back();
      } else {
        ++i;
      }
    }
  }
}

void FlowNetwork::recompute_components(
    const std::vector<std::uint32_t>& seed_pools, std::uint64_t seed_flow) {
  const Tick now = sim_.now();
  ++mark_epoch_;
  if (pool_mark_.size() < pools_.size()) pool_mark_.resize(pools_.size(), 0);
  if (residual_.size() < pools_.size()) {
    residual_.resize(pools_.size());
    weight_sum_.resize(pools_.size());
  }
  std::size_t touched = 0;

  // Expands the connected component reachable from a seed flow or pool
  // (whichever is already collected in comp_flows_/comp_pools_), then
  // re-solves it canonically: flows ascending by id, pools ascending.
  const auto expand_and_solve = [&] {
    for (std::size_t i = 0; i < comp_flows_.size(); ++i) {
      for (const Leg& leg : comp_flows_[i]->legs) {
        if (pool_mark_[leg.pool] == mark_epoch_) continue;
        pool_mark_[leg.pool] = mark_epoch_;
        comp_pools_.push_back(leg.pool);
        for (const PoolMember& m : pools_[leg.pool].members) {
          Flow& mf = flows_.find(m.flow)->second;
          if (mf.mark != mark_epoch_) {
            mf.mark = mark_epoch_;
            comp_flow_ids_.push_back(m.flow);
            comp_flows_.push_back(&mf);
          }
        }
      }
    }
    if (comp_flows_.empty()) return;
    std::sort(comp_flow_ids_.begin(), comp_flow_ids_.end());
    std::sort(comp_pools_.begin(), comp_pools_.end());
    comp_flows_.clear();
    for (const std::uint64_t cid : comp_flow_ids_) {
      comp_flows_.push_back(&flows_.find(cid)->second);
    }

    for (const std::uint32_t p : comp_pools_) {
      residual_[p] = pools_[p].capacity;
      weight_sum_[p] = 0.0;
    }
    wf_items_.clear();
    wf_unfixed_.clear();
    wf_items_.reserve(comp_flows_.size());
    for (Flow* f : comp_flows_) {
      sync_flow(*f, now);  // accrue bytes at the outgoing rate
      wf_items_.push_back(WfFlow{&f->legs, f->max_rate, 0.0});
    }
    for (WfFlow& item : wf_items_) wf_unfixed_.push_back(&item);
    solve_component(wf_unfixed_, comp_pools_, residual_, weight_sum_);
    for (std::size_t i = 0; i < comp_flows_.size(); ++i) {
      Flow& f = *comp_flows_[i];
      f.rate = wf_items_[i].rate;
      predict_completion(comp_flow_ids_[i], f, now);
    }
    touched += comp_flows_.size();
  };

  const auto seed_with_flow = [&](std::uint64_t id, Flow& f) {
    comp_flows_.clear();
    comp_flow_ids_.clear();
    comp_pools_.clear();
    f.mark = mark_epoch_;
    comp_flow_ids_.push_back(id);
    comp_flows_.push_back(&f);
    expand_and_solve();
  };

  if (full_recompute_) {
    for (auto& [id, f] : flows_) {
      if (f.mark != mark_epoch_) seed_with_flow(id, f);
    }
  } else {
    if (seed_flow != 0) {
      const auto it = flows_.find(seed_flow);
      if (it != flows_.end() && it->second.mark != mark_epoch_) {
        seed_with_flow(seed_flow, it->second);
      }
    }
    for (const std::uint32_t p : seed_pools) {
      if (pool_mark_[p] == mark_epoch_ || pools_[p].members.empty()) continue;
      comp_flows_.clear();
      comp_flow_ids_.clear();
      comp_pools_.clear();
      pool_mark_[p] = mark_epoch_;
      comp_pools_.push_back(p);
      for (const PoolMember& m : pools_[p].members) {
        Flow& mf = flows_.find(m.flow)->second;
        if (mf.mark != mark_epoch_) {
          mf.mark = mark_epoch_;
          comp_flow_ids_.push_back(m.flow);
          comp_flows_.push_back(&mf);
        }
      }
      expand_and_solve();
    }
  }

  if (probe_ != nullptr) probe_->on_rates_recomputed(touched);
}

std::vector<std::pair<std::uint64_t, double>>
FlowNetwork::recompute_rates_reference() const {
  std::vector<std::pair<std::uint64_t, double>> out;
  out.reserve(flows_.size());
  if (flows_.empty()) return out;

  // Mirrors recompute_components() with local scratch: same component
  // discovery, same canonical ordering, same solver — so the floating
  // point sequences match the incremental path operation for operation.
  std::vector<char> pool_seen(pools_.size(), 0);
  std::unordered_set<std::uint64_t> flow_seen;
  std::vector<double> residual(pools_.size(), 0.0);
  std::vector<double> weight_sum(pools_.size(), 0.0);
  std::vector<std::uint32_t> comp_pools;
  std::vector<std::uint64_t> comp_ids;
  std::vector<const Flow*> work;
  std::vector<WfFlow> items;
  std::vector<WfFlow*> unfixed;

  for (const auto& [id, f] : flows_) {
    if (!flow_seen.insert(id).second) continue;
    comp_pools.clear();
    comp_ids.clear();
    work.clear();
    comp_ids.push_back(id);
    work.push_back(&f);
    for (std::size_t i = 0; i < work.size(); ++i) {
      for (const Leg& leg : work[i]->legs) {
        if (pool_seen[leg.pool]) continue;
        pool_seen[leg.pool] = 1;
        comp_pools.push_back(leg.pool);
        for (const PoolMember& m : pools_[leg.pool].members) {
          if (flow_seen.insert(m.flow).second) {
            comp_ids.push_back(m.flow);
            work.push_back(&flows_.find(m.flow)->second);
          }
        }
      }
    }
    std::sort(comp_ids.begin(), comp_ids.end());
    std::sort(comp_pools.begin(), comp_pools.end());

    for (const std::uint32_t p : comp_pools) {
      residual[p] = pools_[p].capacity;
      weight_sum[p] = 0.0;
    }
    items.clear();
    unfixed.clear();
    items.reserve(comp_ids.size());
    for (const std::uint64_t cid : comp_ids) {
      const Flow& cf = flows_.find(cid)->second;
      items.push_back(WfFlow{&cf.legs, cf.max_rate, 0.0});
    }
    for (WfFlow& item : items) unfixed.push_back(&item);
    solve_component(unfixed, comp_pools, residual, weight_sum);
    for (std::size_t i = 0; i < comp_ids.size(); ++i) {
      out.emplace_back(comp_ids[i], items[i].rate);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

void FlowNetwork::schedule_next_completion() {
  while (!finish_q_.empty()) {
    const FinishEntry& e = finish_q_.top();
    const auto it = flows_.find(e.flow);
    if (it == flows_.end() || it->second.pred_gen != e.gen) {
      finish_q_.pop();  // tombstoned prediction
      continue;
    }
    break;
  }
  if (completion_event_.valid()) {
    sim_.cancel(completion_event_);
    completion_event_ = {};
  }
  if (finish_q_.empty()) return;
  completion_event_ =
      sim_.at(finish_q_.top().at, [this] { on_completion_event(); });
}

void FlowNetwork::on_completion_event() {
  completion_event_ = {};
  const Tick now = sim_.now();

  // Collect finished flows first (callbacks may start new flows), looping
  // because freeing a finished flow's bandwidth can reveal further
  // same-tick completions in the recomputed component.
  struct Done {
    std::uint64_t id;
    FlowStats st;
    std::function<void(const FlowStats&)> cb;
  };
  std::vector<Done> done;
  std::vector<std::uint64_t> due;
  for (;;) {
    due.clear();
    while (!finish_q_.empty()) {
      const FinishEntry& e = finish_q_.top();
      const auto it = flows_.find(e.flow);
      if (it == flows_.end() || it->second.pred_gen != e.gen) {
        finish_q_.pop();  // tombstoned prediction
        continue;
      }
      if (e.at > now) break;
      due.push_back(e.flow);
      finish_q_.pop();
    }
    if (due.empty()) break;
    std::sort(due.begin(), due.end());  // complete in ascending-id order
    seed_pools_.clear();
    bool finished_any = false;
    for (const std::uint64_t id : due) {
      const auto it = flows_.find(id);
      Flow& f = it->second;
      sync_flow(f, now);
      if (f.bytes_total - f.bytes_done <= kByteEps) {
        detach_flow(f);
        for (const Leg& leg : f.legs) seed_pools_.push_back(leg.pool);
        done.push_back(Done{id, FlowStats{f.started, now, f.bytes_total},
                            std::move(f.on_complete)});
        flows_.erase(it);
        finished_any = true;
      } else {
        // Integer-tick rounding fired us a hair early: re-aim.
        predict_completion(id, f, now);
      }
    }
    if (finished_any) recompute_components(seed_pools_, 0);
  }
  schedule_next_completion();

  for (Done& d : done) {
    if (probe_ != nullptr) probe_->on_flow_completed(d.id, d.st);
    if (d.cb) d.cb(d.st);
  }
}

}  // namespace cpa::sim
