#include "simcore/time.hpp"

#include <cstdio>

namespace cpa::sim {

std::string format_duration(Tick t) {
  const double total = to_seconds(t);
  const auto h = static_cast<unsigned long long>(total / 3600.0);
  const auto m = static_cast<unsigned>((total - static_cast<double>(h) * 3600.0) / 60.0);
  const double s = total - static_cast<double>(h) * 3600.0 - m * 60.0;
  char buf[64];
  if (h > 0) {
    std::snprintf(buf, sizeof(buf), "%lluh%02um%04.1fs", h, m, s);
  } else if (m > 0) {
    std::snprintf(buf, sizeof(buf), "%um%04.1fs", m, s);
  } else {
    std::snprintf(buf, sizeof(buf), "%.3fs", s);
  }
  return buf;
}

}  // namespace cpa::sim
