#include "wal/durable.hpp"

#include <cstdio>
#include <sstream>

namespace cpa::wal {
namespace {

// Percent-escaping keeps paths/group names single space-free tokens so
// records parse with plain `>>` extraction.
void esc(const std::string& s, std::string& out) {
  if (s.empty()) {
    out += "%-";  // empty-string sentinel (unescapes to "")
    return;
  }
  for (const char c : s) {
    if (c == '%' || c == ' ' || c == '\n' || c == '\r' || c == '\t') {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "%%%02X", static_cast<unsigned char>(c));
      out += buf;
    } else {
      out += c;
    }
  }
}

std::string unesc(const std::string& s) {
  if (s == "%-") return {};
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '%' && i + 2 < s.size()) {
      const auto hex = [](char c) -> int {
        if (c >= '0' && c <= '9') return c - '0';
        if (c >= 'A' && c <= 'F') return c - 'A' + 10;
        if (c >= 'a' && c <= 'f') return c - 'a' + 10;
        return -1;
      };
      const int hi = hex(s[i + 1]);
      const int lo = hex(s[i + 2]);
      if (hi >= 0 && lo >= 0) {
        out += static_cast<char>(hi * 16 + lo);
        i += 2;
        continue;
      }
    }
    out += s[i];
  }
  return out;
}

std::string encode_object(const hsm::ArchiveObject& o) {
  std::string out;
  out += std::to_string(o.object_id);
  out += ' ';
  out += std::to_string(o.gpfs_file_id);
  out += ' ';
  out += std::to_string(o.size_bytes);
  out += ' ';
  out += std::to_string(o.content_tag);
  out += ' ';
  out += std::to_string(o.cartridge_id);
  out += ' ';
  out += std::to_string(o.tape_seq);
  out += ' ';
  out += std::to_string(o.aggregate_id);
  out += ' ';
  out += std::to_string(o.aggregate_offset);
  out += ' ';
  esc(o.path, out);
  out += ' ';
  esc(o.colocation_group, out);
  out += ' ';
  if (o.members.empty()) {
    out += '-';
  } else {
    for (std::size_t i = 0; i < o.members.size(); ++i) {
      if (i > 0) out += ',';
      out += std::to_string(o.members[i]);
    }
  }
  out += ' ';
  if (o.copies.empty()) {
    out += '-';
  } else {
    for (std::size_t i = 0; i < o.copies.size(); ++i) {
      if (i > 0) out += ',';
      out += std::to_string(o.copies[i].cartridge_id);
      out += ':';
      out += std::to_string(o.copies[i].tape_seq);
    }
  }
  return out;
}

bool decode_object(std::istringstream& in, hsm::ArchiveObject& o) {
  std::string path, group, members, copies;
  if (!(in >> o.object_id >> o.gpfs_file_id >> o.size_bytes >> o.content_tag >>
        o.cartridge_id >> o.tape_seq >> o.aggregate_id >> o.aggregate_offset >>
        path >> group >> members >> copies)) {
    return false;
  }
  o.path = unesc(path);
  o.colocation_group = unesc(group);
  o.members.clear();
  if (members != "-") {
    std::istringstream ms(members);
    std::string tok;
    while (std::getline(ms, tok, ',')) o.members.push_back(std::stoull(tok));
  }
  o.copies.clear();
  if (copies != "-") {
    std::istringstream cs(copies);
    std::string tok;
    while (std::getline(cs, tok, ',')) {
      const std::size_t colon = tok.find(':');
      if (colon == std::string::npos) return false;
      o.copies.push_back({std::stoull(tok.substr(0, colon)),
                          std::stoull(tok.substr(colon + 1))});
    }
  }
  return true;
}

std::string encode_fixity(const integrity::FixityRow& r) {
  std::string out;
  out += std::to_string(r.row_id);
  out += ' ';
  out += std::to_string(r.object_id);
  out += ' ';
  out += std::to_string(r.cartridge_id);
  out += ' ';
  out += std::to_string(r.tape_seq);
  out += ' ';
  out += std::to_string(r.length);
  out += ' ';
  out += std::to_string(r.checksum);
  out += ' ';
  out += std::to_string(r.copy_index);
  out += ' ';
  out += std::to_string(static_cast<unsigned>(r.status));
  return out;
}

bool decode_fixity(std::istringstream& in, integrity::FixityRow& r) {
  unsigned status = 0;
  if (!(in >> r.row_id >> r.object_id >> r.cartridge_id >> r.tape_seq >>
        r.length >> r.checksum >> r.copy_index >> status)) {
    return false;
  }
  r.status = static_cast<integrity::FixityStatus>(status);
  return true;
}

}  // namespace

Durable::Durable(sim::Simulation& sim, WalConfig cfg, obs::Observer& obs)
    : sim_(sim), obs_(obs), writer_(sim, cfg, obs) {
  writer_.set_checkpoint_source([this] { return serialize_state(); });
}

void Durable::attach_server(unsigned idx, hsm::ArchiveServer& srv) {
  if (servers_.size() <= idx) servers_.resize(idx + 1, nullptr);
  servers_[idx] = &srv;
  hsm::ArchiveServer::MutationHooks h;
  h.on_record = [this, idx](const hsm::ArchiveObject& o) {
    if (replaying_) return;
    writer_.append_record("O " + std::to_string(idx) + " " + encode_object(o));
  };
  h.on_delete = [this, idx](std::uint64_t id) {
    if (replaying_) return;
    writer_.append_record("D " + std::to_string(idx) + " " +
                          std::to_string(id));
  };
  srv.set_mutation_hooks(std::move(h));
}

void Durable::attach_fixity(integrity::FixityDb& db) {
  fixity_ = &db;
  integrity::FixityDb::MutationHooks h;
  h.on_upsert = [this](const integrity::FixityRow& r) {
    if (replaying_) return;
    writer_.append_record("F " + encode_fixity(r));
  };
  h.on_erase_object = [this](std::uint64_t object_id) {
    if (replaying_) return;
    writer_.append_record("E " + std::to_string(object_id));
  };
  db.set_mutation_hooks(std::move(h));
}

void Durable::attach_journal(pftool::RestartJournal& journal) {
  journal_ = &journal;
  journal.set_mutation_hook([this](pftool::RestartJournal::Op op,
                                   const std::string& dst, std::uint64_t a,
                                   std::uint64_t b) {
    if (replaying_) return;
    std::string rec = "J ";
    rec += static_cast<char>(op);
    rec += ' ';
    esc(dst, rec);
    rec += ' ';
    rec += std::to_string(a);
    rec += ' ';
    rec += std::to_string(b);
    writer_.append_record(rec);
  });
}

std::string Durable::serialize_state() const {
  std::string out = "CPACKPT 1\n";
  for (std::size_t i = 0; i < servers_.size(); ++i) {
    if (servers_[i] == nullptr) continue;
    servers_[i]->for_each_object([&](const hsm::ArchiveObject& o) {
      out += "O " + std::to_string(i) + " " + encode_object(o) + "\n";
    });
    out += "N " + std::to_string(i) + " " +
           std::to_string(servers_[i]->next_object_id()) + "\n";
  }
  if (fixity_ != nullptr) {
    fixity_->for_each([&](const integrity::FixityRow& r) {
      out += "F " + encode_fixity(r) + "\n";
    });
  }
  if (journal_ != nullptr) {
    std::istringstream lines(journal_->serialize());
    std::string line;
    while (std::getline(lines, line)) {
      if (!line.empty()) out += "K " + line + "\n";
    }
  }
  return out;
}

void Durable::apply(const std::string& record) {
  std::istringstream in(record);
  std::string tag;
  if (!(in >> tag)) return;
  if (tag == "O") {
    std::size_t idx = 0;
    hsm::ArchiveObject o;
    if (!(in >> idx) || !decode_object(in, o)) return;
    if (idx >= servers_.size() || servers_[idx] == nullptr) return;
    hsm::ArchiveServer& srv = *servers_[idx];
    if (o.object_id >= srv.next_object_id()) {
      srv.set_next_object_id(o.object_id + 1);
    }
    srv.record_object(std::move(o));
  } else if (tag == "D") {
    std::size_t idx = 0;
    std::uint64_t id = 0;
    if (!(in >> idx >> id)) return;
    if (idx >= servers_.size() || servers_[idx] == nullptr) return;
    servers_[idx]->delete_object(id);
  } else if (tag == "N") {
    std::size_t idx = 0;
    std::uint64_t next = 0;
    if (!(in >> idx >> next)) return;
    if (idx >= servers_.size() || servers_[idx] == nullptr) return;
    if (next > servers_[idx]->next_object_id()) {
      servers_[idx]->set_next_object_id(next);
    }
  } else if (tag == "F") {
    integrity::FixityRow r;
    if (fixity_ == nullptr || !decode_fixity(in, r)) return;
    fixity_->restore(r);
  } else if (tag == "E") {
    std::uint64_t id = 0;
    if (fixity_ == nullptr || !(in >> id)) return;
    fixity_->erase_object(id);
  } else if (tag == "J") {
    char op = 0;
    std::string dst;
    std::uint64_t a = 0, b = 0;
    if (journal_ == nullptr || !(in >> op >> dst >> a >> b)) return;
    const std::string d = unesc(dst);
    switch (static_cast<pftool::RestartJournal::Op>(op)) {
      case pftool::RestartJournal::Op::Begin: journal_->begin(d, a, b); break;
      case pftool::RestartJournal::Op::Good: journal_->mark_good(d, a); break;
      case pftool::RestartJournal::Op::Bad: journal_->mark_bad(d, a); break;
      case pftool::RestartJournal::Op::Forget: journal_->forget(d); break;
    }
  } else if (tag == "K") {
    // Checkpointed journal entry: "dst|size|count|bitmap".
    std::string line;
    std::getline(in, line);
    if (!line.empty() && line.front() == ' ') line.erase(0, 1);
    if (journal_ == nullptr) return;
    const std::size_t p1 = line.find('|');
    if (p1 == std::string::npos) return;
    const std::size_t p2 = line.find('|', p1 + 1);
    if (p2 == std::string::npos) return;
    const std::size_t p3 = line.find('|', p2 + 1);
    if (p3 == std::string::npos) return;
    const std::string dst = line.substr(0, p1);
    const std::uint64_t size = std::stoull(line.substr(p1 + 1, p2 - p1 - 1));
    const std::uint64_t count = std::stoull(line.substr(p2 + 1, p3 - p2 - 1));
    journal_->begin(dst, size, count);
    const std::string bitmap = line.substr(p3 + 1);
    for (std::size_t i = 0; i < bitmap.size() && i < count; ++i) {
      if (bitmap[i] == '1') journal_->mark_good(dst, i);
    }
  }
}

Durable::RecoveryStats Durable::recover() {
  RecoveryStats stats;
  replaying_ = true;
  const std::string& ckpt = writer_.installed_checkpoint();
  stats.checkpoint_bytes = ckpt.size();
  if (!ckpt.empty()) {
    std::istringstream lines(ckpt);
    std::string line;
    std::getline(lines, line);  // "CPACKPT 1" header
    while (std::getline(lines, line)) {
      if (!line.empty()) apply(line);
    }
  }
  const std::string& log = writer_.log_bytes();
  stats.log_bytes = log.size();
  std::uint64_t valid = 0;
  stats.replayed_records = WalReader::replay(
      log, [this](const std::string& r) { apply(r); }, &valid);
  // Cut the torn half-frame: appends from here on must land where replay
  // can reach them, not behind CRC garbage.
  writer_.trim_torn_tail(valid);
  replaying_ = false;

  const WalConfig& cfg = writer_.config();
  stats.duration =
      cfg.flush_latency +
      sim::secs(static_cast<double>(stats.checkpoint_bytes + stats.log_bytes) /
                cfg.log_bytes_per_sec) +
      cfg.replay_record_cost * stats.replayed_records;

  obs::MetricsRegistry& m = obs_.metrics();
  m.counter("wal.replay_records").add(stats.replayed_records);
  m.counter("recovery.count").inc();
  m.gauge("recovery.duration").set(sim::to_seconds(stats.duration));
  return stats;
}

}  // namespace cpa::wal
