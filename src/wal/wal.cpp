#include "wal/wal.hpp"

#include <algorithm>
#include <array>
#include <cstring>

namespace cpa::wal {
namespace {

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> t{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    t[i] = c;
  }
  return t;
}

void put_u32(std::string& out, std::uint32_t v) {
  out.push_back(static_cast<char>(v & 0xFF));
  out.push_back(static_cast<char>((v >> 8) & 0xFF));
  out.push_back(static_cast<char>((v >> 16) & 0xFF));
  out.push_back(static_cast<char>((v >> 24) & 0xFF));
}

std::uint32_t get_u32(const char* p) {
  const auto b = [p](int i) {
    return static_cast<std::uint32_t>(static_cast<unsigned char>(p[i]));
  };
  return b(0) | (b(1) << 8) | (b(2) << 16) | (b(3) << 24);
}

std::uint64_t splitmix64(std::uint64_t z) {
  z += 0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

std::uint32_t crc32(const void* data, std::size_t len) {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  std::uint32_t c = 0xFFFFFFFFu;
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < len; ++i) {
    c = table[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

void SimBlockDevice::flush(std::function<void()> done) {
  const std::uint64_t target = trimmed_ + data_.size();
  const std::uint64_t gen = gen_;
  sim_.after(flush_latency_, [this, gen, target, done = std::move(done)] {
    if (gen != gen_) return;  // power was lost before the fsync returned
    durable_ = std::max(durable_, target);
    done();
  });
}

void SimBlockDevice::tear(double tail_fraction) {
  const std::uint64_t base = std::max(durable_, trimmed_);
  const std::uint64_t tail = trimmed_ + data_.size() - base;
  const auto keep = static_cast<std::uint64_t>(
      static_cast<double>(tail) * tail_fraction);
  data_.resize((base - trimmed_) + std::min(keep, tail));
  durable_ = trimmed_ + data_.size();
  ++gen_;
}

void SimBlockDevice::truncate_back(std::uint64_t keep) {
  if (keep >= data_.size()) return;
  data_.resize(keep);
  durable_ = std::min(durable_, trimmed_ + keep);
}

void SimBlockDevice::truncate_front(std::uint64_t bytes) {
  bytes = std::min<std::uint64_t>(bytes, data_.size());
  data_.erase(0, bytes);
  trimmed_ += bytes;
  durable_ = std::max(durable_, trimmed_);
}

WalWriter::WalWriter(sim::Simulation& sim, WalConfig cfg, obs::Observer& obs)
    : sim_(sim), cfg_(cfg), obs_(obs), dev_(sim, cfg.flush_latency) {}

void WalWriter::append_record(const std::string& payload) {
  std::string frame;
  frame.reserve(payload.size() + 8);
  put_u32(frame, static_cast<std::uint32_t>(payload.size()));
  put_u32(frame, crc32(payload.data(), payload.size()));
  frame += payload;
  dev_.append(frame);
  bytes_since_checkpoint_ += frame.size();
  ++records_;
  obs_.metrics().counter("wal.records").inc();
  obs_.metrics().counter("wal.appended_bytes").add(frame.size());
  maybe_auto_checkpoint();
}

void WalWriter::sync(std::function<void()> done) {
  waiters_.push_back(std::move(done));
  if (!flush_running_) start_flush();
}

void WalWriter::start_flush() {
  flush_running_ = true;
  in_flight_ = std::move(waiters_);
  waiters_.clear();
  const std::uint64_t gen = gen_;
  const obs::SpanId sp = obs_.trace().begin_lane(
      obs::Component::Wal, "wal", "flush", sim_.now());
  dev_.flush([this, gen, sp] {
    obs_.trace().end(sp, sim_.now());
    if (gen != gen_) return;
    flush_running_ = false;
    obs_.metrics().counter("wal.flushes").inc();
    obs_.metrics()
        .stats("wal.flush_batch_size")
        .add(static_cast<double>(in_flight_.size()));
    // Fire off a local copy: a waiter may append + sync again re-entrantly.
    std::vector<std::function<void()>> batch = std::move(in_flight_);
    in_flight_.clear();
    for (auto& fn : batch) fn();
    if (!waiters_.empty() && !flush_running_) start_flush();
  });
}

void WalWriter::maybe_auto_checkpoint() {
  if (cfg_.checkpoint_bytes == 0 || checkpoint_running_) return;
  if (bytes_since_checkpoint_ < cfg_.checkpoint_bytes) return;
  checkpoint();
}

void WalWriter::checkpoint() {
  if (checkpoint_running_ || !checkpoint_source_) return;
  checkpoint_running_ = true;
  // Snapshot now: the blob describes every record currently in the log
  // (listeners append after the in-memory apply), so on durable install
  // the current log prefix becomes redundant.
  std::string blob = checkpoint_source_();
  const std::uint64_t mark = dev_.size();
  const sim::Tick cost =
      cfg_.flush_latency +
      sim::secs(static_cast<double>(blob.size()) / cfg_.log_bytes_per_sec);
  const std::uint64_t gen = gen_;
  const obs::SpanId sp = obs_.trace().begin_lane(
      obs::Component::Wal, "wal", "checkpoint", sim_.now());
  sim_.after(cost, [this, gen, sp, mark, blob = std::move(blob)]() mutable {
    obs_.trace().end(sp, sim_.now());
    if (gen != gen_) return;  // crashed mid-install: old checkpoint stands
    checkpoint_running_ = false;
    checkpoint_ = std::move(blob);
    dev_.truncate_front(mark);
    bytes_since_checkpoint_ = dev_.size();
    obs_.metrics().counter("wal.checkpoints").inc();
    obs_.metrics().counter("wal.truncated_bytes").add(mark);
  });
}

void WalWriter::crash(std::uint64_t seed) {
  const double frac =
      static_cast<double>(splitmix64(seed) >> 11) * 0x1.0p-53;
  dev_.tear(frac);
  waiters_.clear();
  in_flight_.clear();
  flush_running_ = false;
  checkpoint_running_ = false;
  bytes_since_checkpoint_ = dev_.size();
  ++gen_;
}

void WalWriter::trim_torn_tail(std::uint64_t valid_bytes) {
  if (valid_bytes >= dev_.size()) return;
  obs_.metrics().counter("wal.torn_bytes").add(dev_.size() - valid_bytes);
  dev_.truncate_back(valid_bytes);
  bytes_since_checkpoint_ = std::min(bytes_since_checkpoint_, dev_.size());
}

std::uint64_t WalReader::replay(
    const std::string& log,
    const std::function<void(const std::string&)>& fn,
    std::uint64_t* valid_bytes) {
  std::uint64_t applied = 0;
  std::size_t off = 0;
  while (off + 8 <= log.size()) {
    const std::uint32_t len = get_u32(log.data() + off);
    const std::uint32_t want = get_u32(log.data() + off + 4);
    if (off + 8 + len > log.size()) break;  // torn mid-payload
    const std::string payload = log.substr(off + 8, len);
    if (crc32(payload.data(), payload.size()) != want) break;
    fn(payload);
    ++applied;
    off += 8 + len;
  }
  if (valid_bytes != nullptr) *valid_bytes = off;
  return applied;
}

}  // namespace cpa::wal
