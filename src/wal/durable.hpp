// Durability wrapper: redo-logs every metadata mutation through the WAL.
//
// Three stores hold archive metadata that must survive a host power
// failure: the per-server object catalog (+ its indexed TSM export, which
// is derived row-by-row and therefore not logged separately), the fixity
// table, and the pftool restart journal.  Durable subscribes to each
// store's mutation hooks and appends one idempotent redo record per
// mutation — full-row images for catalog/fixity upserts, incremental (but
// naturally idempotent) ops for journal bitmaps.  Records are applied
// in-memory first and logged after; a `sync()` barrier is what callers
// use at acknowledgement points (before a punch frees disk data, before a
// job completion is reported) to guarantee the log covers what they are
// about to promise.
//
// Recovery inverts the pipeline: the caller wipes the stores, then
// `recover()` loads the last durably installed checkpoint and replays the
// surviving log image (CRC framing stops the walk at the torn tail).
// Replaying a prefix twice converges on the same state, so redo is safe
// against replay duplication.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "hsm/server.hpp"
#include "integrity/fixity.hpp"
#include "pftool/core/restart_journal.hpp"
#include "wal/wal.hpp"

namespace cpa::wal {

class Durable {
 public:
  Durable(sim::Simulation& sim, WalConfig cfg, obs::Observer& obs);

  // --- wiring (once, at plant construction) -------------------------------
  void attach_server(unsigned idx, hsm::ArchiveServer& srv);
  void attach_fixity(integrity::FixityDb& db);
  void attach_journal(pftool::RestartJournal& journal);

  /// Group-commit durability barrier (see WalWriter::sync).
  void sync(std::function<void()> done) { writer_.sync(std::move(done)); }

  /// Manual checkpoint (auto-checkpointing is governed by
  /// WalConfig::checkpoint_bytes).
  void checkpoint() { writer_.checkpoint(); }

  /// Power failure: tear the un-fsynced log tail at a seed-derived byte
  /// offset and drop pending barrier callbacks.  The caller wipes the
  /// attached stores separately.
  void crash(std::uint64_t seed) { writer_.crash(seed); }

  struct RecoveryStats {
    std::uint64_t replayed_records = 0;
    std::uint64_t checkpoint_bytes = 0;
    std::uint64_t log_bytes = 0;
    /// Modeled virtual-time cost of the recovery scan + redo apply.
    sim::Tick duration = 0;
  };

  /// Rebuilds the attached (pre-wiped) stores from checkpoint + log.
  /// Synchronous state change; the returned duration is the virtual time
  /// the caller should charge before resuming service.
  RecoveryStats recover();

  [[nodiscard]] WalWriter& writer() { return writer_; }
  [[nodiscard]] const WalConfig& config() const { return writer_.config(); }

 private:
  std::string serialize_state() const;  // checkpoint source
  void apply(const std::string& record);

  sim::Simulation& sim_;
  obs::Observer& obs_;
  WalWriter writer_;
  std::vector<hsm::ArchiveServer*> servers_;
  integrity::FixityDb* fixity_ = nullptr;
  pftool::RestartJournal* journal_ = nullptr;
  /// Recovery applies records through the same store APIs that fire the
  /// mutation hooks; this flag keeps replay from re-logging itself.
  bool replaying_ = false;
};

}  // namespace cpa::wal
