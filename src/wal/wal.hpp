// Virtual-time write-ahead log over a simulated block device.
//
// The paper's archive keeps its catalog in TSM's database and its transfer
// state in PFTool restart journals; both survive a host power failure only
// because they are logged to stable storage before the operation they
// describe is acknowledged.  This module is the simulated equivalent: an
// append-only byte log whose durability advances asynchronously (one
// fsync barrier costs `flush_latency` of virtual time), with torn-tail
// semantics on power failure — the durable prefix survives exactly, and a
// seed-derived fraction of the un-fsynced tail survives, possibly cutting
// a record in half.
//
// Record framing is [u32 length][u32 crc32(payload)][payload].  Replay
// walks frames from the front and stops at the first short or
// CRC-mismatching frame, which is by construction inside the torn tail.
// Checkpoints snapshot the whole logical state into a blob that installs
// atomically (rename semantics: a crash mid-install keeps the previous
// checkpoint) and truncate the log prefix the snapshot covers.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "obs/observer.hpp"
#include "simcore/simulation.hpp"
#include "simcore/time.hpp"

namespace cpa::wal {

struct WalConfig {
  bool enabled = false;
  /// Virtual cost of one fsync barrier (group commit amortizes it).
  sim::Tick flush_latency = sim::msecs(2);
  /// Sequential read/write rate for checkpoint install and recovery scan.
  double log_bytes_per_sec = 200e6;
  /// Auto-checkpoint once this many log bytes accumulate (0 = manual only).
  std::uint64_t checkpoint_bytes = 0;
  /// Per-record redo-apply cost charged to the recovery duration.
  sim::Tick replay_record_cost = sim::usecs(2);
};

/// Software CRC32 (IEEE, reflected) — deterministic across platforms.
[[nodiscard]] std::uint32_t crc32(const void* data, std::size_t len);

/// Append-only log device in virtual time.  Bytes appended are volatile
/// until a flush barrier completes; `tear()` models the power failure.
class SimBlockDevice {
 public:
  SimBlockDevice(sim::Simulation& sim, sim::Tick flush_latency)
      : sim_(sim), flush_latency_(flush_latency) {}

  void append(const std::string& bytes) { data_ += bytes; }

  /// Makes everything appended so far durable after `flush_latency`; the
  /// callback fires at completion.  A tear() in flight swallows it (the
  /// machine lost power before the fsync returned).
  void flush(std::function<void()> done);

  /// Power failure: keep the durable prefix plus `tail_fraction` of the
  /// volatile tail (byte-granular, so the last surviving record is
  /// usually torn mid-frame).  Pending flush callbacks never fire.
  void tear(double tail_fraction);

  /// Drops `bytes` from the front (checkpoint truncation).
  void truncate_front(std::uint64_t bytes);

  /// Shrinks the image to its first `keep` bytes (recovery cuts the torn
  /// half-frame a tear() left behind, so later appends stay reachable).
  void truncate_back(std::uint64_t keep);

  [[nodiscard]] const std::string& bytes() const { return data_; }
  [[nodiscard]] std::uint64_t size() const { return data_.size(); }
  [[nodiscard]] std::uint64_t durable_size() const { return durable_; }

 private:
  sim::Simulation& sim_;
  sim::Tick flush_latency_;
  std::string data_;      // surviving log image (logical byte trimmed_ + i)
  std::uint64_t trimmed_ = 0;  // bytes dropped from the front (checkpoints)
  std::uint64_t durable_ = 0;  // absolute logical durability watermark
  /// Bumped by tear(); in-flight flush completions no-op on mismatch.
  std::uint64_t gen_ = 0;
};

/// Writer half: record framing, group-commit sync barriers, checkpoints.
class WalWriter {
 public:
  WalWriter(sim::Simulation& sim, WalConfig cfg, obs::Observer& obs);

  /// Frames and appends one redo record (volatile until sync()).
  void append_record(const std::string& payload);

  /// Durability barrier: fires `done` once every record appended before
  /// this call is on stable storage.  Concurrent callers share one flush
  /// (group commit); the batch size is recorded in wal.flush_batch_size.
  void sync(std::function<void()> done);

  /// The source of checkpoint blobs (the Durable wrapper's serialized
  /// state).  Must be set before checkpoints can run.
  void set_checkpoint_source(std::function<std::string()> src) {
    checkpoint_source_ = std::move(src);
  }

  /// Snapshot + install + truncate.  Safe to call while appends continue;
  /// records appended after the snapshot survive truncation.
  void checkpoint();

  /// Power failure at the current instant: tear the volatile tail at a
  /// seed-derived byte offset, drop pending sync/checkpoint completions.
  void crash(std::uint64_t seed);

  /// Recovery epilogue: drops everything past the last intact frame.  A
  /// tear usually cuts a record in half, and replay stops at that frame
  /// forever — without this cut, records appended after recovery would
  /// sit behind the torn garbage where no future replay can reach them.
  void trim_torn_tail(std::uint64_t valid_bytes);

  [[nodiscard]] const std::string& installed_checkpoint() const {
    return checkpoint_;
  }
  [[nodiscard]] const std::string& log_bytes() const { return dev_.bytes(); }
  [[nodiscard]] const WalConfig& config() const { return cfg_; }
  [[nodiscard]] std::uint64_t records_appended() const { return records_; }

 private:
  void start_flush();
  void maybe_auto_checkpoint();

  sim::Simulation& sim_;
  WalConfig cfg_;
  obs::Observer& obs_;
  SimBlockDevice dev_;
  std::vector<std::function<void()>> waiters_;   // not yet covered by a flush
  std::vector<std::function<void()>> in_flight_; // covered by the running flush
  bool flush_running_ = false;
  bool checkpoint_running_ = false;
  std::function<std::string()> checkpoint_source_;
  std::string checkpoint_;  // last durably installed snapshot
  std::uint64_t bytes_since_checkpoint_ = 0;
  std::uint64_t records_ = 0;
  /// Bumped by crash(); stale flush/checkpoint completions no-op.
  std::uint64_t gen_ = 0;
};

/// Reader half: frame-by-frame replay of a (possibly torn) log image.
class WalReader {
 public:
  /// Applies `fn` to each intact record payload in order; stops at the
  /// first short or corrupt frame.  Returns the records applied; if
  /// `valid_bytes` is non-null it receives the byte offset where the walk
  /// stopped (== log.size() iff the log ends on a frame boundary).
  static std::uint64_t replay(const std::string& log,
                              const std::function<void(const std::string&)>& fn,
                              std::uint64_t* valid_bytes = nullptr);
};

}  // namespace cpa::wal
