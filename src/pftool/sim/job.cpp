#include "pftool/sim/job.hpp"

#include <algorithm>
#include <cassert>

namespace cpa::pftool::sim {

using cpa::sim::Tick;

// ---------------------------------------------------------------------------
// Process classes.  Every inter-process interaction goes through the event
// queue with the configured message latency — the simulated MPI fabric.
// ---------------------------------------------------------------------------

/// "The ReadDir (a) receives requests from the Manager, (b) exposes
/// directory information, ... (d) sends collected file/sub-directory
/// information back to the Manager."
class ReadDirProc {
 public:
  ReadDirProc(PftoolJob& job, unsigned id) : job_(job), id_(id) {}

  void assign(std::string dir) {
    auto* sim = job_.env_.sim;
    obs::TraceRecorder& tr = job_.env_.obs->trace();
    const obs::SpanId sp = tr.begin_lane(obs::Component::Pftool, "readdir",
                                         "readdir", sim->now());
    tr.link(job_.span_, sp);
    sim->after(job_.cfg_.msg_latency, [this, sp, dir = std::move(dir)] {
      auto entries = job_.env_.src_fs->readdir(dir);
      std::vector<pfs::DirEntry> list =
          entries.ok() ? std::move(entries.value()) : std::vector<pfs::DirEntry>{};
      const Tick cost =
          job_.cfg_.readdir_per_entry * std::max<std::size_t>(1, list.size());
      job_.env_.sim->after(cost + job_.cfg_.msg_latency,
                           [this, sp, dir, list = std::move(list)]() mutable {
                             job_.env_.obs->trace().end(sp,
                                                        job_.env_.sim->now());
                             job_.on_dir_listed(this, dir, std::move(list));
                           });
    });
  }

  [[nodiscard]] unsigned id() const { return id_; }

 private:
  PftoolJob& job_;
  unsigned id_;
};

/// "Workers — file stat, file copy" (and pfcm comparison).  Each worker is
/// pinned to an FTA node; its copies traverse that node's NIC/HBA.
class WorkerProc {
 public:
  WorkerProc(PftoolJob& job, unsigned id, cluster::NodeId node)
      : job_(job), id_(id), node_(node) {}

  void assign_stat(std::vector<std::string> paths) {
    auto* sim = job_.env_.sim;
    obs::TraceRecorder& tr = job_.env_.obs->trace();
    const obs::SpanId sp =
        tr.begin_lane(obs::Component::Pftool, "stat", "stat", sim->now());
    tr.link(job_.span_, sp);
    const Tick cost = job_.cfg_.msg_latency +
                      job_.cfg_.stat_cost * std::max<std::size_t>(1, paths.size());
    sim->after(cost, [this, sp, paths = std::move(paths)] {
      std::vector<PftoolJob::FileMeta> metas;
      metas.reserve(paths.size());
      for (const std::string& p : paths) {
        const auto st = job_.env_.src_fs->stat(p);
        if (!st.ok()) continue;  // raced with deletion: drop
        PftoolJob::FileMeta m;
        m.path = p;
        m.size = st.value().size;
        m.tag = st.value().content_tag;
        m.dmapi = st.value().dmapi;
        metas.push_back(std::move(m));
      }
      job_.env_.sim->after(job_.cfg_.msg_latency,
                           [this, sp, metas = std::move(metas)]() mutable {
                             job_.env_.obs->trace().end(sp,
                                                        job_.env_.sim->now());
                             job_.on_stated(this, std::move(metas));
                           });
    });
  }

  void assign_work(PftoolJob::WorkItem item) {
    auto* sim = job_.env_.sim;
    obs::TraceRecorder& tr = job_.env_.obs->trace();
    item.span = tr.begin_lane(
        obs::Component::Pftool, "chunk",
        item.kind == PftoolJob::WorkItem::Kind::Compare ? "compare" : "chunk",
        sim->now());
    tr.link(job_.span_, item.span);
    sim->after(job_.cfg_.msg_latency, [this, item = std::move(item)] {
      if (item.kind == PftoolJob::WorkItem::Kind::Compare) {
        run_compare(item);
      } else {
        run_copy(item);
      }
    });
  }

  [[nodiscard]] cluster::NodeId node() const { return node_; }
  [[nodiscard]] unsigned id() const { return id_; }

  /// Respawn the (killed) worker process on a healthy node.  Copies whose
  /// flow has not started yet pick up the new pinning automatically.
  void set_node(cluster::NodeId node) { node_ = node; }

  /// Kills the worker's in-flight copy flow (FTA node crash).  Returns
  /// false when nothing was actually on the wire — e.g. the worker is in a
  /// message/setup delay, or the flow just completed and its callback is
  /// queued; those paths run to completion on their own.  On success the
  /// aborted chunk is routed through on_chunk_done(..., false) so it gets
  /// the standard retry treatment.
  bool abort_inflight() {
    if (!has_flow_) return false;
    if (!job_.env_.net->abort_flow(flow_)) return false;
    has_flow_ = false;
    job_.env_.cluster->remove_load(flow_node_);
    job_.env_.sim->after(job_.cfg_.msg_latency,
                         [this, item = inflight_]() mutable {
                           job_.on_chunk_done(this, item, false);
                         });
    return true;
  }

 private:
  void run_copy(const PftoolJob::WorkItem& item) {
    // Per-file metadata overhead (open/create/close) on the first chunk.
    const Tick setup = item.chunk.index == 0 ? job_.cfg_.per_file_cost : 0;
    job_.env_.sim->after(setup, [this, item] { run_copy_flow(item); });
  }

  void run_copy_flow(const PftoolJob::WorkItem& item) {
    job_.env_.cluster->add_load(node_);
    flow_node_ = node_;  // the node whose load/pinning this flow uses
    std::vector<cpa::sim::PathLeg> path = job_.env_.cluster->copy_path(
        node_, *job_.env_.src_fs, item.src, *job_.env_.dst_fs, item.dst,
        item.chunk.offset, item.chunk.bytes);
    if (item.shared_dst_pool.valid()) path.emplace_back(item.shared_dst_pool);
    // Per-tenant bandwidth cap: every data flow of a capped tenant shares
    // its shaper pool, so the tenant's aggregate PFS rate is bounded.
    path.insert(path.end(), job_.env_.shaper_legs.begin(),
                job_.env_.shaper_legs.end());
    const double cap = job_.cfg_.per_stream_max_bps > 0
                           ? job_.cfg_.per_stream_max_bps
                           : cpa::sim::FlowNetwork::kUnlimited;
    inflight_ = item;
    // The flow probe records the transfer span; parent context links it
    // under this chunk so the profiler sees job -> chunk -> flow.
    obs::TraceRecorder& tr = job_.env_.obs->trace();
    tr.push_parent(item.span);
    flow_ = job_.env_.net->start_flow(
        std::move(path), static_cast<double>(item.chunk.bytes),
        [this, item](const cpa::sim::FlowStats&) {
          has_flow_ = false;
          job_.env_.cluster->remove_load(flow_node_);
          bool ok = true;
          if (item.mode == CopyMode::FuseNtoN && job_.env_.fuse != nullptr) {
            ok = job_.env_.fuse->write_chunk(
                     item.dst, item.chunk.index,
                     chunk_tag(item.file_tag, item.chunk.index)) ==
                 pfs::Errc::Ok;
          }
          job_.env_.sim->after(job_.cfg_.msg_latency, [this, item, ok] {
            job_.on_chunk_done(this, item, ok);
          });
        },
        cap);
    tr.pop_parent();
    has_flow_ = true;
  }

  void run_compare(const PftoolJob::WorkItem& item) {
    // Byte-content comparison is modeled as a metadata-side check of the
    // content tags plus sizes; the cost charged is two stats.
    const Tick cost = 2 * job_.cfg_.stat_cost;
    job_.env_.sim->after(cost, [this, item] {
      bool comparable = true;
      bool match = false;
      const auto src_tag = job_.env_.src_fs->read_tag(item.src);
      std::uint64_t dst_tag = 0;
      std::uint64_t dst_size = 0;
      if (job_.env_.fuse != nullptr && job_.env_.fuse->is_chunked(item.dst)) {
        const auto st = job_.env_.fuse->stat(item.dst);
        const auto tag = job_.env_.fuse->origin_tag(item.dst);
        if (!st.ok() || !tag.ok() || !st.value().complete) {
          comparable = false;
        } else {
          dst_size = st.value().size;
          dst_tag = tag.value();
        }
      } else {
        const auto st = job_.env_.dst_fs->stat(item.dst);
        const auto tag = job_.env_.dst_fs->read_tag(item.dst);
        if (!st.ok() || !tag.ok()) {
          comparable = false;
        } else {
          dst_size = st.value().size;
          dst_tag = tag.value();
        }
      }
      if (!src_tag.ok()) comparable = false;
      if (comparable) {
        match = dst_size == item.file_size && dst_tag == src_tag.value();
      }
      job_.env_.sim->after(job_.cfg_.msg_latency, [this, item, comparable, match] {
        job_.on_compared(this, item, comparable, match);
      });
    });
  }

  PftoolJob& job_;
  unsigned id_;
  cluster::NodeId node_;
  // In-flight copy flow, retained so a node crash can abort it.
  cpa::sim::FlowId flow_{};
  cluster::NodeId flow_node_ = 0;
  bool has_flow_ = false;
  PftoolJob::WorkItem inflight_;
};

/// "The TapeProc (a) receives requests from the Manager, (b) restores
/// migrated files from tapes to the archival GPFS parallel file system,
/// and (c) sends additional restored tape file copy request to the
/// Manager."
class TapeRestoreProc {
 public:
  TapeRestoreProc(PftoolJob& job, unsigned id, cluster::NodeId node)
      : job_(job), id_(id), node_(node) {}

  void assign(std::uint64_t cartridge, std::vector<PftoolJob::FileMeta> metas) {
    (void)cartridge;
    auto* sim = job_.env_.sim;
    sim->after(job_.cfg_.msg_latency, [this, metas = std::move(metas)] {
      std::vector<std::string> paths;
      paths.reserve(metas.size());
      for (const auto& m : metas) paths.push_back(m.path);
      hsm::RecallOptions opts =
          hsm::RecallOptions{}
              .with_tape_ordered(job_.cfg_.tape_optimization)
              .with_assignment(hsm::RecallOptions::Assignment::TapeAffinity)
              .with_nodes({node_})
              .with_max_parallel_tapes(1)
              .with_parent_span(job_.span_)
              .with_tenant(job_.env_.tenant)
              .with_qos(job_.env_.qos);
      job_.env_.hsm->recall(
          std::move(paths), opts,
          [this, metas = std::move(metas)](const hsm::RecallReport& r) mutable {
            PftoolJob::RestoreStats stats;
            stats.failed = r.files_failed;
            stats.unrepairable = r.files_unrepairable;
            stats.fixity_verified = r.fixity_verified;
            stats.fixity_mismatches = r.fixity_mismatches;
            job_.env_.sim->after(job_.cfg_.msg_latency,
                                 [this, metas = std::move(metas),
                                  stats]() mutable {
                                   job_.on_restored(this, std::move(metas),
                                                    stats);
                                 });
          });
    });
  }

  [[nodiscard]] cluster::NodeId node() const { return node_; }
  [[nodiscard]] unsigned id() const { return id_; }
  void set_node(cluster::NodeId node) { node_ = node; }

 private:
  PftoolJob& job_;
  unsigned id_;
  cluster::NodeId node_;
};

/// "The WatchDog is a run-time PFTool progress indicator that runs
/// periodically."
class WatchDogProc {
 public:
  explicit WatchDogProc(PftoolJob& job) : job_(job) {}

  void start() {
    armed_ = true;
    schedule();
  }
  void stop() {
    armed_ = false;
    if (event_.valid()) {
      job_.env_.sim->cancel(event_);
      event_ = {};
    }
  }

  [[nodiscard]] const std::vector<WatchdogSample>& samples() const {
    return samples_;
  }
  void record_sample(WatchdogSample s) { samples_.push_back(s); }

 private:
  void schedule() {
    event_ = job_.env_.sim->after(job_.cfg_.watchdog_period, [this] {
      event_ = {};
      if (!armed_) return;
      job_.watchdog_tick();
      if (armed_) schedule();
    });
  }

  PftoolJob& job_;
  bool armed_ = false;
  cpa::sim::Simulation::EventId event_{};
  std::vector<WatchdogSample> samples_;
};

/// "The OutPutProc handles the output of PFTool operation status and
/// results."
class OutPutProc {
 public:
  explicit OutPutProc(PftoolJob& job)
      : job_(job), state_(std::make_shared<State>()) {}

  void line(std::string text) {
    // Delivery is deferred by msg_latency and may outlive the job (the
    // system destroys finished jobs as soon as their done callback ran),
    // so the event shares ownership of the sink instead of capturing it.
    job_.env_.sim->after(job_.cfg_.msg_latency,
                         [s = state_, text = std::move(text)] {
                           ++s->lines;
                           s->last = std::move(text);
                         });
  }

  [[nodiscard]] std::uint64_t lines() const { return state_->lines; }
  [[nodiscard]] const std::string& last_line() const { return state_->last; }

 private:
  struct State {
    std::uint64_t lines = 0;
    std::string last;
  };
  PftoolJob& job_;
  std::shared_ptr<State> state_;
};

// ---------------------------------------------------------------------------
// PftoolJob (the Manager)
// ---------------------------------------------------------------------------

PftoolJob::PftoolJob(JobEnv env, PftoolConfig cfg, Command cmd,
                     std::string src_root, std::string dst_root,
                     std::function<void(const JobReport&)> done)
    : env_(env),
      cfg_(cfg),
      planner_(cfg.planner),
      cmd_(cmd),
      src_root_(std::move(src_root)),
      dst_root_(std::move(dst_root)),
      done_(std::move(done)),
      meter_(cfg.watchdog_period) {
  assert(env_.sim != nullptr && env_.net != nullptr && env_.cluster != nullptr);
  assert(env_.src_fs != nullptr);
  if (env_.dst_fs == nullptr) env_.dst_fs = env_.src_fs;
  if (env_.obs == nullptr) env_.obs = &obs::Observer::nil();
  obs::MetricsRegistry& m = env_.obs->metrics();
  c_chunks_copied_ = &m.counter("pftool.chunks_copied");
  c_chunks_failed_ = &m.counter("pftool.chunks_failed");
  c_bytes_copied_ = &m.counter("pftool.bytes_copied");
  report_.command = cmd_ == Command::Pfls   ? "pfls"
                    : cmd_ == Command::Pfcp ? "pfcp"
                                            : "pfcm";
  report_.src_root = src_root_;
  report_.dst_root = cmd_ == Command::Pfls ? "" : dst_root_;
}

PftoolJob::~PftoolJob() {
  if (node_listener_registered_) {
    env_.cluster->remove_node_listener(node_listener_);
    node_listener_registered_ = false;
  }
}

const std::vector<WatchdogSample>& PftoolJob::watchdog_samples() const {
  static const std::vector<WatchdogSample> kEmpty;
  return watchdog_ != nullptr ? watchdog_->samples() : kEmpty;
}

std::uint64_t PftoolJob::output_lines() const {
  return output_ != nullptr ? output_->lines() : 0;
}

std::string PftoolJob::dst_path_for(const std::string& src_path) const {
  if (src_path == src_root_) return dst_root_;
  assert(src_path.size() > src_root_.size());
  const std::string suffix = src_root_ == "/"
                                 ? src_path.substr(1)
                                 : src_path.substr(src_root_.size() + 1);
  return pfs::join_path(dst_root_, suffix);
}

void PftoolJob::start() {
  assert(!started_);
  started_ = true;
  report_.started = env_.sim->now();
  // A job that waited behind admission opens its root span back at submit
  // time, with an explicit admission_wait child covering the queued
  // stretch — pfprof then attributes the wait without breaking the
  // sum(buckets) == wall-clock invariant.
  const Tick span_begin = env_.was_queued && env_.queued_since < report_.started
                              ? env_.queued_since
                              : report_.started;
  obs::TraceRecorder& tr = env_.obs->trace();
  span_ = tr.begin_lane(obs::Component::Pftool, "job", report_.command,
                        span_begin);
  tr.arg(span_, "src", src_root_);
  if (!env_.tenant.empty()) {
    tr.arg(span_, "tenant", env_.tenant);
    tr.arg(span_, "qos", cpa::sched::to_string(env_.qos));
  }
  if (span_begin < report_.started) {
    tr.link(span_, tr.complete(obs::Component::Sched, "admission",
                               "admission_wait", span_begin, report_.started));
  }

  // Spawn the process set, pinning workers/tapeprocs to FTA nodes from the
  // LoadManager's current least-loaded machine list (Sec 4.1.2 item 1).
  const std::vector<cluster::NodeId> machines = env_.cluster->machine_list();
  for (unsigned i = 0; i < cfg_.num_readdir; ++i) {
    readdirs_.push_back(std::make_unique<ReadDirProc>(*this, i));
    idle_readdirs_.push_back(readdirs_.back().get());
  }
  for (unsigned i = 0; i < cfg_.num_workers; ++i) {
    workers_.push_back(std::make_unique<WorkerProc>(
        *this, i, machines[i % machines.size()]));
    idle_workers_.push_back(workers_.back().get());
  }
  const bool restore_possible = env_.hsm != nullptr && cmd_ == Command::Pfcp;
  if (restore_possible) {
    for (unsigned i = 0; i < cfg_.num_tapeprocs; ++i) {
      tapeprocs_.push_back(std::make_unique<TapeRestoreProc>(
          *this, i, machines[(cfg_.num_workers + i) % machines.size()]));
      idle_tapeprocs_.push_back(tapeprocs_.back().get());
    }
  }
  watchdog_ = std::make_unique<WatchDogProc>(*this);
  output_ = std::make_unique<OutPutProc>(*this);
  watchdog_->start();
  node_listener_ = env_.cluster->add_node_listener(
      [this](cluster::NodeId n, bool down) {
        if (down) on_node_down(n);
      });
  node_listener_registered_ = true;

  // Seed the tree walk.
  const auto st = env_.src_fs->stat(src_root_);
  if (!st.ok()) {
    ++report_.files_failed;
    finish();
    return;
  }
  if (cmd_ != Command::Pfls) {
    env_.dst_fs->mkdirs(st.value().kind == pfs::FileKind::Directory
                            ? dst_root_
                            : pfs::parent_path(dst_root_));
  }
  if (st.value().kind == pfs::FileKind::Directory) {
    dirq_.push(src_root_);
  } else {
    FileMeta m;
    m.path = src_root_;
    m.size = st.value().size;
    m.tag = st.value().content_tag;
    m.dmapi = st.value().dmapi;
    ++report_.files_stated;
    enqueue_file(m);
  }
  pump();
}

void PftoolJob::pump() {
  if (finished_) return;
  // Directories to ReadDir processes.
  while (!idle_readdirs_.empty() && !dirq_.empty()) {
    ReadDirProc* rd = idle_readdirs_.front();
    idle_readdirs_.pop_front();
    rd->assign(dirq_.pop());
  }
  // Cartridge restore batches to TapeProcs — only once the tree walk has
  // fully "lined up the tape restore file information into TapeCQs"
  // (Sec 4.1.1g): handing out a cartridge early would split its files
  // across TapeProcs and reintroduce the very thrashing the queues avoid.
  const bool walk_complete = dirq_.empty() && nameq_.empty() &&
                             outstanding_stats_ == 0 &&
                             idle_readdirs_.size() == readdirs_.size();
  while (walk_complete && !idle_tapeprocs_.empty() && !tapecq_.empty()) {
    TapeRestoreProc* tp = idle_tapeprocs_.front();
    idle_tapeprocs_.pop_front();
    std::uint64_t cart = 0;
    std::vector<FileMeta> metas;
    tapecq_.pop_cartridge(&cart, &metas);
    tp->assign(cart, std::move(metas));
  }
  // Stats, then copies/compares, to Workers.
  while (!idle_workers_.empty() && (!nameq_.empty() || !copyq_.empty())) {
    WorkerProc* w = idle_workers_.front();
    idle_workers_.pop_front();
    if (!nameq_.empty()) {
      std::vector<std::string> batch;
      while (!nameq_.empty() && batch.size() < cfg_.stat_batch) {
        batch.push_back(nameq_.pop());
      }
      ++outstanding_stats_;
      w->assign_stat(std::move(batch));
    } else {
      w->assign_work(copyq_.pop());
    }
  }
  maybe_finish();
}

void PftoolJob::on_dir_listed(ReadDirProc* rd, const std::string& dir,
                              std::vector<pfs::DirEntry> entries) {
  if (finished_) return;
  ++report_.dirs_walked;
  for (const pfs::DirEntry& e : entries) {
    const std::string child = pfs::join_path(dir, e.name);
    if (e.kind == pfs::FileKind::Directory) {
      if (cmd_ != Command::Pfls) {
        env_.dst_fs->mkdirs(dst_path_for(child));
      }
      dirq_.push(child);
    } else {
      nameq_.push(child);
    }
  }
  idle_readdirs_.push_back(rd);
  pump();
}

void PftoolJob::on_stated(WorkerProc* w, std::vector<FileMeta> metas) {
  if (finished_) return;
  --outstanding_stats_;
  report_.files_stated += metas.size();
  for (const FileMeta& m : metas) enqueue_file(m);
  idle_workers_.push_back(w);
  pump();
}

void PftoolJob::enqueue_file(const FileMeta& meta) {
  switch (cmd_) {
    case Command::Pfls:
      output_->line(meta.path + " " + std::to_string(meta.size));
      return;
    case Command::Pfcm: {
      WorkItem item;
      item.kind = WorkItem::Kind::Compare;
      item.src = meta.path;
      item.dst = dst_path_for(meta.path);
      item.file_size = meta.size;
      item.file_tag = meta.tag;
      copyq_.push(std::move(item));
      return;
    }
    case Command::Pfcp:
      break;
  }
  // pfcp: migrated sources must come back from tape first (Sec 4.2.5 — the
  // export DB gives tape id and sequence, building the TapeCQs).
  if (meta.dmapi == pfs::DmapiState::Migrated) {
    if (env_.hsm == nullptr || tapeprocs_.empty()) {
      ++report_.files_failed;
      return;
    }
    const metadb::TapeObjectRow* row =
        env_.hsm->server_for(meta.path).export_db().by_path(meta.path);
    if (row == nullptr) {
      ++report_.files_failed;
      return;
    }
    tapecq_.add(row->tape_id, row->tape_seq, meta);
    return;
  }
  plan_copy(meta);
}

void PftoolJob::plan_copy(const FileMeta& meta) {
  const std::string dst = dst_path_for(meta.path);
  CopyPlan plan = planner_.plan(meta.size);
  if (plan.mode == CopyMode::FuseNtoN && env_.fuse == nullptr) {
    plan.mode = CopyMode::ChunkedNto1;  // no FUSE mount: degrade gracefully
  }

  const bool journaled = cfg_.restartable && env_.journal != nullptr;
  if (journaled && !env_.journal->known(dst)) {
    // No journal entry means either a fresh file or one a previous attempt
    // finished (and forgot).  If the destination already verifies against
    // the source, skip it — a relaunched job then re-sends only real work.
    bool done_already = false;
    if (env_.fuse != nullptr && env_.fuse->is_chunked(dst)) {
      const auto st = env_.fuse->stat(dst);
      const auto tag = env_.fuse->origin_tag(dst);
      done_already = st.ok() && st.value().complete &&
                     st.value().size == meta.size && tag.ok() &&
                     tag.value() == meta.tag;
    } else if (env_.dst_fs->exists(dst)) {
      const auto st = env_.dst_fs->stat(dst);
      const auto tag = env_.dst_fs->read_tag(dst);
      done_already = st.ok() && st.value().size == meta.size && tag.ok() &&
                     tag.value() == meta.tag;
    }
    if (done_already) {
      report_.chunks_skipped_restart += plan.chunks.size();
      return;
    }
  }
  std::vector<std::uint64_t> pending;
  if (journaled) {
    env_.journal->begin(dst, meta.size, plan.chunks.size());
    pending = env_.journal->pending(dst);
  } else {
    pending.resize(plan.chunks.size());
    for (std::uint64_t i = 0; i < plan.chunks.size(); ++i) pending[i] = i;
  }
  report_.chunks_skipped_restart += plan.chunks.size() - pending.size();

  if (plan.mode == CopyMode::FuseNtoN) {
    ++report_.fuse_files;
    const bool reuse = journaled && env_.fuse->is_chunked(dst) &&
                       env_.fuse->stat(dst).ok() &&
                       env_.fuse->stat(dst).value().size == meta.size;
    if (!reuse) {
      if (env_.fuse->create(dst, meta.size) != pfs::Errc::Ok) {
        ++report_.files_failed;
        return;
      }
    }
  } else {
    if (!env_.dst_fs->exists(dst)) {
      std::string pool = cfg_.dest_pool_hint;
      if (pool.empty() && env_.placement) pool = env_.placement(dst);
      const auto created = env_.dst_fs->create(dst, pool);
      if (!created.ok()) {
        ++report_.files_failed;
        return;
      }
    }
  }

  PendingFile pf;
  pf.remaining = pending.size();
  pf.size = meta.size;
  pf.tag = meta.tag;
  pf.mode = plan.mode;
  pending_files_[dst] = pf;
  if (pending.empty()) {
    finalize_file(dst);
    return;
  }
  // N writers into one destination file contend on its write locks; the
  // shared pool caps their aggregate (FUSE chunk files each stand alone).
  cpa::sim::PoolId shared_pool{};
  if (plan.mode == CopyMode::ChunkedNto1 && pending.size() > 1 &&
      cfg_.nto1_shared_file_bps > 0) {
    shared_pool = env_.net->add_pool("nto1:" + dst, cfg_.nto1_shared_file_bps);
  }
  for (const std::uint64_t idx : pending) {
    WorkItem item;
    item.kind = WorkItem::Kind::Copy;
    item.src = meta.path;
    item.dst = dst;
    item.file_tag = meta.tag;
    item.file_size = meta.size;
    item.mode = plan.mode;
    item.chunk = plan.chunks[idx];
    item.shared_dst_pool = shared_pool;
    copyq_.push(std::move(item));
  }
}

void PftoolJob::on_chunk_done(WorkerProc* w, const WorkItem& item, bool ok) {
  if (finished_) return;
  env_.obs->trace().end(item.span, env_.sim->now());
  idle_workers_.push_back(w);
  auto it = pending_files_.find(item.dst);
  if (it == pending_files_.end()) {
    pump();
    return;
  }
  if (!ok) {
    c_chunks_failed_->inc();
    if (cfg_.restartable && env_.journal != nullptr) {
      env_.journal->mark_bad(item.dst, item.chunk.index);
    }
    if (cfg_.retry.allows(item.attempt + 1)) {
      // Transient failure with budget left: requeue after backoff instead
      // of failing the file.  The file's remaining count is untouched.
      ++report_.chunk_retries;
      ++pending_retries_;
      WorkItem again = item;
      ++again.attempt;
      const Tick delay = cfg_.retry.delay(again.attempt);
      // The backoff window itself is a cause of job latency: record it so
      // the profiler can attribute it (RetryBackoff bucket).
      obs::TraceRecorder& tr = env_.obs->trace();
      tr.link(span_, tr.complete(obs::Component::Pftool, "retry",
                                 "retry_backoff", env_.sim->now(),
                                 env_.sim->now() + delay));
      env_.sim->after(delay,
                      [this, again = std::move(again)]() mutable {
                        --pending_retries_;
                        if (finished_) return;
                        copyq_.push(std::move(again));
                        pump();
                      });
      pump();
      return;
    }
    it->second.failed = true;
  } else {
    ++report_.chunks_copied;
    report_.bytes_copied += item.chunk.bytes;
    c_chunks_copied_->inc();
    c_bytes_copied_->add(item.chunk.bytes);
    if (cfg_.verify_fixity) ++report_.chunks_verified;
    meter_.record(env_.sim->now(), item.chunk.bytes, 0);
    if (cfg_.restartable && env_.journal != nullptr) {
      env_.journal->mark_good(item.dst, item.chunk.index);
    }
  }
  if (--it->second.remaining == 0) {
    finalize_file(item.dst);
  }
  pump();
}

void PftoolJob::finalize_file(const std::string& dst) {
  auto it = pending_files_.find(dst);
  assert(it != pending_files_.end());
  const PendingFile pf = it->second;
  pending_files_.erase(it);
  if (pf.failed) {
    ++report_.files_failed;
    return;
  }
  bool ok = true;
  if (pf.mode == CopyMode::FuseNtoN) {
    ok = env_.fuse->set_origin_tag(dst, pf.tag) == pfs::Errc::Ok;
  } else {
    ok = env_.dst_fs->write_all(dst, pf.size, pf.tag) == pfs::Errc::Ok;
  }
  if (!ok) {
    ++report_.files_failed;
    return;
  }
  if (cfg_.verify_fixity) {
    // --verify: read the destination's content tag back and compare it
    // against the source's.  This is the pfcm comparison inlined into the
    // copy job, so a corrupted write surfaces before the job reports done.
    bool match = false;
    if (pf.mode == CopyMode::FuseNtoN) {
      const auto tag = env_.fuse->origin_tag(dst);
      match = tag.ok() && tag.value() == pf.tag;
    } else {
      const auto tag = env_.dst_fs->read_tag(dst);
      match = tag.ok() && tag.value() == pf.tag;
    }
    if (!match) {
      ++report_.fixity_mismatches;
      ++report_.files_failed;
      return;
    }
  }
  ++report_.files_copied;
  meter_.record(env_.sim->now(), 0, 1);
  if (cfg_.restartable && env_.journal != nullptr) {
    env_.journal->forget(dst);
  }
}

void PftoolJob::on_compared(WorkerProc* w, const WorkItem& item,
                            bool comparable, bool match) {
  if (finished_) return;
  env_.obs->trace().end(item.span, env_.sim->now());
  idle_workers_.push_back(w);
  if (!comparable) {
    ++report_.files_failed;
  } else {
    ++report_.files_compared;
    if (match) {
      ++report_.files_matched;
    } else {
      ++report_.files_mismatched;
    }
  }
  meter_.record(env_.sim->now(), 0, 1);
  pump();
}

void PftoolJob::on_restored(TapeRestoreProc* tp, std::vector<FileMeta> metas,
                            RestoreStats stats) {
  if (finished_) return;
  idle_tapeprocs_.push_back(tp);
  ++report_.tapes_touched;
  const unsigned failed = stats.failed;
  report_.files_restored += metas.size() - std::min<std::size_t>(failed, metas.size());
  report_.files_failed += failed;
  report_.files_unrepairable += stats.unrepairable;
  report_.fixity_verified += stats.fixity_verified;
  report_.fixity_mismatches += stats.fixity_mismatches;
  // "receives additional restored tape file copy request from TapeProc
  // processes and assigns them to Workers for further copying" — every
  // successfully restored file becomes a normal copy job.
  // (When a batch partially fails we conservatively re-plan only the
  // files the recall reported as resolved; failures are rare in the sim.)
  std::size_t to_plan = metas.size() - std::min<std::size_t>(failed, metas.size());
  for (std::size_t i = 0; i < metas.size() && to_plan > 0; ++i, --to_plan) {
    meter_.record(env_.sim->now(), 0, 0);
    plan_copy(metas[i]);
  }
  pump();
}

void PftoolJob::watchdog_tick() {
  if (finished_) return;
  WatchdogSample s;
  s.at = env_.sim->now();
  s.total_files = meter_.total_files();
  s.total_bytes = meter_.total_bytes();
  s.window_files = meter_.files_in_window(s.at);
  s.window_bytes = meter_.bytes_in_window(s.at);
  watchdog_->record_sample(s);
  env_.obs->trace().instant(obs::Component::Pftool, "watchdog", "tick", s.at);
  const Tick last = std::max(meter_.last_progress(), report_.started);
  if (s.at > last && s.at - last >= cfg_.stall_timeout) {
    abort_stalled();
  }
}

void PftoolJob::abort_stalled() {
  if (finished_) return;
  report_.aborted_by_watchdog = true;
  env_.obs->metrics().counter("pftool.watchdog_aborts").inc();
  env_.obs->trace().instant(obs::Component::Pftool, "watchdog", "stall_abort",
                            env_.sim->now());
  finish();
}

void PftoolJob::abort_crashed() {
  if (finished_) return;
  report_.aborted_by_crash = true;
  env_.obs->metrics().counter("pftool.crash_aborts").inc();
  env_.obs->trace().instant(obs::Component::Pftool, "fault", "power_fail",
                            env_.sim->now());
  finish();
}

void PftoolJob::maybe_finish() {
  if (finished_ || !started_) return;
  const bool queues_empty =
      dirq_.empty() && nameq_.empty() && copyq_.empty() && tapecq_.empty();
  const bool procs_idle = idle_readdirs_.size() == readdirs_.size() &&
                          idle_workers_.size() == workers_.size() &&
                          idle_tapeprocs_.size() == tapeprocs_.size();
  if (queues_empty && procs_idle && pending_files_.empty() &&
      pending_retries_ == 0) {
    finish();
  }
}

void PftoolJob::on_node_down(cluster::NodeId node) {
  if (finished_ || !started_) return;
  // Healthy nodes to respawn on (falls back to all nodes in a total
  // outage — the respawned workers then fail and retry until repair).
  const std::vector<cluster::NodeId> machines = env_.cluster->machine_list();
  std::size_t next = 0;
  for (auto& w : workers_) {
    if (w->node() != node) continue;
    ++report_.worker_crashes;
    w->set_node(machines[next++ % machines.size()]);
    if (w->abort_inflight()) {
      env_.obs->trace().instant(obs::Component::Pftool, "fault",
                                "worker_killed", env_.sim->now());
    }
  }
  for (auto& tp : tapeprocs_) {
    if (tp->node() != node) continue;
    tp->set_node(machines[next++ % machines.size()]);
  }
}

void PftoolJob::finish() {
  if (finished_) return;
  finished_ = true;
  if (watchdog_ != nullptr) watchdog_->stop();
  if (node_listener_registered_) {
    env_.cluster->remove_node_listener(node_listener_);
    node_listener_registered_ = false;
  }
  report_.finished = env_.sim->now();
  report_.dirq_max_depth = dirq_.max_depth();
  report_.nameq_max_depth = nameq_.max_depth();
  report_.copyq_max_depth = copyq_.max_depth();
  report_.tapecq_cartridges = tapecq_.total_enqueued() == 0
                                  ? 0
                                  : report_.tapes_touched;
  // File-level totals fold in once per job, so the registry always agrees
  // with the sum of finished JobReports.
  obs::MetricsRegistry& m = env_.obs->metrics();
  m.counter("pftool.jobs").inc();
  m.counter("pftool.files_copied").add(report_.files_copied);
  m.counter("pftool.files_failed").add(report_.files_failed);
  m.counter("pftool.files_restored").add(report_.files_restored);
  m.counter("pftool.files_compared").add(report_.files_compared);
  m.counter("pftool.chunks_skipped_restart").add(report_.chunks_skipped_restart);
  m.counter("pftool.tapes_touched").add(report_.tapes_touched);
  m.counter("pftool.fuse_files").add(report_.fuse_files);
  m.counter("pftool.retries_total").add(report_.chunk_retries);
  m.counter("pftool.worker_crashes").add(report_.worker_crashes);
  // Fixity counters appear only when verification ran or tape damage was
  // seen, so fault-free runs keep an unchanged registry.
  if (report_.chunks_verified > 0) {
    m.counter("pftool.chunks_verified").add(report_.chunks_verified);
  }
  if (report_.fixity_mismatches > 0) {
    m.counter("pftool.fixity_mismatches").add(report_.fixity_mismatches);
  }
  if (report_.files_unrepairable > 0) {
    m.counter("pftool.files_unrepairable").add(report_.files_unrepairable);
  }
  if (report_.bytes_copied > 0) {
    m.series("pftool.job_rate_bps").add(report_.rate_bps());
  }
  env_.obs->trace().arg_num(span_, "files", report_.files_copied);
  env_.obs->trace().arg_num(span_, "bytes", report_.bytes_copied);
  env_.obs->trace().end(span_, report_.finished);
  if (done_) {
    env_.sim->after(0, [this] { done_(report_); });
  }
}

// ---------------------------------------------------------------------------
// Synchronous wrappers
// ---------------------------------------------------------------------------

namespace {

JobReport run_command(JobEnv env, PftoolConfig cfg, Command cmd,
                      const std::string& src, const std::string& dst) {
  JobReport out;
  PftoolJob job(env, cfg, cmd, src, dst, [&](const JobReport& r) { out = r; });
  job.start();
  env.sim->run();
  return out;
}

}  // namespace

JobReport run_pfls(JobEnv env, PftoolConfig cfg, const std::string& root) {
  return run_command(env, cfg, Command::Pfls, root, "");
}

JobReport run_pfcp(JobEnv env, PftoolConfig cfg, const std::string& src_root,
                   const std::string& dst_root) {
  return run_command(env, cfg, Command::Pfcp, src_root, dst_root);
}

JobReport run_pfcm(JobEnv env, PftoolConfig cfg, const std::string& src_root,
                   const std::string& dst_root) {
  return run_command(env, cfg, Command::Pfcm, src_root, dst_root);
}

}  // namespace cpa::pftool::sim
