// PFTool, the paper's frontend contribution, as simulated MPI processes.
//
// Figure 3's process set is reproduced one-to-one:
//   Manager    — "the conductor": parallel tree walk, queue management,
//                job assignment, completion detection, final report;
//   ReadDir    — expose directories, return entries to the Manager;
//   Worker     — stat batches, file/chunk copies, comparisons;
//   TapeProc   — restore one cartridge's ordered file list (restore only);
//   WatchDog   — periodic progress record + stall termination;
//   OutPutProc — output/status sink.
//
// Messages are latency-stamped events (the MPI fabric); data movement is
// flows through the cluster's bandwidth pools; time is virtual throughout.
//
// The three user commands (Sec 4.1.3):
//   pfls — parallel tree walk + list;
//   pfcp — parallel tree walk + copy (archive or restore direction; the
//          restore direction engages TapeProcs for migrated files);
//   pfcm — parallel tree walk + byte-content comparison.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "fusefs/archive_fuse.hpp"
#include "hsm/hsm.hpp"
#include "obs/observer.hpp"
#include "pfs/filesystem.hpp"
#include "pftool/core/options.hpp"
#include "pftool/core/planner.hpp"
#include "pftool/core/queues.hpp"
#include "pftool/core/report.hpp"
#include "pftool/core/restart_journal.hpp"
#include "sched/qos.hpp"
#include "simcore/actor.hpp"
#include "simcore/flow_network.hpp"
#include "simcore/stats.hpp"

namespace cpa::pftool::sim {

enum class Command : std::uint8_t { Pfls, Pfcp, Pfcm };

/// Everything a PFTool run operates on.  `dst_fs` may equal `src_fs`
/// (pfls/pfcm within one file system).  `fuse` (mounted over dst_fs)
/// enables very-large-file N-to-N; `hsm` enables restore of migrated
/// source files; `journal` enables restartable transfers.
struct JobEnv {
  cpa::sim::Simulation* sim = nullptr;
  cpa::sim::FlowNetwork* net = nullptr;
  cluster::Cluster* cluster = nullptr;
  pfs::FileSystem* src_fs = nullptr;
  pfs::FileSystem* dst_fs = nullptr;
  fusefs::ArchiveFuse* fuse = nullptr;
  hsm::HsmSystem* hsm = nullptr;
  RestartJournal* journal = nullptr;
  /// Observability sink (metrics + trace); nullptr falls back to the
  /// disabled Observer::nil().
  obs::Observer* obs = nullptr;
  /// Placement policy for new destination files (GPFS placement rules —
  /// e.g. small-file paths to the "slow" pool).  Returns a pool name or
  /// "" for the file-system default.  Overridden by cfg.dest_pool_hint.
  std::function<std::string(const std::string& dst_path)> placement;
  /// Tenant/QoS the job's backend work (recalls, drive requests) is
  /// charged to.  Empty tenant = unmanaged (no quota accounting).
  std::string tenant;
  sched::QosClass qos = sched::QosClass::Interactive;
  /// Extra per-tenant bandwidth-shaper legs appended to every data flow
  /// this job starts (empty when the tenant is uncapped).
  std::vector<cpa::sim::PathLeg> shaper_legs;
  /// Set when the job waited in the admission queue: the root span opens
  /// at `queued_since` with an explicit admission_wait child covering the
  /// queued stretch, so pfprof's conservation invariant still holds.
  bool was_queued = false;
  cpa::sim::Tick queued_since = 0;
};

class ReadDirProc;
class WorkerProc;
class TapeRestoreProc;
class WatchDogProc;
class OutPutProc;

/// One PFTool invocation.  Construct, then `start()`; the completion
/// callback fires (through the event queue) once the job finishes or the
/// WatchDog kills it.  The object must outlive the simulation run.
class PftoolJob {
 public:
  PftoolJob(JobEnv env, PftoolConfig cfg, Command cmd, std::string src_root,
            std::string dst_root, std::function<void(const JobReport&)> done);
  ~PftoolJob();
  PftoolJob(const PftoolJob&) = delete;
  PftoolJob& operator=(const PftoolJob&) = delete;

  void start();

  [[nodiscard]] const JobReport& report() const { return report_; }
  [[nodiscard]] bool finished() const { return finished_; }
  [[nodiscard]] const PftoolConfig& config() const { return cfg_; }
  /// WatchDog samples collected over the run.
  [[nodiscard]] const std::vector<WatchdogSample>& watchdog_samples() const;
  /// Lines the OutPutProc received (pfls listings, status).
  [[nodiscard]] std::uint64_t output_lines() const;

  // --- internal protocol (used by the process classes) ---------------------
  struct FileMeta {
    std::string path;
    std::uint64_t size = 0;
    std::uint64_t tag = 0;
    pfs::DmapiState dmapi = pfs::DmapiState::Resident;
  };
  struct WorkItem {
    enum class Kind : std::uint8_t { Copy, Compare } kind = Kind::Copy;
    std::string src;
    std::string dst;
    std::uint64_t file_tag = 0;
    std::uint64_t file_size = 0;
    CopyMode mode = CopyMode::Whole;
    ChunkSpec chunk;
    /// N-to-1 write contention pool shared by all chunks of one dst file.
    cpa::sim::PoolId shared_dst_pool{};
    /// Failed attempts so far (chunk retry bookkeeping).
    unsigned attempt = 0;
    /// Trace span covering assignment through completion, causally linked
    /// under the job's root span.  Invalid when tracing is off.
    obs::SpanId span{};
  };

  void on_dir_listed(ReadDirProc* rd, const std::string& dir,
                     std::vector<pfs::DirEntry> entries);
  void on_stated(WorkerProc* w, std::vector<FileMeta> metas);
  void on_chunk_done(WorkerProc* w, const WorkItem& item, bool ok);
  void on_compared(WorkerProc* w, const WorkItem& item, bool comparable,
                   bool match);
  /// Fixity outcome of one tape-restore batch (forwarded from the HSM's
  /// RecallReport).  `unrepairable` files are a subset of `failed`.
  struct RestoreStats {
    unsigned failed = 0;
    unsigned unrepairable = 0;
    unsigned fixity_verified = 0;
    unsigned fixity_mismatches = 0;
  };
  void on_restored(TapeRestoreProc* tp, std::vector<FileMeta> metas,
                   RestoreStats stats);
  void watchdog_tick();
  void abort_stalled();
  /// Whole-host power failure: the attempt dies where it stands.  Like a
  /// watchdog abort, events still in flight reference the job afterwards
  /// (every entry point no-ops once finished), so the owner must keep the
  /// carcass alive until teardown.
  void abort_crashed();
  /// FTA node crash: workers/tapeprocs pinned there are killed and
  /// respawned on healthy nodes; their in-flight copies abort and route
  /// through on_chunk_done(..., false) for the usual retry treatment.
  void on_node_down(cluster::NodeId node);

 private:
  friend class ReadDirProc;
  friend class WorkerProc;
  friend class TapeRestoreProc;
  friend class WatchDogProc;
  friend class OutPutProc;

  void pump();
  void enqueue_file(const FileMeta& meta);
  void plan_copy(const FileMeta& meta);
  void finalize_file(const std::string& dst);
  void maybe_finish();
  void finish();
  [[nodiscard]] std::string dst_path_for(const std::string& src_path) const;

  JobEnv env_;
  PftoolConfig cfg_;
  ChunkPlanner planner_;
  Command cmd_;
  std::string src_root_;
  std::string dst_root_;
  std::function<void(const JobReport&)> done_;

  // Queues (Figure 3).
  WorkQueue<std::string> dirq_;
  WorkQueue<std::string> nameq_;
  WorkQueue<WorkItem> copyq_;
  TapeCopyQueues<FileMeta> tapecq_;

  // Processes.
  std::vector<std::unique_ptr<ReadDirProc>> readdirs_;
  std::vector<std::unique_ptr<WorkerProc>> workers_;
  std::vector<std::unique_ptr<TapeRestoreProc>> tapeprocs_;
  std::unique_ptr<WatchDogProc> watchdog_;
  std::unique_ptr<OutPutProc> output_;
  std::deque<ReadDirProc*> idle_readdirs_;
  std::deque<WorkerProc*> idle_workers_;
  std::deque<TapeRestoreProc*> idle_tapeprocs_;

  // Per-destination multi-chunk tracking.
  struct PendingFile {
    std::uint64_t remaining = 0;
    std::uint64_t size = 0;
    std::uint64_t tag = 0;
    CopyMode mode = CopyMode::Whole;
    bool failed = false;
  };
  std::map<std::string, PendingFile> pending_files_;

  JobReport report_;
  cpa::sim::RateMeter meter_;
  std::uint64_t outstanding_stats_ = 0;
  /// Chunks sitting in a backoff delay before requeueing; completion
  /// detection must wait for them.
  std::uint64_t pending_retries_ = 0;
  bool started_ = false;
  bool finished_ = false;
  std::uint64_t node_listener_ = 0;
  bool node_listener_registered_ = false;

  obs::SpanId span_;
  // Cached so the per-chunk hot path never looks a metric name up; the
  // file-level totals are folded in once, at finish().
  obs::Counter* c_chunks_copied_ = nullptr;
  obs::Counter* c_chunks_failed_ = nullptr;
  obs::Counter* c_bytes_copied_ = nullptr;
};

/// Convenience wrappers: construct a job, run the simulation to
/// completion, and return the report.  Suitable for tests and benches
/// where nothing else shares the simulation.
JobReport run_pfls(JobEnv env, PftoolConfig cfg, const std::string& root);
JobReport run_pfcp(JobEnv env, PftoolConfig cfg, const std::string& src_root,
                   const std::string& dst_root);
JobReport run_pfcm(JobEnv env, PftoolConfig cfg, const std::string& src_root,
                   const std::string& dst_root);

}  // namespace cpa::pftool::sim
