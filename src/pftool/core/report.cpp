#include "pftool/core/report.hpp"

#include <cstdio>

#include "simcore/units.hpp"

namespace cpa::pftool {

std::string JobReport::render() const {
  std::string out;
  char line[256];
  std::snprintf(line, sizeof(line), "%s %s%s%s: %s%s\n", command.c_str(),
                src_root.c_str(), dst_root.empty() ? "" : " -> ",
                dst_root.c_str(), sim::format_duration(finished - started).c_str(),
                aborted_by_watchdog ? "  [ABORTED BY WATCHDOG]" : "");
  out += line;
  std::snprintf(line, sizeof(line),
                "  walked %llu dirs, stated %llu files\n",
                static_cast<unsigned long long>(dirs_walked),
                static_cast<unsigned long long>(files_stated));
  out += line;
  if (files_copied != 0 || bytes_copied != 0 || files_failed != 0) {
    std::snprintf(line, sizeof(line),
                  "  copied %llu files / %s in %llu chunks (%s)\n",
                  static_cast<unsigned long long>(files_copied),
                  format_bytes(bytes_copied).c_str(),
                  static_cast<unsigned long long>(chunks_copied),
                  format_rate_mbs(rate_bps()).c_str());
    out += line;
  }
  if (chunks_skipped_restart != 0) {
    std::snprintf(line, sizeof(line), "  restart: skipped %llu known-good chunks\n",
                  static_cast<unsigned long long>(chunks_skipped_restart));
    out += line;
  }
  if (chunk_retries != 0 || worker_crashes != 0) {
    std::snprintf(line, sizeof(line),
                  "  recovery: %llu chunk retries, %llu worker crashes\n",
                  static_cast<unsigned long long>(chunk_retries),
                  static_cast<unsigned long long>(worker_crashes));
    out += line;
  }
  if (fuse_files != 0) {
    std::snprintf(line, sizeof(line), "  %llu very large files via ArchiveFUSE\n",
                  static_cast<unsigned long long>(fuse_files));
    out += line;
  }
  if (files_restored != 0) {
    std::snprintf(line, sizeof(line), "  restored %llu files from %llu tapes\n",
                  static_cast<unsigned long long>(files_restored),
                  static_cast<unsigned long long>(tapes_touched));
    out += line;
  }
  if (chunks_verified != 0 || fixity_verified != 0 || fixity_mismatches != 0) {
    std::snprintf(line, sizeof(line),
                  "  fixity: %llu chunks verified, %llu tape reads verified, "
                  "%llu mismatches\n",
                  static_cast<unsigned long long>(chunks_verified),
                  static_cast<unsigned long long>(fixity_verified),
                  static_cast<unsigned long long>(fixity_mismatches));
    out += line;
  }
  if (files_unrepairable != 0) {
    std::snprintf(line, sizeof(line), "  UNREPAIRABLE: %llu files\n",
                  static_cast<unsigned long long>(files_unrepairable));
    out += line;
  }
  if (files_compared != 0) {
    std::snprintf(line, sizeof(line), "  compared %llu files: %llu match, %llu differ\n",
                  static_cast<unsigned long long>(files_compared),
                  static_cast<unsigned long long>(files_matched),
                  static_cast<unsigned long long>(files_mismatched));
    out += line;
  }
  if (files_failed != 0) {
    std::snprintf(line, sizeof(line), "  FAILED: %llu files\n",
                  static_cast<unsigned long long>(files_failed));
    out += line;
  }
  std::snprintf(line, sizeof(line),
                "  queues: DirQ<=%zu NameQ<=%zu CopyQ<=%zu TapeCQ carts=%llu\n",
                dirq_max_depth, nameq_max_depth, copyq_max_depth,
                static_cast<unsigned long long>(tapecq_cartridges));
  out += line;
  return out;
}

}  // namespace cpa::pftool
